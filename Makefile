# Build/test entry points. `make race` is the tier the concurrency layer
# is developed against: the parallel sketching and clustering paths must
# stay race-clean, and several tests (internal/fft, internal/stable,
# internal/parallel) exist specifically to put shared caches under
# concurrent load for the race detector.

GO       ?= go
FUZZTIME ?= 15s

.PHONY: build test race bench bench-json bench-smoke fuzz fuzz-smoke vet staticcheck fsck-demo serve-demo ingest-demo mmap-demo replay-smoke shard-demo handoff-demo all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package — required to stay clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips with a note when the binary is not
# installed (CI installs it; locally: go install honnef.co/go/tools/cmd/staticcheck@latest).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# Benchmarks; -cpu exercises the parallel paths at several core budgets
# (workers default to GOMAXPROCS, which -cpu sets).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' -cpu 1,4,8 .

# Machine-readable before/after report: the frequency-domain engine
# (pool construction, AllPositions, CrossCorrelate — old vs planned),
# incremental pool maintenance (Pool.Append vs full rebuild), the
# progressive nearest-tile scan (full vs exact-margin vs pruned), the
# batched query path (one POST vs 64 GETs + kernel allocs/item), and an
# embedded open-loop replay run.
bench-json:
	$(GO) run ./cmd/tabmine-bench -out BENCH_10.json

# CI-friendly slice of bench-json: just the nearest suite at the
# smallest grid, as a smoke test that the progressive scan keeps
# perfect recall and produces a report at all (thresholds are not
# asserted at this size — coordinate economy needs the big grids).
bench-smoke:
	$(GO) run ./cmd/tabmine-bench -suite nearest -tiles 64 -out /tmp/bench-smoke.json
	grep -q '"recall": 1' /tmp/bench-smoke.json

# Short fuzzing pass over every fuzz target (each target needs its own
# invocation; the seed corpora also run under plain `make test`).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzPoolSketchRect -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzPlanCorrelateAgainstNaive -fuzztime=$(FUZZTIME) ./internal/fft
	$(GO) test -run='^$$' -fuzz=FuzzSelectAgainstSort -fuzztime=$(FUZZTIME) ./internal/quantile
	$(GO) test -run='^$$' -fuzz=FuzzMedianAndQuantileAgainstSort -fuzztime=$(FUZZTIME) ./internal/quantile
	$(GO) test -run='^$$' -fuzz=FuzzRead$$ -fuzztime=$(FUZZTIME) ./internal/tabfile
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/tabfile
	$(GO) test -run='^$$' -fuzz=FuzzLoadPool -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzLoadPlaneSet -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzOpen -fuzztime=$(FUZZTIME) ./internal/tabstore
	$(GO) test -run='^$$' -fuzz=FuzzIngestRecord -fuzztime=$(FUZZTIME) ./internal/ingest
	$(GO) test -run='^$$' -fuzz=FuzzProgressiveNearest -fuzztime=$(FUZZTIME) ./internal/prune
	$(GO) test -run='^$$' -fuzz=FuzzBatchRequest -fuzztime=$(FUZZTIME) ./internal/server

# The same fuzz pass at CI-friendly duration — a smoke test that the
# corrupt-input hardening (snapshot loaders, store manifest, tabfile
# readers) holds against fresh inputs, not just the checked-in corpora.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

# End-to-end smoke of the replay harness: serve a small snapshot, drive
# 2000 zipf-skewed queries through the batch path open-loop, and
# require a nonzero served count plus a populated latency histogram in
# the report (the exact shed/degraded split is timing-dependent and
# deliberately not asserted).
replay-smoke:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	$(GO) build -o "$$d/serve" ./cmd/tabmine-serve; \
	$(GO) build -o "$$d/replay" ./cmd/tabmine-replay; \
	$(GO) run ./cmd/tabmine-gendata -kind random -rows 64 -cols 64 -seed 7 -o "$$d/t.tabf"; \
	"$$d/serve" -table "$$d/t.tabf" -addr 127.0.0.1:0 -addr-file "$$d/addr" \
		-k 64 -max-log 3 -tile-rows 8 -tile-cols 8 -clusters 4 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/addr" ] && break; sleep 0.1; done; \
	[ -s "$$d/addr" ] || { echo 'ERROR: server never published its address'; kill $$pid; exit 1; }; \
	"$$d/replay" -server "http://$$(cat "$$d/addr")" -n 2000 -rate 4000 -batch 16 \
		-op nearest -mode auto -seed 7 -out "$$d/replay.json"; \
	if grep -q '"served": 0,' "$$d/replay.json"; then \
		echo 'ERROR: replay served nothing'; kill $$pid; exit 1; fi; \
	grep -q '"up_to_ms"' "$$d/replay.json"; \
	grep -q '"p99_ms"' "$$d/replay.json"; \
	kill -TERM $$pid; wait $$pid; \
	echo 'replay-smoke OK'

# End-to-end chaos drill of sharded serving: three tabmine-serve shards
# over column bands of one table, a tabmine-coord fanning queries out
# over them, and a mixed-op replay through the coordinator. Then a
# SIGKILL of the middle shard mid-fleet: replay answers must degrade to
# honestly TAGGED partials (plus clean 503s for queries owned by the
# dead band) — never silently wrong. Restarting the shard on its old
# port must re-admit it through probation and the final replay must be
# fully clean again.
shard-demo:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"; kill $$s0 $$s1 $$s2 $$cp 2>/dev/null || true' EXIT; \
	$(GO) build -o "$$d/serve" ./cmd/tabmine-serve; \
	$(GO) build -o "$$d/coord" ./cmd/tabmine-coord; \
	$(GO) build -o "$$d/replay" ./cmd/tabmine-replay; \
	$(GO) run ./cmd/tabmine-gendata -kind random -rows 32 -cols 96 -seed 11 -o "$$d/t.tabf"; \
	shard() { exec "$$d/serve" -table "$$d/t.tabf" -cols "$$1" -addr "$$2" -addr-file "$$3" \
		-k 64 -max-log 3 -tile-rows 8 -tile-cols 8 -clusters 3 -seed 5; }; \
	shard 0:32  127.0.0.1:0 "$$d/a0" & s0=$$!; \
	shard 32:64 127.0.0.1:0 "$$d/a1" & s1=$$!; \
	shard 64:96 127.0.0.1:0 "$$d/a2" & s2=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/a0" ] && [ -s "$$d/a1" ] && [ -s "$$d/a2" ] && break; sleep 0.1; done; \
	[ -s "$$d/a2" ] || { echo 'ERROR: shards never published their addresses'; exit 1; }; \
	"$$d/coord" -shards "http://$$(cat "$$d/a0"),http://$$(cat "$$d/a1"),http://$$(cat "$$d/a2")" \
		-addr 127.0.0.1:0 -addr-file "$$d/ac" -probe-interval 100ms 2>"$$d/coord.log" & cp=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/ac" ] && break; sleep 0.1; done; \
	[ -s "$$d/ac" ] || { echo 'ERROR: coordinator never published its address'; exit 1; }; \
	co="http://$$(cat "$$d/ac")"; \
	for i in $$(seq 1 100); do curl -fsS "$$co/readyz" >/dev/null 2>&1 && break; sleep 0.1; done; \
	curl -fsS "$$co/readyz" >/dev/null || { echo 'ERROR: fleet never became ready'; cat "$$d/coord.log"; exit 1; }; \
	echo '--- mixed-op replay through a healthy fleet (must be clean):'; \
	"$$d/replay" -server "$$co" -scenario internal/replay/testdata/mixed-coord.json -out "$$d/r1.json"; \
	grep -q '"partial": 0,' "$$d/r1.json" || { echo 'ERROR: healthy fleet produced partial answers'; exit 1; }; \
	if grep -q '"served": 0,' "$$d/r1.json"; then echo 'ERROR: healthy replay served nothing'; exit 1; fi; \
	echo '--- SIGKILL the middle shard (cols 32..64), replay again:'; \
	kill -9 $$s1; wait $$s1 2>/dev/null || true; \
	sleep 1; \
	"$$d/replay" -server "$$co" -scenario internal/replay/testdata/mixed-coord.json -out "$$d/r2.json"; \
	grep -q '"partial": 0,' "$$d/r2.json" && { echo 'ERROR: no partial answers with a dead shard'; exit 1; }; \
	grep -q 'healthy -> dead' "$$d/coord.log" || { echo 'ERROR: coordinator never ejected the dead shard'; cat "$$d/coord.log"; exit 1; }; \
	echo '--- restart the shard on its old port, expect probation re-admission:'; \
	shard 32:64 "$$(cat "$$d/a1")" "$$d/a1b" & s1=$$!; \
	for i in $$(seq 1 200); do grep -q 'probation -> healthy' "$$d/coord.log" && break; sleep 0.1; done; \
	grep -q 'dead -> probation' "$$d/coord.log" || { echo 'ERROR: no probation transition logged'; cat "$$d/coord.log"; exit 1; }; \
	grep -q 'probation -> healthy' "$$d/coord.log" || { echo 'ERROR: no re-admission logged'; cat "$$d/coord.log"; exit 1; }; \
	curl -fsS "$$co/readyz" >/dev/null || { echo 'ERROR: fleet never recovered'; cat "$$d/coord.log"; exit 1; }; \
	echo '--- replay through the recovered fleet (must be clean again):'; \
	"$$d/replay" -server "$$co" -scenario internal/replay/testdata/mixed-coord.json -out "$$d/r3.json"; \
	grep -q '"partial": 0,' "$$d/r3.json" || { echo 'ERROR: recovered fleet still partial'; exit 1; }; \
	if grep -q '"served": 0,' "$$d/r3.json"; then echo 'ERROR: recovered replay served nothing'; exit 1; fi; \
	kill -TERM $$cp; wait $$cp; \
	kill -TERM $$s0 $$s1 $$s2; wait $$s0 $$s1 $$s2; \
	echo 'shard-demo OK'

# Live shard handoff end to end: three shards + coordinator (fed by a
# -shards-file), then — under a continuous mixed-op replay — a
# replacement process for the middle band is registered through the
# admin surface, earns traffic through probation, and the old owner is
# retired via SIGHUP reconcile (fence, background drain, deregister).
# The replay spanning the cutover must stay fully clean (zero partials,
# zero hard errors) and must have observed the shard-map epoch advance.
handoff-demo:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"; kill $$s0 $$s1 $$s1b $$s2 $$cp 2>/dev/null || true' EXIT; \
	$(GO) build -o "$$d/serve" ./cmd/tabmine-serve; \
	$(GO) build -o "$$d/coord" ./cmd/tabmine-coord; \
	$(GO) build -o "$$d/replay" ./cmd/tabmine-replay; \
	$(GO) run ./cmd/tabmine-gendata -kind random -rows 32 -cols 96 -seed 11 -o "$$d/t.tabf"; \
	shard() { exec "$$d/serve" -table "$$d/t.tabf" -cols "$$1" -addr "$$2" -addr-file "$$3" \
		-k 64 -max-log 3 -tile-rows 8 -tile-cols 8 -clusters 3 -seed 5; }; \
	shard 0:32  127.0.0.1:0 "$$d/a0" & s0=$$!; \
	shard 32:64 127.0.0.1:0 "$$d/a1" & s1=$$!; \
	shard 64:96 127.0.0.1:0 "$$d/a2" & s2=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/a0" ] && [ -s "$$d/a1" ] && [ -s "$$d/a2" ] && break; sleep 0.1; done; \
	[ -s "$$d/a2" ] || { echo 'ERROR: shards never published their addresses'; exit 1; }; \
	printf 'http://%s\nhttp://%s\nhttp://%s\n' "$$(cat "$$d/a0")" "$$(cat "$$d/a1")" "$$(cat "$$d/a2")" >"$$d/shards.txt"; \
	"$$d/coord" -shards-file "$$d/shards.txt" -addr 127.0.0.1:0 -addr-file "$$d/ac" \
		-probe-interval 100ms -probe-jitter-seed 1 2>"$$d/coord.log" & cp=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/ac" ] && break; sleep 0.1; done; \
	[ -s "$$d/ac" ] || { echo 'ERROR: coordinator never published its address'; exit 1; }; \
	co="http://$$(cat "$$d/ac")"; \
	for i in $$(seq 1 100); do curl -fsS "$$co/readyz" >/dev/null 2>&1 && break; sleep 0.1; done; \
	curl -fsS "$$co/readyz" >/dev/null || { echo 'ERROR: fleet never became ready'; cat "$$d/coord.log"; exit 1; }; \
	echo '--- replay through the cutover (must stay clean, must see the epoch move):'; \
	"$$d/replay" -server "$$co" -scenario internal/replay/testdata/mixed-coord.json \
		-n 4000 -rate 250 -out "$$d/replay.json" & rp=$$!; \
	echo '--- register a replacement for cols 32..64 via the admin surface:'; \
	shard 32:64 127.0.0.1:0 "$$d/a1b" & s1b=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/a1b" ] && break; sleep 0.1; done; \
	[ -s "$$d/a1b" ] || { echo 'ERROR: replacement never published its address'; exit 1; }; \
	curl -fsS -X POST "$$co/admin/register" --data "endpoint=http://$$(cat "$$d/a1b")" \
		| grep -q '"registered"' || { echo 'ERROR: admin register failed'; cat "$$d/coord.log"; exit 1; }; \
	for i in $$(seq 1 200); do grep -q 'probation -> healthy' "$$d/coord.log" && break; sleep 0.1; done; \
	grep -q 'probation -> healthy' "$$d/coord.log" || { echo 'ERROR: replacement never earned traffic'; cat "$$d/coord.log"; exit 1; }; \
	echo '--- retire the old owner via SIGHUP reconcile of the shards file:'; \
	printf 'http://%s\nhttp://%s\nhttp://%s\n' "$$(cat "$$d/a0")" "$$(cat "$$d/a1b")" "$$(cat "$$d/a2")" >"$$d/shards.txt"; \
	kill -HUP $$cp; \
	for i in $$(seq 1 200); do grep -q 'deregistered endpoint' "$$d/coord.log" && break; sleep 0.1; done; \
	grep -q 'SIGHUP: shard list re-read' "$$d/coord.log" || { echo 'ERROR: SIGHUP reconcile never ran'; cat "$$d/coord.log"; exit 1; }; \
	grep -q 'deregistered endpoint' "$$d/coord.log" || { echo 'ERROR: old owner never deregistered'; cat "$$d/coord.log"; exit 1; }; \
	kill -TERM $$s1; wait $$s1 2>/dev/null || true; \
	wait $$rp || { echo 'ERROR: replay failed'; cat "$$d/coord.log"; exit 1; }; \
	if grep -q '"served": 0,' "$$d/replay.json"; then echo 'ERROR: replay served nothing'; exit 1; fi; \
	grep -q '"partial": 0,' "$$d/replay.json" || { echo 'ERROR: handoff produced partial answers'; cat "$$d/replay.json"; exit 1; }; \
	grep -q '"errors": 0,' "$$d/replay.json" || { echo 'ERROR: handoff produced hard errors'; cat "$$d/replay.json"; exit 1; }; \
	if grep -q '"epoch_changes": 0' "$$d/replay.json"; then \
		echo 'ERROR: replay never saw the epoch advance'; cat "$$d/replay.json"; exit 1; fi; \
	curl -fsS "$$co/readyz" >/dev/null || { echo 'ERROR: fleet not ready after handoff'; cat "$$d/coord.log"; exit 1; }; \
	kill -TERM $$cp; wait $$cp; \
	kill -TERM $$s0 $$s1b $$s2; wait $$s0 $$s1b $$s2; \
	echo 'handoff-demo OK'

# Demonstrates the store's corruption handling end to end: build a
# two-day store, flip bytes in one day file, watch fsck quarantine it
# (exit 1), then verify the repaired store passes (exit 0).
fsck-demo:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	$(GO) run ./cmd/tabmine-gendata -kind callvolume -stations 60 -seed 1 -o "$$d/day0.tabf"; \
	$(GO) run ./cmd/tabmine-gendata -kind callvolume -stations 60 -seed 2 -o "$$d/day1.tabf"; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" init; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" append -label mon -in "$$d/day0.tabf"; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" append -label tue -in "$$d/day1.tabf"; \
	printf '\336\255\276\357' | dd of="$$d/store/day-0000.tabf" bs=1 seek=64 conv=notrunc status=none; \
	echo '--- fsck on a corrupted store (must detect and repair):'; \
	if $(GO) run ./cmd/tabmine-store -dir "$$d/store" fsck; then \
		echo 'ERROR: fsck missed the corruption'; exit 1; \
	fi; \
	echo '--- fsck after repair (must be clean):'; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" fsck

# End-to-end drill of the resilient query service: start tabmine-serve
# on a random port with an aggressive degradation threshold, answer an
# exact query, watch an auto query degrade to the sketch tier, then
# SIGTERM the server and require a clean drain (exit 0).
serve-demo:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	$(GO) build -o "$$d/serve" ./cmd/tabmine-serve; \
	$(GO) build -o "$$d/query" ./cmd/tabmine-query; \
	$(GO) run ./cmd/tabmine-gendata -kind random -rows 64 -cols 64 -seed 7 -o "$$d/t.tabf"; \
	"$$d/serve" -table "$$d/t.tabf" -addr 127.0.0.1:0 -addr-file "$$d/addr" \
		-k 64 -max-log 3 -tile-rows 8 -tile-cols 8 -clusters 4 -degrade-at 0.01 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/addr" ] && break; sleep 0.1; done; \
	[ -s "$$d/addr" ] || { echo 'ERROR: server never published its address'; kill $$pid; exit 1; }; \
	srv="http://$$(cat "$$d/addr")"; \
	echo '--- exact query:'; \
	out=$$("$$d/query" -server "$$srv" -op distance -a 0,0,8,8 -b 16,16,8,8 -mode exact); \
	echo "$$out"; echo "$$out" | grep -q '"tier":"exact"'; \
	echo '--- auto query (must degrade to the sketch tier under load):'; \
	out=$$("$$d/query" -server "$$srv" -op distance -a 0,0,8,8 -b 16,16,8,8 -mode auto); \
	echo "$$out"; echo "$$out" | grep -q '"tier":"sketch"'; echo "$$out" | grep -q '"degraded":true'; \
	echo '--- nearest + assign + health:'; \
	"$$d/query" -server "$$srv" -op nearest -q 8,8,8,8 -mode sketch; \
	"$$d/query" -server "$$srv" -op assign -q 8,8,8,8; \
	"$$d/query" -server "$$srv" -op health; \
	echo '--- SIGTERM, expecting a clean drain (exit 0):'; \
	kill -TERM $$pid; wait $$pid; \
	echo 'serve-demo OK'

# End-to-end drill of streaming ingestion: seed a two-day store, serve
# it, push a third day over HTTP (tabmine-ingest -> POST /v1/ingest),
# watch the snapshot republish live with no SIGHUP, then restart the
# server and require the pool to resume from its persisted snapshot
# (both servers must drain cleanly on SIGTERM).
ingest-demo:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	$(GO) build -o "$$d/serve" ./cmd/tabmine-serve; \
	$(GO) build -o "$$d/push" ./cmd/tabmine-ingest; \
	$(GO) build -o "$$d/query" ./cmd/tabmine-query; \
	$(GO) run ./cmd/tabmine-gendata -kind random -rows 64 -cols 16 -seed 1 -o "$$d/day0.tabf"; \
	$(GO) run ./cmd/tabmine-gendata -kind random -rows 64 -cols 16 -seed 2 -o "$$d/day1.tabf"; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" init; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" append -label d00 -in "$$d/day0.tabf"; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" append -label d01 -in "$$d/day1.tabf"; \
	"$$d/serve" -store "$$d/store" -addr 127.0.0.1:0 -addr-file "$$d/addr" \
		-k 64 -tile-rows 8 -tile-cols 8 -clusters 4 -pool-file "$$d/store/pool.skpo" & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/addr" ] && break; sleep 0.1; done; \
	[ -s "$$d/addr" ] || { echo 'ERROR: server never published its address'; kill $$pid; exit 1; }; \
	srv="http://$$(cat "$$d/addr")"; \
	echo '--- health before the push (32 columns; store mode boots not-ready,'; \
	echo '    building its first snapshot in the background, so poll):'; \
	for i in $$(seq 1 100); do \
		"$$d/query" -server "$$srv" -op health | grep -q '"cols":32' && break; sleep 0.1; done; \
	"$$d/query" -server "$$srv" -op health | grep -q '"cols":32'; \
	echo '--- pushing one day over HTTP:'; \
	"$$d/push" -addr "$$srv" -label d02 -random 64x16 -seed 9; \
	for i in $$(seq 1 100); do \
		"$$d/query" -server "$$srv" -op health | grep -q '"cols":48' && break; sleep 0.1; done; \
	"$$d/query" -server "$$srv" -op health | grep -q '"cols":48'; \
	echo '--- snapshot republished live (48 columns, no SIGHUP):'; \
	"$$d/query" -server "$$srv" -op distance -a 0,0,8,8 -b 0,40,8,8 -mode exact; \
	echo '--- restart: the pool must resume from its persisted snapshot:'; \
	kill -TERM $$pid; wait $$pid; \
	"$$d/serve" -store "$$d/store" -addr 127.0.0.1:0 -addr-file "$$d/addr2" \
		-k 64 -tile-rows 8 -tile-cols 8 -clusters 4 -pool-file "$$d/store/pool.skpo" & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/addr2" ] && break; sleep 0.1; done; \
	[ -s "$$d/addr2" ] || { echo 'ERROR: restarted server never published its address'; kill $$pid; exit 1; }; \
	srv="http://$$(cat "$$d/addr2")"; \
	for i in $$(seq 1 100); do \
		"$$d/query" -server "$$srv" -op health | grep -q '"cols":48' && break; sleep 0.1; done; \
	"$$d/query" -server "$$srv" -op health | grep -q '"cols":48'; \
	kill -TERM $$pid; wait $$pid; \
	echo 'ingest-demo OK'

# Robustness drill of segment-mode serving (tabmine-serve -segments):
# ingest days so the sealed pool prefix lands in mmap segment files,
# record reference answers, SIGKILL the server mid-flight, restart it,
# and require (a) the first health after restart within seconds — the
# pool maps segments instead of replaying days, and /debug/vars must
# report tabmine_seg_restart_replay_days 0 — and (b) every recorded
# query answering byte-identically to its pre-kill reference. Also
# checks the segments listing and that fsck covers the segment files.
mmap-demo:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"; kill -9 $$pid 2>/dev/null || true' EXIT; \
	$(GO) build -o "$$d/serve" ./cmd/tabmine-serve; \
	$(GO) build -o "$$d/push" ./cmd/tabmine-ingest; \
	$(GO) build -o "$$d/query" ./cmd/tabmine-query; \
	$(GO) build -o "$$d/store" ./cmd/tabmine-store; \
	$(GO) run ./cmd/tabmine-gendata -kind random -rows 64 -cols 16 -seed 1 -o "$$d/day0.tabf"; \
	$(GO) run ./cmd/tabmine-gendata -kind random -rows 64 -cols 16 -seed 2 -o "$$d/day1.tabf"; \
	"$$d/store" -dir "$$d/st" init; \
	"$$d/store" -dir "$$d/st" append -label d00 -in "$$d/day0.tabf"; \
	"$$d/store" -dir "$$d/st" append -label d01 -in "$$d/day1.tabf"; \
	"$$d/serve" -store "$$d/st" -segments -panel-cols 16 -addr 127.0.0.1:0 -addr-file "$$d/addr" \
		-k 64 -tile-rows 8 -tile-cols 8 -clusters 4 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/addr" ] && break; sleep 0.1; done; \
	[ -s "$$d/addr" ] || { echo 'ERROR: server never published its address'; exit 1; }; \
	srv="http://$$(cat "$$d/addr")"; \
	for i in $$(seq 1 100); do \
		"$$d/query" -server "$$srv" -op health | grep -q '"cols":32' && break; sleep 0.1; done; \
	echo '--- pushing two more days so maintenance seals segments:'; \
	"$$d/push" -addr "$$srv" -label d02 -random 64x16 -seed 9; \
	"$$d/push" -addr "$$srv" -label d03 -random 64x16 -seed 10; \
	for i in $$(seq 1 100); do \
		"$$d/query" -server "$$srv" -op health | grep -q '"cols":64' && break; sleep 0.1; done; \
	"$$d/query" -server "$$srv" -op health | grep -q '"cols":64'; \
	echo '--- segment listing (sealed files must exist and pass CRC):'; \
	"$$d/store" -dir "$$d/st" segments | tee "$$d/seglist"; \
	grep -q 'CRC ok' "$$d/seglist"; \
	echo '--- reference answers over the sealed (mmap-backed) prefix:'; \
	"$$d/query" -server "$$srv" -op distance -a 0,0,8,8 -b 8,8,8,8 -mode sketch >"$$d/ref1"; \
	"$$d/query" -server "$$srv" -op distance -a 0,16,8,8 -b 8,40,8,8 -mode sketch >"$$d/ref2"; \
	"$$d/query" -server "$$srv" -op nearest -q 4,4,8,8 -mode sketch >"$$d/ref3"; \
	echo '--- SIGKILL, then restart over the same store:'; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	"$$d/serve" -store "$$d/st" -segments -panel-cols 16 -addr 127.0.0.1:0 -addr-file "$$d/addr2" \
		-k 64 -tile-rows 8 -tile-cols 8 -clusters 4 & pid=$$!; \
	for i in $$(seq 1 100); do [ -s "$$d/addr2" ] && break; sleep 0.1; done; \
	[ -s "$$d/addr2" ] || { echo 'ERROR: restarted server never published its address'; exit 1; }; \
	srv="http://$$(cat "$$d/addr2")"; \
	for i in $$(seq 1 100); do \
		"$$d/query" -server "$$srv" -op health | grep -q '"cols":64' && break; sleep 0.1; done; \
	"$$d/query" -server "$$srv" -op health | grep -q '"cols":64'; \
	echo '--- restart must have replayed zero days (segments mapped, fringe rebuilt):'; \
	curl -fsS "$$srv/debug/vars" | grep -q '"tabmine_seg_restart_replay_days": 0' \
		|| { echo 'ERROR: restart replayed days'; curl -fsS "$$srv/debug/vars" | grep replay; exit 1; }; \
	echo '--- answers after the kill must equal the references byte-for-byte:'; \
	"$$d/query" -server "$$srv" -op distance -a 0,0,8,8 -b 8,8,8,8 -mode sketch >"$$d/got1"; \
	"$$d/query" -server "$$srv" -op distance -a 0,16,8,8 -b 8,40,8,8 -mode sketch >"$$d/got2"; \
	"$$d/query" -server "$$srv" -op nearest -q 4,4,8,8 -mode sketch >"$$d/got3"; \
	diff "$$d/ref1" "$$d/got1"; diff "$$d/ref2" "$$d/got2"; diff "$$d/ref3" "$$d/got3"; \
	echo '--- fsck covers the segment files too:'; \
	"$$d/store" -dir "$$d/st" fsck | grep -q 'checked .* segments'; \
	kill -TERM $$pid; wait $$pid; \
	echo 'mmap-demo OK'
