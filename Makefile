# Build/test entry points. `make race` is the tier the concurrency layer
# is developed against: the parallel sketching and clustering paths must
# stay race-clean, and several tests (internal/fft, internal/stable,
# internal/parallel) exist specifically to put shared caches under
# concurrent load for the race detector.

GO       ?= go
FUZZTIME ?= 15s

.PHONY: build test race bench bench-json fuzz fuzz-smoke vet staticcheck fsck-demo all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package — required to stay clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Skips with a note when the binary is not
# installed (CI installs it; locally: go install honnef.co/go/tools/cmd/staticcheck@latest).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# Benchmarks; -cpu exercises the parallel paths at several core budgets
# (workers default to GOMAXPROCS, which -cpu sets).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' -cpu 1,4,8 .

# Machine-readable before/after report for the frequency-domain engine
# (pool construction, AllPositions, CrossCorrelate — old vs planned).
bench-json:
	$(GO) run ./cmd/tabmine-bench -out BENCH_2.json

# Short fuzzing pass over every fuzz target (each target needs its own
# invocation; the seed corpora also run under plain `make test`).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzPoolSketchRect -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzPlanCorrelateAgainstNaive -fuzztime=$(FUZZTIME) ./internal/fft
	$(GO) test -run='^$$' -fuzz=FuzzSelectAgainstSort -fuzztime=$(FUZZTIME) ./internal/quantile
	$(GO) test -run='^$$' -fuzz=FuzzMedianAndQuantileAgainstSort -fuzztime=$(FUZZTIME) ./internal/quantile
	$(GO) test -run='^$$' -fuzz=FuzzRead$$ -fuzztime=$(FUZZTIME) ./internal/tabfile
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/tabfile
	$(GO) test -run='^$$' -fuzz=FuzzLoadPool -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzLoadPlaneSet -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzOpen -fuzztime=$(FUZZTIME) ./internal/tabstore

# The same fuzz pass at CI-friendly duration — a smoke test that the
# corrupt-input hardening (snapshot loaders, store manifest, tabfile
# readers) holds against fresh inputs, not just the checked-in corpora.
fuzz-smoke:
	$(MAKE) fuzz FUZZTIME=10s

# Demonstrates the store's corruption handling end to end: build a
# two-day store, flip bytes in one day file, watch fsck quarantine it
# (exit 1), then verify the repaired store passes (exit 0).
fsck-demo:
	@set -e; d=$$(mktemp -d); trap 'rm -rf "$$d"' EXIT; \
	$(GO) run ./cmd/tabmine-gendata -kind callvolume -stations 60 -seed 1 -o "$$d/day0.tabf"; \
	$(GO) run ./cmd/tabmine-gendata -kind callvolume -stations 60 -seed 2 -o "$$d/day1.tabf"; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" init; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" append -label mon -in "$$d/day0.tabf"; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" append -label tue -in "$$d/day1.tabf"; \
	printf '\336\255\276\357' | dd of="$$d/store/day-0000.tabf" bs=1 seek=64 conv=notrunc status=none; \
	echo '--- fsck on a corrupted store (must detect and repair):'; \
	if $(GO) run ./cmd/tabmine-store -dir "$$d/store" fsck; then \
		echo 'ERROR: fsck missed the corruption'; exit 1; \
	fi; \
	echo '--- fsck after repair (must be clean):'; \
	$(GO) run ./cmd/tabmine-store -dir "$$d/store" fsck
