# Build/test entry points. `make race` is the tier the concurrency layer
# is developed against: the parallel sketching and clustering paths must
# stay race-clean, and several tests (internal/fft, internal/stable,
# internal/parallel) exist specifically to put shared caches under
# concurrent load for the race detector.

GO       ?= go
FUZZTIME ?= 15s

.PHONY: build test race bench bench-json fuzz vet all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over every package — required to stay clean.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Benchmarks; -cpu exercises the parallel paths at several core budgets
# (workers default to GOMAXPROCS, which -cpu sets).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' -cpu 1,4,8 .

# Machine-readable before/after report for the frequency-domain engine
# (pool construction, AllPositions, CrossCorrelate — old vs planned).
bench-json:
	$(GO) run ./cmd/tabmine-bench -out BENCH_2.json

# Short fuzzing pass over every fuzz target (each target needs its own
# invocation; the seed corpora also run under plain `make test`).
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzPoolSketchRect -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run='^$$' -fuzz=FuzzPlanCorrelateAgainstNaive -fuzztime=$(FUZZTIME) ./internal/fft
	$(GO) test -run='^$$' -fuzz=FuzzSelectAgainstSort -fuzztime=$(FUZZTIME) ./internal/quantile
	$(GO) test -run='^$$' -fuzz=FuzzMedianAndQuantileAgainstSort -fuzztime=$(FUZZTIME) ./internal/quantile
	$(GO) test -run='^$$' -fuzz=FuzzRead$$ -fuzztime=$(FUZZTIME) ./internal/tabfile
	$(GO) test -run='^$$' -fuzz=FuzzReadCSV -fuzztime=$(FUZZTIME) ./internal/tabfile
