// Benchmarks regenerating the paper's tables and figures (run with
// `go test -bench=. -benchmem`). Each Benchmark maps to one experiment in
// DESIGN.md's per-experiment index; the wall-clock harnesses with the
// paper's exact protocol live in cmd/tabmine-experiments, while these
// testing.B benches isolate the primitive each figure's claim rests on.
package tabmine

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fft"
	"repro/internal/lpnorm"
	"repro/internal/table"
	"repro/internal/transform"
	"repro/internal/workload"
)

var (
	benchTableOnce sync.Once
	benchTable     *table.Table // one synthetic day, 256 stations
)

func benchDay(b *testing.B) *table.Table {
	b.Helper()
	benchTableOnce.Do(func() {
		t, _, err := workload.CallVolume(workload.CallVolumeConfig{
			Stations: 256, Days: 2, Seed: 42,
		})
		if err != nil {
			panic(err)
		}
		benchTable = t
	})
	return benchTable
}

// BenchmarkFig2Exact measures the per-pair cost of exact Lp distance as
// tile size grows (the rising curve of Figure 2's timing panel).
func BenchmarkFig2Exact(b *testing.B) {
	tb := benchDay(b)
	for _, p := range []float64{1, 2} {
		lp := lpnorm.MustP(p)
		for _, edge := range []int{8, 16, 32, 64, 128} {
			b.Run(fmt.Sprintf("L%v/tile%dx%d", p, edge, edge), func(b *testing.B) {
				x := tb.Linearize(table.Rect{R0: 0, C0: 0, Rows: edge, Cols: edge}, nil)
				y := tb.Linearize(table.Rect{R0: 100, C0: 100, Rows: edge, Cols: edge}, nil)
				b.SetBytes(int64(2 * edge * edge * 8))
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_ = lp.Dist(x, y)
				}
			})
		}
	}
}

// BenchmarkFig2Sketch measures the per-pair cost of a sketched distance —
// flat in tile size (the flat curve of Figure 2's timing panel). The
// sketches are read from a precomputed plane set, as in the paper's
// "sketches precomputed" scenario.
func BenchmarkFig2Sketch(b *testing.B) {
	tb := benchDay(b)
	for _, p := range []float64{1, 2} {
		for _, edge := range []int{8, 64, 128} {
			b.Run(fmt.Sprintf("L%v/tile%dx%d", p, edge, edge), func(b *testing.B) {
				const k = 256
				sk, err := core.NewSketcher(p, k, edge, edge, 7, core.EstimatorAuto)
				if err != nil {
					b.Fatal(err)
				}
				planes := sk.AllPositions(tb)
				sa := make([]float64, k)
				sb := make([]float64, k)
				scratch := make([]float64, k)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sa = planes.SketchAt(0, 0, sa)
					sb = planes.SketchAt(100, 100, sb)
					_ = sk.DistanceScratch(sa, sb, scratch)
				}
			})
		}
	}
}

// BenchmarkFig2Preprocess measures sketch-plane construction (Figure 2's
// preprocessing curve, near-constant in tile size for fixed table size —
// Theorem 3's O(k·N log N)).
func BenchmarkFig2Preprocess(b *testing.B) {
	tb := benchDay(b)
	for _, edge := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("tile%dx%d", edge, edge), func(b *testing.B) {
			const k = 16
			sk, err := core.NewSketcher(1, k, edge, edge, 7, core.EstimatorAuto)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sk.AllPositions(tb)
			}
		})
	}
}

// BenchmarkTheorem3FFTvsNaive pins the Theorem 3 claim: FFT all-subtables
// sketching beats the naive O(N·M) computation once tiles are nontrivial.
func BenchmarkTheorem3FFTvsNaive(b *testing.B) {
	tb := workload.Random(128, 128, 1, 3)
	for _, edge := range []int{8, 32} {
		sk, err := core.NewSketcher(1, 4, edge, edge, 7, core.EstimatorAuto)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("fft/tile%d", edge), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = sk.AllPositions(tb)
			}
		})
		b.Run(fmt.Sprintf("naive/tile%d", edge), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = sk.AllPositionsNaive(tb)
			}
		})
	}
}

// benchTiles prepares the Figure 3/4 clustering workload.
func benchTiles(b *testing.B) ([][]float64, int, int) {
	b.Helper()
	tb := benchDay(b)
	const tileRows = 16
	tileCols := workload.BucketsPerDay
	g, err := table.NewGrid(tb.Rows(), tb.Cols(), tileRows, tileCols)
	if err != nil {
		b.Fatal(err)
	}
	return g.Tiles(tb), tileRows, tileCols
}

// BenchmarkFig3aClustering times 20-means under the three distance modes
// at p = 1 (one column of Figure 3(a)).
func BenchmarkFig3aClustering(b *testing.B) {
	tiles, tileRows, tileCols := benchTiles(b)
	const clusters, sketchK = 8, 128
	lp := lpnorm.MustP(1)

	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.KMeans(tiles, lp.Dist, cluster.Config{K: clusters, Seed: 5}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("precomputed", func(b *testing.B) {
		sk, err := core.NewSketcher(1, sketchK, tileRows, tileCols, 5, core.EstimatorAuto)
		if err != nil {
			b.Fatal(err)
		}
		points := make([][]float64, len(tiles))
		for i, tile := range tiles {
			points[i] = sk.Sketch(tile, nil)
		}
		scratch := make([]float64, sketchK)
		dist := func(a, c []float64) float64 { return sk.DistanceScratch(a, c, scratch) }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cluster.KMeans(points, dist, cluster.Config{K: clusters, Seed: 5}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ondemand", func(b *testing.B) {
		sk, err := core.NewSketcher(1, sketchK, tileRows, tileCols, 5, core.EstimatorAuto)
		if err != nil {
			b.Fatal(err)
		}
		scratch := make([]float64, sketchK)
		dist := func(a, c []float64) float64 { return sk.DistanceScratch(a, c, scratch) }
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			points := make([][]float64, len(tiles))
			for j, tile := range tiles {
				points[j] = sk.Sketch(tile, nil) // sketching inside the timed region
			}
			if _, err := cluster.KMeans(points, dist, cluster.Config{K: clusters, Seed: 5}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig4aVaryK times exact vs precomputed k-means as the cluster
// count grows (Figure 4(a)): exact cost rises with k, sketch cost stays
// an order of magnitude lower.
func BenchmarkFig4aVaryK(b *testing.B) {
	tiles, tileRows, tileCols := benchTiles(b)
	const sketchK = 128
	lp := lpnorm.MustP(1)
	sk, err := core.NewSketcher(1, sketchK, tileRows, tileCols, 5, core.EstimatorAuto)
	if err != nil {
		b.Fatal(err)
	}
	points := make([][]float64, len(tiles))
	for i, tile := range tiles {
		points[i] = sk.Sketch(tile, nil)
	}
	scratch := make([]float64, sketchK)
	dist := func(a, c []float64) float64 { return sk.DistanceScratch(a, c, scratch) }
	for _, k := range []int{4, 12, 24} {
		b.Run(fmt.Sprintf("exact/k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.KMeans(tiles, lp.Dist, cluster.Config{K: k, Seed: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sketch/k%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cluster.KMeans(points, dist, cluster.Config{K: k, Seed: 5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4bKnownClustering runs the planted-clustering recovery at
// one fractional p (the 100%-accuracy point of Figure 4(b)).
func BenchmarkFig4bKnownClustering(b *testing.B) {
	cfg := experiments.DefaultFig4bConfig()
	cfg.PValues = []float64{0.5}
	cfg.Restarts = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig4b(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompoundSketch measures the O(k) arbitrary-rectangle sketch
// assembly of Theorem 6 (four adds per entry over the dyadic pool).
func BenchmarkCompoundSketch(b *testing.B) {
	tb := workload.Random(128, 128, 1, 9)
	const k = 128
	pool, err := core.NewPool(tb, 1, k, 11, core.PoolOptions{
		MinLogRows: 3, MaxLogRows: 5, MinLogCols: 3, MaxLogCols: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	rect := table.Rect{R0: 5, C0: 9, Rows: 44, Cols: 50} // non-dyadic: compound path
	dst := make([]float64, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = pool.Sketch(rect, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimatorL2SpecialCase is the §4.4 ablation: at p = 2 the
// Euclidean estimator avoids the median selection and is faster.
func BenchmarkEstimatorL2SpecialCase(b *testing.B) {
	const k = 256
	rng := rand.New(rand.NewPCG(1, 1))
	x := make([]float64, k)
	y := make([]float64, k)
	for i := range x {
		x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	for name, est := range map[string]core.Estimator{
		"median": core.EstimatorMedian,
		"l2":     core.EstimatorL2,
	} {
		sk, err := core.NewSketcher(2, k, 4, 4, 3, est)
		if err != nil {
			b.Fatal(err)
		}
		scratch := make([]float64, k)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = sk.DistanceScratch(x, y, scratch)
			}
		})
	}
}

// BenchmarkTransformBaselines compares the per-object cost of reducing
// with the §2 baselines against stable sketching (equal coefficient
// budgets).
func BenchmarkTransformBaselines(b *testing.B) {
	const edge, coeffs = 32, 64
	tb := benchDay(b)
	vec := tb.Linearize(table.Rect{R0: 0, C0: 0, Rows: edge, Cols: edge}, nil)
	sk, err := core.NewSketcher(2, coeffs, edge, edge, 3, core.EstimatorAuto)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("sketch", func(b *testing.B) {
		dst := make([]float64, coeffs)
		for i := 0; i < b.N; i++ {
			dst = sk.Sketch(vec, dst)
		}
	})
	for _, method := range []transform.Method{transform.DFT, transform.DCT, transform.Haar} {
		m := coeffs
		if method == transform.DFT {
			m /= 2
		}
		red, err := transform.NewReducer(method, edge*edge, m)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(method.String(), func(b *testing.B) {
			dst := make([]float64, red.OutputLen())
			for i := 0; i < b.N; i++ {
				dst = red.Reduce(vec, dst)
			}
		})
	}
}

// BenchmarkStableSampling measures the cost of drawing stable variates —
// the dominant cost of Sketcher construction.
func BenchmarkStableSampling(b *testing.B) {
	for _, alpha := range []float64{0.5, 1, 1.5, 2} {
		b.Run(fmt.Sprintf("alpha%v", alpha), func(b *testing.B) {
			d, err := NewStableDist(alpha)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewPCG(1, 2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = d.Sample(rng)
			}
		})
	}
}

// BenchmarkStreamUpdate measures the O(k) turnstile-stream sketch update
// of the hash-based sketcher (no stored matrices).
func BenchmarkStreamUpdate(b *testing.B) {
	for _, k := range []int{64, 256} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			h, err := core.NewHashSketcher(1, k, 1<<20, 7, core.EstimatorAuto)
			if err != nil {
				b.Fatal(err)
			}
			s := h.NewStream()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(i&((1<<20)-1), 1.5)
			}
		})
	}
}

// BenchmarkTileSketchSetUpdate measures the maintained-sketch point
// update (O(k), matrix entries already materialized).
func BenchmarkTileSketchSetUpdate(b *testing.B) {
	tb := workload.Random(64, 64, 100, 3)
	g, err := table.NewGrid(64, 64, 16, 16)
	if err != nil {
		b.Fatal(err)
	}
	sk, err := core.NewSketcher(1, 128, 16, 16, 5, core.EstimatorAuto)
	if err != nil {
		b.Fatal(err)
	}
	set, err := core.NewTileSketchSet(tb, g, sk)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Add(i&63, (i>>6)&63, 0.5)
	}
}

// BenchmarkStableCDF measures the analytic Fourier-inversion CDF (the
// exact-B(p) path) across the index range.
func BenchmarkStableCDF(b *testing.B) {
	for _, alpha := range []float64{0.5, 0.8, 1.5} {
		d, err := NewStableDist(alpha)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("alpha%v", alpha), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := d.CDF(1.3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStableQuantile measures B(p)-style quantile inversion.
func BenchmarkStableQuantile(b *testing.B) {
	d, err := NewStableDist(1.5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Quantile(0.75); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIntervalPoolQuery measures O(k) arbitrary-window sketch
// queries on a time series (the 1D compound path).
func BenchmarkIntervalPoolQuery(b *testing.B) {
	x := make([]float64, 4096)
	rng := rand.New(rand.NewPCG(4, 4))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	pl, err := NewIntervalPool(x, 1, 128, 9, 4, 8)
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if dst, err = pl.Sketch(i&1023, 100, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMiningAlgorithms compares the per-run cost of the three
// clustering algorithms over identical sketch-space points.
func BenchmarkMiningAlgorithms(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	const n, dim, k = 128, 64, 6
	points := make([][]float64, n)
	for i := range points {
		points[i] = make([]float64, dim)
		for j := range points[i] {
			points[i][j] = rng.NormFloat64()
		}
	}
	dist := lpnorm.MustP(2).Dist
	b.Run("kmeans", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.KMeans(points, dist, cluster.Config{K: k, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("kmedoids", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.KMedoids(points, dist, cluster.Config{K: k, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hierarchical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cluster.Agglomerative(points, dist, cluster.AverageLinkage); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAllPositionsParallel measures the worker fan-out over the k
// sketch matrices in all-positions preprocessing (Theorem 3). Run with
// `-cpu 1,4,8`: "serial" pins one worker as the baseline, "parallel"
// resolves Workers=0 to GOMAXPROCS, so the pair isolates the speedup at
// each core budget. Same seed on both paths — the determinism contract
// says the planes must be byte-identical regardless of worker count.
func BenchmarkAllPositionsParallel(b *testing.B) {
	tb := workload.Random(128, 128, 1, 17)
	const k, edge = 32, 16
	for name, workers := range map[string]int{"serial": 1, "parallel": 0} {
		b.Run(name, func(b *testing.B) {
			sk, err := core.NewSketcher(1, k, edge, edge, 7, core.EstimatorAuto)
			if err != nil {
				b.Fatal(err)
			}
			sk.SetWorkers(workers)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = sk.AllPositions(tb)
			}
		})
	}
}

// BenchmarkKMeansSketchedParallel measures the parallel point→centroid
// assignment loop over sketch-space points (the sketched clustering path
// of Figure 3 with the Workers knob on). Run with `-cpu 1,4,8`. The
// parallel variant uses ConcurrentDist, whose sync.Pool scratch makes
// the distance callback reentrant; results must match serial bit-for-bit.
func BenchmarkKMeansSketchedParallel(b *testing.B) {
	tiles, tileRows, tileCols := benchTiles(b)
	const clusters, sketchK = 8, 128
	sk, err := core.NewSketcher(1, sketchK, tileRows, tileCols, 5, core.EstimatorAuto)
	if err != nil {
		b.Fatal(err)
	}
	points := make([][]float64, len(tiles))
	for i, tile := range tiles {
		points[i] = sk.Sketch(tile, nil)
	}
	for name, workers := range map[string]int{"serial": 0, "parallel": -1} {
		b.Run(name, func(b *testing.B) {
			dist := sk.ConcurrentDist()
			cfg := cluster.Config{K: clusters, Seed: 5, Workers: workers}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.KMeans(points, dist, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCrossCorrelate isolates the primitive everything else is
// built from: one valid-region 2D cross-correlation of a kernel against
// a table. "unplanned" is the seed implementation (three fresh
// transforms per call); "planned/oneshot" routes through a throwaway
// Plan2D (table spectrum still rebuilt per call, but the cache-blocked
// column pass applies); "planned/shared" amortizes the table spectrum
// across calls and packs TWO kernels per op — per-correlation cost is
// half the reported ns/op.
func BenchmarkCrossCorrelate(b *testing.B) {
	rng := rand.New(rand.NewPCG(6, 6))
	const n, m, ka, kb = 128, 128, 16, 16
	data := make([]float64, n*m)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	kernA := make([]float64, ka*kb)
	kernB := make([]float64, ka*kb)
	for i := range kernA {
		kernA[i], kernB[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	b.Run("unplanned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fft.CrossCorrelateValidUnplanned(data, n, m, kernA, ka, kb)
		}
	})
	b.Run("planned/oneshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fft.CrossCorrelateValid(data, n, m, kernA, ka, kb)
		}
	})
	b.Run("planned/shared", func(b *testing.B) {
		plan := fft.NewPlan2D(data, n, m)
		or, oc := plan.OutDims(ka, kb)
		dstA := make([]float64, or*oc)
		dstB := make([]float64, or*oc)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			plan.CorrelatePairValid(kernA, kernB, ka, kb, dstA, 1, dstB, 1)
		}
	})
}

// BenchmarkAllPositions is the before/after for Theorem 3 preprocessing:
// "unplanned" is the seed path (per-matrix table transforms plus a
// transposing copy into the plane set), "planned" the shared-spectrum
// packed-pair engine with write-through into the stride-k lanes.
func BenchmarkAllPositions(b *testing.B) {
	tb := workload.Random(128, 128, 1, 17)
	const k, edge = 32, 16
	sk, err := core.NewSketcher(1, k, edge, edge, 7, core.EstimatorAuto)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("unplanned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sk.AllPositionsUnplanned(tb)
		}
	})
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sk.AllPositions(tb)
		}
	})
}

// BenchmarkNewPool is the before/after for Theorem 6 preprocessing.
// "planned" is NewPool itself: one forward table spectrum shared by all
// (dyadic size × subpool × matrix) jobs. "unplanned" replays the seed
// behaviour over the identical job grid — every job re-transforms the
// table for each of its k matrices — so the pair isolates exactly what
// the shared-spectrum engine removed.
func BenchmarkNewPool(b *testing.B) {
	tb := workload.Random(64, 64, 1, 11)
	const k = 16
	opts := core.PoolOptions{
		MinLogRows: 1, MaxLogRows: 4, MinLogCols: 1, MaxLogCols: 4,
		Workers: 1,
	}
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewPool(tb, 1, k, 7, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unplanned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for li := opts.MinLogRows; li <= opts.MaxLogRows; li++ {
				for lj := opts.MinLogCols; lj <= opts.MaxLogCols; lj++ {
					for s := 0; s < 4; s++ {
						sk, err := core.NewSketcher(1, k, 1<<li, 1<<lj, 7, core.EstimatorAuto)
						if err != nil {
							b.Fatal(err)
						}
						_ = sk.AllPositionsUnplanned(tb)
					}
				}
			}
		}
	})
}

// BenchmarkIncrementalAppend is the streaming-ingestion before/after:
// extending a panel-mode pool over a 256-column table by w columns via
// Pool.Append versus rebuilding it from scratch over the grown table.
// The incremental path recomputes only the panels whose overlap-save
// slab reaches the new columns, so its cost scales with w while the
// rebuild scales with the whole window.
func BenchmarkIncrementalAppend(b *testing.B) {
	const rows, baseCols, k = 64, 256, 16
	opts := core.PoolOptions{
		MinLogRows: 1, MaxLogRows: 4, MinLogCols: 1, MaxLogCols: 4,
		PanelCols: 32, Workers: 1,
	}
	full := workload.Random(rows, baseCols+64, 1, 21)
	base := full.Sub(table.Rect{Rows: rows, Cols: baseCols})
	basePool, err := core.NewPool(base, 1, k, 7, opts)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 8, 64} {
		grown := full.Sub(table.Rect{Rows: rows, Cols: baseCols + w})
		b.Run(fmt.Sprintf("append/w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := basePool.Append(context.Background(), grown); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rebuild/w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewPool(grown, 1, k, 7, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPoolBuild measures Theorem 6's preprocessing (all dyadic
// sizes) and the parallel-construction ablation.
func BenchmarkPoolBuild(b *testing.B) {
	tb := workload.Random(64, 64, 1, 11)
	opts := core.PoolOptions{MinLogRows: 1, MaxLogRows: 4, MinLogCols: 1, MaxLogCols: 4}
	for name, workers := range map[string]int{"serial": 1, "parallel": 0} {
		o := opts
		o.Workers = workers
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewPool(tb, 1, 16, 7, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
