// Package tabmine is the public API of this reproduction of Cormode,
// Indyk, Koudas & Muthukrishnan, "Fast Mining of Massive Tabular Data via
// Approximate Distance Computations" (ICDE 2002).
//
// The library mines massive tabular data (station × time call volumes,
// host × time traffic matrices, ...) by replacing the expensive inner
// operation — the Lp distance between two subtables — with small
// p-stable sketches:
//
//   - Table holds dense tabular data; Grid partitions it into the tiles
//     mining algorithms operate on; ReadTable/WriteTable persist tables as
//     (optionally gzip-compressed) flat files, ReadCSV/WriteCSV
//     interoperate with text tools.
//   - Sketcher builds Lp sketches for a fixed tile size, for any
//     p ∈ (0, 2] — classical p = 1, 2 or the fractional p the paper
//     advocates — with the (1±ε) estimation guarantee of Theorems 1–2.
//   - Sketcher.AllPositions precomputes sketches for every tile position
//     of a table in O(k·N·log N) via FFT (Theorem 3); Pool does the same
//     for a canonical family of dyadic tile sizes and answers sketch and
//     distance queries for arbitrary rectangles in O(k) (Theorems 5–6).
//   - Cache implements sketch-on-demand (Section 4.4's second scenario).
//   - KMeans clusters tiles under any distance — exact Lp via P, or
//     sketched — and the evaluation helpers (Cumulative, Average,
//     Pairwise, Agreement, Quality) score estimators and clusterings the
//     way the paper's Section 4.1 does.
//
// A minimal end-to-end flow:
//
//	tb, _, _ := tabmine.GenerateCallVolume(tabmine.CallVolumeConfig{Stations: 192, Days: 4, Seed: 1})
//	grid, _ := tabmine.NewGrid(tb.Rows(), tb.Cols(), 16, 144)
//	tiles := grid.Tiles(tb)
//	sk, _ := tabmine.NewSketcher(0.5, 128, 16, 144, 1, tabmine.EstimatorAuto)
//	points := make([][]float64, len(tiles))
//	for i, tile := range tiles {
//		points[i] = sk.Sketch(tile, nil)
//	}
//	res, _ := tabmine.KMeans(points, sk.Distance, tabmine.KMeansConfig{K: 20, Seed: 1})
//	_ = res.Assign // tile -> cluster
//
// # Concurrency
//
// The hot paths fan out over a shared worker-pool layer with a strict
// determinism contract: per-matrix and per-point results are written to
// disjoint pre-allocated slots, never combined by a scheduling-dependent
// reduction, so the same seed yields byte-identical sketches and cluster
// assignments at ANY worker count. The knobs:
//
//   - Sketcher.SetWorkers bounds the fan-out of Sketch and AllPositions
//     over the k random matrices (0, the default, means all cores).
//   - PoolOptions.Workers bounds dyadic plane-set construction.
//   - KMeansConfig.Workers parallelizes the assignment step of KMeans and
//     KMedoids; it defaults to 0 = serial because the dist callback must
//     be safe for concurrent use before fanning out — use
//     Sketcher.ConcurrentDist (reentrant, allocation-free) or any pure
//     function such as P.Dist, and set Workers < 0 for all cores.
//
// Sketcher (after SetWorkers), Pool, PlaneSet, HashSketcher and the
// evaluation helpers are safe for concurrent use. Cache and TileSketchSet
// mutate internal state on use and are single-goroutine only.
//
// # Fault tolerance
//
// Long-running entry points take an optional context for cooperative
// cancellation: Sketcher.AllPositionsCtx, PoolOptions.Context (NewPool),
// and KMeansConfig.Context (KMeans, KMedoids). A cancelled run returns
// the context's error promptly and publishes no partial state; a run
// that completes is byte-identical whether or not a context was set. A
// panic on a worker goroutine is recovered and returned as a
// *PanicError (carrying the panic value and worker stack) instead of
// crashing the process.
//
// Persistence is crash-safe and self-checking: SavePoolFile and
// SavePlaneSetFile replace snapshots atomically (temp file + fsync +
// rename), snapshot sections carry CRC32C checksums verified on load
// (corruption surfaces as ErrSnapshotChecksum, and files from older
// versions still load), and Store appends day files atomically with
// checksums recorded in the manifest — Store.Fsck verifies and repairs
// a store after a crash or disk corruption.
//
// See the examples/ directory for complete programs and DESIGN.md for how
// each component maps onto the paper.
package tabmine

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/evalmetrics"
	"repro/internal/lpnorm"
	"repro/internal/parallel"
	"repro/internal/series"
	"repro/internal/stable"
	"repro/internal/tabfile"
	"repro/internal/table"
	"repro/internal/tabstore"
	"repro/internal/vizascii"
	"repro/internal/workload"
)

// DefaultWorkers returns the worker count a Workers knob of 0 resolves to
// — runtime.GOMAXPROCS(0). Every concurrent path in the library accepts a
// Workers setting with this default and produces byte-identical results
// at any value (see the package-level Concurrency section).
func DefaultWorkers() int { return parallel.Resolve(0) }

// Table is a dense rows×cols table of float64 values.
type Table = table.Table

// Rect identifies a subtable rectangle.
type Rect = table.Rect

// Grid partitions a table into equal tiles.
type Grid = table.Grid

// Stats summarizes a table.
type Stats = table.Stats

// NewTable allocates a zeroed rows×cols table.
func NewTable(rows, cols int) *Table { return table.New(rows, cols) }

// TableFromData wraps a row-major slice as a table without copying.
func TableFromData(rows, cols int, data []float64) (*Table, error) {
	return table.FromData(rows, cols, data)
}

// TableFromRows copies a slice of equal-length rows into a table.
func TableFromRows(rows [][]float64) (*Table, error) { return table.FromRows(rows) }

// NewGrid describes tiling a tableRows×tableCols table into
// tileRows×tileCols tiles.
func NewGrid(tableRows, tableCols, tileRows, tileCols int) (*Grid, error) {
	return table.NewGrid(tableRows, tableCols, tileRows, tileCols)
}

// Stitch concatenates tables along the time axis (e.g. consecutive days).
func Stitch(tables ...*Table) (*Table, error) { return table.Stitch(tables...) }

// ReadTable reads a binary table file written by WriteTable.
func ReadTable(r io.Reader) (*Table, error) { return tabfile.Read(r) }

// WriteTable writes a table as a binary flat file, gzipped if compress.
func WriteTable(w io.Writer, t *Table, compress bool) error { return tabfile.Write(w, t, compress) }

// ReadTableFile and WriteTableFile are the path-based variants.
func ReadTableFile(path string) (*Table, error) { return tabfile.ReadFile(path) }

// WriteTableFile writes a table to path in the binary format.
func WriteTableFile(path string, t *Table, compress bool) error {
	return tabfile.WriteFile(path, t, compress)
}

// ReadCSV parses numeric CSV into a table; WriteCSV does the reverse.
func ReadCSV(r io.Reader) (*Table, error) { return tabfile.ReadCSV(r) }

// WriteCSV emits a table as CSV.
func WriteCSV(w io.Writer, t *Table) error { return tabfile.WriteCSV(w, t) }

// P is a validated Lp exponent providing exact norms and distances.
type P = lpnorm.P

// NewP validates an Lp exponent in (0, 2].
func NewP(p float64) (P, error) { return lpnorm.NewP(p) }

// MustP is NewP that panics on error.
func MustP(p float64) P { return lpnorm.MustP(p) }

// Hamming counts differing entries (the p → 0 limit).
func Hamming(x, y []float64) int { return lpnorm.Hamming(x, y) }

// Estimator selects the sketch distance estimator.
type Estimator = core.Estimator

// Estimator choices (see core docs): Auto picks the paper's behaviour.
const (
	EstimatorAuto   = core.EstimatorAuto
	EstimatorMedian = core.EstimatorMedian
	EstimatorL2     = core.EstimatorL2
)

// Sketcher builds Lp sketches for one tile size.
type Sketcher = core.Sketcher

// PlaneSet holds precomputed sketches for every tile position.
type PlaneSet = core.PlaneSet

// TablePlan is the shared frequency-domain correlation plan of one table:
// its padded forward FFT spectrum, computed once and reused read-only by
// every Sketcher.AllPositionsPlan call over that table. Build one when
// several plane sets cover the same table (multiple tile sizes or sketch
// sets) — Pool and IntervalPool construction do this internally. Safe for
// concurrent use.
type TablePlan = core.TablePlan

// NewTablePlan computes the shared correlation plan of t (one forward
// table FFT at the padded power-of-two size).
func NewTablePlan(t *Table) *TablePlan { return core.NewTablePlan(t) }

// Pool holds plane sets for canonical dyadic sizes and answers arbitrary-
// rectangle sketch queries via compound sketches.
type Pool = core.Pool

// PoolOptions configures the dyadic size range of a Pool.
type PoolOptions = core.PoolOptions

// Cache memoizes sketches computed on demand. It mutates internal state
// on every query and is documented single-goroutine: do not share one
// Cache across goroutines (unlike Sketcher, Pool and PlaneSet, which are
// safe for concurrent use).
type Cache = core.Cache

// NewSketcher builds a Sketcher for p ∈ (0,2] with k entries over
// rows×cols tiles.
func NewSketcher(p float64, k, rows, cols int, seed uint64, estimator Estimator) (*Sketcher, error) {
	return core.NewSketcher(p, k, rows, cols, seed, estimator)
}

// NewPool precomputes dyadic sketch plane sets over t (Theorem 6).
func NewPool(t *Table, p float64, k int, seed uint64, opts PoolOptions) (*Pool, error) {
	return core.NewPool(t, p, k, seed, opts)
}

// DefaultPoolOptions covers every dyadic size fitting t.
func DefaultPoolOptions(t *Table) PoolOptions { return core.DefaultPoolOptions(t) }

// NewCache wraps t with sketch-on-demand behaviour.
func NewCache(t *Table, sk *Sketcher) *Cache { return core.NewCache(t, sk) }

// KForAccuracy sizes a sketch for a (1±eps) guarantee at confidence
// 1-delta.
func KForAccuracy(eps, delta float64) (int, error) { return core.KForAccuracy(eps, delta) }

// KForAccuracyAtP sizes a sketch for a (1±eps) guarantee at confidence
// 1-delta with the exact p-dependent constant (computed from the stable
// law's CDF; p ≥ 0.3). Prefer this over KForAccuracy for fractional p —
// the generic constant undersizes heavy-tailed sketches by an order of
// magnitude at p = 0.5.
func KForAccuracyAtP(p, eps, delta float64) (int, error) {
	return core.KForAccuracyAtP(p, eps, delta)
}

// StableDist samples symmetric α-stable distributions (the randomness
// behind sketches), exported for reuse in custom estimators.
type StableDist = stable.Dist

// NewStableDist returns the symmetric α-stable distribution for
// alpha ∈ (0, 2].
func NewStableDist(alpha float64) (*StableDist, error) { return stable.New(alpha) }

// StableMedianAbs returns the estimator scaling factor B(α).
func StableMedianAbs(alpha float64) float64 { return stable.MedianAbs(alpha) }

// KMeansConfig configures a clustering run.
type KMeansConfig = cluster.Config

// KMeansResult reports a clustering.
type KMeansResult = cluster.Result

// DistFunc measures distance between two equal-length points.
type DistFunc = cluster.DistFunc

// Init methods for KMeans.
const (
	InitRandom   = cluster.InitRandom
	InitPlusPlus = cluster.InitPlusPlus
)

// KMeans clusters points under dist (exact or sketched).
func KMeans(points [][]float64, dist DistFunc, cfg KMeansConfig) (*KMeansResult, error) {
	return cluster.KMeans(points, dist, cfg)
}

// Spread sums each point's distance to its cluster centroid.
func Spread(points [][]float64, assign []int, centroids [][]float64, dist DistFunc) float64 {
	return cluster.Spread(points, assign, centroids, dist)
}

// CentroidsOf rebuilds mean centroids for an existing assignment.
func CentroidsOf(points [][]float64, assign []int, k int) [][]float64 {
	return cluster.CentroidsOf(points, assign, k)
}

// Accuracy measures of Section 4.1 (Definitions 7–11).
var (
	// Cumulative is Σ estimated / Σ exact (Definition 7).
	Cumulative = evalmetrics.Cumulative
	// Average is the mean per-experiment relative agreement (Definition 8).
	Average = evalmetrics.Average
	// Pairwise scores "closer to Y or Z?" agreement (Definition 9).
	Pairwise = evalmetrics.Pairwise
	// Agreement is the matched confusion-matrix diagonal (Definition 10).
	Agreement = evalmetrics.Agreement
	// Quality is the exact/sketch spread ratio (Definition 11).
	Quality = evalmetrics.Quality
)

// Triple is one pairwise-comparison experiment for Pairwise.
type Triple = evalmetrics.Triple

// CallVolumeConfig parameterizes the synthetic call-volume generator.
type CallVolumeConfig = workload.CallVolumeConfig

// CallVolumeMeta describes the generated structure.
type CallVolumeMeta = workload.CallVolumeMeta

// SixRegionsConfig parameterizes the planted-clustering dataset.
type SixRegionsConfig = workload.SixRegionsConfig

// SixRegions is the planted-clustering dataset with ground truth.
type SixRegions = workload.SixRegions

// GenerateCallVolume builds a synthetic station×time call-volume table
// (see DESIGN.md for how it substitutes for the paper's AT&T data).
func GenerateCallVolume(cfg CallVolumeConfig) (*Table, *CallVolumeMeta, error) {
	return workload.CallVolume(cfg)
}

// GenerateSixRegions builds the six-region synthetic dataset of §4.2.
func GenerateSixRegions(cfg SixRegionsConfig) (*SixRegions, error) {
	return workload.NewSixRegions(cfg)
}

// BucketsPerDay is the paper's time resolution (10-minute buckets).
const BucketsPerDay = workload.BucketsPerDay

// Linkage selects the agglomerative merge criterion.
type Linkage = cluster.Linkage

// Linkage choices for Agglomerative.
const (
	SingleLinkage   = cluster.SingleLinkage
	CompleteLinkage = cluster.CompleteLinkage
	AverageLinkage  = cluster.AverageLinkage
)

// Merge is one dendrogram step produced by Agglomerative.
type Merge = cluster.Merge

// KMedoids clusters points around medoids (actual data points) — the
// mean-free alternative to KMeans, well-defined for any distance
// including sketched fractional-p distances.
func KMedoids(points [][]float64, dist DistFunc, cfg KMeansConfig) (*KMeansResult, error) {
	return cluster.KMedoids(points, dist, cfg)
}

// Agglomerative builds a bottom-up hierarchical clustering and returns
// the dendrogram merges; CutDendrogram flattens it to k clusters.
func Agglomerative(points [][]float64, dist DistFunc, linkage Linkage) ([]Merge, error) {
	return cluster.Agglomerative(points, dist, linkage)
}

// CutDendrogram flattens a dendrogram over n points into k cluster labels.
func CutDendrogram(merges []Merge, n, k int) ([]int, error) {
	return cluster.CutDendrogram(merges, n, k)
}

// TileSketchSet maintains per-tile sketches under streaming point updates
// in O(k) per update.
type TileSketchSet = core.TileSketchSet

// NewTileSketchSet sketches every tile of t under g and keeps the
// sketches current as cells change.
func NewTileSketchSet(t *Table, g *Grid, sk *Sketcher) (*TileSketchSet, error) {
	return core.NewTileSketchSet(t, g, sk)
}

// IntervalPool answers Lp distance queries over arbitrary windows of a
// one-dimensional time series (the paper's 1D predecessor machinery).
type IntervalPool = series.IntervalPool

// NewIntervalPool precomputes dyadic window sketches over x.
func NewIntervalPool(x []float64, p float64, k int, seed uint64, minLog, maxLog int) (*IntervalPool, error) {
	return series.NewIntervalPool(x, p, k, seed, minLog, maxLog)
}

// Store is a day-partitioned on-disk table store (one binary table file
// per day plus a manifest); days load individually or stitched.
type Store = tabstore.Store

// OpenStore opens or initializes a store rooted at dir.
func OpenStore(dir string) (*Store, error) { return tabstore.Open(dir) }

// ClusterMap renders a tile-grid clustering as ASCII art or PNG (the
// Figure 5 medium).
type ClusterMap = vizascii.Map

// HashSketcher generates sketch randomness on demand from a hash, so
// sketches of turnstile streams are maintainable in O(k) memory without
// storing random matrices (Indyk's streaming setting, reference [12]).
type HashSketcher = core.HashSketcher

// Stream is a sketch maintained under point updates, created by
// HashSketcher.NewStream.
type Stream = core.Stream

// NewHashSketcher builds a hash-based sketcher over a domain of dim
// positions.
func NewHashSketcher(p float64, k, dim int, seed uint64, estimator Estimator) (*HashSketcher, error) {
	return core.NewHashSketcher(p, k, dim, seed, estimator)
}

// External clustering indices beyond the paper's Definition 10, both
// label-permutation invariant:
var (
	// AdjustedRand is the chance-corrected Rand index (1 identical,
	// ~0 independent).
	AdjustedRand = evalmetrics.AdjustedRand
	// NMI is normalized mutual information (1 identical, 0 independent).
	NMI = evalmetrics.NMI
)

// StableMedianAbsAnalytic computes B(α) by Fourier inversion of the
// characteristic function (exact up to quadrature tolerance); available
// for α ≥ 0.3. StableMedianAbs dispatches to it automatically.
func StableMedianAbsAnalytic(alpha float64) (float64, error) {
	return stable.MedianAbsAnalytic(alpha)
}

// TrafficConfig parameterizes the synthetic router-traffic generator.
type TrafficConfig = workload.TrafficConfig

// GenerateTraffic builds a synthetic host×time traffic table (the
// paper's IP-router motivating application).
func GenerateTraffic(cfg TrafficConfig) (*Table, error) { return workload.Traffic(cfg) }

// Silhouette computes the mean silhouette coefficient of a clustering —
// an internal quality measure requiring no ground truth.
var Silhouette = cluster.Silhouette

// BestOf reruns a stochastic clustering with derived seeds and returns
// the run with the smallest spread (the algorithm's own objective).
var BestOf = cluster.BestOf

// Row-normalization preprocessing (the paper's "dilation, scaling and
// other operations ... before computing the L1 or L2 norms"):
var (
	// ScaleRows multiplies each row by its own factor.
	ScaleRows = table.ScaleRows
	// CenterRows subtracts each row's mean.
	CenterRows = table.CenterRows
	// UnitRows scales rows to unit Euclidean norm.
	UnitRows = table.UnitRows
	// StandardizeRows centers and unit-variance-scales each row.
	StandardizeRows = table.StandardizeRows
	// ClampNonNegative zeroes negative cells.
	ClampNonNegative = table.ClampNonNegative
)

// Sketch persistence: precomputed pools and plane sets save to compact
// binary files and load without recomputing any correlations (random
// matrices regenerate from the recorded seeds). Snapshot sections are
// CRC32C-checksummed; loads of corrupted files fail with an error
// wrapping ErrSnapshotChecksum rather than returning wrong distances.
var (
	// SavePool serializes a dyadic sketch pool.
	SavePool = core.SavePool
	// LoadPool deserializes a pool saved with SavePool.
	LoadPool = core.LoadPool
	// SavePlaneSet serializes one all-positions plane set.
	SavePlaneSet = core.SavePlaneSet
	// LoadPlaneSet deserializes a plane set saved with SavePlaneSet.
	LoadPlaneSet = core.LoadPlaneSet
	// SavePoolFile writes a pool snapshot to a path atomically (temp
	// file + fsync + rename): a crash or error mid-save leaves any
	// previous snapshot at the path intact, never a torn file.
	SavePoolFile = core.SavePoolFile
	// LoadPoolFile reads a pool snapshot from a path.
	LoadPoolFile = core.LoadPoolFile
	// SavePlaneSetFile writes a plane-set snapshot atomically.
	SavePlaneSetFile = core.SavePlaneSetFile
	// LoadPlaneSetFile reads a plane-set snapshot from a path.
	LoadPlaneSetFile = core.LoadPlaneSetFile
)

// ErrSnapshotChecksum is wrapped by snapshot-load errors caused by a
// CRC32C mismatch or an internally inconsistent section length — i.e.
// the file is corrupt, not merely from an unsupported version. Check
// with errors.Is.
var ErrSnapshotChecksum = core.ErrChecksum

// ErrNonFinite is wrapped by table constructors, normalizers, and the
// file readers when a cell (or scale factor) is NaN or ±Inf: non-finite
// values are rejected at ingress because they would silently poison
// every sketch derived from the table. Check with errors.Is.
var ErrNonFinite = table.ErrNonFinite

// PanicError is how a panic on a worker goroutine surfaces from the
// context-aware entry points (NewPool with a Context, AllPositionsCtx,
// KMeans/KMedoids with a Context): recovered, wrapped with the worker's
// stack, and returned as an error. Check with errors.As.
type PanicError = parallel.PanicError

// StoreFsckReport is what Store.Fsck found and repaired.
type StoreFsckReport = tabstore.FsckReport

// ChooseK selects the cluster count in [kMin, kMax] maximizing the
// silhouette coefficient over best-of-restart k-means runs.
var ChooseK = cluster.ChooseK
