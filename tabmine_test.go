package tabmine

import (
	"bytes"
	"fmt"
	"math"
	"testing"
)

// TestEndToEndSketchClustering exercises the whole public surface the way
// the package documentation advertises: generate data, tile it, sketch
// the tiles, cluster in sketch space, and score against an exact run.
func TestEndToEndSketchClustering(t *testing.T) {
	tb, meta, err := GenerateCallVolume(CallVolumeConfig{Stations: 96, Days: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(meta.Centers) == 0 {
		t.Fatal("no population centers generated")
	}
	const tileRows = 8
	grid, err := NewGrid(tb.Rows(), tb.Cols(), tileRows, BucketsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	tiles := grid.Tiles(tb)

	const p, sketchK, clusters = 1.0, 128, 5
	sk, err := NewSketcher(p, sketchK, tileRows, BucketsPerDay, 7, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	points := make([][]float64, len(tiles))
	for i, tile := range tiles {
		points[i] = sk.Sketch(tile, nil)
	}
	sketchRes, err := KMeans(points, sk.Distance, KMeansConfig{K: clusters, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	lp := MustP(p)
	exactRes, err := KMeans(tiles, lp.Dist, KMeansConfig{K: clusters, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	agree, err := Agreement(exactRes.Assign, sketchRes.Assign, clusters)
	if err != nil {
		t.Fatal(err)
	}
	if agree < 0.4 {
		t.Errorf("sketch/exact clustering agreement %v implausibly low", agree)
	}

	// Quality (Definition 11): both spreads in tile space with exact Lp.
	exactSpread := Spread(tiles, exactRes.Assign, CentroidsOf(tiles, exactRes.Assign, clusters), lp.Dist)
	sketchSpread := Spread(tiles, sketchRes.Assign, CentroidsOf(tiles, sketchRes.Assign, clusters), lp.Dist)
	q, err := Quality(exactSpread, sketchSpread)
	if err != nil {
		t.Fatal(err)
	}
	if q < 0.6 || q > 1.7 {
		t.Errorf("clustering quality %v outside sane band", q)
	}
}

func TestFacadeTableRoundTrip(t *testing.T) {
	tb := NewTable(4, 4)
	tb.Set(2, 2, 5)
	var buf bytes.Buffer
	if err := WriteTable(&buf, tb, true); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTable(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(2, 2) != 5 {
		t.Error("binary roundtrip lost data")
	}
	buf.Reset()
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err = ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(2, 2) != 5 {
		t.Error("CSV roundtrip lost data")
	}
}

func TestFacadePoolAndCache(t *testing.T) {
	tb, _, err := GenerateCallVolume(CallVolumeConfig{Stations: 32, Days: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(tb, 1, 32, 5, PoolOptions{
		MinLogRows: 2, MaxLogRows: 3, MinLogCols: 2, MaxLogCols: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	a := Rect{R0: 0, C0: 0, Rows: 8, Cols: 8}
	b := Rect{R0: 16, C0: 40, Rows: 8, Cols: 8}
	dPool, err := pool.Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewSketcher(1, 512, 8, 8, 5, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewCache(tb, sk)
	dCache := cache.Distance(a, b)
	exact := MustP(1).Dist(tb.Linearize(a, nil), tb.Linearize(b, nil))
	for name, d := range map[string]float64{"pool": dPool, "cache": dCache} {
		if rel := math.Abs(d-exact) / exact; rel > 0.5 {
			t.Errorf("%s distance %v far from exact %v", name, d, exact)
		}
	}
	if hits, misses := cache.Stats(); hits != 0 || misses != 2 {
		t.Errorf("cache stats (%d, %d), want (0, 2)", hits, misses)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if k, err := KForAccuracy(0.1, 0.05); err != nil || k < 100 {
		t.Errorf("KForAccuracy = %d, %v", k, err)
	}
	if b := StableMedianAbs(1); b != 1 {
		t.Errorf("StableMedianAbs(1) = %v", b)
	}
	if _, err := NewStableDist(3); err == nil {
		t.Error("alpha=3: expected error")
	}
	if Hamming([]float64{1, 2}, []float64{1, 3}) != 1 {
		t.Error("Hamming wrong")
	}
	d, err := GenerateSixRegions(SixRegionsConfig{Rows: 32, Cols: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d.Table.Rows() != 32 {
		t.Error("six regions dims wrong")
	}
	day1 := NewTable(4, 6)
	day2 := NewTable(4, 6)
	st, err := Stitch(day1, day2)
	if err != nil || st.Cols() != 12 {
		t.Errorf("Stitch: %v, cols %d", err, st.Cols())
	}
}

func TestFacadeNewAlgorithms(t *testing.T) {
	points := [][]float64{{0}, {1}, {2}, {50}, {51}, {52}}
	lp := MustP(1)

	med, err := KMedoids(points, lp.Dist, KMeansConfig{K: 2, Seed: 1, Init: InitPlusPlus})
	if err != nil {
		t.Fatal(err)
	}
	if med.Assign[0] != med.Assign[1] || med.Assign[0] == med.Assign[5] {
		t.Errorf("k-medoids assignment %v", med.Assign)
	}

	merges, err := Agglomerative(points, lp.Dist, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := CutDendrogram(merges, len(points), 2)
	if err != nil {
		t.Fatal(err)
	}
	if labels[0] != labels[2] || labels[0] == labels[3] {
		t.Errorf("dendrogram cut %v", labels)
	}
}

func TestFacadeTileSketchSet(t *testing.T) {
	tb := NewTable(8, 8)
	g, err := NewGrid(8, 8, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewSketcher(1, 8, 4, 4, 1, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewTileSketchSet(tb, g, sk)
	if err != nil {
		t.Fatal(err)
	}
	set.Set(0, 0, 10)
	if set.Updates() != 1 {
		t.Error("update not counted")
	}
	if set.Distance(0, 1) <= 0 {
		t.Error("distance should be positive after update")
	}
}

func TestFacadeIntervalPool(t *testing.T) {
	x := make([]float64, 64)
	for i := range x {
		x[i] = float64(i % 7)
	}
	pl, err := NewIntervalPool(x, 1, 16, 1, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pl.Distance(0, 16, 12); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeStore(t *testing.T) {
	s, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDay("d0", NewTable(4, 6), true); err != nil {
		t.Fatal(err)
	}
	day, err := s.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	if day.Cols() != 6 {
		t.Error("store day dims wrong")
	}
}

func TestFacadeClusterMapPNG(t *testing.T) {
	m := &ClusterMap{GridRows: 2, GridCols: 2, K: 2, Assign: []int{0, 1, 1, 0}}
	var buf bytes.Buffer
	if err := m.RenderPNG(&buf, 4, false); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty PNG")
	}
}

// TestFullPipeline exercises the complete production flow: days arrive
// into an on-disk store, a range is loaded stitched, sketched, clustered,
// scored, and rendered — every subsystem touching every other.
func TestFullPipeline(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 3; d++ {
		day, _, err := GenerateCallVolume(CallVolumeConfig{
			Stations: 64, Days: 1, Seed: uint64(10 + d),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := store.AppendDay(fmt.Sprintf("day-%d", d), day, true); err != nil {
			t.Fatal(err)
		}
	}

	// Reopen cold (fresh process simulation) and load a stitched range.
	store2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := store2.LoadRange(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Cols() != 3*BucketsPerDay {
		t.Fatalf("stitched cols %d", tb.Cols())
	}

	// Tile, sketch, cluster.
	const tileRows, clusters = 8, 4
	grid, err := NewGrid(tb.Rows(), tb.Cols(), tileRows, BucketsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	tiles := grid.Tiles(tb)
	sk, err := NewSketcher(1, 128, tileRows, BucketsPerDay, 3, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	points := make([][]float64, len(tiles))
	for i, tile := range tiles {
		points[i] = sk.Sketch(tile, nil)
	}
	res, err := KMeans(points, sk.Distance, KMeansConfig{K: clusters, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Score with an internal index and render both ways.
	sil, err := Silhouette(points, res.Assign, clusters, sk.Distance)
	if err != nil {
		t.Fatal(err)
	}
	if sil < -0.2 {
		t.Errorf("pipeline clustering silhouette %v suspiciously bad", sil)
	}
	m := &ClusterMap{
		GridRows: grid.GridRows(), GridCols: grid.GridCols(),
		K: clusters, Assign: res.Assign,
	}
	art, err := m.Render(true)
	if err != nil {
		t.Fatal(err)
	}
	if len(art) == 0 {
		t.Error("empty ASCII render")
	}
	var png bytes.Buffer
	if err := m.RenderPNG(&png, 6, true); err != nil {
		t.Fatal(err)
	}
	if png.Len() == 0 {
		t.Error("empty PNG render")
	}
}

func TestFacadeRemainingWrappers(t *testing.T) {
	// File-path table I/O.
	dir := t.TempDir()
	path := dir + "/t.tabf"
	tb := NewTable(2, 2)
	tb.Set(1, 1, 9)
	if err := WriteTableFile(path, tb, false); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTableFile(path)
	if err != nil || got.At(1, 1) != 9 {
		t.Fatalf("file roundtrip: %v, %v", got, err)
	}

	// Constructors.
	if _, err := TableFromData(2, 2, make([]float64, 3)); err == nil {
		t.Error("TableFromData bad length: expected error")
	}
	ft, err := TableFromRows([][]float64{{1, 2}})
	if err != nil || ft.Cols() != 2 {
		t.Error("TableFromRows failed")
	}
	if _, err := NewP(9); err == nil {
		t.Error("NewP(9): expected error")
	}

	// Pool options default covers the table.
	opts := DefaultPoolOptions(tb)
	if opts.MaxLogRows != 1 || opts.MaxLogCols != 1 {
		t.Errorf("DefaultPoolOptions = %+v", opts)
	}

	// Traffic generator.
	tr, err := GenerateTraffic(TrafficConfig{Hosts: 16, Days: 1, Seed: 1})
	if err != nil || tr.Rows() != 16 {
		t.Fatalf("GenerateTraffic: %v", err)
	}

	// Normalization ops.
	CenterRows(tr)
	UnitRows(tr)
	StandardizeRows(tr)
	ClampNonNegative(tr)
	if err := ScaleRows(tr, make([]float64, 16)); err != nil {
		t.Fatal(err)
	}

	// Indices + silhouette + BestOf.
	a := []int{0, 0, 1, 1}
	ari, err := AdjustedRand(a, a, 2)
	if err != nil || ari != 1 {
		t.Errorf("ARI: %v, %v", ari, err)
	}
	nmi, err := NMI(a, a, 2)
	if err != nil || nmi != 1 {
		t.Errorf("NMI: %v, %v", nmi, err)
	}
	points := [][]float64{{0}, {0.1}, {10}, {10.1}}
	sil, err := Silhouette(points, a, 2, MustP(2).Dist)
	if err != nil || sil < 0.9 {
		t.Errorf("Silhouette: %v, %v", sil, err)
	}
	best, err := BestOf(2, 1, func(seed uint64) (*KMeansResult, error) {
		return KMeans(points, MustP(2).Dist, KMeansConfig{K: 2, Seed: seed})
	})
	if err != nil || best == nil {
		t.Fatalf("BestOf: %v", err)
	}

	// Analytic B(p).
	v, err := StableMedianAbsAnalytic(1.5)
	if err != nil || v <= 0 {
		t.Errorf("StableMedianAbsAnalytic: %v, %v", v, err)
	}
}
