// Command tabmine-query is the retrying client for tabmine-serve: it
// issues one distance / nearest / assign query with jittered
// exponential backoff, a retry budget, and Retry-After handling, so a
// shed (503) or timed-out (504) query is re-asked automatically until
// the budget runs out.
//
//	tabmine-query -server http://127.0.0.1:8080 -op distance \
//	    -a 0,0,16,16 -b 32,32,16,16 -mode auto
//	tabmine-query -server http://127.0.0.1:8080 -op nearest \
//	    -q 8,8,8,8 -mode prune -epsilon 0.1 -delta 0.05
//
// The answer is printed as JSON (including the tier tag, so callers
// can see whether the answer was degraded and re-ask with -mode exact
// later). -mode prune (nearest, assign) runs the progressive
// confidence-margin scan; -epsilon/-delta tune it, negative values
// keep the server defaults. Exit status: 0 on an answer, 1 on failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/runctx"
	"repro/internal/server"
)

func main() {
	var (
		base     = flag.String("server", "http://127.0.0.1:8080", "server base URL")
		op       = flag.String("op", "distance", "operation: distance | nearest | assign | health")
		rectA    = flag.String("a", "", "first rectangle as row,col,height,width (distance)")
		rectB    = flag.String("b", "", "second rectangle (distance)")
		rectQ    = flag.String("q", "", "query rectangle (nearest, assign)")
		mode     = flag.String("mode", server.ModeAuto, "accuracy mode: auto | exact | sketch | prune (nearest, assign)")
		epsilon  = flag.Float64("epsilon", -1, "prune screen headroom (mode=prune; negative = server default)")
		delta    = flag.Float64("delta", -1, "prune failure budget in (0,1) (mode=prune; negative = server default)")
		attempts = flag.Int("attempts", 5, "max tries per query")
		baseWait = flag.Duration("base-delay", 50*time.Millisecond, "backoff base delay")
		budget   = flag.Duration("budget", 15*time.Second, "total retry-wait budget")
		seed     = flag.Uint64("seed", 0, "jitter seed (0 = default)")
		timeout  = flag.Duration("timeout", time.Minute, "overall deadline for the query including retries")
	)
	flag.Parse()

	ctx, stop := runctx.WithSignals(*timeout)
	defer stop()

	c, err := client.New(client.Config{
		BaseURL: *base, MaxAttempts: *attempts, BaseDelay: *baseWait,
		Budget: *budget, Seed: *seed,
	})
	fatal(err)

	var res any
	switch *op {
	case "distance":
		a, err := server.ParseRect(*rectA)
		fatal(err)
		b, err := server.ParseRect(*rectB)
		fatal(err)
		res, err = c.Distance(ctx, a, b, *mode)
		fatal(err)
	case "nearest":
		q, err := server.ParseRect(*rectQ)
		fatal(err)
		if *mode == server.ModePrune {
			res, err = c.NearestPruned(ctx, q, *epsilon, *delta)
		} else {
			res, err = c.Nearest(ctx, q, *mode)
		}
		fatal(err)
	case "assign":
		q, err := server.ParseRect(*rectQ)
		fatal(err)
		if *mode == server.ModePrune {
			res, err = c.AssignPruned(ctx, q, *epsilon, *delta)
		} else {
			res, err = c.Assign(ctx, q, *mode)
		}
		fatal(err)
	case "health":
		var err error
		res, err = c.Health(ctx)
		fatal(err)
	default:
		fatal(fmt.Errorf("unknown -op %q", *op))
	}
	out, err := json.Marshal(res)
	fatal(err)
	fmt.Println(string(out))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-query: %v\n", err)
		os.Exit(1)
	}
}
