// Command tabmine-query is the retrying client for tabmine-serve: it
// issues one distance / nearest / assign query with jittered
// exponential backoff, a retry budget, and Retry-After handling, so a
// shed (503) or timed-out (504) query is re-asked automatically until
// the budget runs out.
//
//	tabmine-query -server http://127.0.0.1:8080 -op distance \
//	    -a 0,0,16,16 -b 32,32,16,16 -mode auto
//	tabmine-query -server http://127.0.0.1:8080 -op nearest \
//	    -q 8,8,8,8 -mode prune -epsilon 0.1 -delta 0.05
//
// The answer is printed as JSON (including the tier tag, so callers
// can see whether the answer was degraded and re-ask with -mode exact
// later). -mode prune (nearest, assign) runs the progressive
// confidence-margin scan; -epsilon/-delta tune it, negative values
// keep the server defaults. Exit status: 0 on an answer, 1 on failure.
//
// -batch file reads queries as JSON lines ("-" for stdin) and issues
// them as one POST /v1/batch/* request — one line per query, the
// fields of a batch item: {"a":...,"b":...} for distance,
// {"q":...} for nearest and assign. One JSON line is printed per
// query, in input order; per-item failures print {"error": ...} and do
// not abort the rest of the batch. Exit status 0 if every item
// answered, 1 otherwise.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/client"
	"repro/internal/runctx"
	"repro/internal/server"
	"repro/internal/table"
)

func main() {
	var (
		base     = flag.String("server", "http://127.0.0.1:8080", "server base URL")
		op       = flag.String("op", "distance", "operation: distance | nearest | assign | health")
		rectA    = flag.String("a", "", "first rectangle as row,col,height,width (distance)")
		rectB    = flag.String("b", "", "second rectangle (distance)")
		rectQ    = flag.String("q", "", "query rectangle (nearest, assign)")
		mode     = flag.String("mode", server.ModeAuto, "accuracy mode: auto | exact | sketch | prune (nearest, assign)")
		epsilon  = flag.Float64("epsilon", -1, "prune screen headroom (mode=prune; negative = server default)")
		delta    = flag.Float64("delta", -1, "prune failure budget in (0,1) (mode=prune; negative = server default)")
		attempts = flag.Int("attempts", 5, "max tries per query")
		baseWait = flag.Duration("base-delay", 50*time.Millisecond, "backoff base delay")
		budget   = flag.Duration("budget", 15*time.Second, "total retry-wait budget")
		seed     = flag.Uint64("seed", 0, "jitter seed (0 = default)")
		timeout  = flag.Duration("timeout", time.Minute, "overall deadline for the query including retries")
		batch    = flag.String("batch", "", "JSON-lines file of batch items (\"-\" = stdin); issues one POST /v1/batch/<op>")
	)
	flag.Parse()

	ctx, stop := runctx.WithSignals(*timeout)
	defer stop()

	c, err := client.New(client.Config{
		BaseURL: *base, MaxAttempts: *attempts, BaseDelay: *baseWait,
		Budget: *budget, Seed: *seed,
	})
	fatal(err)

	if *batch != "" {
		os.Exit(runBatch(ctx, c, *op, *mode, *batch))
	}

	var res any
	switch *op {
	case "distance":
		a, err := server.ParseRect(*rectA)
		fatal(err)
		b, err := server.ParseRect(*rectB)
		fatal(err)
		res, err = c.Distance(ctx, a, b, *mode)
		fatal(err)
	case "nearest":
		q, err := server.ParseRect(*rectQ)
		fatal(err)
		if *mode == server.ModePrune {
			res, err = c.NearestPruned(ctx, q, *epsilon, *delta)
		} else {
			res, err = c.Nearest(ctx, q, *mode)
		}
		fatal(err)
	case "assign":
		q, err := server.ParseRect(*rectQ)
		fatal(err)
		if *mode == server.ModePrune {
			res, err = c.AssignPruned(ctx, q, *epsilon, *delta)
		} else {
			res, err = c.Assign(ctx, q, *mode)
		}
		fatal(err)
	case "health":
		var err error
		res, err = c.Health(ctx)
		fatal(err)
	default:
		fatal(fmt.Errorf("unknown -op %q", *op))
	}
	out, err := json.Marshal(res)
	fatal(err)
	fmt.Println(string(out))
}

// runBatch reads JSON-lines batch items from path, issues them as one
// batched request, and prints one JSON line per item in input order.
// Returns the process exit code: 0 only if every item answered.
func runBatch(ctx context.Context, c *client.Client, op, mode, path string) int {
	var in io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		fatal(err)
		defer f.Close()
		in = f
	}
	type line struct {
		A string `json:"a"`
		B string `json:"b"`
		Q string `json:"q"`
	}
	var as, bs, qs []table.Rect
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var l line
		if err := json.Unmarshal(raw, &l); err != nil {
			fatal(fmt.Errorf("batch line %d: %v", lineNo, err))
		}
		if op == "distance" {
			a, err := server.ParseRect(l.A)
			fatal(err)
			b, err := server.ParseRect(l.B)
			fatal(err)
			as, bs = append(as, a), append(bs, b)
		} else {
			q, err := server.ParseRect(l.Q)
			fatal(err)
			qs = append(qs, q)
		}
	}
	fatal(sc.Err())

	// One answer per query, in order. Per-item errors print as
	// {"error": ...} lines and flip the exit code without hiding the
	// items that did answer.
	emit := func(res any, err error) bool {
		if err != nil {
			out, merr := json.Marshal(map[string]string{"error": err.Error()})
			fatal(merr)
			fmt.Println(string(out))
			return false
		}
		out, merr := json.Marshal(res)
		fatal(merr)
		fmt.Println(string(out))
		return true
	}
	ok := true
	switch op {
	case "distance":
		items, err := c.DistanceBatch(ctx, as, bs, mode)
		fatal(err)
		for _, it := range items {
			ok = emit(it.Result, it.Err) && ok
		}
	case "nearest":
		items, err := c.NearestBatch(ctx, qs, mode)
		fatal(err)
		for _, it := range items {
			ok = emit(it.Result, it.Err) && ok
		}
	case "assign":
		items, err := c.AssignBatch(ctx, qs, mode)
		fatal(err)
		for _, it := range items {
			ok = emit(it.Result, it.Err) && ok
		}
	default:
		fatal(fmt.Errorf("-batch supports -op distance, nearest, or assign, not %q", op))
	}
	if !ok {
		return 1
	}
	return 0
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-query: %v\n", err)
		os.Exit(1)
	}
}
