// Command tabmine-sketch estimates the Lp distance between two subtables
// of a table file using stable sketches, and compares against the exact
// computation.
//
// Rectangles are given as "row,col,height,width". Example:
//
//	tabmine-sketch -in calls.tabf -p 1 -k 256 \
//	    -a 0,0,16,144 -b 64,144,16,144
//
// With -pool, a dyadic sketch pool is built instead of a single-size
// sketcher, demonstrating arbitrary-rectangle compound sketches
// (rectangle sizes may then differ from powers of two).
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/lpnorm"
	"repro/internal/runctx"
	"repro/internal/tabfile"
	"repro/internal/table"
)

func parseRect(s string) (table.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return table.Rect{}, fmt.Errorf("rect %q: want row,col,height,width", s)
	}
	vals := make([]int, 4)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return table.Rect{}, fmt.Errorf("rect %q: %v", s, err)
		}
		vals[i] = v
	}
	return table.Rect{R0: vals[0], C0: vals[1], Rows: vals[2], Cols: vals[3]}, nil
}

func main() {
	var (
		in       = flag.String("in", "", "input table file (required)")
		fftStats = flag.Bool("fft-stats", false, "report forward table spectra computed (shared-spectrum engine diagnostics)")
		p        = flag.Float64("p", 1, "Lp exponent in (0, 2]")
		k        = flag.Int("k", 256, "sketch entries")
		rectA    = flag.String("a", "", "first rectangle as row,col,height,width (required)")
		rectB    = flag.String("b", "", "second rectangle (required, same size as -a)")
		seed     = flag.Uint64("seed", 42, "sketch seed")
		usePool  = flag.Bool("pool", false, "use a dyadic compound-sketch pool (Theorem 6)")
		savePool = flag.String("save-pool", "", "with -pool: save the built pool to this file")
		loadPool = flag.String("load-pool", "", "with -pool: load a previously saved pool instead of building")
		workers  = flag.Int("workers", 0, "worker goroutines for sketch construction (0 = all cores)")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	)
	flag.Parse()
	// ^C (or the timeout) cancels the pool build mid-flight; an atomic
	// save means an aborted run never leaves a torn snapshot behind.
	ctx, stop := runctx.WithSignals(*timeout)
	defer stop()
	if *in == "" || *rectA == "" || *rectB == "" {
		fmt.Fprintln(os.Stderr, "tabmine-sketch: -in, -a and -b are required")
		flag.Usage()
		os.Exit(2)
	}
	a, err := parseRect(*rectA)
	fatal(err)
	b, err := parseRect(*rectB)
	fatal(err)
	if a.Rows != b.Rows || a.Cols != b.Cols {
		fatal(fmt.Errorf("rectangles must have equal dimensions: %v vs %v", a, b))
	}

	tb, err := tabfile.ReadFile(*in)
	fatal(err)
	for _, r := range []table.Rect{a, b} {
		if !r.In(tb.Rows(), tb.Cols()) {
			fatal(fmt.Errorf("rect %v outside table %dx%d", r, tb.Rows(), tb.Cols()))
		}
	}

	lp, err := lpnorm.NewP(*p)
	fatal(err)
	spectraBefore := fft.TableSpectrumCount()
	t0 := time.Now()
	exact := lp.Dist(tb.Linearize(a, nil), tb.Linearize(b, nil))
	exactTime := time.Since(t0)

	var est float64
	var prepTime, queryTime time.Duration
	if *usePool {
		t0 = time.Now()
		var pool *core.Pool
		if *loadPool != "" {
			pool, err = core.LoadPoolFile(*loadPool)
			fatal(err)
			fmt.Printf("loaded pool from %s\n", *loadPool)
		} else {
			// Build only the dyadic size the query rectangles need (a full
			// canonical pool costs O(log²N) sizes; pass -save-pool to keep
			// whatever is built for reuse).
			ei := bits.Len(uint(a.Rows)) - 1
			if 1<<ei > tb.Rows()/2 && a.Rows < tb.Rows() {
				ei--
			}
			ej := bits.Len(uint(a.Cols)) - 1
			if 1<<ej > tb.Cols()/2 && a.Cols < tb.Cols() {
				ej--
			}
			var err error
			pool, err = core.NewPool(tb, *p, *k, *seed, core.PoolOptions{
				MinLogRows: ei, MaxLogRows: ei, MinLogCols: ej, MaxLogCols: ej,
				Workers: *workers, Context: ctx,
			})
			fatal(err)
		}
		prepTime = time.Since(t0)
		if *savePool != "" {
			fatal(core.SavePoolFile(*savePool, pool))
			fmt.Printf("saved pool to %s\n", *savePool)
		}
		t0 = time.Now()
		est, err = pool.Distance(a, b)
		fatal(err)
		queryTime = time.Since(t0)
		fmt.Printf("mode: dyadic pool (%d sizes, exact-dyadic rect: %v)\n",
			pool.NumSizes(), pool.IsExact(a))
	} else {
		t0 = time.Now()
		sk, err := core.NewSketcher(*p, *k, a.Rows, a.Cols, *seed, core.EstimatorAuto)
		fatal(err)
		sk.SetWorkers(*workers)
		cache := core.NewCache(tb, sk)
		prepTime = time.Since(t0)
		t0 = time.Now()
		est = cache.Distance(a, b)
		queryTime = time.Since(t0)
		fmt.Println("mode: direct sketches (on demand)")
	}

	fmt.Printf("L%.4g distance %v ↔ %v over %dx%d table\n", *p, a, b, tb.Rows(), tb.Cols())
	fmt.Printf("  exact   : %12.4f  (%v)\n", exact, exactTime)
	fmt.Printf("  sketched: %12.4f  (prep %v, query %v, k=%d)\n", est, prepTime, queryTime, *k)
	if exact > 0 {
		fmt.Printf("  ratio   : %12.4f\n", est/exact)
	}
	if *fftStats {
		// The shared-spectrum engine computes one forward table FFT per
		// table regardless of how many dyadic sizes the pool covers.
		fmt.Printf("  spectra : %d forward table FFT(s) computed\n",
			fft.TableSpectrumCount()-spectraBefore)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-sketch: %v\n", err)
		os.Exit(1)
	}
}
