// Command tabmine-experiments regenerates every table and figure of the
// paper's evaluation (Section 4). Each -fig value maps to one experiment
// harness; "all" runs the full suite. The -scale flag multiplies workload
// sizes toward paper scale.
//
//	tabmine-experiments -fig all
//	tabmine-experiments -fig fig4b -scale 2
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/experiments"
	"repro/internal/runctx"
)

func main() {
	var (
		fig     = flag.String("fig", "all", "experiment: fig2 | fig3 | fig4a | fig4b | fig5 | baselines | all")
		scale   = flag.Int("scale", 1, "workload scale multiplier (1 = laptop defaults)")
		seed    = flag.Uint64("seed", 42, "experiment seed")
		workers = flag.Int("workers", 0, "cap worker goroutines across all experiments (0 = all cores)")
		timeout = flag.Duration("timeout", 0, "abort the suite after this duration (0 = none)")
	)
	flag.Parse()
	if *scale < 1 {
		fatal(fmt.Errorf("scale must be >= 1"))
	}
	if *workers > 0 {
		// Every internal fan-out resolves its default worker count from
		// GOMAXPROCS, so capping it here bounds the whole suite. Results
		// are identical at any setting (the determinism contract).
		runtime.GOMAXPROCS(*workers)
	}
	// ^C or -timeout stops the suite at the next experiment boundary —
	// each experiment is self-contained, so a partial suite is still a
	// set of complete, valid figures.
	ctx, stop := runctx.WithSignals(*timeout)
	defer stop()

	run := map[string]func(){
		"fig2":      func() { runFig2(*scale, *seed) },
		"fig3":      func() { runFig3(*scale, *seed) },
		"fig4a":     func() { runFig4a(*scale, *seed) },
		"fig4b":     func() { runFig4b(*scale, *seed) },
		"fig5":      func() { runFig5(*scale, *seed) },
		"baselines": func() { runBaselines(*scale, *seed) },
		"sweepk":    func() { runSweepK(*scale, *seed) },
		"algos":     func() { runAlgos(*seed) },
	}
	if *fig == "all" {
		for _, name := range []string{"fig2", "fig3", "fig4a", "fig4b", "fig5", "baselines", "sweepk", "algos"} {
			fatal(ctx.Err())
			run[name]()
			fmt.Println()
		}
		return
	}
	f, ok := run[*fig]
	if !ok {
		fatal(fmt.Errorf("unknown figure %q", *fig))
	}
	f()
}

func runFig2(scale int, seed uint64) {
	for _, p := range []float64{1, 2} {
		cfg := experiments.DefaultFig2Config(p)
		cfg.Seed = seed
		cfg.Pairs *= scale
		if scale > 1 {
			cfg.Stations *= 2
			cfg.Days = scale
			cfg.TileEdges = append(cfg.TileEdges, 128)
		}
		rows, err := experiments.RunFig2(cfg)
		fatal(err)
		experiments.PrintFig2(os.Stdout, p, rows)
		fmt.Println()
	}
}

func runFig3(scale int, seed uint64) {
	cfg := experiments.DefaultFig3Config()
	cfg.Seed = seed
	cfg.Stations *= scale
	cfg.Days *= scale
	rows, err := experiments.RunFig3(cfg)
	fatal(err)
	experiments.PrintFig3(os.Stdout, rows)
}

func runFig4a(scale int, seed uint64) {
	cfg := experiments.DefaultFig4aConfig()
	cfg.Seed = seed
	cfg.Stations *= scale
	cfg.Days *= scale
	rows, err := experiments.RunFig4a(cfg)
	fatal(err)
	experiments.PrintFig4a(os.Stdout, rows)
}

func runFig4b(scale int, seed uint64) {
	cfg := experiments.DefaultFig4bConfig()
	cfg.Seed = seed
	cfg.Rows *= scale
	cfg.Cols *= scale
	rows, err := experiments.RunFig4b(cfg)
	fatal(err)
	experiments.PrintFig4b(os.Stdout, rows)
}

func runFig5(scale int, seed uint64) {
	cfg := experiments.DefaultFig5Config()
	cfg.Seed = seed
	cfg.Stations *= scale
	res, err := experiments.RunFig5(cfg)
	fatal(err)
	experiments.PrintFig5(os.Stdout, res)
}

func runSweepK(scale int, seed uint64) {
	for _, p := range []float64{1, 2} {
		cfg := experiments.DefaultSweepKConfig(p)
		cfg.Seed = seed
		cfg.Pairs *= scale
		rows, err := experiments.RunSweepK(cfg)
		fatal(err)
		experiments.PrintSweepK(os.Stdout, p, rows)
		fmt.Println()
	}
}

func runAlgos(seed uint64) {
	cfg := experiments.DefaultAlgosConfig()
	cfg.Seed = seed
	rows, err := experiments.RunAlgos(cfg)
	fatal(err)
	experiments.PrintAlgos(os.Stdout, cfg, rows)
}

func runBaselines(scale int, seed uint64) {
	cfg := experiments.DefaultBaselinesConfig()
	cfg.Seed = seed
	cfg.Pairs *= scale
	rows, err := experiments.RunBaselines(cfg)
	fatal(err)
	experiments.PrintBaselines(os.Stdout, rows)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-experiments: %v\n", err)
		os.Exit(1)
	}
}
