// Command tabmine-coord runs the scatter-gather coordinator over a
// fleet of column-sharded tabmine-serve processes: it learns the shard
// map from each shard's /v1/shardinfo, fans /v1/distance, /v1/nearest
// and /v1/assign (single and batch) out over the fleet, and merges the
// per-shard answers under the shared O(k) sketch estimator.
//
//	tabmine-coord -shards http://127.0.0.1:7001,http://127.0.0.1:7002 \
//	    -addr 127.0.0.1:8080
//
// Shards are actively probed and ejected after consecutive failures
// (probe or passive), re-enter through probation, and stragglers are
// hedged to a replica. When a shard is down, partial=allow (the
// default) answers from the shards that remain, tagged with the
// missing column ranges; -partial-deny (or per-query partial=deny)
// turns any gap into a clean 503 + Retry-After.
//
// SIGINT/SIGTERM drains in-flight requests for up to -grace and exits
// 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/coord"
	"repro/internal/runctx"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the resolved listen address to this file (for scripts)")
		shards   = flag.String("shards", "", "comma-separated shard base URLs (required; same URL twice = error, same column range twice = replicas)")

		partialDeny = flag.Bool("partial-deny", false, "default to refusing partial answers (503) when a shard is down; per-query ?partial= overrides")

		probeEvery   = flag.Duration("probe-interval", 250*time.Millisecond, "active health-probe period")
		probeTimeout = flag.Duration("probe-timeout", 0, "one probe round trip (0 = probe interval)")
		ejectAfter   = flag.Int("eject-after", 3, "consecutive failures before a healthy shard is ejected")
		readmitAfter = flag.Int("readmit-after", 2, "consecutive probe successes from dead to probation, and again from probation to healthy")
		hedgeDelay   = flag.Duration("hedge-delay", 30*time.Millisecond, "straggler wait before hedging a sub-query to a replica")
		mergeReserve = flag.Duration("merge-reserve", 10*time.Millisecond, "request-budget slice kept back from sub-query deadlines for merging")

		reqTimeout = flag.Duration("timeout", 0, "default per-request deadline (0 = 2s)")
		maxTimeout = flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = 30s)")
		grace      = flag.Duration("grace", 10*time.Second, "drain timeout on SIGTERM/SIGINT")
	)
	flag.Parse()
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "tabmine-coord: -shards is required")
		flag.Usage()
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "tabmine-coord: ", log.LstdFlags)

	ctx, stop := runctx.WithSignals(0)
	defer stop()

	var endpoints []string
	for _, u := range strings.Split(*shards, ",") {
		if u = strings.TrimSpace(u); u != "" {
			endpoints = append(endpoints, strings.TrimRight(u, "/"))
		}
	}
	c, err := coord.New(coord.Config{
		Endpoints:      endpoints,
		PartialDeny:    *partialDeny,
		ProbeInterval:  *probeEvery,
		ProbeTimeout:   *probeTimeout,
		EjectAfter:     *ejectAfter,
		ReadmitAfter:   *readmitAfter,
		HedgeDelay:     *hedgeDelay,
		MergeReserve:   *mergeReserve,
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		Logf:           logger.Printf,
	})
	fatal(err)
	if c.Ready() {
		logger.Printf("fleet ready: %d shards", len(endpoints))
	} else {
		logger.Printf("fleet not (yet) complete: %d shards configured, probing", len(endpoints))
	}

	l, err := net.Listen("tcp", *addr)
	fatal(err)
	logger.Printf("listening on http://%s", l.Addr())
	if *addrFile != "" {
		fatal(os.WriteFile(*addrFile, []byte(l.Addr().String()), 0o644))
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- c.Serve(l) }()

	select {
	case err := <-serveErr:
		fatal(err) // listener failure before any signal
	case <-ctx.Done():
	}
	logger.Printf("draining (grace %v)", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := c.Shutdown(shCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	logger.Printf("drained cleanly")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-coord: %v\n", err)
		os.Exit(1)
	}
}
