// Command tabmine-coord runs the scatter-gather coordinator over a
// fleet of column-sharded tabmine-serve processes: it learns the shard
// map from each shard's /v1/shardinfo, fans /v1/distance, /v1/nearest
// and /v1/assign (single and batch) out over the fleet, and merges the
// per-shard answers under the shared O(k) sketch estimator.
//
//	tabmine-coord -shards http://127.0.0.1:7001,http://127.0.0.1:7002 \
//	    -addr 127.0.0.1:8080
//
// Shards are actively probed and ejected after consecutive failures
// (probe or passive), re-enter through probation, and stragglers are
// hedged to a replica. When a shard is down, partial=allow (the
// default) answers from the shards that remain, tagged with the
// missing column ranges; -partial-deny (or per-query partial=deny)
// turns any gap into a clean 503 + Retry-After.
//
// The fleet is mutable at runtime: POST /admin/register and
// /admin/deregister (loopback only) add and remove shard endpoints,
// and SIGHUP re-reads the shard list (-shards-file when given,
// otherwise the -shards flag value) and reconciles the fleet against
// it. POST /v1/ingest proxies to the shard owning the rightmost column
// band, so the fleet ingests at the time axis like a single server.
//
// SIGINT/SIGTERM drains in-flight requests for up to -grace and exits
// 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/coord"
	"repro/internal/runctx"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the resolved listen address to this file (for scripts)")
		shards   = flag.String("shards", "", "comma-separated shard base URLs (required unless -shards-file; same URL twice = error, same column range twice = replicas)")
		shardsFn = flag.String("shards-file", "", "file of shard base URLs (newline/comma-separated); re-read and reconciled on SIGHUP")

		partialDeny = flag.Bool("partial-deny", false, "default to refusing partial answers (503) when a shard is down; per-query ?partial= overrides")

		probeEvery   = flag.Duration("probe-interval", 250*time.Millisecond, "active health-probe period (jittered ±10%)")
		probeTimeout = flag.Duration("probe-timeout", 0, "one probe round trip (0 = probe interval)")
		probeJitter  = flag.Uint64("probe-jitter-seed", 0, "seed for the probe-period jitter stream (give each coordinator its own)")
		ejectAfter   = flag.Int("eject-after", 3, "consecutive failures before a healthy shard is ejected")
		readmitAfter = flag.Int("readmit-after", 2, "consecutive probe successes from dead to probation, and again from probation to healthy")
		hedgeDelay   = flag.Duration("hedge-delay", 30*time.Millisecond, "straggler wait before hedging a sub-query to a replica")
		mergeReserve = flag.Duration("merge-reserve", 10*time.Millisecond, "request-budget slice kept back from sub-query deadlines for merging")

		reqTimeout = flag.Duration("timeout", 0, "default per-request deadline (0 = 2s)")
		maxTimeout = flag.Duration("max-timeout", 0, "cap on client-requested deadlines (0 = 30s)")
		grace      = flag.Duration("grace", 10*time.Second, "drain timeout on SIGTERM/SIGINT")
	)
	flag.Parse()
	if *shards == "" && *shardsFn == "" {
		fmt.Fprintln(os.Stderr, "tabmine-coord: -shards or -shards-file is required")
		flag.Usage()
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "tabmine-coord: ", log.LstdFlags)

	ctx, stop := runctx.WithSignals(0)
	defer stop()

	endpoints, err := loadShardList(*shards, *shardsFn)
	fatal(err)
	c, err := coord.New(coord.Config{
		Endpoints:      endpoints,
		PartialDeny:    *partialDeny,
		ProbeInterval:  *probeEvery,
		ProbeTimeout:   *probeTimeout,
		JitterSeed:     *probeJitter,
		EjectAfter:     *ejectAfter,
		ReadmitAfter:   *readmitAfter,
		HedgeDelay:     *hedgeDelay,
		MergeReserve:   *mergeReserve,
		DefaultTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		Logf:           logger.Printf,
	})
	fatal(err)
	if c.Ready() {
		logger.Printf("fleet ready: %d shards", len(endpoints))
	} else {
		logger.Printf("fleet not (yet) complete: %d shards configured, probing", len(endpoints))
	}

	// SIGHUP reconciles membership back to the configured list: re-read
	// -shards-file (or re-apply -shards) and register/deregister the
	// difference. Removed endpoints are fenced immediately and drained in
	// the background.
	hup, stopHup := runctx.Hangup()
	defer stopHup()
	go func() {
		for range hup {
			urls, err := loadShardList(*shards, *shardsFn)
			if err != nil {
				logger.Printf("SIGHUP: %v (fleet unchanged)", err)
				continue
			}
			added, removed, err := c.SetEndpoints(urls)
			if err != nil {
				logger.Printf("SIGHUP: reconcile: %v", err)
				continue
			}
			logger.Printf("SIGHUP: shard list re-read: %d endpoints, added %v, removed %v",
				len(urls), added, removed)
		}
	}()

	l, err := net.Listen("tcp", *addr)
	fatal(err)
	logger.Printf("listening on http://%s", l.Addr())
	if *addrFile != "" {
		fatal(os.WriteFile(*addrFile, []byte(l.Addr().String()), 0o644))
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- c.Serve(l) }()

	select {
	case err := <-serveErr:
		fatal(err) // listener failure before any signal
	case <-ctx.Done():
	}
	logger.Printf("draining (grace %v)", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := c.Shutdown(shCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	logger.Printf("drained cleanly")
}

// loadShardList resolves the shard URL list: from file when -shards-file
// is set (newline- or comma-separated, # comments), else from -shards.
func loadShardList(flagVal, file string) ([]string, error) {
	raw := flagVal
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("read shards file: %w", err)
		}
		raw = string(data)
	}
	var endpoints []string
	for _, line := range strings.Split(raw, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		for _, u := range strings.FieldsFunc(line, func(r rune) bool {
			return r == ',' || r == '\r' || r == ' ' || r == '\t'
		}) {
			endpoints = append(endpoints, strings.TrimRight(u, "/"))
		}
	}
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("empty shard list")
	}
	return endpoints, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-coord: %v\n", err)
		os.Exit(1)
	}
}
