// Command tabmine-cluster runs k-means over the tiles of a table file
// under exact or sketched Lp distances and reports the clustering, its
// spread, timings, and (optionally) an ASCII cluster map in the style of
// the paper's Figure 5.
//
// Example:
//
//	tabmine-gendata -kind callvolume -stations 600 -days 1 -o day.tabf
//	tabmine-cluster -in day.tabf -tile-rows 75 -tile-cols 6 \
//	    -clusters 10 -p 0.25 -mode precomputed -map
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lpnorm"
	"repro/internal/runctx"
	"repro/internal/tabfile"
	"repro/internal/table"
	"repro/internal/vizascii"
)

func main() {
	var (
		in       = flag.String("in", "", "input table file (required)")
		tileRows = flag.Int("tile-rows", 16, "tile height in table rows")
		tileCols = flag.Int("tile-cols", 144, "tile width in table columns")
		clusters = flag.Int("clusters", 20, "number of k-means clusters")
		p        = flag.Float64("p", 1, "Lp exponent in (0, 2]")
		mode     = flag.String("mode", "precomputed", "distance mode: exact | precomputed | ondemand")
		sketchK  = flag.Int("k", 256, "sketch entries (sketch modes)")
		seed     = flag.Uint64("seed", 42, "seed for sketches and k-means init")
		showMap  = flag.Bool("map", false, "render the ASCII cluster map (largest cluster blank)")
		hoursPer = flag.Float64("hours-per-col", 0, "label map columns as hours with this span (0 = no ruler)")
		pngOut   = flag.String("png", "", "also write the cluster map as a PNG to this path")
		pngCell  = flag.Int("png-cell", 12, "pixels per tile in the PNG map")
		workers  = flag.Int("workers", 0, "worker goroutines for sketching and clustering (0 = all cores)")
		timeout  = flag.Duration("timeout", 0, "abort the run after this duration (0 = none)")
	)
	flag.Parse()
	ctx, stop := runctx.WithSignals(*timeout)
	defer stop()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "tabmine-cluster: -in is required")
		flag.Usage()
		os.Exit(2)
	}

	tb, err := tabfile.ReadFile(*in)
	fatal(err)
	grid, err := table.NewGrid(tb.Rows(), tb.Cols(), *tileRows, *tileCols)
	fatal(err)
	tiles := grid.Tiles(tb)
	fmt.Printf("table %dx%d → %d tiles of %dx%d (%d bytes each)\n",
		tb.Rows(), tb.Cols(), len(tiles), *tileRows, *tileCols, *tileRows**tileCols*8)

	lp, err := lpnorm.NewP(*p)
	fatal(err)

	var (
		points [][]float64
		dist   cluster.DistFunc
		prep   time.Duration
	)
	switch *mode {
	case "exact":
		points, dist = tiles, lp.Dist
	case "precomputed", "ondemand":
		sk, err := core.NewSketcher(*p, *sketchK, *tileRows, *tileCols, *seed, core.EstimatorAuto)
		fatal(err)
		sk.SetWorkers(*workers)
		t0 := time.Now()
		points = make([][]float64, len(tiles))
		for i, tile := range tiles {
			points[i] = sk.Sketch(tile, nil)
		}
		prep = time.Since(t0)
		// ConcurrentDist is reentrant, which parallel k-means requires.
		dist = sk.ConcurrentDist()
		if *mode == "precomputed" {
			fmt.Printf("sketches precomputed in %v (k=%d)\n", prep, *sketchK)
		} else {
			fmt.Printf("sketching on demand (k=%d; %v included in total below)\n", *sketchK, prep)
		}
	default:
		fatal(fmt.Errorf("unknown mode %q", *mode))
	}

	clusterWorkers := *workers
	if clusterWorkers == 0 {
		clusterWorkers = -1 // cluster.Config: negative = all cores, 0 = serial
	}
	t0 := time.Now()
	res, err := cluster.KMeans(points, dist, cluster.Config{
		K: *clusters, Seed: *seed, Workers: clusterWorkers, Context: ctx,
	})
	fatal(err)
	elapsed := time.Since(t0)
	if *mode == "ondemand" {
		elapsed += prep
	}

	// Evaluate the clustering in tile space with the exact distance so the
	// numbers are comparable across modes.
	exactSpread := cluster.Spread(tiles, res.Assign,
		cluster.CentroidsOf(tiles, res.Assign, *clusters), lp.Dist)
	fmt.Printf("k-means: %d iterations, converged=%v, %d comparisons, time %v\n",
		res.Iterations, res.Converged, res.Comparisons, elapsed)
	fmt.Printf("spread (exact L%.4g): %.4f\n", *p, exactSpread)
	sizes := cluster.Sizes(res.Assign, *clusters)
	fmt.Printf("cluster sizes: %v\n", sizes)

	if *showMap || *pngOut != "" {
		m := &vizascii.Map{
			GridRows: grid.GridRows(), GridCols: grid.GridCols(),
			K: *clusters, Assign: res.Assign,
		}
		if *showMap {
			var art string
			if *hoursPer > 0 {
				art, err = m.RenderWithHourAxis(*hoursPer, true)
			} else {
				art, err = m.Render(true)
			}
			fatal(err)
			legend, err := m.Legend(true)
			fatal(err)
			fmt.Printf("\n%s\n%s", art, legend)
		}
		if *pngOut != "" {
			f, err := os.Create(*pngOut)
			fatal(err)
			err = m.RenderPNG(f, *pngCell, true)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			fatal(err)
			fmt.Printf("wrote cluster map PNG to %s\n", *pngOut)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-cluster: %v\n", err)
		os.Exit(1)
	}
}
