// Command tabmine-bench runs the repo's before/after microbenchmarks
// with the testing package's programmatic harness and emits a
// machine-readable JSON report: the raw cross-correlation primitive,
// all-positions preprocessing, and pool construction (each old
// vs planned), incremental pool maintenance (Pool.Append vs a full
// rebuild at several append widths, with measured correlation counts),
// the progressive nearest-tile scan (full scan vs exact-margin vs
// confidence-margin pruning at several grid sizes, with per-query
// coordinate savings and measured recall), the batched query path
// (one POST /v1/batch/distance vs N sequential GETs over live HTTP,
// plus the lane-major kernel's steady-state allocs per item), the
// segment-store restart economics (cold start mapping sealed mmap
// segments vs cold start replaying every day, plus mmap-backed vs heap
// lane query parity), and an in-process replay run whose report is
// embedded verbatim.
//
//	tabmine-bench -out BENCH_10.json
//	tabmine-bench -suite nearest -tiles 64   # CI smoke slice
//
// The report is the artifact behind the numbers quoted in EXPERIMENTS.md;
// `make bench-json` regenerates it.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/ingest"
	"repro/internal/replay"
	"repro/internal/segstore"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/tabstore"
	"repro/internal/workload"
)

// result is one benchmark row. Correlations is how many valid-region
// cross-correlations one op performs, so NsPerCorrelation and
// AllocsPerCorrelation are comparable across rows that batch differently
// (a packed pair does two per op; an AllPositions op does k).
//
// The nearest-scan rows carry the coordinate economy instead: how many
// coordinates (sketch lanes + exact cells) one query consumed out of
// the full scan's total, the pruned fraction, and — for the
// confidence margin — the measured recall over the query set.
type result struct {
	Name                 string  `json:"name"`
	Iterations           int     `json:"iterations"`
	NsPerOp              int64   `json:"ns_per_op"`
	BytesPerOp           int64   `json:"bytes_per_op"`
	AllocsPerOp          int64   `json:"allocs_per_op"`
	Correlations         int     `json:"correlations_per_op"`
	NsPerCorrelation     float64 `json:"ns_per_correlation"`
	AllocsPerCorrelation float64 `json:"allocs_per_correlation"`

	CoordinatesEvaluated int64   `json:"coordinates_evaluated,omitempty"`
	CoordinatesTotal     int64   `json:"coordinates_total,omitempty"`
	PrunedFraction       float64 `json:"pruned_fraction,omitempty"`
	Recall               float64 `json:"recall,omitempty"`
}

type report struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Results    []result           `json:"results"`
	Speedups   map[string]float64 `json:"speedups"`
	Replay     *replay.Report     `json:"replay,omitempty"`
	Segment    *segMemory         `json:"segment_memory,omitempty"`
}

// segMemory is the RSS-ceiling evidence from the segment suite: the
// sealed lane payload lives in memory mappings the OS pages at will,
// so the Go heap of a serving process stays a small fraction of the
// mapped bytes — the window is bounded by disk, not GOMEMLIMIT.
type segMemory struct {
	BytesMapped    int64  `json:"bytes_mapped"`
	BytesDisk      int64  `json:"bytes_disk"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"` // after GC, segments mapped
}

func run(name string, correlations int, fn func(b *testing.B)) result {
	fmt.Fprintf(os.Stderr, "running %-28s ", name+"...")
	// Pay any outstanding GC debt from setup or the previous section now,
	// not inside the first timed ops (on a single-core box a collection
	// of a predecessor's garbage can dominate a short benchmark).
	runtime.GC()
	r := testing.Benchmark(fn)
	row := result{
		Name:         name,
		Iterations:   r.N,
		NsPerOp:      r.NsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		AllocsPerOp:  r.AllocsPerOp(),
		Correlations: correlations,
	}
	row.NsPerCorrelation = float64(row.NsPerOp) / float64(correlations)
	row.AllocsPerCorrelation = float64(row.AllocsPerOp) / float64(correlations)
	fmt.Fprintf(os.Stderr, "%12d ns/op %10d B/op %6d allocs/op (n=%d)\n",
		row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, r.N)
	return row
}

func main() {
	out := flag.String("out", "BENCH_10.json", "output JSON path")
	suite := flag.String("suite", "all", "which sections to run: all, fft, nearest, batch, segment")
	tilesFlag := flag.String("tiles", "64,256,1024", "grid sizes (tile counts) for the nearest suite")
	flag.Parse()
	switch *suite {
	case "all", "fft", "nearest", "batch", "segment":
	default:
		fatal(fmt.Errorf("bad -suite %q (want all, fft, nearest, batch, or segment)", *suite))
	}
	var tileCounts []int
	for _, s := range strings.Split(*tilesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		fatal(err)
		tileCounts = append(tileCounts, n)
	}

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Speedups:   map[string]float64{},
	}
	if *suite == "all" || *suite == "nearest" {
		benchNearest(&rep, tileCounts)
	}
	if *suite == "all" || *suite == "fft" {
		benchFFT(&rep)
	}
	if *suite == "all" || *suite == "batch" {
		benchBatch(&rep)
	}
	if *suite == "all" || *suite == "segment" {
		benchSegments(&rep)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	buf = append(buf, '\n')
	fatal(os.WriteFile(*out, buf, 0o644))
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	for name, s := range rep.Speedups {
		fmt.Printf("%-28s %.2fx\n", name, s)
	}
}

func benchFFT(rep *report) {
	// --- CrossCorrelate: the raw primitive, 128x128 table, 16x16 kernel.
	rng := rand.New(rand.NewPCG(6, 6))
	const n, m, ka, kb = 128, 128, 16, 16
	data := make([]float64, n*m)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	kernA := make([]float64, ka*kb)
	kernB := make([]float64, ka*kb)
	for i := range kernA {
		kernA[i], kernB[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	ccOld := run("cross_correlate/unplanned", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fft.CrossCorrelateValidUnplanned(data, n, m, kernA, ka, kb)
		}
	})
	plan := fft.NewPlan2D(data, n, m)
	or, oc := plan.OutDims(ka, kb)
	dstA := make([]float64, or*oc)
	dstB := make([]float64, or*oc)
	ccNew := run("cross_correlate/planned", 2, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan.CorrelatePairValid(kernA, kernB, ka, kb, dstA, 1, dstB, 1)
		}
	})
	rep.Results = append(rep.Results, ccOld, ccNew)
	rep.Speedups["cross_correlate"] = ccOld.NsPerCorrelation / ccNew.NsPerCorrelation

	// --- AllPositions: Theorem 3 preprocessing, k=32 matrices.
	tb := workload.Random(128, 128, 1, 17)
	const k, edge = 32, 16
	sk, err := core.NewSketcher(1, k, edge, edge, 7, core.EstimatorAuto)
	fatal(err)
	apOld := run("all_positions/unplanned", k, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sk.AllPositionsUnplanned(tb)
		}
	})
	apNew := run("all_positions/planned", k, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sk.AllPositions(tb)
		}
	})
	rep.Results = append(rep.Results, apOld, apNew)
	rep.Speedups["all_positions"] = apOld.NsPerCorrelation / apNew.NsPerCorrelation

	// --- NewPool: Theorem 6 preprocessing over a 4x4 grid of dyadic
	// sizes, 4 subpools each, k=16 — 64 plane-set jobs, 1024 correlations.
	poolTb := workload.Random(64, 64, 1, 11)
	const poolK = 16
	opts := core.PoolOptions{
		MinLogRows: 1, MaxLogRows: 4, MinLogCols: 1, MaxLogCols: 4,
		Workers: 1,
	}
	jobs := (opts.MaxLogRows - opts.MinLogRows + 1) * (opts.MaxLogCols - opts.MinLogCols + 1) * 4
	npOld := run("new_pool/unplanned", jobs*poolK, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The seed behaviour over the identical job grid: every job
			// re-transforms the table for each of its k matrices.
			for li := opts.MinLogRows; li <= opts.MaxLogRows; li++ {
				for lj := opts.MinLogCols; lj <= opts.MaxLogCols; lj++ {
					for s := 0; s < 4; s++ {
						jsk, err := core.NewSketcher(1, poolK, 1<<li, 1<<lj, 7, core.EstimatorAuto)
						if err != nil {
							b.Fatal(err)
						}
						_ = jsk.AllPositionsUnplanned(poolTb)
					}
				}
			}
		}
	})
	npNew := run("new_pool/planned", jobs*poolK, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewPool(poolTb, 1, poolK, 7, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Results = append(rep.Results, npOld, npNew)
	rep.Speedups["new_pool"] = npOld.NsPerCorrelation / npNew.NsPerCorrelation

	// --- Incremental append: panel-mode maintenance over a 256-column
	// window vs rebuilding from scratch, at several append widths. Per-op
	// (not per-correlation) speedup is the headline here: both sides do
	// one maintenance event over the same grown table, the incremental
	// side just runs fewer slab correlations (the Correlations columns
	// record exactly how many, counted by the fft package's hooks).
	const apRows, apBase = 64, 256
	apOpts := core.PoolOptions{
		MinLogRows: 1, MaxLogRows: 4, MinLogCols: 1, MaxLogCols: 4,
		PanelCols: 32, Workers: 1,
	}
	apFull := workload.Random(apRows, apBase+64, 1, 21)
	apBaseTb := apFull.Sub(table.Rect{Rows: apRows, Cols: apBase})
	basePool, err := core.NewPool(apBaseTb, 1, poolK, 7, apOpts)
	fatal(err)
	for _, w := range []int{1, 8, 64} {
		grown := apFull.Sub(table.Rect{Rows: apRows, Cols: apBase + w})
		// One uncounted warm call per side measures its correlation count.
		c0 := fft.CorrelationCount()
		_, err := basePool.Append(context.Background(), grown)
		fatal(err)
		appendCorr := int(fft.CorrelationCount() - c0)
		c0 = fft.CorrelationCount()
		_, err = core.NewPool(grown, 1, poolK, 7, apOpts)
		fatal(err)
		rebuildCorr := int(fft.CorrelationCount() - c0)

		inc := run(fmt.Sprintf("incremental_append/w%d", w), appendCorr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := basePool.Append(context.Background(), grown); err != nil {
					b.Fatal(err)
				}
			}
		})
		reb := run(fmt.Sprintf("full_rebuild/w%d", w), rebuildCorr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewPool(grown, 1, poolK, 7, apOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, inc, reb)
		rep.Speedups[fmt.Sprintf("incremental_append/w%d", w)] =
			float64(reb.NsPerOp) / float64(inc.NsPerOp)
	}
}

// pairedGrid builds a dim×dim table whose 8×8 grid tiles come in
// pairs: tiles 2i and 2i+1 (row-major order) share a random per-pair
// level, so every tile has exactly one near-duplicate twin while
// distinct pairs sit far apart. This is the separated regime
// progressive pruning exists for — pure noise concentrates pairwise
// distances and no sound method can prune it.
func pairedGrid(dim int, seed uint64) *table.Table {
	rng := rand.New(rand.NewPCG(seed, 0x91a47ed))
	tb := table.New(dim, dim)
	g := dim / 8
	level := 0.0
	for ti := 0; ti < g*g; ti++ {
		if ti%2 == 0 {
			level = rng.Float64()*2000 - 1000
		}
		tr, tc := ti/g, ti%g
		for r := 0; r < 8; r++ {
			for c := 0; c < 8; c++ {
				tb.Set(tr*8+r, tc*8+c, level+0.05*rng.NormFloat64())
			}
		}
	}
	return tb
}

// benchNearest times one nearest-tile query three ways — the full
// exact scan, the exact-margin progressive scan (identical answers),
// and the confidence-margin scan (mode=prune semantics, epsilon=0.1,
// delta=0.05) — at several grid sizes, and measures the per-query
// coordinate economy and recall over a 32-query seeded set.
func benchNearest(rep *report, tileCounts []int) {
	const epsilon, delta = 0.1, 0.05
	ctx := context.Background()
	for _, tiles := range tileCounts {
		g := 1
		for g*g < tiles {
			g++
		}
		if g*g != tiles {
			fatal(fmt.Errorf("-tiles %d is not a square grid", tiles))
		}
		dim := 8 * g
		tb := pairedGrid(dim, uint64(tiles))
		// One pooled dyadic size — the 8×8 tile itself — so tile sketches
		// are exact, and p=2 so the screen pays the cheap incremental L2
		// estimator rather than per-checkpoint median selection.
		pool, err := core.NewPool(tb, 2, 64, 7, core.PoolOptions{
			MinLogRows: 3, MaxLogRows: 3, MinLogCols: 3, MaxLogCols: 3,
		})
		fatal(err)
		sn, err := server.BuildSnapshot(ctx, tb, pool, server.SnapshotConfig{
			TileRows: 8, TileCols: 8,
		})
		fatal(err)
		plan, err := sn.Plan(delta)
		fatal(err)

		// Coordinate economy + recall over a seeded query set of aligned
		// tiles. Each query's true nearest is its twin; everything else
		// is far, so a sound screen should abandon nearly the whole grid
		// at an early checkpoint.
		rng := rand.New(rand.NewPCG(uint64(tiles), 0xbe7c4)) // distinct from the plant seed
		var evalExact, evalPrune, total int64
		matches, queries := 0, 32
		for i := 0; i < queries; i++ {
			ti := rng.IntN(tiles)
			q := table.Rect{R0: 8 * (ti / g), C0: 8 * (ti % g), Rows: 8, Cols: 8}
			wantIdx, wantD, err := sn.ExactNearest(ctx, q, 1)
			fatal(err)
			idx, d, st, err := sn.ProgressiveNearest(ctx, q, 1, nil, 0)
			fatal(err)
			if idx != wantIdx || d != wantD {
				fatal(fmt.Errorf("exact margin diverged from the full scan at t%d q=%v", tiles, q))
			}
			evalExact += st.CoordinatesEvaluated()
			total += st.CoordinatesTotal
			idx, _, st, err = sn.ProgressiveNearest(ctx, q, 1, plan, epsilon)
			fatal(err)
			evalPrune += st.CoordinatesEvaluated()
			if idx == wantIdx {
				matches++
			}
		}
		recall := float64(matches) / float64(queries)

		// Timed on one representative near-cluster query (workers=1: the
		// comparison is single-thread coordinate economy, not fan-out).
		q := table.Rect{R0: 0, C0: 0, Rows: 8, Cols: 8}
		full := run(fmt.Sprintf("nearest/full_scan/t%d", tiles), 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sn.ExactNearest(ctx, q, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
		exact := run(fmt.Sprintf("nearest/progressive_exact/t%d", tiles), 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := sn.ProgressiveNearest(ctx, q, 1, nil, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		prune := run(fmt.Sprintf("nearest/progressive_prune/t%d", tiles), 1, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := sn.ProgressiveNearest(ctx, q, 1, plan, epsilon); err != nil {
					b.Fatal(err)
				}
			}
		})
		full.CoordinatesEvaluated, full.CoordinatesTotal = total, total
		exact.CoordinatesEvaluated, exact.CoordinatesTotal = evalExact, total
		exact.PrunedFraction = 1 - float64(evalExact)/float64(total)
		prune.CoordinatesEvaluated, prune.CoordinatesTotal = evalPrune, total
		prune.PrunedFraction = 1 - float64(evalPrune)/float64(total)
		prune.Recall = recall
		rep.Results = append(rep.Results, full, exact, prune)
		rep.Speedups[fmt.Sprintf("nearest_prune_time/t%d", tiles)] =
			float64(full.NsPerOp) / float64(prune.NsPerOp)
		rep.Speedups[fmt.Sprintf("nearest_coordinate_saving/t%d", tiles)] =
			float64(total) / float64(evalPrune)
		fmt.Fprintf(os.Stderr, "  t%d: recall %.3f, coordinate saving %.2fx (prune) / %.2fx (exact margin)\n",
			tiles, recall, float64(total)/float64(evalPrune), float64(total)/float64(evalExact))
	}
}

// benchBatch measures the batched query path over live HTTP: one
// POST /v1/batch/distance carrying 64 items vs 64 sequential GETs
// answering the identical queries (mode=sketch on both sides, so the
// comparison isolates transport + dispatch amortization from tier
// choice), and the lane-major kernel's steady-state allocations per
// item. It then runs an in-process replay — zipf-skewed open-loop
// load against the same server — and embeds the resulting report.
func benchBatch(rep *report) {
	ctx := context.Background()
	const batchN = 64
	g := 8 // 8×8 grid of 8×8 tiles
	tb := pairedGrid(8*g, 77)
	pool, err := core.NewPool(tb, 1, 64, 42, core.PoolOptions{
		MinLogRows: 3, MaxLogRows: 3, MinLogCols: 3, MaxLogCols: 3,
	})
	fatal(err)
	sn, err := server.BuildSnapshot(ctx, tb, pool, server.SnapshotConfig{
		TileRows: 8, TileCols: 8, Clusters: 4, Seed: 42,
	})
	fatal(err)
	// Capacity sized so a weight-64 batch does not saturate admission:
	// the throughput comparison measures dispatch cost, not shedding.
	s, err := server.New(sn, server.Config{MaxInflight: 64, MaxQueue: 256})
	fatal(err)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewPCG(13, 0xba7c4))
	as := make([]table.Rect, batchN)
	bs := make([]table.Rect, batchN)
	items := make([]server.BatchItem, batchN)
	targets := make([]string, batchN)
	for i := range as {
		ta, tbi := rng.IntN(g*g), rng.IntN(g*g)
		as[i] = table.Rect{R0: 8 * (ta / g), C0: 8 * (ta % g), Rows: 8, Cols: 8}
		bs[i] = table.Rect{R0: 8 * (tbi / g), C0: 8 * (tbi % g), Rows: 8, Cols: 8}
		items[i] = server.BatchItem{A: server.FormatRect(as[i]), B: server.FormatRect(bs[i])}
		targets[i] = ts.URL + "/v1/distance?a=" + items[i].A + "&b=" + items[i].B +
			"&mode=" + server.ModeSketch
	}
	body, err := json.Marshal(&server.BatchRequest{Mode: server.ModeSketch, Items: items})
	fatal(err)
	httpc := &http.Client{}
	drain := func(resp *http.Response, werr error) {
		fatal(werr)
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("bench batch: status %d", resp.StatusCode))
		}
	}

	seq := run(fmt.Sprintf("batch/sequential_gets/%d", batchN), batchN, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, u := range targets {
				drain(httpc.Get(u))
			}
		}
	})
	bat := run(fmt.Sprintf("batch/batch_post/%d", batchN), batchN, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			drain(httpc.Post(ts.URL+"/v1/batch/distance", "application/json", bytes.NewReader(body)))
		}
	})
	rep.Results = append(rep.Results, seq, bat)
	rep.Speedups[fmt.Sprintf("batch_distance_throughput/%d", batchN)] =
		float64(seq.NsPerOp) / float64(bat.NsPerOp)

	// Steady-state kernel cost: one lane-major sweep answering all 64
	// estimates. AllocsPerCorrelation is the allocs-per-item headline
	// (acceptance: ≤ 2 with a caller-provided dst).
	dst := make([]float64, batchN)
	kern := run(fmt.Sprintf("batch/kernel_sketch/%d", batchN), batchN, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sn.SketchDistanceBatch(as, bs, dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Results = append(rep.Results, kern)

	// Replay: 2000 zipf-skewed nearest queries in batches of 16, open
	// loop against a deliberately capacity-constrained instance (one
	// 16-item batch alone is 16/20 of capacity), so the report exercises
	// the shed and degraded-tier measurements rather than recording an
	// idle server.
	loaded, err := server.New(sn, server.Config{MaxInflight: 4, MaxQueue: 16})
	fatal(err)
	lts := httptest.NewServer(loaded.Handler())
	defer lts.Close()
	fmt.Fprintf(os.Stderr, "running replay (2000 queries)...\n")
	rr, err := replay.Run(ctx, replay.Config{
		BaseURL: lts.URL, Queries: 2000, Rate: 4000, Batch: 16,
		Op: "nearest", Mode: server.ModeAuto, Seed: 7, MaxOutstanding: 64,
	})
	fatal(err)
	rep.Replay = rr
	fmt.Fprintf(os.Stderr, "  replay: served %d shed %d degraded %d p50 %.2fms p99 %.2fms\n",
		rr.Served, rr.Shed, rr.Degraded, rr.RequestLatency.P50, rr.RequestLatency.P99)
}

// benchSegments measures the restart economics of segment mode and the
// steady-state cost of serving from memory mappings. Setup builds an
// 8-day store (64 rows, 32 columns per day) and seals its prefix into
// segment files once; the cold-start rows then time a full process
// restart two ways over identical data — mapping the sealed segments
// and FFT-building only the unsealed fringe, vs replaying every store
// day through the pool builder (the pool-file-less baseline). The
// correlation columns record how much FFT work each path actually ran.
// The query rows sweep the same rect set over the mmap-backed pool and
// a from-scratch heap pool; the speedup is the mapped/heap parity
// ratio (acceptance: within noise of 1.0 — mappings are not a tax).
func benchSegments(rep *report) {
	ctx := context.Background()
	const rows, dayCols, days = 64, 32, 8
	dir, err := os.MkdirTemp("", "tabmine-bench-seg")
	fatal(err)
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "store")
	fatal(os.MkdirAll(storeDir, 0o755))
	st, err := tabstore.Open(storeDir)
	fatal(err)
	for i := 0; i < days; i++ {
		fatal(st.AppendDay(fmt.Sprintf("d%02d", i), workload.Random(rows, dayCols, 1, uint64(31+i)), false))
	}
	segOpts := ingest.Options{
		PoolP: 1, PoolK: 16, PoolSeed: 7,
		Pool: core.PoolOptions{
			MinLogRows: 1, MaxLogRows: 4, MinLogCols: 1, MaxLogCols: 4,
			PanelCols: 32, Workers: 1,
		},
		SegmentDir: filepath.Join(storeDir, tabstore.SegmentsDirName),
	}
	replayOpts := segOpts
	replayOpts.SegmentDir = ""

	// Seal the store once, then one more resume so compaction reaches its
	// steady state and every timed cold start sees the identical live set.
	for i := 0; i < 2; i++ {
		ing, err := ingest.New(st, segOpts)
		fatal(err)
		fatal(ing.Resume(ctx))
		ing.Close()
	}
	coldStart := func(opts ingest.Options) *ingest.Ingester {
		s2, err := tabstore.Open(storeDir)
		fatal(err)
		ing, err := ingest.New(s2, opts)
		fatal(err)
		fatal(ing.Resume(ctx))
		return ing
	}
	c0 := fft.CorrelationCount()
	coldStart(segOpts).Close()
	segCorr := int(fft.CorrelationCount() - c0)
	if got := segstore.ReadStats().RestartReplayDays; got != 0 {
		fatal(fmt.Errorf("segment cold start replayed %d days, want 0", got))
	}
	c0 = fft.CorrelationCount()
	coldStart(replayOpts).Close()
	replayCorr := int(fft.CorrelationCount() - c0)

	seg := run("segment/cold_start_mapped", segCorr, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coldStart(segOpts).Close()
		}
	})
	rpl := run(fmt.Sprintf("segment/cold_start_replay%d", days), replayCorr, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			coldStart(replayOpts).Close()
		}
	})
	rep.Results = append(rep.Results, seg, rpl)
	rep.Speedups["segment_cold_start"] = float64(rpl.NsPerOp) / float64(seg.NsPerOp)

	// Query parity: identical sketches read from mapped lanes vs heap
	// lanes. The rect sweep touches every sealed segment plus the fringe.
	mapped := coldStart(segOpts)
	defer mapped.Close()
	// The RSS-ceiling accounting: with the segments mapped and serving,
	// the Go heap holds only the window table and the fringe — the
	// sealed lane payload is in the mappings.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	segStats := segstore.ReadStats()
	rep.Segment = &segMemory{
		BytesMapped:    segStats.BytesMapped,
		BytesDisk:      segStats.BytesDisk,
		HeapAllocBytes: ms.HeapAlloc,
	}
	fmt.Fprintf(os.Stderr, "  serving %d mapped lane bytes over a %d-byte Go heap\n",
		segStats.BytesMapped, ms.HeapAlloc)
	win, err := st.LoadRange(0, days)
	fatal(err)
	heapPool, err := core.NewPool(win, segOpts.PoolP, segOpts.PoolK, segOpts.PoolSeed, segOpts.Pool)
	fatal(err)
	var rects []table.Rect
	for off := 0; off+16 <= days*dayCols; off += 24 {
		rects = append(rects, table.Rect{R0: 8, C0: off, Rows: 16, Cols: 16})
	}
	sweep := func(pl *core.Pool) func(b *testing.B) {
		var buf []float64
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, rect := range rects {
					var err error
					if buf, err = pl.Sketch(rect, buf); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	}
	mq := run("segment/mapped_lane_query", len(rects), sweep(mapped.Pool()))
	hq := run("segment/heap_lane_query", len(rects), sweep(heapPool))
	rep.Results = append(rep.Results, mq, hq)
	rep.Speedups["mapped_lane_query_parity"] = float64(hq.NsPerOp) / float64(mq.NsPerOp)
	fmt.Fprintf(os.Stderr, "  segment cold start: %d correlations vs %d replaying %d days (%.2fx faster)\n",
		segCorr, replayCorr, days, float64(rpl.NsPerOp)/float64(seg.NsPerOp))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-bench: %v\n", err)
		os.Exit(1)
	}
}
