// Command tabmine-bench runs the repo's before/after microbenchmarks
// with the testing package's programmatic harness and emits a
// machine-readable JSON report: the raw cross-correlation primitive,
// all-positions preprocessing, and pool construction (each old
// vs planned), plus incremental pool maintenance (Pool.Append vs a full
// rebuild at several append widths, with measured correlation counts).
//
//	tabmine-bench -out BENCH_5.json
//
// The report is the artifact behind the numbers quoted in EXPERIMENTS.md;
// `make bench-json` regenerates it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/table"
	"repro/internal/workload"
)

// result is one benchmark row. Correlations is how many valid-region
// cross-correlations one op performs, so NsPerCorrelation and
// AllocsPerCorrelation are comparable across rows that batch differently
// (a packed pair does two per op; an AllPositions op does k).
type result struct {
	Name                 string  `json:"name"`
	Iterations           int     `json:"iterations"`
	NsPerOp              int64   `json:"ns_per_op"`
	BytesPerOp           int64   `json:"bytes_per_op"`
	AllocsPerOp          int64   `json:"allocs_per_op"`
	Correlations         int     `json:"correlations_per_op"`
	NsPerCorrelation     float64 `json:"ns_per_correlation"`
	AllocsPerCorrelation float64 `json:"allocs_per_correlation"`
}

type report struct {
	GoVersion  string             `json:"go_version"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Results    []result           `json:"results"`
	Speedups   map[string]float64 `json:"speedups"`
}

func run(name string, correlations int, fn func(b *testing.B)) result {
	fmt.Fprintf(os.Stderr, "running %-28s ", name+"...")
	// Pay any outstanding GC debt from setup or the previous section now,
	// not inside the first timed ops (on a single-core box a collection
	// of a predecessor's garbage can dominate a short benchmark).
	runtime.GC()
	r := testing.Benchmark(fn)
	row := result{
		Name:         name,
		Iterations:   r.N,
		NsPerOp:      r.NsPerOp(),
		BytesPerOp:   r.AllocedBytesPerOp(),
		AllocsPerOp:  r.AllocsPerOp(),
		Correlations: correlations,
	}
	row.NsPerCorrelation = float64(row.NsPerOp) / float64(correlations)
	row.AllocsPerCorrelation = float64(row.AllocsPerOp) / float64(correlations)
	fmt.Fprintf(os.Stderr, "%12d ns/op %10d B/op %6d allocs/op (n=%d)\n",
		row.NsPerOp, row.BytesPerOp, row.AllocsPerOp, r.N)
	return row
}

func main() {
	out := flag.String("out", "BENCH_5.json", "output JSON path")
	flag.Parse()

	rep := report{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Speedups:   map[string]float64{},
	}

	// --- CrossCorrelate: the raw primitive, 128x128 table, 16x16 kernel.
	rng := rand.New(rand.NewPCG(6, 6))
	const n, m, ka, kb = 128, 128, 16, 16
	data := make([]float64, n*m)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	kernA := make([]float64, ka*kb)
	kernB := make([]float64, ka*kb)
	for i := range kernA {
		kernA[i], kernB[i] = rng.NormFloat64(), rng.NormFloat64()
	}
	ccOld := run("cross_correlate/unplanned", 1, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = fft.CrossCorrelateValidUnplanned(data, n, m, kernA, ka, kb)
		}
	})
	plan := fft.NewPlan2D(data, n, m)
	or, oc := plan.OutDims(ka, kb)
	dstA := make([]float64, or*oc)
	dstB := make([]float64, or*oc)
	ccNew := run("cross_correlate/planned", 2, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan.CorrelatePairValid(kernA, kernB, ka, kb, dstA, 1, dstB, 1)
		}
	})
	rep.Results = append(rep.Results, ccOld, ccNew)
	rep.Speedups["cross_correlate"] = ccOld.NsPerCorrelation / ccNew.NsPerCorrelation

	// --- AllPositions: Theorem 3 preprocessing, k=32 matrices.
	tb := workload.Random(128, 128, 1, 17)
	const k, edge = 32, 16
	sk, err := core.NewSketcher(1, k, edge, edge, 7, core.EstimatorAuto)
	fatal(err)
	apOld := run("all_positions/unplanned", k, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sk.AllPositionsUnplanned(tb)
		}
	})
	apNew := run("all_positions/planned", k, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = sk.AllPositions(tb)
		}
	})
	rep.Results = append(rep.Results, apOld, apNew)
	rep.Speedups["all_positions"] = apOld.NsPerCorrelation / apNew.NsPerCorrelation

	// --- NewPool: Theorem 6 preprocessing over a 4x4 grid of dyadic
	// sizes, 4 subpools each, k=16 — 64 plane-set jobs, 1024 correlations.
	poolTb := workload.Random(64, 64, 1, 11)
	const poolK = 16
	opts := core.PoolOptions{
		MinLogRows: 1, MaxLogRows: 4, MinLogCols: 1, MaxLogCols: 4,
		Workers: 1,
	}
	jobs := (opts.MaxLogRows - opts.MinLogRows + 1) * (opts.MaxLogCols - opts.MinLogCols + 1) * 4
	npOld := run("new_pool/unplanned", jobs*poolK, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// The seed behaviour over the identical job grid: every job
			// re-transforms the table for each of its k matrices.
			for li := opts.MinLogRows; li <= opts.MaxLogRows; li++ {
				for lj := opts.MinLogCols; lj <= opts.MaxLogCols; lj++ {
					for s := 0; s < 4; s++ {
						jsk, err := core.NewSketcher(1, poolK, 1<<li, 1<<lj, 7, core.EstimatorAuto)
						if err != nil {
							b.Fatal(err)
						}
						_ = jsk.AllPositionsUnplanned(poolTb)
					}
				}
			}
		}
	})
	npNew := run("new_pool/planned", jobs*poolK, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.NewPool(poolTb, 1, poolK, 7, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
	rep.Results = append(rep.Results, npOld, npNew)
	rep.Speedups["new_pool"] = npOld.NsPerCorrelation / npNew.NsPerCorrelation

	// --- Incremental append: panel-mode maintenance over a 256-column
	// window vs rebuilding from scratch, at several append widths. Per-op
	// (not per-correlation) speedup is the headline here: both sides do
	// one maintenance event over the same grown table, the incremental
	// side just runs fewer slab correlations (the Correlations columns
	// record exactly how many, counted by the fft package's hooks).
	const apRows, apBase = 64, 256
	apOpts := core.PoolOptions{
		MinLogRows: 1, MaxLogRows: 4, MinLogCols: 1, MaxLogCols: 4,
		PanelCols: 32, Workers: 1,
	}
	apFull := workload.Random(apRows, apBase+64, 1, 21)
	apBaseTb := apFull.Sub(table.Rect{Rows: apRows, Cols: apBase})
	basePool, err := core.NewPool(apBaseTb, 1, poolK, 7, apOpts)
	fatal(err)
	for _, w := range []int{1, 8, 64} {
		grown := apFull.Sub(table.Rect{Rows: apRows, Cols: apBase + w})
		// One uncounted warm call per side measures its correlation count.
		c0 := fft.CorrelationCount()
		_, err := basePool.Append(context.Background(), grown)
		fatal(err)
		appendCorr := int(fft.CorrelationCount() - c0)
		c0 = fft.CorrelationCount()
		_, err = core.NewPool(grown, 1, poolK, 7, apOpts)
		fatal(err)
		rebuildCorr := int(fft.CorrelationCount() - c0)

		inc := run(fmt.Sprintf("incremental_append/w%d", w), appendCorr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := basePool.Append(context.Background(), grown); err != nil {
					b.Fatal(err)
				}
			}
		})
		reb := run(fmt.Sprintf("full_rebuild/w%d", w), rebuildCorr, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.NewPool(grown, 1, poolK, 7, apOpts); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, inc, reb)
		rep.Speedups[fmt.Sprintf("incremental_append/w%d", w)] =
			float64(reb.NsPerOp) / float64(inc.NsPerOp)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	buf = append(buf, '\n')
	fatal(os.WriteFile(*out, buf, 0o644))
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	for name, s := range rep.Speedups {
		fmt.Printf("%-18s %.2fx per-correlation speedup\n", name, s)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-bench: %v\n", err)
		os.Exit(1)
	}
}
