// Command tabmine-serve runs the resilient sketch query service: it
// loads a table (and optionally a pre-built pool snapshot), builds the
// serving snapshot — dyadic sketch pool, tile grid, medoid clustering —
// and answers distance / nearest-tile / cluster-assign queries over
// HTTP with admission control, per-request deadlines, and graceful
// degradation to the O(k) sketch tier.
//
//	tabmine-serve -table calls.tabf -addr 127.0.0.1:8080 \
//	    -p 1 -k 128 -tile-rows 16 -tile-cols 16 -clusters 8
//
// Lifecycle: SIGHUP re-reads the input files and hot-swaps the
// snapshot atomically (in-flight requests finish against the old one);
// SIGINT/SIGTERM drains in-flight requests for up to -grace and exits
// 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/runctx"
	"repro/internal/server"
	"repro/internal/tabfile"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the resolved listen address to this file (for scripts)")
		in       = flag.String("table", "", "input table file (required)")
		loadPool = flag.String("load-pool", "", "load a pool snapshot instead of building one")
		p        = flag.Float64("p", 1, "Lp exponent in (0, 2]")
		k        = flag.Int("k", 128, "sketch entries")
		seed     = flag.Uint64("seed", 42, "sketch + clustering seed")
		maxLog   = flag.Int("max-log", 0, "cap pooled dyadic sizes at 2^n per axis (0 = every size fitting the table)")
		tileRows = flag.Int("tile-rows", 16, "grid tile height for nearest/assign")
		tileCols = flag.Int("tile-cols", 16, "grid tile width for nearest/assign")
		clusters = flag.Int("clusters", 8, "k-medoids clusters over grid tiles (0 disables /v1/assign)")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = all cores)")

		maxInflight = flag.Int("max-inflight", 0, "concurrent query executions (0 = default 8)")
		maxQueue    = flag.Int("max-queue", 0, "bounded admission queue (0 = default 4x inflight)")
		reqTimeout  = flag.Duration("timeout", 0, "default per-request deadline (0 = 2s)")
		degradeAt   = flag.Float64("degrade-at", 0, "occupancy fraction above which auto queries degrade (0 = 0.75)")
		exactBudget = flag.Duration("exact-budget", 0, "min remaining deadline for the exact path (0 = 20ms)")
		grace       = flag.Duration("grace", 10*time.Second, "drain timeout on SIGTERM/SIGINT")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "tabmine-serve: -table is required")
		flag.Usage()
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "tabmine-serve: ", log.LstdFlags)

	ctx, stop := runctx.WithSignals(0)
	defer stop()

	build := func(bctx context.Context) (*server.Snapshot, error) {
		tb, err := tabfile.ReadFile(*in)
		if err != nil {
			return nil, err
		}
		var pool *core.Pool
		if *loadPool != "" {
			pool, err = core.LoadPoolFile(*loadPool)
		} else {
			opts := core.DefaultPoolOptions(tb)
			if *maxLog > 0 {
				opts.MaxLogRows = min(opts.MaxLogRows, *maxLog)
				opts.MaxLogCols = min(opts.MaxLogCols, *maxLog)
			}
			opts.Workers = *workers
			opts.Context = bctx
			pool, err = core.NewPool(tb, *p, *k, *seed, opts)
		}
		if err != nil {
			return nil, err
		}
		return server.BuildSnapshot(bctx, tb, pool, server.SnapshotConfig{
			TileRows: *tileRows, TileCols: *tileCols,
			Clusters: *clusters, Seed: *seed, Workers: *workers,
		})
	}

	t0 := time.Now()
	snap, err := build(ctx)
	fatal(err)
	logger.Printf("snapshot ready in %v: %dx%d table, %d tiles, %d clusters",
		time.Since(t0).Round(time.Millisecond),
		snap.Table().Rows(), snap.Table().Cols(), snap.NumTiles(), snap.Clusters())

	srv, err := server.New(snap, server.Config{
		MaxInflight: *maxInflight, MaxQueue: *maxQueue,
		DefaultTimeout: *reqTimeout, DegradeAt: *degradeAt,
		ExactBudget: *exactBudget, Workers: *workers,
		Logf: logger.Printf,
	})
	fatal(err)

	l, err := net.Listen("tcp", *addr)
	fatal(err)
	logger.Printf("listening on http://%s", l.Addr())
	if *addrFile != "" {
		fatal(os.WriteFile(*addrFile, []byte(l.Addr().String()), 0o644))
	}

	// SIGHUP → rebuild from the input files and swap atomically. A
	// failed rebuild keeps serving the old snapshot.
	hup, stopHup := runctx.Hangup()
	defer stopHup()
	go func() {
		for range hup {
			logger.Printf("SIGHUP: reloading snapshot from %s", *in)
			ns, err := build(ctx)
			if err != nil {
				logger.Printf("reload failed, keeping current snapshot: %v", err)
				continue
			}
			srv.Swap(ns)
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		fatal(err) // listener failure before any signal
	case <-ctx.Done():
	}
	logger.Printf("draining (grace %v)", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	logger.Printf("drained cleanly")
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-serve: %v\n", err)
		os.Exit(1)
	}
}
