// Command tabmine-serve runs the resilient sketch query service: it
// loads a table (and optionally a pre-built pool snapshot), builds the
// serving snapshot — dyadic sketch pool, tile grid, medoid clustering —
// and answers distance / nearest-tile / cluster-assign queries over
// HTTP with admission control, per-request deadlines, and graceful
// degradation to the O(k) sketch tier.
//
//	tabmine-serve -table calls.tabf -addr 127.0.0.1:8080 \
//	    -p 1 -k 128 -tile-rows 16 -tile-cols 16 -clusters 8
//
// With -store the server runs in streaming-ingestion mode instead: it
// serves a day-partitioned tabstore, accepts pushed day-columns on
// POST /v1/ingest (see tabmine-ingest), maintains the sketch pool
// incrementally over a bounded sliding window, and republishes the
// snapshot atomically after every accepted batch — no SIGHUP needed.
//
//	tabmine-serve -store ./calls -addr 127.0.0.1:8080 \
//	    -window-days 30 -panel-cols 32 -pool-file ./calls/pool.skpo
//
// With -segments (store mode, instead of -pool-file) the sealed prefix
// of the pool persists as immutable memory-mapped segment files under
// <store>/segments: queries read sealed lanes from the mappings (the
// window is bounded by disk, not RAM) and a restart maps the segments
// and rebuilds only the fringe — tabmine_seg_restart_replay_days
// reads 0 even after SIGKILL. See tabmine-store segments/fsck and
// `make mmap-demo`.
//
// Lifecycle: SIGHUP re-reads the input files and hot-swaps the
// snapshot atomically (in-flight requests finish against the old one);
// in store mode it is the manual override that re-reads the manifest
// for days appended by another process. SIGINT/SIGTERM drains in-flight
// requests for up to -grace and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/bits"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ingest"
	"repro/internal/runctx"
	"repro/internal/server"
	"repro/internal/tabfile"
	"repro/internal/table"
	"repro/internal/tabstore"
)

// latchPublisher buffers the newest snapshot until the server exists
// (the ingester resumes before server.New runs, since the server needs
// the first snapshot), then forwards every later one.
type latchPublisher struct {
	mu   sync.Mutex
	last *server.Snapshot
	dst  server.Publisher
}

func (l *latchPublisher) Publish(sn *server.Snapshot) {
	l.mu.Lock()
	l.last = sn
	dst := l.dst
	l.mu.Unlock()
	if dst != nil {
		dst.Publish(sn)
	}
}

func (l *latchPublisher) Last() *server.Snapshot {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.last
}

func (l *latchPublisher) forwardTo(dst server.Publisher) {
	l.mu.Lock()
	l.dst = dst
	l.mu.Unlock()
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks a free port)")
		addrFile = flag.String("addr-file", "", "write the resolved listen address to this file (for scripts)")
		in       = flag.String("table", "", "input table file (this or -store is required)")
		colsFlag = flag.String("cols", "", "serve only columns [lo:hi) of the table as one shard of a column-sharded fleet (table mode; sketches stay merge-compatible across shards built with equal -p/-k/-seed)")
		storeDir = flag.String("store", "", "serve a day-partitioned tabstore with streaming ingestion")
		loadPool = flag.String("load-pool", "", "load a pool snapshot instead of building one")
		p        = flag.Float64("p", 1, "Lp exponent in (0, 2]")
		k        = flag.Int("k", 128, "sketch entries")
		seed     = flag.Uint64("seed", 42, "sketch + clustering seed")
		maxLog   = flag.Int("max-log", 0, "cap pooled dyadic sizes at 2^n per axis (0 = every size fitting the table)")
		tileRows = flag.Int("tile-rows", 16, "grid tile height for nearest/assign")
		tileCols = flag.Int("tile-cols", 16, "grid tile width for nearest/assign")
		clusters = flag.Int("clusters", 8, "k-medoids clusters over grid tiles (0 disables /v1/assign)")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = all cores)")

		maxInflight = flag.Int("max-inflight", 0, "concurrent query executions (0 = default 8)")
		maxQueue    = flag.Int("max-queue", 0, "bounded admission queue (0 = default 4x inflight)")
		reqTimeout  = flag.Duration("timeout", 0, "default per-request deadline (0 = 2s)")
		degradeAt   = flag.Float64("degrade-at", 0, "occupancy fraction above which auto queries degrade (0 = 0.75)")
		exactBudget = flag.Duration("exact-budget", 0, "min remaining deadline for the exact path (0 = 20ms)")
		grace       = flag.Duration("grace", 10*time.Second, "drain timeout on SIGTERM/SIGINT")
		lameduck    = flag.Duration("lameduck", 0, "on SIGTERM/SIGINT, withdraw readiness (503 /readyz, not-ready /v1/shardinfo) and keep answering queries this long before draining — lets a coordinator route around this shard first")

		windowDays = flag.Int("window-days", 0, "store mode: sliding window over the time axis, in days (0 = unbounded)")
		panelCols  = flag.Int("panel-cols", 32, "store mode: panel width for incremental pool maintenance")
		poolFile   = flag.String("pool-file", "", "store mode: persist the pool here for crash-safe resume")
		segments   = flag.Bool("segments", false, "store mode: persist the sealed pool prefix as mmap-backed segment files under <store>/segments — restart maps them and replays no days (exclusive with -pool-file; needs power-of-two -panel-cols)")
		poll       = flag.Duration("poll", 0, "store mode: re-read the manifest this often (0 = pushes and SIGHUP only)")
		queueLen   = flag.Int("queue-len", 0, "store mode: pending-append backlog bound before 503s (0 = default 8)")
	)
	flag.Parse()
	if (*in == "") == (*storeDir == "") {
		fmt.Fprintln(os.Stderr, "tabmine-serve: exactly one of -table and -store is required")
		flag.Usage()
		os.Exit(2)
	}
	if *colsFlag != "" && (*storeDir != "" || *loadPool != "") {
		fmt.Fprintln(os.Stderr, "tabmine-serve: -cols requires -table and builds its own pool (no -store / -load-pool)")
		os.Exit(2)
	}
	logger := log.New(os.Stderr, "tabmine-serve: ", log.LstdFlags)

	ctx, stop := runctx.WithSignals(0)
	defer stop()

	snapCfg := server.SnapshotConfig{
		TileRows: *tileRows, TileCols: *tileCols,
		Clusters: *clusters, Seed: *seed, Workers: *workers,
	}
	var (
		build    func(bctx context.Context) (*server.Snapshot, error) // SIGHUP rebuild, table mode only
		ingester *ingest.Ingester
		snap     *server.Snapshot
		latch    = &latchPublisher{}
	)
	t0 := time.Now()
	if *storeDir != "" {
		st, err := tabstore.Open(*storeDir)
		fatal(err)
		if st.NumDays() == 0 {
			fatal(fmt.Errorf("store %s is empty; append a first day with tabmine-store", *storeDir))
		}
		// Row extents come from the store's fixed station axis; column
		// extents are capped at the tile width so they stay buildable
		// over any window at least one tile wide.
		popts := core.PoolOptions{
			MinLogRows: 1, MaxLogRows: bits.Len(uint(st.Rows())) - 1,
			MinLogCols: 1, MaxLogCols: bits.Len(uint(*tileCols)) - 1,
			Workers: *workers, PanelCols: *panelCols,
		}
		if *maxLog > 0 {
			popts.MaxLogRows = min(popts.MaxLogRows, *maxLog)
			popts.MaxLogCols = min(popts.MaxLogCols, *maxLog)
		}
		segDir := ""
		if *segments {
			segDir = st.SegmentsDir()
		}
		ingester, err = ingest.New(st, ingest.Options{
			PoolP: *p, PoolK: *k, PoolSeed: *seed, Pool: popts,
			WindowDays: *windowDays, QueueLen: *queueLen,
			PoolFile: *poolFile, SegmentDir: segDir, Poll: *poll,
			Snapshot: snapCfg, Publisher: latch, Logf: logger.Printf,
		})
		fatal(err)
		// Resume runs in the background AFTER the server binds: the
		// process answers /healthz ("booting") and /readyz (503)
		// immediately, so a coordinator probing this shard learns "alive
		// but not ready" instead of connection-refused while the pool
		// resume crunches. snap stays nil — server.New's boot state.
	} else {
		build = func(bctx context.Context) (*server.Snapshot, error) {
			tb, err := tabfile.ReadFile(*in)
			if err != nil {
				return nil, err
			}
			baseCol := 0
			if *colsFlag != "" {
				lo, hi, err := parseColRange(*colsFlag, tb.Cols())
				if err != nil {
					return nil, err
				}
				// Shard mode: this process serves columns [lo, hi). The
				// slice becomes the local table; BaseCol records where it
				// sits in the global column space, which /v1/shardinfo
				// reports to the coordinator. Sketch randomness is
				// position-independent, so the slice's sketches are
				// bit-identical to the full table's for the same cells.
				tb = tb.Sub(table.Rect{R0: 0, C0: lo, Rows: tb.Rows(), Cols: hi - lo})
				baseCol = lo
			}
			var pool *core.Pool
			if *loadPool != "" {
				pool, err = core.LoadPoolFile(*loadPool)
			} else {
				opts := core.DefaultPoolOptions(tb)
				if *maxLog > 0 {
					opts.MaxLogRows = min(opts.MaxLogRows, *maxLog)
					opts.MaxLogCols = min(opts.MaxLogCols, *maxLog)
				}
				opts.Workers = *workers
				opts.Context = bctx
				opts.BaseCol = baseCol
				pool, err = core.NewPool(tb, *p, *k, *seed, opts)
			}
			if err != nil {
				return nil, err
			}
			return server.BuildSnapshot(bctx, tb, pool, snapCfg)
		}
		var err error
		snap, err = build(ctx)
		fatal(err)
		logger.Printf("snapshot ready in %v: %dx%d table, %d tiles, %d clusters",
			time.Since(t0).Round(time.Millisecond),
			snap.Table().Rows(), snap.Table().Cols(), snap.NumTiles(), snap.Clusters())
	}

	cfg := server.Config{
		MaxInflight: *maxInflight, MaxQueue: *maxQueue,
		DefaultTimeout: *reqTimeout, DegradeAt: *degradeAt,
		ExactBudget: *exactBudget, Workers: *workers,
		Logf: logger.Printf,
	}
	if ingester != nil {
		cfg.Ingestor = ingester
	}
	srv, err := server.New(snap, cfg) // snap == nil in store mode: boot state
	fatal(err)
	if ingester != nil {
		// Every maintained snapshot goes live atomically; the first one
		// flips /readyz from 503 to 200.
		latch.forwardTo(srv)
		go func() {
			if err := ingester.Resume(ctx); err != nil {
				if errors.Is(err, context.Canceled) {
					return
				}
				fatal(err)
			}
			first := latch.Last()
			if first == nil {
				fatal(fmt.Errorf("no snapshot could be built over the store window (is it at least %dx%d?)",
					*tileRows, *tileCols))
			}
			logger.Printf("snapshot ready in %v: %dx%d table, %d tiles, %d clusters",
				time.Since(t0).Round(time.Millisecond),
				first.Table().Rows(), first.Table().Cols(), first.NumTiles(), first.Clusters())
			if err := ingester.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				logger.Printf("ingest loop: %v", err)
			}
		}()
	}

	l, err := net.Listen("tcp", *addr)
	fatal(err)
	logger.Printf("listening on http://%s", l.Addr())
	if *addrFile != "" {
		fatal(os.WriteFile(*addrFile, []byte(l.Addr().String()), 0o644))
	}

	// SIGHUP → table mode rebuilds from the input files and swaps
	// atomically (a failed rebuild keeps serving the old snapshot);
	// store mode re-reads the manifest and drains — the manual override
	// for stores grown by another process.
	hup, stopHup := runctx.Hangup()
	defer stopHup()
	go func() {
		for range hup {
			if ingester != nil {
				logger.Printf("SIGHUP: re-reading store manifest")
				ingester.Wake()
				continue
			}
			logger.Printf("SIGHUP: reloading snapshot from %s", *in)
			ns, err := build(ctx)
			if err != nil {
				logger.Printf("reload failed, keeping current snapshot: %v", err)
				continue
			}
			srv.Swap(ns)
		}
	}()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(l) }()

	select {
	case err := <-serveErr:
		fatal(err) // listener failure before any signal
	case <-ctx.Done():
	}
	if *lameduck > 0 {
		logger.Printf("lame duck: readiness withdrawn for %v", *lameduck)
		srv.BeginDrain()
		time.Sleep(*lameduck)
	}
	logger.Printf("draining (grace %v)", *grace)
	shCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := srv.Shutdown(shCtx); err != nil {
		logger.Printf("drain incomplete: %v", err)
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	logger.Printf("drained cleanly")
}

// parseColRange parses a half-open column range "lo:hi" and validates
// it against the table width.
func parseColRange(s string, max int) (lo, hi int, err error) {
	if _, err := fmt.Sscanf(s, "%d:%d", &lo, &hi); err != nil {
		return 0, 0, fmt.Errorf("-cols %q: want lo:hi (half-open, e.g. 0:32)", s)
	}
	if lo < 0 || hi <= lo || hi > max {
		return 0, 0, fmt.Errorf("-cols %q: need 0 <= lo < hi <= %d (table width)", s, max)
	}
	return lo, hi, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-serve: %v\n", err)
		os.Exit(1)
	}
}
