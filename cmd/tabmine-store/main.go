// Command tabmine-store manages a day-partitioned table store: append
// days from table/CSV files, list the contents, and export stitched
// ranges for mining.
//
//	tabmine-store -dir ./calls init
//	tabmine-store -dir ./calls append -label mon -in day0.tabf -gzip
//	tabmine-store -dir ./calls list
//	tabmine-store -dir ./calls export -from 0 -to 3 -o week.tabf
//	tabmine-store -dir ./calls fsck
//	tabmine-store -dir ./calls segments
//
// fsck verifies the day files and, when the store serves in segment
// mode (tabmine-serve -segments), deep-verifies the mmap segment files
// under segments/ too: corrupt segments are quarantined and an
// unreadable segment manifest is rebuilt from the surviving headers.
// segments lists the live segment set — level, column range, CRC
// status, and bytes mapped vs payload.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/segstore"
	"repro/internal/tabfile"
	"repro/internal/table"
	"repro/internal/tabstore"
)

func main() {
	var (
		dir = flag.String("dir", "", "store directory (required)")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tabmine-store -dir DIR {init | append | list | export | fsck | segments} [args]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *dir == "" || flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	args := flag.Args()[1:]
	switch cmd {
	case "init":
		fatal(os.MkdirAll(*dir, 0o755))
		_, err := tabstore.Open(*dir)
		fatal(err)
		fmt.Printf("initialized store at %s\n", *dir)
	case "append":
		runAppend(*dir, args)
	case "list":
		runList(*dir)
	case "export":
		runExport(*dir, args)
	case "fsck":
		runFsck(*dir)
	case "segments":
		runSegments(*dir)
	default:
		fatal(fmt.Errorf("unknown subcommand %q", cmd))
	}
}

func runAppend(dir string, args []string) {
	fs := flag.NewFlagSet("append", flag.ExitOnError)
	label := fs.String("label", "", "day label (required)")
	in := fs.String("in", "", "input table file, .csv treated as CSV (required)")
	gz := fs.Bool("gzip", false, "compress the stored day")
	fatal(fs.Parse(args))
	if *label == "" || *in == "" {
		fatal(fmt.Errorf("append needs -label and -in"))
	}
	var (
		tb  *table.Table
		err error
	)
	if strings.HasSuffix(*in, ".csv") {
		f, err2 := os.Open(*in)
		fatal(err2)
		tb, err = tabfile.ReadCSV(f)
		f.Close()
	} else {
		tb, err = tabfile.ReadFile(*in)
	}
	fatal(err)
	s, err := tabstore.Open(dir)
	fatal(err)
	fatal(s.AppendDay(*label, tb, *gz))
	fmt.Printf("appended %q: %dx%d (day %d of store)\n", *label, tb.Rows(), tb.Cols(), s.NumDays())
}

func runList(dir string) {
	s, err := tabstore.Open(dir)
	fatal(err)
	fmt.Printf("store %s: %d days, %d rows\n", dir, s.NumDays(), s.Rows())
	for i, label := range s.Labels() {
		day, err := s.Day(i)
		fatal(err)
		st := day.Summarize()
		fmt.Printf("  [%d] %-12s %d cols  (min %.1f, mean %.1f, max %.1f)\n",
			i, label, day.Cols(), st.Min, st.Mean, st.Max)
	}
}

func runExport(dir string, args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	from := fs.Int("from", 0, "first day (inclusive)")
	to := fs.Int("to", -1, "last day (exclusive; -1 = all)")
	out := fs.String("o", "", "output table file (required)")
	gz := fs.Bool("gzip", false, "compress the export")
	fatal(fs.Parse(args))
	if *out == "" {
		fatal(fmt.Errorf("export needs -o"))
	}
	s, err := tabstore.Open(dir)
	fatal(err)
	end := *to
	if end < 0 {
		end = s.NumDays()
	}
	tb, err := s.LoadRange(*from, end)
	fatal(err)
	fatal(tabfile.WriteFile(*out, tb, *gz))
	fmt.Printf("exported days [%d, %d) as %dx%d to %s\n", *from, end, tb.Rows(), tb.Cols(), *out)
}

// runFsck verifies every day file (existence, CRC32C, decodability,
// dimensions), quarantines corrupt files, and rebuilds the manifest.
// Exit status 1 signals that problems were found, so scripts can gate on
// store health.
func runFsck(dir string) {
	s, err := tabstore.Open(dir)
	fatal(err)
	rep, err := s.Fsck()
	fatal(err)
	fmt.Printf("checked %d days\n", rep.Checked)
	for _, p := range rep.Problems {
		fmt.Printf("  problem: %s\n", p)
	}
	for _, f := range rep.Quarantined {
		fmt.Printf("  quarantined: %s -> quarantine/\n", f)
	}
	for _, f := range rep.Missing {
		fmt.Printf("  missing: %s\n", f)
	}
	for _, f := range rep.TempsRemoved {
		fmt.Printf("  removed stray temp: %s\n", f)
	}
	if rep.Rebuilt {
		fmt.Printf("manifest rebuilt: %d days remain\n", s.NumDays())
	}
	healthy := rep.OK()

	// Segment-mode stores keep their mmap segment files under segments/;
	// deep-verify those too (per-lane CRCs, tiling contiguity), sharing
	// the quarantine convention with the day files.
	if st, err := os.Stat(s.SegmentsDir()); err == nil && st.IsDir() {
		srep, err := segstore.Fsck(s.SegmentsDir())
		fatal(err)
		fmt.Printf("checked %d segments\n", srep.Checked)
		for _, p := range srep.Problems {
			fmt.Printf("  problem: %s\n", p)
		}
		for _, f := range srep.Quarantined {
			fmt.Printf("  quarantined: %s -> %s\n", f, "segments/quarantine/")
		}
		for _, f := range srep.TempsRemoved {
			fmt.Printf("  removed stray temp: %s\n", f)
		}
		if srep.Rebuilt {
			fmt.Println("segment manifest rebuilt")
		}
		healthy = healthy && srep.OK()
	}
	if healthy {
		fmt.Println("store is healthy")
	} else {
		os.Exit(1)
	}
}

// runSegments lists the live segment set of a segment-mode store:
// level, column range, CRC status, and the byte accounting (what
// serving maps vs the lane payload itself).
func runSegments(dir string) {
	s, err := tabstore.Open(dir)
	fatal(err)
	l, err := segstore.List(s.SegmentsDir())
	if os.IsNotExist(err) {
		fatal(fmt.Errorf("store %s has no segment directory (serve with tabmine-serve -segments)", dir))
	}
	fatal(err)
	fmt.Printf("segment store %s: columns [%d, %d) sealed across %d segments\n",
		s.SegmentsDir(), l.BaseCol, l.SealedCol, len(l.Segments))
	var disk, payload int64
	for _, in := range l.Segments {
		status := "CRC ok"
		if !in.CRCOK {
			status = "CRC BAD"
		}
		fmt.Printf("  L%d seq %-6d %-24s cols [%d, %d)  %8d bytes mapped  %8d payload  %s\n",
			in.Level, in.Seq, in.File, in.T0, in.T1, in.MappedBytes, in.PayloadBytes, status)
		disk += in.Bytes
		payload += in.PayloadBytes
	}
	fmt.Printf("total: %d bytes on disk, %d bytes of lane payload\n", disk, payload)
	for _, in := range l.Segments {
		if !in.CRCOK {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-store: %v\n", err)
		os.Exit(1)
	}
}
