// Command tabmine-ingest pushes day-column records into a running
// tabmine-serve (POST /v1/ingest), or writes them to a file for replay.
// Each record is one day: a label plus a table whose columns extend the
// store's time axis.
//
//	tabmine-ingest -addr http://127.0.0.1:8080 -label d2026-08-06 -table day.tabf
//	tabmine-ingest -addr ... -label d00 -random 64x16 -seed 7
//
// Backpressure is part of the protocol: a 503 answer means the server's
// ingest backlog is full, and the client honors its Retry-After hint
// for up to -retries attempts before giving up. The record lands in the
// server's write-ahead store before the 200 arrives; the response JSON
// reports how many pushed days are still pending sketch maintenance.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/ingest"
	"repro/internal/tabfile"
	"repro/internal/table"
	"repro/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", "", "server base URL (e.g. http://127.0.0.1:8080)")
		out      = flag.String("out", "", "write the framed record to this file instead of pushing")
		label    = flag.String("label", "", "day label (required; printable ASCII, no separators)")
		in       = flag.String("table", "", "day table file (.tabf, or .csv with -csv)")
		csvIn    = flag.Bool("csv", false, "parse -table as CSV")
		random   = flag.String("random", "", "synthesize a random ROWSxCOLS day instead of reading -table")
		seed     = flag.Uint64("seed", 1, "seed for -random")
		scale    = flag.Float64("scale", 100, "value scale for -random")
		compress = flag.Bool("compress", false, "gzip-compress the record payload")
		retries  = flag.Int("retries", 5, "attempts when the server sheds with 503 + Retry-After")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-attempt HTTP timeout")
	)
	flag.Parse()
	if *label == "" {
		fatal(fmt.Errorf("-label is required"))
	}
	if (*addr == "") == (*out == "") {
		fatal(fmt.Errorf("exactly one of -addr and -out is required"))
	}

	tb, err := loadDay(*in, *csvIn, *random, *scale, *seed)
	fatal(err)

	var rec bytes.Buffer
	fatal(ingest.WriteRecord(&rec, *label, tb, *compress))

	if *out != "" {
		fatal(os.WriteFile(*out, rec.Bytes(), 0o644))
		fmt.Printf("wrote %s: day %q, %dx%d\n", *out, *label, tb.Rows(), tb.Cols())
		return
	}

	client := &http.Client{Timeout: *timeout}
	url := strings.TrimSuffix(*addr, "/") + "/v1/ingest"
	for attempt := 0; ; attempt++ {
		code, retryAfter, body, err := post(client, url, rec.Bytes())
		fatal(err)
		switch {
		case code == http.StatusOK:
			fmt.Printf("%s", body)
			return
		case code == http.StatusServiceUnavailable && attempt < *retries:
			fmt.Fprintf(os.Stderr, "tabmine-ingest: backlog full, retrying in %v (%d/%d)\n",
				retryAfter, attempt+1, *retries)
			time.Sleep(retryAfter)
		default:
			fatal(fmt.Errorf("server answered %d: %s", code, strings.TrimSpace(string(body))))
		}
	}
}

func loadDay(in string, csvIn bool, random string, scale float64, seed uint64) (*table.Table, error) {
	if random != "" {
		if in != "" {
			return nil, fmt.Errorf("-table and -random are mutually exclusive")
		}
		rows, cols, ok := strings.Cut(random, "x")
		r, err1 := strconv.Atoi(rows)
		c, err2 := strconv.Atoi(cols)
		if !ok || err1 != nil || err2 != nil || r <= 0 || c <= 0 {
			return nil, fmt.Errorf("bad -random %q, want ROWSxCOLS", random)
		}
		return workload.Random(r, c, scale, seed), nil
	}
	if in == "" {
		return nil, fmt.Errorf("one of -table and -random is required")
	}
	if csvIn {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return tabfile.ReadCSV(f)
	}
	return tabfile.ReadFile(in)
}

// post performs one push and interprets the shedding contract.
func post(client *http.Client, url string, rec []byte) (int, time.Duration, []byte, error) {
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(rec))
	if err != nil {
		return 0, 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, 0, nil, err
	}
	retryAfter := time.Second
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return resp.StatusCode, retryAfter, body, nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-ingest: %v\n", err)
		os.Exit(1)
	}
}
