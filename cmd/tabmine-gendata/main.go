// Command tabmine-gendata generates synthetic tabular datasets and writes
// them as binary table files (or CSV) for use with tabmine-sketch,
// tabmine-cluster, and external tools.
//
// Usage:
//
//	tabmine-gendata -kind callvolume -stations 192 -days 4 -o calls.tabf
//	tabmine-gendata -kind sixregions -rows 128 -cols 128 -o planted.tabf
//	tabmine-gendata -kind random -rows 64 -cols 64 -o noise.csv -csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tabfile"
	"repro/internal/table"
	"repro/internal/workload"
)

func main() {
	var (
		kind     = flag.String("kind", "callvolume", "dataset kind: callvolume | sixregions | random")
		out      = flag.String("o", "", "output path (required)")
		csvOut   = flag.Bool("csv", false, "write CSV instead of the binary format")
		compress = flag.Bool("gzip", false, "gzip-compress the binary payload")
		seed     = flag.Uint64("seed", 42, "generator seed")

		stations = flag.Int("stations", 192, "callvolume: number of stations (rows)")
		days     = flag.Int("days", 1, "callvolume: number of stitched days (cols = 144/day)")
		centers  = flag.Int("centers", 0, "callvolume: population centers (0 = auto)")

		rows = flag.Int("rows", 128, "sixregions/random: table rows")
		cols = flag.Int("cols", 128, "sixregions/random: table cols")
		outl = flag.Float64("outliers", 0.01, "sixregions: outlier fraction")

		scale = flag.Float64("scale", 1000, "random: noise standard deviation")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tabmine-gendata: -o output path is required")
		flag.Usage()
		os.Exit(2)
	}

	var (
		tb  *table.Table
		err error
	)
	switch *kind {
	case "callvolume":
		tb, _, err = workload.CallVolume(workload.CallVolumeConfig{
			Stations: *stations, Days: *days, Seed: *seed, PopCenters: *centers,
		})
	case "sixregions":
		var d *workload.SixRegions
		d, err = workload.NewSixRegions(workload.SixRegionsConfig{
			Rows: *rows, Cols: *cols, Seed: *seed, OutlierFrac: *outl,
		})
		if err == nil {
			tb = d.Table
		}
	case "random":
		tb = workload.Random(*rows, *cols, *scale, *seed)
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-gendata: %v\n", err)
		os.Exit(1)
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-gendata: %v\n", err)
		os.Exit(1)
	}
	if *csvOut {
		err = tabfile.WriteCSV(f, tb)
	} else {
		err = tabfile.Write(f, tb, *compress)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-gendata: %v\n", err)
		os.Exit(1)
	}
	s := tb.Summarize()
	fmt.Printf("wrote %s: %dx%d cells (min %.1f, mean %.1f, max %.1f)\n",
		*out, tb.Rows(), tb.Cols(), s.Min, s.Mean, s.Max)
}
