// Command tabmine-series runs sketch-accelerated similarity search over a
// single time series (one row of a table file): given a query window it
// finds the most similar non-overlapping window under the Lp distance,
// using the dyadic interval-sketch pool (the paper's 1D predecessor
// machinery from VLDB 2000).
//
//	tabmine-gendata -kind callvolume -stations 64 -days 4 -o calls.tabf
//	tabmine-series -in calls.tabf -row 10 -p 1 -query 0 -length 144
package main

import (
	"flag"
	"fmt"
	"math/bits"
	"os"
	"time"

	"repro/internal/lpnorm"
	"repro/internal/series"
	"repro/internal/tabfile"
)

func main() {
	var (
		in     = flag.String("in", "", "input table file (required)")
		row    = flag.Int("row", 0, "table row to treat as the time series")
		p      = flag.Float64("p", 1, "Lp exponent in (0, 2]")
		k      = flag.Int("k", 256, "sketch entries")
		query  = flag.Int("query", 0, "query window start position")
		length = flag.Int("length", 0, "window length (required)")
		stride = flag.Int("stride", 1, "candidate window stride")
		seed   = flag.Uint64("seed", 42, "sketch seed")
	)
	flag.Parse()
	if *in == "" || *length <= 0 {
		fmt.Fprintln(os.Stderr, "tabmine-series: -in and -length are required")
		flag.Usage()
		os.Exit(2)
	}
	tb, err := tabfile.ReadFile(*in)
	fatal(err)
	if *row < 0 || *row >= tb.Rows() {
		fatal(fmt.Errorf("row %d outside table with %d rows", *row, tb.Rows()))
	}
	x := tb.Row(*row)
	fmt.Printf("series: row %d of %s, %d points\n", *row, *in, len(x))

	// Dyadic range covering the requested window length.
	maxLog := bits.Len(uint(*length)) - 1
	if 1<<maxLog > len(x) {
		fatal(fmt.Errorf("window length %d too large for series of %d points", *length, len(x)))
	}
	minLog := maxLog - 1
	if minLog < 0 {
		minLog = 0
	}
	t0 := time.Now()
	pool, err := series.NewIntervalPool(x, *p, *k, *seed, minLog, maxLog)
	fatal(err)
	build := time.Since(t0)

	t0 = time.Now()
	start, estDist, err := pool.NearestWindow(*query, *length, *stride)
	fatal(err)
	search := time.Since(t0)

	lp, err := lpnorm.NewP(*p)
	fatal(err)
	exact := lp.Dist(x[*query:*query+*length], x[start:start+*length])

	fmt.Printf("pool built in %v (k=%d, dyadic lengths %d..%d)\n", build, *k, 1<<minLog, 1<<maxLog)
	fmt.Printf("query window  [%d, %d)\n", *query, *query+*length)
	fmt.Printf("best match    [%d, %d)  (searched in %v)\n", start, start+*length, search)
	fmt.Printf("  sketched L%.4g distance: %.4f\n", *p, estDist)
	fmt.Printf("  exact    L%.4g distance: %.4f\n", *p, exact)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-series: %v\n", err)
		os.Exit(1)
	}
}
