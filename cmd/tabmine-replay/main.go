// Command tabmine-replay drives a live tabmine-serve instance with a
// zipf-skewed, open-loop query workload and reports shed rate,
// degraded-tier rate, and latency percentiles as JSON.
//
//	tabmine-replay -server http://127.0.0.1:8080 -n 2000 -rate 800 \
//	    -batch 16 -op nearest -mode auto -seed 7 -out replay.json
//
// Arrivals follow a deterministic seeded Poisson schedule that does not
// slow down when the server does (open loop): queries past the
// -max-outstanding cap are dropped and counted as overflow, and no
// request is ever retried — a shed is a measurement. The same -seed
// replays the identical query stream, so two runs against the same
// snapshot differ only in timing-dependent outcomes. Exit status: 0 on
// a completed replay, 1 on failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/replay"
	"repro/internal/runctx"
	"repro/internal/server"
)

func main() {
	var (
		base        = flag.String("server", "http://127.0.0.1:8080", "server base URL")
		n           = flag.Int("n", 1000, "total queries to issue")
		rate        = flag.Float64("rate", 500, "target arrival rate in queries/second")
		batch       = flag.Int("batch", 1, "queries per request (1 = single GETs, >1 = POST /v1/batch/*)")
		op          = flag.String("op", "nearest", "operation: nearest | assign | distance")
		mode        = flag.String("mode", server.ModeAuto, "accuracy mode sent with every query")
		target      = flag.String("target", "server", "wire dialect: server | coord (coord counts partial-answer tags)")
		partial     = flag.String("partial", "", "partial=allow|deny parameter, -target coord only (empty = fleet default)")
		scenario    = flag.String("scenario", "", "JSON scenario file; explicitly set flags override its fields")
		seed        = flag.Uint64("seed", 1, "workload and schedule seed")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipf skew exponent (> 1)")
		outstanding = flag.Int("max-outstanding", 64, "open-loop cap on in-flight requests")
		timeoutMS   = flag.Int("timeout-ms", 0, "per-request timeout_ms parameter (0 = server default)")
		out         = flag.String("out", "", "write the report JSON here instead of stdout")
		quiet       = flag.Bool("quiet", false, "suppress progress lines on stderr")
		deadline    = flag.Duration("deadline", 10*time.Minute, "overall deadline for the replay")
	)
	flag.Parse()

	ctx, stop := runctx.WithSignals(*deadline)
	defer stop()

	cfg := replay.Config{
		BaseURL: *base, Queries: *n, Rate: *rate, Batch: *batch,
		Op: *op, Mode: *mode, Target: *target, Partial: *partial,
		ZipfS: *zipfS, MaxOutstanding: *outstanding,
		TimeoutMS: *timeoutMS, Seed: *seed,
	}
	if *scenario != "" {
		sc, err := replay.LoadScenario(*scenario)
		fatal(err)
		// Scenario first, then explicitly set flags back on top — so
		// `-scenario drill.json -rate 900` reuses the drill at a
		// different rate.
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		sc.Apply(&cfg)
		applySetFlags(&cfg, set,
			*n, *rate, *batch, *op, *mode, *target, *partial,
			*zipfS, *outstanding, *timeoutMS, *seed)
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	rep, err := replay.Run(ctx, cfg)
	fatal(err)

	enc, err := json.MarshalIndent(rep, "", "  ")
	fatal(err)
	enc = append(enc, '\n')
	if *out != "" {
		fatal(os.WriteFile(*out, enc, 0o644))
		if !*quiet {
			fmt.Fprintf(os.Stderr, "replay: report written to %s\n", *out)
		}
		return
	}
	os.Stdout.Write(enc)
}

// applySetFlags re-applies the flags the user typed on top of a loaded
// scenario, so explicit flags always win over scenario fields.
func applySetFlags(cfg *replay.Config, set map[string]bool,
	n int, rate float64, batch int, op, mode, target, partial string,
	zipfS float64, outstanding, timeoutMS int, seed uint64) {
	if set["n"] {
		cfg.Queries = n
	}
	if set["rate"] {
		cfg.Rate = rate
	}
	if set["batch"] {
		cfg.Batch = batch
	}
	if set["op"] {
		cfg.Op = op
		cfg.Ops = nil // an explicit single op overrides a scenario mixture
	}
	if set["mode"] {
		cfg.Mode = mode
	}
	if set["target"] {
		cfg.Target = target
	}
	if set["partial"] {
		cfg.Partial = partial
	}
	if set["zipf-s"] {
		cfg.ZipfS = zipfS
	}
	if set["max-outstanding"] {
		cfg.MaxOutstanding = outstanding
	}
	if set["timeout-ms"] {
		cfg.TimeoutMS = timeoutMS
	}
	if set["seed"] {
		cfg.Seed = seed
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tabmine-replay: %v\n", err)
		os.Exit(1)
	}
}
