// Quickstart: estimate Lp distances between subtables with stable
// sketches and compare against exact computation.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tabmine "repro"
)

func main() {
	// A synthetic day of call volumes: 96 stations × 144 ten-minute
	// buckets (see DESIGN.md — this substitutes for the paper's AT&T
	// dataset).
	tb, _, err := tabmine.GenerateCallVolume(tabmine.CallVolumeConfig{
		Stations: 96, Days: 1, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table: %d stations × %d buckets\n", tb.Rows(), tb.Cols())

	// Two 16×64 subtables: stations 0–15 vs stations 48–63, morning hours.
	a := tabmine.Rect{R0: 0, C0: 30, Rows: 16, Cols: 64}
	b := tabmine.Rect{R0: 48, C0: 30, Rows: 16, Cols: 64}

	for _, p := range []float64{0.5, 1, 2} {
		lp := tabmine.MustP(p)
		exact := lp.Dist(tb.Linearize(a, nil), tb.Linearize(b, nil))

		// Sketch size for ±10% accuracy with 99% confidence (Theorem 1).
		k, err := tabmine.KForAccuracy(0.1, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		sk, err := tabmine.NewSketcher(p, k, a.Rows, a.Cols, 7, tabmine.EstimatorAuto)
		if err != nil {
			log.Fatal(err)
		}
		sa := sk.Sketch(tb.Linearize(a, nil), nil)
		sb := sk.Sketch(tb.Linearize(b, nil), nil)
		est := sk.Distance(sa, sb)
		fmt.Printf("p=%.1f  exact %12.2f   sketched %12.2f   (k=%d, ratio %.3f)\n",
			p, exact, est, k, est/exact)
	}

	// The sketch is tiny compared to the tiles it stands for: comparing
	// two 16×64 tiles exactly reads 2×1024 values; comparing sketches
	// reads 2×k values no matter how big the tiles get.
	fmt.Println("\nsketch-on-demand cache (each tile sketched once, reused forever):")
	sk, err := tabmine.NewSketcher(1, 256, 16, 64, 7, tabmine.EstimatorAuto)
	if err != nil {
		log.Fatal(err)
	}
	cache := tabmine.NewCache(tb, sk)
	rects := []tabmine.Rect{a, b, {R0: 32, C0: 30, Rows: 16, Cols: 64}}
	for i := 0; i < len(rects); i++ {
		for j := i + 1; j < len(rects); j++ {
			fmt.Printf("  d(%v, %v) ≈ %.2f\n", rects[i], rects[j], cache.Distance(rects[i], rects[j]))
		}
	}
	hits, misses := cache.Stats()
	fmt.Printf("  cache: %d sketch computations, %d reuses\n", misses, hits)
}
