// Cellular: the paper's motivating scenario — cluster geographic regions
// by their call-volume patterns, comparing exact and sketched k-means,
// and render the clusters as an ASCII map (Figure 5 style).
//
// Run with:
//
//	go run ./examples/cellular
package main

import (
	"fmt"
	"log"
	"time"

	tabmine "repro"
)

func main() {
	// Four stitched days from 1200 stations (zip-ordered on the y-axis).
	days := make([]*tabmine.Table, 4)
	for d := range days {
		var err error
		days[d], _, err = tabmine.GenerateCallVolume(tabmine.CallVolumeConfig{
			Stations: 1200, Days: 1, Seed: uint64(100 + d),
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	tb, err := tabmine.Stitch(days...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stitched table: %d stations × %d buckets (%.1f MB)\n",
		tb.Rows(), tb.Cols(), float64(tb.Size()*8)/1e6)

	// Tiles: one day of data for groups of 75 neighboring stations
	// (the grouping of the paper's Figure 5 case study).
	const tileRows, clusters, p = 75, 12, 1.0
	tileCols := tabmine.BucketsPerDay
	grid, err := tabmine.NewGrid(tb.Rows(), tb.Cols(), tileRows, tileCols)
	if err != nil {
		log.Fatal(err)
	}
	tiles := grid.Tiles(tb)
	fmt.Printf("tiles: %d of %d cells each\n\n", len(tiles), tileRows*tileCols)

	// Exact clustering.
	lp := tabmine.MustP(p)
	t0 := time.Now()
	exact, err := tabmine.KMeans(tiles, lp.Dist, tabmine.KMeansConfig{K: clusters, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	exactTime := time.Since(t0)

	// Sketched clustering: sketch once, cluster in sketch space.
	sk, err := tabmine.NewSketcher(p, 255, tileRows, tileCols, 5, tabmine.EstimatorAuto)
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	points := make([][]float64, len(tiles))
	for i, tile := range tiles {
		points[i] = sk.Sketch(tile, nil)
	}
	prep := time.Since(t0)
	t0 = time.Now()
	sketched, err := tabmine.KMeans(points, sk.Distance, tabmine.KMeansConfig{K: clusters, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	sketchTime := time.Since(t0)

	agree, err := tabmine.Agreement(exact.Assign, sketched.Assign, clusters)
	if err != nil {
		log.Fatal(err)
	}
	exactSpread := tabmine.Spread(tiles, exact.Assign,
		tabmine.CentroidsOf(tiles, exact.Assign, clusters), lp.Dist)
	sketchSpread := tabmine.Spread(tiles, sketched.Assign,
		tabmine.CentroidsOf(tiles, sketched.Assign, clusters), lp.Dist)
	quality, err := tabmine.Quality(exactSpread, sketchSpread)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("exact   k-means: %8v  (%d comparisons over raw %d-cell tiles)\n",
		exactTime, exact.Comparisons, tileRows*tileCols)
	fmt.Printf("sketched k-means: %8v  clustering + %v sketching (k=%d)\n",
		sketchTime, prep, sk.K())
	fmt.Printf("agreement with exact clustering: %.1f%%   quality: %.1f%%\n\n",
		100*agree, 100*quality)

	fmt.Printf("tile counts per cluster (exact):    %v\n", sizes(exact.Assign, clusters))
	fmt.Printf("tile counts per cluster (sketched): %v\n", sizes(sketched.Assign, clusters))
}

func sizes(assign []int, k int) []int {
	out := make([]int, k)
	for _, c := range assign {
		out[c]++
	}
	return out
}
