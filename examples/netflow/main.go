// Netflow: the paper's second motivating scenario — a table of traffic
// volumes indexed by destination IP block (rows) and time (columns), as a
// router would dump it. A dyadic sketch Pool answers "how similar are
// these two (subnet × time-window) regions?" for arbitrary rectangles in
// O(k), which this example uses to find the pair of days with the most
// similar traffic pattern for each subnet block.
//
// Run with:
//
//	go run ./examples/netflow
package main

import (
	"fmt"
	"log"
	"math"

	tabmine "repro"
)

func main() {
	const (
		hosts         = 128
		daysTotal     = 8
		bucketsPerDay = 96
		p             = 1.0 // L1: total traffic discrepancy in bytes
		sketchK       = 128
	)
	tb, err := tabmine.GenerateTraffic(tabmine.TrafficConfig{
		Hosts: hosts, Days: daysTotal, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traffic table: %d hosts × %d buckets (%d days)\n",
		tb.Rows(), tb.Cols(), daysTotal)

	// One pool answers distance queries for ANY rectangle whose extents
	// fall within [2, 2·max dyadic]: block×day windows, block×week
	// windows, sub-blocks, and so on (Theorems 5–6).
	pool, err := tabmine.NewPool(tb, p, sketchK, 9, tabmine.PoolOptions{
		MinLogRows: 2, MaxLogRows: 4, // tile heights 4..16 rows
		MinLogCols: 4, MaxLogCols: 6, // tile widths 16..64 buckets
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool: %d dyadic sizes, k=%d sketch entries\n\n", pool.NumSizes(), sketchK)

	// For each 16-host block: which two days have the most similar
	// traffic? Day windows are 96 buckets wide — not a power of two, so
	// every query below uses compound sketches.
	fmt.Println("most similar pair of days per host block (compound sketches):")
	for block := 0; block < hosts/16; block++ {
		bestA, bestB, bestD := -1, -1, math.Inf(1)
		for d1 := 0; d1 < daysTotal; d1++ {
			for d2 := d1 + 1; d2 < daysTotal; d2++ {
				a := tabmine.Rect{R0: block * 16, C0: d1 * bucketsPerDay, Rows: 16, Cols: bucketsPerDay}
				b := tabmine.Rect{R0: block * 16, C0: d2 * bucketsPerDay, Rows: 16, Cols: bucketsPerDay}
				d, err := pool.Distance(a, b)
				if err != nil {
					log.Fatal(err)
				}
				if d < bestD {
					bestA, bestB, bestD = d1, d2, d
				}
			}
		}
		// Verify the winner against the exact distance.
		a := tabmine.Rect{R0: block * 16, C0: bestA * bucketsPerDay, Rows: 16, Cols: bucketsPerDay}
		b := tabmine.Rect{R0: block * 16, C0: bestB * bucketsPerDay, Rows: 16, Cols: bucketsPerDay}
		exact := tabmine.MustP(p).Dist(tb.Linearize(a, nil), tb.Linearize(b, nil))
		fmt.Printf("  block %2d: days %d and %d  (sketched %.0f, exact %.0f)\n",
			block, bestA, bestB, bestD, exact)
	}

	// Arbitrary-rectangle query: compare the first half-week against the
	// second half-week for the whole address space at once.
	firstHalf := tabmine.Rect{R0: 0, C0: 0, Rows: hosts, Cols: daysTotal / 2 * bucketsPerDay}
	secondHalf := tabmine.Rect{R0: 0, C0: daysTotal / 2 * bucketsPerDay, Rows: hosts, Cols: daysTotal / 2 * bucketsPerDay}
	if err := pool.CanSketch(firstHalf); err != nil {
		fmt.Printf("\nwhole-table window query outside pool's dyadic range (expected): %v\n", err)
	} else {
		d, _ := pool.Distance(firstHalf, secondHalf)
		fmt.Printf("\nfirst vs second half-week distance: %.0f\n", d)
	}
}
