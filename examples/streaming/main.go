// Streaming: maintain Lp sketches of router traffic as updates arrive —
// the paper's tables are "generated at the rate of several terabytes a
// month", so waiting for a complete table before sketching is not always
// an option. A HashSketcher regenerates its randomness from a hash, so
// each stream needs only O(k) state: no random matrices, no stored table.
//
// Two links' (destination × time) traffic streams are sketched on the
// fly; their L1 distance and norms are estimated from 256-entry sketches
// and checked against the exact values (which the demo keeps around only
// for validation).
//
// Run with:
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	tabmine "repro"
)

func main() {
	const (
		destinations = 4096 // flattened (destination, time-bucket) domain
		updates      = 200_000
		sketchK      = 256
		p            = 1.0
	)
	sk, err := tabmine.NewHashSketcher(p, sketchK, destinations, 99, tabmine.EstimatorAuto)
	if err != nil {
		log.Fatal(err)
	}
	linkA := sk.NewStream()
	linkB := sk.NewStream()

	// Ground truth, kept only to validate the estimates below.
	exactA := make([]float64, destinations)
	exactB := make([]float64, destinations)

	rng := rand.New(rand.NewPCG(1, 2))
	lp := tabmine.MustP(p)
	fmt.Printf("sketching two traffic streams, %d updates each, k=%d, domain %d\n\n",
		updates, sketchK, destinations)
	fmt.Printf("%-10s %-14s %-14s %-10s\n", "updates", "est distance", "exact distance", "ratio")
	for step := 1; step <= updates; step++ {
		// Both links see zipf-ish destination popularity; link B has a
		// shifted hot set, so the streams drift apart over time.
		dA := rng.IntN(destinations/4) * 4
		dB := (rng.IntN(destinations/4)*4 + 1024) % destinations
		bytesA := 40 + rng.Float64()*1500
		bytesB := 40 + rng.Float64()*1500
		linkA.Update(dA, bytesA)
		linkB.Update(dB, bytesB)
		exactA[dA] += bytesA
		exactB[dB] += bytesB

		if step%(updates/5) == 0 {
			est := linkA.DistanceTo(linkB)
			exact := lp.Dist(exactA, exactB)
			fmt.Printf("%-10d %-14.0f %-14.0f %-10.3f\n", step, est, exact, est/exact)
		}
	}

	normA := linkA.NormEstimate()
	exactNormA := lp.Norm(exactA)
	fmt.Printf("\nlink A total traffic: estimated %.0f, exact %.0f (ratio %.3f)\n",
		normA, exactNormA, normA/exactNormA)
	fmt.Printf("stream state: 2 sketches × %d float64 = %d bytes (vs %d bytes of exact counters)\n",
		sketchK, 2*sketchK*8, 2*destinations*8)
}
