// Fractionalp: the paper's "p as a slider" result — on data contaminated
// with outliers, clustering with fractional p ∈ (0, 1) recovers the true
// structure that classical L1/L2 distances miss, because small p damps
// each outlier's contribution to the distance.
//
// Run with:
//
//	go run ./examples/fractionalp
package main

import (
	"fmt"
	"log"

	tabmine "repro"
)

func main() {
	// The six-region planted dataset of Section 4.2: horizontal bands
	// covering 1/4, 1/4, 1/4, 1/8, 1/16, 1/16 of the table, uniform
	// values around six distinct means, 1% outliers big enough that one
	// of them dominates a tile-pair L2 distance.
	data, err := tabmine.GenerateSixRegions(tabmine.SixRegionsConfig{
		Rows: 256, Cols: 128, Seed: 3,
		OutlierFrac: 0.01, OutlierMag: 300_000,
	})
	if err != nil {
		log.Fatal(err)
	}
	const tileEdge, clusters = 16, 6
	grid, err := tabmine.NewGrid(256, 128, tileEdge, tileEdge)
	if err != nil {
		log.Fatal(err)
	}
	tiles := grid.Tiles(data.Table)
	fmt.Printf("planted dataset: %d tiles in %d regions (means %.0f..%.0f), 1%% outliers up to %.0f\n\n",
		len(tiles), clusters, data.Means[0], data.Means[5], 300_000.0)

	// Ground truth per tile.
	truth := make([]int, len(tiles))
	for i := range truth {
		r := grid.Rect(i)
		truth[i] = data.RegionOfRow(r.R0)
	}

	fmt.Println("  p     accuracy   (clustering with sketched Lp distances, best of 5 restarts)")
	for _, p := range []float64{0.02, 0.25, 0.5, 1.0, 1.5, 2.0} {
		sk, err := tabmine.NewSketcher(p, 256, tileEdge, tileEdge, 17, tabmine.EstimatorAuto)
		if err != nil {
			log.Fatal(err)
		}
		points := make([][]float64, len(tiles))
		for i, tile := range tiles {
			points[i] = sk.Sketch(tile, nil)
		}
		lp := tabmine.MustP(p)
		bestSpread, bestAcc := -1.0, 0.0
		for restart := 0; restart < 5; restart++ {
			res, err := tabmine.KMeans(points, sk.Distance,
				tabmine.KMeansConfig{K: clusters, Seed: uint64(restart)})
			if err != nil {
				log.Fatal(err)
			}
			// Select by exact spread (the k-means objective), never by
			// looking at the ground truth.
			spread := tabmine.Spread(tiles, res.Assign,
				tabmine.CentroidsOf(tiles, res.Assign, clusters), lp.Dist)
			if bestSpread < 0 || spread < bestSpread {
				acc, err := tabmine.Agreement(truth, res.Assign, clusters)
				if err != nil {
					log.Fatal(err)
				}
				bestSpread, bestAcc = spread, acc
			}
		}
		bar := ""
		for i := 0; i < int(bestAcc*40); i++ {
			bar += "█"
		}
		fmt.Printf("  %-5.2f %6.1f%%   %s\n", p, 100*bestAcc, bar)
	}
	fmt.Println("\nsmall p damps outliers (but p→0 degenerates to Hamming distance);")
	fmt.Println("large p lets single outliers dominate: the sweet spot is fractional.")
}
