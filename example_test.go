package tabmine_test

import (
	"fmt"
	"math"

	tabmine "repro"
)

// A sketch of a tile is a handful of dot products with p-stable random
// matrices; the median of sketch differences estimates the Lp distance.
func ExampleSketcher() {
	// Two 4×4 tiles differing in one corner cell.
	a := make([]float64, 16)
	b := make([]float64, 16)
	b[0] = 10

	sk, _ := tabmine.NewSketcher(1, 501, 4, 4, 7, tabmine.EstimatorAuto)
	est := sk.Distance(sk.Sketch(a, nil), sk.Sketch(b, nil))
	exact := tabmine.MustP(1).Dist(a, b)
	fmt.Printf("exact L1 distance: %v\n", exact)
	fmt.Printf("estimate within 20%%: %v\n", math.Abs(est-exact)/exact < 0.2)
	// Output:
	// exact L1 distance: 10
	// estimate within 20%: true
}

// KForAccuracy sizes sketches from the (ε, δ) guarantee of Theorem 1.
func ExampleKForAccuracy() {
	k, _ := tabmine.KForAccuracy(0.1, 0.01)
	fmt.Println(k)
	// Output:
	// 923
}

// Grids partition tables into the tiles that mining algorithms compare.
func ExampleGrid() {
	g, _ := tabmine.NewGrid(100, 288, 25, 144)
	fmt.Println(g.NumTiles(), "tiles of", g.TileRows(), "stations ×", g.TileCols(), "buckets")
	r := g.Rect(5)
	fmt.Println("tile 5 covers", r.String())
	// Output:
	// 8 tiles of 25 stations × 144 buckets
	// tile 5 covers [50:75,144:288]
}

// Agreement (Definition 10) matches cluster labels optimally before
// scoring, so permuted labelings of the same partition agree fully.
func ExampleAgreement() {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{2, 2, 0, 0, 1, 1} // same partition, shuffled labels
	agree, _ := tabmine.Agreement(a, b, 3)
	fmt.Println(agree)
	// Output:
	// 1
}

// The scaling factor B(p) is exactly 1 at p = 1 (the median of the
// absolute value of a standard Cauchy variable).
func ExampleStableMedianAbs() {
	fmt.Println(tabmine.StableMedianAbs(1))
	// Output:
	// 1
}

// Hamming distance is the p → 0 limit of the Lp power sum.
func ExampleHamming() {
	fmt.Println(tabmine.Hamming([]float64{1, 2, 3}, []float64{1, 5, 3}))
	// Output:
	// 1
}

// Pools answer arbitrary-rectangle queries: exact sketches at dyadic
// sizes, compound sketches elsewhere.
func ExamplePool() {
	tb := tabmine.NewTable(32, 32)
	pool, _ := tabmine.NewPool(tb, 1, 16, 1, tabmine.PoolOptions{
		MinLogRows: 2, MaxLogRows: 3, MinLogCols: 2, MaxLogCols: 3,
	})
	fmt.Println("8x8 exact:", pool.IsExact(tabmine.Rect{Rows: 8, Cols: 8}))
	fmt.Println("11x6 exact:", pool.IsExact(tabmine.Rect{Rows: 11, Cols: 6}))
	fmt.Println("11x6 coverable:", pool.CanSketch(tabmine.Rect{Rows: 11, Cols: 6}) == nil)
	// Output:
	// 8x8 exact: true
	// 11x6 exact: false
	// 11x6 coverable: true
}

// Streams maintain sketches under point updates with no stored matrices.
func ExampleHashSketcher() {
	h, _ := tabmine.NewHashSketcher(2, 301, 1000, 3, tabmine.EstimatorAuto)
	s := h.NewStream()
	s.Update(42, 3)
	s.Update(999, -4)
	// The underlying vector has L2 norm 5.
	fmt.Printf("norm estimate within 20%%: %v\n", math.Abs(s.NormEstimate()-5)/5 < 0.2)
	// Output:
	// norm estimate within 20%: true
}
