// Tests of the replay harness against a real in-process server:
// workload determinism, outcome classification (served / shed /
// degraded), open-loop overflow, and histogram quantile arithmetic.
package replay

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/workload"
)

var (
	snapOnce sync.Once
	snapVal  *server.Snapshot
	snapErr  error
)

// snap builds a small shared snapshot: 32x32 table, 8x8 tiles, 2
// clusters.
func snap(t *testing.T) *server.Snapshot {
	t.Helper()
	snapOnce.Do(func() {
		tb := workload.Random(32, 32, 10, 3)
		pool, err := core.NewPool(tb, 1, 16, 5, core.PoolOptions{
			MinLogRows: 3, MaxLogRows: 3, MinLogCols: 3, MaxLogCols: 3,
		})
		if err != nil {
			snapErr = err
			return
		}
		snapVal, snapErr = server.BuildSnapshot(context.Background(), tb, pool, server.SnapshotConfig{
			TileRows: 8, TileCols: 8, Clusters: 2, Seed: 5,
		})
	})
	if snapErr != nil {
		t.Fatalf("snapshot: %v", snapErr)
	}
	return snapVal
}

func serve(t *testing.T, cfg server.Config) *httptest.Server {
	t.Helper()
	s, err := server.New(snap(t), cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestWorkloadDeterministic: the same seed yields the identical
// request stream; a different seed does not.
func TestWorkloadDeterministic(t *testing.T) {
	g := &geometry{gridRows: 4, gridCols: 4, tileRows: 8, tileCols: 8, tiles: 16}
	mk := func(seed uint64, batch int) []request {
		cfg := Config{BaseURL: "http://x", Queries: 40, Batch: batch, Seed: seed}
		if err := cfg.setDefaults(); err != nil {
			t.Fatal(err)
		}
		return buildWorkload(&cfg, g)
	}
	same1, same2 := mk(7, 1), mk(7, 1)
	if len(same1) != 40 {
		t.Fatalf("got %d requests, want 40", len(same1))
	}
	for i := range same1 {
		if same1[i].target != same2[i].target {
			t.Fatalf("request %d differs under one seed: %q vs %q", i, same1[i].target, same2[i].target)
		}
	}
	diff := mk(8, 1)
	equal := 0
	for i := range same1 {
		if same1[i].target == diff[i].target {
			equal++
		}
	}
	if equal == len(same1) {
		t.Error("seed change left the workload identical")
	}

	b1, b2 := mk(7, 16), mk(7, 16)
	if len(b1) != 3 { // 16+16+8
		t.Fatalf("got %d batch requests, want 3", len(b1))
	}
	if b1[2].n != 8 {
		t.Errorf("tail batch carries %d queries, want 8", b1[2].n)
	}
	for i := range b1 {
		if string(b1[i].body) != string(b2[i].body) {
			t.Fatalf("batch body %d differs under one seed", i)
		}
	}
}

// TestReplayServes runs a real replay against an unloaded server:
// every query must be served, none shed, and the report coherent.
func TestReplayServes(t *testing.T) {
	ts := serve(t, server.Config{})
	for _, batch := range []int{1, 8} {
		rep, err := Run(context.Background(), Config{
			BaseURL: ts.URL, Queries: 60, Rate: 5000, Batch: batch,
			Op: "nearest", Mode: server.ModeSketch, Seed: 11,
		})
		if err != nil {
			t.Fatalf("batch=%d: %v", batch, err)
		}
		if rep.Served != 60 || rep.Shed != 0 || rep.Errors != 0 || rep.Overflow != 0 {
			t.Errorf("batch=%d: %+v", batch, rep)
		}
		wantReqs := int64((60 + batch - 1) / batch)
		if rep.Requests != wantReqs {
			t.Errorf("batch=%d: %d requests, want %d", batch, rep.Requests, wantReqs)
		}
		if rep.RequestLatency.P50 <= 0 || rep.RequestLatency.P99 < rep.RequestLatency.P50 {
			t.Errorf("batch=%d: implausible latency %+v", batch, rep.RequestLatency)
		}
		var total int64
		for _, b := range rep.Histogram {
			total += b.Count
		}
		if total != wantReqs {
			t.Errorf("batch=%d: histogram holds %d observations, want %d", batch, total, wantReqs)
		}
	}
}

// TestReplayClassifiesShed: a server that always sheds yields shed
// counts and a shed rate of 1.
func TestReplayClassifiesShed(t *testing.T) {
	mux := http.NewServeMux()
	real := serve(t, server.Config{})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		resp, err := http.Get(real.URL + "/healthz")
		if err != nil {
			w.WriteHeader(500)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(200)
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		w.Write(buf[:n])
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"saturated"}`, http.StatusServiceUnavailable)
	})
	shedTS := httptest.NewServer(mux)
	defer shedTS.Close()

	rep, err := Run(context.Background(), Config{
		BaseURL: shedTS.URL, Queries: 30, Rate: 10000, Batch: 10, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed != 30 || rep.Served != 0 {
		t.Errorf("shed %d served %d, want 30 / 0", rep.Shed, rep.Served)
	}
	if rep.ShedRate != 1 {
		t.Errorf("shed rate %v, want 1", rep.ShedRate)
	}
}

// TestReplayCountsDegraded: mode=auto against a tiny saturated server
// must report degraded answers through the per-item tags.
func TestReplayCountsDegraded(t *testing.T) {
	// DegradeAt is tiny, so any concurrent occupancy degrades the rest.
	ts := serve(t, server.Config{MaxInflight: 1, MaxQueue: 64, DegradeAt: 0.01})
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Queries: 40, Rate: 100000, Batch: 8,
		Op: "nearest", Mode: server.ModeAuto, Seed: 4, MaxOutstanding: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	// An 8-item batch alone puts occupancy at 8/65 > 1%: every admitted
	// item after the first batch item degrades.
	if rep.Served == 0 {
		t.Fatalf("nothing served: %+v", rep)
	}
	if rep.Degraded == 0 {
		t.Errorf("no degraded answers under saturation: %+v", rep)
	}
	if rep.DegradedRate <= 0 || rep.DegradedRate > 1 {
		t.Errorf("degraded rate %v out of range", rep.DegradedRate)
	}
}

// TestHistogramQuantiles pins the bucket arithmetic.
func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	for i := 0; i < 90; i++ {
		h.record(60 * time.Microsecond) // bucket [50µs, 100µs)
	}
	for i := 0; i < 10; i++ {
		h.record(90 * time.Millisecond)
	}
	if got := h.quantile(0.50); got != 100*time.Microsecond {
		t.Errorf("p50 %v, want 100µs", got)
	}
	if got := h.quantile(0.99); got < 90*time.Millisecond || got > 256*time.Millisecond {
		t.Errorf("p99 %v, want a bucket covering 90ms", got)
	}
	if math.Abs(float64(h.maxNS.Load())-float64(90*time.Millisecond)) > 1 {
		t.Errorf("max %vns, want 90ms", h.maxNS.Load())
	}
	bs := h.buckets()
	var total int64
	for _, b := range bs {
		total += b.Count
	}
	if total != 100 {
		t.Errorf("buckets hold %d, want 100", total)
	}
	var empty histogram
	if got := empty.quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 %v, want 0", got)
	}
	_ = table.Rect{} // keep the geometry import set honest
}
