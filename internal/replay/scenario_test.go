// Scenario files pin a drill's traffic shape; these tests pin the
// loader's contract: the checked-in coordinator scenario parses, typos
// are loud errors, Apply only overwrites fields the scenario sets, and
// a mixed-op workload is deterministic with every op represented.
package replay

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadScenarioMixedCoord(t *testing.T) {
	sc, err := LoadScenario(filepath.Join("testdata", "mixed-coord.json"))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Target != "coord" || sc.Partial != "allow" || sc.Mode != "sketch" {
		t.Errorf("scenario wiring: %+v", sc)
	}
	if len(sc.Ops) != 3 {
		t.Fatalf("want 3 ops in the mixture, got %v", sc.Ops)
	}
	for _, ow := range sc.Ops {
		if err := checkOp(ow.Op); err != nil {
			t.Errorf("scenario carries %v", err)
		}
		if ow.Weight <= 0 {
			t.Errorf("op %s has non-positive weight %v", ow.Op, ow.Weight)
		}
	}

	// The checked-in scenario must survive setDefaults — a drill that
	// fails validation at startup is a broken artifact.
	cfg := Config{BaseURL: "http://example.invalid"}
	sc.Apply(&cfg)
	if err := cfg.setDefaults(); err != nil {
		t.Errorf("scenario does not validate: %v", err)
	}
	if cfg.Queries != sc.Queries || cfg.Seed != sc.Seed || cfg.Target != "coord" {
		t.Errorf("Apply dropped fields: %+v", cfg)
	}
}

func TestLoadScenarioRejectsUnknownFields(t *testing.T) {
	path := filepath.Join(t.TempDir(), "typo.json")
	if err := os.WriteFile(path, []byte(`{"queries": 10, "rate_pqs": 100}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadScenario(path); err == nil || !strings.Contains(err.Error(), "rate_pqs") {
		t.Errorf("typoed field not rejected: %v", err)
	}
}

func TestScenarioApplyPreservesUnsetFields(t *testing.T) {
	cfg := Config{BaseURL: "http://example.invalid", Queries: 50, Rate: 123, Seed: 9, Op: "assign"}
	sc := &Scenario{Rate: 250, Mode: "exact"}
	sc.Apply(&cfg)
	if cfg.Rate != 250 || cfg.Mode != "exact" {
		t.Errorf("set fields not applied: %+v", cfg)
	}
	if cfg.Queries != 50 || cfg.Seed != 9 || cfg.Op != "assign" || cfg.BaseURL != "http://example.invalid" {
		t.Errorf("unset scenario fields clobbered cfg: %+v", cfg)
	}
}

// TestMixedWorkloadDeterministic builds the same mixed-op stream twice
// and checks (a) identical output, (b) every op in the mixture actually
// appears, (c) the tile stream is unchanged by the mixture — the
// op draw must come from its own PCG stream.
func TestMixedWorkloadDeterministic(t *testing.T) {
	g := &geometry{gridRows: 4, gridCols: 4, tileRows: 8, tileCols: 8, tiles: 16}
	mk := func(ops []OpWeight) []request {
		cfg := Config{
			BaseURL: "http://example.invalid", Queries: 200, Rate: 100, Batch: 1,
			Op: "nearest", Ops: ops, Mode: "sketch", ZipfS: 1.2,
			MaxOutstanding: 8, Seed: 7,
		}
		if err := cfg.setDefaults(); err != nil {
			t.Fatal(err)
		}
		return buildWorkload(&cfg, g)
	}
	mix := []OpWeight{{Op: "nearest", Weight: 3}, {Op: "distance", Weight: 2}, {Op: "assign", Weight: 1}}

	a, b := mk(mix), mk(mix)
	if len(a) != 200 || len(b) != 200 {
		t.Fatalf("want 200 requests, got %d and %d", len(a), len(b))
	}
	seen := map[string]int{}
	for i := range a {
		if a[i].target != b[i].target {
			t.Fatalf("request %d differs across identical builds:\n  %s\n  %s", i, a[i].target, b[i].target)
		}
		op := strings.TrimPrefix(a[i].target, "/v1/")
		seen[op[:strings.IndexAny(op, "?")]]++
	}
	for _, ow := range mix {
		if seen[ow.Op] == 0 {
			t.Errorf("op %s never drawn in 200 requests: %v", ow.Op, seen)
		}
	}
	if seen["nearest"] <= seen["assign"] {
		t.Errorf("weights ignored: %v", seen)
	}

	// Same seed, no mixture: the op draw must come from its own PCG
	// stream, so the underlying TILE stream is shared. A distance
	// request consumes two tile draws where nearest consumes one, so the
	// runs align on the flattened draw sequence, not request-for-request.
	plain, mixed := rectSeq(t, mk(nil)), rectSeq(t, a)
	for i := 0; i < min(len(plain), len(mixed)); i++ {
		if plain[i] != mixed[i] {
			t.Fatalf("tile draw %d: mixture perturbed the tile stream: %s vs %s",
				i, plain[i], mixed[i])
		}
	}
}

// rectSeq flattens a workload into its ordered sequence of tile draws
// (the q, a, b rect parameters), normalizing away op-dependent key
// names.
func rectSeq(t *testing.T, reqs []request) []string {
	t.Helper()
	var rects []string
	for _, rq := range reqs {
		q := rq.target[strings.IndexAny(rq.target, "?")+1:]
		for _, kv := range strings.Split(q, "&") {
			if strings.HasPrefix(kv, "q=") || strings.HasPrefix(kv, "a=") || strings.HasPrefix(kv, "b=") {
				rects = append(rects, kv[2:])
			}
		}
	}
	if len(rects) == 0 {
		t.Fatal("no rect params in workload")
	}
	return rects
}
