package replay

import (
	"math"
	"sync/atomic"
	"time"
)

// Log-bucketed latency histogram: bucket i covers
// [histBase·2^i, histBase·2^(i+1)), starting at 50µs — fine enough to
// separate a sketch-tier hit from an exact scan, coarse enough that
// recording is one atomic add on the hot path.

const (
	histBase    = 50 * time.Microsecond
	histBuckets = 28 // last bucket reaches ~1.9h; overflow clamps there
)

type histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	maxNS  atomic.Int64
}

func (h *histogram) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	if d >= histBase {
		i = int(math.Log2(float64(d) / float64(histBase)))
		if i >= histBuckets {
			i = histBuckets - 1
		}
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		cur := h.maxNS.Load()
		if int64(d) <= cur || h.maxNS.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// quantile returns the upper bound of the bucket holding the q-th
// ranked observation (q in [0,1]) — a deterministic, conservative
// estimate (true latency ≤ the reported value, within one bucket).
func (h *histogram) quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			return histBase << uint(i+1)
		}
	}
	return histBase << histBuckets
}

// Bucket is one non-empty histogram bucket in the JSON report.
type Bucket struct {
	UpToMS float64 `json:"up_to_ms"` // upper latency bound of the bucket
	Count  int64   `json:"count"`
}

func (h *histogram) buckets() []Bucket {
	var out []Bucket
	for i := 0; i < histBuckets; i++ {
		if n := h.counts[i].Load(); n > 0 {
			up := histBase << uint(i+1)
			out = append(out, Bucket{UpToMS: float64(up) / float64(time.Millisecond), Count: n})
		}
	}
	return out
}
