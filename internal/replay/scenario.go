package replay

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Scenario is a reusable workload description loaded from a JSON file,
// so chaos drills and CI jobs pin their traffic shape in a reviewable
// artifact instead of a shell line of flags. Zero-valued fields leave
// the Config they are applied to untouched, which lets callers override
// single knobs (rate, seed) on top of a shared scenario.
type Scenario struct {
	Queries        int        `json:"queries"`
	Rate           float64    `json:"rate_qps"`
	Batch          int        `json:"batch"`
	Op             string     `json:"op"`
	Ops            []OpWeight `json:"ops"`
	Mode           string     `json:"mode"`
	Target         string     `json:"target"`
	Partial        string     `json:"partial"`
	ZipfS          float64    `json:"zipf_s"`
	MaxOutstanding int        `json:"max_outstanding"`
	TimeoutMS      int        `json:"timeout_ms"`
	Seed           uint64     `json:"seed"`
}

// LoadScenario reads and decodes one scenario file. Unknown fields are
// errors: a typoed knob that silently does nothing would invalidate the
// drill that depends on it.
func LoadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("replay: scenario: %w", err)
	}
	var sc Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("replay: scenario %s: %w", path, err)
	}
	return &sc, nil
}

// Apply copies the scenario's set fields onto cfg, leaving cfg's values
// in place for fields the scenario omits.
func (sc *Scenario) Apply(cfg *Config) {
	if sc.Queries > 0 {
		cfg.Queries = sc.Queries
	}
	if sc.Rate > 0 {
		cfg.Rate = sc.Rate
	}
	if sc.Batch > 0 {
		cfg.Batch = sc.Batch
	}
	if sc.Op != "" {
		cfg.Op = sc.Op
	}
	if len(sc.Ops) > 0 {
		cfg.Ops = sc.Ops
	}
	if sc.Mode != "" {
		cfg.Mode = sc.Mode
	}
	if sc.Target != "" {
		cfg.Target = sc.Target
	}
	if sc.Partial != "" {
		cfg.Partial = sc.Partial
	}
	if sc.ZipfS > 0 {
		cfg.ZipfS = sc.ZipfS
	}
	if sc.MaxOutstanding > 0 {
		cfg.MaxOutstanding = sc.MaxOutstanding
	}
	if sc.TimeoutMS > 0 {
		cfg.TimeoutMS = sc.TimeoutMS
	}
	if sc.Seed != 0 {
		cfg.Seed = sc.Seed
	}
}
