// Epoch tracking: a coordinator stamps every answer with its shard-map
// epoch, and the report counts the distinct epochs a run observed —
// the handoff drill's proof that a cutover happened under load.
package replay

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/server"
)

// TestReplayCountsEpochChanges replays against a scripted coordinator
// whose epoch stamp advances mid-run (with a stretch of absent headers,
// like a plain server): the report must record min, max, and the
// number of changes, counting absent stamps as nothing at all.
func TestReplayCountsEpochChanges(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			json.NewEncoder(w).Encode(server.Health{ //nolint:errcheck
				Status: "ok", Rows: 32, Cols: 32, TileRows: 8, TileCols: 8, Tiles: 16,
			})
			return
		}
		// Epoch script: 3 for a while, then a stretch with no stamp,
		// then 4, then 5 — two real changes.
		var epoch int64
		switch k := n.Add(1); {
		case k <= 10:
			epoch = 3
		case k <= 20:
			epoch = 0 // absent
		case k <= 30:
			epoch = 4
		default:
			epoch = 5
		}
		if epoch > 0 {
			w.Header().Set("X-Tabmine-Epoch", strconv.FormatInt(epoch, 10))
		}
		json.NewEncoder(w).Encode(server.NearestResult{Tile: 1, Distance: 1}) //nolint:errcheck
	}))
	defer ts.Close()

	// Distinct-epoch counting needs no ordering, only that all 40
	// queries are issued: the rate is modest so the open loop never
	// drops an arrival against the instant fake handler.
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Target: "coord", Queries: 40, Rate: 5000, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Served != 40 {
		t.Fatalf("served %d/40 (report %+v)", rep.Served, rep)
	}
	if rep.EpochMin != 3 || rep.EpochMax != 5 || rep.EpochChanges != 2 {
		t.Errorf("epochs %d..%d with %d changes, want 3..5 with 2", rep.EpochMin, rep.EpochMax, rep.EpochChanges)
	}
}

// TestReplayNoEpochsAgainstPlainServer: a target that never stamps
// answers yields zeroed epoch fields, not a spurious 0-epoch.
func TestReplayNoEpochsAgainstPlainServer(t *testing.T) {
	ts := serve(t, server.Config{})
	rep, err := Run(context.Background(), Config{
		BaseURL: ts.URL, Queries: 10, Rate: 20000, Seed: 3,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.EpochMin != 0 || rep.EpochMax != 0 || rep.EpochChanges != 0 {
		t.Errorf("plain server produced epoch fields: %d..%d (%d changes)",
			rep.EpochMin, rep.EpochMax, rep.EpochChanges)
	}
}
