// Package replay is the workload-replay latency harness: it drives a
// live tabmine-serve instance with a zipf-skewed, open-loop query
// stream and measures what the serving policy actually does under that
// load — shed rate, degraded-tier rate, and the latency distribution.
//
// Open loop means arrivals follow a deterministic seeded Poisson
// schedule that does NOT slow down when the server does; queries that
// would exceed the in-flight cap are dropped and counted (overflow)
// instead of silently converting the harness into a closed loop. The
// HTTP client never retries: a shed is a measurement, not an error to
// paper over.
//
// The workload is reproducible end to end: tile popularity (zipf
// rank → grid tile), arrival times, and batch composition all derive
// from Config.Seed. Server answers are deterministic functions of
// (snapshot, query), so two replays against the same snapshot differ
// only in timing-dependent outcomes (shed / degraded / latency) —
// which is exactly the signal the harness exists to measure.
package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/table"
)

// Config tunes one replay run.
type Config struct {
	// BaseURL locates the server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Queries is the total number of queries to issue (default 1000).
	// With Batch > 1 the queries are grouped into ⌈Queries/Batch⌉
	// requests.
	Queries int
	// Rate is the target arrival rate in queries/second (default 500).
	// Inter-arrival times are exponential (Poisson arrivals).
	Rate float64
	// Batch groups queries into POST /v1/batch/* requests of this size;
	// 0 or 1 issues single GETs.
	Batch int
	// Op is the query type: "nearest" (default), "assign", "distance".
	Op string
	// Ops, when non-empty, replaces Op with a weighted mixed-operation
	// workload: every request draws its op from this mixture using a
	// dedicated PCG stream, so adding or removing an op from the mix
	// never perturbs the tile popularity or arrival streams.
	Ops []OpWeight
	// Mode is the accuracy mode sent with every query (default auto).
	Mode string
	// Target is the wire dialect: "server" (default) or "coord". A
	// coordinator target accepts the Partial knob and its answers carry
	// partial-coverage tags, which the report counts.
	Target string
	// Partial is the per-request partial=allow|deny parameter (coord
	// target only; "" omits it, leaving the fleet default in charge).
	Partial string
	// ZipfS is the zipf skew exponent s > 1 (default 1.2); higher
	// concentrates traffic on fewer tiles.
	ZipfS float64
	// MaxOutstanding caps concurrently in-flight requests (default 64).
	// Arrivals past the cap are dropped and counted as overflow.
	MaxOutstanding int
	// TimeoutMS is the per-request timeout_ms parameter (0 = server
	// default).
	TimeoutMS int
	// Seed makes the schedule and workload deterministic (0 means 1).
	Seed uint64
	// HTTP is the transport; nil builds a non-retrying http.Client.
	HTTP *http.Client
	// Logf receives progress lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c *Config) setDefaults() error {
	if c.BaseURL == "" {
		return fmt.Errorf("replay: BaseURL required")
	}
	if c.Queries <= 0 {
		c.Queries = 1000
	}
	if c.Rate <= 0 {
		c.Rate = 500
	}
	if c.Batch <= 0 {
		c.Batch = 1
	}
	if c.Op == "" {
		c.Op = "nearest"
	}
	if err := checkOp(c.Op); err != nil {
		return err
	}
	for _, ow := range c.Ops {
		if err := checkOp(ow.Op); err != nil {
			return err
		}
		if ow.Weight <= 0 {
			return fmt.Errorf("replay: op %q weight %v must be positive", ow.Op, ow.Weight)
		}
	}
	switch c.Target {
	case "":
		c.Target = "server"
	case "server", "coord":
	default:
		return fmt.Errorf("replay: unknown target %q (want server or coord)", c.Target)
	}
	switch c.Partial {
	case "":
	case "allow", "deny":
		if c.Target != "coord" {
			return fmt.Errorf("replay: partial=%s needs -target coord (a plain server has no partial knob)", c.Partial)
		}
	default:
		return fmt.Errorf("replay: bad partial %q (want allow or deny)", c.Partial)
	}
	if c.Mode == "" {
		c.Mode = server.ModeAuto
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 64
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// OpWeight is one component of a mixed-operation workload.
type OpWeight struct {
	Op     string  `json:"op"`
	Weight float64 `json:"weight"`
}

func checkOp(op string) error {
	switch op {
	case "nearest", "assign", "distance":
		return nil
	}
	return fmt.Errorf("replay: unknown op %q", op)
}

// Percentiles are conservative bucket-upper-bound latency quantiles in
// milliseconds.
type Percentiles struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// Report is the JSON result of one replay run.
type Report struct {
	Op         string     `json:"op"` // "mixed" under an Ops mixture
	Ops        []OpWeight `json:"ops,omitempty"`
	Target     string     `json:"target"`
	Mode       string     `json:"mode"`
	Batch      int        `json:"batch"`
	TargetRate float64    `json:"target_rate_qps"`
	Seed       uint64     `json:"seed"`
	Tiles      int        `json:"tiles"` // distinct tiles in the popularity law
	Queries    int        `json:"queries"`
	Requests   int64      `json:"requests"`  // HTTP requests issued
	Served     int64      `json:"served"`    // queries answered 2xx
	Shed       int64      `json:"shed"`      // queries shed with 503
	TimedOut   int64      `json:"timed_out"` // queries failing with 504
	Errors     int64      `json:"errors"`    // other failures (per-item or transport)
	Overflow   int64      `json:"overflow"`  // queries dropped at the open-loop cap
	Degraded   int64      `json:"degraded"`  // served queries answered on a degraded tier
	Partial    int64      `json:"partial"`   // served queries tagged with missing shard coverage (coord target)
	// Epoch tracking (coord target): the coordinator stamps every answer
	// with its shard-map epoch (X-Tabmine-Epoch). EpochChanges counts
	// distinct epochs observed minus one, so a handoff drill can assert
	// the cutover actually happened under this run's load.
	EpochMin       int64       `json:"epoch_min,omitempty"`
	EpochMax       int64       `json:"epoch_max,omitempty"`
	EpochChanges   int         `json:"epoch_changes"`
	ElapsedSec     float64     `json:"elapsed_sec"`
	AchievedRate   float64     `json:"achieved_rate_qps"` // (served+shed+timed_out+errors)/elapsed
	ShedRate       float64     `json:"shed_rate"`         // shed / issued
	DegradedRate   float64     `json:"degraded_rate"`     // degraded / served
	RequestLatency Percentiles `json:"request_latency"`
	Histogram      []Bucket    `json:"histogram"`
}

// Run replays one workload against cfg.BaseURL and reports what the
// server did with it.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	geom, err := discover(ctx, &cfg)
	if err != nil {
		return nil, err
	}
	reqs := buildWorkload(&cfg, geom)
	cfg.Logf("replay: %d queries in %d requests against %d tiles (zipf s=%v, %.0f qps)",
		cfg.Queries, len(reqs), geom.tiles, cfg.ZipfS, cfg.Rate)

	var (
		hist     histogram
		served   atomic.Int64
		shed     atomic.Int64
		timedOut atomic.Int64
		errs     atomic.Int64
		overflow atomic.Int64
		degraded atomic.Int64
		partial  atomic.Int64
		requests atomic.Int64
		wg       sync.WaitGroup
	)
	sem := make(chan struct{}, cfg.MaxOutstanding)
	// Epoch observations (coord target): distinct X-Tabmine-Epoch values
	// seen across the run, for the handoff-drill assertion that a
	// cutover happened mid-traffic.
	var (
		epochMu   sync.Mutex
		epochSeen = map[int64]bool{}
		epochMin  int64
		epochMax  int64
	)
	recordEpoch := func(e int64) {
		if e == 0 {
			return // absent header; real epochs start at 1
		}
		epochMu.Lock()
		if len(epochSeen) == 0 || e < epochMin {
			epochMin = e
		}
		if e > epochMax {
			epochMax = e
		}
		epochSeen[e] = true
		epochMu.Unlock()
	}
	arrival := rand.New(rand.NewPCG(cfg.Seed, 0x6172726976616c)) // arrival schedule stream
	start := time.Now()
	elapsed := 0.0 // scheduled seconds since start

	for _, rq := range reqs {
		// Poisson arrivals: exponential inter-arrival per REQUEST so the
		// per-query rate holds regardless of batching.
		elapsed += arrival.ExpFloat64() / (cfg.Rate / float64(rq.n))
		if d := time.Until(start.Add(time.Duration(elapsed * float64(time.Second)))); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		select {
		case sem <- struct{}{}:
		default:
			overflow.Add(int64(rq.n)) // open loop: drop, never queue
			continue
		}
		wg.Add(1)
		requests.Add(1)
		go func(rq request) {
			defer func() { <-sem; wg.Done() }()
			t0 := time.Now()
			out := rq.issue(ctx, &cfg)
			hist.record(time.Since(t0))
			served.Add(out.served)
			shed.Add(out.shed)
			timedOut.Add(out.timedOut)
			errs.Add(out.errs)
			degraded.Add(out.degraded)
			partial.Add(out.partial)
			recordEpoch(out.epoch)
		}(rq)
	}
	wg.Wait()
	wall := time.Since(start).Seconds()

	issued := served.Load() + shed.Load() + timedOut.Load() + errs.Load()
	op := cfg.Op
	if len(cfg.Ops) > 0 {
		op = "mixed"
	}
	rep := &Report{
		Op: op, Ops: cfg.Ops, Target: cfg.Target,
		Mode: cfg.Mode, Batch: cfg.Batch, TargetRate: cfg.Rate,
		Seed: cfg.Seed, Tiles: geom.tiles, Queries: cfg.Queries,
		Requests: requests.Load(),
		Served:   served.Load(), Shed: shed.Load(), TimedOut: timedOut.Load(),
		Errors: errs.Load(), Overflow: overflow.Load(), Degraded: degraded.Load(),
		Partial:    partial.Load(),
		ElapsedSec: wall,
		RequestLatency: Percentiles{
			P50: ms(hist.quantile(0.50)), P90: ms(hist.quantile(0.90)),
			P95: ms(hist.quantile(0.95)), P99: ms(hist.quantile(0.99)),
			Max: float64(hist.maxNS.Load()) / float64(time.Millisecond),
		},
		Histogram: hist.buckets(),
	}
	if n := len(epochSeen); n > 0 {
		rep.EpochMin, rep.EpochMax = epochMin, epochMax
		rep.EpochChanges = n - 1
	}
	if wall > 0 {
		rep.AchievedRate = float64(issued) / wall
	}
	if issued > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(issued)
	}
	if rep.Served > 0 {
		rep.DegradedRate = float64(rep.Degraded) / float64(rep.Served)
	}
	return rep, nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// geometry is the query shape discovered from /healthz.
type geometry struct {
	gridRows, gridCols int // tiles per axis
	tileRows, tileCols int
	tiles              int
}

func discover(ctx context.Context, cfg *Config) (*geometry, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := cfg.HTTP.Do(req)
	if err != nil {
		return nil, fmt.Errorf("replay: healthz: %w", err)
	}
	defer resp.Body.Close()
	var h server.Health
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&h); err != nil {
		return nil, fmt.Errorf("replay: healthz: %w", err)
	}
	if h.TileRows <= 0 || h.TileCols <= 0 || h.Tiles <= 0 {
		return nil, fmt.Errorf("replay: server reports no tile grid (tiles=%d, tile=%dx%d)",
			h.Tiles, h.TileRows, h.TileCols)
	}
	return &geometry{
		gridRows: h.Rows / h.TileRows, gridCols: h.Cols / h.TileCols,
		tileRows: h.TileRows, tileCols: h.TileCols,
		tiles: h.Tiles,
	}, nil
}

// request is one scheduled HTTP request carrying n queries: a GET of
// target when body is nil, a POST of body to target otherwise.
type request struct {
	n      int
	body   []byte
	target string
}

type outcome struct {
	served, shed, timedOut, errs, degraded, partial int64
	epoch                                           int64 // X-Tabmine-Epoch (0 = absent)
}

// buildWorkload materializes the deterministic query stream: zipf
// ranks map to grid tiles through a seeded shuffle, so popularity is
// skewed but not grid-corner-biased.
func buildWorkload(cfg *Config, g *geometry) []request {
	wl := rand.New(rand.NewPCG(cfg.Seed, 0x776f726b6c6f6164)) // workload stream
	zipf := rand.NewZipf(wl, cfg.ZipfS, 1, uint64(g.tiles-1))
	perm := wl.Perm(g.tiles)
	tileRect := func() string {
		t := perm[int(zipf.Uint64())]
		r := table.Rect{
			R0: (t / g.gridCols) * g.tileRows, C0: (t % g.gridCols) * g.tileCols,
			Rows: g.tileRows, Cols: g.tileCols,
		}
		return server.FormatRect(r)
	}

	// Mixed workloads draw the op per REQUEST (a batch is homogeneous —
	// batch endpoints are per-op) from their own stream, so the tile and
	// arrival streams replay identically with or without the mixture.
	drawOp := func() string { return cfg.Op }
	if len(cfg.Ops) > 0 {
		mix := rand.New(rand.NewPCG(cfg.Seed, 0x6f702d6d6978))
		var total float64
		for _, ow := range cfg.Ops {
			total += ow.Weight
		}
		drawOp = func() string {
			x := mix.Float64() * total
			for _, ow := range cfg.Ops {
				if x -= ow.Weight; x < 0 {
					return ow.Op
				}
			}
			return cfg.Ops[len(cfg.Ops)-1].Op
		}
	}

	suffix := "&mode=" + cfg.Mode
	if cfg.TimeoutMS > 0 {
		suffix += fmt.Sprintf("&timeout_ms=%d", cfg.TimeoutMS)
	}
	if cfg.Partial != "" {
		suffix += "&partial=" + cfg.Partial
	}
	var reqs []request
	for issued := 0; issued < cfg.Queries; {
		n := min(cfg.Batch, cfg.Queries-issued)
		issued += n
		op := drawOp()
		if cfg.Batch == 1 {
			var path string
			if op == "distance" {
				path = "/v1/distance?a=" + tileRect() + "&b=" + tileRect() + suffix
			} else {
				path = "/v1/" + op + "?q=" + tileRect() + suffix
			}
			reqs = append(reqs, request{n: 1, target: path})
			continue
		}
		br := server.BatchRequest{Mode: cfg.Mode, TimeoutMS: cfg.TimeoutMS,
			Items: make([]server.BatchItem, n)}
		for i := range br.Items {
			if op == "distance" {
				br.Items[i] = server.BatchItem{A: tileRect(), B: tileRect()}
			} else {
				br.Items[i] = server.BatchItem{Q: tileRect()}
			}
		}
		body, _ := json.Marshal(&br)
		target := "/v1/batch/" + op
		if cfg.Partial != "" {
			target += "?partial=" + cfg.Partial
		}
		reqs = append(reqs, request{n: n, body: body, target: target})
	}
	return reqs
}

// issue performs the request without retries and classifies the
// outcome of each query it carried.
func (rq request) issue(ctx context.Context, cfg *Config) outcome {
	var (
		hreq *http.Request
		err  error
	)
	if rq.body == nil {
		hreq, err = http.NewRequestWithContext(ctx, http.MethodGet, cfg.BaseURL+rq.target, nil)
	} else {
		hreq, err = http.NewRequestWithContext(ctx, http.MethodPost, cfg.BaseURL+rq.target, bytes.NewReader(rq.body))
		if hreq != nil {
			hreq.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return outcome{errs: int64(rq.n)}
	}
	resp, err := cfg.HTTP.Do(hreq)
	if err != nil {
		return outcome{errs: int64(rq.n)}
	}
	defer resp.Body.Close()
	// A coordinator stamps every answer — success or error — with its
	// shard-map epoch; absent (plain server target) parses to 0.
	var epoch int64
	if h := resp.Header.Get("X-Tabmine-Epoch"); h != "" {
		epoch, _ = strconv.ParseInt(h, 10, 64)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return outcome{errs: int64(rq.n), epoch: epoch}
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusServiceUnavailable:
		return outcome{shed: int64(rq.n), epoch: epoch}
	case http.StatusGatewayTimeout:
		return outcome{timedOut: int64(rq.n), epoch: epoch}
	default:
		return outcome{errs: int64(rq.n), epoch: epoch}
	}
	if rq.body != nil {
		var br server.BatchResponse
		if err := json.Unmarshal(body, &br); err != nil {
			return outcome{errs: int64(rq.n), epoch: epoch}
		}
		out := outcome{
			served: int64(br.Served), errs: int64(br.Failed), degraded: int64(br.Degraded),
			epoch: epoch,
		}
		for _, item := range br.Items {
			var tag struct {
				Partial bool `json:"partial"`
			}
			if json.Unmarshal(item, &tag) == nil && tag.Partial {
				out.partial++
			}
		}
		return out
	}
	var tag struct {
		Degraded bool `json:"degraded"`
		Partial  bool `json:"partial"`
	}
	out := outcome{served: 1, epoch: epoch}
	if json.Unmarshal(body, &tag) == nil {
		if tag.Degraded {
			out.degraded = 1
		}
		if tag.Partial {
			out.partial = 1
		}
	}
	return out
}
