package cluster

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestSilhouetteWellSeparated(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	points, truth := blobs(rng, [][]float64{{0, 0}, {100, 100}}, 20, 0.5)
	s, err := Silhouette(points, truth, 2, l2)
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.95 {
		t.Errorf("well-separated silhouette %v, want ~1", s)
	}
}

func TestSilhouetteMisassignedIsLower(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	points, truth := blobs(rng, [][]float64{{0, 0}, {50, 50}}, 15, 1)
	good, err := Silhouette(points, truth, 2, l2)
	if err != nil {
		t.Fatal(err)
	}
	// Swap a handful of labels.
	bad := append([]int(nil), truth...)
	for i := 0; i < 5; i++ {
		bad[i] = 1 - bad[i]
	}
	worse, err := Silhouette(points, bad, 2, l2)
	if err != nil {
		t.Fatal(err)
	}
	if worse >= good {
		t.Errorf("misassigned silhouette %v not below clean %v", worse, good)
	}
}

func TestSilhouetteRandomLabelsNearZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	// One homogeneous blob with arbitrary labels: no structure, s ≈ 0.
	points, _ := blobs(rng, [][]float64{{0, 0}}, 60, 5)
	labels := make([]int, len(points))
	for i := range labels {
		labels[i] = rng.IntN(3)
	}
	s, err := Silhouette(points, labels, 3, l2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s) > 0.15 {
		t.Errorf("structureless silhouette %v, want ~0", s)
	}
}

func TestSilhouetteSingleCluster(t *testing.T) {
	points := [][]float64{{0}, {1}, {2}}
	s, err := Silhouette(points, []int{0, 0, 0}, 1, l2)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("single-cluster silhouette %v, want 0", s)
	}
}

func TestSilhouetteSingletons(t *testing.T) {
	points := [][]float64{{0}, {10}, {20}}
	s, err := Silhouette(points, []int{0, 1, 2}, 3, l2)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("all-singleton silhouette %v, want 0 by convention", s)
	}
}

func TestSilhouetteErrors(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := Silhouette(nil, nil, 1, l2); err == nil {
		t.Error("empty: expected error")
	}
	if _, err := Silhouette(pts, []int{0}, 1, l2); err == nil {
		t.Error("assignment length: expected error")
	}
	if _, err := Silhouette(pts, []int{0, 0}, 0, l2); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := Silhouette(pts, []int{0, 5}, 2, l2); err == nil {
		t.Error("label range: expected error")
	}
	if _, err := Silhouette(pts, []int{0, 0}, 1, nil); err == nil {
		t.Error("nil dist: expected error")
	}
}

func TestChooseKFindsTrueK(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	points, _ := blobs(rng, [][]float64{{0, 0}, {60, 0}, {0, 60}, {60, 60}}, 15, 1)
	k, score, err := ChooseK(points, l2, 2, 7, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Errorf("ChooseK = %d (score %v), want 4", k, score)
	}
	if score < 0.8 {
		t.Errorf("winning silhouette %v suspiciously low", score)
	}
}

func TestChooseKErrors(t *testing.T) {
	pts := [][]float64{{1}, {2}, {3}}
	if _, _, err := ChooseK(pts, l2, 1, 3, 1, 1); err == nil {
		t.Error("kMin<2: expected error")
	}
	if _, _, err := ChooseK(pts, l2, 3, 2, 1, 1); err == nil {
		t.Error("kMax<kMin: expected error")
	}
	if _, _, err := ChooseK(pts, l2, 2, 9, 1, 1); err == nil {
		t.Error("kMax>n: expected error")
	}
	if _, _, err := ChooseK(pts, l2, 2, 3, 0, 1); err == nil {
		t.Error("restarts 0: expected error")
	}
}
