package cluster

import (
	"fmt"
	"math"
)

// Silhouette computes the mean silhouette coefficient of a clustering —
// an internal quality measure needing no ground truth, complementing the
// spread-based Definition 11: for each point, a = mean distance to its
// own cluster, b = mean distance to the nearest other cluster, and the
// silhouette is (b − a)/max(a, b) ∈ [−1, 1]. Higher is better; values
// near 0 mean overlapping clusters; negative values mean likely
// misassignment.
//
// Cost is O(n²) distance evaluations — with sketch distances each is
// O(k), which is exactly the regime the paper's machinery targets.
// Singleton clusters contribute 0 by the standard convention.
func Silhouette(points [][]float64, assign []int, k int, dist DistFunc) (float64, error) {
	n := len(points)
	if n == 0 {
		return 0, fmt.Errorf("cluster: no points")
	}
	if len(assign) != n {
		return 0, fmt.Errorf("cluster: %d assignments for %d points", len(assign), n)
	}
	if k < 1 {
		return 0, fmt.Errorf("cluster: k = %d", k)
	}
	if dist == nil {
		return 0, fmt.Errorf("cluster: nil distance function")
	}
	sizes := make([]int, k)
	for i, c := range assign {
		if c < 0 || c >= k {
			return 0, fmt.Errorf("cluster: assignment %d at point %d outside [0, %d)", c, i, k)
		}
		sizes[c]++
	}
	if k == 1 {
		return 0, nil // a single cluster has no silhouette structure
	}
	// sums[i][c] = Σ distance from point i to every point of cluster c.
	var total float64
	sums := make([]float64, k)
	for i, p := range points {
		for c := range sums {
			sums[c] = 0
		}
		for j, q := range points {
			if i == j {
				continue
			}
			sums[assign[j]] += dist(p, q)
		}
		own := assign[i]
		if sizes[own] <= 1 {
			continue // singleton: silhouette 0
		}
		a := sums[own] / float64(sizes[own]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || sizes[c] == 0 {
				continue
			}
			if v := sums[c] / float64(sizes[c]); v < b {
				b = v
			}
		}
		if math.IsInf(b, 1) {
			continue // every other cluster empty
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n), nil
}

// ChooseK runs k-means for each k in [kMin, kMax] and returns the k whose
// best-of-restarts clustering maximizes the silhouette coefficient — a
// standard model-selection recipe for "how many regions does this table
// have?", entirely on sketch-space distances when dist is sketched.
func ChooseK(points [][]float64, dist DistFunc, kMin, kMax, restarts int, seed uint64) (bestK int, bestScore float64, err error) {
	if kMin < 2 || kMax < kMin {
		return 0, 0, fmt.Errorf("cluster: ChooseK range [%d, %d] invalid (need 2 <= kMin <= kMax)", kMin, kMax)
	}
	if kMax > len(points) {
		return 0, 0, fmt.Errorf("cluster: kMax %d exceeds %d points", kMax, len(points))
	}
	bestScore = math.Inf(-1)
	for k := kMin; k <= kMax; k++ {
		res, err := BestOf(restarts, seed+uint64(k)*1009, func(s uint64) (*Result, error) {
			return KMeans(points, dist, Config{K: k, Seed: s, Init: InitPlusPlus})
		})
		if err != nil {
			return 0, 0, err
		}
		score, err := Silhouette(points, res.Assign, k, dist)
		if err != nil {
			return 0, 0, err
		}
		if score > bestScore {
			bestK, bestScore = k, score
		}
	}
	return bestK, bestScore, nil
}
