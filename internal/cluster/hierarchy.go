package cluster

import (
	"fmt"
	"math"
)

// Linkage selects how agglomerative clustering measures inter-cluster
// distance.
type Linkage int

const (
	// SingleLinkage merges by minimum pairwise distance.
	SingleLinkage Linkage = iota
	// CompleteLinkage merges by maximum pairwise distance.
	CompleteLinkage
	// AverageLinkage merges by mean pairwise distance (UPGMA).
	AverageLinkage
)

// String implements fmt.Stringer.
func (l Linkage) String() string {
	switch l {
	case SingleLinkage:
		return "single"
	case CompleteLinkage:
		return "complete"
	case AverageLinkage:
		return "average"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step of the dendrogram. Cluster ids
// follow the scipy convention: leaves are 0..n-1, the cluster created by
// merge step s gets id n+s.
type Merge struct {
	A, B     int     // the merged cluster ids
	Distance float64 // linkage distance at which they merged
	Size     int     // size of the new cluster
}

// Agglomerative builds a full bottom-up clustering of points using the
// Lance–Williams update, O(n²) memory and O(n³) worst-case time (O(n²)
// distance evaluations — with sketch distances that's where the paper's
// speedup applies: each evaluation is O(k) instead of O(tile)).
// It returns the n−1 merges in order.
func Agglomerative(points [][]float64, dist DistFunc, linkage Linkage) ([]Merge, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if dist == nil {
		return nil, fmt.Errorf("cluster: nil distance function")
	}
	switch linkage {
	case SingleLinkage, CompleteLinkage, AverageLinkage:
	default:
		return nil, fmt.Errorf("cluster: unknown linkage %d", int(linkage))
	}
	if n == 1 {
		return nil, nil
	}
	// Distance matrix between active clusters.
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := dist(points[i], points[j])
			d[i][j], d[j][i] = v, v
		}
	}
	active := make([]bool, n)
	size := make([]int, n)
	id := make([]int, n) // current dendrogram id of slot i
	for i := range active {
		active[i], size[i], id[i] = true, 1, i
	}
	merges := make([]Merge, 0, n-1)
	for step := 0; step < n-1; step++ {
		// Find the closest active pair.
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if !active[i] {
				continue
			}
			for j := i + 1; j < n; j++ {
				if !active[j] {
					continue
				}
				if d[i][j] < best {
					bi, bj, best = i, j, d[i][j]
				}
			}
		}
		merges = append(merges, Merge{
			A: id[bi], B: id[bj], Distance: best, Size: size[bi] + size[bj],
		})
		// Lance–Williams: fold cluster bj into slot bi.
		for x := 0; x < n; x++ {
			if !active[x] || x == bi || x == bj {
				continue
			}
			var v float64
			switch linkage {
			case SingleLinkage:
				v = math.Min(d[bi][x], d[bj][x])
			case CompleteLinkage:
				v = math.Max(d[bi][x], d[bj][x])
			case AverageLinkage:
				wi, wj := float64(size[bi]), float64(size[bj])
				v = (wi*d[bi][x] + wj*d[bj][x]) / (wi + wj)
			}
			d[bi][x], d[x][bi] = v, v
		}
		size[bi] += size[bj]
		id[bi] = n + step
		active[bj] = false
	}
	return merges, nil
}

// CutDendrogram converts a merge sequence into a flat clustering with k
// clusters (undoing the last k−1 merges) and returns per-point labels in
// [0, k).
func CutDendrogram(merges []Merge, n, k int) ([]int, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: cut k = %d outside [1, %d]", k, n)
	}
	if len(merges) != n-1 {
		return nil, fmt.Errorf("cluster: %d merges for %d points", len(merges), n)
	}
	// Union-find over the first n-k merges.
	parent := make([]int, n+len(merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for s := 0; s < n-k; s++ {
		m := merges[s]
		newID := n + s
		parent[find(m.A)] = newID
		parent[find(m.B)] = newID
	}
	labels := make([]int, n)
	next := 0
	rootLabel := map[int]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		l, ok := rootLabel[r]
		if !ok {
			l = next
			rootLabel[r] = l
			next++
		}
		labels[i] = l
	}
	if next != k {
		return nil, fmt.Errorf("cluster: cut produced %d clusters, want %d", next, k)
	}
	return labels, nil
}
