package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// KMedoids clusters points around k medoids (actual data points) using
// Voronoi iteration: assign each point to its nearest medoid, then move
// each medoid to the member minimizing total within-cluster distance.
//
// Medoid-based clustering is the second mining workload the paper's
// distance oracles plug into (its related work cites CLARANS): unlike
// k-means it never forms mean centroids, so it works with *any* distance
// — including sketch-space distances for p < 1, where means are not the
// within-cluster optimum.
func KMedoids(points [][]float64, dist DistFunc, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("cluster: K = %d outside [1, %d]", cfg.K, n)
	}
	if dist == nil {
		return nil, fmt.Errorf("cluster: nil distance function")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}

	rng := rand.New(rand.NewPCG(cfg.Seed, 0x6d65646f696473))
	res := &Result{Assign: make([]int, n)}

	medoids := make([]int, cfg.K) // indices into points
	perm := rng.Perm(n)
	switch cfg.Init {
	case InitPlusPlus:
		// D²-weighted seeding, as in k-means++: spreads the initial
		// medoids across the data and avoids the classic Voronoi-iteration
		// trap of two seeds in one blob.
		medoids[0] = rng.IntN(n)
		d2 := make([]float64, n)
		for i, p := range points {
			d := dist(p, points[medoids[0]])
			res.Comparisons++
			d2[i] = d * d
		}
		for c := 1; c < cfg.K; c++ {
			var total float64
			for _, v := range d2 {
				total += v
			}
			idx := rng.IntN(n)
			if total > 0 {
				target := rng.Float64() * total
				for idx = 0; idx < n-1; idx++ {
					target -= d2[idx]
					if target <= 0 {
						break
					}
				}
			}
			medoids[c] = idx
			for i, p := range points {
				d := dist(p, points[idx])
				res.Comparisons++
				if dd := d * d; dd < d2[i] {
					d2[i] = dd
				}
			}
		}
	default:
		copy(medoids, perm[:cfg.K])
	}

	assign := res.Assign
	members := make([][]int, cfg.K)
	for iter := 0; iter < maxIter; iter++ {
		res.Iterations = iter + 1
		// Assignment step.
		changed := 0
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, m := range medoids {
				d := dist(p, points[m])
				res.Comparisons++
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed++
			}
		}
		if changed == 0 && iter > 0 {
			res.Converged = true
			break
		}
		// Update step: each medoid becomes the member with the smallest
		// summed distance to its cluster.
		for c := range members {
			members[c] = members[c][:0]
		}
		for i, c := range assign {
			members[c] = append(members[c], i)
		}
		for c, mem := range members {
			if len(mem) == 0 {
				// Empty cluster: reseed at a random non-medoid point.
				medoids[c] = perm[rng.IntN(n)]
				continue
			}
			bestIdx, bestSum := medoids[c], math.Inf(1)
			for _, cand := range mem {
				var sum float64
				for _, other := range mem {
					sum += dist(points[cand], points[other])
					res.Comparisons++
				}
				if sum < bestSum {
					bestIdx, bestSum = cand, sum
				}
			}
			medoids[c] = bestIdx
		}
	}
	res.Centroids = make([][]float64, cfg.K)
	for c, m := range medoids {
		res.Centroids[c] = append([]float64(nil), points[m]...)
	}
	res.Spread = Spread(points, assign, res.Centroids, dist)
	return res, nil
}
