package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/parallel"
)

// KMedoids clusters points around k medoids (actual data points) using
// Voronoi iteration: assign each point to its nearest medoid, then move
// each medoid to the member minimizing total within-cluster distance.
//
// Medoid-based clustering is the second mining workload the paper's
// distance oracles plug into (its related work cites CLARANS): unlike
// k-means it never forms mean centroids, so it works with *any* distance
// — including sketch-space distances for p < 1, where means are not the
// within-cluster optimum.
func KMedoids(points [][]float64, dist DistFunc, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("cluster: K = %d outside [1, %d]", cfg.K, n)
	}
	if dist == nil {
		return nil, fmt.Errorf("cluster: nil distance function")
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}

	ctx := cfg.ctx()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x6d65646f696473))
	res := &Result{Assign: make([]int, n)}

	medoids := make([]int, cfg.K) // indices into points
	perm := rng.Perm(n)
	workers := cfg.workers()
	switch cfg.Init {
	case InitPlusPlus:
		// D²-weighted seeding, as in k-means++: spreads the initial
		// medoids across the data and avoids the classic Voronoi-iteration
		// trap of two seeds in one blob. The D² scans fan out over points
		// (disjoint d2 slots); the RNG selection stays serial, so the
		// seeding is identical at any worker count.
		medoids[0] = rng.IntN(n)
		d2 := make([]float64, n)
		first := points[medoids[0]]
		if err := d2Scan(ctx, workers, n, func(i int) {
			d := dist(points[i], first)
			d2[i] = d * d
		}); err != nil {
			return nil, err
		}
		res.Comparisons += int64(n)
		for c := 1; c < cfg.K; c++ {
			var total float64
			for _, v := range d2 {
				total += v
			}
			idx := rng.IntN(n)
			if total > 0 {
				target := rng.Float64() * total
				for idx = 0; idx < n-1; idx++ {
					target -= d2[idx]
					if target <= 0 {
						break
					}
				}
			}
			medoids[c] = idx
			cand := points[idx]
			if err := d2Scan(ctx, workers, n, func(i int) {
				d := dist(points[i], cand)
				if dd := d * d; dd < d2[i] {
					d2[i] = dd
				}
			}); err != nil {
				return nil, err
			}
			res.Comparisons += int64(n)
		}
	default:
		copy(medoids, perm[:cfg.K])
	}

	assign := res.Assign
	members := make([][]int, cfg.K)
	medoidPoints := make([][]float64, cfg.K)
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iterations = iter + 1
		// Assignment step, fanned out over points exactly as in k-means.
		for c, m := range medoids {
			medoidPoints[c] = points[m]
		}
		changed, err := assignPoints(ctx, points, medoidPoints, assign, dist, workers)
		if err != nil {
			return nil, err
		}
		res.Comparisons += int64(n) * int64(cfg.K)
		if changed == 0 && iter > 0 {
			res.Converged = true
			break
		}
		// Update step: each medoid becomes the member with the smallest
		// summed distance to its cluster.
		for c := range members {
			members[c] = members[c][:0]
		}
		for i, c := range assign {
			members[c] = append(members[c], i)
		}
		// Reseed empty clusters serially first: the RNG draws must happen
		// in cluster order for the run to be worker-count-independent.
		for c, mem := range members {
			if len(mem) == 0 {
				medoids[c] = perm[rng.IntN(n)]
			}
		}
		// The per-cluster medoid searches are independent (medoids[c] is
		// cluster c's slot) and quadratic in cluster size — the hot part
		// of a k-medoids iteration — so they fan out over clusters.
		var comparisons int64
		for _, mem := range members {
			comparisons += int64(len(mem)) * int64(len(mem))
		}
		res.Comparisons += comparisons
		// Per-cluster items are coarse (quadratic in cluster size), so
		// ForCtx's per-item poll is enough for prompt cancellation.
		if err := parallel.ForCtx(ctx, workers, cfg.K, func(c int) {
			mem := members[c]
			if len(mem) == 0 {
				return
			}
			bestIdx, bestSum := medoids[c], math.Inf(1)
			for _, cand := range mem {
				var sum float64
				for _, other := range mem {
					sum += dist(points[cand], points[other])
				}
				if sum < bestSum {
					bestIdx, bestSum = cand, sum
				}
			}
			medoids[c] = bestIdx
		}); err != nil {
			return nil, err
		}
	}
	res.Centroids = make([][]float64, cfg.K)
	for c, m := range medoids {
		res.Centroids[c] = append([]float64(nil), points[m]...)
	}
	res.Spread = Spread(points, assign, res.Centroids, dist)
	return res, nil
}
