package cluster

import (
	"math/rand/v2"
	"testing"

	"repro/internal/lpnorm"
)

func TestKMedoidsRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	centers := [][]float64{{0, 0}, {60, 0}, {0, 60}}
	points, truth := blobs(rng, centers, 25, 1)
	res, err := KMedoids(points, l2, Config{K: 3, Seed: 2, Init: InitPlusPlus})
	if err != nil {
		t.Fatal(err)
	}
	if !sameClustering(truth, res.Assign, 3) {
		t.Error("k-medoids failed on separable blobs")
	}
	if res.Comparisons == 0 {
		t.Error("comparisons not counted")
	}
}

func TestKMedoidsCentroidsAreDataPoints(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	points, _ := blobs(rng, [][]float64{{0, 0}, {50, 50}}, 20, 1)
	res, err := KMedoids(points, l2, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for c, cent := range res.Centroids {
		found := false
		for _, p := range points {
			same := true
			for j := range p {
				if p[j] != cent[j] {
					same = false
					break
				}
			}
			if same {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("medoid %d is not an input point", c)
		}
	}
}

func TestKMedoidsWithFractionalP(t *testing.T) {
	// Medoid clustering has no mean step, so it is well-defined for p < 1.
	rng := rand.New(rand.NewPCG(3, 3))
	points, truth := blobs(rng, [][]float64{{0, 0, 0}, {500, 500, 500}}, 20, 5)
	res, err := KMedoids(points, lpnorm.MustP(0.5).Dist, Config{K: 2, Seed: 4, Init: InitPlusPlus})
	if err != nil {
		t.Fatal(err)
	}
	if !sameClustering(truth, res.Assign, 2) {
		t.Error("fractional-p k-medoids failed")
	}
}

func TestKMedoidsErrors(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := KMedoids(nil, l2, Config{K: 1}); err == nil {
		t.Error("no points: expected error")
	}
	if _, err := KMedoids(pts, l2, Config{K: 0}); err == nil {
		t.Error("K=0: expected error")
	}
	if _, err := KMedoids(pts, l2, Config{K: 5}); err == nil {
		t.Error("K>n: expected error")
	}
	if _, err := KMedoids(pts, nil, Config{K: 1}); err == nil {
		t.Error("nil dist: expected error")
	}
	if _, err := KMedoids([][]float64{{1}, {2, 3}}, l2, Config{K: 1}); err == nil {
		t.Error("ragged: expected error")
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	points, _ := blobs(rng, [][]float64{{0, 0}, {10, 10}}, 20, 2)
	a, _ := KMedoids(points, l2, Config{K: 2, Seed: 7})
	b, _ := KMedoids(points, l2, Config{K: 2, Seed: 7})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different medoid clusterings")
		}
	}
}

func TestKMedoidsSingleCluster(t *testing.T) {
	points := [][]float64{{0}, {1}, {2}, {3}, {100}}
	res, err := KMedoids(points, l2, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Medoid of {0,1,2,3,100} under L2 distance sums: 2 minimizes.
	if res.Centroids[0][0] != 2 {
		t.Errorf("medoid = %v, want 2", res.Centroids[0][0])
	}
}
