package cluster

import (
	"context"
	"errors"
	"math/rand/v2"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/parallel"
)

func ctxTestPoints(t *testing.T) ([][]float64, []int) {
	t.Helper()
	rng := rand.New(rand.NewPCG(5, 5))
	centers := [][]float64{{0, 0}, {60, 0}, {0, 60}, {60, 60}}
	points, truth := blobs(rng, centers, 30, 1.0)
	return points, truth
}

func TestKMeansPreCancelled(t *testing.T) {
	points, _ := ctxTestPoints(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := KMeans(points, l2, Config{K: 4, Seed: 3, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run published a result")
	}
}

func TestKMeansCancelMidRun(t *testing.T) {
	points, _ := ctxTestPoints(t)
	for _, workers := range []int{1, 3} {
		ctx := faultinject.CancelAfterChecks(context.Background(), 8)
		res, err := KMeans(points, l2, Config{
			K: 4, Seed: 3, Init: InitPlusPlus, Workers: workers, Context: ctx,
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if res != nil {
			t.Fatalf("workers=%d: cancelled run published a result", workers)
		}
	}
}

func TestKMedoidsPreCancelled(t *testing.T) {
	points, _ := ctxTestPoints(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := KMedoids(points, l2, Config{K: 4, Seed: 3, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run published a result")
	}
}

func TestKMedoidsCancelMidRun(t *testing.T) {
	points, _ := ctxTestPoints(t)
	ctx := faultinject.CancelAfterChecks(context.Background(), 10)
	res, err := KMedoids(points, l2, Config{
		K: 4, Seed: 3, Init: InitPlusPlus, Workers: 2, Context: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled run published a result")
	}
}

// TestKMeansPanickingDistIsolated drives a panic out of the user-supplied
// distance function on a worker goroutine and expects it back as a
// *parallel.PanicError carrying the value and a stack, not a crashed
// process.
func TestKMeansPanickingDistIsolated(t *testing.T) {
	points, _ := ctxTestPoints(t)
	calls := 0
	evil := func(a, b []float64) float64 {
		calls++
		if calls == 300 {
			panic("distance blew up")
		}
		return l2(a, b)
	}
	// Workers must be 1: the counter is unsynchronized, and with one
	// worker the panic site is deterministic too.
	_, err := KMeans(points, evil, Config{K: 4, Seed: 3, Workers: 1, Context: context.Background()})
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *parallel.PanicError", err)
	}
	if pe.Value != "distance blew up" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "goroutine") {
		t.Fatal("panic error carries no stack trace")
	}
}

func TestKMeansPanickingDistParallel(t *testing.T) {
	points, _ := ctxTestPoints(t)
	boom := faultinject.PanicNth(500, "parallel dist panic")
	evil := func(a, b []float64) float64 {
		boom()
		return l2(a, b)
	}
	_, err := KMeans(points, evil, Config{K: 4, Seed: 3, Workers: 4, Context: context.Background()})
	var pe *parallel.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *parallel.PanicError", err)
	}
	if pe.Value != "parallel dist panic" {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

// TestKMeansContextDoesNotChangeResult: the determinism contract — adding
// a context (and changing worker count) must not perturb the clustering.
func TestKMeansContextDoesNotChangeResult(t *testing.T) {
	points, _ := ctxTestPoints(t)
	want, err := KMeans(points, l2, Config{K: 4, Seed: 11, Init: InitPlusPlus})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := KMeans(points, l2, Config{
			K: 4, Seed: 11, Init: InitPlusPlus, Workers: workers,
			Context: context.Background(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.Iterations != want.Iterations || got.Converged != want.Converged {
			t.Fatalf("workers=%d: iterations %d/%v vs %d/%v",
				workers, got.Iterations, got.Converged, want.Iterations, want.Converged)
		}
		for i := range want.Assign {
			if got.Assign[i] != want.Assign[i] {
				t.Fatalf("workers=%d: assignment differs at point %d", workers, i)
			}
		}
		for c := range want.Centroids {
			for j := range want.Centroids[c] {
				if got.Centroids[c][j] != want.Centroids[c][j] {
					t.Fatalf("workers=%d: centroid %d differs at dim %d", workers, c, j)
				}
			}
		}
	}
}

func TestKMedoidsContextDoesNotChangeResult(t *testing.T) {
	points, _ := ctxTestPoints(t)
	want, err := KMedoids(points, l2, Config{K: 4, Seed: 11, Init: InitPlusPlus})
	if err != nil {
		t.Fatal(err)
	}
	got, err := KMedoids(points, l2, Config{
		K: 4, Seed: 11, Init: InitPlusPlus, Workers: 3,
		Context: context.Background(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("assignment differs at point %d", i)
		}
	}
}
