package cluster

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestLinkageString(t *testing.T) {
	if SingleLinkage.String() != "single" || CompleteLinkage.String() != "complete" ||
		AverageLinkage.String() != "average" {
		t.Error("linkage names wrong")
	}
	if Linkage(9).String() == "" {
		t.Error("unknown linkage empty")
	}
}

func TestAgglomerativeTinyByHand(t *testing.T) {
	// Points on a line: 0, 1, 10. Single linkage merges {0,1} at distance
	// 1 (new id 3), then {0,1} with {10} at distance 9.
	points := [][]float64{{0}, {1}, {10}}
	merges, err := Agglomerative(points, l2, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(merges) != 2 {
		t.Fatalf("got %d merges, want 2", len(merges))
	}
	m0 := merges[0]
	if !((m0.A == 0 && m0.B == 1) || (m0.A == 1 && m0.B == 0)) || m0.Distance != 1 {
		t.Errorf("first merge %+v, want 0+1 at distance 1", m0)
	}
	if m0.Size != 2 {
		t.Errorf("first merge size %d, want 2", m0.Size)
	}
	m1 := merges[1]
	if m1.Distance != 9 || m1.Size != 3 {
		t.Errorf("second merge %+v, want distance 9 size 3", m1)
	}
	// Complete linkage merges the far pair at max distance 10.
	mergesC, err := Agglomerative(points, l2, CompleteLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if mergesC[1].Distance != 10 {
		t.Errorf("complete-linkage final distance %v, want 10", mergesC[1].Distance)
	}
	// Average linkage: mean of 9 and 10 = 9.5.
	mergesA, err := Agglomerative(points, l2, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mergesA[1].Distance-9.5) > 1e-12 {
		t.Errorf("average-linkage final distance %v, want 9.5", mergesA[1].Distance)
	}
}

func TestAgglomerativeErrors(t *testing.T) {
	if _, err := Agglomerative(nil, l2, SingleLinkage); err == nil {
		t.Error("no points: expected error")
	}
	if _, err := Agglomerative([][]float64{{1}}, nil, SingleLinkage); err == nil {
		t.Error("nil dist: expected error")
	}
	if _, err := Agglomerative([][]float64{{1}, {2}}, l2, Linkage(9)); err == nil {
		t.Error("bad linkage: expected error")
	}
}

func TestAgglomerativeSinglePoint(t *testing.T) {
	merges, err := Agglomerative([][]float64{{1}}, l2, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if len(merges) != 0 {
		t.Error("single point should produce no merges")
	}
}

func TestCutDendrogramRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	centers := [][]float64{{0, 0}, {100, 0}, {0, 100}, {100, 100}}
	points, truth := blobs(rng, centers, 15, 1)
	for _, linkage := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage} {
		merges, err := Agglomerative(points, l2, linkage)
		if err != nil {
			t.Fatal(err)
		}
		labels, err := CutDendrogram(merges, len(points), 4)
		if err != nil {
			t.Fatal(err)
		}
		if !sameClustering(truth, labels, 4) {
			t.Errorf("%v linkage failed to recover blobs", linkage)
		}
	}
}

func TestCutDendrogramEdges(t *testing.T) {
	points := [][]float64{{0}, {1}, {10}}
	merges, _ := Agglomerative(points, l2, SingleLinkage)
	// k = n: every point its own cluster.
	labels, err := CutDendrogram(merges, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if len(seen) != 3 {
		t.Errorf("k=n cut: labels %v", labels)
	}
	// k = 1: all together.
	labels, err = CutDendrogram(merges, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range labels {
		if l != 0 {
			t.Errorf("k=1 cut: labels %v", labels)
		}
	}
	// Errors.
	if _, err := CutDendrogram(merges, 3, 0); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := CutDendrogram(merges, 3, 4); err == nil {
		t.Error("k>n: expected error")
	}
	if _, err := CutDendrogram(merges[:1], 3, 2); err == nil {
		t.Error("wrong merge count: expected error")
	}
}

func TestAgglomerativeMergeDistancesMonotoneForCompleteLinkage(t *testing.T) {
	// Complete and average linkage produce monotone dendrograms.
	rng := rand.New(rand.NewPCG(6, 6))
	points, _ := blobs(rng, [][]float64{{0, 0}, {5, 5}, {20, 0}}, 10, 2)
	for _, linkage := range []Linkage{CompleteLinkage, AverageLinkage} {
		merges, err := Agglomerative(points, l2, linkage)
		if err != nil {
			t.Fatal(err)
		}
		prev := -1.0
		for i, m := range merges {
			if m.Distance < prev-1e-9 {
				t.Fatalf("%v linkage: merge %d distance %v < previous %v",
					linkage, i, m.Distance, prev)
			}
			prev = m.Distance
		}
	}
}
