package cluster

// Parallel clustering must be bit-for-bit deterministic: assignment
// writes are per-point slots, centroid updates stay in serial point
// order, and RNG draws never happen inside a fan-out. These tests pin
// identical output for workers ∈ {serial, 2, GOMAXPROCS} with a fixed
// seed, for both KMeans and KMedoids and both init methods.

import (
	"fmt"
	"math"
	"math/rand/v2"
	"runtime"
	"testing"
)

func detPoints(n, dim int, seed uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seed, 0xde7))
	points := make([][]float64, n)
	for i := range points {
		points[i] = make([]float64, dim)
		for j := range points[i] {
			points[i][j] = rng.NormFloat64() + float64(i%5)*3
		}
	}
	return points
}

// l1 is a pure distance function, safe for concurrent use by design.
func l1(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

func sameResult(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if got.Iterations != ref.Iterations || got.Converged != ref.Converged {
		t.Errorf("%s: iterations/converged (%d,%v) != (%d,%v)",
			label, got.Iterations, got.Converged, ref.Iterations, ref.Converged)
	}
	if got.Comparisons != ref.Comparisons {
		t.Errorf("%s: comparisons %d != %d", label, got.Comparisons, ref.Comparisons)
	}
	for i := range ref.Assign {
		if got.Assign[i] != ref.Assign[i] {
			t.Errorf("%s: assignment of point %d is %d, want %d", label, i, got.Assign[i], ref.Assign[i])
			break
		}
	}
	if math.Float64bits(got.Spread) != math.Float64bits(ref.Spread) {
		t.Errorf("%s: spread %v not bit-identical to %v", label, got.Spread, ref.Spread)
	}
	for c := range ref.Centroids {
		for j := range ref.Centroids[c] {
			if math.Float64bits(got.Centroids[c][j]) != math.Float64bits(ref.Centroids[c][j]) {
				t.Errorf("%s: centroid %d[%d] not bit-identical", label, c, j)
				return
			}
		}
	}
}

func TestKMeansDeterministicAcrossWorkers(t *testing.T) {
	points := detPoints(300, 16, 1)
	for _, init := range []InitMethod{InitRandom, InitPlusPlus} {
		cfg := Config{K: 7, Seed: 9, Init: init, Workers: 0}
		ref, err := KMeans(points, l1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0), -1} {
			cfg.Workers = w
			got, err := KMeans(points, l1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmtLabel("KMeans", init, w), ref, got)
		}
	}
}

func TestKMedoidsDeterministicAcrossWorkers(t *testing.T) {
	points := detPoints(200, 12, 2)
	for _, init := range []InitMethod{InitRandom, InitPlusPlus} {
		cfg := Config{K: 5, Seed: 4, Init: init, Workers: 0}
		ref, err := KMedoids(points, l1, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 2, runtime.GOMAXPROCS(0), -1} {
			cfg.Workers = w
			got, err := KMedoids(points, l1, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, fmtLabel("KMedoids", init, w), ref, got)
		}
	}
}

func fmtLabel(algo string, init InitMethod, workers int) string {
	name := "random"
	if init == InitPlusPlus {
		name = "plusplus"
	}
	return fmt.Sprintf("%s/%s/workers=%d", algo, name, workers)
}
