package cluster

import (
	"errors"
	"math/rand/v2"
	"testing"
)

func TestBestOfPicksSmallestSpread(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	points, _ := blobs(rng, [][]float64{{0, 0}, {40, 40}, {80, 0}}, 20, 1)
	seen := map[uint64]bool{}
	best, err := BestOf(8, 100, func(seed uint64) (*Result, error) {
		if seen[seed] {
			t.Errorf("seed %d reused", seed)
		}
		seen[seed] = true
		return KMeans(points, l2, Config{K: 3, Seed: seed})
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 8 {
		t.Errorf("ran %d times, want 8", len(seen))
	}
	// The best-of-8 spread can never exceed any single run's spread.
	single, _ := KMeans(points, l2, Config{K: 3, Seed: 100})
	if best.Spread > single.Spread {
		t.Errorf("best-of spread %v exceeds single-run %v", best.Spread, single.Spread)
	}
}

func TestBestOfErrors(t *testing.T) {
	if _, err := BestOf(0, 1, nil); err == nil {
		t.Error("restarts=0: expected error")
	}
	if _, err := BestOf(1, 1, nil); err == nil {
		t.Error("nil run: expected error")
	}
	boom := errors.New("boom")
	if _, err := BestOf(3, 1, func(uint64) (*Result, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Error("run error not propagated")
	}
}
