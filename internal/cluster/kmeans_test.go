package cluster

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/lpnorm"
)

// blobs generates nPer points around each center with the given standard
// deviation, returning the points and their true cluster labels.
func blobs(rng *rand.Rand, centers [][]float64, nPer int, sigma float64) (points [][]float64, truth []int) {
	for c, center := range centers {
		for i := 0; i < nPer; i++ {
			p := make([]float64, len(center))
			for j, v := range center {
				p[j] = v + rng.NormFloat64()*sigma
			}
			points = append(points, p)
			truth = append(truth, c)
		}
	}
	return points, truth
}

var l2 = lpnorm.MustP(2).Dist

// sameClustering reports whether two labelings induce the same partition
// (up to label permutation), for small k.
func sameClustering(a, b []int, k int) bool {
	mapping := make([]int, k)
	for i := range mapping {
		mapping[i] = -1
	}
	for i := range a {
		if mapping[a[i]] == -1 {
			mapping[a[i]] = b[i]
		} else if mapping[a[i]] != b[i] {
			return false
		}
	}
	return true
}

func TestKMeansRecoversSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	centers := [][]float64{{0, 0}, {100, 0}, {0, 100}}
	points, truth := blobs(rng, centers, 40, 1.0)
	res, err := KMeans(points, l2, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge on trivially separable data")
	}
	if !sameClustering(truth, res.Assign, 3) {
		t.Error("failed to recover well-separated blobs")
	}
	if res.Comparisons <= 0 {
		t.Error("Comparisons not counted")
	}
	if res.Spread <= 0 {
		t.Error("Spread should be positive for noisy blobs")
	}
}

func TestKMeansPlusPlusRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	centers := [][]float64{{0, 0}, {50, 50}, {-50, 50}, {0, -70}}
	points, truth := blobs(rng, centers, 30, 0.5)
	res, err := KMeans(points, l2, Config{K: 4, Seed: 3, Init: InitPlusPlus})
	if err != nil {
		t.Fatal(err)
	}
	if !sameClustering(truth, res.Assign, 4) {
		t.Error("k-means++ failed to recover blobs")
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	points, _ := blobs(rng, [][]float64{{5, 5}}, 20, 1)
	res, err := KMeans(points, l2, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Assign {
		if c != 0 {
			t.Fatal("all points must land in cluster 0")
		}
	}
	// Centroid should be near (5,5).
	if math.Abs(res.Centroids[0][0]-5) > 1 || math.Abs(res.Centroids[0][1]-5) > 1 {
		t.Errorf("centroid %v far from (5,5)", res.Centroids[0])
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	points := [][]float64{{0}, {10}, {20}}
	res, err := KMeans(points, l2, Config{K: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range res.Assign {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Errorf("expected 3 singleton clusters, got assignment %v", res.Assign)
	}
	if res.Spread > 1e-9 {
		t.Errorf("spread %v should be ~0 with singleton clusters", res.Spread)
	}
}

func TestKMeansErrors(t *testing.T) {
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(nil, l2, Config{K: 1}); err == nil {
		t.Error("no points: expected error")
	}
	if _, err := KMeans(pts, l2, Config{K: 0}); err == nil {
		t.Error("K=0: expected error")
	}
	if _, err := KMeans(pts, l2, Config{K: 3}); err == nil {
		t.Error("K>n: expected error")
	}
	if _, err := KMeans(pts, nil, Config{K: 1}); err == nil {
		t.Error("nil dist: expected error")
	}
	if _, err := KMeans([][]float64{{1}, {2, 3}}, l2, Config{K: 1}); err == nil {
		t.Error("ragged: expected error")
	}
	if _, err := KMeans([][]float64{{}}, l2, Config{K: 1}); err == nil {
		t.Error("zero-dim: expected error")
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	points, _ := blobs(rng, [][]float64{{0, 0}, {10, 10}}, 25, 2)
	a, err := KMeans(points, l2, Config{K: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KMeans(points, l2, Config{K: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	if a.Comparisons != b.Comparisons {
		t.Error("same seed produced different comparison counts")
	}
}

func TestKMeansWithL1Distance(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	centers := [][]float64{{0, 0, 0}, {30, 30, 30}}
	points, truth := blobs(rng, centers, 30, 1)
	res, err := KMeans(points, lpnorm.MustP(1).Dist, Config{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !sameClustering(truth, res.Assign, 2) {
		t.Error("L1 k-means failed on separable blobs")
	}
}

func TestKMeansWithFractionalP(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	centers := [][]float64{{0, 0}, {1000, 1000}}
	points, truth := blobs(rng, centers, 20, 5)
	res, err := KMeans(points, lpnorm.MustP(0.5).Dist, Config{K: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if !sameClustering(truth, res.Assign, 2) {
		t.Error("L0.5 k-means failed on separable blobs")
	}
}

func TestKMeansMaxIterRespected(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	points, _ := blobs(rng, [][]float64{{0, 0}, {1, 1}, {2, 2}}, 40, 3)
	res, err := KMeans(points, l2, Config{K: 3, Seed: 1, MaxIter: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("Iterations = %d, want 1", res.Iterations)
	}
}

func TestSpread(t *testing.T) {
	points := [][]float64{{0}, {2}, {10}, {12}}
	assign := []int{0, 0, 1, 1}
	centroids := [][]float64{{1}, {11}}
	// each point is 1 away from its centroid
	if got := Spread(points, assign, centroids, l2); math.Abs(got-4) > 1e-12 {
		t.Errorf("Spread = %v, want 4", got)
	}
}

func TestSizes(t *testing.T) {
	got := Sizes([]int{0, 1, 1, 2, 1}, 3)
	want := []int{1, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sizes = %v, want %v", got, want)
		}
	}
}

func TestCentroidsOf(t *testing.T) {
	points := [][]float64{{0, 0}, {2, 2}, {10, 10}}
	assign := []int{0, 0, 1}
	cents := CentroidsOf(points, assign, 3)
	if cents[0][0] != 1 || cents[0][1] != 1 {
		t.Errorf("centroid 0 = %v, want [1 1]", cents[0])
	}
	if cents[1][0] != 10 {
		t.Errorf("centroid 1 = %v, want [10 10]", cents[1])
	}
	// Empty cluster 2 stays at the origin.
	if cents[2][0] != 0 || cents[2][1] != 0 {
		t.Errorf("empty centroid = %v, want [0 0]", cents[2])
	}
	if CentroidsOf(nil, nil, 2) != nil {
		t.Error("CentroidsOf(nil) should be nil")
	}
}

func TestEmptyClusterRepair(t *testing.T) {
	// Three far groups but K=3 with an adversarial seed can momentarily
	// produce empty clusters; the run must still end with every cluster
	// nonempty on separable data.
	rng := rand.New(rand.NewPCG(8, 8))
	centers := [][]float64{{0, 0}, {100, 100}, {200, 0}}
	points, _ := blobs(rng, centers, 15, 0.5)
	for seed := uint64(0); seed < 10; seed++ {
		res, err := KMeans(points, l2, Config{K: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sizes := Sizes(res.Assign, 3)
		for c, s := range sizes {
			if s == 0 {
				t.Errorf("seed %d: cluster %d empty: %v", seed, c, sizes)
			}
		}
	}
}
