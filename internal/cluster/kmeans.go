// Package cluster implements Lloyd's k-means over table tiles with a
// pluggable distance function, the mining workload of Section 4.4.
//
// The same algorithm runs in three modes that differ only in the distance
// routine — exactly the experimental control the paper insists on ("the
// only difference between the three types of experiments was the routines
// to calculate the distance between tiles"):
//
//   - exact: points are raw tile vectors, distance is the exact Lp norm;
//   - sketch precomputed: points are sketch vectors read from a pool;
//   - sketch on demand: points are sketch vectors computed at first use.
//
// Centroids are maintained as the mean of member points. Because the
// sketch map is linear, the mean of member sketches IS the sketch of the
// mean tile, so sketch-space clustering never touches raw tiles after
// sketching — this is what makes the precomputed mode's runtime
// independent of tile size.
package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/parallel"
)

// DistFunc measures the distance between two points of equal length.
type DistFunc func(a, b []float64) float64

// InitMethod selects the centroid seeding strategy.
type InitMethod int

const (
	// InitRandom seeds centroids as k distinct random points — the
	// classical k-means initialization the paper uses ("uses randomness to
	// generate the initial k-means").
	InitRandom InitMethod = iota
	// InitPlusPlus seeds with the k-means++ D² weighting, an extension
	// beyond the paper that typically improves clustering quality.
	InitPlusPlus
)

// Config controls a k-means run.
type Config struct {
	K       int
	MaxIter int    // 0 means the default of 100
	Seed    uint64 // RNG seed for initialization
	Init    InitMethod
	// Workers parallelizes the point→centroid assignment step (and the
	// k-medoids per-cluster medoid search). 0 or 1 keeps the serial
	// default; n > 1 fans out over n goroutines; negative means
	// runtime.GOMAXPROCS(0).
	//
	// With Workers != 1 the dist function is called from multiple
	// goroutines concurrently and MUST be safe for concurrent use — a
	// closure over one shared scratch buffer is not. Use
	// Sketcher.ConcurrentDist (or any pure function, like lpnorm.P.Dist)
	// for sketch distances. Results are byte-identical at any worker
	// count: each point's assignment is written to its own slot and no
	// floating-point reduction crosses a worker boundary.
	Workers int
	// Context, when non-nil, makes the run cancellable: workers poll it
	// during assignment and seeding scans and the Lloyd loop checks it
	// between iterations. A cancelled run returns ctx.Err() and no
	// Result. A run that completes is byte-identical whether or not a
	// context was set.
	Context context.Context
}

// ctx resolves the Context knob (nil means Background).
func (cfg Config) ctx() context.Context {
	if cfg.Context != nil {
		return cfg.Context
	}
	return context.Background()
}

// workers resolves the Workers knob; see its doc comment. Unlike
// parallel.Resolve, 0 means serial here: parallel assignment requires a
// concurrency-safe dist, which the zero Config must not assume.
func (cfg Config) workers() int {
	switch {
	case cfg.Workers < 0:
		return parallel.Resolve(0)
	case cfg.Workers == 0:
		return 1
	default:
		return cfg.Workers
	}
}

// Result reports a clustering.
type Result struct {
	Assign      []int       // point index -> cluster id in [0, K)
	Centroids   [][]float64 // K centroid vectors
	Iterations  int         // Lloyd iterations executed
	Converged   bool        // assignments reached a fixed point
	Spread      float64     // Σ over points of dist(point, its centroid)
	Comparisons int64       // distance evaluations performed — the paper's cost unit
}

const defaultMaxIter = 100

// KMeans clusters points into cfg.K clusters under dist.
// All points must share one length. Errors on empty input, K outside
// [1, len(points)], or ragged points.
func KMeans(points [][]float64, dist DistFunc, cfg Config) (*Result, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no points")
	}
	dim := len(points[0])
	if dim == 0 {
		return nil, fmt.Errorf("cluster: zero-dimensional points")
	}
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), dim)
		}
	}
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("cluster: K = %d outside [1, %d]", cfg.K, n)
	}
	if dist == nil {
		return nil, fmt.Errorf("cluster: nil distance function")
	}
	maxIter := cfg.MaxIter
	if maxIter <= 0 {
		maxIter = defaultMaxIter
	}

	ctx := cfg.ctx()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x6b6d65616e73))
	res := &Result{Assign: make([]int, n)}
	centroids, err := initialCentroids(ctx, points, dist, cfg, rng, &res.Comparisons)
	if err != nil {
		return nil, err
	}

	assign := res.Assign
	for i := range assign {
		assign[i] = -1
	}
	counts := make([]int, cfg.K)
	sums := make([][]float64, cfg.K)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}

	workers := cfg.workers()
	for iter := 0; iter < maxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Iterations = iter + 1
		changed, err := assignPoints(ctx, points, centroids, assign, dist, workers)
		if err != nil {
			return nil, err
		}
		res.Comparisons += int64(n) * int64(cfg.K)
		if changed == 0 {
			res.Converged = true
			break
		}
		// Recompute centroids as member means.
		for c := range sums {
			counts[c] = 0
			for j := range sums[c] {
				sums[c][j] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			s := sums[c]
			for j, v := range p {
				s[j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// current centroid, a standard repair that keeps K clusters
				// alive.
				far, farD := 0, -1.0
				for i, p := range points {
					d := dist(p, centroids[assign[i]])
					res.Comparisons++
					if d > farD {
						far, farD = i, d
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] * inv
			}
		}
	}
	res.Centroids = centroids
	res.Spread = Spread(points, assign, centroids, dist)
	return res, nil
}

// assignPoints writes each point's nearest centroid into assign and
// returns how many assignments changed. The loop fans out over points
// (each point writes only assign[i]), and ties break toward the lower
// centroid index exactly as in the serial loop, so the result is
// identical at every worker count. dist must be concurrency-safe when
// workers > 1 (see Config.Workers).
//
// Workers poll ctx every ctxStride points and a panic inside dist comes
// back as a *parallel.PanicError; on either error the (partially
// updated) assign slice must be discarded by the caller.
func assignPoints(ctx context.Context, points, centroids [][]float64, assign []int, dist DistFunc, workers int) (int, error) {
	nb := parallel.NumBlocks(workers, len(points))
	changedPer := make([]int, nb)
	err := parallel.BlocksCtx(ctx, workers, len(points), func(lo, hi, block int) {
		changed := 0
		for i := lo; i < hi; i++ {
			if i&(ctxStride-1) == 0 && ctx.Err() != nil {
				return
			}
			p := points[i]
			best, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				d := dist(p, cent)
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed++
			}
		}
		changedPer[block] = changed
	})
	if err != nil {
		return 0, err
	}
	changed := 0
	for _, c := range changedPer {
		changed += c
	}
	return changed, nil
}

// ctxStride is how many points a worker processes between context polls
// (a power of two so the check is a mask). Distances are cheap (O(k) on
// sketches), so polling every point would pay a mutex-guarded ctx.Err()
// per distance; every 64th keeps cancellation prompt at negligible cost.
const ctxStride = 64

// d2Scan fans the k-means++ D² update over points with the assignment
// loop's cancellation and panic-isolation contract: fn(i) owns slot i.
func d2Scan(ctx context.Context, workers, n int, fn func(i int)) error {
	return parallel.BlocksCtx(ctx, workers, n, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			if i&(ctxStride-1) == 0 && ctx.Err() != nil {
				return
			}
			fn(i)
		}
	})
}

func initialCentroids(ctx context.Context, points [][]float64, dist DistFunc, cfg Config, rng *rand.Rand, comparisons *int64) ([][]float64, error) {
	n, dim := len(points), len(points[0])
	centroids := make([][]float64, cfg.K)
	for c := range centroids {
		centroids[c] = make([]float64, dim)
	}
	workers := cfg.workers()
	switch cfg.Init {
	case InitPlusPlus:
		// k-means++: first centroid uniform, then D²-weighted. The D²
		// scans fan out over points (d2[i] is point i's slot); the
		// RNG-driven selection between scans stays serial so the random
		// sequence is identical at any worker count.
		copy(centroids[0], points[rng.IntN(n)])
		d2 := make([]float64, n)
		if err := d2Scan(ctx, workers, n, func(i int) {
			d := dist(points[i], centroids[0])
			d2[i] = d * d
		}); err != nil {
			return nil, err
		}
		*comparisons += int64(n)
		for c := 1; c < cfg.K; c++ {
			var total float64
			for _, v := range d2 {
				total += v
			}
			var idx int
			if total <= 0 {
				idx = rng.IntN(n)
			} else {
				target := rng.Float64() * total
				for idx = 0; idx < n-1; idx++ {
					target -= d2[idx]
					if target <= 0 {
						break
					}
				}
			}
			copy(centroids[c], points[idx])
			cent := centroids[c]
			if err := d2Scan(ctx, workers, n, func(i int) {
				d := dist(points[i], cent)
				if dd := d * d; dd < d2[i] {
					d2[i] = dd
				}
			}); err != nil {
				return nil, err
			}
			*comparisons += int64(n)
		}
	default:
		// Distinct random points via partial Fisher–Yates.
		perm := rng.Perm(n)
		for c := 0; c < cfg.K; c++ {
			copy(centroids[c], points[perm[c]])
		}
	}
	return centroids, nil
}

// Spread returns Σᵢ dist(pointᵢ, centroid of its cluster) — the cluster
// divergence measure behind Definition 11 ("the spread is the sum of the
// divergence of each cluster from the centroid of that cluster").
func Spread(points [][]float64, assign []int, centroids [][]float64, dist DistFunc) float64 {
	var total float64
	for i, p := range points {
		total += dist(p, centroids[assign[i]])
	}
	return total
}

// Sizes returns the number of points per cluster.
func Sizes(assign []int, k int) []int {
	out := make([]int, k)
	for _, c := range assign {
		out[c]++
	}
	return out
}

// CentroidsOf recomputes mean centroids for an existing assignment, used
// when evaluating a sketch-space clustering against exact tile data (the
// assignment transfers; the centroids must be rebuilt in tile space).
func CentroidsOf(points [][]float64, assign []int, k int) [][]float64 {
	if len(points) == 0 {
		return nil
	}
	dim := len(points[0])
	centroids := make([][]float64, k)
	counts := make([]int, k)
	for c := range centroids {
		centroids[c] = make([]float64, dim)
	}
	for i, p := range points {
		c := assign[i]
		counts[c]++
		for j, v := range p {
			centroids[c][j] += v
		}
	}
	for c := range centroids {
		if counts[c] > 0 {
			inv := 1 / float64(counts[c])
			for j := range centroids[c] {
				centroids[c][j] *= inv
			}
		}
	}
	return centroids
}
