package cluster

import "fmt"

// BestOf runs a stochastic clustering routine `restarts` times with
// distinct seeds derived from base and returns the result with the
// smallest Spread — the algorithm's own objective, so model selection
// never peeks at ground truth. It is the restart loop every
// k-means/k-medoids experiment needs; the paper's single-run k-means is
// BestOf with restarts = 1.
func BestOf(restarts int, base uint64, run func(seed uint64) (*Result, error)) (*Result, error) {
	if restarts < 1 {
		return nil, fmt.Errorf("cluster: restarts = %d", restarts)
	}
	if run == nil {
		return nil, fmt.Errorf("cluster: nil run function")
	}
	var best *Result
	for r := 0; r < restarts; r++ {
		// A fixed odd stride keeps the derived seeds distinct without
		// correlating consecutive restarts.
		res, err := run(base + uint64(r)*0x9e37_79b9)
		if err != nil {
			return nil, err
		}
		if best == nil || res.Spread < best.Spread {
			best = res
		}
	}
	return best, nil
}
