package fft

// The parallel sketching layer calls CrossCorrelateValid from many
// goroutines at once, so the twiddle cache (a sync.Map keyed by size)
// must tolerate concurrent first-touch of the same and different sizes.
// This test is meaningful under `go test -race` (see `make race`): it
// fails there if the cache or any shared transform state races.

import (
	"math"
	"sync"
	"testing"
)

func TestConcurrentTransformsShareTwiddleCache(t *testing.T) {
	// Fresh sizes may or may not be cached already depending on test
	// order; hammer a spread of sizes from many goroutines either way.
	sizes := []int{8, 16, 32, 64, 128, 256}
	const goroutines = 8

	data := make([]float64, 24*24)
	for i := range data {
		data[i] = math.Sin(float64(i) * 0.7)
	}
	kernel := make([]float64, 5*5)
	for i := range kernel {
		kernel[i] = float64(i%3) - 1
	}
	want := CrossCorrelateValid(data, 24, 24, kernel, 5, 5)

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// 1D transforms on every size, interleaved across goroutines.
			for _, n := range sizes {
				buf := make([]complex128, n)
				for i := range buf {
					buf[i] = complex(float64(i+g), 0)
				}
				FFT(buf)
				IFFT(buf)
			}
			// And the full 2D cross-correlation path, which must produce
			// the same floats no matter how many goroutines run it.
			got := CrossCorrelateValid(data, 24, 24, kernel, 5, 5)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Errorf("goroutine %d: correlation entry %d = %v, want %v", g, i, got[i], want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
