package fft

// Tests for the planned frequency-domain correlation engine: the shared
// table spectrum, the packed-pair kernel trick, and the strided
// write-through extraction are each cross-checked against the O(N·M)
// naive correlation and against the unplanned FFT path on the degenerate
// shapes where index arithmetic is most likely to break — 1×N and N×1
// tables, kernel == table, odd and non-power-of-two dims, and odd k
// (the unpaired trailing kernel).

import (
	"math"
	"math/rand/v2"
	"sync"
	"testing"
)

// correlationCase is one (table, kernel) shape of the degenerate-shape
// golden suite.
type correlationCase struct{ n, m, ka, kb int }

func planGoldenCases() []correlationCase {
	return []correlationCase{
		{1, 17, 1, 5},  // 1×N table, pr == 1: no column transform at all
		{1, 16, 1, 16}, // 1×N, kernel spans the whole table: single output
		{23, 1, 7, 1},  // N×1 table, pc == 1
		{16, 1, 16, 1}, // N×1, kernel == table
		{8, 8, 8, 8},   // kernel == table: one dot product
		{9, 13, 4, 4},  // non-power-of-two data
		{7, 11, 3, 5},  // everything odd
		{4, 4, 1, 1},   // scalar kernel
		{5, 31, 5, 2},  // kernel spans full height
		{32, 6, 2, 6},  // kernel spans full width
		{2, 2, 2, 2},   // smallest non-trivial square
		{1, 1, 1, 1},   // single cell
	}
}

func TestPlanCorrelateMatchesNaiveOnDegenerateShapes(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 21))
	for _, c := range planGoldenCases() {
		data := randSlice(rng, c.n*c.m)
		kernel := randSlice(rng, c.ka*c.kb)
		plan := NewPlan2D(data, c.n, c.m)
		got := plan.CorrelateValid(kernel, c.ka, c.kb)
		want := CrossCorrelateValidNaive(data, c.n, c.m, kernel, c.ka, c.kb)
		if len(got) != len(want) {
			t.Fatalf("%+v: len %d vs %d", c, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				t.Fatalf("%+v: out[%d] = %v, naive %v", c, i, got[i], want[i])
			}
		}
	}
}

func TestPlanCorrelatePairMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(22, 22))
	for _, c := range planGoldenCases() {
		data := randSlice(rng, c.n*c.m)
		kernA := randSlice(rng, c.ka*c.kb)
		kernB := randSlice(rng, c.ka*c.kb)
		plan := NewPlan2D(data, c.n, c.m)
		outRows, outCols := plan.OutDims(c.ka, c.kb)
		positions := outRows * outCols
		gotA := make([]float64, positions)
		gotB := make([]float64, positions)
		plan.CorrelatePairValid(kernA, kernB, c.ka, c.kb, gotA, 1, gotB, 1)
		wantA := CrossCorrelateValidNaive(data, c.n, c.m, kernA, c.ka, c.kb)
		wantB := CrossCorrelateValidNaive(data, c.n, c.m, kernB, c.ka, c.kb)
		for i := range gotA {
			if math.Abs(gotA[i]-wantA[i]) > 1e-7*(1+math.Abs(wantA[i])) {
				t.Fatalf("%+v: A[%d] = %v, naive %v", c, i, gotA[i], wantA[i])
			}
			if math.Abs(gotB[i]-wantB[i]) > 1e-7*(1+math.Abs(wantB[i])) {
				t.Fatalf("%+v: B[%d] = %v, naive %v", c, i, gotB[i], wantB[i])
			}
		}
	}
}

// The strided write-through must land out[pos] at dst[pos*stride] and
// touch nothing else — this is the contract the position-major PlaneSet
// lanes rely on.
func TestPlanCorrelateStridedWriteThrough(t *testing.T) {
	rng := rand.New(rand.NewPCG(23, 23))
	const n, m, ka, kb = 10, 12, 3, 4
	data := randSlice(rng, n*m)
	kernA := randSlice(rng, ka*kb)
	kernB := randSlice(rng, ka*kb)
	plan := NewPlan2D(data, n, m)
	outRows, outCols := plan.OutDims(ka, kb)
	positions := outRows * outCols

	contigA := make([]float64, positions)
	contigB := make([]float64, positions)
	plan.CorrelatePairValid(kernA, kernB, ka, kb, contigA, 1, contigB, 1)

	// Interleave both lanes in one backing array, as a PlaneSet does:
	// lane 0 at offset 0 stride 3, lane 1 at offset 1 stride 3, and a
	// sentinel lane at offset 2 that must remain untouched.
	const stride = 3
	backing := make([]float64, positions*stride)
	for i := range backing {
		backing[i] = math.Inf(1) // sentinel
	}
	plan.CorrelatePairValid(kernA, kernB, ka, kb, backing[0:], stride, backing[1:], stride)
	for pos := 0; pos < positions; pos++ {
		if backing[pos*stride] != contigA[pos] {
			t.Fatalf("lane A pos %d: %v != contiguous %v", pos, backing[pos*stride], contigA[pos])
		}
		if backing[pos*stride+1] != contigB[pos] {
			t.Fatalf("lane B pos %d: %v != contiguous %v", pos, backing[pos*stride+1], contigB[pos])
		}
		if !math.IsInf(backing[pos*stride+2], 1) {
			t.Fatalf("sentinel lane clobbered at pos %d: %v", pos, backing[pos*stride+2])
		}
	}
}

// Strided and contiguous extraction must produce identical floats (same
// correlation, different destination addressing).
func TestPlanStridedMatchesContiguousBitwise(t *testing.T) {
	rng := rand.New(rand.NewPCG(24, 24))
	const n, m, ka, kb = 9, 7, 2, 3
	data := randSlice(rng, n*m)
	kern := randSlice(rng, ka*kb)
	plan := NewPlan2D(data, n, m)
	outRows, outCols := plan.OutDims(ka, kb)
	positions := outRows * outCols
	contig := make([]float64, positions)
	plan.CorrelatePairValid(kern, nil, ka, kb, contig, 1, nil, 0)
	strided := make([]float64, positions*5)
	plan.CorrelatePairValid(kern, nil, ka, kb, strided, 5, nil, 0)
	for pos := range contig {
		if math.Float64bits(strided[pos*5]) != math.Float64bits(contig[pos]) {
			t.Fatalf("pos %d: strided %v != contiguous %v", pos, strided[pos*5], contig[pos])
		}
	}
}

func TestPlanMatchesUnplannedPath(t *testing.T) {
	rng := rand.New(rand.NewPCG(25, 25))
	for _, c := range []correlationCase{{16, 8, 3, 5}, {9, 13, 4, 4}, {1, 32, 1, 4}} {
		data := randSlice(rng, c.n*c.m)
		kernel := randSlice(rng, c.ka*c.kb)
		planned := CrossCorrelateValid(data, c.n, c.m, kernel, c.ka, c.kb)
		unplanned := CrossCorrelateValidUnplanned(data, c.n, c.m, kernel, c.ka, c.kb)
		for i := range planned {
			if math.Abs(planned[i]-unplanned[i]) > 1e-7*(1+math.Abs(unplanned[i])) {
				t.Fatalf("%+v: planned[%d] = %v, unplanned %v", c, i, planned[i], unplanned[i])
			}
		}
	}
}

// One plan shared by many goroutines must produce the same floats as
// serial use — the spectrum is read-only and every correlation gets
// private scratch. Run under -race this also proves the sharing is sound.
func TestPlanConcurrentUseIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(26, 26))
	const n, m, ka, kb, kernels = 24, 24, 5, 5, 8
	data := randSlice(rng, n*m)
	kerns := make([][]float64, kernels)
	for i := range kerns {
		kerns[i] = randSlice(rng, ka*kb)
	}
	plan := NewPlan2D(data, n, m)
	want := make([][]float64, kernels)
	for i, k := range kerns {
		want[i] = plan.CorrelateValid(k, ka, kb)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, k := range kerns {
				got := plan.CorrelateValid(k, ka, kb)
				for j := range got {
					if math.Float64bits(got[j]) != math.Float64bits(want[i][j]) {
						t.Errorf("kernel %d entry %d: concurrent %v != serial %v",
							i, j, got[j], want[i][j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func TestTableSpectrumCountPerPlan(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	before := TableSpectrumCount()
	p := NewPlan2D(data, 2, 3)
	if d := TableSpectrumCount() - before; d != 1 {
		t.Fatalf("NewPlan2D computed %d spectra, want 1", d)
	}
	// Correlations against an existing plan must not transform the table
	// again, no matter how many run.
	before = TableSpectrumCount()
	for i := 0; i < 5; i++ {
		p.CorrelateValid([]float64{1, 0, 0, 1}, 2, 2)
	}
	if d := TableSpectrumCount() - before; d != 0 {
		t.Fatalf("planned correlations computed %d table spectra, want 0", d)
	}
}

func TestPlanPanics(t *testing.T) {
	data := randSlice(rand.New(rand.NewPCG(27, 27)), 4*4)
	plan := NewPlan2D(data, 4, 4)
	kern := []float64{1, 2, 3, 4}
	out := make([]float64, 9)
	cases := map[string]func(){
		"nil data":        func() { NewPlan2D(nil, 2, 2) },
		"bad dims":        func() { NewPlan2D(data, 0, 4) },
		"len mismatch":    func() { NewPlan2D(data, 3, 4) },
		"kernel too big":  func() { plan.CorrelatePairValid(make([]float64, 25), nil, 5, 5, out, 1, nil, 0) },
		"kernel len":      func() { plan.CorrelatePairValid(kern, nil, 2, 3, out, 1, nil, 0) },
		"kernel B len":    func() { plan.CorrelatePairValid(kern, []float64{1}, 2, 2, out, 1, out, 1) },
		"zero stride":     func() { plan.CorrelatePairValid(kern, nil, 2, 2, out, 0, nil, 0) },
		"dst too short":   func() { plan.CorrelatePairValid(kern, nil, 2, 2, make([]float64, 8), 1, nil, 0) },
		"dst B too short": func() { plan.CorrelatePairValid(kern, kern, 2, 2, out, 1, make([]float64, 2), 1) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// FuzzPlanCorrelateAgainstNaive drives the planned engine (both the
// paired and unpaired variants) against the naive reference over random
// shapes, including the degenerate 1×N / N×1 / kernel==table boundaries.
func FuzzPlanCorrelateAgainstNaive(f *testing.F) {
	f.Add(uint16(4), uint16(4), uint16(2), uint16(2), uint64(1), true)
	f.Add(uint16(1), uint16(31), uint16(1), uint16(7), uint64(2), false)
	f.Add(uint16(17), uint16(1), uint16(17), uint16(1), uint64(3), true)
	f.Add(uint16(9), uint16(13), uint16(9), uint16(13), uint64(4), false)
	f.Fuzz(func(t *testing.T, nRaw, mRaw, kaRaw, kbRaw uint16, seed uint64, paired bool) {
		n := int(nRaw)%48 + 1
		m := int(mRaw)%48 + 1
		ka := int(kaRaw)%n + 1
		kb := int(kbRaw)%m + 1
		rng := rand.New(rand.NewPCG(seed, seed^0xABCD))
		data := randSlice(rng, n*m)
		kernA := randSlice(rng, ka*kb)
		plan := NewPlan2D(data, n, m)
		outRows, outCols := plan.OutDims(ka, kb)
		positions := outRows * outCols
		gotA := make([]float64, positions)
		var kernB, gotB []float64
		if paired {
			kernB = randSlice(rng, ka*kb)
			gotB = make([]float64, positions)
		}
		plan.CorrelatePairValid(kernA, kernB, ka, kb, gotA, 1, gotB, 1)
		wantA := CrossCorrelateValidNaive(data, n, m, kernA, ka, kb)
		for i := range gotA {
			if math.Abs(gotA[i]-wantA[i]) > 1e-6*(1+math.Abs(wantA[i])) {
				t.Fatalf("n=%d m=%d ka=%d kb=%d: A[%d] = %v, naive %v",
					n, m, ka, kb, i, gotA[i], wantA[i])
			}
		}
		if paired {
			wantB := CrossCorrelateValidNaive(data, n, m, kernB, ka, kb)
			for i := range gotB {
				if math.Abs(gotB[i]-wantB[i]) > 1e-6*(1+math.Abs(wantB[i])) {
					t.Fatalf("n=%d m=%d ka=%d kb=%d: B[%d] = %v, naive %v",
						n, m, ka, kb, i, gotB[i], wantB[i])
				}
			}
		}
	})
}

// convolveNaive is the O(n·m) reference for ConvolveFull's packed path.
func convolveNaive(a, b []float64) []float64 {
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

func TestConvolveFullPackedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(28, 28))
	cases := [][2]int{{1, 1}, {1, 9}, {8, 8}, {7, 13}, {33, 2}, {64, 64}}
	for _, c := range cases {
		a := randSlice(rng, c[0])
		b := randSlice(rng, c[1])
		got := ConvolveFull(a, b)
		want := convolveNaive(a, b)
		if len(got) != len(want) {
			t.Fatalf("lens %v: %d vs %d", c, len(got), len(want))
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8*(1+math.Abs(want[i])) {
				t.Fatalf("lens %v: out[%d] = %v, naive %v", c, i, got[i], want[i])
			}
		}
	}
}
