package fft

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// tableSpectra counts forward table spectra computed since process start
// (one per NewPlan2D). The pool-construction tests assert the delta is
// exactly one: the padded transform size depends only on the table, so
// every (dyadic size × subpool × matrix) job must share one spectrum.
var tableSpectra atomic.Int64

// TableSpectrumCount returns how many forward table spectra have been
// computed (i.e. how many Plan2D values were constructed).
func TableSpectrumCount() int64 { return tableSpectra.Load() }

// correlations counts planned valid-region correlations (one per kernel
// FFT round trip; a packed pair rides one round trip and counts once).
// The incremental pool-maintenance tests assert appends run a small
// fraction of a full rebuild's correlations.
var correlations atomic.Int64

// CorrelationCount returns how many planned correlations have run since
// process start (each CorrelatePairValid-family call counts once,
// whether it carries one kernel or a packed pair).
func CorrelationCount() int64 { return correlations.Load() }

// Plan2D is the frequency-domain correlation engine behind Theorem 3: it
// computes the padded forward 2D spectrum of one real data table exactly
// once and then correlates that shared spectrum against any number of
// real kernels. Three mechanisms make a planned correlation cheap:
//
//   - Shared table spectrum. The padded size NextPow2(n)×NextPow2(m)
//     depends only on the table, never on the kernel, so the table-side
//     transform — half the FFT work of a one-shot correlation — is paid
//     once per table instead of once per kernel.
//   - Packed-pair kernel transforms. Kernels are real, so two of them
//     ride one complex FFT as c = a + i·b. No explicit unpacking is ever
//     needed: writing D for the table spectrum and C for the packed
//     spectrum, the pointwise products of both correlations combine into
//     G[w] = D[w]·conj(A[w]) + i·(D[w]·conj(B[w])) = D[w]·C[−w]
//     (by the Hermitian symmetry conj(A[w] − i·B[w]) = C[−w] of
//     real-input spectra), and one inverse transform of G returns
//     correlation a in its real plane and correlation b in its imaginary
//     plane. Two kernels cost one forward and one inverse FFT — versus
//     six transforms for the same work through the unplanned path.
//   - Recycled scratch. The single padded scratch matrix each correlation
//     needs comes from a sync.Pool, so a planned correlation allocates
//     nothing beyond what the caller hands it to write into.
//
// The spectrum is read-only after construction and the scratch pool is
// concurrency-safe, so one Plan2D may be shared by any number of
// goroutines; results are pure functions of (table, kernel), independent
// of scheduling.
type Plan2D struct {
	rows, cols int          // table dims
	pr, pc     int          // padded transform dims (powers of two)
	spec       []complex128 // forward spectrum of the padded table, read-only
	scratch    sync.Pool    // *CMatrix, pr×pc
}

// NewPlan2D builds the correlation plan for an n×m row-major real table,
// computing its padded forward spectrum (the one table-side FFT every
// correlation through this plan will share).
func NewPlan2D(data []float64, n, m int) *Plan2D {
	if n <= 0 || m <= 0 {
		panic(fmt.Sprintf("fft: NewPlan2D with non-positive dims %dx%d", n, m))
	}
	if len(data) != n*m {
		panic(fmt.Sprintf("fft: NewPlan2D data length %d != %d*%d", len(data), n, m))
	}
	return NewPlan2DSlab(data, n, m, 0, m)
}

// NewPlan2DSlab builds a correlation plan over a vertical column slab of
// an n×fullCols row-major table: the plan's logical table is the
// n×slabCols strip starting at column c0, zero-extended where
// c0+slabCols runs past the table's right edge. Zero extension (rather
// than clipping) keeps the padded transform size a function of slabCols
// alone, so two slabs of equal width over equal contents produce
// bit-identical plans regardless of where the table ends — the property
// the incremental pool-maintenance path's byte-identity rests on.
//
// NewPlan2D is the c0=0, slabCols=fullCols special case.
func NewPlan2DSlab(data []float64, n, fullCols, c0, slabCols int) *Plan2D {
	if n <= 0 || fullCols <= 0 || slabCols <= 0 {
		panic(fmt.Sprintf("fft: NewPlan2DSlab with non-positive dims n=%d fullCols=%d slabCols=%d",
			n, fullCols, slabCols))
	}
	if c0 < 0 || c0 >= fullCols {
		panic(fmt.Sprintf("fft: NewPlan2DSlab slab start %d outside table of %d cols", c0, fullCols))
	}
	if len(data) != n*fullCols {
		panic(fmt.Sprintf("fft: NewPlan2DSlab data length %d != %d*%d", len(data), n, fullCols))
	}
	backed := slabCols // columns actually backed by table data
	if c0+backed > fullCols {
		backed = fullCols - c0
	}
	pr, pc := NextPow2(n), NextPow2(slabCols)
	d := NewCMatrix(pr, pc)
	for r := 0; r < n; r++ {
		row := d.Row(r)
		src := data[r*fullCols+c0 : r*fullCols+c0+backed]
		for c, v := range src {
			row[c] = complex(v, 0)
		}
	}
	transform2DPartial(d, false, n)
	tableSpectra.Add(1)
	p := &Plan2D{rows: n, cols: slabCols, pr: pr, pc: pc, spec: d.Data}
	p.scratch.New = func() any { return NewCMatrix(pr, pc) }
	return p
}

// Dims returns the table dimensions the plan was built for.
func (p *Plan2D) Dims() (rows, cols int) { return p.rows, p.cols }

// PaddedDims returns the power-of-two transform dimensions.
func (p *Plan2D) PaddedDims() (pr, pc int) { return p.pr, p.pc }

// OutDims returns the valid-correlation output dimensions for a ka×kb
// kernel: every position at which the kernel fits inside the table.
func (p *Plan2D) OutDims(ka, kb int) (rows, cols int) {
	return p.rows - ka + 1, p.cols - kb + 1
}

// CorrelatePairValid cross-correlates the plan's table with one or two
// real ka×kb kernels in a single FFT round trip, writing the valid-region
// results through caller-chosen strides:
//
//	dstA[pos*strideA] = Σ data[i+u][j+v]·kernelA[u][v]   pos = i·outCols + j
//	dstB[pos*strideB] = Σ data[i+u][j+v]·kernelB[u][v]   (when kernelB != nil)
//
// The strided write-through exists for position-major sketch planes: lane
// i of a PlaneSet is dst = data[i:] with stride k, so correlation results
// land directly in their final location with no intermediate plane copy.
// Pass stride 1 for a plain contiguous output. kernelB may be nil (odd
// trailing kernel of a packed-pair sweep), in which case dstB is ignored.
//
// Safe for concurrent use; allocates nothing beyond a possible scratch
// grow on first concurrent use.
func (p *Plan2D) CorrelatePairValid(kernelA, kernelB []float64, ka, kb int,
	dstA []float64, strideA int, dstB []float64, strideB int) {
	_, outCols := p.OutDims(ka, kb)
	p.CorrelatePairValidSub(kernelA, kernelB, ka, kb, outCols,
		dstA, outCols*strideA, strideA, dstB, outCols*strideB, strideB)
}

// CorrelatePairValidSub is CorrelatePairValid with a restricted harvest:
// the FFT round trip is bit-for-bit the same, but only the first subCols
// columns of each valid output row are written, through independent row
// and column strides:
//
//	dstA[r*rowStrideA + c*colStrideA] = correlation a at (r, c),  c < subCols
//
// This is the write-through shape of panel-mode pool maintenance: a slab
// plan's valid region extends past its panel (into the overlap fringe
// owned by the next panel), so the harvest stops at the panel width and
// the row stride jumps to the panel's next row inside the full-width
// plane. CorrelatePairValid is the subCols=outCols special case.
//
// When kernelB is nil, dstB is ignored (strides included).
func (p *Plan2D) CorrelatePairValidSub(kernelA, kernelB []float64, ka, kb, subCols int,
	dstA []float64, rowStrideA, colStrideA int,
	dstB []float64, rowStrideB, colStrideB int) {
	if ka <= 0 || kb <= 0 {
		panic(fmt.Sprintf("fft: non-positive kernel dims %dx%d", ka, kb))
	}
	if ka > p.rows || kb > p.cols {
		panic(fmt.Sprintf("fft: kernel %dx%d exceeds table %dx%d", ka, kb, p.rows, p.cols))
	}
	if len(kernelA) != ka*kb {
		panic(fmt.Sprintf("fft: kernel A length %d != %d*%d", len(kernelA), ka, kb))
	}
	if kernelB != nil && len(kernelB) != ka*kb {
		panic(fmt.Sprintf("fft: kernel B length %d != %d*%d", len(kernelB), ka, kb))
	}
	outRows, outCols := p.OutDims(ka, kb)
	if subCols <= 0 || subCols > outCols {
		panic(fmt.Sprintf("fft: harvest width %d outside valid output width %d", subCols, outCols))
	}
	checkSubStride(len(dstA), outRows, subCols, rowStrideA, colStrideA, "A")
	if kernelB != nil {
		checkSubStride(len(dstB), outRows, subCols, rowStrideB, colStrideB, "B")
	}
	correlations.Add(1)

	scr := p.scratch.Get().(*CMatrix)
	clear(scr.Data)
	// Pack the pair as one complex kernel c = a + i·b.
	for r := 0; r < ka; r++ {
		row := scr.Row(r)
		ra := kernelA[r*kb : (r+1)*kb]
		if kernelB == nil {
			for c, v := range ra {
				row[c] = complex(v, 0)
			}
		} else {
			rb := kernelB[r*kb : (r+1)*kb]
			for c, v := range ra {
				row[c] = complex(v, rb[c])
			}
		}
	}
	// Rows ka..pr-1 are zero: their row transforms are skipped exactly.
	transform2DPartial(scr, false, ka)

	// G[w] = D[w]·C[−w], the combined correlation spectrum of both
	// kernels (see the type comment). Computed in place by visiting each
	// conjugate index pair (w, −w) once and writing both slots before
	// either is re-read.
	spec, data := p.spec, scr.Data
	pr, pc := p.pr, p.pc
	rmask, cmask := pr-1, pc-1
	for r := 0; r < pr; r++ {
		base := r * pc
		base2 := ((pr - r) & rmask) * pc
		for c := 0; c < pc; c++ {
			i := base + c
			j := base2 + ((pc - c) & cmask)
			if i > j {
				continue
			}
			if i == j {
				data[i] *= spec[i]
				continue
			}
			ci, cj := data[i], data[j]
			data[i] = spec[i] * cj
			data[j] = spec[j] * ci
		}
	}

	transform2D(scr, true)
	// Valid-region extraction: correlation a is the real plane,
	// correlation b the imaginary plane. Rows are read contiguously and
	// written through the caller's strides, stopping at subCols.
	for r := 0; r < outRows; r++ {
		row := scr.Data[r*pc : r*pc+subCols]
		baseA := r * rowStrideA
		for c, v := range row {
			dstA[baseA+c*colStrideA] = real(v)
		}
		if kernelB != nil {
			baseB := r * rowStrideB
			for c, v := range row {
				dstB[baseB+c*colStrideB] = imag(v)
			}
		}
	}
	p.scratch.Put(scr)
}

// CorrelateValid is the single-kernel convenience wrapper around
// CorrelatePairValid, returning a freshly allocated contiguous plane.
func (p *Plan2D) CorrelateValid(kernel []float64, ka, kb int) []float64 {
	outRows, outCols := p.OutDims(ka, kb)
	out := make([]float64, outRows*outCols)
	p.CorrelatePairValid(kernel, nil, ka, kb, out, 1, nil, 0)
	return out
}

func checkSubStride(length, outRows, subCols, rowStride, colStride int, which string) {
	if rowStride <= 0 || colStride <= 0 {
		panic(fmt.Sprintf("fft: non-positive strides (%d,%d) for output %s",
			rowStride, colStride, which))
	}
	if length < (outRows-1)*rowStride+(subCols-1)*colStride+1 {
		panic(fmt.Sprintf("fft: output %s length %d too short for %dx%d positions at strides (%d,%d)",
			which, length, outRows, subCols, rowStride, colStride))
	}
}
