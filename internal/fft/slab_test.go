package fft

import (
	"math"
	"math/rand/v2"
	"testing"
)

// A slab plan must be bit-identical to a plan built over an explicitly
// copied (and zero-extended) slab: the incremental pool-maintenance
// path's byte-identity guarantee rests on exactly this equivalence.
func TestSlabPlanMatchesCopiedSlabBitwise(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 31))
	const n, fullCols = 9, 23
	data := randSlice(rng, n*fullCols)
	const ka, kb = 3, 4
	kern := randSlice(rng, ka*kb)

	cases := []struct{ c0, slabCols int }{
		{0, fullCols}, // degenerate: the whole table
		{0, 8},        // leading slab
		{5, 8},        // interior slab
		{16, 8},       // tail slab, one zero-extended column
		{20, 8},       // tail slab, mostly zero-extended
		{22, 8},       // one real column
		{7, kb},       // narrowest slab the kernel fits
		{fullCols - 1, kb},
	}
	for _, c := range cases {
		slab := NewPlan2DSlab(data, n, fullCols, c.c0, c.slabCols)

		// Reference: copy the slab out by hand, zero-extending.
		copied := make([]float64, n*c.slabCols)
		for r := 0; r < n; r++ {
			for j := 0; j < c.slabCols; j++ {
				if c.c0+j < fullCols {
					copied[r*c.slabCols+j] = data[r*fullCols+c.c0+j]
				}
			}
		}
		ref := NewPlan2D(copied, n, c.slabCols)

		got := slab.CorrelateValid(kern, ka, kb)
		want := ref.CorrelateValid(kern, ka, kb)
		if len(got) != len(want) {
			t.Fatalf("c0=%d slabCols=%d: output lengths %d vs %d", c.c0, c.slabCols, len(got), len(want))
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("c0=%d slabCols=%d: bit mismatch at %d: %v vs %v",
					c.c0, c.slabCols, i, got[i], want[i])
			}
		}
	}
}

// The restricted harvest must reproduce the full harvest bit for bit on
// the columns it keeps: the FFT round trip is shared, only the write
// loop differs.
func TestCorrelateSubHarvestMatchesFullBitwise(t *testing.T) {
	rng := rand.New(rand.NewPCG(32, 32))
	const n, m, ka, kb = 11, 29, 4, 5
	data := randSlice(rng, n*m)
	kernA := randSlice(rng, ka*kb)
	kernB := randSlice(rng, ka*kb)

	p := NewPlan2D(data, n, m)
	outRows, outCols := p.OutDims(ka, kb)

	fullA := make([]float64, outRows*outCols)
	fullB := make([]float64, outRows*outCols)
	p.CorrelatePairValid(kernA, kernB, ka, kb, fullA, 1, fullB, 1)

	for _, subCols := range []int{1, 3, outCols} {
		// Harvest into a strided lane layout: column stride 3, rows packed
		// at subCols*3 apart, mimicking a plane-set lane write-through.
		const cs = 3
		subA := make([]float64, outRows*subCols*cs)
		subB := make([]float64, outRows*subCols*cs)
		p.CorrelatePairValidSub(kernA, kernB, ka, kb, subCols,
			subA, subCols*cs, cs, subB, subCols*cs, cs)
		for r := 0; r < outRows; r++ {
			for c := 0; c < subCols; c++ {
				ga, wa := subA[r*subCols*cs+c*cs], fullA[r*outCols+c]
				gb, wb := subB[r*subCols*cs+c*cs], fullB[r*outCols+c]
				if math.Float64bits(ga) != math.Float64bits(wa) {
					t.Fatalf("subCols=%d: A mismatch at (%d,%d): %v vs %v", subCols, r, c, ga, wa)
				}
				if math.Float64bits(gb) != math.Float64bits(wb) {
					t.Fatalf("subCols=%d: B mismatch at (%d,%d): %v vs %v", subCols, r, c, gb, wb)
				}
			}
		}
	}
}

// Every CorrelatePairValid-family call counts exactly once, whether it
// carries one kernel or a packed pair — the unit the incremental-append
// savings criterion is measured in.
func TestCorrelationCountPerCall(t *testing.T) {
	rng := rand.New(rand.NewPCG(33, 33))
	const n, m, ka, kb = 8, 8, 2, 2
	p := NewPlan2D(randSlice(rng, n*m), n, m)
	kernA := randSlice(rng, ka*kb)
	kernB := randSlice(rng, ka*kb)
	outRows, outCols := p.OutDims(ka, kb)
	dst := make([]float64, outRows*outCols)
	dst2 := make([]float64, outRows*outCols)

	before := CorrelationCount()
	p.CorrelatePairValid(kernA, nil, ka, kb, dst, 1, nil, 0)
	if got := CorrelationCount() - before; got != 1 {
		t.Fatalf("single-kernel call counted %d correlations, want 1", got)
	}
	before = CorrelationCount()
	p.CorrelatePairValid(kernA, kernB, ka, kb, dst, 1, dst2, 1)
	if got := CorrelationCount() - before; got != 1 {
		t.Fatalf("packed-pair call counted %d correlations, want 1", got)
	}
	before = CorrelationCount()
	p.CorrelatePairValidSub(kernA, nil, ka, kb, 1, dst, 1, 1, nil, 0, 0)
	if got := CorrelationCount() - before; got != 1 {
		t.Fatalf("sub-harvest call counted %d correlations, want 1", got)
	}
}

func TestSlabAndSubPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(34, 34))
	const n, m = 6, 10
	data := randSlice(rng, n*m)
	p := NewPlan2D(data, n, m)
	kern := randSlice(rng, 2*2)
	dst := make([]float64, 5*9)

	for name, fn := range map[string]func(){
		"slab start past table": func() { NewPlan2DSlab(data, n, m, m, 4) },
		"negative slab start":   func() { NewPlan2DSlab(data, n, m, -1, 4) },
		"zero slab width":       func() { NewPlan2DSlab(data, n, m, 0, 0) },
		"bad data length":       func() { NewPlan2DSlab(data[:5], n, m, 0, 4) },
		"zero harvest width":    func() { p.CorrelatePairValidSub(kern, nil, 2, 2, 0, dst, 9, 1, nil, 0, 0) },
		"harvest past valid":    func() { p.CorrelatePairValidSub(kern, nil, 2, 2, 10, dst, 10, 1, nil, 0, 0) },
		"short sub dst":         func() { p.CorrelatePairValidSub(kern, nil, 2, 2, 9, dst[:10], 9, 1, nil, 0, 0) },
		"zero col stride":       func() { p.CorrelatePairValidSub(kern, nil, 2, 2, 9, dst, 9, 0, nil, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
