// Package fft provides the Fourier machinery behind Theorem 3 of the
// paper: computing the dot product of one random matrix with *every*
// fixed-size subrectangle of a data table is a 2D cross-correlation, which
// costs O(N log M) in the Fourier domain instead of O(N·M) naively.
//
// The package implements an iterative radix-2 complex FFT with cached
// twiddle tables, 2D transforms, and real-input 2D cross-correlation /
// convolution returning only the "valid" region (positions where the
// kernel lies fully inside the data).
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// NextPow2 returns the smallest power of two >= n, with NextPow2(0) == 1.
// It panics on negative input.
func NextPow2(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("fft: NextPow2 of negative %d", n))
	}
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// twiddles caches the first-half roots of unity exp(-2πi·k/n) per size.
var twiddles sync.Map // int -> []complex128

func twiddleTable(n int) []complex128 {
	if t, ok := twiddles.Load(n); ok {
		return t.([]complex128)
	}
	tab := make([]complex128, n/2)
	for k := range tab {
		ang := -2 * math.Pi * float64(k) / float64(n)
		tab[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	actual, _ := twiddles.LoadOrStore(n, tab)
	return actual.([]complex128)
}

// FFT performs an in-place forward transform of data, whose length must be
// a power of two (panic otherwise — the caller owns padding decisions).
func FFT(data []complex128) {
	transform(data, false)
}

// IFFT performs an in-place inverse transform (including the 1/n scaling),
// with the same power-of-two length requirement as FFT.
func IFFT(data []complex128) {
	transform(data, true)
	scale := complex(1/float64(len(data)), 0)
	for i := range data {
		data[i] *= scale
	}
}

func transform(data []complex128, inverse bool) {
	n := len(data)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	if n == 1 {
		return
	}
	bitReverse(data)
	tab := twiddleTable(n)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tab[k*step]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				i, j := start+k, start+k+half
				t := data[j] * w
				data[j] = data[i] - t
				data[i] += t
			}
		}
	}
}

func bitReverse(data []complex128) {
	n := len(data)
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			data[i], data[j] = data[j], data[i]
		}
	}
}

// CMatrix is a dense row-major complex matrix used for 2D transforms.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// NewCMatrix allocates a zeroed rows×cols complex matrix.
func NewCMatrix(rows, cols int) *CMatrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("fft: NewCMatrix(%d, %d) with non-positive dims", rows, cols))
	}
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns the element at row r, column c.
func (m *CMatrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *CMatrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *CMatrix) Row(r int) []complex128 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// FFT2D transforms m in place. Both dimensions must be powers of two.
func FFT2D(m *CMatrix) { transform2D(m, false) }

// IFFT2D inverse-transforms m in place (with scaling).
func IFFT2D(m *CMatrix) { transform2D(m, true) }

func transform2D(m *CMatrix, inverse bool) {
	if !IsPow2(m.Rows) || !IsPow2(m.Cols) {
		panic(fmt.Sprintf("fft: 2D dims %dx%d not powers of two", m.Rows, m.Cols))
	}
	run := FFT
	if inverse {
		run = IFFT
	}
	for r := 0; r < m.Rows; r++ {
		run(m.Row(r))
	}
	col := make([]complex128, m.Rows)
	for c := 0; c < m.Cols; c++ {
		for r := 0; r < m.Rows; r++ {
			col[r] = m.Data[r*m.Cols+c]
		}
		run(col)
		for r := 0; r < m.Rows; r++ {
			m.Data[r*m.Cols+c] = col[r]
		}
	}
}

// CrossCorrelateValid computes, for every position (i, j) at which the
// ka×kb kernel fits entirely inside the n×m data, the dot product
//
//	out[i][j] = Σ_{u<ka, v<kb} data[i+u][j+v] · kernel[u][v]
//
// returning a (n-ka+1)×(m-kb+1) row-major result. This is exactly the
// "sketch entry for every subtable position" operation of Theorem 3.
// data and kernel are row-major with the given dimensions; the kernel must
// not exceed the data in either dimension.
func CrossCorrelateValid(data []float64, n, m int, kernel []float64, ka, kb int) []float64 {
	checkDims(data, n, m, kernel, ka, kb)
	pr, pc := NextPow2(n), NextPow2(m)
	d := NewCMatrix(pr, pc)
	for r := 0; r < n; r++ {
		row := d.Row(r)
		src := data[r*m : (r+1)*m]
		for c, v := range src {
			row[c] = complex(v, 0)
		}
	}
	k := NewCMatrix(pr, pc)
	for r := 0; r < ka; r++ {
		row := k.Row(r)
		src := kernel[r*kb : (r+1)*kb]
		for c, v := range src {
			row[c] = complex(v, 0)
		}
	}
	FFT2D(d)
	FFT2D(k)
	for i := range d.Data {
		kc := k.Data[i]
		d.Data[i] *= complex(real(kc), -imag(kc)) // multiply by conjugate => correlation
	}
	IFFT2D(d)
	outRows, outCols := n-ka+1, m-kb+1
	out := make([]float64, outRows*outCols)
	for r := 0; r < outRows; r++ {
		row := d.Row(r)
		for c := 0; c < outCols; c++ {
			out[r*outCols+c] = real(row[c])
		}
	}
	return out
}

// CrossCorrelateValidNaive is the O(N·M) reference implementation of
// CrossCorrelateValid, used for verification and as the paper's
// "straightforward" baseline in benchmarks.
func CrossCorrelateValidNaive(data []float64, n, m int, kernel []float64, ka, kb int) []float64 {
	checkDims(data, n, m, kernel, ka, kb)
	outRows, outCols := n-ka+1, m-kb+1
	out := make([]float64, outRows*outCols)
	for i := 0; i < outRows; i++ {
		for j := 0; j < outCols; j++ {
			var sum float64
			for u := 0; u < ka; u++ {
				drow := data[(i+u)*m+j:]
				krow := kernel[u*kb : (u+1)*kb]
				for v, kv := range krow {
					sum += drow[v] * kv
				}
			}
			out[i*outCols+j] = sum
		}
	}
	return out
}

// ConvolveFull computes the full linear convolution of two real sequences,
// of length len(a)+len(b)-1, via FFT. Exposed for the transform baselines
// and for testing the 1D path in isolation.
func ConvolveFull(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("fft: ConvolveFull with empty input")
	}
	outLen := len(a) + len(b) - 1
	p := NextPow2(outLen)
	fa := make([]complex128, p)
	fb := make([]complex128, p)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	FFT(fa)
	FFT(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

func checkDims(data []float64, n, m int, kernel []float64, ka, kb int) {
	if n <= 0 || m <= 0 || ka <= 0 || kb <= 0 {
		panic(fmt.Sprintf("fft: non-positive dims data %dx%d kernel %dx%d", n, m, ka, kb))
	}
	if len(data) != n*m {
		panic(fmt.Sprintf("fft: data length %d != %d*%d", len(data), n, m))
	}
	if len(kernel) != ka*kb {
		panic(fmt.Sprintf("fft: kernel length %d != %d*%d", len(kernel), ka, kb))
	}
	if ka > n || kb > m {
		panic(fmt.Sprintf("fft: kernel %dx%d exceeds data %dx%d", ka, kb, n, m))
	}
}
