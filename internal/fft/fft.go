// Package fft provides the Fourier machinery behind Theorem 3 of the
// paper: computing the dot product of one random matrix with *every*
// fixed-size subrectangle of a data table is a 2D cross-correlation, which
// costs O(N log M) in the Fourier domain instead of O(N·M) naively.
//
// The package implements an iterative radix-2 complex FFT with cached
// twiddle tables, 2D transforms, and real-input 2D cross-correlation /
// convolution returning only the "valid" region (positions where the
// kernel lies fully inside the data).
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// NextPow2 returns the smallest power of two >= n, with NextPow2(0) == 1.
// It panics on negative input.
func NextPow2(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("fft: NextPow2 of negative %d", n))
	}
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// twiddles caches the first-half roots of unity exp(-2πi·k/n) per size.
var twiddles sync.Map // int -> []complex128

func twiddleTable(n int) []complex128 {
	if t, ok := twiddles.Load(n); ok {
		return t.([]complex128)
	}
	tab := make([]complex128, n/2)
	for k := range tab {
		ang := -2 * math.Pi * float64(k) / float64(n)
		tab[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	actual, _ := twiddles.LoadOrStore(n, tab)
	return actual.([]complex128)
}

// FFT performs an in-place forward transform of data, whose length must be
// a power of two (panic otherwise — the caller owns padding decisions).
func FFT(data []complex128) {
	transform(data, false)
}

// IFFT performs an in-place inverse transform (including the 1/n scaling),
// with the same power-of-two length requirement as FFT.
func IFFT(data []complex128) {
	transform(data, true)
	scale := complex(1/float64(len(data)), 0)
	for i := range data {
		data[i] *= scale
	}
}

func transform(data []complex128, inverse bool) {
	n := len(data)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	if n == 1 {
		return
	}
	bitReverse(data)
	tab := twiddleTable(n)
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := tab[k*step]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				i, j := start+k, start+k+half
				t := data[j] * w
				data[j] = data[i] - t
				data[i] += t
			}
		}
	}
}

func bitReverse(data []complex128) {
	n := len(data)
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			data[i], data[j] = data[j], data[i]
		}
	}
}

// CMatrix is a dense row-major complex matrix used for 2D transforms.
type CMatrix struct {
	Rows, Cols int
	Data       []complex128 // len == Rows*Cols, row-major
}

// NewCMatrix allocates a zeroed rows×cols complex matrix.
func NewCMatrix(rows, cols int) *CMatrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("fft: NewCMatrix(%d, %d) with non-positive dims", rows, cols))
	}
	return &CMatrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns the element at row r, column c.
func (m *CMatrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *CMatrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *CMatrix) Row(r int) []complex128 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// FFT2D transforms m in place. Both dimensions must be powers of two.
func FFT2D(m *CMatrix) { transform2D(m, false) }

// IFFT2D inverse-transforms m in place (with scaling).
func IFFT2D(m *CMatrix) { transform2D(m, true) }

func transform2D(m *CMatrix, inverse bool) {
	transform2DPartial(m, inverse, m.Rows)
}

// transform2DPartial is transform2D that runs row transforms only on the
// first nonzeroRows rows. Callers must guarantee every later row is
// all-zero (their transform is the zero row, so skipping it is exact) —
// this is how kernel transforms avoid paying for the padding rows.
func transform2DPartial(m *CMatrix, inverse bool, nonzeroRows int) {
	if !IsPow2(m.Rows) || !IsPow2(m.Cols) {
		panic(fmt.Sprintf("fft: 2D dims %dx%d not powers of two", m.Rows, m.Cols))
	}
	if nonzeroRows < 0 || nonzeroRows > m.Rows {
		panic(fmt.Sprintf("fft: nonzeroRows %d outside [0, %d]", nonzeroRows, m.Rows))
	}
	run := FFT
	if inverse {
		run = IFFT
		nonzeroRows = m.Rows // inverse inputs are dense spectra
	}
	for r := 0; r < nonzeroRows; r++ {
		run(m.Row(r))
	}
	transformColumns(m, inverse)
}

// colBlockElems bounds the column-block working set of transformColumns:
// rows × block complex128s are kept hot across all butterfly stages, so
// the slab should fit comfortably in L2 (2^14 elements = 256 KiB).
const colBlockElems = 1 << 14

// transformColumns runs the column-dimension FFTs of a 2D transform. The
// seed implementation gathered one column at a time into a scratch vector
// — a fully strided pass repeated Cols times. Here the butterflies operate
// on row segments directly (contiguous memory), cache-blocked over groups
// of columns so a full rows×block slab stays resident across every stage.
// Each column sees exactly the same butterfly order, twiddles and final
// scaling as a 1D transform, so results are bit-identical to the
// column-at-a-time formulation.
func transformColumns(m *CMatrix, inverse bool) {
	n, w := m.Rows, m.Cols
	if n == 1 {
		return
	}
	bitReverseRows(m)
	tab := twiddleTable(n)
	block := colBlockElems / n
	if block < 4 {
		block = 4
	}
	for c0 := 0; c0 < w; c0 += block {
		c1 := c0 + block
		if c1 > w {
			c1 = w
		}
		for size := 2; size <= n; size <<= 1 {
			half := size >> 1
			step := n / size
			for start := 0; start < n; start += size {
				for k := 0; k < half; k++ {
					wv := tab[k*step]
					if inverse {
						wv = complex(real(wv), -imag(wv))
					}
					ri, rj := start+k, start+k+half
					rowI := m.Data[ri*w+c0 : ri*w+c1]
					rowJ := m.Data[rj*w+c0 : rj*w+c1 : rj*w+c1]
					for x := range rowJ {
						t := rowJ[x] * wv
						rowJ[x] = rowI[x] - t
						rowI[x] += t
					}
				}
			}
		}
		if inverse {
			scale := complex(1/float64(n), 0)
			for r := 0; r < n; r++ {
				seg := m.Data[r*w+c0 : r*w+c1]
				for x := range seg {
					seg[x] *= scale
				}
			}
		}
	}
}

// bitReverseRows applies the bit-reversal permutation to whole rows — the
// column-dimension analogue of bitReverse.
func bitReverseRows(m *CMatrix) {
	n := m.Rows
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			ri, rj := m.Row(i), m.Row(j)
			for c := range ri {
				ri[c], rj[c] = rj[c], ri[c]
			}
		}
	}
}

// CrossCorrelateValid computes, for every position (i, j) at which the
// ka×kb kernel fits entirely inside the n×m data, the dot product
//
//	out[i][j] = Σ_{u<ka, v<kb} data[i+u][j+v] · kernel[u][v]
//
// returning a (n-ka+1)×(m-kb+1) row-major result. This is exactly the
// "sketch entry for every subtable position" operation of Theorem 3.
// data and kernel are row-major with the given dimensions; the kernel must
// not exceed the data in either dimension.
func CrossCorrelateValid(data []float64, n, m int, kernel []float64, ka, kb int) []float64 {
	checkDims(data, n, m, kernel, ka, kb)
	out := make([]float64, (n-ka+1)*(m-kb+1))
	NewPlan2D(data, n, m).CorrelatePairValid(kernel, nil, ka, kb, out, 1, nil, 0)
	return out
}

// CrossCorrelateValidUnplanned is the pre-Plan2D implementation: every
// call pads and forward-transforms both operands from scratch with two
// full complex FFTs. Kept as the benchmark baseline for the planned
// engine and as an independent cross-check implementation in tests.
func CrossCorrelateValidUnplanned(data []float64, n, m int, kernel []float64, ka, kb int) []float64 {
	checkDims(data, n, m, kernel, ka, kb)
	pr, pc := NextPow2(n), NextPow2(m)
	d := NewCMatrix(pr, pc)
	for r := 0; r < n; r++ {
		row := d.Row(r)
		src := data[r*m : (r+1)*m]
		for c, v := range src {
			row[c] = complex(v, 0)
		}
	}
	k := NewCMatrix(pr, pc)
	for r := 0; r < ka; r++ {
		row := k.Row(r)
		src := kernel[r*kb : (r+1)*kb]
		for c, v := range src {
			row[c] = complex(v, 0)
		}
	}
	FFT2D(d)
	FFT2D(k)
	for i := range d.Data {
		kc := k.Data[i]
		d.Data[i] *= complex(real(kc), -imag(kc)) // multiply by conjugate => correlation
	}
	IFFT2D(d)
	outRows, outCols := n-ka+1, m-kb+1
	out := make([]float64, outRows*outCols)
	for r := 0; r < outRows; r++ {
		row := d.Row(r)
		for c := 0; c < outCols; c++ {
			out[r*outCols+c] = real(row[c])
		}
	}
	return out
}

// CrossCorrelateValidNaive is the O(N·M) reference implementation of
// CrossCorrelateValid, used for verification and as the paper's
// "straightforward" baseline in benchmarks.
func CrossCorrelateValidNaive(data []float64, n, m int, kernel []float64, ka, kb int) []float64 {
	checkDims(data, n, m, kernel, ka, kb)
	outRows, outCols := n-ka+1, m-kb+1
	out := make([]float64, outRows*outCols)
	for i := 0; i < outRows; i++ {
		for j := 0; j < outCols; j++ {
			var sum float64
			for u := 0; u < ka; u++ {
				drow := data[(i+u)*m+j:]
				krow := kernel[u*kb : (u+1)*kb]
				for v, kv := range krow {
					sum += drow[v] * kv
				}
			}
			out[i*outCols+j] = sum
		}
	}
	return out
}

// convBufs recycles the single packed scratch vector ConvolveFull needs;
// convolution-heavy callers (the transform baselines) loop tightly enough
// that the per-call buffer allocation showed up in profiles.
var convBufs sync.Pool

// ConvolveFull computes the full linear convolution of two real sequences,
// of length len(a)+len(b)-1, via FFT. Exposed for the transform baselines
// and for testing the 1D path in isolation.
//
// Both inputs are real, so they are packed into one complex vector
// c = a + i·b and transformed together: one forward FFT instead of two.
// The spectra are recovered from the conjugate-symmetric halves,
// A[w] = (C[w] + conj(C[−w]))/2 and B[w] = (C[w] − conj(C[−w]))/(2i),
// multiplied pairwise in place, and inverted with a single IFFT.
func ConvolveFull(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("fft: ConvolveFull with empty input")
	}
	outLen := len(a) + len(b) - 1
	p := NextPow2(outLen)
	var buf []complex128
	if c, ok := convBufs.Get().(*[]complex128); ok && cap(*c) >= p {
		buf = (*c)[:p]
		clear(buf)
	} else {
		buf = make([]complex128, p)
	}
	for i, v := range a {
		buf[i] = complex(v, 0)
	}
	for i, v := range b {
		buf[i] += complex(0, v)
	}
	FFT(buf)
	// Unpack A and B at each conjugate pair (w, −w) and replace both slots
	// with the product spectrum A·B before either is overwritten.
	mask := p - 1
	for w := 0; w <= p/2; w++ {
		w2 := (p - w) & mask
		cw, cw2 := buf[w], buf[w2]
		aw := (cw + complex(real(cw2), -imag(cw2))) * complex(0.5, 0)
		bw := (cw - complex(real(cw2), -imag(cw2))) * complex(0, -0.5)
		if w == w2 {
			buf[w] = aw * bw
			continue
		}
		aw2 := (cw2 + complex(real(cw), -imag(cw))) * complex(0.5, 0)
		bw2 := (cw2 - complex(real(cw), -imag(cw))) * complex(0, -0.5)
		buf[w] = aw * bw
		buf[w2] = aw2 * bw2
	}
	IFFT(buf)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(buf[i])
	}
	convBufs.Put(&buf)
	return out
}

func checkDims(data []float64, n, m int, kernel []float64, ka, kb int) {
	if n <= 0 || m <= 0 || ka <= 0 || kb <= 0 {
		panic(fmt.Sprintf("fft: non-positive dims data %dx%d kernel %dx%d", n, m, ka, kb))
	}
	if len(data) != n*m {
		panic(fmt.Sprintf("fft: data length %d != %d*%d", len(data), n, m))
	}
	if len(kernel) != ka*kb {
		panic(fmt.Sprintf("fft: kernel length %d != %d*%d", len(kernel), ka, kb))
	}
	if ka > n || kb > m {
		panic(fmt.Sprintf("fft: kernel %dx%d exceeds data %dx%d", ka, kb, n, m))
	}
}
