package fft

import (
	"math"
	"math/cmplx"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 127: 128, 128: 128, 129: 256}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestNextPow2PanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NextPow2(-1)
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 1000} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}

// dftNaive is the O(n²) reference DFT.
func dftNaive(in []complex128) []complex128 {
	n := len(in)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			sum += in[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = sum
	}
	return out
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		in := make([]complex128, n)
		for i := range in {
			in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := dftNaive(in)
		got := append([]complex128(nil), in...)
		FFT(got)
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-8*float64(n) {
				t.Fatalf("n=%d: FFT[%d] = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	for _, n := range []int{1, 2, 8, 128, 1024} {
		in := make([]complex128, n)
		for i := range in {
			in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		got := append([]complex128(nil), in...)
		FFT(got)
		IFFT(got)
		for i := range got {
			if cmplx.Abs(got[i]-in[i]) > 1e-10*float64(n) {
				t.Fatalf("n=%d: roundtrip[%d] = %v, want %v", n, i, got[i], in[i])
			}
		}
	}
}

func TestFFTPanicsNonPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 3))
}

func TestFFTLinearity(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	const n = 64
	a := make([]complex128, n)
	b := make([]complex128, n)
	combo := make([]complex128, n)
	alpha := complex(2.5, -1)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), 0)
		b[i] = complex(rng.NormFloat64(), 0)
		combo[i] = alpha*a[i] + b[i]
	}
	FFT(a)
	FFT(b)
	FFT(combo)
	for i := range combo {
		want := alpha*a[i] + b[i]
		if cmplx.Abs(combo[i]-want) > 1e-9 {
			t.Fatalf("linearity violated at %d: %v vs %v", i, combo[i], want)
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	const n = 256
	in := make([]complex128, n)
	var timeEnergy float64
	for i := range in {
		in[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timeEnergy += real(in[i])*real(in[i]) + imag(in[i])*imag(in[i])
	}
	FFT(in)
	var freqEnergy float64
	for _, v := range in {
		freqEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	freqEnergy /= n
	if math.Abs(timeEnergy-freqEnergy)/timeEnergy > 1e-10 {
		t.Errorf("Parseval violated: time %v vs freq %v", timeEnergy, freqEnergy)
	}
}

func TestFFTImpulse(t *testing.T) {
	// FFT of a unit impulse is all ones.
	in := make([]complex128, 16)
	in[0] = 1
	FFT(in)
	for i, v := range in {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v, want 1", i, v)
		}
	}
}

func TestCMatrixAccessors(t *testing.T) {
	m := NewCMatrix(2, 3)
	m.Set(1, 2, complex(7, 0))
	if m.At(1, 2) != complex(7, 0) {
		t.Error("Set/At mismatch")
	}
	if len(m.Row(1)) != 3 {
		t.Error("Row length wrong")
	}
	if m.Row(1)[2] != complex(7, 0) {
		t.Error("Row aliasing broken")
	}
}

func TestNewCMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCMatrix(0, 4)
}

func TestFFT2DRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	m := NewCMatrix(8, 16)
	orig := make([]complex128, len(m.Data))
	for i := range m.Data {
		m.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = m.Data[i]
	}
	FFT2D(m)
	IFFT2D(m)
	for i := range m.Data {
		if cmplx.Abs(m.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("2D roundtrip[%d] = %v, want %v", i, m.Data[i], orig[i])
		}
	}
}

func TestFFT2DSeparability(t *testing.T) {
	// 2D FFT of an outer product is the outer product of 1D FFTs.
	rng := rand.New(rand.NewPCG(6, 6))
	const r, c = 8, 8
	rowVec := make([]complex128, c)
	colVec := make([]complex128, r)
	for i := range rowVec {
		rowVec[i] = complex(rng.NormFloat64(), 0)
	}
	for i := range colVec {
		colVec[i] = complex(rng.NormFloat64(), 0)
	}
	m := NewCMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, colVec[i]*rowVec[j])
		}
	}
	FFT2D(m)
	fr := append([]complex128(nil), rowVec...)
	fc := append([]complex128(nil), colVec...)
	FFT(fr)
	FFT(fc)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			want := fc[i] * fr[j]
			if cmplx.Abs(m.At(i, j)-want) > 1e-8 {
				t.Fatalf("separability at (%d,%d): %v vs %v", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestCrossCorrelateValidTiny(t *testing.T) {
	// 2x3 data, 2x2 kernel -> 1x2 output computed by hand.
	data := []float64{
		1, 2, 3,
		4, 5, 6,
	}
	kernel := []float64{
		1, 0,
		0, 1,
	}
	// out[0][0] = 1*1 + 5*1 = 6; out[0][1] = 2*1 + 6*1 = 8
	want := []float64{6, 8}
	got := CrossCorrelateValid(data, 2, 3, kernel, 2, 2)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestCrossCorrelateMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	cases := []struct{ n, m, ka, kb int }{
		{4, 4, 2, 2},
		{8, 8, 8, 8},   // kernel == data: single dot product
		{16, 8, 3, 5},  // non-square everything
		{9, 13, 4, 4},  // non-power-of-two data
		{32, 32, 1, 1}, // scalar kernel
		{5, 31, 5, 2},  // kernel spans full height
	}
	for _, c := range cases {
		data := randSlice(rng, c.n*c.m)
		kernel := randSlice(rng, c.ka*c.kb)
		fast := CrossCorrelateValid(data, c.n, c.m, kernel, c.ka, c.kb)
		slow := CrossCorrelateValidNaive(data, c.n, c.m, kernel, c.ka, c.kb)
		if len(fast) != len(slow) {
			t.Fatalf("%+v: len %d vs %d", c, len(fast), len(slow))
		}
		for i := range fast {
			if math.Abs(fast[i]-slow[i]) > 1e-7 {
				t.Fatalf("%+v: out[%d] = %v vs naive %v", c, i, fast[i], slow[i])
			}
		}
	}
}

func TestCrossCorrelatePanics(t *testing.T) {
	cases := []func(){
		func() { CrossCorrelateValid(nil, 0, 0, nil, 0, 0) },
		func() { CrossCorrelateValid(make([]float64, 4), 2, 2, make([]float64, 9), 3, 3) }, // kernel too big
		func() { CrossCorrelateValid(make([]float64, 3), 2, 2, make([]float64, 1), 1, 1) }, // bad data len
		func() { CrossCorrelateValid(make([]float64, 4), 2, 2, make([]float64, 2), 1, 1) }, // bad kernel len
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestConvolveFull(t *testing.T) {
	// [1,2,3] * [4,5] = [4, 13, 22, 15]
	got := ConvolveFull([]float64{1, 2, 3}, []float64{4, 5})
	want := []float64{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestConvolveFullCommutative(t *testing.T) {
	f := func(a, b []float64) bool {
		if len(a) == 0 || len(b) == 0 || len(a) > 64 || len(b) > 64 {
			return true
		}
		for _, v := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true
			}
		}
		ab := ConvolveFull(a, b)
		ba := ConvolveFull(b, a)
		for i := range ab {
			if math.Abs(ab[i]-ba[i]) > 1e-6*(1+math.Abs(ab[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: correlation with an all-ones kernel equals the sliding-window sum.
func TestCrossCorrelateOnesKernelIsWindowSum(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	const n, m, ka, kb = 10, 12, 3, 4
	data := randSlice(rng, n*m)
	kernel := make([]float64, ka*kb)
	for i := range kernel {
		kernel[i] = 1
	}
	got := CrossCorrelateValid(data, n, m, kernel, ka, kb)
	outCols := m - kb + 1
	for i := 0; i <= n-ka; i++ {
		for j := 0; j <= m-kb; j++ {
			var sum float64
			for u := 0; u < ka; u++ {
				for v := 0; v < kb; v++ {
					sum += data[(i+u)*m+j+v]
				}
			}
			if math.Abs(got[i*outCols+j]-sum) > 1e-8 {
				t.Fatalf("window sum at (%d,%d): %v vs %v", i, j, got[i*outCols+j], sum)
			}
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}
