package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/table"
)

// TrafficConfig parameterizes the synthetic router-traffic table of the
// paper's second motivating application: rows are destination hosts
// (grouped into address blocks that share a diurnal profile), columns are
// time buckets, and cells hold forwarded byte counts.
type TrafficConfig struct {
	Hosts         int // rows; grouped into blocks of BlockSize
	Days          int
	BucketsPerDay int // 0 picks 96 (15-minute buckets)
	BlockSize     int // hosts per address block; 0 picks 16
	Seed          uint64
	FlashProb     float64 // probability a cell is a flash-crowd spike; 0 picks 0.001, negative disables
	FlashFactor   float64 // spike multiplier; 0 picks 20
}

func (c *TrafficConfig) fill() error {
	if c.Hosts <= 0 || c.Days <= 0 {
		return fmt.Errorf("workload: non-positive traffic dims (%d hosts, %d days)", c.Hosts, c.Days)
	}
	if c.BucketsPerDay == 0 {
		c.BucketsPerDay = 96
	}
	if c.BucketsPerDay <= 0 {
		return fmt.Errorf("workload: non-positive buckets per day %d", c.BucketsPerDay)
	}
	if c.BlockSize == 0 {
		c.BlockSize = 16
	}
	if c.BlockSize <= 0 || c.BlockSize > c.Hosts {
		return fmt.Errorf("workload: block size %d for %d hosts", c.BlockSize, c.Hosts)
	}
	if c.FlashProb == 0 {
		c.FlashProb = 0.001
	}
	if c.FlashProb < 0 {
		c.FlashProb = 0
	}
	if c.FlashFactor == 0 {
		c.FlashFactor = 20
	}
	if c.FlashFactor < 1 {
		return fmt.Errorf("workload: flash factor %v below 1", c.FlashFactor)
	}
	return nil
}

// Traffic generates the synthetic host×time traffic table: each block of
// hosts shares a diurnal sine profile with a block-specific phase, each
// host has a lognormal base level, and occasional flash-crowd spikes
// multiply single cells.
func Traffic(cfg TrafficConfig) (*table.Table, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xf10e))
	t := table.New(cfg.Hosts, cfg.Days*cfg.BucketsPerDay)
	for h := 0; h < cfg.Hosts; h++ {
		block := h / cfg.BlockSize
		phase := float64(block%8) / 8 * 2 * math.Pi
		level := 100 * math.Exp(rng.NormFloat64()*0.5)
		row := t.Row(h)
		for x := range row {
			tt := float64(x%cfg.BucketsPerDay) / float64(cfg.BucketsPerDay) * 2 * math.Pi
			diurnal := 1 + 0.8*math.Sin(tt-phase)
			v := level * diurnal * (1 + 0.2*rng.NormFloat64())
			if cfg.FlashProb > 0 && rng.Float64() < cfg.FlashProb {
				v *= cfg.FlashFactor
			}
			if v < 0 {
				v = 0
			}
			row[x] = v
		}
	}
	return t, nil
}
