package workload

import (
	"math"
	"testing"

	"repro/internal/table"
)

func TestCallVolumeDims(t *testing.T) {
	tb, meta, err := CallVolume(CallVolumeConfig{Stations: 64, Days: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 64 || tb.Cols() != 2*BucketsPerDay {
		t.Fatalf("dims %dx%d", tb.Rows(), tb.Cols())
	}
	if len(meta.Kinds) != 64 || len(meta.Shift) != 64 {
		t.Fatal("meta lengths wrong")
	}
	if len(meta.Centers) < 2 {
		t.Fatalf("expected >= 2 pop centers, got %d", len(meta.Centers))
	}
}

func TestCallVolumeErrors(t *testing.T) {
	if _, _, err := CallVolume(CallVolumeConfig{Stations: 0, Days: 1}); err == nil {
		t.Error("expected dims error")
	}
	if _, _, err := CallVolume(CallVolumeConfig{Stations: 4, Days: 1, PopCenters: 10}); err == nil {
		t.Error("expected centers error")
	}
}

func TestCallVolumeNonNegative(t *testing.T) {
	tb, _, err := CallVolume(CallVolumeConfig{Stations: 32, Days: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tb.Data() {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("invalid value %v", v)
		}
	}
}

func TestCallVolumeDiurnalShape(t *testing.T) {
	// Night traffic must be far below business-hours traffic, and urban
	// stations must be much busier than rural ones during the day.
	tb, meta, err := CallVolume(CallVolumeConfig{
		Stations: 64, Days: 1, Seed: 3, MaxShiftBuckets: -1, NoiseFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var urbanRow, ruralRow = -1, -1
	for s, k := range meta.Kinds {
		if k == KindUrban && urbanRow == -1 {
			urbanRow = s
		}
		if k == KindRural && ruralRow == -1 {
			ruralRow = s
		}
	}
	if urbanRow == -1 || ruralRow == -1 {
		t.Fatalf("missing kinds: urban %d rural %d (kinds %v)", urbanRow, ruralRow, meta.Kinds)
	}
	night := tb.At(urbanRow, 3*6) // 3am
	noon := tb.At(urbanRow, 12*6) // noon
	if noon < 5*night {
		t.Errorf("urban noon %v not >> night %v", noon, night)
	}
	ruralNoon := tb.At(ruralRow, 12*6)
	if noon < 3*ruralNoon {
		t.Errorf("urban noon %v not >> rural noon %v", noon, ruralNoon)
	}
}

func TestCallVolumeTimeShift(t *testing.T) {
	// With the coast shift enabled, the last station's business day starts
	// later than the first station's.
	tb, meta, err := CallVolume(CallVolumeConfig{
		Stations: 128, Days: 1, Seed: 4, PopCenters: 2, NoiseFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if meta.Shift[0] != 0 || meta.Shift[127] != 18 {
		t.Fatalf("shift endpoints %d, %d", meta.Shift[0], meta.Shift[127])
	}
	// Find rise time for first and last population centers: the first
	// bucket after the overnight quiet period (5am absolute, quiet on both
	// coasts) where the value exceeds half the daily max.
	riseBucket := func(s int) int {
		row := tb.Row(s)
		var max float64
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		for x := 5 * 6; x < len(row); x++ {
			if row[x] > max/2 {
				return x
			}
		}
		return -1
	}
	first, last := meta.Centers[0], meta.Centers[len(meta.Centers)-1]
	rf, rl := riseBucket(first), riseBucket(last)
	if rl <= rf {
		t.Errorf("western center rises at %d, not after eastern %d", rl, rf)
	}
}

func TestCallVolumeDeterministic(t *testing.T) {
	a, _, _ := CallVolume(CallVolumeConfig{Stations: 16, Days: 1, Seed: 9})
	b, _, _ := CallVolume(CallVolumeConfig{Stations: 16, Days: 1, Seed: 9})
	if !table.EqualApprox(a, b, 0) {
		t.Error("same seed produced different tables")
	}
	c, _, _ := CallVolume(CallVolumeConfig{Stations: 16, Days: 1, Seed: 10})
	if table.EqualApprox(a, c, 0) {
		t.Error("different seeds produced identical tables")
	}
}

func TestSixRegionsBands(t *testing.T) {
	d, err := NewSixRegions(SixRegionsConfig{Rows: 64, Cols: 32, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Bands: 16, 16, 16, 8, 4, 4 rows.
	wantEnds := [6]int{16, 32, 48, 56, 60, 64}
	if d.BandEnd != wantEnds {
		t.Fatalf("BandEnd = %v, want %v", d.BandEnd, wantEnds)
	}
	if d.RegionOfRow(0) != 0 || d.RegionOfRow(15) != 0 || d.RegionOfRow(16) != 1 ||
		d.RegionOfRow(59) != 4 || d.RegionOfRow(63) != 5 {
		t.Error("RegionOfRow misassigns")
	}
}

func TestSixRegionsErrors(t *testing.T) {
	if _, err := NewSixRegions(SixRegionsConfig{Rows: 0, Cols: 4}); err == nil {
		t.Error("expected dims error")
	}
	if _, err := NewSixRegions(SixRegionsConfig{Rows: 20, Cols: 4}); err == nil {
		t.Error("expected divisibility error")
	}
}

func TestSixRegionsMeansSeparated(t *testing.T) {
	d, err := NewSixRegions(SixRegionsConfig{Rows: 64, Cols: 256, Seed: 2, OutlierFrac: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Per-band empirical means must be close to the configured means and
	// strictly increasing.
	start := 0
	for i, end := range d.BandEnd {
		var sum float64
		var n int
		for r := start; r < end; r++ {
			for _, v := range d.Table.Row(r) {
				sum += v
				n++
			}
		}
		mean := sum / float64(n)
		if math.Abs(mean-d.Means[i]) > 200 {
			t.Errorf("band %d mean %v, want ~%v", i, mean, d.Means[i])
		}
		start = end
	}
}

func TestSixRegionsOutliersPresent(t *testing.T) {
	clean, _ := NewSixRegions(SixRegionsConfig{Rows: 64, Cols: 64, Seed: 3, OutlierFrac: -1})
	dirty, _ := NewSixRegions(SixRegionsConfig{Rows: 64, Cols: 64, Seed: 3, OutlierFrac: 0.01})
	countExtreme := func(t_ *table.Table) int {
		n := 0
		for _, v := range t_.Data() {
			if v > 40000 || v < 5000 {
				n++
			}
		}
		return n
	}
	if countExtreme(clean.Table) != 0 {
		t.Error("clean dataset has extreme values")
	}
	got := countExtreme(dirty.Table)
	// ~1% of 4096 = ~41; outliers can overwrite the same cell or fall in
	// plausible mid-range for high-mean bands, so accept a broad range.
	if got < 15 || got > 60 {
		t.Errorf("outlier count %d outside expected range", got)
	}
}

func TestSixRegionsTileLabels(t *testing.T) {
	d, _ := NewSixRegions(SixRegionsConfig{Rows: 64, Cols: 64, Seed: 4})
	g, err := table.NewGrid(64, 64, 4, 4) // 4 divides every band height
	if err != nil {
		t.Fatal(err)
	}
	labels, err := d.TileLabels(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != g.NumTiles() {
		t.Fatalf("label count %d, want %d", len(labels), g.NumTiles())
	}
	// Counts must follow the band proportions: 16 tile rows, band heights
	// in tile rows: 4,4,4,2,1,1 × 16 tile cols.
	counts := make([]int, NumRegions)
	for _, l := range labels {
		counts[l]++
	}
	want := []int{64, 64, 64, 32, 16, 16}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("region %d tile count %d, want %d", i, counts[i], want[i])
		}
	}
}

func TestSixRegionsTileLabelsStraddleError(t *testing.T) {
	d, _ := NewSixRegions(SixRegionsConfig{Rows: 64, Cols: 64, Seed: 5})
	g, _ := table.NewGrid(64, 64, 24, 4) // 24 straddles the 16-row band edge
	if _, err := d.TileLabels(g); err == nil {
		t.Error("expected straddle error")
	}
}

func TestRandom(t *testing.T) {
	tb := Random(8, 8, 2.0, 7)
	if tb.Rows() != 8 || tb.Cols() != 8 {
		t.Fatal("dims wrong")
	}
	var sum float64
	for _, v := range tb.Data() {
		sum += v
	}
	if math.Abs(sum/64) > 2 {
		t.Errorf("mean %v implausible for N(0,2)", sum/64)
	}
}

func TestRandomPairs(t *testing.T) {
	g, _ := table.NewGrid(16, 16, 4, 4)
	pairs := RandomPairs(g, 100, 11)
	if len(pairs) != 100 {
		t.Fatal("wrong count")
	}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatal("pair with identical tiles")
		}
		if p[0] < 0 || p[0] >= 16 || p[1] < 0 || p[1] >= 16 {
			t.Fatal("tile index out of range")
		}
	}
}

func TestRandomTriples(t *testing.T) {
	g, _ := table.NewGrid(16, 16, 4, 4)
	triples := RandomTriples(g, 100, 13)
	for _, tr := range triples {
		if tr[0] == tr[1] || tr[0] == tr[2] || tr[1] == tr[2] {
			t.Fatalf("degenerate triple %v", tr)
		}
	}
}

func TestHourOf(t *testing.T) {
	if h := hourOf(0); h != 0 {
		t.Errorf("hourOf(0) = %v", h)
	}
	if h := hourOf(72); h != 12 {
		t.Errorf("hourOf(72) = %v, want 12", h)
	}
	if h := hourOf(-6); h != 23 {
		t.Errorf("hourOf(-6) = %v, want 23 (wraps)", h)
	}
}

func TestBusinessCurveShape(t *testing.T) {
	night := businessCurve(6 * 3)    // 3am
	noon := businessCurve(6 * 12)    // noon
	evening := businessCurve(6 * 23) // 11pm
	if night >= 0.1 {
		t.Errorf("night activity %v too high", night)
	}
	if noon != 1 {
		t.Errorf("noon activity %v, want 1", noon)
	}
	if evening >= noon || evening <= night/2 {
		t.Errorf("evening activity %v should sit between noon and deep night", evening)
	}
}

func TestCallVolumeWeekendCycle(t *testing.T) {
	tb, meta, err := CallVolume(CallVolumeConfig{
		Stations: 32, Days: 7, Seed: 6, Weekend: true, NoiseFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pick an urban station and compare noon traffic Monday vs Saturday.
	urban := -1
	for s, k := range meta.Kinds {
		if k == KindUrban {
			urban = s
			break
		}
	}
	if urban == -1 {
		t.Fatal("no urban station")
	}
	noon := 12 * 6
	monday := tb.At(urban, 0*BucketsPerDay+noon)
	saturday := tb.At(urban, 5*BucketsPerDay+noon)
	if saturday > monday/2 {
		t.Errorf("weekend noon %v not clearly below weekday noon %v", saturday, monday)
	}
	// Without the weekend flag all days look alike.
	flat, _, err := CallVolume(CallVolumeConfig{
		Stations: 32, Days: 7, Seed: 6, NoiseFrac: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	mondayF := flat.At(urban, 0*BucketsPerDay+noon)
	saturdayF := flat.At(urban, 5*BucketsPerDay+noon)
	if saturdayF != mondayF {
		t.Errorf("weekday cycle leaked without Weekend: %v vs %v", saturdayF, mondayF)
	}
}
