package workload

import (
	"math"
	"testing"

	"repro/internal/table"
)

func TestTrafficDims(t *testing.T) {
	tb, err := Traffic(TrafficConfig{Hosts: 32, Days: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 32 || tb.Cols() != 2*96 {
		t.Fatalf("dims %dx%d", tb.Rows(), tb.Cols())
	}
}

func TestTrafficErrors(t *testing.T) {
	cases := []TrafficConfig{
		{Hosts: 0, Days: 1},
		{Hosts: 4, Days: 0},
		{Hosts: 4, Days: 1, BucketsPerDay: -1},
		{Hosts: 4, Days: 1, BlockSize: 8},
		{Hosts: 4, Days: 1, BlockSize: -1},
		{Hosts: 4, Days: 1, FlashFactor: 0.5},
	}
	for i, cfg := range cases {
		if _, err := Traffic(cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
}

func TestTrafficNonNegativeAndVaried(t *testing.T) {
	tb, err := Traffic(TrafficConfig{Hosts: 16, Days: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[float64]bool{}
	for _, v := range tb.Data() {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("invalid cell %v", v)
		}
		distinct[v] = true
	}
	if len(distinct) < tb.Size()/2 {
		t.Errorf("suspiciously few distinct values: %d of %d", len(distinct), tb.Size())
	}
}

func TestTrafficBlocksShareProfile(t *testing.T) {
	// Hosts in the same block must correlate in time far more than hosts
	// in phase-opposed blocks.
	tb, err := Traffic(TrafficConfig{Hosts: 80, Days: 1, BlockSize: 16, Seed: 3, FlashProb: -1})
	if err != nil {
		t.Fatal(err)
	}
	corr := func(a, b []float64) float64 {
		var ma, mb float64
		for i := range a {
			ma += a[i]
			mb += b[i]
		}
		ma /= float64(len(a))
		mb /= float64(len(b))
		var num, da, db float64
		for i := range a {
			x, y := a[i]-ma, b[i]-mb
			num += x * y
			da += x * x
			db += y * y
		}
		return num / math.Sqrt(da*db)
	}
	sameBlock := corr(tb.Row(0), tb.Row(1))        // block 0
	oppositeBlock := corr(tb.Row(0), tb.Row(4*16)) // block 4: phase shift π
	if sameBlock < 0.5 {
		t.Errorf("same-block correlation %v too low", sameBlock)
	}
	if oppositeBlock > sameBlock-0.5 {
		t.Errorf("opposite-block correlation %v not far below same-block %v",
			oppositeBlock, sameBlock)
	}
}

func TestTrafficFlashCrowds(t *testing.T) {
	quiet, _ := Traffic(TrafficConfig{Hosts: 32, Days: 2, Seed: 4, FlashProb: -1})
	spiky, _ := Traffic(TrafficConfig{Hosts: 32, Days: 2, Seed: 4, FlashProb: 0.01, FlashFactor: 50})
	if quiet.Summarize().Max*10 > spiky.Summarize().Max {
		t.Errorf("flash crowds not visible: quiet max %v, spiky max %v",
			quiet.Summarize().Max, spiky.Summarize().Max)
	}
}

func TestTrafficDeterministic(t *testing.T) {
	a, err := Traffic(TrafficConfig{Hosts: 16, Days: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Traffic(TrafficConfig{Hosts: 16, Days: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(a, b, 0) {
		t.Error("same seed produced different traffic")
	}
}
