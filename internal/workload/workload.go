// Package workload generates the synthetic datasets used by the
// experiments, substituting for the proprietary AT&T data stores the paper
// measured (see DESIGN.md "Substitutions").
//
// Two generators matter:
//
//   - CallVolume mimics the paper's real dataset: call volumes from
//     collection stations spatially ordered by zip code (rows) over
//     10-minute buckets (columns), with population-center hot spots,
//     business-hours diurnal curves, commuter rush-hour flanks, an
//     East/West time-zone phase shift, and multiplicative noise. The
//     qualitative features Figure 5 depends on (vertical 9am–9pm bands,
//     metro cores flanked by weaker suburbs, a 3-hour coast shift) are all
//     present.
//
//   - SixRegions reproduces the synthetic dataset of Section 4.2: six
//     areas covering 1/4, 1/4, 1/4, 1/8, 1/16, 1/16 of the table, each
//     filled from a uniform distribution with a distinct mean in
//     [10000, 30000], then ~1% of values replaced by plausible outliers.
//     Ground-truth labels are exposed per tile for the Figure 4(b)
//     known-clustering experiment.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/table"
)

// BucketsPerDay is the paper's time resolution: 10-minute buckets.
const BucketsPerDay = 144

// StationKind classifies a station row in the call-volume model.
type StationKind int

const (
	// KindRural stations have low background traffic.
	KindRural StationKind = iota
	// KindUrban stations sit at a population center and carry heavy
	// all-day business traffic.
	KindUrban
	// KindSuburban stations flank a center with moderate traffic.
	KindSuburban
	// KindCommuter stations show strong morning/evening rush peaks.
	KindCommuter
)

// CallVolumeConfig parameterizes the synthetic call-volume table.
type CallVolumeConfig struct {
	Stations int // rows; must be positive
	Days     int // columns = Days * BucketsPerDay
	Seed     uint64
	// PopCenters is the number of metropolitan hot spots spread along the
	// station axis. 0 picks max(2, Stations/64).
	PopCenters int
	// MaxShiftBuckets is the time-zone phase shift between the first and
	// last station, in buckets. 0 picks 18 (3 hours of 10-minute buckets,
	// the paper's East/West coast difference). Negative disables.
	MaxShiftBuckets int
	// NoiseFrac is the multiplicative noise level (0.1 = ±10%). Negative
	// disables; 0 picks 0.1.
	NoiseFrac float64
	// Weekend enables a weekly cycle: days 5 and 6 of each 7-day week
	// carry damped business traffic (offices closed), adding the
	// day-of-week structure multi-week clustering picks up on.
	Weekend bool
}

func (c *CallVolumeConfig) fill() error {
	if c.Stations <= 0 || c.Days <= 0 {
		return fmt.Errorf("workload: non-positive call-volume dims (%d stations, %d days)", c.Stations, c.Days)
	}
	if c.PopCenters == 0 {
		c.PopCenters = c.Stations / 64
		if c.PopCenters < 2 {
			c.PopCenters = 2
		}
	}
	if c.PopCenters < 0 || c.PopCenters > c.Stations {
		return fmt.Errorf("workload: %d population centers for %d stations", c.PopCenters, c.Stations)
	}
	if c.MaxShiftBuckets == 0 {
		c.MaxShiftBuckets = 18
	}
	if c.MaxShiftBuckets < 0 {
		c.MaxShiftBuckets = 0
	}
	if c.NoiseFrac == 0 {
		c.NoiseFrac = 0.1
	}
	if c.NoiseFrac < 0 {
		c.NoiseFrac = 0
	}
	return nil
}

// CallVolumeMeta records the ground structure of a generated table, for
// tests and for interpreting Figure 5 renderings.
type CallVolumeMeta struct {
	Centers []int         // station index of each population center
	Kinds   []StationKind // per-station classification
	Shift   []int         // per-station phase shift in buckets
}

// CallVolume generates the synthetic station×time call-volume table.
func CallVolume(cfg CallVolumeConfig) (*table.Table, *CallVolumeMeta, error) {
	if err := cfg.fill(); err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xca11))
	nS := cfg.Stations
	nT := cfg.Days * BucketsPerDay

	// Place population centers roughly evenly with jitter.
	meta := &CallVolumeMeta{
		Centers: make([]int, cfg.PopCenters),
		Kinds:   make([]StationKind, nS),
		Shift:   make([]int, nS),
	}
	for i := range meta.Centers {
		base := (i*2 + 1) * nS / (2 * cfg.PopCenters)
		jitter := 0
		if span := nS / (4 * cfg.PopCenters); span > 0 {
			jitter = rng.IntN(2*span+1) - span
		}
		c := base + jitter
		if c < 0 {
			c = 0
		}
		if c >= nS {
			c = nS - 1
		}
		meta.Centers[i] = c
	}

	// Per-station intensity from distance to the nearest center, plus the
	// kind classification used by tests and the case study.
	urban := make([]float64, nS)    // business-hours plateau weight
	commuter := make([]float64, nS) // rush-hour peak weight
	background := make([]float64, nS)
	for s := 0; s < nS; s++ {
		dMin := math.Inf(1)
		for _, c := range meta.Centers {
			if d := math.Abs(float64(s - c)); d < dMin {
				dMin = d
			}
		}
		// Spatial profile widths scale with station density.
		coreW := math.Max(2, float64(nS)/(12*float64(cfg.PopCenters)))
		ringW := 3 * coreW
		urban[s] = 2400 * math.Exp(-dMin*dMin/(2*coreW*coreW))
		ring := math.Exp(-(dMin - 2*coreW) * (dMin - 2*coreW) / (2 * ringW * ringW))
		commuter[s] = 900 * ring
		background[s] = 30 + 20*rng.Float64()
		switch {
		case dMin <= coreW:
			meta.Kinds[s] = KindUrban
		case dMin <= 2.5*coreW:
			meta.Kinds[s] = KindSuburban
		case commuter[s] > 300:
			meta.Kinds[s] = KindCommuter
		default:
			meta.Kinds[s] = KindRural
		}
		if nS > 1 {
			meta.Shift[s] = cfg.MaxShiftBuckets * s / (nS - 1)
		}
	}

	t := table.New(nS, nT)
	for s := 0; s < nS; s++ {
		row := t.Row(s)
		shift := meta.Shift[s]
		for x := 0; x < nT; x++ {
			bucket := x % BucketsPerDay
			// Shift the local clock: a station in a later time zone sees
			// the business day start later on the shared absolute axis.
			local := bucket - shift
			weekday := 1.0
			if cfg.Weekend {
				if day := (x / BucketsPerDay) % 7; day >= 5 {
					weekday = 0.25 // offices closed: business traffic damped
				}
			}
			v := background[s] +
				weekday*urban[s]*businessCurve(local) +
				weekday*commuter[s]*rushCurve(local)
			if cfg.NoiseFrac > 0 {
				v *= 1 + cfg.NoiseFrac*rng.NormFloat64()
			}
			if v < 0 {
				v = 0
			}
			row[x] = v
		}
	}
	return t, meta, nil
}

// businessCurve is the 9am–9pm activity plateau in bucket units (paper:
// "access patterns in any area are almost identical from 9am till 9pm",
// negligible before 9am, dropping off gradually towards midnight).
func businessCurve(bucket int) float64 {
	h := hourOf(bucket)
	switch {
	case h < 7:
		return 0.02
	case h < 9:
		return 0.02 + (h-7)/2*0.9 // ramp up 7am–9am
	case h < 21:
		return 1.0 // plateau 9am–9pm
	default:
		return math.Max(0.02, 1.0-(h-21)/3*0.9) // decay 9pm–midnight
	}
}

// rushCurve peaks at the 7–9am and 4–6pm commuter rushes.
func rushCurve(bucket int) float64 {
	h := hourOf(bucket)
	am := math.Exp(-(h - 8) * (h - 8) / 1.2)
	pm := math.Exp(-(h - 17) * (h - 17) / 1.8)
	return am + pm
}

func hourOf(bucket int) float64 {
	b := bucket % BucketsPerDay
	if b < 0 {
		b += BucketsPerDay
	}
	return float64(b) / float64(BucketsPerDay) * 24
}

// sixFractions are the paper's area proportions.
var sixFractions = []float64{1.0 / 4, 1.0 / 4, 1.0 / 4, 1.0 / 8, 1.0 / 16, 1.0 / 16}

// NumRegions is the number of planted clusters in the SixRegions dataset.
const NumRegions = 6

// SixRegionsConfig parameterizes the planted-clustering dataset.
type SixRegionsConfig struct {
	Rows, Cols int // Rows must be divisible by 16 so the fractions are exact
	Seed       uint64
	// OutlierFrac is the fraction of cells replaced by outliers; 0 picks
	// the paper's 1%. Negative disables outliers.
	OutlierFrac float64
	// OutlierMag is the upper bound of "large" outlier values; 0 picks
	// 60000 (double the largest region mean). The paper's qualitative
	// regime is that a single outlier dominates a whole tile-pair L2
	// distance ("it adds the square of the difference"), i.e.
	// OutlierMag ≳ Δ·√N for band gap Δ and tile size N; callers running
	// scaled-down tiles should scale OutlierMag accordingly (see the
	// fig4b experiment).
	OutlierMag float64
}

// SixRegions holds the generated table plus ground truth.
type SixRegions struct {
	Table *table.Table
	// BandEnd[i] is the first row AFTER region i; region i spans rows
	// [BandEnd[i-1], BandEnd[i]).
	BandEnd [NumRegions]int
	// Means[i] is the uniform-distribution mean used for region i.
	Means [NumRegions]float64
}

// NewSixRegions generates the dataset of Section 4.2: horizontal bands
// with the paper's proportions, values uniform around six distinct means
// in [10000, 30000], and ~1% outliers that are "relatively large or small
// values that were still plausible".
func NewSixRegions(cfg SixRegionsConfig) (*SixRegions, error) {
	if cfg.Rows <= 0 || cfg.Cols <= 0 {
		return nil, fmt.Errorf("workload: non-positive dims %dx%d", cfg.Rows, cfg.Cols)
	}
	if cfg.Rows%16 != 0 {
		return nil, fmt.Errorf("workload: rows %d not divisible by 16 (needed for exact 1/16 bands)", cfg.Rows)
	}
	if cfg.OutlierFrac == 0 {
		cfg.OutlierFrac = 0.01
	}
	if cfg.OutlierFrac < 0 {
		cfg.OutlierFrac = 0
	}
	if cfg.OutlierMag == 0 {
		cfg.OutlierMag = 60000
	}
	if cfg.OutlierMag < 0 {
		return nil, fmt.Errorf("workload: negative outlier magnitude %v", cfg.OutlierMag)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x51_e9104))
	d := &SixRegions{}
	row := 0
	for i, f := range sixFractions {
		row += int(f * float64(cfg.Rows))
		d.BandEnd[i] = row
	}
	// Distinct means spread across [10000, 30000].
	for i := range d.Means {
		d.Means[i] = 10000 + 20000*float64(i)/float64(NumRegions-1)
	}
	const halfWidth = 1800 // uniform half-width; bands stay well separated
	t := table.New(cfg.Rows, cfg.Cols)
	for r := 0; r < cfg.Rows; r++ {
		region := d.RegionOfRow(r)
		mean := d.Means[region]
		rowData := t.Row(r)
		for c := range rowData {
			rowData[c] = mean + (2*rng.Float64()-1)*halfWidth
		}
	}
	// Outliers: relatively large or small values. "Large" spans
	// [0.75, 1.0]·OutlierMag; "small" sits near zero.
	if cfg.OutlierFrac > 0 {
		nOut := int(cfg.OutlierFrac * float64(cfg.Rows*cfg.Cols))
		data := t.Data()
		for i := 0; i < nOut; i++ {
			idx := rng.IntN(len(data))
			if rng.Float64() < 0.5 {
				data[idx] = (0.75 + 0.25*rng.Float64()) * cfg.OutlierMag
			} else {
				data[idx] = rng.Float64() * 2000 // small: near zero
			}
		}
	}
	d.Table = t
	return d, nil
}

// RegionOfRow returns the ground-truth region of a table row.
func (d *SixRegions) RegionOfRow(r int) int {
	for i, end := range d.BandEnd {
		if r < end {
			return i
		}
	}
	return NumRegions - 1
}

// TileLabels returns the ground-truth region of every tile of g, erroring
// if any tile straddles a region boundary (pick tile heights dividing
// Rows/16 to avoid that).
func (d *SixRegions) TileLabels(g *table.Grid) ([]int, error) {
	labels := make([]int, g.NumTiles())
	for i := range labels {
		rect := g.Rect(i)
		top := d.RegionOfRow(rect.R0)
		bottom := d.RegionOfRow(rect.R0 + rect.Rows - 1)
		if top != bottom {
			return nil, fmt.Errorf("workload: tile %d (%v) straddles regions %d and %d",
				i, rect, top, bottom)
		}
		labels[i] = top
	}
	return labels, nil
}

// Random returns a rows×cols table of N(0, scale) noise — the neutral
// input for micro-benchmarks and property tests.
func Random(rows, cols int, scale float64, seed uint64) *table.Table {
	rng := rand.New(rand.NewPCG(seed, 0x7ab1e))
	t := table.New(rows, cols)
	d := t.Data()
	for i := range d {
		d[i] = rng.NormFloat64() * scale
	}
	return t
}

// RandomPairs samples n pairs of distinct tile indices from a grid, the
// sampling scheme of the Figure 2 experiments ("20,000 randomly chosen
// pairs").
func RandomPairs(g *table.Grid, n int, seed uint64) [][2]int {
	rng := rand.New(rand.NewPCG(seed, 0x9a125))
	total := g.NumTiles()
	out := make([][2]int, n)
	for i := range out {
		a := rng.IntN(total)
		b := rng.IntN(total)
		for b == a && total > 1 {
			b = rng.IntN(total)
		}
		out[i] = [2]int{a, b}
	}
	return out
}

// RandomTriples samples n (x, y, z) tile index triples for the pairwise
// comparison correctness experiment (Definition 9).
func RandomTriples(g *table.Grid, n int, seed uint64) [][3]int {
	rng := rand.New(rand.NewPCG(seed, 0x7219_1e5))
	total := g.NumTiles()
	out := make([][3]int, n)
	for i := range out {
		x := rng.IntN(total)
		y := rng.IntN(total)
		z := rng.IntN(total)
		for y == x && total > 1 {
			y = rng.IntN(total)
		}
		for (z == x || z == y) && total > 2 {
			z = rng.IntN(total)
		}
		out[i] = [3]int{x, y, z}
	}
	return out
}
