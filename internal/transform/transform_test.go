package transform

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/lpnorm"
)

var l2 = lpnorm.MustP(2)

func TestNewReducerValidation(t *testing.T) {
	if _, err := NewReducer(DCT, 0, 1); err == nil {
		t.Error("n=0: expected error")
	}
	if _, err := NewReducer(DCT, 8, 0); err == nil {
		t.Error("m=0: expected error")
	}
	if _, err := NewReducer(DCT, 8, 9); err == nil {
		t.Error("m>n for DCT: expected error")
	}
	if _, err := NewReducer(DFT, 8, 5); err == nil {
		t.Error("m>n/2 for DFT: expected error")
	}
	if _, err := NewReducer(Haar, 8, 9); err == nil {
		t.Error("m>padded for Haar: expected error")
	}
	if _, err := NewReducer(Method(99), 8, 2); err == nil {
		t.Error("unknown method: expected error")
	}
	r, err := NewReducer(DFT, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if r.InputLen() != 10 || r.OutputLen() != 8 || r.Method() != DFT {
		t.Error("accessors wrong")
	}
}

func TestMethodString(t *testing.T) {
	if DFT.String() != "DFT" || DCT.String() != "DCT" || Haar.String() != "Haar" {
		t.Error("String names wrong")
	}
	if Method(42).String() == "" {
		t.Error("unknown method String empty")
	}
}

func TestDCTFullPreservesL2(t *testing.T) {
	// Orthonormal DCT with all coefficients preserves the L2 distance
	// exactly (Parseval).
	rng := rand.New(rand.NewPCG(1, 1))
	const n = 16
	r, err := NewReducer(DCT, n, n)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x, y := randVec(rng, n), randVec(rng, n)
		exact := l2.Dist(x, y)
		est := r.Dist(r.Reduce(x, nil), r.Reduce(y, nil))
		if math.Abs(est-exact) > 1e-9*(1+exact) {
			t.Fatalf("trial %d: DCT full dist %v, exact %v", trial, est, exact)
		}
	}
}

func TestHaarFullPreservesL2(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	const n = 16 // power of two: no padding effects
	r, err := NewReducer(Haar, n, n)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		x, y := randVec(rng, n), randVec(rng, n)
		exact := l2.Dist(x, y)
		est := r.Dist(r.Reduce(x, nil), r.Reduce(y, nil))
		if math.Abs(est-exact) > 1e-9*(1+exact) {
			t.Fatalf("trial %d: Haar full dist %v, exact %v", trial, est, exact)
		}
	}
}

func TestHaarPaddedFullPreservesL2(t *testing.T) {
	// Zero-padding to a power of two must not change distances when all
	// coefficients are kept.
	rng := rand.New(rand.NewPCG(3, 3))
	const n = 13
	r, err := NewReducer(Haar, n, 16)
	if err != nil {
		t.Fatal(err)
	}
	x, y := randVec(rng, n), randVec(rng, n)
	exact := l2.Dist(x, y)
	est := r.Dist(r.Reduce(x, nil), r.Reduce(y, nil))
	if math.Abs(est-exact) > 1e-9*(1+exact) {
		t.Fatalf("padded Haar dist %v, exact %v", est, exact)
	}
}

func TestTruncationNeverOverestimates(t *testing.T) {
	// Dropping orthonormal coefficients can only reduce the L2 distance
	// (for DFT the √2 correction makes this approximate, so allow slack).
	rng := rand.New(rand.NewPCG(4, 4))
	const n = 32
	for _, m := range []Method{DCT, Haar} {
		r, err := NewReducer(m, n, 8)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			x, y := randVec(rng, n), randVec(rng, n)
			exact := l2.Dist(x, y)
			est := r.Dist(r.Reduce(x, nil), r.Reduce(y, nil))
			if est > exact+1e-9 {
				t.Fatalf("%v trial %d: truncated dist %v exceeds exact %v", m, trial, est, exact)
			}
		}
	}
}

func TestDFTExactForLowFrequencySignals(t *testing.T) {
	// Signals whose energy lives entirely below bin m are estimated
	// exactly thanks to the √2 correction.
	const n = 32
	r, err := NewReducer(DFT, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(a1, a2, phase float64) []float64 {
		v := make([]float64, n)
		for i := range v {
			th := 2 * math.Pi * float64(i) / n
			v[i] = a1*math.Cos(th+phase) + a2*math.Sin(2*th)
		}
		return v
	}
	x := mk(3, 1, 0.3)
	y := mk(-1, 2, 0.3)
	exact := l2.Dist(x, y)
	est := r.Dist(r.Reduce(x, nil), r.Reduce(y, nil))
	if math.Abs(est-exact) > 1e-9*(1+exact) {
		t.Fatalf("DFT low-freq dist %v, exact %v", est, exact)
	}
}

func TestSmoothSignalsWellApproximated(t *testing.T) {
	// The classic energy-concentration argument: smooth signals keep most
	// energy in the first coefficients, so few coefficients suffice.
	rng := rand.New(rand.NewPCG(5, 5))
	const n = 64
	smooth := func() []float64 {
		v := make([]float64, n)
		a, b, c := rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		for i := range v {
			x := float64(i) / n
			v[i] = a + b*x + c*math.Sin(2*math.Pi*x)
		}
		return v
	}
	for _, m := range []Method{DFT, DCT, Haar} {
		keep := 8
		r, err := NewReducer(m, n, keep)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			x, y := smooth(), smooth()
			exact := l2.Dist(x, y)
			if exact < 1e-9 {
				continue
			}
			est := r.Dist(r.Reduce(x, nil), r.Reduce(y, nil))
			if rel := math.Abs(est-exact) / exact; rel > 0.15 {
				t.Errorf("%v trial %d: smooth-signal rel err %v", m, trial, rel)
			}
		}
	}
}

func TestReduceLinearity(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	const n = 16
	for _, m := range []Method{DFT, DCT, Haar} {
		r, err := NewReducer(m, n, 4)
		if err != nil {
			t.Fatal(err)
		}
		x, y := randVec(rng, n), randVec(rng, n)
		combo := make([]float64, n)
		for i := range combo {
			combo[i] = 2*x[i] - 3*y[i]
		}
		rx := r.Reduce(x, nil)
		ry := r.Reduce(y, nil)
		rc := r.Reduce(combo, nil)
		for i := range rc {
			want := 2*rx[i] - 3*ry[i]
			if math.Abs(rc[i]-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("%v: linearity violated at %d", m, i)
			}
		}
	}
}

func TestReducePanics(t *testing.T) {
	r, _ := NewReducer(DCT, 8, 4)
	assertPanics(t, "input len", func() { r.Reduce(make([]float64, 7), nil) })
	assertPanics(t, "dist len", func() { r.Dist(make([]float64, 3), make([]float64, 4)) })
}

// TestDFTFailsForL1 pins the paper's central criticism: truncated-DFT
// distance is an L2 construct and does not track L1 distances. Two pairs
// with very different L1 distances but matched L2 energy profiles get
// similar DFT estimates, while stable sketches (tested in core) track L1.
func TestDFTFailsForL1(t *testing.T) {
	const n = 64
	l1 := lpnorm.MustP(1)
	// x1/y1 differ by a spread-out difference (large L1, modest L2);
	// x2/y2 differ by one spike (small L1 for same L2 energy).
	diffSpread := make([]float64, n)
	for i := range diffSpread {
		diffSpread[i] = 1 // L1 = 64, L2 = 8
	}
	diffSpike := make([]float64, n)
	diffSpike[0] = 8 // L1 = 8, L2 = 8
	zero := make([]float64, n)
	r, err := NewReducer(DFT, n, 8)
	if err != nil {
		t.Fatal(err)
	}
	estSpread := r.Dist(r.Reduce(diffSpread, nil), r.Reduce(zero, nil))
	estSpike := r.Dist(r.Reduce(diffSpike, nil), r.Reduce(zero, nil))
	l1Spread := l1.Dist(diffSpread, zero)
	l1Spike := l1.Dist(diffSpike, zero)
	// The true L1 distances differ 8x; if DFT estimates tracked L1, their
	// ratio would too. They do not — both hover near the (equal) L2 value.
	trueRatio := l1Spread / l1Spike
	estRatio := estSpread / estSpike
	if estRatio > trueRatio/2 {
		t.Errorf("DFT unexpectedly tracks L1: est ratio %v vs true ratio %v", estRatio, trueRatio)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 3
	}
	return out
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
