// Package transform implements the classical dimensionality-reduction
// baselines the paper contrasts with stable sketches (Section 2): keeping
// the first coefficients of an orthonormal transform — Discrete Fourier,
// Discrete Cosine (DCT-II), or Haar wavelet — of each object.
//
// Because the transforms are orthonormal, the L2 distance between full
// coefficient vectors equals the L2 distance between the originals
// (Parseval), and truncation is the usual energy-concentration heuristic:
// good for smooth signals under L2, useless as an L1 estimator ("there is
// no equivalent result relating the L1 distance of transformed sequences
// to that of the original sequences"). The baselines experiment
// demonstrates exactly that failure.
package transform

import (
	"fmt"
	"math"

	"repro/internal/fft"
)

// Method selects the transform.
type Method int

const (
	// DFT keeps the first m complex Fourier coefficients (stored as 2m
	// floats, with the √2 real-signal energy correction on non-DC bins).
	DFT Method = iota
	// DCT keeps the first m DCT-II coefficients (orthonormal variant).
	DCT
	// Haar keeps the m coarsest coefficients of the orthonormal Haar
	// wavelet transform.
	Haar
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case DFT:
		return "DFT"
	case DCT:
		return "DCT"
	case Haar:
		return "Haar"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Reducer reduces length-n vectors to m transform coefficients.
type Reducer struct {
	method Method
	n      int // input length
	padded int // power-of-two working length (DFT, Haar)
	m      int // kept coefficients
}

// NewReducer validates and builds a reducer. Constraints: n ≥ 1 and
// 1 ≤ m ≤ limit, where limit is n for DCT, padded/2 for DFT (beyond that
// the conjugate-symmetric bins double-count energy) and padded for Haar.
func NewReducer(method Method, n, m int) (*Reducer, error) {
	if n < 1 {
		return nil, fmt.Errorf("transform: input length %d", n)
	}
	if m < 1 {
		return nil, fmt.Errorf("transform: kept coefficients %d", m)
	}
	padded := fft.NextPow2(n)
	var limit int
	switch method {
	case DFT:
		limit = padded / 2
		if limit == 0 {
			limit = 1
		}
	case DCT:
		limit = n
	case Haar:
		limit = padded
	default:
		return nil, fmt.Errorf("transform: unknown method %d", int(method))
	}
	if m > limit {
		return nil, fmt.Errorf("transform: m = %d exceeds limit %d for %v with n = %d",
			m, limit, method, n)
	}
	return &Reducer{method: method, n: n, padded: padded, m: m}, nil
}

// Method returns the reducer's transform.
func (r *Reducer) Method() Method { return r.method }

// InputLen returns the expected input vector length.
func (r *Reducer) InputLen() int { return r.n }

// OutputLen returns the reduced representation length in float64s
// (2m for DFT, m otherwise).
func (r *Reducer) OutputLen() int {
	if r.method == DFT {
		return 2 * r.m
	}
	return r.m
}

// Reduce computes the reduced representation of vec into dst (allocated
// if too small). Panics if len(vec) != InputLen().
func (r *Reducer) Reduce(vec, dst []float64) []float64 {
	if len(vec) != r.n {
		panic(fmt.Sprintf("transform: input length %d, want %d", len(vec), r.n))
	}
	out := r.OutputLen()
	if cap(dst) < out {
		dst = make([]float64, out)
	}
	dst = dst[:out]
	switch r.method {
	case DFT:
		r.reduceDFT(vec, dst)
	case DCT:
		r.reduceDCT(vec, dst)
	case Haar:
		r.reduceHaar(vec, dst)
	}
	return dst
}

func (r *Reducer) reduceDFT(vec, dst []float64) {
	buf := make([]complex128, r.padded)
	for i, v := range vec {
		buf[i] = complex(v, 0)
	}
	fft.FFT(buf)
	scale := 1 / math.Sqrt(float64(r.padded))
	sqrt2 := math.Sqrt2
	for k := 0; k < r.m; k++ {
		c := buf[k]
		s := scale
		if k > 0 {
			// Real input: bin k and padded-k are conjugate; weighting by
			// √2 accounts for the dropped mirror bin's equal energy.
			s *= sqrt2
		}
		dst[2*k] = real(c) * s
		dst[2*k+1] = imag(c) * s
	}
}

func (r *Reducer) reduceDCT(vec, dst []float64) {
	n := float64(r.n)
	for k := 0; k < r.m; k++ {
		var sum float64
		fk := float64(k)
		for j, v := range vec {
			sum += v * math.Cos(math.Pi*(float64(j)+0.5)*fk/n)
		}
		s := math.Sqrt(2 / n)
		if k == 0 {
			s = math.Sqrt(1 / n)
		}
		dst[k] = sum * s
	}
}

func (r *Reducer) reduceHaar(vec, dst []float64) {
	// Full orthonormal Haar transform on the zero-padded signal, emitted
	// coarsest-first: [approximation, detail level 1 (coarsest), ...].
	work := make([]float64, r.padded)
	copy(work, vec)
	coeffs := make([]float64, r.padded)
	writeEnd := r.padded
	length := r.padded
	inv := 1 / math.Sqrt2
	for length > 1 {
		half := length / 2
		next := make([]float64, half)
		details := make([]float64, half)
		for i := 0; i < half; i++ {
			a, b := work[2*i], work[2*i+1]
			next[i] = (a + b) * inv
			details[i] = (a - b) * inv
		}
		copy(coeffs[writeEnd-half:writeEnd], details)
		writeEnd -= half
		copy(work, next)
		length = half
	}
	coeffs[0] = work[0]
	copy(dst, coeffs[:r.m])
}

// Dist returns the L2 distance between two reduced representations — the
// baseline's estimate of the original L2 distance (exact when no energy
// was truncated, an underestimate otherwise).
func (r *Reducer) Dist(a, b []float64) float64 {
	if len(a) != r.OutputLen() || len(b) != r.OutputLen() {
		panic(fmt.Sprintf("transform: reduced lengths %d/%d, want %d",
			len(a), len(b), r.OutputLen()))
	}
	var sum float64
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
