package atomicio

import (
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faultinject"
)

func listDir(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.Name()
	}
	return names
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	for _, content := range []string{"first contents", "second contents"} {
		err := WriteFile(path, func(w io.Writer) error {
			_, err := io.WriteString(w, content)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("read %q, want %q", got, content)
		}
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("directory holds %v, want only the target", names)
	}
}

func TestWriteFileErrorLeavesOldIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := os.WriteFile(path, []byte("old snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFile(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, "half the new conte"); err != nil {
			return err
		}
		return faultinject.ErrInjected
	})
	if err != faultinject.ErrInjected {
		t.Fatalf("err = %v, want the write callback's error", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old snapshot" {
		t.Fatalf("target corrupted to %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("temp file leaked: %v", names)
	}
}

func TestWriteFileInjectedIOFault(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := os.WriteFile(path, []byte("old snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	TestWrapWriter = func(_ string, w io.Writer) io.Writer {
		return &faultinject.Writer{W: w, FailAt: 1, Short: true}
	}
	defer func() { TestWrapWriter = nil }()
	err := WriteFile(path, func(w io.Writer) error {
		_, err := w.Write([]byte("the new snapshot payload"))
		return err
	})
	if err != faultinject.ErrInjected {
		t.Fatalf("err = %v, want injected fault", err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "old snapshot" {
		t.Fatalf("target corrupted to %q", got)
	}
	if names := listDir(t, dir); len(names) != 1 {
		t.Fatalf("temp file leaked: %v", names)
	}
}

func TestIsTemp(t *testing.T) {
	for name, want := range map[string]bool{
		"snap.bin":            false,
		"snap.bin.tmp":        true,
		"snap.bin.tmp-123456": true,
		"manifest.json.tmp":   true,
		"tmpfile":             false,
	} {
		if got := IsTemp(name); got != want {
			t.Errorf("IsTemp(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestCleanTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"keep.bin", "keep.bin.tmp-777", "old.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Directories are never touched, even with a temp-looking name.
	if err := os.Mkdir(filepath.Join(dir, "sub.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	removed, err := CleanTemps(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 2 {
		t.Fatalf("removed %v, want the two stray temps", removed)
	}
	names := listDir(t, dir)
	if len(names) != 2 {
		t.Fatalf("left %v, want keep.bin and sub.tmp", names)
	}
}
