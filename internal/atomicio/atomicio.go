// Package atomicio provides crash-safe file replacement for the
// persistence layers (sketch snapshots, table-store day files and
// manifests). WriteFile streams the new contents to a temporary file in
// the destination directory, flushes it to stable storage, and renames it
// over the destination, so a reader — or a process restarting after a
// crash — observes either the complete old contents or the complete new
// contents, never a torn write.
package atomicio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// tempInfix appears in every temporary file WriteFile creates; stray
// files carrying it (from a write that crashed before its rename) are
// recognized by IsTemp and removed by CleanTemps.
const tempInfix = ".tmp-"

// TestWrapWriter, when non-nil, wraps the temporary file's writer inside
// WriteFile. It exists solely so tests can inject deterministic I/O
// faults (see internal/faultinject); production code must leave it nil.
var TestWrapWriter func(path string, w io.Writer) io.Writer

// IsTemp reports whether name looks like a temporary file left behind by
// an interrupted atomic write — either this package's ".tmp-" infix or
// the legacy ".tmp" suffix convention.
func IsTemp(name string) bool {
	return strings.Contains(name, tempInfix) || strings.HasSuffix(name, ".tmp")
}

// WriteFile atomically replaces path with whatever write produces. The
// payload is streamed to a temporary sibling file, fsynced, closed, and
// renamed over path; the containing directory is fsynced afterwards so
// the rename itself survives a crash. On any error the temporary file is
// removed and path is left untouched.
func WriteFile(path string, write func(w io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+tempInfix+"*")
	if err != nil {
		return fmt.Errorf("atomicio: creating temp for %s: %w", path, err)
	}
	tmp := f.Name()
	renamed := false
	defer func() {
		if !renamed {
			f.Close() // double-close after a successful Close is harmless
			os.Remove(tmp)
		}
	}()
	var w io.Writer = f
	if TestWrapWriter != nil {
		w = TestWrapWriter(path, f)
	}
	if err := write(w); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("atomicio: syncing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("atomicio: closing %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("atomicio: committing %s: %w", path, err)
	}
	renamed = true
	if err := syncDir(dir); err != nil {
		return err
	}
	return nil
}

// syncDir fsyncs a directory so a just-committed rename is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("atomicio: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("atomicio: syncing dir %s: %w", dir, err)
	}
	return nil
}

// CleanTemps removes stray temporary files in dir (non-recursively) and
// returns the names removed, in directory order. It is safe to call on a
// live directory: only names IsTemp recognizes are touched.
func CleanTemps(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("atomicio: %w", err)
	}
	var removed []string
	for _, e := range entries {
		if e.IsDir() || !IsTemp(e.Name()) {
			continue
		}
		if err := os.Remove(filepath.Join(dir, e.Name())); err != nil {
			return removed, fmt.Errorf("atomicio: removing stray temp: %w", err)
		}
		removed = append(removed, e.Name())
	}
	return removed, nil
}
