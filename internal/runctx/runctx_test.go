package runctx

import (
	"context"
	"errors"
	"syscall"
	"testing"
	"time"
)

func TestWithSignalsTimeout(t *testing.T) {
	ctx, stop := WithSignals(10 * time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("timeout never fired")
	}
	if err := ctx.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestWithSignalsNoTimeoutStaysLive(t *testing.T) {
	ctx, stop := WithSignals(0)
	if err := ctx.Err(); err != nil {
		t.Fatalf("fresh context already dead: %v", err)
	}
	stop()
	// After stop the registration is released; the context may or may not
	// be cancelled by stop itself, but Err must not report a deadline.
	if err := ctx.Err(); errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestWithSignalsCancelsOnSIGINT(t *testing.T) {
	ctx, stop := WithSignals(0)
	defer stop()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the context")
	}
	if err := ctx.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
