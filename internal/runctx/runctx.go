// Package runctx builds the root context of a CLI run: cancelled cleanly
// on SIGINT/SIGTERM and, optionally, after a -timeout duration. Every
// long-running command threads this context into the library's
// cancellable entry points (PoolOptions.Context, KMeansConfig.Context,
// Sketcher.AllPositionsCtx), so ^C aborts a pool build or clustering run
// promptly with no partial snapshot files left behind.
package runctx

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Hangup returns a channel delivering SIGHUP notifications — the
// conventional "reload your configuration" signal, which tabmine-serve
// maps to an atomic snapshot swap. The stop function releases the
// registration. The channel is buffered so a signal arriving while the
// receiver is mid-reload coalesces instead of being lost.
func Hangup() (<-chan os.Signal, func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGHUP)
	return ch, func() { signal.Stop(ch) }
}

// WithSignals returns a context cancelled on the first SIGINT or SIGTERM
// (a second signal falls back to the default kill behaviour, so a stuck
// run can still be terminated) and, when timeout > 0, after timeout.
// The returned stop function releases the signal registration and must
// be called when the run finishes.
func WithSignals(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() {
		cancel()
		stop()
	}
}
