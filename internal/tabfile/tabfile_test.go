package tabfile

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/table"
	"repro/internal/workload"
)

func TestBinaryRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		tb := workload.Random(13, 7, 100, 1)
		tb.Set(0, 0, 1e300) // huge but finite: non-finite cells are rejected on Read
		tb.Set(1, 1, -0.0)
		var buf bytes.Buffer
		if err := Write(&buf, tb, compress); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows() != 13 || got.Cols() != 7 {
			t.Fatalf("compress=%v: dims %dx%d", compress, got.Rows(), got.Cols())
		}
		for i, v := range got.Data() {
			if math.Float64bits(v) != math.Float64bits(tb.Data()[i]) {
				t.Fatalf("compress=%v: cell %d: %v != %v", compress, i, v, tb.Data()[i])
			}
		}
	}
}

func TestCompressionShrinksRedundantData(t *testing.T) {
	tb := table.New(64, 64) // all zeros: maximally compressible
	var plain, packed bytes.Buffer
	if err := Write(&plain, tb, false); err != nil {
		t.Fatal(err)
	}
	if err := Write(&packed, tb, true); err != nil {
		t.Fatal(err)
	}
	if packed.Len() >= plain.Len()/10 {
		t.Errorf("gzip body %d not much smaller than plain %d", packed.Len(), plain.Len())
	}
}

// TestNonFiniteRejected: NaN/±Inf cells must not flow silently into
// sketches — both readers reject them with table.ErrNonFinite.
func TestNonFiniteRejected(t *testing.T) {
	for name, bad := range map[string]float64{
		"NaN": math.NaN(), "+Inf": math.Inf(1), "-Inf": math.Inf(-1),
	} {
		tb := table.New(3, 3)
		tb.Set(1, 2, bad)
		for _, compress := range []bool{false, true} {
			var buf bytes.Buffer
			if err := Write(&buf, tb, compress); err != nil {
				t.Fatal(err)
			}
			_, err := Read(&buf)
			if !errors.Is(err, table.ErrNonFinite) {
				t.Errorf("%s compress=%v: Read err = %v, want ErrNonFinite", name, compress, err)
			}
		}
		csv := "1,2,3\n4," + strconv.FormatFloat(bad, 'g', -1, 64) + ",6\n"
		if _, err := ReadCSV(strings.NewReader(csv)); !errors.Is(err, table.ErrNonFinite) {
			t.Errorf("%s: ReadCSV err = %v, want ErrNonFinite", name, err)
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), make([]byte, 24)...),
		"truncated": {'T', 'A', 'B', 'F', 1},
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadRejectsBadVersionAndDims(t *testing.T) {
	tb := table.New(2, 2)
	var buf bytes.Buffer
	if err := Write(&buf, tb, false); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	badVersion := append([]byte(nil), data...)
	badVersion[4] = 99
	if _, err := Read(bytes.NewReader(badVersion)); err == nil {
		t.Error("bad version: expected error")
	}

	badDims := append([]byte(nil), data...)
	for i := 8; i < 16; i++ {
		badDims[i] = 0xff
	}
	if _, err := Read(bytes.NewReader(badDims)); err == nil {
		t.Error("huge dims: expected error")
	}

	truncated := data[:len(data)-8]
	if _, err := Read(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated body: expected error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.tabf")
	tb := workload.Random(5, 5, 10, 2)
	if err := WriteFile(path, tb, true); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(tb, got, 0) {
		t.Error("file roundtrip altered data")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file: expected error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb, _ := table.FromRows([][]float64{
		{1.5, -2, 3e10},
		{0, 0.001, -7},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(tb, got, 0) {
		t.Error("CSV roundtrip altered data")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged CSV: expected error")
	}
	if _, err := ReadCSV(strings.NewReader("1,notanumber\n")); err == nil {
		t.Error("non-numeric CSV: expected error")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV: expected error")
	}
}

// RowReader must stream exactly the rows Read would return, compressed
// or not, with the same non-finite hardening.
func TestRowReaderStreamsRows(t *testing.T) {
	for _, compress := range []bool{false, true} {
		tb := workload.Random(9, 5, 100, 3)
		var buf bytes.Buffer
		if err := Write(&buf, tb, compress); err != nil {
			t.Fatal(err)
		}
		rr, err := NewRowReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		rows, cols := rr.Dims()
		if rows != 9 || cols != 5 {
			t.Fatalf("compress=%v: dims %dx%d", compress, rows, cols)
		}
		for r := 0; r < rows; r++ {
			cells, err := rr.Next()
			if err != nil {
				t.Fatalf("compress=%v row %d: %v", compress, r, err)
			}
			for c, v := range cells {
				if math.Float64bits(v) != math.Float64bits(tb.At(r, c)) {
					t.Fatalf("compress=%v cell (%d,%d): %v != %v", compress, r, c, v, tb.At(r, c))
				}
			}
		}
		if _, err := rr.Next(); err == nil {
			t.Fatalf("compress=%v: Next past last row must return io.EOF", compress)
		}
		if err := rr.Close(); err != nil {
			t.Fatalf("compress=%v: Close: %v", compress, err)
		}
	}
}

func TestRowReaderRejectsNonFiniteAndTruncation(t *testing.T) {
	tb := table.New(3, 3)
	var buf bytes.Buffer
	if err := Write(&buf, tb, false); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Patch a NaN into the second row's payload.
	nan := make([]byte, 8)
	for i := range nan {
		nan[i] = 0xff
	}
	copy(raw[28+3*8:], nan)
	rr, err := NewRowReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr.Next(); err != nil {
		t.Fatalf("first row should be clean: %v", err)
	}
	if _, err := rr.Next(); !errors.Is(err, table.ErrNonFinite) {
		t.Fatalf("NaN row error = %v, want ErrNonFinite", err)
	}
	// Truncated payload: the failing row reports an error, not a panic.
	rr2, err := NewRowReader(bytes.NewReader(raw[:28+8]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rr2.Next(); err == nil {
		t.Fatal("truncated payload: expected error")
	}
}
