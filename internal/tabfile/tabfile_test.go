package tabfile

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/table"
	"repro/internal/workload"
)

func TestBinaryRoundTrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		tb := workload.Random(13, 7, 100, 1)
		tb.Set(0, 0, 1e300) // huge but finite: non-finite cells are rejected on Read
		tb.Set(1, 1, -0.0)
		var buf bytes.Buffer
		if err := Write(&buf, tb, compress); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows() != 13 || got.Cols() != 7 {
			t.Fatalf("compress=%v: dims %dx%d", compress, got.Rows(), got.Cols())
		}
		for i, v := range got.Data() {
			if math.Float64bits(v) != math.Float64bits(tb.Data()[i]) {
				t.Fatalf("compress=%v: cell %d: %v != %v", compress, i, v, tb.Data()[i])
			}
		}
	}
}

func TestCompressionShrinksRedundantData(t *testing.T) {
	tb := table.New(64, 64) // all zeros: maximally compressible
	var plain, packed bytes.Buffer
	if err := Write(&plain, tb, false); err != nil {
		t.Fatal(err)
	}
	if err := Write(&packed, tb, true); err != nil {
		t.Fatal(err)
	}
	if packed.Len() >= plain.Len()/10 {
		t.Errorf("gzip body %d not much smaller than plain %d", packed.Len(), plain.Len())
	}
}

// TestNonFiniteRejected: NaN/±Inf cells must not flow silently into
// sketches — both readers reject them with table.ErrNonFinite.
func TestNonFiniteRejected(t *testing.T) {
	for name, bad := range map[string]float64{
		"NaN": math.NaN(), "+Inf": math.Inf(1), "-Inf": math.Inf(-1),
	} {
		tb := table.New(3, 3)
		tb.Set(1, 2, bad)
		for _, compress := range []bool{false, true} {
			var buf bytes.Buffer
			if err := Write(&buf, tb, compress); err != nil {
				t.Fatal(err)
			}
			_, err := Read(&buf)
			if !errors.Is(err, table.ErrNonFinite) {
				t.Errorf("%s compress=%v: Read err = %v, want ErrNonFinite", name, compress, err)
			}
		}
		csv := "1,2,3\n4," + strconv.FormatFloat(bad, 'g', -1, 64) + ",6\n"
		if _, err := ReadCSV(strings.NewReader(csv)); !errors.Is(err, table.ErrNonFinite) {
			t.Errorf("%s: ReadCSV err = %v, want ErrNonFinite", name, err)
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("NOPE"), make([]byte, 24)...),
		"truncated": {'T', 'A', 'B', 'F', 1},
	}
	for name, data := range cases {
		if _, err := Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadRejectsBadVersionAndDims(t *testing.T) {
	tb := table.New(2, 2)
	var buf bytes.Buffer
	if err := Write(&buf, tb, false); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	badVersion := append([]byte(nil), data...)
	badVersion[4] = 99
	if _, err := Read(bytes.NewReader(badVersion)); err == nil {
		t.Error("bad version: expected error")
	}

	badDims := append([]byte(nil), data...)
	for i := 8; i < 16; i++ {
		badDims[i] = 0xff
	}
	if _, err := Read(bytes.NewReader(badDims)); err == nil {
		t.Error("huge dims: expected error")
	}

	truncated := data[:len(data)-8]
	if _, err := Read(bytes.NewReader(truncated)); err == nil {
		t.Error("truncated body: expected error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.tabf")
	tb := workload.Random(5, 5, 10, 2)
	if err := WriteFile(path, tb, true); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(tb, got, 0) {
		t.Error("file roundtrip altered data")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file: expected error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tb, _ := table.FromRows([][]float64{
		{1.5, -2, 3e10},
		{0, 0.001, -7},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(tb, got, 0) {
		t.Error("CSV roundtrip altered data")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("ragged CSV: expected error")
	}
	if _, err := ReadCSV(strings.NewReader("1,notanumber\n")); err == nil {
		t.Error("non-numeric CSV: expected error")
	}
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty CSV: expected error")
	}
}
