package tabfile

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/table"
)

// FuzzRead hardens the binary parser against corrupt input: any byte
// soup must either parse into a consistent table or return an error —
// never panic, never allocate absurdly.
func FuzzRead(f *testing.F) {
	// Seed corpus: valid files (both compressions), truncations, and
	// header mutations.
	tb := table.New(3, 4)
	for i, v := range []float64{1, -2, 3.5, 0, 1e300} {
		tb.Data()[i] = v
	}
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := Write(&buf, tb, compress); err != nil {
			f.Fatal(err)
		}
		valid := buf.Bytes()
		f.Add(valid)
		f.Add(valid[:len(valid)-3])
		f.Add(valid[:10])
		mutated := append([]byte(nil), valid...)
		mutated[5] ^= 0xff
		f.Add(mutated)
	}
	f.Add([]byte{})
	f.Add([]byte("TABF"))
	// A valid file carrying a NaN cell: must be rejected, not parsed.
	nan := table.New(1, 1)
	nan.Set(0, 0, math.NaN())
	var nanBuf bytes.Buffer
	if err := Write(&nanBuf, nan, false); err != nil {
		f.Fatal(err)
	}
	f.Add(nanBuf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got.Rows() <= 0 || got.Cols() <= 0 {
			t.Fatalf("parsed table with dims %dx%d", got.Rows(), got.Cols())
		}
		if len(got.Data()) != got.Rows()*got.Cols() {
			t.Fatalf("data length %d for %dx%d", len(got.Data()), got.Rows(), got.Cols())
		}
		if err := table.CheckFinite(got); err != nil {
			t.Fatalf("non-finite cell survived a successful load: %v", err)
		}
	})
}

// FuzzReadCSV does the same for the CSV importer.
func FuzzReadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("1.5e10,-2\n")
	f.Add("")
	f.Add("a,b\n")
	f.Add("1,2\n3\n")
	f.Add("NaN,Inf\n")
	f.Fuzz(func(t *testing.T, s string) {
		got, err := ReadCSV(bytes.NewReader([]byte(s)))
		if err != nil {
			return
		}
		if got.Rows() <= 0 || got.Cols() <= 0 {
			t.Fatalf("parsed CSV table with dims %dx%d", got.Rows(), got.Cols())
		}
		if err := table.CheckFinite(got); err != nil {
			t.Fatalf("non-finite cell survived a successful CSV load: %v", err)
		}
	})
}
