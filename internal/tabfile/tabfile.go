// Package tabfile reads and writes tabular datasets as flat files — the
// storage substrate of the paper's setting, where "tabular data is stored
// and processed in proprietary formats such as compressed flat files".
//
// Two encodings are provided:
//
//   - a compact binary format (magic "TABF", version, dimensions, then
//     row-major little-endian float64 cells, optionally gzip-compressed);
//   - CSV import/export for interoperability.
package tabfile

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"

	"repro/internal/atomicio"
	"repro/internal/table"
)

// magic identifies the binary format.
var magic = [4]byte{'T', 'A', 'B', 'F'}

const version = 1

// flags
const flagGzip = 1 << 0

// maxCells caps how large a table Read will allocate (2^31 cells = 16 GiB
// of float64), protecting against corrupt headers.
const maxCells = 1 << 31

// Write encodes t to w in the binary format, gzip-compressing the cell
// payload when compress is true.
func Write(w io.Writer, t *table.Table, compress bool) error {
	var flags uint32
	if compress {
		flags |= flagGzip
	}
	header := make([]byte, 0, 4+4+8+8+4)
	header = append(header, magic[:]...)
	header = binary.LittleEndian.AppendUint32(header, version)
	header = binary.LittleEndian.AppendUint64(header, uint64(t.Rows()))
	header = binary.LittleEndian.AppendUint64(header, uint64(t.Cols()))
	header = binary.LittleEndian.AppendUint32(header, flags)
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("tabfile: writing header: %w", err)
	}
	body := w
	var gz *gzip.Writer
	if compress {
		gz = gzip.NewWriter(w)
		body = gz
	}
	bw := bufio.NewWriter(body)
	var buf [8]byte
	for _, v := range t.Data() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("tabfile: writing cells: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("tabfile: flushing cells: %w", err)
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("tabfile: closing gzip stream: %w", err)
		}
	}
	return nil
}

// RowReader streams a binary table row by row, so a consumer can copy
// cells straight into their final location (a column range of a wider
// stitched table, say) without ever materializing the whole file as its
// own table. The memory high-water mark is one row.
type RowReader struct {
	rows, cols int
	row        int
	br         *bufio.Reader
	gz         *gzip.Reader // non-nil when the payload is compressed
	cells      []float64    // reused across Next calls
	buf        []byte
}

// NewRowReader parses the header of a table written by Write and returns
// a reader positioned at its first row. Callers must Close it (a no-op
// for uncompressed payloads, the gzip-trailer check otherwise).
func NewRowReader(r io.Reader) (*RowReader, error) {
	header := make([]byte, 4+4+8+8+4)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, fmt.Errorf("tabfile: reading header: %w", err)
	}
	if [4]byte(header[:4]) != magic {
		return nil, fmt.Errorf("tabfile: bad magic %q", header[:4])
	}
	if v := binary.LittleEndian.Uint32(header[4:8]); v != version {
		return nil, fmt.Errorf("tabfile: unsupported version %d", v)
	}
	rows := binary.LittleEndian.Uint64(header[8:16])
	cols := binary.LittleEndian.Uint64(header[16:24])
	flags := binary.LittleEndian.Uint32(header[24:28])
	// Bound each factor before the product: with rows and cols up to
	// 2^64 the u64 product can wrap past maxCells and admit a header
	// whose table.New allocation panics.
	if rows == 0 || cols == 0 || rows > maxCells || cols > maxCells || rows*cols > maxCells {
		return nil, fmt.Errorf("tabfile: implausible dimensions %dx%d", rows, cols)
	}
	rr := &RowReader{rows: int(rows), cols: int(cols)}
	body := r
	if flags&flagGzip != 0 {
		gz, err := gzip.NewReader(r)
		if err != nil {
			return nil, fmt.Errorf("tabfile: opening gzip stream: %w", err)
		}
		rr.gz = gz
		body = gz
	}
	rr.br = bufio.NewReader(body)
	rr.cells = make([]float64, rr.cols)
	rr.buf = make([]byte, 8*rr.cols)
	return rr, nil
}

// Dims returns the table dimensions from the header.
func (rr *RowReader) Dims() (rows, cols int) { return rr.rows, rr.cols }

// Next returns the cells of the next row, or io.EOF after the last row.
// The returned slice is reused by the following Next call — copy it out
// if it must survive. Non-finite cells fail with table.ErrNonFinite, the
// same hardening contract as Read.
func (rr *RowReader) Next() ([]float64, error) {
	if rr.row >= rr.rows {
		return nil, io.EOF
	}
	if _, err := io.ReadFull(rr.br, rr.buf); err != nil {
		return nil, fmt.Errorf("tabfile: reading cell %d: %w", rr.row*rr.cols, err)
	}
	for c := range rr.cells {
		v := math.Float64frombits(binary.LittleEndian.Uint64(rr.buf[8*c:]))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("tabfile: cell %d is %v: %w", rr.row*rr.cols+c, v, table.ErrNonFinite)
		}
		rr.cells[c] = v
	}
	rr.row++
	return rr.cells, nil
}

// Close releases the decompressor, if any.
func (rr *RowReader) Close() error {
	if rr.gz != nil {
		return rr.gz.Close()
	}
	return nil
}

// Read decodes a table written by Write.
func Read(r io.Reader) (*table.Table, error) {
	rr, err := NewRowReader(r)
	if err != nil {
		return nil, err
	}
	defer rr.Close()
	t := table.New(rr.rows, rr.cols)
	for i := 0; i < rr.rows; i++ {
		cells, err := rr.Next()
		if err != nil {
			return nil, err
		}
		copy(t.Row(i), cells)
	}
	return t, nil
}

// WriteFile writes t to path in the binary format.
func WriteFile(path string, t *table.Table, compress bool) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("tabfile: %w", err)
	}
	if err := Write(f, t, compress); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFileAtomic writes t to path crash-safely: the bytes go to a
// temporary file in the same directory which is fsynced and renamed over
// path, so a crash mid-write never leaves a torn table file at path.
func WriteFileAtomic(path string, t *table.Table, compress bool) error {
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return Write(w, t, compress)
	})
}

// ReadFile reads a binary table from path.
func ReadFile(path string) (*table.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tabfile: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// WriteCSV emits t as CSV, one table row per record.
func WriteCSV(w io.Writer, t *table.Table) error {
	cw := csv.NewWriter(w)
	record := make([]string, t.Cols())
	for r := 0; r < t.Rows(); r++ {
		row := t.Row(r)
		for c, v := range row {
			record[c] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("tabfile: writing CSV row %d: %w", r, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("tabfile: flushing CSV: %w", err)
	}
	return nil
}

// ReadCSV parses a CSV of numbers into a table. All records must have the
// same number of fields.
func ReadCSV(r io.Reader) (*table.Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validate rectangularity ourselves for a better error
	var rows [][]float64
	for {
		record, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tabfile: reading CSV: %w", err)
		}
		row := make([]float64, len(record))
		for i, field := range record {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("tabfile: CSV row %d field %d: %w", len(rows), i, err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("tabfile: CSV row %d field %d is %v: %w",
					len(rows), i, v, table.ErrNonFinite)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	t, err := table.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("tabfile: %w", err)
	}
	return t, nil
}
