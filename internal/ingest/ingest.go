// Package ingest is the streaming half of the pipeline: it turns a
// day-partitioned tabstore into a continuously maintained sketch pool
// and a stream of published server snapshots.
//
// The tabstore is the write-ahead log. A pushed record (POST /v1/ingest
// or tabmine-ingest) lands durably as a store day before the push is
// acknowledged; the in-memory window table, the dyadic sketch pool, and
// the served snapshot catch up asynchronously. A restart therefore
// never loses acknowledged data: Resume compares the persisted pool's
// high-water column against the store and replays exactly the missing
// days.
//
// Pool maintenance is incremental. Pools run in panel mode
// (core.PoolOptions.PanelCols), where appending day columns recomputes
// only the panels whose overlap-save slab reaches the new columns —
// byte-identical to a from-scratch build over the final table, at a
// small fraction of the FFT work (core's append tests assert both
// properties). When the sliding window overflows, whole oldest days are
// trimmed with hysteresis (down to about half the window, not by one
// day per append) and the pool is rebuilt once over the shorter window.
//
// Backpressure is explicit: days appended to the store but not yet
// sketched form the pending backlog, and once it reaches QueueLen new
// pushes are rejected with server.ErrIngestBacklog — mapped by the
// server to 503 + Retry-After — before anything touches disk.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/segstore"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/tabstore"
)

// Options tunes an Ingester. PoolP, PoolK, and the Pool bounds are
// required; the zero value of everything else gets defaults from New.
type Options struct {
	// PoolP, PoolK, PoolSeed are the sketch-pool parameters (the p of
	// the Lp norm, sketch width, seed) passed to core.NewPool.
	PoolP    float64
	PoolK    int
	PoolSeed uint64
	// Pool carries the dyadic extent bounds, worker bound, estimator,
	// and panel width. PanelCols 0 defaults to 32; BaseCol is managed
	// by the ingester and must be left zero.
	Pool core.PoolOptions
	// WindowDays bounds the sliding window over the time axis, in whole
	// store days. When the window exceeds it, the oldest days are
	// trimmed down to about half the bound (hysteresis, so trims are
	// rare) and the pool is rebuilt over the shorter window. 0 keeps
	// every day forever.
	WindowDays int
	// QueueLen bounds the pending backlog: days durably appended but
	// not yet incorporated into the pool. At the bound, pushes shed
	// with server.ErrIngestBacklog (default 8).
	QueueLen int
	// PoolFile, when non-empty, persists the pool (atomically, in the
	// checksummed snapshot format) after every rebuild, enabling
	// crash-safe Resume.
	PoolFile string
	// SegmentDir, when non-empty, selects segment mode: the sealed
	// prefix of the pool persists as immutable memory-mapped segment
	// files under this directory (internal/segstore) instead of a
	// monolithic pool snapshot. Restart maps the segments and rebuilds
	// only the unsealed fringe — no day replay — and window trimming
	// becomes whole-segment deletion. Mutually exclusive with PoolFile;
	// requires a power-of-two PanelCols (the default 32 qualifies).
	SegmentDir string
	// Poll, when positive, re-reads the store manifest this often so
	// days appended by another process are picked up (tail mode).
	Poll time.Duration
	// Compress gzip-compresses day files written for pushed records.
	Compress bool
	// Snapshot configures the published serving state. TileRows == 0
	// disables snapshot publishing (the pool is still maintained).
	Snapshot server.SnapshotConfig
	// Publisher receives each freshly built snapshot (usually the
	// query server). Nil disables publishing.
	Publisher server.Publisher
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

const defaultPanelCols = 32

// Ingester maintains the window table, sketch pool, and published
// snapshot over a tabstore that grows by days.
type Ingester struct {
	opts  Options
	store *tabstore.Store
	wake  chan struct{}

	// mu serializes store access and guards cursor; everything below
	// it is owned by the Resume/Run goroutine.
	mu     sync.Mutex
	cursor int // store days already incorporated into the pool

	winStart int          // first store day (fully or partly) inside the window
	base     int          // absolute column of the window start (== pool.BaseCol())
	tb       *table.Table // the window's columns, stitched
	pool     *core.Pool

	// Segment-mode state: the segment store and the working view the
	// current pool's sealed bands are mapped through. The working view is
	// swapped after every maintenance round; published snapshots hold
	// their own clones, so compaction reclaims files only after the last
	// snapshot referencing them retires. In pool-file mode both are nil.
	// Note that in segment mode base is aligned to segments, not days, so
	// winStart's day may be only partly inside the window.
	segs *segstore.Store
	view *segstore.View
}

// New builds an Ingester over an opened store. Call Resume to restore
// persisted state and replay the backlog, then Run to process pushes.
func New(store *tabstore.Store, opts Options) (*Ingester, error) {
	if store == nil {
		return nil, fmt.Errorf("ingest: nil store")
	}
	if opts.PoolP <= 0 || opts.PoolK <= 0 {
		return nil, fmt.Errorf("ingest: PoolP and PoolK are required")
	}
	if opts.Pool.BaseCol != 0 || opts.Pool.Context != nil {
		return nil, fmt.Errorf("ingest: Pool.BaseCol and Pool.Context are managed by the ingester")
	}
	if opts.Pool.PanelCols == 0 {
		opts.Pool.PanelCols = defaultPanelCols
	}
	if opts.Pool.PanelCols < 0 {
		return nil, fmt.Errorf("ingest: negative PanelCols")
	}
	if opts.SegmentDir != "" {
		if opts.PoolFile != "" {
			return nil, fmt.Errorf("ingest: SegmentDir and PoolFile are mutually exclusive")
		}
		if opts.Pool.PanelCols&(opts.Pool.PanelCols-1) != 0 {
			return nil, fmt.Errorf("ingest: segment mode requires a power-of-two PanelCols, got %d",
				opts.Pool.PanelCols)
		}
	}
	if opts.WindowDays < 0 || opts.QueueLen < 0 {
		return nil, fmt.Errorf("ingest: negative WindowDays or QueueLen")
	}
	if opts.QueueLen == 0 {
		opts.QueueLen = 8
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return &Ingester{opts: opts, store: store, wake: make(chan struct{}, 1)}, nil
}

// Pool returns the current pool (nil before the first build). Owned by
// the Resume/Run goroutine; other goroutines should query through the
// published snapshots instead.
func (ing *Ingester) Pool() *core.Pool { return ing.pool }

// Close releases segment-mode resources: the working view's pins and
// the segment store's own mappings. Published snapshots hold their own
// view clones, so closing the ingester never unmaps a snapshot that is
// still serving. The pool must not be queried after Close (its sealed
// bands may be backed by the released mappings). Pool-file mode holds
// no such resources and Close is a no-op. Owned, like the pool, by the
// Resume/Run goroutine.
func (ing *Ingester) Close() {
	if ing.view != nil {
		ing.view.Release()
		ing.view = nil
	}
	if ing.segs != nil {
		ing.segs.Close()
		ing.segs = nil
	}
	ing.pool = nil
}

// Pending reports how many store days await incorporation.
func (ing *Ingester) Pending() int {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.store.NumDays() - ing.cursor
}

// IngestRecord implements server.Ingestor: parse one pushed record,
// shed if the backlog is full, otherwise append it durably to the
// store and wake the maintenance loop. The acknowledgement means "in
// the write-ahead log", not "being served" — Pending in the result
// says how far behind the serving state is.
func (ing *Ingester) IngestRecord(ctx context.Context, body io.Reader) (*server.IngestResult, error) {
	label, t, err := ReadRecord(body)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ing.mu.Lock()
	pending := ing.store.NumDays() - ing.cursor
	if pending >= ing.opts.QueueLen {
		ing.mu.Unlock()
		return nil, fmt.Errorf("ingest: %d days pending: %w", pending, server.ErrIngestBacklog)
	}
	if err := ing.store.AppendDay(label, t, ing.opts.Compress); err != nil {
		ing.mu.Unlock()
		return nil, err
	}
	res := &server.IngestResult{
		Label: label, Cols: t.Cols(),
		ColsTotal: ing.store.ColsTotal(), Pending: pending + 1,
	}
	ing.mu.Unlock()
	ing.signal()
	return res, nil
}

func (ing *Ingester) signal() {
	select {
	case ing.wake <- struct{}{}:
	default: // a wakeup is already queued; the loop drains everything
	}
}

// Resume restores the persisted pool (the memory-mapped segment store
// in segment mode, the PoolFile snapshot otherwise), replays every
// store day past its high-water column, and publishes the caught-up
// snapshot. The store is the authority: an unusable or mismatched pool
// file just means a from-scratch rebuild.
func (ing *Ingester) Resume(ctx context.Context) error {
	if ing.opts.SegmentDir != "" {
		if err := ing.resumeSegments(ctx); err != nil {
			return err
		}
	} else if ing.opts.PoolFile != "" {
		pool, err := core.LoadPoolFile(ing.opts.PoolFile)
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing persisted yet.
		case err != nil:
			ing.opts.Logf("ingest: pool snapshot unusable (%v); rebuilding from the store", err)
		default:
			if err := ing.adopt(pool); err != nil {
				ing.opts.Logf("ingest: persisted pool does not match the store (%v); rebuilding", err)
			} else {
				ing.opts.Logf("ingest: resumed pool at column %d of %d",
					pool.HighWaterCols(), ing.store.ColsTotal())
			}
		}
		segstore.SetRestartReplayDays(ing.Pending())
	}
	if err := ing.drain(ctx); err != nil {
		return err
	}
	// Publish even when nothing needed replay: a restart with a current
	// pool file must still hand the server its first snapshot.
	if err := ing.publish(ctx); err != nil {
		ing.opts.Logf("ingest: snapshot not published: %v", err)
	}
	return nil
}

// publish builds a serving snapshot over the current window and hands
// it to the Publisher. No-op without a Publisher, a snapshot geometry,
// or a pool. In segment mode the snapshot holds its own clone of the
// working segment view, released when the snapshot's last reference
// drops — that clone is what defers file reclamation until no query
// can still read the mapping. The ingester's own snapshot reference is
// released after publishing: a Publisher that keeps the snapshot (the
// server does, via Swap's retain) must hold its own reference.
func (ing *Ingester) publish(ctx context.Context) error {
	if ing.opts.Publisher == nil || ing.opts.Snapshot.TileRows <= 0 || ing.pool == nil {
		return nil
	}
	sn, err := server.BuildSnapshot(ctx, ing.tb, ing.pool, ing.opts.Snapshot)
	if err != nil {
		return err
	}
	if ing.view != nil {
		cl := ing.view.Clone()
		sn.OnRelease(cl.Release)
	}
	ing.opts.Publisher.Publish(sn)
	sn.Release()
	return nil
}

// segParams derives the segment-store parameter block binding segment
// files to this ingester's pool geometry. Valid only once the store has
// at least one day (Rows is 0 before that).
func (ing *Ingester) segParams() segstore.Params {
	po := ing.opts.Pool
	return segstore.Params{
		P: ing.opts.PoolP, K: ing.opts.PoolK, Rows: ing.store.Rows(), Seed: ing.opts.PoolSeed,
		MinLogRows: po.MinLogRows, MaxLogRows: po.MaxLogRows,
		MinLogCols: po.MinLogCols, MaxLogCols: po.MaxLogCols,
		Estimator: po.Estimator, PanelCols: po.PanelCols,
	}
}

// ensureSegs lazily opens the segment store; it needs the table row
// count, which is unknown until the tabstore holds a day.
func (ing *Ingester) ensureSegs() error {
	if ing.segs != nil {
		return nil
	}
	st, err := segstore.Open(ing.opts.SegmentDir, ing.segParams())
	if err != nil {
		return err
	}
	ing.segs = st
	return nil
}

// resumeSegments is segment-mode restart: map the live segment set and
// build one banded pool over the window table whose sealed prefix is
// the mapping — no day-by-day replay, one fringe FFT pass regardless of
// how many days the segments cover. The restart-replay-days expvar gets
// the number of store days lying entirely past the sealed prefix (0
// once a store has sealed past its fringe; the mmap-demo drill asserts
// exactly that).
func (ing *Ingester) resumeSegments(ctx context.Context) error {
	total := ing.store.NumDays()
	if total == 0 {
		segstore.SetRestartReplayDays(0)
		return nil // first boot of an empty store; drain builds from scratch
	}
	if err := ing.ensureSegs(); err != nil {
		return err
	}
	base, sealed := ing.segs.BaseCol(), ing.segs.SealedCol()
	day, dayStart, err := ing.dayContaining(base)
	if err != nil {
		return err
	}
	tb, err := ing.store.LoadRange(day, total)
	if err != nil {
		return err
	}
	if base > dayStart {
		// The window base falls mid-day (segment alignment, not day
		// alignment): drop the leading columns of the partial day.
		tb = tb.Sub(table.Rect{R0: 0, C0: base - dayStart, Rows: tb.Rows(), Cols: tb.Cols() - (base - dayStart)})
	}
	// A day counts as replayed only when the sealed prefix should have
	// covered it but does not: days at or past the window's sealable
	// limit are fringe by construction — even a graceful restart
	// re-sketches them — so they are not replay debt. After a drained
	// maintenance round sealed == the limit and the count is 0.
	align := max(ing.opts.Pool.PanelCols, 1<<ing.opts.Pool.MaxLogCols)
	sealable := base + core.FloorAlign(tb.Cols()-1<<ing.opts.Pool.MaxLogCols+1, align)
	replay := 0
	for i, off := day, dayStart; i < total; i++ {
		if off >= sealed && off < sealable {
			replay++
		}
		w, err := ing.store.DayCols(i)
		if err != nil {
			return err
		}
		off += w
	}
	v := ing.segs.Acquire()
	opts := ing.opts.Pool
	opts.BaseCol = base
	opts.Context = ctx
	pool, err := core.NewBandedPool(tb, ing.opts.PoolP, ing.opts.PoolK, ing.opts.PoolSeed, opts, v.Bands(base))
	if err != nil {
		v.Release()
		return fmt.Errorf("ingest: mapping segment store into a pool: %w", err)
	}
	ing.view = v
	// Run one maintenance round so the replayed fringe seals immediately:
	// a crash right after resume then replays nothing on the next boot.
	tb, pool, day, base, err = ing.maintainSegments(ctx, tb, pool, day, base, total)
	if err != nil {
		return err
	}
	ing.mu.Lock()
	ing.cursor = total
	ing.mu.Unlock()
	ing.winStart, ing.base = day, base
	ing.tb, ing.pool = tb, pool
	segstore.SetRestartReplayDays(replay)
	ing.opts.Logf("ingest: resumed from %d mapped segments (columns [%d,%d) sealed, %d of %d days replayed)",
		v.NumSegments(), base, sealed, replay, total)
	return nil
}

// maintainSegments is the segment-mode maintenance round run after every
// pool build or append: seal the pool's newly sealable columns as an L0
// segment, trim the window by whole segments if it overflowed, run at
// most one compaction merge, and reband the pool onto a fresh view of
// the live set so its sealed prefix reads from the mappings. Returns the
// (possibly trimmed) window table and the rebanded pool with the updated
// window coordinates; ing.view is swapped to the fresh view.
func (ing *Ingester) maintainSegments(ctx context.Context, tb *table.Table, pool *core.Pool, winStart, base, target int) (*table.Table, *core.Pool, int, int, error) {
	fail := func(err error) (*table.Table, *core.Pool, int, int, error) { return nil, nil, 0, 0, err }
	if err := ing.ensureSegs(); err != nil {
		return fail(err)
	}
	sealed := ing.segs.SealedCol()
	if sealed < base {
		return fail(fmt.Errorf("ingest: segment store sealed to column %d, before window base %d", sealed, base))
	}
	if sealTo := base + pool.SealableCols(); sealTo > sealed {
		if err := ing.segs.WriteL0(pool, sealed, sealTo); err != nil {
			return fail(err)
		}
	}

	// Window trim is whole-segment deletion: drop every segment lying
	// entirely before the day the window should retreat to, clamped so
	// the window keeps at least one maximal tile. The trimmed pool is
	// rebuilt banded below — sealed bytes are adopted from the mappings,
	// so only the fringe costs FFT work.
	if ing.opts.WindowDays > 0 && target-winStart > ing.opts.WindowDays {
		keep := (ing.opts.WindowDays + 1) / 2
		newStart := target - keep
		ing.mu.Lock()
		keepFrom := 0
		var derr error
		for i := 0; i < newStart && derr == nil; i++ {
			var w int
			w, derr = ing.store.DayCols(i)
			keepFrom += w
		}
		ing.mu.Unlock()
		if derr != nil {
			return fail(derr)
		}
		if lim := base + tb.Cols() - 1<<ing.opts.Pool.MaxLogCols; keepFrom > lim {
			keepFrom = lim
		}
		newBase, err := ing.segs.Trim(keepFrom)
		if err != nil {
			return fail(err)
		}
		if drop := newBase - base; drop > 0 {
			rows := tb.Rows()
			trimmed := table.New(rows, tb.Cols()-drop)
			for r := 0; r < rows; r++ {
				copy(trimmed.Row(r), tb.Row(r)[drop:])
			}
			day, _, err := ing.dayContaining(newBase)
			if err != nil {
				return fail(err)
			}
			ing.opts.Logf("ingest: window trimmed to columns [%d, %d) (%d cols of segments dropped)",
				newBase, newBase+trimmed.Cols(), drop)
			tb, winStart, base = trimmed, day, newBase
			pool = nil // rebuilt over the trimmed window below
		}
	}

	if did, err := ing.segs.Compact(segstore.DefaultCompactFanout); err != nil {
		// A failed merge leaves the live set unchanged; sealing and
		// serving continue, so log and move on.
		ing.opts.Logf("ingest: compaction failed: %v", err)
	} else if did {
		ing.opts.Logf("ingest: compacted segments (%d live files)", len(ing.segs.SegmentFiles()))
	}

	v := ing.segs.Acquire()
	var err error
	if pool == nil {
		opts := ing.opts.Pool
		opts.BaseCol = base
		opts.Context = ctx
		pool, err = core.NewBandedPool(tb, ing.opts.PoolP, ing.opts.PoolK, ing.opts.PoolSeed, opts, v.Bands(base))
	} else {
		pool, err = pool.Reband(v.Bands(base))
	}
	if err != nil {
		v.Release()
		return fail(err)
	}
	if ing.view != nil {
		ing.view.Release()
	}
	ing.view = v
	return tb, pool, winStart, base, nil
}

// dayContaining maps an absolute column to the store day containing it
// and that day's first absolute column.
func (ing *Ingester) dayContaining(col int) (day, dayStart int, err error) {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	off := 0
	for i := 0; i < ing.store.NumDays(); i++ {
		w, err := ing.store.DayCols(i)
		if err != nil {
			return 0, 0, err
		}
		if col < off+w {
			return i, off, nil
		}
		off += w
	}
	return 0, 0, fmt.Errorf("ingest: no store day contains column %d", col)
}

// adopt validates a loaded pool against the store and the configured
// parameters, reloads its window table, and positions the cursor after
// the last day the pool covers.
func (ing *Ingester) adopt(pool *core.Pool) error {
	if pool.PanelCols() != ing.opts.Pool.PanelCols {
		return fmt.Errorf("panel width %d, configured %d", pool.PanelCols(), ing.opts.Pool.PanelCols)
	}
	if pool.P() != ing.opts.PoolP || pool.K() != ing.opts.PoolK {
		return fmt.Errorf("pool is p=%g k=%d, configured p=%g k=%d",
			pool.P(), pool.K(), ing.opts.PoolP, ing.opts.PoolK)
	}
	rows, _ := pool.TableDims()
	if rows != ing.store.Rows() {
		return fmt.Errorf("pool has %d rows, store has %d", rows, ing.store.Rows())
	}
	start, err := ing.dayAtColumn(pool.BaseCol())
	if err != nil {
		return fmt.Errorf("base column %d: %w", pool.BaseCol(), err)
	}
	end, err := ing.dayAtColumn(pool.HighWaterCols())
	if err != nil {
		return fmt.Errorf("high-water column %d: %w", pool.HighWaterCols(), err)
	}
	tb, err := ing.store.LoadRange(start, end)
	if err != nil {
		return err
	}
	ing.mu.Lock()
	ing.cursor = end
	ing.mu.Unlock()
	ing.winStart, ing.base = start, pool.BaseCol()
	ing.tb, ing.pool = tb, pool
	return nil
}

// dayAtColumn maps an absolute column to the store day starting exactly
// there. A column landing mid-day means the pool and store disagree on
// day boundaries (a store rewritten or fscked underneath the pool).
func (ing *Ingester) dayAtColumn(col int) (int, error) {
	off := 0
	for i := 0; i <= ing.store.NumDays(); i++ {
		if off == col {
			return i, nil
		}
		if off > col || i == ing.store.NumDays() {
			break
		}
		w, err := ing.store.DayCols(i)
		if err != nil {
			return 0, err
		}
		off += w
	}
	return 0, fmt.Errorf("no day boundary at column %d", col)
}

// Run processes pushed days until ctx is cancelled: drain the backlog,
// then sleep until a push wakes us (or the poll ticker refreshes the
// manifest in tail mode). Errors inside a drain are logged and retried
// on the next wakeup — the store already holds the data, so nothing is
// lost by waiting.
func (ing *Ingester) Run(ctx context.Context) error {
	var tickC <-chan time.Time
	if ing.opts.Poll > 0 {
		tick := time.NewTicker(ing.opts.Poll)
		defer tick.Stop()
		tickC = tick.C
	}
	for {
		if err := ing.drain(ctx); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			ing.opts.Logf("ingest: %v (will retry on next wakeup)", err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ing.wake:
		case <-tickC:
			ing.mu.Lock()
			err := ing.store.Refresh()
			ing.mu.Unlock()
			if err != nil {
				ing.opts.Logf("ingest: %v", err)
			}
		}
	}
}

// drain incorporates every pending day, one step per batch.
func (ing *Ingester) drain(ctx context.Context) error {
	for {
		did, err := ing.step(ctx)
		if err != nil || !did {
			return err
		}
	}
}

// step incorporates the days appended since the cursor: extend the
// window table, append to (or first-build) the pool, trim the window if
// it overflowed, persist the pool, publish a snapshot, and only then
// advance the cursor. The expensive pool work runs outside the lock so
// pushes keep landing in the store during a rebuild.
func (ing *Ingester) step(ctx context.Context) (bool, error) {
	ing.mu.Lock()
	target := ing.store.NumDays()
	if ing.cursor >= target {
		ing.mu.Unlock()
		return false, nil
	}
	rows := ing.store.Rows()
	oldCols := 0
	if ing.tb != nil {
		oldCols = ing.tb.Cols()
	}
	added := 0
	for i := ing.cursor; i < target; i++ {
		w, err := ing.store.DayCols(i)
		if err != nil {
			ing.mu.Unlock()
			return false, err
		}
		added += w
	}
	// Stitch old window + new days into the extended window table. The
	// old columns are copied bit-for-bit, which is exactly what
	// Pool.Append requires of its argument.
	next := table.New(rows, oldCols+added)
	if ing.tb != nil {
		for r := 0; r < rows; r++ {
			copy(next.Row(r)[:oldCols], ing.tb.Row(r))
		}
	}
	off := oldCols
	err := ing.store.IterDays(ing.cursor, target, func(i int, label string, t *table.Table) error {
		for r := 0; r < rows; r++ {
			copy(next.Row(r)[off:off+t.Cols()], t.Row(r))
		}
		off += t.Cols()
		return nil
	})
	ing.mu.Unlock()
	if err != nil {
		return false, err
	}

	winStart, base := ing.winStart, ing.base
	var pool *core.Pool
	if ing.pool == nil {
		pool, err = ing.newPool(ctx, next, base)
	} else {
		pool, err = ing.pool.Append(ctx, next)
	}
	if err != nil {
		return false, err
	}

	if ing.opts.SegmentDir != "" {
		next, pool, winStart, base, err = ing.maintainSegments(ctx, next, pool, winStart, base, target)
		if err != nil {
			return false, err
		}
	} else if ing.opts.WindowDays > 0 && target-winStart > ing.opts.WindowDays {
		// Hysteresis: trim to about half the bound so the rebuild cost
		// amortizes over many appends instead of recurring per day.
		keep := (ing.opts.WindowDays + 1) / 2
		newStart := target - keep
		ing.mu.Lock()
		drop := 0
		for i := winStart; i < newStart && err == nil; i++ {
			var w int
			w, err = ing.store.DayCols(i)
			drop += w
		}
		ing.mu.Unlock()
		if err != nil {
			return false, err
		}
		trimmed := table.New(rows, next.Cols()-drop)
		for r := 0; r < rows; r++ {
			copy(trimmed.Row(r), next.Row(r)[drop:])
		}
		pool, err = ing.newPool(ctx, trimmed, base+drop)
		if err != nil {
			return false, err
		}
		ing.opts.Logf("ingest: window trimmed to days [%d, %d) (%d cols dropped)", newStart, target, drop)
		next, winStart, base = trimmed, newStart, base+drop
	}

	if ing.opts.PoolFile != "" {
		if err := core.SavePoolFile(ing.opts.PoolFile, pool); err != nil {
			return false, err
		}
	}
	ing.winStart, ing.base = winStart, base
	ing.tb, ing.pool = next, pool
	if err := ing.publish(ctx); err != nil {
		// The pool is fine; only the serving geometry failed (e.g. the
		// window is not yet tileable). Keep ingesting.
		ing.opts.Logf("ingest: snapshot not published: %v", err)
	}
	ing.mu.Lock()
	ing.cursor = target
	ing.mu.Unlock()
	ing.opts.Logf("ingest: pool at column %d (window days [%d, %d))",
		pool.HighWaterCols(), winStart, target)
	return true, nil
}

func (ing *Ingester) newPool(ctx context.Context, t *table.Table, base int) (*core.Pool, error) {
	opts := ing.opts.Pool
	opts.BaseCol = base
	opts.Context = ctx
	return core.NewPool(t, ing.opts.PoolP, ing.opts.PoolK, ing.opts.PoolSeed, opts)
}

// Wake prompts the maintenance loop to re-read the manifest and drain
// whatever it finds — the manual override tabmine-serve wires to
// SIGHUP, for stores grown by another process between polls (or with
// polling disabled).
func (ing *Ingester) Wake() {
	ing.mu.Lock()
	err := ing.store.Refresh()
	ing.mu.Unlock()
	if err != nil {
		ing.opts.Logf("ingest: %v", err)
	}
	ing.signal()
}
