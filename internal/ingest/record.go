package ingest

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tabfile"
	"repro/internal/table"
)

// The pushed-record wire format carried by POST /v1/ingest bodies and
// emitted by tabmine-ingest: a fixed header naming the day, then the
// day's columns as a standard TABF table (so the payload reuses the
// tabfile hardening — magic, version, dimension bounds, finiteness).
//
//	offset  size  field
//	0       4     magic "TREC"
//	4       4     u32 version (1)
//	8       2     u16 label length L (1..maxLabelLen)
//	10      L     day label (printable ASCII, no '/' — it names a
//	              manifest entry, not a path, but a hostile label must
//	              not traverse directories if one ever leaks into a name)
//	10+L    ...   TABF table (optionally gzip-compressed per its flags)

var recordMagic = [4]byte{'T', 'R', 'E', 'C'}

const (
	recordVersion = 1
	maxLabelLen   = 256
	// maxRecordCells bounds one pushed day (8 MiB of float64). The
	// tabfile format's own 2^31-cell cap protects in-process readers of
	// trusted files; a record header arrives from the network, so its
	// claimed dimensions must not force a huge allocation up front.
	maxRecordCells = 1 << 20
	// maxRecordDayCols bounds the time axis of one record: days arrive
	// a handful of columns at a time (the paper's day is 144 ten-minute
	// intervals), never thousands.
	maxRecordDayCols = 4096
)

// WriteRecord frames one day for pushing: label header then the table
// in TABF encoding (gzip-compressed when compress is set).
func WriteRecord(w io.Writer, label string, t *table.Table, compress bool) error {
	if err := checkLabel(label); err != nil {
		return err
	}
	header := make([]byte, 0, 4+4+2+len(label))
	header = append(header, recordMagic[:]...)
	header = binary.LittleEndian.AppendUint32(header, recordVersion)
	header = binary.LittleEndian.AppendUint16(header, uint16(len(label)))
	header = append(header, label...)
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("ingest: writing record header: %w", err)
	}
	return tabfile.Write(w, t, compress)
}

// ReadRecord parses one pushed record: the label and the day table.
func ReadRecord(r io.Reader) (string, *table.Table, error) {
	header := make([]byte, 4+4+2)
	if _, err := io.ReadFull(r, header); err != nil {
		return "", nil, fmt.Errorf("ingest: reading record header: %w", err)
	}
	if [4]byte(header[:4]) != recordMagic {
		return "", nil, fmt.Errorf("ingest: bad record magic %q", header[:4])
	}
	if v := binary.LittleEndian.Uint32(header[4:8]); v != recordVersion {
		return "", nil, fmt.Errorf("ingest: unsupported record version %d", v)
	}
	n := int(binary.LittleEndian.Uint16(header[8:10]))
	if n == 0 || n > maxLabelLen {
		return "", nil, fmt.Errorf("ingest: implausible label length %d", n)
	}
	raw := make([]byte, n)
	if _, err := io.ReadFull(r, raw); err != nil {
		return "", nil, fmt.Errorf("ingest: reading label: %w", err)
	}
	label := string(raw)
	if err := checkLabel(label); err != nil {
		return "", nil, err
	}
	rr, err := tabfile.NewRowReader(r)
	if err != nil {
		return "", nil, err
	}
	defer rr.Close()
	rows, cols := rr.Dims()
	if rows*cols > maxRecordCells || cols > maxRecordDayCols {
		return "", nil, fmt.Errorf("ingest: record claims %dx%d cells, above the %d-cell/%d-col record bounds",
			rows, cols, maxRecordCells, maxRecordDayCols)
	}
	t := table.New(rows, cols)
	for i := 0; i < rows; i++ {
		cells, err := rr.Next()
		if err != nil {
			return "", nil, err
		}
		copy(t.Row(i), cells)
	}
	return label, t, nil
}

func checkLabel(label string) error {
	if label == "" || len(label) > maxLabelLen {
		return fmt.Errorf("ingest: label length %d outside [1, %d]", len(label), maxLabelLen)
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		if c < 0x21 || c > 0x7e || c == '/' || c == '\\' {
			return fmt.Errorf("ingest: label %q contains byte %#02x (want printable ASCII, no separators)", label, c)
		}
	}
	return nil
}
