package ingest

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/segstore"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/tabstore"
)

// segOptions is testOptions in segment mode: the sealed prefix lives in
// mmap-backed segment files instead of a monolithic pool snapshot.
func segOptions(t *testing.T) Options {
	t.Helper()
	opts := testOptions()
	opts.SegmentDir = filepath.Join(t.TempDir(), "segments")
	return opts
}

// assertSketchesEqual is the banded-pool byte-identity yardstick:
// SavePool refuses banded pools, so equality is asserted sketch-by-
// sketch over every enumerable rect, to the bit.
func assertSketchesEqual(t *testing.T, want, got *core.Pool, label string) {
	t.Helper()
	rows, cols := want.TableDims()
	grows, gcols := got.TableDims()
	if rows != grows || cols != gcols {
		t.Fatalf("%s: dims %dx%d vs %dx%d", label, rows, cols, grows, gcols)
	}
	var rects []table.Rect
	for _, rr := range []int{2, 4, 7} {
		for _, rc := range []int{2, 4, 7} {
			for r0 := 0; r0+rr <= rows; r0 += 5 {
				for c0 := 0; c0+rc <= cols; c0 += 3 {
					rects = append(rects, table.Rect{R0: r0, C0: c0, Rows: rr, Cols: rc})
				}
			}
		}
	}
	var wbuf, gbuf []float64
	for _, rect := range rects {
		var err error
		wbuf, err = want.Sketch(rect, wbuf)
		if err != nil {
			continue
		}
		gbuf, err = got.Sketch(rect, gbuf)
		if err != nil {
			t.Fatalf("%s: rect %v: %v", label, rect, err)
		}
		for i := range wbuf {
			if math.Float64bits(wbuf[i]) != math.Float64bits(gbuf[i]) {
				t.Fatalf("%s: rect %v lane %d: %v != %v", label, rect, i, gbuf[i], wbuf[i])
			}
		}
	}
}

func TestSegmentModeValidation(t *testing.T) {
	st, _ := newTestStore(t)
	opts := segOptions(t)
	opts.PoolFile = filepath.Join(t.TempDir(), "pool.skpo")
	if _, err := New(st, opts); err == nil {
		t.Fatal("SegmentDir+PoolFile accepted")
	}
	opts = segOptions(t)
	opts.Pool.PanelCols = 12
	if _, err := New(st, opts); err == nil {
		t.Fatal("non-power-of-two PanelCols accepted in segment mode")
	}
}

// Segment mode must be invisible to queries: the maintained pool reads
// its sealed prefix from memory mappings yet answers bit-identically to
// a from-scratch heap build over the same window.
func TestSegmentModeMatchesHeapBuild(t *testing.T) {
	st, _ := newTestStore(t)
	opts := segOptions(t)
	ing, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustPush(t, ing, fmt.Sprintf("d%02d", i), day(uint64(i)))
		if err := ing.drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	pl := ing.Pool()
	if !pl.Banded() {
		t.Fatal("segment-mode pool is not banded")
	}
	if pl.SealedCols() == 0 {
		t.Fatal("nothing sealed after five days")
	}
	if pl.MappedBytes() == 0 {
		t.Fatal("sealed prefix is not mmap-backed")
	}
	if len(ing.segs.SegmentFiles()) == 0 {
		t.Fatal("no segment files on disk")
	}
	assertSketchesEqual(t, scratchPool(t, st, 0, 5, opts), pl, "segment vs heap")
}

// The instant-restart contract: after a kill, a new process maps the
// segments, rebuilds only the fringe (fewer FFT correlations than a
// full build), reports restart_replay_days = 0, and answers every query
// bit-identically to the pre-kill pool.
func TestSegmentRestartNoReplayAndIdenticalAnswers(t *testing.T) {
	st, dir := newTestStore(t)
	opts := segOptions(t)
	ing, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustPush(t, ing, fmt.Sprintf("d%02d", i), day(uint64(i)))
	}
	if err := ing.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// SIGKILL: the old process is simply abandoned — nothing is flushed
	// or closed. The WAL and the sealed segments are the survivors.

	st2, err := tabstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing2, err := New(st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := fft.CorrelationCount()
	if err := ing2.Resume(context.Background()); err != nil {
		t.Fatal(err)
	}
	resumeCorr := fft.CorrelationCount() - before
	if got := segstore.ReadStats().RestartReplayDays; got != 0 {
		t.Fatalf("restart_replay_days = %d after a warm segment restart, want 0", got)
	}

	before = fft.CorrelationCount()
	ref := scratchPool(t, st2, 0, 5, opts)
	scratchCorr := fft.CorrelationCount() - before
	if resumeCorr >= scratchCorr {
		t.Fatalf("segment resume ran %d correlations, not fewer than the %d of a full rebuild",
			resumeCorr, scratchCorr)
	}
	assertSketchesEqual(t, ing.Pool(), ing2.Pool(), "pre-kill vs restarted")
	assertSketchesEqual(t, ref, ing2.Pool(), "heap vs restarted")
	t.Logf("segment resume: %d correlations vs %d from scratch", resumeCorr, scratchCorr)
}

// A crash with days acknowledged but not yet sealed replays exactly
// those days — the WAL-ack contract — and reports them.
func TestSegmentRestartReportsPendingReplay(t *testing.T) {
	st, dir := newTestStore(t)
	opts := segOptions(t)
	ing, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustPush(t, ing, fmt.Sprintf("d%02d", i), day(uint64(i)))
	}
	if err := ing.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustPush(t, ing, "d04", day(4)) // durable, never sealed

	st2, err := tabstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing2, err := New(st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing2.Resume(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := segstore.ReadStats().RestartReplayDays; got == 0 {
		t.Fatal("restart_replay_days = 0 with an unsealed acknowledged day")
	}
	assertSketchesEqual(t, scratchPool(t, st2, 0, 5, opts), ing2.Pool(), "heap vs restarted with backlog")
}

// Window trimming in segment mode is whole-segment deletion: the base
// advances with the store's, and the trimmed pool still answers
// bit-identically to a from-scratch build over the surviving window.
func TestSegmentWindowTrim(t *testing.T) {
	st, _ := newTestStore(t)
	opts := segOptions(t)
	opts.WindowDays = 4
	ing, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		mustPush(t, ing, fmt.Sprintf("d%02d", i), day(uint64(i)))
		if err := ing.drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if ing.base == 0 {
		t.Fatal("window never trimmed")
	}
	if got := ing.segs.BaseCol(); got != ing.base {
		t.Fatalf("segment base %d, window base %d", got, ing.base)
	}
	if got := ing.Pool().BaseCol(); got != ing.base {
		t.Fatalf("pool BaseCol %d, window base %d", got, ing.base)
	}
	// The test geometry keeps day width == segment alignment, so the
	// trimmed base is day-aligned and a day-range scratch pool is a
	// valid reference.
	start, _, err := ing.dayContaining(ing.base)
	if err != nil {
		t.Fatal(err)
	}
	if off, err := st.ColOffset(start); err != nil || off != ing.base {
		t.Fatalf("trimmed base %d not day-aligned (day %d starts at %d, err %v)", ing.base, start, off, err)
	}
	assertSketchesEqual(t, scratchPool(t, st, start, 8, opts), ing.Pool(), "trimmed segment window vs heap")
}

// swapPublisher mimics the server: it retains each published snapshot
// as the serving one and releases the previous, while readers pin the
// current snapshot around each query. Running queries concurrently with
// ingest maintenance (seal, trim, compaction, reclamation) under -race
// is the use-after-unmap probe for the refcounted-epoch protocol.
type swapPublisher struct {
	mu sync.Mutex
	sn *server.Snapshot
}

func (p *swapPublisher) Publish(sn *server.Snapshot) {
	sn.Retain()
	p.mu.Lock()
	old := p.sn
	p.sn = sn
	p.mu.Unlock()
	if old != nil {
		old.Release()
	}
}

func (p *swapPublisher) acquire() *server.Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.sn != nil {
		p.sn.Retain()
	}
	return p.sn
}

func (p *swapPublisher) close() {
	p.mu.Lock()
	old := p.sn
	p.sn = nil
	p.mu.Unlock()
	if old != nil {
		old.Release()
	}
}

func TestSegmentCompactionUnderLiveQueries(t *testing.T) {
	st, _ := newTestStore(t)
	pub := &swapPublisher{}
	opts := segOptions(t)
	opts.Publisher = pub
	opts.Snapshot = server.SnapshotConfig{TileRows: 8, TileCols: 8}
	ing, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := segstore.ReadStats()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []float64
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := pub.acquire()
				if sn == nil {
					continue
				}
				pl := sn.Pool()
				_, cols := pl.TableDims()
				for c0 := 0; c0+4 <= cols; c0 += 4 {
					var err error
					buf, err = pl.Sketch(table.Rect{R0: 0, C0: c0, Rows: 4, Cols: 4}, buf)
					if err != nil {
						panic(err)
					}
					for _, v := range buf {
						if math.IsNaN(v) {
							panic("NaN sketch from a live snapshot")
						}
					}
				}
				sn.Release()
			}
		}()
	}
	for i := 0; i < 10; i++ {
		mustPush(t, ing, fmt.Sprintf("d%02d", i), day(uint64(i)))
		if err := ing.drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	pub.close()

	after := segstore.ReadStats()
	if after.Compactions == before.Compactions {
		t.Fatal("no compaction ran across ten days of maintenance")
	}
	if after.Reclaimed == before.Reclaimed {
		t.Fatal("no retired segment was reclaimed once its snapshots released")
	}
	// With every snapshot released, on-disk files must be exactly the
	// live manifest set.
	live := map[string]bool{}
	for _, f := range ing.segs.SegmentFiles() {
		live[f] = true
	}
	got, err := filepath.Glob(filepath.Join(opts.SegmentDir, "seg-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(live) {
		t.Fatalf("%d segment files on disk, %d live", len(got), len(live))
	}
	for _, p := range got {
		if !live[filepath.Base(p)] {
			t.Fatalf("stray segment file %s survived reclamation", filepath.Base(p))
		}
	}
	assertSketchesEqual(t,
		scratchPool(t, st, ing.winStart, 10, opts), ing.Pool(), "post-churn segment window vs heap")
}
