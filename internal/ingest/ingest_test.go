package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/fft"
	"repro/internal/server"
	"repro/internal/table"
	"repro/internal/tabstore"
	"repro/internal/workload"
)

const (
	testRows    = 16
	testDayCols = 8
)

func testOptions() Options {
	return Options{
		PoolP: 1, PoolK: 4, PoolSeed: 7,
		Pool: core.PoolOptions{
			MinLogRows: 1, MaxLogRows: 3, MinLogCols: 1, MaxLogCols: 3,
			PanelCols: 8,
		},
	}
}

func newTestStore(t *testing.T) (*tabstore.Store, string) {
	t.Helper()
	dir := t.TempDir()
	st, err := tabstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st, dir
}

func day(seed uint64) *table.Table {
	return workload.Random(testRows, testDayCols, 100, seed)
}

// push frames a day as a wire record and pushes it through the
// server.Ingestor entry point, exactly as /v1/ingest would.
func push(t *testing.T, ing *Ingester, label string, day *table.Table) (*server.IngestResult, error) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteRecord(&buf, label, day, false); err != nil {
		t.Fatal(err)
	}
	return ing.IngestRecord(context.Background(), &buf)
}

func mustPush(t *testing.T, ing *Ingester, label string, day *table.Table) {
	t.Helper()
	if _, err := push(t, ing, label, day); err != nil {
		t.Fatalf("push %s: %v", label, err)
	}
}

// poolBytes is the byte-identity yardstick: the persisted encoding
// covers every lane byte, seed, and parameter, so equal bytes mean
// equal pools.
func poolBytes(t *testing.T, pl *core.Pool) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := core.SavePool(&buf, pl); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// scratchPool builds the reference pool from scratch over store days
// [from, to), with the base column an incremental pool over the same
// window would carry.
func scratchPool(t *testing.T, st *tabstore.Store, from, to int, opts Options) *core.Pool {
	t.Helper()
	tb, err := st.LoadRange(from, to)
	if err != nil {
		t.Fatal(err)
	}
	base, err := st.ColOffset(from)
	if err != nil {
		t.Fatal(err)
	}
	po := opts.Pool
	po.BaseCol = base
	pl, err := core.NewPool(tb, opts.PoolP, opts.PoolK, opts.PoolSeed, po)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestPushAndIncrementalMaintenance(t *testing.T) {
	st, _ := newTestStore(t)
	ing, err := New(st, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		mustPush(t, ing, fmt.Sprintf("d%02d", i), day(uint64(i)))
	}
	if err := ing.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Two more arrive after the first build: these take the Append path.
	for i := 2; i < 4; i++ {
		mustPush(t, ing, fmt.Sprintf("d%02d", i), day(uint64(i)))
	}
	if err := ing.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ing.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", ing.Pending())
	}
	if got, want := ing.Pool().HighWaterCols(), st.ColsTotal(); got != want {
		t.Fatalf("HighWaterCols = %d, store has %d", got, want)
	}
	want := poolBytes(t, scratchPool(t, st, 0, 4, ing.opts))
	if !bytes.Equal(poolBytes(t, ing.Pool()), want) {
		t.Fatal("incrementally maintained pool differs from a from-scratch build")
	}
}

func TestBacklogSheds(t *testing.T) {
	st, _ := newTestStore(t)
	opts := testOptions()
	opts.QueueLen = 2
	ing, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, ing, "d00", day(0))
	mustPush(t, ing, "d01", day(1))
	_, err = push(t, ing, "d02", day(2))
	if !errors.Is(err, server.ErrIngestBacklog) {
		t.Fatalf("push over the backlog bound: %v, want ErrIngestBacklog", err)
	}
	if st.NumDays() != 2 {
		t.Fatalf("shed push still reached the store: %d days", st.NumDays())
	}
	// Draining frees the backlog and the retry lands.
	if err := ing.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustPush(t, ing, "d02", day(2))
}

// Crash-safe resume: the store (the WAL) runs ahead of the persisted
// pool; a restart replays exactly the missing days and ends
// byte-identical to a from-scratch build — at less FFT work.
func TestResumeReplaysMissingDays(t *testing.T) {
	st, dir := newTestStore(t)
	opts := testOptions()
	opts.PoolFile = filepath.Join(t.TempDir(), "pool.skpo")
	ing, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustPush(t, ing, fmt.Sprintf("d%02d", i), day(uint64(i)))
	}
	if err := ing.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The crash: one more day lands durably, but the process dies
	// before the pool catches up.
	mustPush(t, ing, "d03", day(3))

	st2, err := tabstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	ing2, err := New(st2, opts)
	if err != nil {
		t.Fatal(err)
	}
	before := fft.CorrelationCount()
	if err := ing2.Resume(context.Background()); err != nil {
		t.Fatal(err)
	}
	resumeCorr := fft.CorrelationCount() - before

	before = fft.CorrelationCount()
	want := poolBytes(t, scratchPool(t, st2, 0, 4, opts))
	scratchCorr := fft.CorrelationCount() - before

	if !bytes.Equal(poolBytes(t, ing2.Pool()), want) {
		t.Fatal("resumed pool differs from a from-scratch build")
	}
	if resumeCorr >= scratchCorr {
		t.Fatalf("resume ran %d correlations, not fewer than the %d of a full rebuild",
			resumeCorr, scratchCorr)
	}
	t.Logf("resume: %d correlations vs %d from scratch", resumeCorr, scratchCorr)
}

// A mismatched pool file (different parameters than configured) is
// discarded and the store rebuilds the truth.
func TestResumeDiscardsMismatchedPool(t *testing.T) {
	st, _ := newTestStore(t)
	opts := testOptions()
	opts.PoolFile = filepath.Join(t.TempDir(), "pool.skpo")
	ing, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, ing, "d00", day(0))
	mustPush(t, ing, "d01", day(1))

	// Persist a pool with a different k where the ingester expects its own.
	other := opts
	other.PoolK = 8
	if err := core.SavePoolFile(opts.PoolFile, scratchPool(t, st, 0, 1, other)); err != nil {
		t.Fatal(err)
	}
	var logged []string
	opts.Logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }
	ing2, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ing2.Resume(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(poolBytes(t, ing2.Pool()), poolBytes(t, scratchPool(t, st, 0, 2, opts))) {
		t.Fatal("resume after discarding a mismatched pool is not a clean rebuild")
	}
	found := false
	for _, l := range logged {
		if strings.Contains(l, "does not match") {
			found = true
		}
	}
	if !found {
		t.Fatalf("discard was not logged: %q", logged)
	}
}

// A torn append — the process dies mid-write of a day file — must leave
// the store ingestable: the injected-fault push fails cleanly without a
// manifest entry, the stray temp of a crashed write is swept on reopen,
// and the pool ends byte-identical to a from-scratch build.
func TestTornAppendRecovery(t *testing.T) {
	st, dir := newTestStore(t)
	ing, err := New(st, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, ing, "d00", day(0))
	mustPush(t, ing, "d01", day(1))

	// Fault injection: the first write of the next day file tears.
	atomicio.TestWrapWriter = func(path string, w io.Writer) io.Writer {
		if strings.Contains(filepath.Base(path), "day-") {
			return &faultinject.Writer{W: w, FailAt: 1, Short: true}
		}
		return w
	}
	defer func() { atomicio.TestWrapWriter = nil }()
	if _, err := push(t, ing, "d02", day(2)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn push: %v, want ErrInjected", err)
	}
	atomicio.TestWrapWriter = nil
	if st.NumDays() != 2 {
		t.Fatalf("torn push left %d manifest days, want 2", st.NumDays())
	}

	// A crash at the worst moment leaves the temp file behind instead;
	// plant one and reopen, as a restarting process would.
	torn := filepath.Join(dir, "day-0002.tabf.tmp-crashed")
	if err := os.WriteFile(torn, []byte("partial bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := tabstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("stray temp not swept on reopen: %v", err)
	}
	ing2, err := New(st2, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := ing2.Resume(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustPush(t, ing2, "d02", day(2))
	if err := ing2.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(poolBytes(t, ing2.Pool()), poolBytes(t, scratchPool(t, st2, 0, 3, ing2.opts))) {
		t.Fatal("pool after torn-append recovery differs from a from-scratch build")
	}
}

// Cancellation mid-rebuild publishes nothing and advances nothing; the
// next drain completes the same work byte-identically.
func TestMidRebuildCancellation(t *testing.T) {
	st, _ := newTestStore(t)
	ing, err := New(st, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, ing, "d00", day(0))
	mustPush(t, ing, "d01", day(1))
	if err := ing.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	hw := ing.Pool().HighWaterCols()
	mustPush(t, ing, "d02", day(2))
	mustPush(t, ing, "d03", day(3))

	ctx := faultinject.CancelAfterChecks(context.Background(), 3)
	if err := ing.drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled drain: %v, want context.Canceled", err)
	}
	if ing.Pending() != 2 {
		t.Fatalf("cancelled drain advanced the cursor: %d pending, want 2", ing.Pending())
	}
	if ing.Pool().HighWaterCols() != hw {
		t.Fatal("cancelled drain mutated the pool")
	}
	if err := ing.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(poolBytes(t, ing.Pool()), poolBytes(t, scratchPool(t, st, 0, 4, ing.opts))) {
		t.Fatal("drain after cancellation differs from a from-scratch build")
	}
}

func TestWindowTrimHysteresis(t *testing.T) {
	st, _ := newTestStore(t)
	opts := testOptions()
	opts.WindowDays = 4
	ing, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mustPush(t, ing, fmt.Sprintf("d%02d", i), day(uint64(i)))
		if err := ing.drain(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	// Day 4 overflowed the 4-day window and trimmed down to 2 kept days
	// (hysteresis), so after day 5 the window is days [3, 6).
	if ing.winStart != 3 {
		t.Fatalf("window starts at day %d, want 3", ing.winStart)
	}
	base, err := st.ColOffset(ing.winStart)
	if err != nil {
		t.Fatal(err)
	}
	if ing.Pool().BaseCol() != base {
		t.Fatalf("pool BaseCol = %d, want %d", ing.Pool().BaseCol(), base)
	}
	if got, want := ing.Pool().HighWaterCols(), st.ColsTotal(); got != want {
		t.Fatalf("HighWaterCols = %d, want %d", got, want)
	}
	if !bytes.Equal(poolBytes(t, ing.Pool()), poolBytes(t, scratchPool(t, st, 3, 6, opts))) {
		t.Fatal("trimmed-window pool differs from a from-scratch build over the window")
	}
}

type capturingPublisher struct {
	snaps []*server.Snapshot
}

func (p *capturingPublisher) Publish(sn *server.Snapshot) { p.snaps = append(p.snaps, sn) }

func TestPublishesSnapshots(t *testing.T) {
	st, _ := newTestStore(t)
	pub := &capturingPublisher{}
	opts := testOptions()
	opts.Publisher = pub
	opts.Snapshot = server.SnapshotConfig{TileRows: 8, TileCols: 8}
	ing, err := New(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustPush(t, ing, "d00", day(0))
	mustPush(t, ing, "d01", day(1))
	if err := ing.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	mustPush(t, ing, "d02", day(2))
	if err := ing.drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(pub.snaps) != 2 {
		t.Fatalf("published %d snapshots, want 2", len(pub.snaps))
	}
	last := pub.snaps[len(pub.snaps)-1]
	if last.Table().Cols() != st.ColsTotal() {
		t.Fatalf("published snapshot over %d cols, store has %d", last.Table().Cols(), st.ColsTotal())
	}
	if last.NumTiles() != (testRows/8)*(st.ColsTotal()/8) {
		t.Fatalf("published snapshot has %d tiles", last.NumTiles())
	}
}

func TestRecordRoundTrip(t *testing.T) {
	tb := day(9)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := WriteRecord(&buf, "d2026-08-06", tb, compress); err != nil {
			t.Fatal(err)
		}
		label, got, err := ReadRecord(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if label != "d2026-08-06" {
			t.Fatalf("label %q", label)
		}
		if !bytes.Equal(float64Bytes(got.Data()), float64Bytes(tb.Data())) {
			t.Fatal("cells did not round-trip")
		}
	}
}

func float64Bytes(xs []float64) []byte {
	var buf bytes.Buffer
	for _, x := range xs {
		fmt.Fprintf(&buf, "%x;", x)
	}
	return buf.Bytes()
}

func TestRecordRejects(t *testing.T) {
	tb := day(10)
	var ok bytes.Buffer
	if err := WriteRecord(&ok, "d00", tb, false); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":           {},
		"bad magic":       append([]byte("XREC"), ok.Bytes()[4:]...),
		"truncated label": ok.Bytes()[:11],
		"truncated table": ok.Bytes()[:ok.Len()-9],
	}
	for name, raw := range cases {
		if _, _, err := ReadRecord(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if err := WriteRecord(io.Discard, "bad/label", tb, false); err == nil {
		t.Error("separator label accepted")
	}
	if err := WriteRecord(io.Discard, "", tb, false); err == nil {
		t.Error("empty label accepted")
	}
	if err := WriteRecord(io.Discard, "sp ace", tb, false); err == nil {
		t.Error("label with a space accepted")
	}
}
