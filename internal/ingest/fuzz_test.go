package ingest

import (
	"bytes"
	"math"
	"testing"
)

// FuzzIngestRecord drives arbitrary bytes through the pushed-record
// parser — the exact surface POST /v1/ingest exposes to the network.
// The invariants: never panic, never allocate absurdly on a hostile
// header (the tabfile dimension bounds are part of the record format),
// and accept-then-reencode must round-trip to an equivalent record.
func FuzzIngestRecord(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteRecord(&seed, "d2026-08-06", day(1), false); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	var gz bytes.Buffer
	if err := WriteRecord(&gz, "compressed", day(2), true); err != nil {
		f.Fatal(err)
	}
	f.Add(gz.Bytes())
	f.Add([]byte("TREC"))
	f.Add(seed.Bytes()[:12])
	f.Add(append([]byte(nil), bytes.Repeat([]byte{0xff}, 64)...))

	f.Fuzz(func(t *testing.T, raw []byte) {
		label, tb, err := ReadRecord(bytes.NewReader(raw))
		if err != nil {
			return
		}
		if label == "" || tb.Rows() <= 0 || tb.Cols() <= 0 {
			t.Fatalf("accepted record with label %q dims %dx%d", label, tb.Rows(), tb.Cols())
		}
		for _, v := range tb.Data() {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("accepted record with non-finite cells")
			}
		}
		var re bytes.Buffer
		if err := WriteRecord(&re, label, tb, false); err != nil {
			t.Fatalf("re-encoding an accepted record: %v", err)
		}
		label2, tb2, err := ReadRecord(&re)
		if err != nil {
			t.Fatalf("re-reading a re-encoded record: %v", err)
		}
		if label2 != label || tb2.Rows() != tb.Rows() || tb2.Cols() != tb.Cols() {
			t.Fatal("re-encoded record is not equivalent")
		}
		for i, v := range tb.Data() {
			if math.Float64bits(v) != math.Float64bits(tb2.Data()[i]) {
				t.Fatal("re-encoded cells differ")
			}
		}
	})
}
