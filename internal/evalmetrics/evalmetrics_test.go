package evalmetrics

import (
	"math"
	"testing"
)

func TestCumulative(t *testing.T) {
	got, err := Cumulative([]float64{9, 11}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("Cumulative = %v, want 1 (errors cancel)", got)
	}
	got, _ = Cumulative([]float64{5}, []float64{10})
	if got != 0.5 {
		t.Errorf("Cumulative = %v, want 0.5", got)
	}
}

func TestCumulativeErrors(t *testing.T) {
	if _, err := Cumulative(nil, nil); err == nil {
		t.Error("empty: expected error")
	}
	if _, err := Cumulative([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatch: expected error")
	}
	if _, err := Cumulative([]float64{1}, []float64{0}); err == nil {
		t.Error("zero exact sum: expected error")
	}
}

func TestAverage(t *testing.T) {
	// errors do NOT cancel in the average measure
	got, err := Average([]float64{9, 11}, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Average = %v, want 0.9", got)
	}
	perfect, _ := Average([]float64{3, 4}, []float64{3, 4})
	if perfect != 1 {
		t.Errorf("perfect Average = %v, want 1", perfect)
	}
}

func TestAverageErrors(t *testing.T) {
	if _, err := Average([]float64{1}, []float64{0}); err == nil {
		t.Error("zero exact: expected error")
	}
	if _, err := Average(nil, nil); err == nil {
		t.Error("empty: expected error")
	}
}

func TestPairwise(t *testing.T) {
	triples := []Triple{
		{ExactXY: 1, ExactXZ: 2, EstXY: 1.1, EstXZ: 1.9}, // agree (Y closer)
		{ExactXY: 3, ExactXZ: 2, EstXY: 2.5, EstXZ: 2.6}, // disagree
		{ExactXY: 5, ExactXZ: 9, EstXY: 4, EstXZ: 10},    // agree
		{ExactXY: 9, ExactXZ: 5, EstXY: 10, EstXZ: 4},    // agree (Z closer)
	}
	got, err := Pairwise(triples)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0.75 {
		t.Errorf("Pairwise = %v, want 0.75", got)
	}
	if _, err := Pairwise(nil); err == nil {
		t.Error("empty: expected error")
	}
}

func TestConfusion(t *testing.T) {
	a := []int{0, 0, 1, 1, 2}
	b := []int{0, 1, 1, 1, 2}
	m, err := Confusion(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{
		{1, 1, 0},
		{0, 2, 0},
		{0, 0, 1},
	}
	for i := range want {
		for j := range want[i] {
			if m[i][j] != want[i][j] {
				t.Fatalf("confusion[%d][%d] = %v, want %v", i, j, m[i][j], want[i][j])
			}
		}
	}
}

func TestConfusionErrors(t *testing.T) {
	if _, err := Confusion(nil, nil, 2); err == nil {
		t.Error("empty: expected error")
	}
	if _, err := Confusion([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("mismatch: expected error")
	}
	if _, err := Confusion([]int{0}, []int{0}, 0); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := Confusion([]int{2}, []int{0}, 2); err == nil {
		t.Error("label out of range: expected error")
	}
	if _, err := Confusion([]int{0}, []int{-1}, 2); err == nil {
		t.Error("negative label: expected error")
	}
}

func TestAgreementPermutedLabels(t *testing.T) {
	// Identical partitions with permuted labels must agree 100% after
	// matching but poorly without.
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{1, 1, 2, 2, 0, 0}
	matched, err := Agreement(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if matched != 1 {
		t.Errorf("matched Agreement = %v, want 1", matched)
	}
	raw, err := AgreementRaw(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if raw != 0 {
		t.Errorf("raw Agreement = %v, want 0", raw)
	}
}

func TestAgreementPartial(t *testing.T) {
	a := []int{0, 0, 0, 1, 1, 1}
	b := []int{0, 0, 1, 1, 1, 1} // one object moved
	got, err := Agreement(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5.0/6.0) > 1e-12 {
		t.Errorf("Agreement = %v, want 5/6", got)
	}
}

func TestAgreementGreedyNeverBeatsHungarian(t *testing.T) {
	a := []int{0, 0, 0, 1, 1, 2, 2, 2}
	b := []int{1, 1, 0, 0, 0, 2, 2, 1}
	h, err := Agreement(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := AgreementGreedy(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g > h {
		t.Errorf("greedy %v beats hungarian %v", g, h)
	}
}

func TestQuality(t *testing.T) {
	q, err := Quality(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if q != 1 {
		t.Errorf("equal spreads: quality %v, want 1", q)
	}
	q, _ = Quality(110, 100) // sketch spread smaller → better → >1
	if q != 1.1 {
		t.Errorf("quality %v, want 1.1", q)
	}
	if _, err := Quality(-1, 1); err == nil {
		t.Error("negative spread: expected error")
	}
	if q, _ := Quality(0, 0); q != 1 {
		t.Errorf("0/0 quality %v, want 1", q)
	}
	if q, _ := Quality(5, 0); !math.IsInf(q, 1) {
		t.Errorf("x/0 quality %v, want +Inf", q)
	}
}
