package evalmetrics

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestAdjustedRandIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	got, err := AdjustedRand(a, a, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("ARI(identical) = %v, want 1", got)
	}
}

func TestAdjustedRandPermutedLabels(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{2, 2, 0, 0, 1, 1}
	got, err := AdjustedRand(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("ARI(permuted) = %v, want 1", got)
	}
}

func TestAdjustedRandKnownValue(t *testing.T) {
	// Classic textbook example (Hubert & Arabie style):
	// a: {0,0,0,1,1,1}; b: {0,0,1,1,2,2}.
	a := []int{0, 0, 0, 1, 1, 1}
	b := []int{0, 0, 1, 1, 2, 2}
	got, err := AdjustedRand(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Hand computation: contingency rows {2,1,0},{0,1,2};
	// Σ C(nij,2) = 1+0+0+0+0+1 = 2; rows: C(3,2)*2 = 6; cols: C(2,2)*3 = 3;
	// expected = 6*3/C(6,2) = 18/15 = 1.2; max = (6+3)/2 = 4.5;
	// ARI = (2-1.2)/(4.5-1.2) = 0.8/3.3 ≈ 0.242424...
	want := 0.8 / 3.3
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ARI = %v, want %v", got, want)
	}
}

func TestAdjustedRandIndependentNearZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	n := 3000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.IntN(4)
		b[i] = rng.IntN(4)
	}
	got, err := AdjustedRand(a, b, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got) > 0.03 {
		t.Errorf("ARI(independent) = %v, want ~0", got)
	}
}

func TestAdjustedRandDegenerate(t *testing.T) {
	a := []int{0, 0, 0}
	got, err := AdjustedRand(a, a, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("ARI(trivial) = %v, want 1", got)
	}
}

func TestAdjustedRandErrors(t *testing.T) {
	if _, err := AdjustedRand([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch: expected error")
	}
}

func TestNMIIdenticalAndPermuted(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{1, 1, 2, 2, 0, 0}
	got, err := NMI(a, a, 3)
	if err != nil || got != 1 {
		t.Errorf("NMI(identical) = %v, %v", got, err)
	}
	got, err = NMI(a, b, 3)
	if err != nil || math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI(permuted) = %v, %v", got, err)
	}
}

func TestNMIIndependentNearZero(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	n := 5000
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = rng.IntN(3)
		b[i] = rng.IntN(3)
	}
	got, err := NMI(a, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.02 {
		t.Errorf("NMI(independent) = %v, want ~0", got)
	}
}

func TestNMIPartialOverlap(t *testing.T) {
	// Half the objects move cluster: NMI strictly between 0 and 1.
	a := []int{0, 0, 0, 0, 1, 1, 1, 1}
	b := []int{0, 0, 1, 1, 1, 1, 0, 0}
	got, err := NMI(a, b, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got > 0.05 { // independent-looking: each a-cluster splits evenly
		t.Errorf("NMI(even split) = %v, want ~0", got)
	}
	c := []int{0, 0, 0, 1, 1, 1, 1, 1}
	got, err = NMI(a, c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got <= 0.1 || got >= 1 {
		t.Errorf("NMI(partial) = %v, want in (0.1, 1)", got)
	}
}

func TestNMITrivialCases(t *testing.T) {
	same := []int{0, 0, 0}
	got, err := NMI(same, same, 1)
	if err != nil || got != 1 {
		t.Errorf("NMI(both trivial) = %v, %v", got, err)
	}
	other := []int{0, 1, 0}
	got, err = NMI(same, other, 2)
	if err != nil || got != 0 {
		t.Errorf("NMI(one trivial) = %v, %v; want 0", got, err)
	}
}

func TestNMIErrors(t *testing.T) {
	if _, err := NMI([]int{0}, []int{0, 1}, 2); err == nil {
		t.Error("length mismatch: expected error")
	}
	if _, err := NMI([]int{5}, []int{0}, 2); err == nil {
		t.Error("label out of range: expected error")
	}
}

func TestIndicesAgreeOnOrdering(t *testing.T) {
	// Both indices should rank a closer clustering above a farther one.
	truth := []int{0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2}
	close := []int{0, 0, 0, 1, 1, 1, 1, 1, 2, 2, 2, 2} // 1 object moved
	far := []int{0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2}   // scrambled
	ariClose, _ := AdjustedRand(truth, close, 3)
	ariFar, _ := AdjustedRand(truth, far, 3)
	nmiClose, _ := NMI(truth, close, 3)
	nmiFar, _ := NMI(truth, far, 3)
	if ariClose <= ariFar {
		t.Errorf("ARI ordering wrong: close %v, far %v", ariClose, ariFar)
	}
	if nmiClose <= nmiFar {
		t.Errorf("NMI ordering wrong: close %v, far %v", nmiClose, nmiFar)
	}
}
