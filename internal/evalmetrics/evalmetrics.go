// Package evalmetrics implements the accuracy measures of Section 4.1 of
// the paper (Definitions 7–11): cumulative and average correctness of
// sketched distances, pairwise comparison correctness, confusion-matrix
// agreement between two clusterings, and the spread-based clustering
// quality ratio.
package evalmetrics

import (
	"fmt"
	"math"

	"repro/internal/assign"
	"repro/internal/parallel"
)

// evalParallelMin is the experiment count above which the pairwise
// metrics fan out over GOMAXPROCS workers; below it the fan-out costs
// more than the loop. Results never depend on the choice: parallel.Sum
// reduces in fixed-size blocks whose order is worker-count-independent,
// and parallel.Count is integer arithmetic.
const evalParallelMin = 4096

func evalWorkers(n int) int {
	if n < evalParallelMin {
		return 1
	}
	return parallel.Resolve(0)
}

// Cumulative is Definition 7: Σ estimated / Σ exact over a set of
// experiments — "in the long run, how accurate the sketches are".
// A perfect estimator scores 1.0.
func Cumulative(est, exact []float64) (float64, error) {
	if err := checkPair(est, exact); err != nil {
		return 0, err
	}
	w := evalWorkers(len(est))
	se := parallel.Sum(w, len(est), func(i int) float64 { return est[i] })
	sx := parallel.Sum(w, len(exact), func(i int) float64 { return exact[i] })
	if sx == 0 {
		return 0, fmt.Errorf("evalmetrics: exact distances sum to zero")
	}
	return se / sx, nil
}

// Average is Definition 8: 1 − (1/k)·Σ |1 − estᵢ/exactᵢ|, the mean
// per-experiment relative agreement. A perfect estimator scores 1.0.
// Experiments with exact distance zero are rejected (the ratio is
// undefined there).
func Average(est, exact []float64) (float64, error) {
	if err := checkPair(est, exact); err != nil {
		return 0, err
	}
	w := evalWorkers(len(est))
	// Reject zero exact distances up front so the parallel reduction
	// below never divides by zero; the scan is cheap relative to it.
	if parallel.Count(w, len(exact), func(i int) bool { return exact[i] == 0 }) > 0 {
		for i := range exact {
			if exact[i] == 0 {
				return 0, fmt.Errorf("evalmetrics: exact distance zero at experiment %d", i)
			}
		}
	}
	sum := parallel.Sum(w, len(est), func(i int) float64 {
		return math.Abs(1 - est[i]/exact[i])
	})
	return 1 - sum/float64(len(est)), nil
}

func checkPair(est, exact []float64) error {
	if len(est) == 0 {
		return fmt.Errorf("evalmetrics: no experiments")
	}
	if len(est) != len(exact) {
		return fmt.Errorf("evalmetrics: %d estimates vs %d exact values", len(est), len(exact))
	}
	return nil
}

// Triple is one pairwise-comparison experiment: the distances from a test
// point X to two candidates Y and Z, measured exactly and by sketch.
type Triple struct {
	ExactXY, ExactXZ float64
	EstXY, EstXZ     float64
}

// Pairwise is Definition 9: the fraction of experiments in which the
// sketched comparison "is X closer to Y or to Z?" agrees with the exact
// comparison. The paper's xor formulation counts exactly the agreements:
// xor(exact says Y, sketch says Z) is 1 only on disagreement.
func Pairwise(triples []Triple) (float64, error) {
	if len(triples) == 0 {
		return 0, fmt.Errorf("evalmetrics: no triples")
	}
	correct := parallel.Count(evalWorkers(len(triples)), len(triples), func(i int) bool {
		tr := triples[i]
		return (tr.ExactXY < tr.ExactXZ) == (tr.EstXY < tr.EstXZ)
	})
	return float64(correct) / float64(len(triples)), nil
}

// Confusion builds the k×k confusion matrix between two labelings of the
// same objects: confusion[i][j] counts objects labeled i by a and j by b
// (Definition 10's underlying construct).
func Confusion(a, b []int, k int) ([][]float64, error) {
	if len(a) == 0 || len(a) != len(b) {
		return nil, fmt.Errorf("evalmetrics: labelings of length %d and %d", len(a), len(b))
	}
	if k <= 0 {
		return nil, fmt.Errorf("evalmetrics: k = %d", k)
	}
	m := make([][]float64, k)
	for i := range m {
		m[i] = make([]float64, k)
	}
	for i := range a {
		if a[i] < 0 || a[i] >= k || b[i] < 0 || b[i] >= k {
			return nil, fmt.Errorf("evalmetrics: label out of range at %d: (%d, %d)", i, a[i], b[i])
		}
		m[a[i]][b[i]]++
	}
	return m, nil
}

// Agreement is Definition 10: the fraction of objects on the diagonal of
// the confusion matrix after the clusters of b have been optimally matched
// to the clusters of a (Hungarian assignment maximizing the diagonal).
// Cluster labels are arbitrary, so matching first is what makes the
// diagonal meaningful.
func Agreement(a, b []int, k int) (float64, error) {
	m, err := Confusion(a, b, k)
	if err != nil {
		return 0, err
	}
	match, err := assign.MaxProfit(m)
	if err != nil {
		return 0, err
	}
	var diag float64
	for i, j := range match {
		diag += m[i][j]
	}
	return diag / float64(len(a)), nil
}

// AgreementRaw is the diagonal fraction without label matching — useful
// when the two labelings are already aligned (e.g. ground truth generated
// with fixed ids and a clustering relabeled beforehand).
func AgreementRaw(a, b []int, k int) (float64, error) {
	m, err := Confusion(a, b, k)
	if err != nil {
		return 0, err
	}
	var diag float64
	for i := 0; i < k; i++ {
		diag += m[i][i]
	}
	return diag / float64(len(a)), nil
}

// AgreementGreedy matches labels with the greedy heuristic instead of the
// Hungarian algorithm, as an ablation baseline; it never exceeds
// Agreement.
func AgreementGreedy(a, b []int, k int) (float64, error) {
	m, err := Confusion(a, b, k)
	if err != nil {
		return 0, err
	}
	match, err := assign.GreedyMaxProfit(m)
	if err != nil {
		return 0, err
	}
	var diag float64
	for i, j := range match {
		diag += m[i][j]
	}
	return diag / float64(len(a)), nil
}

// Quality is Definition 11's clustering-quality measure, reported so that
// values above 1.0 mean the sketched clustering is BETTER (smaller total
// spread) than the exact clustering, matching the paper's narration
// ("quality rating greater than 100%" for sketch improvements):
//
//	Quality = Σ spread_exact(i) / Σ spread_sketch(i)
//
// (The displayed formula in the paper inverts this ratio, which would
// contradict its own discussion; we follow the discussion.)
// Both spreads must be computed with the same exact distance function
// over the same points.
func Quality(spreadExact, spreadSketch float64) (float64, error) {
	if spreadExact < 0 || spreadSketch < 0 {
		return 0, fmt.Errorf("evalmetrics: negative spread")
	}
	if spreadSketch == 0 {
		if spreadExact == 0 {
			return 1, nil
		}
		return math.Inf(1), nil
	}
	return spreadExact / spreadSketch, nil
}
