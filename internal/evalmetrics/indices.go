package evalmetrics

import "math"

// This file adds the two standard external clustering indices beyond the
// paper's confusion-matrix agreement: the Adjusted Rand Index and
// Normalized Mutual Information. Both are label-permutation invariant, so
// unlike Definition 10 they need no Hungarian matching, and both are
// chance-corrected/normalized, which makes cross-k comparisons meaningful
// (used by the cross-algorithm experiment).

// AdjustedRand computes the Adjusted Rand Index between two labelings of
// the same objects: 1 for identical partitions, ~0 for independent ones,
// negative for adversarial disagreement. Labels must lie in [0, k).
func AdjustedRand(a, b []int, k int) (float64, error) {
	m, err := Confusion(a, b, k)
	if err != nil {
		return 0, err
	}
	n := float64(len(a))
	var sumCells, sumRows, sumCols float64
	for i := 0; i < k; i++ {
		var rowTotal float64
		for j := 0; j < k; j++ {
			sumCells += choose2(m[i][j])
			rowTotal += m[i][j]
		}
		sumRows += choose2(rowTotal)
	}
	for j := 0; j < k; j++ {
		var colTotal float64
		for i := 0; i < k; i++ {
			colTotal += m[i][j]
		}
		sumCols += choose2(colTotal)
	}
	expected := sumRows * sumCols / choose2(n)
	maxIndex := (sumRows + sumCols) / 2
	if maxIndex == expected {
		// Degenerate partitions (e.g. both trivial): identical by
		// convention.
		return 1, nil
	}
	return (sumCells - expected) / (maxIndex - expected), nil
}

func choose2(x float64) float64 { return x * (x - 1) / 2 }

// NMI computes Normalized Mutual Information between two labelings,
// normalized by the arithmetic mean of the entropies: 1 for identical
// partitions, 0 for independent ones. Labels must lie in [0, k).
func NMI(a, b []int, k int) (float64, error) {
	m, err := Confusion(a, b, k)
	if err != nil {
		return 0, err
	}
	n := float64(len(a))
	rowP := make([]float64, k)
	colP := make([]float64, k)
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			rowP[i] += m[i][j] / n
			colP[j] += m[i][j] / n
		}
	}
	var mi float64
	for i := 0; i < k; i++ {
		for j := 0; j < k; j++ {
			p := m[i][j] / n
			if p > 0 {
				mi += p * math.Log(p/(rowP[i]*colP[j]))
			}
		}
	}
	ha, hb := entropy(rowP), entropy(colP)
	if ha == 0 && hb == 0 {
		return 1, nil // both partitions trivial and therefore identical
	}
	// One trivial partition carries no information about the other:
	// MI = 0 and the mean entropy is positive, so NMI is 0.
	v := mi / ((ha + hb) / 2)
	// Clamp float noise.
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v, nil
}

func entropy(p []float64) float64 {
	var h float64
	for _, v := range p {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}
