// Package lpnorm computes exact Lp norms and distances for vectors and
// matrices, p ∈ (0, 2], as defined in Section 3.1 of the paper:
//
//	‖x − y‖p = (Σᵢ |xᵢ − yᵢ|^p)^(1/p)
//
// Matrices are treated as linearized vectors (the Lp norms are entrywise,
// so any consistent linearization gives the same value). These routines
// are the paper's "exact computation" baseline: linear time in the object
// size, which is precisely the cost the sketches avoid.
//
// The package also provides the Hamming distance (the p → 0 limit the
// paper discusses when explaining why very small p clusters poorly) and
// raw p-th-power distances (which skip the final root; monotone in the
// true distance and therefore interchangeable for comparisons).
package lpnorm

import (
	"fmt"
	"math"
)

// P describes an Lp norm with its exponent validated at construction.
type P struct {
	p float64
}

// NewP returns the Lp norm descriptor. p must be in (0, 2]; the sketching
// theory (and the meaningfulness of the metric comparisons in the paper)
// holds only on that range.
func NewP(p float64) (P, error) {
	if !(p > 0) || p > 2 || math.IsNaN(p) {
		return P{}, fmt.Errorf("lpnorm: p %v outside (0, 2]", p)
	}
	return P{p: p}, nil
}

// MustP is NewP for constant exponents; it panics on error.
func MustP(p float64) P {
	v, err := NewP(p)
	if err != nil {
		panic(err)
	}
	return v
}

// Value returns the exponent.
func (lp P) Value() float64 { return lp.p }

// Norm returns ‖x‖p.
func (lp P) Norm(x []float64) float64 {
	return math.Pow(lp.PowSum(x), 1/lp.p)
}

// PowSum returns Σ|xᵢ|^p, the p-th power of the norm. Comparisons of
// PowSum values order identically to comparisons of norms, so distance-
// based algorithms can skip the root.
func (lp P) PowSum(x []float64) float64 {
	switch lp.p {
	case 2:
		var s float64
		for _, v := range x {
			s += v * v
		}
		return s
	case 1:
		var s float64
		for _, v := range x {
			s += math.Abs(v)
		}
		return s
	default:
		var s float64
		for _, v := range x {
			if v != 0 {
				s += math.Pow(math.Abs(v), lp.p)
			}
		}
		return s
	}
}

// Dist returns ‖x − y‖p. x and y must have equal length.
func (lp P) Dist(x, y []float64) float64 {
	return math.Pow(lp.DistPowSum(x, y), 1/lp.p)
}

// DistPowSum returns Σ|xᵢ − yᵢ|^p without the final root.
func (lp P) DistPowSum(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("lpnorm: length mismatch %d vs %d", len(x), len(y)))
	}
	switch lp.p {
	case 2:
		var s float64
		for i, v := range x {
			d := v - y[i]
			s += d * d
		}
		return s
	case 1:
		var s float64
		for i, v := range x {
			s += math.Abs(v - y[i])
		}
		return s
	default:
		var s float64
		for i, v := range x {
			d := v - y[i]
			if d != 0 {
				s += math.Pow(math.Abs(d), lp.p)
			}
		}
		return s
	}
}

// Hamming returns the number of positions where x and y differ — the
// p → 0 limit of Σ|xᵢ−yᵢ|^p. Panics on length mismatch.
func Hamming(x, y []float64) int {
	if len(x) != len(y) {
		panic(fmt.Sprintf("lpnorm: length mismatch %d vs %d", len(x), len(y)))
	}
	n := 0
	for i, v := range x {
		if v != y[i] {
			n++
		}
	}
	return n
}
