package lpnorm

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewPValidation(t *testing.T) {
	for _, p := range []float64{0, -1, 2.5, math.NaN()} {
		if _, err := NewP(p); err == nil {
			t.Errorf("NewP(%v): expected error", p)
		}
	}
	for _, p := range []float64{0.01, 0.5, 1, 1.5, 2} {
		lp, err := NewP(p)
		if err != nil {
			t.Fatalf("NewP(%v): %v", p, err)
		}
		if lp.Value() != p {
			t.Errorf("Value() = %v, want %v", lp.Value(), p)
		}
	}
}

func TestMustPPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustP(3)
}

func TestNormKnownValues(t *testing.T) {
	x := []float64{3, -4}
	if got := MustP(2).Norm(x); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 norm = %v, want 5", got)
	}
	if got := MustP(1).Norm(x); math.Abs(got-7) > 1e-12 {
		t.Errorf("L1 norm = %v, want 7", got)
	}
	// L0.5: (sqrt3 + sqrt4)^2 = (1.7320508 + 2)^2 ≈ 13.9282
	want := math.Pow(math.Sqrt(3)+2, 2)
	if got := MustP(0.5).Norm(x); math.Abs(got-want) > 1e-9 {
		t.Errorf("L0.5 norm = %v, want %v", got, want)
	}
}

func TestDistKnownValues(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, 2, -1}
	// diffs: -3, 0, 4
	if got := MustP(1).Dist(x, y); math.Abs(got-7) > 1e-12 {
		t.Errorf("L1 dist = %v, want 7", got)
	}
	if got := MustP(2).Dist(x, y); math.Abs(got-5) > 1e-12 {
		t.Errorf("L2 dist = %v, want 5", got)
	}
}

func TestDistZeroAndIdentity(t *testing.T) {
	x := []float64{1, -2, 0.5}
	for _, p := range []float64{0.3, 0.7, 1, 1.6, 2} {
		lp := MustP(p)
		if got := lp.Dist(x, x); got != 0 {
			t.Errorf("p=%v: Dist(x,x) = %v, want 0", p, got)
		}
		if got := lp.Norm(nil); got != 0 {
			t.Errorf("p=%v: Norm(empty) = %v, want 0", p, got)
		}
	}
}

func TestDistSymmetry(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, p := range []float64{0.4, 1, 1.5, 2} {
		lp := MustP(p)
		for trial := 0; trial < 30; trial++ {
			n := 1 + rng.IntN(20)
			x, y := randVec(rng, n), randVec(rng, n)
			if d1, d2 := lp.Dist(x, y), lp.Dist(y, x); math.Abs(d1-d2) > 1e-12 {
				t.Fatalf("p=%v: asymmetric %v vs %v", p, d1, d2)
			}
		}
	}
}

func TestTriangleInequalityForPGE1(t *testing.T) {
	// Lp is a metric for p >= 1 and must satisfy the triangle inequality.
	rng := rand.New(rand.NewPCG(2, 2))
	for _, p := range []float64{1, 1.3, 1.7, 2} {
		lp := MustP(p)
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.IntN(12)
			x, y, z := randVec(rng, n), randVec(rng, n), randVec(rng, n)
			if lp.Dist(x, z) > lp.Dist(x, y)+lp.Dist(y, z)+1e-9 {
				t.Fatalf("p=%v: triangle inequality violated", p)
			}
		}
	}
}

func TestPowSumTriangleForPLT1(t *testing.T) {
	// For p < 1, the p-th power sum d(x,y) = Σ|xi-yi|^p is itself a metric.
	rng := rand.New(rand.NewPCG(3, 3))
	for _, p := range []float64{0.25, 0.5, 0.8} {
		lp := MustP(p)
		for trial := 0; trial < 100; trial++ {
			n := 1 + rng.IntN(12)
			x, y, z := randVec(rng, n), randVec(rng, n), randVec(rng, n)
			if lp.DistPowSum(x, z) > lp.DistPowSum(x, y)+lp.DistPowSum(y, z)+1e-9 {
				t.Fatalf("p=%v: power-sum triangle inequality violated", p)
			}
		}
	}
}

func TestPowSumConsistentWithNorm(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for _, p := range []float64{0.5, 1, 1.5, 2} {
		lp := MustP(p)
		x := randVec(rng, 16)
		if got, want := lp.Norm(x), math.Pow(lp.PowSum(x), 1/p); math.Abs(got-want) > 1e-12 {
			t.Errorf("p=%v: Norm %v vs PowSum^1/p %v", p, got, want)
		}
	}
}

func TestScaleHomogeneity(t *testing.T) {
	// ‖c·x‖p = |c|·‖x‖p for every p.
	f := func(raw []float64, c float64) bool {
		if len(raw) == 0 || len(raw) > 32 || math.IsNaN(c) || math.IsInf(c, 0) || math.Abs(c) > 1e3 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e3 {
				return true
			}
			x[i] = v
		}
		for _, p := range []float64{0.5, 1, 1.7, 2} {
			lp := MustP(p)
			scaled := make([]float64, len(x))
			for i := range x {
				scaled[i] = c * x[i]
			}
			want := math.Abs(c) * lp.Norm(x)
			got := lp.Norm(scaled)
			if math.Abs(got-want) > 1e-6*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLpMonotoneInPForUnitVectors(t *testing.T) {
	// For a fixed vector, ‖x‖p is non-increasing in p.
	rng := rand.New(rand.NewPCG(5, 5))
	x := randVec(rng, 10)
	prev := math.Inf(1)
	for _, p := range []float64{0.25, 0.5, 1, 1.5, 2} {
		n := MustP(p).Norm(x)
		if n > prev+1e-9 {
			t.Fatalf("norm not non-increasing in p at p=%v: %v > %v", p, n, prev)
		}
		prev = n
	}
}

func TestDistLengthMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dist":    func() { MustP(1).Dist([]float64{1}, []float64{1, 2}) },
		"powsum":  func() { MustP(1).DistPowSum([]float64{1}, []float64{1, 2}) },
		"hamming": func() { Hamming([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestHamming(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{1, 0, 3, 5}
	if got := Hamming(x, y); got != 2 {
		t.Errorf("Hamming = %d, want 2", got)
	}
	if got := Hamming(x, x); got != 0 {
		t.Errorf("Hamming(x,x) = %d, want 0", got)
	}
}

func TestSmallPApproachesHamming(t *testing.T) {
	// For tiny p, DistPowSum approaches the count of differing entries.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 7, 3, 9, 5}
	got := MustP(0.01).DistPowSum(x, y)
	want := float64(Hamming(x, y))
	if math.Abs(got-want) > 0.1 {
		t.Errorf("p=0.01 power sum = %v, want ~%v (Hamming)", got, want)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 5
	}
	return out
}
