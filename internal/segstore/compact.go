package segstore

import (
	"fmt"
	"path/filepath"

	"repro/internal/core"
)

// DefaultCompactFanout is how many adjacent same-level segments a
// compaction merges into one segment of the next level.
const DefaultCompactFanout = 4

// Compact merges the first run of at least fanout column-adjacent
// segments sharing a level into a single segment of level+1 — classic
// size-tiered compaction, with column adjacency guaranteed by the
// manifest's contiguous tiling. The merged file is written and fsynced
// before an atomic manifest swap replaces its inputs; the inputs stay
// mapped (and their files on disk) until the last View referencing them
// releases, so queries over pre-compaction snapshots are untouched. At
// most one merge runs per call — the ingester calls it from its
// maintenance loop, bounding per-step work.
//
// Reports whether a merge happened. A failed merge leaves the live set
// unchanged (and counts in tabmine_seg_compactions_failed_total).
func (st *Store) Compact(fanout int) (bool, error) {
	if fanout < 2 {
		fanout = DefaultCompactFanout
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	run, level := st.compactRunLocked(fanout)
	if run == nil {
		return false, nil
	}
	merged, err := st.mergeLocked(run, level+1)
	if err != nil {
		mSegCompactFailed.Add(1)
		return false, err
	}
	if err := st.commitLocked([]Entry{merged}, run, func(m *manifest) {
		out := make([]Entry, 0, len(m.Segments)-len(run)+1)
		inserted := false
		for _, e := range m.Segments {
			if e.T1 <= merged.T0 || e.T0 >= merged.T1 {
				out = append(out, e)
				continue
			}
			if !inserted {
				out = append(out, merged)
				inserted = true
			}
		}
		m.Segments = out
		m.NextSeq = merged.Seq + 1
	}); err != nil {
		mSegCompactFailed.Add(1)
		return false, err
	}
	mSegCompactions.Add(1)
	return true, nil
}

// compactRunLocked finds the leftmost run of ≥ fanout consecutive
// entries sharing a level and returns its first fanout entries.
func (st *Store) compactRunLocked(fanout int) ([]Entry, int) {
	segs := st.man.Segments
	for i := 0; i < len(segs); {
		j := i
		for j < len(segs) && segs[j].Level == segs[i].Level {
			j++
		}
		if j-i >= fanout {
			return append([]Entry(nil), segs[i:i+fanout]...), segs[i].Level
		}
		i = j
	}
	return nil, 0
}

// mergeLocked writes the merged segment for run (column-adjacent, in
// order). Lane payloads are the per-plane-row interleave of the inputs'
// bands — bands are row-major within the band, so a whole-blob
// concatenation would scramble rows; each output row r is the
// concatenation of every input's row r. The merged bytes are exactly
// the band [T0, T1) a single wide seal would have produced, so pools
// rebanded onto the merged segment stay byte-identical.
func (st *Store) mergeLocked(run []Entry, level int) (Entry, error) {
	ins := make([]*segment, len(run))
	for n, e := range run {
		sg, ok := st.segs[e.Seq]
		if !ok {
			return Entry{}, fmt.Errorf("segstore: compaction input seq %d not live", e.Seq)
		}
		ins[n] = sg
	}
	t0, t1 := run[0].T0, run[len(run)-1].T1
	seq := st.man.NextSeq
	name := fmt.Sprintf("seg-%08d-l%d.seg", seq, level)
	srcs := make([]laneSource, 0, len(st.params.lanes()))
	for _, id := range st.params.lanes() {
		id := id
		laneRows := st.params.laneRows(id.I)
		srcs = append(srcs, laneSource{
			ID: id,
			Read: func(dst []float64) ([]float64, error) {
				return mergeLane(id, laneRows, st.params.K, t1-t0, ins, dst)
			},
		})
	}
	return writeSegmentFile(filepath.Join(st.dir, name), st.params, level, seq, t0, t1, srcs)
}

// mergeLane assembles one lane's merged band: output row r is the
// concatenation of each input segment's row r.
func mergeLane(id core.LaneID, laneRows, k, width int, ins []*segment, dst []float64) ([]float64, error) {
	n := laneRows * width * k
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	at := 0 // output column offset of the current input
	for _, sg := range ins {
		src, ok := sg.lanes[id]
		if !ok {
			return nil, fmt.Errorf("segstore: input segment %q missing lane %+v", sg.entry.File, id)
		}
		w := sg.entry.Cols()
		for r := 0; r < laneRows; r++ {
			copy(dst[(r*width+at)*k:(r*width+at+w)*k], src[r*w*k:(r+1)*w*k])
		}
		at += w
	}
	if at != width {
		return nil, fmt.Errorf("segstore: merged inputs cover %d columns, want %d", at, width)
	}
	return dst, nil
}
