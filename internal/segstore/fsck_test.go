package segstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// fsckFixture builds a store with four L0 segments and closes it,
// returning the directory.
func fsckFixture(t *testing.T) string {
	t.Helper()
	p := testParams()
	dir := t.TempDir()
	tb := testTable(t, p.Rows, 20, 0)
	st, err := Open(dir, p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	banded := mustBanded(t, tb, p, 0, nil)
	sealAll(t, st, banded, 4)
	st.Close()
	return dir
}

func TestFsckHealthyStore(t *testing.T) {
	dir := fsckFixture(t)
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if !rep.OK() || rep.Checked != 4 || rep.Rebuilt {
		t.Fatalf("healthy store fsck report %+v", rep)
	}
}

func TestFsckNoStore(t *testing.T) {
	rep, err := Fsck(t.TempDir())
	if err != nil || !rep.OK() {
		t.Fatalf("fsck of empty dir: %+v, %v", rep, err)
	}
}

// TestFsckQuarantinesCorruptionAndTruncatesAtHole corrupts a middle
// segment's payload: fsck must quarantine it and every later segment
// (the live set must tile contiguously), and the repaired store must
// open and serve the surviving prefix.
func TestFsckQuarantinesCorruptionAndTruncatesAtHole(t *testing.T) {
	dir := fsckFixture(t)
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := man.Segments[1].File
	path := filepath.Join(dir, victim)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF // flip a payload byte: whole-file and lane CRC break
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if rep.OK() || !rep.Rebuilt {
		t.Fatalf("fsck missed the corruption: %+v", rep)
	}
	if len(rep.Quarantined) != 3 { // the victim plus the two segments after the hole
		t.Fatalf("quarantined %v, want the victim and both followers", rep.Quarantined)
	}
	for _, q := range rep.Quarantined {
		if _, err := os.Stat(filepath.Join(dir, quarantineDir, q)); err != nil {
			t.Fatalf("quarantined file %q not preserved: %v", q, err)
		}
	}

	st, err := Open(dir, testParams())
	if err != nil {
		t.Fatalf("reopen after fsck: %v", err)
	}
	defer st.Close()
	if got := st.SealedCol(); got != 4 {
		t.Fatalf("repaired store sealed to %d, want the surviving prefix 4", got)
	}
	rep2, err := Fsck(dir)
	if err != nil || !rep2.OK() {
		t.Fatalf("second fsck not clean: %+v, %v", rep2, err)
	}
}

// TestFsckRebuildsManifest destroys the manifest: fsck must rebuild it
// from segment headers, keeping the full contiguous chain.
func TestFsckRebuildsManifest(t *testing.T) {
	dir := fsckFixture(t)
	manPath := filepath.Join(dir, manifestName)
	if err := os.WriteFile(manPath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if !rep.Rebuilt {
		t.Fatalf("fsck did not rebuild the manifest: %+v", rep)
	}
	st, err := Open(dir, testParams())
	if err != nil {
		t.Fatalf("reopen after rebuild: %v", err)
	}
	defer st.Close()
	if got := st.SealedCol(); got != 16 {
		t.Fatalf("rebuilt store sealed to %d, want 16", got)
	}
	if n := len(st.Segments()); n != 4 {
		t.Fatalf("rebuilt manifest names %d segments, want 4", n)
	}
}

// TestFsckQuarantinesMissingSegmentFollowers deletes a segment file
// outright: the entry is dropped (nothing to quarantine) and the
// followers are quarantined.
func TestFsckQuarantinesMissingSegmentFollowers(t *testing.T) {
	dir := fsckFixture(t)
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, man.Segments[2].File)); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("quarantined %v, want just the follower", rep.Quarantined)
	}
	st, err := Open(dir, testParams())
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st.Close()
	if got := st.SealedCol(); got != 8 {
		t.Fatalf("repaired store sealed to %d, want 8", got)
	}
}

func TestFsckRemovesStrayTemps(t *testing.T) {
	dir := fsckFixture(t)
	stray := filepath.Join(dir, "segments.json.tmp-123")
	if err := os.WriteFile(stray, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if len(rep.TempsRemoved) != 1 {
		t.Fatalf("temps removed %v, want the stray", rep.TempsRemoved)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray temp survived fsck")
	}
}

// TestFsckDetectsSizeAndHeaderMismatch truncates a segment so its size
// disagrees with the manifest.
func TestFsckDetectsSizeMismatch(t *testing.T) {
	dir := fsckFixture(t)
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	victim := man.Segments[3].File
	if err := os.Truncate(filepath.Join(dir, victim), man.Segments[3].Bytes-8); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dir)
	if err != nil {
		t.Fatalf("Fsck: %v", err)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != victim {
		t.Fatalf("quarantined %v, want only the truncated last segment", rep.Quarantined)
	}
}

func TestListReportsSegments(t *testing.T) {
	dir := fsckFixture(t)
	l, err := List(dir)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if l.BaseCol != 0 || l.SealedCol != 16 || len(l.Segments) != 4 {
		t.Fatalf("listing %+v", l)
	}
	for _, s := range l.Segments {
		if !s.CRCOK {
			t.Fatalf("segment %q reports CRC mismatch on a healthy store", s.File)
		}
		if s.MappedBytes != s.Bytes || s.PayloadBytes <= 0 || s.PayloadBytes >= s.MappedBytes {
			t.Fatalf("segment %q byte accounting: mapped %d disk %d payload %d",
				s.File, s.MappedBytes, s.Bytes, s.PayloadBytes)
		}
	}
	// Corrupt one file: List must flag it without erroring.
	path := filepath.Join(dir, l.Segments[0].File)
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := List(dir)
	if err != nil {
		t.Fatalf("List after corruption: %v", err)
	}
	if l2.Segments[0].CRCOK {
		t.Fatal("List missed a CRC mismatch")
	}
}

// TestManifestRoundTripsThroughJSON pins the on-disk JSON field names —
// external tooling parses them.
func TestManifestRoundTripsThroughJSON(t *testing.T) {
	dir := fsckFixture(t)
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"version", "params", "base_col", "next_seq", "segments"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("manifest JSON lacks %q: %s", key, raw)
		}
	}
	segs := doc["segments"].([]any)
	first := segs[0].(map[string]any)
	for _, key := range []string{"file", "level", "seq", "t0", "t1", "crc32c", "bytes"} {
		if _, ok := first[key]; !ok {
			t.Fatalf("segment entry JSON lacks %q: %s", key, raw)
		}
	}
}
