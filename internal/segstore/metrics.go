package segstore

import (
	"expvar"
	"fmt"
)

// Segment-store expvars, exported on /debug/vars next to the server's
// tabmine_* family. Counters are *_total and only ever increase; the
// byte and per-level figures are gauges maintained on map/unmap and
// manifest swap. Tests assert deltas, never absolutes, since several
// stores may share one process.
var (
	mSegCreated       = expvar.NewInt("tabmine_seg_created_total")
	mSegReclaimed     = expvar.NewInt("tabmine_seg_reclaimed_total")
	mSegCompactions   = expvar.NewInt("tabmine_seg_compactions_total")
	mSegCompactFailed = expvar.NewInt("tabmine_seg_compactions_failed_total")
	mSegBytesMapped   = expvar.NewInt("tabmine_seg_bytes_mapped")
	mSegBytesDisk     = expvar.NewInt("tabmine_seg_bytes_disk")
	mSegLevels        = expvar.NewMap("tabmine_seg_level_segments")
	// mRestartReplayDays is the number of WAL days the last Resume had
	// to replay before serving. Segment mode pins it to 0 — restart maps
	// segments and rebuilds only the fringe; pool-file mode reports the
	// day-by-day backlog it drained.
	mRestartReplayDays = expvar.NewInt("tabmine_seg_restart_replay_days")
)

// SetRestartReplayDays records how many WAL days a Resume replayed
// before first serve (0 in segment mode).
func SetRestartReplayDays(n int) { mRestartReplayDays.Set(int64(n)) }

func levelKey(level int) string { return fmt.Sprintf("L%d", level) }

// Stats is a point-in-time copy of the segment-store expvars, for
// delta assertions in tests.
type Stats struct {
	Created, Reclaimed       int64
	Compactions, CompactFail int64
	BytesMapped, BytesDisk   int64
	RestartReplayDays        int64
}

// ReadStats snapshots the segment-store expvars.
func ReadStats() Stats {
	return Stats{
		Created:           mSegCreated.Value(),
		Reclaimed:         mSegReclaimed.Value(),
		Compactions:       mSegCompactions.Value(),
		CompactFail:       mSegCompactFailed.Value(),
		BytesMapped:       mSegBytesMapped.Value(),
		BytesDisk:         mSegBytesDisk.Value(),
		RestartReplayDays: mRestartReplayDays.Value(),
	}
}
