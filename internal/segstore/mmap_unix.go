//go:build unix

package segstore

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared. The mapping stays
// valid after f is closed and after the file is unlinked — POSIX keeps
// the pages until munmap — which is what lets compaction unlink retired
// segments while old snapshots still read them. Reports mapped=true so
// release knows to munmap.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func unmapFile(data []byte, mapped bool) error {
	if !mapped || data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
