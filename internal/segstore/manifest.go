package segstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/core"
)

// manifestName is the segment manifest file inside a segment directory.
const manifestName = "segments.json"

// Entry names one live segment in the manifest: its file (base name
// only — traversal names are rejected), compaction level, unique
// sequence number, absolute column range [T0, T1), whole-file CRC32C,
// and on-disk size. The manifest's entries tile [BaseCol, sealed end)
// contiguously in column order.
type Entry struct {
	File  string `json:"file"`
	Level int    `json:"level"`
	Seq   uint64 `json:"seq"`
	T0    int    `json:"t0"`
	T1    int    `json:"t1"`
	CRC   uint32 `json:"crc32c"`
	Bytes int64  `json:"bytes"`
}

// Cols returns the segment's column count.
func (e Entry) Cols() int { return e.T1 - e.T0 }

// manifestParams is the JSON form of Params.
type manifestParams struct {
	P          float64 `json:"p"`
	K          int     `json:"k"`
	Rows       int     `json:"rows"`
	Seed       uint64  `json:"seed"`
	MinLogRows int     `json:"min_log_rows"`
	MaxLogRows int     `json:"max_log_rows"`
	MinLogCols int     `json:"min_log_cols"`
	MaxLogCols int     `json:"max_log_cols"`
	Estimator  int     `json:"estimator"`
	PanelCols  int     `json:"panel_cols"`
}

func toManifestParams(p Params) manifestParams {
	return manifestParams{P: p.P, K: p.K, Rows: p.Rows, Seed: p.Seed,
		MinLogRows: p.MinLogRows, MaxLogRows: p.MaxLogRows,
		MinLogCols: p.MinLogCols, MaxLogCols: p.MaxLogCols,
		Estimator: int(p.Estimator), PanelCols: p.PanelCols}
}

func (mp manifestParams) params() Params {
	return Params{P: mp.P, K: mp.K, Rows: mp.Rows, Seed: mp.Seed,
		MinLogRows: mp.MinLogRows, MaxLogRows: mp.MaxLogRows,
		MinLogCols: mp.MinLogCols, MaxLogCols: mp.MaxLogCols,
		Estimator: core.Estimator(mp.Estimator), PanelCols: mp.PanelCols}
}

// manifest is the JSON document naming the live segment set. BaseCol is
// recorded explicitly (not derived from the first segment) so an empty
// or fully trimmed store still knows where its window starts.
type manifest struct {
	Version  int            `json:"version"`
	Params   manifestParams `json:"params"`
	BaseCol  int            `json:"base_col"`
	NextSeq  uint64         `json:"next_seq"`
	Segments []Entry        `json:"segments"`
}

// sealedCol returns the exclusive absolute column up to which segments
// exist (BaseCol for an empty set).
func (m *manifest) sealedCol() int {
	if len(m.Segments) == 0 {
		return m.BaseCol
	}
	return m.Segments[len(m.Segments)-1].T1
}

// validate checks structure: version, parameters, safe file names, and
// a contiguous, aligned, positive-width segment tiling from BaseCol.
func (m *manifest) validate() error {
	if m.Version != 1 {
		return fmt.Errorf("segstore: unsupported manifest version %d", m.Version)
	}
	p := m.Params.params()
	if err := p.validate(); err != nil {
		return err
	}
	align := p.SegAlign()
	if m.BaseCol < 0 || m.BaseCol%align != 0 {
		return fmt.Errorf("segstore: manifest base_col %d negative or not aligned to %d", m.BaseCol, align)
	}
	at := m.BaseCol
	seen := make(map[uint64]bool, len(m.Segments))
	names := make(map[string]bool, len(m.Segments))
	for i, e := range m.Segments {
		if e.File == "" || e.File != filepath.Base(e.File) || atomicio.IsTemp(e.File) {
			return fmt.Errorf("segstore: manifest entry %d has unsafe file name %q", i, e.File)
		}
		if names[e.File] {
			return fmt.Errorf("segstore: manifest names %q twice", e.File)
		}
		names[e.File] = true
		if e.Cols() <= 0 {
			return fmt.Errorf("segstore: segment %q spans [%d,%d): zero or negative column count",
				e.File, e.T0, e.T1)
		}
		if e.T0 != at {
			return fmt.Errorf("segstore: segment %q starts at %d, want contiguous %d", e.File, e.T0, at)
		}
		if e.T0%align != 0 || e.T1%align != 0 {
			return fmt.Errorf("segstore: segment %q range [%d,%d) not aligned to %d", e.File, e.T0, e.T1, align)
		}
		if e.Seq >= m.NextSeq || seen[e.Seq] {
			return fmt.Errorf("segstore: segment %q has invalid or duplicate seq %d", e.File, e.Seq)
		}
		seen[e.Seq] = true
		if e.Bytes <= 0 {
			return fmt.Errorf("segstore: segment %q records non-positive size %d", e.File, e.Bytes)
		}
		at = e.T1
	}
	return nil
}

// readManifest loads and structurally validates dir's manifest.
func readManifest(dir string) (*manifest, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var m manifest
	dec := json.NewDecoder(io.LimitReader(f, 64<<20))
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("segstore: decoding manifest: %w", err)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// writeManifest atomically replaces dir's manifest.
func writeManifest(dir string, m *manifest) error {
	if err := m.validate(); err != nil {
		return fmt.Errorf("segstore: refusing to write invalid manifest: %w", err)
	}
	return atomicio.WriteFile(filepath.Join(dir, manifestName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}
