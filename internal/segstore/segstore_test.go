package segstore

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/table"
)

// Test geometry: small enough to be fast, awkward enough to exercise
// alignment — segAlign = max(PanelCols=4, 2^MaxLogCols=4) = 4.
func testParams() Params {
	return Params{P: 2, K: 8, Rows: 8, Seed: 42,
		MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2,
		Estimator: core.EstimatorAuto, PanelCols: 4}
}

func testOpts(p Params) core.PoolOptions {
	return core.PoolOptions{
		MinLogRows: p.MinLogRows, MaxLogRows: p.MaxLogRows,
		MinLogCols: p.MinLogCols, MaxLogCols: p.MaxLogCols,
		Estimator: p.Estimator, PanelCols: p.PanelCols,
	}
}

func testTable(t *testing.T, rows, cols, baseCol int) *table.Table {
	t.Helper()
	tb := table.New(rows, cols)
	d := tb.Data()
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			abs := c + baseCol
			d[r*cols+c] = math.Sin(float64(r*131+abs*17)) + float64(abs%7)
		}
	}
	return tb
}

// rectsFor enumerates query rectangles covering exact-dyadic and
// compound shapes across the table.
func rectsFor(rows, cols int) []table.Rect {
	var rects []table.Rect
	for _, rr := range []int{2, 3, 4} {
		for _, rc := range []int{2, 3, 4} {
			for r0 := 0; r0+rr <= rows; r0 += 3 {
				for c0 := 0; c0+rc <= cols; c0 += 3 {
					rects = append(rects, table.Rect{R0: r0, C0: c0, Rows: rr, Cols: rc})
				}
			}
		}
	}
	return rects
}

// assertPoolsIdentical compares sketches of every enumerable rect
// byte-for-byte across two pools over the same window.
func assertPoolsIdentical(t *testing.T, want, got *core.Pool, label string) {
	t.Helper()
	rows, cols := want.TableDims()
	grows, gcols := got.TableDims()
	if rows != grows || cols != gcols {
		t.Fatalf("%s: dims %dx%d vs %dx%d", label, rows, cols, grows, gcols)
	}
	var wbuf, gbuf []float64
	for _, rect := range rectsFor(rows, cols) {
		var err error
		wbuf, err = want.Sketch(rect, wbuf)
		if err != nil {
			continue
		}
		gbuf, err = got.Sketch(rect, gbuf)
		if err != nil {
			t.Fatalf("%s: rect %v: %v", label, rect, err)
		}
		for i := range wbuf {
			if math.Float64bits(wbuf[i]) != math.Float64bits(gbuf[i]) {
				t.Fatalf("%s: rect %v lane %d: %v != %v", label, rect, i, gbuf[i], wbuf[i])
			}
		}
	}
}

func mustBanded(t *testing.T, tb *table.Table, p Params, baseCol int, sealed []core.SealedBand) *core.Pool {
	t.Helper()
	opts := testOpts(p)
	opts.BaseCol = baseCol
	pl, err := core.NewBandedPool(tb, p.P, p.K, p.Seed, opts, sealed)
	if err != nil {
		t.Fatalf("NewBandedPool: %v", err)
	}
	return pl
}

func mustHeap(t *testing.T, tb *table.Table, p Params, baseCol int) *core.Pool {
	t.Helper()
	opts := testOpts(p)
	opts.BaseCol = baseCol
	pl, err := core.NewPool(tb, p.P, p.K, p.Seed, opts)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	return pl
}

// sealAll seals the pool's full sealable prefix into the store in
// chunks of chunk columns (0 = one segment).
func sealAll(t *testing.T, st *Store, pl *core.Pool, chunk int) {
	t.Helper()
	limit := pl.BaseCol() + pl.SealableCols()
	at := st.SealedCol()
	for at < limit {
		end := limit
		if chunk > 0 && at+chunk < limit {
			end = at + chunk
		}
		if err := st.WriteL0(pl, at, end); err != nil {
			t.Fatalf("WriteL0 [%d,%d): %v", at, end, err)
		}
		at = end
	}
}

func TestSealMapAndServeByteIdentical(t *testing.T) {
	p := testParams()
	dir := t.TempDir()
	tb := testTable(t, p.Rows, 20, 0)
	heap := mustHeap(t, tb, p, 0)

	st, err := Open(dir, p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	banded := mustBanded(t, tb, p, 0, nil)
	assertPoolsIdentical(t, heap, banded, "all-fringe banded vs heap")
	sealAll(t, st, banded, 4) // 16 sealable cols → 4 L0 segments

	v := st.Acquire()
	defer v.Release()
	if v.SealedCol() != 16 || v.NumSegments() != 4 {
		t.Fatalf("sealed to %d with %d segments, want 16 with 4", v.SealedCol(), v.NumSegments())
	}
	mapped := mustBanded(t, tb, p, 0, v.Bands(0))
	if mapped.MappedBytes() == 0 {
		t.Fatal("mapped pool reports zero mapped bytes")
	}
	assertPoolsIdentical(t, heap, mapped, "mmap-banded vs heap")

	// Reband the working pool onto the mapped set: same bytes, new backing.
	rebanded, err := banded.Reband(v.Bands(0))
	if err != nil {
		t.Fatalf("Reband: %v", err)
	}
	assertPoolsIdentical(t, heap, rebanded, "rebanded vs heap")
	st.Close()

	// Restart: a fresh Open + map must serve identical bytes.
	st2, err := Open(dir, p)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	v2 := st2.Acquire()
	defer v2.Release()
	restarted := mustBanded(t, tb, p, 0, v2.Bands(0))
	assertPoolsIdentical(t, heap, restarted, "restarted vs heap")
}

func TestCompactMergePreservesBytes(t *testing.T) {
	p := testParams()
	dir := t.TempDir()
	tb := testTable(t, p.Rows, 20, 0)
	heap := mustHeap(t, tb, p, 0)

	st, err := Open(dir, p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	banded := mustBanded(t, tb, p, 0, nil)
	sealAll(t, st, banded, 4)

	before := ReadStats()
	did, err := st.Compact(4)
	if err != nil || !did {
		t.Fatalf("Compact: did=%v err=%v", did, err)
	}
	after := ReadStats()
	if d := after.Compactions - before.Compactions; d != 1 {
		t.Fatalf("compactions delta %d, want 1", d)
	}
	segs := st.Segments()
	if len(segs) != 1 || segs[0].Level != 1 || segs[0].T0 != 0 || segs[0].T1 != 16 {
		t.Fatalf("post-compaction segments %+v, want one L1 [0,16)", segs)
	}
	v := st.Acquire()
	defer v.Release()
	merged := mustBanded(t, tb, p, 0, v.Bands(0))
	assertPoolsIdentical(t, heap, merged, "compacted vs heap")

	// A second compaction has nothing to do.
	if did, err := st.Compact(4); err != nil || did {
		t.Fatalf("idle Compact: did=%v err=%v", did, err)
	}
}

func TestRefcountedReclamation(t *testing.T) {
	p := testParams()
	dir := t.TempDir()
	tb := testTable(t, p.Rows, 20, 0)

	st, err := Open(dir, p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	banded := mustBanded(t, tb, p, 0, nil)
	sealAll(t, st, banded, 4)
	oldFiles := st.SegmentFiles()

	// A snapshot-style view pins the pre-compaction set.
	v := st.Acquire()
	pool := mustBanded(t, tb, p, 0, v.Bands(0))

	before := ReadStats()
	if did, err := st.Compact(4); err != nil || !did {
		t.Fatalf("Compact: did=%v err=%v", did, err)
	}
	// Old files must still exist (view holds them) and old bytes must
	// still be readable through the pool.
	for _, f := range oldFiles {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("pre-compaction segment %s vanished while referenced: %v", f, err)
		}
	}
	if _, err := pool.Sketch(table.Rect{R0: 0, C0: 0, Rows: 4, Cols: 4}, nil); err != nil {
		t.Fatalf("query over retired-but-referenced segments: %v", err)
	}

	v.Release()
	v.Release() // idempotent
	for _, f := range oldFiles {
		if _, err := os.Stat(filepath.Join(dir, f)); !os.IsNotExist(err) {
			t.Fatalf("retired segment %s not unlinked after last reference dropped", f)
		}
	}
	after := ReadStats()
	if d := after.Reclaimed - before.Reclaimed; d != 4 {
		t.Fatalf("reclaimed delta %d, want 4", d)
	}
}

func TestTrimDropsWholeSegments(t *testing.T) {
	p := testParams()
	dir := t.TempDir()
	tb := testTable(t, p.Rows, 20, 0)

	st, err := Open(dir, p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	banded := mustBanded(t, tb, p, 0, nil)
	sealAll(t, st, banded, 4)

	// Ask to keep from column 6: only segments with T1 ≤ 6 drop, so the
	// new base is 4, not 6 — trims round down to whole segments.
	newBase, err := st.Trim(6)
	if err != nil {
		t.Fatalf("Trim: %v", err)
	}
	if newBase != 4 || st.BaseCol() != 4 {
		t.Fatalf("trim to base %d (store %d), want 4", newBase, st.BaseCol())
	}
	if n := len(st.Segments()); n != 3 {
		t.Fatalf("%d segments after trim, want 3", n)
	}

	// The trimmed store serves the suffix window byte-identically to a
	// from-scratch build over it (segment alignment keeps the absolute
	// panel grid intact).
	sub := tb.Sub(table.Rect{R0: 0, C0: 4, Rows: p.Rows, Cols: 16})
	heap := mustHeap(t, sub, p, 4)
	v := st.Acquire()
	defer v.Release()
	pool := mustBanded(t, sub, p, 4, v.Bands(4))
	assertPoolsIdentical(t, heap, pool, "trimmed vs heap-over-suffix")

	// Trim below the current base is a no-op.
	if nb, err := st.Trim(2); err != nil || nb != 4 {
		t.Fatalf("no-op trim: base %d err %v", nb, err)
	}
}

func TestOpenRejectsParamMismatch(t *testing.T) {
	p := testParams()
	dir := t.TempDir()
	st, err := Open(dir, p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st.Close()
	q := p
	q.Seed = 7
	if _, err := Open(dir, q); err == nil {
		t.Fatal("Open with mismatched seed succeeded, want error")
	}
}

func TestOpenGCsUnmanifestedSegments(t *testing.T) {
	p := testParams()
	dir := t.TempDir()
	tb := testTable(t, p.Rows, 20, 0)
	st, err := Open(dir, p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	banded := mustBanded(t, tb, p, 0, nil)
	sealAll(t, st, banded, 0)
	st.Close()

	// An orphan that looks like a segment (crash between file write and
	// manifest commit) must be deleted; the live one must survive.
	orphan := filepath.Join(dir, "seg-99999999-l0.seg")
	if err := os.WriteFile(orphan, []byte("debris"), 0o644); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, p)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatal("unmanifested segment file survived Open")
	}
	if n := len(st2.Segments()); n != 1 {
		t.Fatalf("%d live segments after GC, want 1", n)
	}
}

func TestManifestValidationRejectsHostileEntries(t *testing.T) {
	p := testParams()
	base := &manifest{Version: 1, Params: toManifestParams(p), NextSeq: 10}
	good := Entry{File: "seg-00000001-l0.seg", Seq: 1, T0: 0, T1: 4, Bytes: 100, CRC: 1}
	cases := []struct {
		name   string
		mutate func(*manifest)
	}{
		{"traversal file name", func(m *manifest) {
			m.Segments[0].File = "../../etc/passwd"
		}},
		{"absolute file name", func(m *manifest) {
			m.Segments[0].File = "/etc/passwd"
		}},
		{"temp file name", func(m *manifest) {
			m.Segments[0].File = "seg-x.seg.tmp-123"
		}},
		{"zero column count", func(m *manifest) {
			m.Segments[0].T1 = m.Segments[0].T0
		}},
		{"negative column count", func(m *manifest) {
			m.Segments[0].T1 = m.Segments[0].T0 - 4
		}},
		{"unaligned range", func(m *manifest) {
			m.Segments[0].T1 = m.Segments[0].T0 + 3
		}},
		{"discontiguous tiling", func(m *manifest) {
			m.Segments[0].T0 += 4
			m.Segments[0].T1 += 4
		}},
		{"non-positive size", func(m *manifest) {
			m.Segments[0].Bytes = 0
		}},
		{"negative base", func(m *manifest) {
			m.BaseCol = -4
		}},
	}
	for _, tc := range cases {
		m := *base
		m.Segments = []Entry{good}
		tc.mutate(&m)
		if err := m.validate(); err == nil {
			t.Errorf("%s: validate accepted a hostile manifest", tc.name)
		}
	}
	m := *base
	m.Segments = []Entry{good}
	if err := m.validate(); err != nil {
		t.Fatalf("control manifest rejected: %v", err)
	}
}

func TestBandedAppendSharesSealedBands(t *testing.T) {
	// Append over a banded pool must not copy sealed bands — and the
	// result must match a from-scratch heap build over the wider table.
	p := testParams()
	dir := t.TempDir()
	full := testTable(t, p.Rows, 24, 0)
	narrow := full.Sub(table.Rect{R0: 0, C0: 0, Rows: p.Rows, Cols: 20})

	st, err := Open(dir, p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	banded := mustBanded(t, narrow, p, 0, nil)
	sealAll(t, st, banded, 0)
	v := st.Acquire()
	defer v.Release()
	banded, err = banded.Reband(v.Bands(0))
	if err != nil {
		t.Fatalf("Reband: %v", err)
	}
	grown, err := banded.Append(nil, full)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if grown.SealedCols() != banded.SealedCols() {
		t.Fatalf("append changed sealed cols %d → %d", banded.SealedCols(), grown.SealedCols())
	}
	heap := mustHeap(t, full, p, 0)
	assertPoolsIdentical(t, heap, grown, "banded append vs heap")
}
