//go:build !unix

package segstore

import (
	"os"
	"unsafe"
)

// mapFile on platforms without mmap support reads the whole file into
// an 8-byte-aligned heap buffer — same bytes, same lifecycle, no paging
// benefit. Alignment comes from backing the byte view with []uint64 so
// the float64 reinterpretation in laneView stays legal.
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	words := make([]uint64, (size+7)/8)
	b := unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(words))), size)
	if _, err := f.ReadAt(b, 0); err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func unmapFile(data []byte, mapped bool) error { return nil }
