package segstore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/atomicio"
)

// quarantineDir mirrors the tabstore fsck convention: corrupt (or
// orphaned-by-corruption) segment files are moved here, never deleted,
// preserving the evidence.
const quarantineDir = "quarantine"

// FsckReport describes what Fsck found and repaired in a segment
// directory.
type FsckReport struct {
	Checked      int      // manifest entries examined
	Quarantined  []string // files moved to quarantine/
	TempsRemoved []string // stray atomic-write temporaries deleted
	Problems     []string // human-readable defect descriptions
	Rebuilt      bool     // manifest was rewritten
}

// OK reports whether the directory was fully healthy.
func (r *FsckReport) OK() bool {
	return len(r.Quarantined) == 0 && len(r.TempsRemoved) == 0 && len(r.Problems) == 0
}

// Fsck deep-verifies the segment directory: every manifest entry's file
// must exist, match its recorded size and whole-file CRC32C, carry a
// parseable self-consistent header agreeing with the entry, and every
// lane blob must match its per-lane CRC. Defective segments are moved
// to quarantine/ and — because the live set must tile the window
// contiguously — every segment after the first hole is quarantined too
// (its bytes are preserved; its columns fall back to WAL replay). An
// unreadable manifest is rebuilt from the surviving segment headers.
// The repaired manifest is written atomically. Fsck itself only errors
// on I/O trouble, never on corruption.
func Fsck(dir string) (*FsckReport, error) {
	rep := &FsckReport{}
	temps, err := atomicio.CleanTemps(dir)
	if err != nil {
		return nil, fmt.Errorf("segstore: fsck: %w", err)
	}
	rep.TempsRemoved = temps

	man, err := readManifest(dir)
	switch {
	case err == nil:
	case os.IsNotExist(err):
		return rep, nil // no segment store here; nothing to check
	default:
		rep.Problems = append(rep.Problems, fmt.Sprintf("manifest: %v", err))
		m, rerr := rebuildManifest(dir, rep)
		if rerr != nil {
			return nil, rerr
		}
		man = m
		rep.Rebuilt = true
	}

	keep := man.Segments[:0:0]
	broken := false
	for _, e := range man.Segments {
		rep.Checked++
		if broken {
			// Everything after the first hole is orphaned: the live set
			// must stay contiguous from BaseCol.
			if err := quarantine(dir, e.File, rep); err != nil {
				return nil, err
			}
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("segment %q: quarantined (follows a hole in the column tiling)", e.File))
			continue
		}
		defect, err := verifySegment(dir, e)
		if err != nil {
			return nil, err
		}
		if defect == "" {
			keep = append(keep, e)
			continue
		}
		broken = true
		rep.Problems = append(rep.Problems, fmt.Sprintf("segment %q: %s", e.File, defect))
		if defect != "missing" {
			if err := quarantine(dir, e.File, rep); err != nil {
				return nil, err
			}
		}
	}
	if len(keep) != len(man.Segments) || rep.Rebuilt {
		man.Segments = keep
		if err := writeManifest(dir, man); err != nil {
			return nil, err
		}
		rep.Rebuilt = true
	}
	return rep, nil
}

// verifySegment fully checks one manifest entry. The returned string
// describes the defect ("" when healthy); the error is for I/O trouble
// only.
func verifySegment(dir string, e Entry) (string, error) {
	path := filepath.Join(dir, e.File)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return "missing", nil
	}
	if err != nil {
		return "", fmt.Errorf("segstore: fsck: reading %s: %w", e.File, err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return "", err
	}
	if fi.Size() != e.Bytes {
		return fmt.Sprintf("file is %d bytes, manifest says %d", fi.Size(), e.Bytes), nil
	}
	crc := crc32.New(crcTable)
	if _, err := io.Copy(crc, f); err != nil {
		return "", err
	}
	if got := crc.Sum32(); got != e.CRC {
		return fmt.Sprintf("whole-file CRC32C %08x, manifest says %08x", got, e.CRC), nil
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return "", err
	}
	h, err := parseSegHeader(f)
	if err != nil {
		return fmt.Sprintf("undecodable header: %v", err), nil
	}
	if h.Level != e.Level || h.Seq != e.Seq || h.T0 != e.T0 || h.T1 != e.T1 {
		return fmt.Sprintf("header (L%d seq %d [%d,%d)) disagrees with manifest (L%d seq %d [%d,%d))",
			h.Level, h.Seq, h.T0, h.T1, e.Level, e.Seq, e.T0, e.T1), nil
	}
	if fi.Size() < h.size() {
		return fmt.Sprintf("file is %d bytes, header needs %d", fi.Size(), h.size()), nil
	}
	// Per-lane payload CRCs — the deep check restart skips.
	buf := make([]byte, 1<<20)
	for _, lm := range h.Lanes {
		if defect, err := verifyLane(f, lm, buf); defect != "" || err != nil {
			return defect, err
		}
	}
	return "", nil
}

func verifyLane(f *os.File, lm laneMeta, buf []byte) (string, error) {
	var crc uint32
	remaining := lm.Floats * 8
	off := lm.Off
	for remaining > 0 {
		n := int64(len(buf))
		if n > remaining {
			n = remaining
		}
		if _, err := f.ReadAt(buf[:n], off); err != nil {
			return "", err
		}
		crc = crc32.Update(crc, crcTable, buf[:n])
		off += n
		remaining -= n
	}
	if crc != lm.CRC {
		return fmt.Sprintf("lane %+v payload CRC32C %08x, header says %08x", lm.ID, crc, lm.CRC), nil
	}
	return "", nil
}

// quarantine moves file into quarantine/, deduplicating the target name
// like the tabstore fsck does.
func quarantine(dir, file string, rep *FsckReport) error {
	qdir := filepath.Join(dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("segstore: fsck: %w", err)
	}
	dst := filepath.Join(qdir, file)
	for n := 1; ; n++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", file, n))
	}
	if err := os.Rename(filepath.Join(dir, file), dst); err != nil {
		return fmt.Errorf("segstore: quarantining %s: %w", file, err)
	}
	rep.Quarantined = append(rep.Quarantined, file)
	return nil
}

// rebuildManifest reconstructs a manifest from segment file headers
// when the manifest itself is unreadable: surviving files are read,
// internally validated, ordered by column range, and the longest
// contiguous chain from the lowest starting column becomes the live
// set. Files that do not parse, disagree with the majority parameters,
// or fall outside the chain are quarantined.
func rebuildManifest(dir string, rep *FsckReport) (*manifest, error) {
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type cand struct {
		h    *segHeader
		size int64
		crc  uint32
		name string
	}
	var cands []cand
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || !isSegmentName(name) {
			continue
		}
		h, size, err := readSegHeaderFile(filepath.Join(dir, name))
		if err != nil || size < h.size() {
			rep.Problems = append(rep.Problems, fmt.Sprintf("segment %q: unreadable during rebuild", name))
			if qerr := quarantine(dir, name, rep); qerr != nil {
				return nil, qerr
			}
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		crc := crc32.New(crcTable)
		_, cerr := io.Copy(crc, f)
		f.Close()
		if cerr != nil {
			return nil, cerr
		}
		cands = append(cands, cand{h: h, size: size, crc: crc.Sum32(), name: name})
	}
	if len(cands) == 0 {
		return nil, errors.New("segstore: fsck: manifest unreadable and no segment files to rebuild from")
	}
	params := cands[0].h.Params
	sort.Slice(cands, func(a, b int) bool { return cands[a].h.T0 < cands[b].h.T0 })
	m := &manifest{Version: 1, Params: toManifestParams(params)}
	var maxSeq uint64
	at := -1
	for _, c := range cands {
		ok := c.h.Params == params && (at == -1 || c.h.T0 == at)
		if !ok {
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("segment %q: outside rebuilt chain ([%d,%d))", c.name, c.h.T0, c.h.T1))
			if err := quarantine(dir, c.name, rep); err != nil {
				return nil, err
			}
			continue
		}
		if at == -1 {
			m.BaseCol = c.h.T0
		}
		at = c.h.T1
		if c.h.Seq > maxSeq {
			maxSeq = c.h.Seq
		}
		m.Segments = append(m.Segments, Entry{File: c.name, Level: c.h.Level, Seq: c.h.Seq,
			T0: c.h.T0, T1: c.h.T1, CRC: c.crc, Bytes: c.size})
	}
	m.NextSeq = maxSeq + 1
	return m, nil
}

// SegmentInfo is one row of List: a segment's manifest entry plus its
// verified state and byte accounting for the tabmine-store segments
// subcommand.
type SegmentInfo struct {
	Entry
	// CRCOK reports whether the whole-file CRC matched the manifest.
	CRCOK bool
	// MappedBytes is how many bytes serving would map for this segment
	// (the full file; lane payloads plus header and padding).
	MappedBytes int64
	// PayloadBytes is the lane payload portion (the float data itself).
	PayloadBytes int64
}

// Listing summarizes a segment directory for tooling.
type Listing struct {
	BaseCol   int
	SealedCol int
	Segments  []SegmentInfo
}

// List reads dir's manifest and verifies each segment's whole-file CRC
// (an offline deep read — tooling, not the serving path).
func List(dir string) (*Listing, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	l := &Listing{BaseCol: man.BaseCol, SealedCol: man.sealedCol()}
	for _, e := range man.Segments {
		info := SegmentInfo{Entry: e}
		path := filepath.Join(dir, e.File)
		if f, err := os.Open(path); err == nil {
			crc := crc32.New(crcTable)
			if _, err := io.Copy(crc, f); err == nil {
				info.CRCOK = crc.Sum32() == e.CRC
			}
			if fi, err := f.Stat(); err == nil {
				info.MappedBytes = fi.Size()
			}
			if _, err := f.Seek(0, io.SeekStart); err == nil {
				if h, err := parseSegHeader(f); err == nil {
					for _, lm := range h.Lanes {
						info.PayloadBytes += lm.Floats * 8
					}
				}
			}
			f.Close()
		}
		l.Segments = append(l.Segments, info)
	}
	return l, nil
}
