package segstore

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/table"
)

// globalFault injects one deterministic write failure across every file
// an operation writes (segment file, then manifest) — a process-global
// write counter, so FailAt sweeps the full kill matrix: every write of
// every file, hard (nothing lands) and torn (half the buffer lands).
type globalFault struct {
	mu     sync.Mutex
	count  int
	failAt int
	short  bool
}

func (g *globalFault) wrap(path string, w io.Writer) io.Writer {
	return &globalFaultWriter{g: g, w: w}
}

type globalFaultWriter struct {
	g *globalFault
	w io.Writer
}

func (fw *globalFaultWriter) Write(p []byte) (int, error) {
	fw.g.mu.Lock()
	fw.g.count++
	c := fw.g.count
	fw.g.mu.Unlock()
	if fw.g.failAt > 0 && c == fw.g.failAt {
		if fw.g.short && len(p) > 1 {
			n, err := fw.w.Write(p[:len(p)/2])
			if err == nil {
				err = faultinject.ErrInjected
			}
			return n, err
		}
		return 0, faultinject.ErrInjected
	}
	return fw.w.Write(p)
}

// crashFixture is one pre-op store state: a directory with sealed
// segments, the live store and pool, and the pre-op manifest snapshot.
type crashFixture struct {
	dir    string
	st     *Store
	pool   *core.Pool
	tb     *table.Table
	before map[string]int64 // pre-op segment files and their sizes
}

// newCrashFixture seals the first sealN aligned 4-column chunks of a
// 20-column table into the store.
func newCrashFixture(t *testing.T, sealN int) *crashFixture {
	t.Helper()
	p := testParams()
	dir := t.TempDir()
	tb := testTable(t, p.Rows, 20, 0)
	st, err := Open(dir, p)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	pool := mustBanded(t, tb, p, 0, nil)
	for n := 0; n < sealN; n++ {
		if err := st.WriteL0(pool, n*4, (n+1)*4); err != nil {
			t.Fatalf("seal %d: %v", n, err)
		}
	}
	fx := &crashFixture{dir: dir, st: st, pool: pool, tb: tb, before: map[string]int64{}}
	for _, f := range st.SegmentFiles() {
		fi, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatal(err)
		}
		fx.before[f] = fi.Size()
	}
	return fx
}

// checkPostCrash verifies the directory after a failed mutation, as a
// restarting process would see it: no stray temps, a readable and valid
// manifest naming exactly the pre-op set, every pre-op segment file
// intact byte-for-byte in size, and a fresh Open serving answers
// identical to the reference heap pool.
func (fx *crashFixture) checkPostCrash(t *testing.T, label string, heap *core.Pool) {
	t.Helper()
	dirents, err := os.ReadDir(fx.dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range dirents {
		if atomicio.IsTemp(de.Name()) {
			t.Fatalf("%s: stray temp %q leaked", label, de.Name())
		}
	}
	man, err := readManifest(fx.dir)
	if err != nil {
		t.Fatalf("%s: manifest unreadable after fault: %v", label, err)
	}
	if len(man.Segments) != len(fx.before) {
		t.Fatalf("%s: manifest names %d segments, pre-op set had %d",
			label, len(man.Segments), len(fx.before))
	}
	for _, e := range man.Segments {
		want, ok := fx.before[e.File]
		if !ok {
			t.Fatalf("%s: manifest names %q, not in the pre-op set", label, e.File)
		}
		fi, err := os.Stat(filepath.Join(fx.dir, e.File))
		if err != nil || fi.Size() != want {
			t.Fatalf("%s: pre-op segment %q damaged (size %v, err %v)", label, e.File, fi, err)
		}
	}
	st2, err := Open(fx.dir, testParams())
	if err != nil {
		t.Fatalf("%s: reopen after fault: %v", label, err)
	}
	defer st2.Close()
	v := st2.Acquire()
	defer v.Release()
	pool := mustBanded(t, fx.tb, testParams(), 0, v.Bands(0))
	assertPoolsIdentical(t, heap, pool, label+": restart answers")
}

// countOpWrites runs op once with a pure counting wrapper installed and
// returns how many Write calls it made across all files.
func countOpWrites(t *testing.T, sealN int, op func(*crashFixture) error) int {
	t.Helper()
	fx := newCrashFixture(t, sealN)
	defer fx.st.Close()
	g := &globalFault{}
	atomicio.TestWrapWriter = g.wrap
	defer func() { atomicio.TestWrapWriter = nil }()
	if err := op(fx); err != nil {
		t.Fatalf("clean run failed: %v", err)
	}
	if g.count == 0 {
		t.Fatal("operation made no writes; the matrix would be empty")
	}
	return g.count
}

// TestWriteL0CrashMatrix kills the segment writer at every write, hard
// and torn: the manifest must stay consistent, no temps may leak, old
// segments must be untouched, and a restart must serve the pre-op set.
func TestWriteL0CrashMatrix(t *testing.T) {
	p := testParams()
	heapPool := mustHeap(t, testTable(t, p.Rows, 20, 0), p, 0)
	op := func(fx *crashFixture) error { return fx.st.WriteL0(fx.pool, 12, 16) }
	total := countOpWrites(t, 3, op)
	for failAt := 1; failAt <= total; failAt++ {
		for _, short := range []bool{false, true} {
			fx := newCrashFixture(t, 3)
			g := &globalFault{failAt: failAt, short: short}
			atomicio.TestWrapWriter = g.wrap
			err := op(fx)
			atomicio.TestWrapWriter = nil
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("write %d/%d short=%v: got %v, want injected fault", failAt, total, short, err)
			}
			label := "writeL0 kill@" + itoa(failAt) + map[bool]string{false: " hard", true: " torn"}[short]
			fx.checkPostCrash(t, label, heapPool)
			fx.st.Close()
		}
	}
}

// TestCompactCrashMatrix kills the compactor at every write of the
// merged segment and the manifest swap: a restart must serve the
// pre-compaction segment set with identical answers (the
// SIGKILL-during-compaction drill, exercised at every kill point).
func TestCompactCrashMatrix(t *testing.T) {
	p := testParams()
	heapPool := mustHeap(t, testTable(t, p.Rows, 20, 0), p, 0)
	op := func(fx *crashFixture) error {
		_, err := fx.st.Compact(4)
		return err
	}
	total := countOpWrites(t, 4, op)
	for failAt := 1; failAt <= total; failAt++ {
		for _, short := range []bool{false, true} {
			fx := newCrashFixture(t, 4)
			g := &globalFault{failAt: failAt, short: short}
			atomicio.TestWrapWriter = g.wrap
			before := ReadStats()
			err := op(fx)
			atomicio.TestWrapWriter = nil
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("write %d/%d short=%v: got %v, want injected fault", failAt, total, short, err)
			}
			if d := ReadStats().CompactFail - before.CompactFail; d != 1 {
				t.Fatalf("write %d/%d short=%v: failed-compactions delta %d, want 1", failAt, total, short, d)
			}
			label := "compact kill@" + itoa(failAt) + map[bool]string{false: " hard", true: " torn"}[short]
			fx.checkPostCrash(t, label, heapPool)
			// The store that observed the failure (not just a restart) must
			// also still serve the pre-compaction set, and a retried
			// compaction must succeed.
			if n := len(fx.st.Segments()); n != 4 {
				t.Fatalf("%s: live store has %d segments, want pre-compaction 4", label, n)
			}
			if did, err := fx.st.Compact(4); err != nil || !did {
				t.Fatalf("%s: retry compaction: did=%v err=%v", label, did, err)
			}
			fx.st.Close()
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
