package segstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"

	"repro/internal/atomicio"
	"repro/internal/core"
)

// segment is one live, mapped segment file with its reference count.
// References are held by (a) manifest membership — one ref taken when
// the store maps the file, released when a manifest swap retires it —
// and (b) every View. When the count reaches zero the mapping is
// released and, if the segment was retired from the manifest, the file
// is unlinked: the refcounted-epoch reclamation of the tentpole. A
// retired segment can never be re-referenced (Acquire only sees
// manifest members), so zero is final.
type segment struct {
	entry   Entry
	path    string
	hdr     *segHeader
	data    []byte
	mapped  bool
	lanes   map[core.LaneID][]float64
	refs    atomic.Int64
	retired atomic.Bool
}

func (sg *segment) ref() { sg.refs.Add(1) }

func (sg *segment) unref() {
	if n := sg.refs.Add(-1); n > 0 {
		return
	} else if n < 0 {
		panic("segstore: segment reference count went negative")
	}
	mSegBytesMapped.Add(-int64(len(sg.data)))
	_ = unmapFile(sg.data, sg.mapped)
	sg.data, sg.lanes = nil, nil
	if sg.retired.Load() {
		if os.Remove(sg.path) == nil {
			mSegReclaimed.Add(1)
		}
	}
}

// Store manages one segment directory: the manifest, the mapped live
// segments, and their lifecycles. All methods are safe for concurrent
// use; mutations (WriteL0, Trim, Compact) serialize on an internal
// mutex while readers of already-acquired Views touch no store state.
type Store struct {
	dir    string
	params Params

	mu   sync.Mutex
	man  *manifest
	segs map[uint64]*segment
}

// Open opens (or initializes) the segment store in dir for the given
// pool parameters. Stray temp files are cleaned, segment files the
// manifest does not name are deleted (debris of a crash mid-write), and
// every live segment's header is validated and its payload mapped —
// restart cost is O(segments), not O(bytes). A manifest whose recorded
// parameters differ from params is a hard error: segments are bound to
// the sketch seed and geometry, and serving mismatched bytes would be
// silent corruption. Corrupt segments are also hard errors — run fsck
// (tabmine-store fsck) to quarantine and truncate.
func Open(dir string, params Params) (*Store, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if _, err := atomicio.CleanTemps(dir); err != nil {
		return nil, err
	}
	man, err := readManifest(dir)
	if os.IsNotExist(err) {
		man = &manifest{Version: 1, Params: toManifestParams(params), NextSeq: 1}
		if err := writeManifest(dir, man); err != nil {
			return nil, err
		}
	} else if err != nil {
		return nil, err
	}
	if man.Params.params() != params {
		return nil, fmt.Errorf("segstore: manifest params %+v do not match configured %+v",
			man.Params.params(), params)
	}

	st := &Store{dir: dir, params: params, man: man, segs: make(map[uint64]*segment)}

	// GC: a crash between writing a segment file and committing the
	// manifest leaves an unmanifested file; the manifest is authoritative,
	// so such files are deleted (their columns are still in the WAL).
	live := make(map[string]bool, len(man.Segments))
	for _, e := range man.Segments {
		live[e.File] = true
	}
	dirents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range dirents {
		name := de.Name()
		if de.IsDir() || live[name] || !isSegmentName(name) {
			continue
		}
		if os.Remove(filepath.Join(dir, name)) == nil {
			mSegReclaimed.Add(1)
		}
	}

	for _, e := range man.Segments {
		sg, err := st.openSegment(e)
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("segstore: segment %q: %w (run fsck to quarantine)", e.File, err)
		}
		st.segs[e.Seq] = sg
		mSegLevels.Add(levelKey(e.Level), 1)
		mSegBytesDisk.Add(e.Bytes)
	}
	return st, nil
}

// isSegmentName reports whether name looks like a segment file this
// package wrote.
func isSegmentName(name string) bool {
	return strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".seg")
}

// openSegment opens, validates (header only), and maps one manifest
// entry. The file descriptor is closed after mapping; the mapping keeps
// the pages.
func (st *Store) openSegment(e Entry) (*segment, error) {
	path := filepath.Join(st.dir, e.File)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h, err := parseSegHeader(f)
	if err != nil {
		return nil, err
	}
	if h.Params != st.params {
		return nil, fmt.Errorf("header params %+v do not match store %+v", h.Params, st.params)
	}
	if h.Level != e.Level || h.Seq != e.Seq || h.T0 != e.T0 || h.T1 != e.T1 {
		return nil, fmt.Errorf("header (L%d seq %d [%d,%d)) disagrees with manifest (L%d seq %d [%d,%d))",
			h.Level, h.Seq, h.T0, h.T1, e.Level, e.Seq, e.T0, e.T1)
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() != e.Bytes || fi.Size() < h.size() {
		return nil, fmt.Errorf("file is %d bytes, manifest records %d, header needs %d",
			fi.Size(), e.Bytes, h.size())
	}
	data, mapped, err := mapFile(f, fi.Size())
	if err != nil {
		return nil, fmt.Errorf("mapping: %w", err)
	}
	sg := &segment{entry: e, path: path, hdr: h, data: data, mapped: mapped}
	sg.lanes = make(map[core.LaneID][]float64, len(h.Lanes))
	for _, lm := range h.Lanes {
		b := data[lm.Off : lm.Off+lm.Floats*8]
		sg.lanes[lm.ID] = floatView(b)
	}
	sg.refs.Store(1) // the manifest-membership reference
	mSegBytesMapped.Add(int64(len(data)))
	return sg, nil
}

// floatView reinterprets little-endian float64 bytes in place. b must
// be 8-byte aligned (guaranteed: blob offsets are page-aligned within a
// page-aligned mapping, and the non-mmap fallback allocates aligned).
func floatView(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	if uintptr(unsafe.Pointer(unsafe.SliceData(b)))%8 != 0 {
		panic("segstore: unaligned segment blob")
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), len(b)/8)
}

// Close releases the store's manifest references. Outstanding Views
// keep their segments alive until released.
func (st *Store) Close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	for seq, sg := range st.segs {
		delete(st.segs, seq)
		mSegLevels.Add(levelKey(sg.entry.Level), -1)
		mSegBytesDisk.Add(-sg.entry.Bytes)
		sg.unref()
	}
}

// BaseCol returns the absolute stream column the live segment set
// starts at.
func (st *Store) BaseCol() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.man.BaseCol
}

// SealedCol returns the exclusive absolute column the live segment set
// covers up to (= BaseCol when empty).
func (st *Store) SealedCol() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.man.sealedCol()
}

// Params returns the pool parameters the store is bound to.
func (st *Store) Params() Params { return st.params }

// Segments returns a copy of the live manifest entries in column order.
func (st *Store) Segments() []Entry {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]Entry(nil), st.man.Segments...)
}

// View pins a consistent snapshot of the live segment set: every
// segment holds a reference until Release. Views are what pools and
// served snapshots hold — a compaction or trim swapping the manifest
// never invalidates an acquired View's bytes.
type View struct {
	segs     []*segment
	base     int
	sealed   int // absolute sealed column
	released atomic.Bool
}

// Acquire returns a View of the current live segment set.
func (st *Store) Acquire() *View {
	st.mu.Lock()
	defer st.mu.Unlock()
	v := &View{base: st.man.BaseCol, sealed: st.man.sealedCol()}
	for _, e := range st.man.Segments {
		sg := st.segs[e.Seq]
		sg.ref()
		v.segs = append(v.segs, sg)
	}
	return v
}

// Clone returns an independent reference to the same segment set (for
// handing one to a published snapshot while the ingester keeps its
// working reference).
func (v *View) Clone() *View {
	if v.released.Load() {
		panic("segstore: Clone of released View")
	}
	nv := &View{base: v.base, sealed: v.sealed, segs: v.segs}
	for _, sg := range v.segs {
		sg.ref()
	}
	return nv
}

// Release drops the view's references. Idempotent.
func (v *View) Release() {
	if !v.released.CompareAndSwap(false, true) {
		return
	}
	for _, sg := range v.segs {
		sg.unref()
	}
}

// BaseCol returns the absolute column the view's first segment starts
// at (the window base at acquire time).
func (v *View) BaseCol() int { return v.base }

// SealedCol returns the exclusive absolute column the view covers to.
func (v *View) SealedCol() int { return v.sealed }

// NumSegments returns how many segments the view pins.
func (v *View) NumSegments() int { return len(v.segs) }

// Bands adapts the view's mapped segments to core.SealedBand for
// NewBandedPool / Reband over a pool whose table column 0 is absolute
// column base. base must be ≤ the view's base (a pool never starts
// after its sealed bands); segments before base are skipped, which
// cannot happen in normal operation.
func (v *View) Bands(base int) []core.SealedBand {
	if v.released.Load() {
		panic("segstore: Bands of released View")
	}
	bands := make([]core.SealedBand, 0, len(v.segs))
	for _, sg := range v.segs {
		sg := sg
		bands = append(bands, core.SealedBand{
			C0: sg.entry.T0 - base, C1: sg.entry.T1 - base,
			Lane: func(id core.LaneID) []float64 { return sg.lanes[id] },
		})
	}
	return bands
}

// WriteL0 seals absolute columns [t0, t1) of pl — which must lie inside
// pl's heap fringe — as a new level-0 segment: the file is written and
// fsynced first (atomicio temp + rename), then the manifest commits it.
// A crash between the two leaves the old manifest naming the old set;
// the orphan file is deleted on the next Open and the columns replayed
// from the WAL, so WAL ack semantics are unchanged.
func (st *Store) WriteL0(pl *core.Pool, t0, t1 int) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	align := st.params.SegAlign()
	if t0 != st.man.sealedCol() {
		return fmt.Errorf("segstore: L0 starts at %d, store is sealed to %d", t0, st.man.sealedCol())
	}
	if t1 <= t0 || t0%align != 0 || t1%align != 0 {
		return fmt.Errorf("segstore: L0 range [%d,%d) empty or unaligned to %d", t0, t1, align)
	}
	base := pl.BaseCol()
	if t0 < base {
		return fmt.Errorf("segstore: L0 range [%d,%d) precedes pool base %d", t0, t1, base)
	}
	seq := st.man.NextSeq
	name := fmt.Sprintf("seg-%08d-l0.seg", seq)
	srcs := make([]laneSource, 0, len(st.params.lanes()))
	for _, id := range st.params.lanes() {
		id := id
		srcs = append(srcs, laneSource{
			ID: id,
			Read: func(dst []float64) ([]float64, error) {
				return pl.CopyLaneBand(id, t0-base, t1-base, dst)
			},
		})
	}
	entry, err := writeSegmentFile(filepath.Join(st.dir, name), st.params, 0, seq, t0, t1, srcs)
	if err != nil {
		return err
	}
	return st.commitLocked([]Entry{entry}, nil, func(m *manifest) {
		m.Segments = append(m.Segments, entry)
		m.NextSeq = seq + 1
	})
}

// commitLocked maps added segments, swaps the manifest via mutate, and
// retires removed segments — the single mutation path WriteL0, Trim,
// and Compact share. Called with st.mu held. On manifest-write failure
// the added files are deleted and the live set is unchanged.
func (st *Store) commitLocked(added []Entry, removed []Entry, mutate func(*manifest)) error {
	newSegs := make([]*segment, 0, len(added))
	cleanup := func() {
		for _, sg := range newSegs {
			mSegBytesMapped.Add(-int64(len(sg.data)))
			_ = unmapFile(sg.data, sg.mapped)
			_ = os.Remove(sg.path)
		}
	}
	for _, e := range added {
		sg, err := st.openSegment(e)
		if err != nil {
			cleanup()
			return fmt.Errorf("segstore: reopening just-written segment %q: %w", e.File, err)
		}
		newSegs = append(newSegs, sg)
	}
	next := *st.man
	next.Segments = append([]Entry(nil), st.man.Segments...)
	mutate(&next)
	if err := writeManifest(st.dir, &next); err != nil {
		cleanup()
		return err
	}
	st.man = &next
	for _, sg := range newSegs {
		st.segs[sg.entry.Seq] = sg
		mSegCreated.Add(1)
		mSegLevels.Add(levelKey(sg.entry.Level), 1)
		mSegBytesDisk.Add(sg.entry.Bytes)
	}
	for _, e := range removed {
		sg := st.segs[e.Seq]
		delete(st.segs, e.Seq)
		mSegLevels.Add(levelKey(e.Level), -1)
		mSegBytesDisk.Add(-e.Bytes)
		sg.retired.Store(true)
		sg.unref()
	}
	return nil
}

// Trim drops every leading segment entirely before absolute column
// keepFrom — window trimming as whole-segment deletion. Returns the new
// base column (unchanged if nothing could be dropped). Files of dropped
// segments are unlinked once their last View reference releases.
func (st *Store) Trim(keepFrom int) (int, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for n < len(st.man.Segments) && st.man.Segments[n].T1 <= keepFrom {
		n++
	}
	if n == 0 {
		return st.man.BaseCol, nil
	}
	dropped := append([]Entry(nil), st.man.Segments[:n]...)
	newBase := dropped[n-1].T1
	if err := st.commitLocked(nil, dropped, func(m *manifest) {
		m.Segments = append([]Entry(nil), m.Segments[n:]...)
		m.BaseCol = newBase
	}); err != nil {
		return st.man.BaseCol, err
	}
	return newBase, nil
}

// Sort of the interface boundary: tests reach into the live set.
func (st *Store) liveRefs() map[uint64]int64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[uint64]int64, len(st.segs))
	for seq, sg := range st.segs {
		out[seq] = sg.refs.Load()
	}
	return out
}

// SegmentFiles returns the sorted live segment file names (tests and
// tooling).
func (st *Store) SegmentFiles() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	names := make([]string, 0, len(st.man.Segments))
	for _, e := range st.man.Segments {
		names = append(names, e.File)
	}
	sort.Strings(names)
	return names
}

// laneSource feeds one lane's band floats to the segment writer.
type laneSource struct {
	ID   core.LaneID
	Read func(dst []float64) ([]float64, error)
}

// writeSegmentFile writes one segment atomically (temp + fsync +
// rename) and returns its manifest entry. Lane payloads are produced
// twice — once to compute per-lane CRCs for the header, once to stream
// the blobs — so nothing is buffered whole.
func writeSegmentFile(path string, params Params, level int, seq uint64, t0, t1 int, srcs []laneSource) (Entry, error) {
	metas := make([]laneMeta, len(srcs))
	var scratch []float64
	for n, src := range srcs {
		floats, err := src.Read(scratch)
		if err != nil {
			return Entry{}, err
		}
		scratch = floats
		var crc uint32
		if err := encodeFloats(floats, &crc, nil); err != nil {
			return Entry{}, err
		}
		metas[n] = laneMeta{ID: src.ID, Floats: int64(len(floats)), CRC: crc}
	}
	off := alignUp(int64(headerFrameLen(len(metas))))
	for n := range metas {
		metas[n].Off = off
		off = alignUp(off + metas[n].Floats*8)
	}
	h := &segHeader{Params: params, Level: level, Seq: seq, T0: t0, T1: t1, Lanes: metas}
	if err := h.validate(); err != nil {
		return Entry{}, err
	}
	var fileCRC uint32
	var fileBytes int64
	err := atomicio.WriteFile(path, func(w io.Writer) error {
		cw := &crcWriter{w: w}
		if _, err := cw.Write(h.encode()); err != nil {
			return err
		}
		pad := make([]byte, segPageAlign)
		for n, lm := range metas {
			for cw.n < lm.Off {
				pn := lm.Off - cw.n
				if pn > int64(len(pad)) {
					pn = int64(len(pad))
				}
				if _, err := cw.Write(pad[:pn]); err != nil {
					return err
				}
			}
			floats, err := srcs[n].Read(scratch)
			if err != nil {
				return err
			}
			scratch = floats
			var crc uint32
			if err := encodeFloats(floats, &crc, cw); err != nil {
				return err
			}
			if crc != lm.CRC {
				return fmt.Errorf("segstore: lane %+v bytes changed between CRC and write passes", lm.ID)
			}
		}
		fileCRC, fileBytes = cw.crc, cw.n
		return nil
	})
	if err != nil {
		return Entry{}, err
	}
	return Entry{File: filepath.Base(path), Level: level, Seq: seq, T0: t0, T1: t1,
		CRC: fileCRC, Bytes: fileBytes}, nil
}
