// Package segstore is the append-only, log-structured segment store for
// pool lanes: the persistence layer of segment-mode serving. A segment
// is one immutable, CRC32C-framed, page-aligned file holding every
// sketch lane of a contiguous column band of the stream — the sealed
// prefix of a panel-mode pool (see core.NewBandedPool). A small
// manifest (written atomically, fsck-able) names the live segment set
// per level. Serving maps segments read-only and hands the mapped lane
// bytes to core as sealed bands, so queries read them with zero copies;
// restart is O(open): map the manifest's segments, rebuild only the
// unsealed fringe, and serve — no WAL day replay.
//
// Lifecycle is LSM-ish: the ingester seals each drained batch's mature
// columns as a level-0 segment, a compactor merges runs of small
// same-level segments into level-tiered larger ones (immutable in,
// immutable out, atomic manifest swap), and window trimming deletes
// whole leading segments. Old files are unlinked only after the last
// pool/snapshot reference drops (refcounted views), so queries in
// flight never observe an unmapped page.
package segstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/core"
)

// Segment file layout (version 1, all integers little-endian):
//
//	magic "SKSG" | u32 version
//	u64 headerLen | header payload | u32 CRC32C(payload)
//	zero padding to the first 4096-aligned blob offset
//	lane blobs, each at a 4096-aligned offset, float64 LE, row-major
//	within the band: element (r, c, i) at (r·(t1−t0) + c − t0)·k + i
//
// Header payload:
//
//	f64 p | u64 k | u64 rows | u64 seed
//	u32 minLogRows | u32 maxLogRows | u32 minLogCols | u32 maxLogCols
//	u32 estimator | u32 panelCols
//	u32 level | u64 seq | u64 t0 | u64 t1
//	u32 laneCount | laneCount × (u32 i | u32 j | u32 s | u64 off | u64 floats | u32 crc)
//
// t0/t1 are absolute stream columns. Lane records are sorted in
// canonical (i, j, s) order. Page-aligned offsets guarantee the 8-byte
// alignment the zero-copy float64 reinterpretation of a mapping needs.
// Blob bytes are little-endian, which the zero-copy float64 view
// assumes of the host as well (every supported platform is
// little-endian).

var segMagic = [4]byte{'S', 'K', 'S', 'G'}

const (
	segVersion   = 1
	segPageAlign = 4096
	// maxHeaderLen bounds the framed header a reader will buffer; far
	// above any real lane count, far below anything dangerous.
	maxHeaderLen = 1 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Params are the pool parameters a segment set is bound to. Every
// segment of a store must agree with the store's manifest; a mismatch
// is a configuration error, never silently rebuilt.
type Params struct {
	P          float64
	K          int
	Rows       int // table rows
	Seed       uint64
	MinLogRows int
	MaxLogRows int
	MinLogCols int
	MaxLogCols int
	Estimator  core.Estimator
	PanelCols  int
}

// SegAlign returns the column granularity segments are cut at:
// max(PanelCols, 2^MaxLogCols), the panel-grid alignment that keeps
// sealed bytes identical to what a from-scratch build produces.
func (p Params) SegAlign() int {
	a := p.PanelCols
	if b := 1 << p.MaxLogCols; b > a {
		a = b
	}
	return a
}

func (p Params) validate() error {
	if p.K <= 0 || p.K > 1<<24 || p.Rows <= 0 || p.Rows > 1<<24 {
		return fmt.Errorf("segstore: implausible params k=%d rows=%d", p.K, p.Rows)
	}
	if p.MinLogRows < 0 || p.MinLogRows > p.MaxLogRows || p.MaxLogRows > 30 ||
		p.MinLogCols < 0 || p.MinLogCols > p.MaxLogCols || p.MaxLogCols > 30 {
		return fmt.Errorf("segstore: invalid dyadic size range %+v", p)
	}
	if p.PanelCols <= 0 || p.PanelCols&(p.PanelCols-1) != 0 {
		return fmt.Errorf("segstore: PanelCols %d must be a positive power of two", p.PanelCols)
	}
	if !(p.P > 0) || math.IsInf(p.P, 0) {
		return fmt.Errorf("segstore: invalid p=%v", p.P)
	}
	return nil
}

// laneRows returns the anchor-row count of lane id's plane.
func (p Params) laneRows(i int) int { return p.Rows - 1<<i + 1 }

// lanes returns the canonical lane order of a pool with these params.
func (p Params) lanes() []core.LaneID {
	var ids []core.LaneID
	for i := p.MinLogRows; i <= p.MaxLogRows; i++ {
		for j := p.MinLogCols; j <= p.MaxLogCols; j++ {
			for s := 0; s < 4; s++ {
				ids = append(ids, core.LaneID{I: i, J: j, S: s})
			}
		}
	}
	return ids
}

// laneMeta is one lane's blob record in a segment header.
type laneMeta struct {
	ID     core.LaneID
	Off    int64
	Floats int64
	CRC    uint32
}

// segHeader is a parsed segment file header.
type segHeader struct {
	Params Params
	Level  int
	Seq    uint64
	T0, T1 int
	Lanes  []laneMeta
}

// headerFrameLen returns the byte length of the framed header (magic
// through payload CRC) for n lanes — fixed-size records, so offsets can
// be laid out before encoding.
func headerFrameLen(n int) int {
	payload := 8 + 8 + 8 + 8 + // p, k, rows, seed
		6*4 + // size range, estimator, panelCols
		4 + 8 + 8 + 8 + // level, seq, t0, t1
		4 + n*(4+4+4+8+8+4)
	return 4 + 4 + 8 + payload + 4
}

func (h *segHeader) encode() []byte {
	var buf bytes.Buffer
	buf.Write(segMagic[:])
	le := func(v uint64, n int) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		buf.Write(b[:n])
	}
	le(segVersion, 4)

	var payload bytes.Buffer
	pw := func(v uint64, n int) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		payload.Write(b[:n])
	}
	pw(math.Float64bits(h.Params.P), 8)
	pw(uint64(h.Params.K), 8)
	pw(uint64(h.Params.Rows), 8)
	pw(h.Params.Seed, 8)
	pw(uint64(h.Params.MinLogRows), 4)
	pw(uint64(h.Params.MaxLogRows), 4)
	pw(uint64(h.Params.MinLogCols), 4)
	pw(uint64(h.Params.MaxLogCols), 4)
	pw(uint64(h.Params.Estimator), 4)
	pw(uint64(h.Params.PanelCols), 4)
	pw(uint64(h.Level), 4)
	pw(h.Seq, 8)
	pw(uint64(h.T0), 8)
	pw(uint64(h.T1), 8)
	pw(uint64(len(h.Lanes)), 4)
	for _, lm := range h.Lanes {
		pw(uint64(lm.ID.I), 4)
		pw(uint64(lm.ID.J), 4)
		pw(uint64(lm.ID.S), 4)
		pw(uint64(lm.Off), 8)
		pw(uint64(lm.Floats), 8)
		pw(uint64(lm.CRC), 4)
	}
	le(uint64(payload.Len()), 8)
	buf.Write(payload.Bytes())
	le(uint64(crc32.Checksum(payload.Bytes(), crcTable)), 4)
	return buf.Bytes()
}

// parseSegHeader reads and validates the framed header from r.
func parseSegHeader(r io.Reader) (*segHeader, error) {
	var fixed [16]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("segstore: reading segment header: %w", err)
	}
	if !bytes.Equal(fixed[:4], segMagic[:]) {
		return nil, fmt.Errorf("segstore: bad segment magic %q", fixed[:4])
	}
	if v := binary.LittleEndian.Uint32(fixed[4:8]); v != segVersion {
		return nil, fmt.Errorf("segstore: unsupported segment version %d", v)
	}
	plen := binary.LittleEndian.Uint64(fixed[8:16])
	if plen == 0 || plen > maxHeaderLen {
		return nil, fmt.Errorf("segstore: implausible header length %d", plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("segstore: reading segment header payload: %w", err)
	}
	var crcb [4]byte
	if _, err := io.ReadFull(r, crcb[:]); err != nil {
		return nil, fmt.Errorf("segstore: reading segment header CRC: %w", err)
	}
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(crcb[:]); got != want {
		return nil, fmt.Errorf("segstore: segment header CRC mismatch (got %08x, want %08x)", got, want)
	}

	h := &segHeader{}
	pos := 0
	rd := func(n int) (uint64, bool) {
		if pos+n > len(payload) {
			return 0, false
		}
		var b [8]byte
		copy(b[:], payload[pos:pos+n])
		pos += n
		return binary.LittleEndian.Uint64(b[:]), true
	}
	ok := true
	get := func(n int) uint64 {
		v, o := rd(n)
		ok = ok && o
		return v
	}
	h.Params.P = math.Float64frombits(get(8))
	h.Params.K = int(get(8))
	h.Params.Rows = int(get(8))
	h.Params.Seed = get(8)
	h.Params.MinLogRows = int(get(4))
	h.Params.MaxLogRows = int(get(4))
	h.Params.MinLogCols = int(get(4))
	h.Params.MaxLogCols = int(get(4))
	h.Params.Estimator = core.Estimator(get(4))
	h.Params.PanelCols = int(get(4))
	h.Level = int(get(4))
	h.Seq = get(8)
	h.T0 = int(get(8))
	h.T1 = int(get(8))
	nl := int(get(4))
	if !ok || nl < 0 || nl > 1<<16 {
		return nil, fmt.Errorf("segstore: truncated or implausible segment header")
	}
	h.Lanes = make([]laneMeta, nl)
	for n := range h.Lanes {
		lm := &h.Lanes[n]
		lm.ID.I = int(get(4))
		lm.ID.J = int(get(4))
		lm.ID.S = int(get(4))
		lm.Off = int64(get(8))
		lm.Floats = int64(get(8))
		lm.CRC = uint32(get(4))
	}
	if !ok || pos != len(payload) {
		return nil, fmt.Errorf("segstore: segment header length mismatch")
	}
	if err := h.validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// validate checks the header's internal consistency: parameters, band
// geometry, canonical lane order, and non-overlapping in-bounds blobs.
func (h *segHeader) validate() error {
	if err := h.Params.validate(); err != nil {
		return err
	}
	if h.T0 < 0 || h.T1 <= h.T0 {
		return fmt.Errorf("segstore: segment column range [%d,%d) empty or negative", h.T0, h.T1)
	}
	align := h.Params.SegAlign()
	if h.T0%align != 0 || h.T1%align != 0 {
		return fmt.Errorf("segstore: segment range [%d,%d) not aligned to %d", h.T0, h.T1, align)
	}
	if h.Level < 0 || h.Level > 60 {
		return fmt.Errorf("segstore: implausible segment level %d", h.Level)
	}
	want := h.Params.lanes()
	if len(h.Lanes) != len(want) {
		return fmt.Errorf("segstore: segment has %d lanes, params need %d", len(h.Lanes), len(want))
	}
	minOff := int64(headerFrameLen(len(want)))
	prevEnd := minOff
	w := h.T1 - h.T0
	for n, lm := range h.Lanes {
		if lm.ID != want[n] {
			return fmt.Errorf("segstore: lane %d is %+v, want canonical %+v", n, lm.ID, want[n])
		}
		if wantF := int64(h.Params.laneRows(lm.ID.I)) * int64(w) * int64(h.Params.K); lm.Floats != wantF {
			return fmt.Errorf("segstore: lane %+v has %d floats, want %d", lm.ID, lm.Floats, wantF)
		}
		if lm.Off < prevEnd || lm.Off%8 != 0 {
			return fmt.Errorf("segstore: lane %+v blob offset %d overlaps or misaligned", lm.ID, lm.Off)
		}
		prevEnd = lm.Off + lm.Floats*8
	}
	return nil
}

// size returns the total file size the header describes.
func (h *segHeader) size() int64 {
	if len(h.Lanes) == 0 {
		return int64(headerFrameLen(0))
	}
	last := h.Lanes[len(h.Lanes)-1]
	return last.Off + last.Floats*8
}

// alignUp rounds n up to a multiple of segPageAlign.
func alignUp(n int64) int64 {
	return (n + segPageAlign - 1) &^ (segPageAlign - 1)
}

// crcWriter accumulates a CRC32C over everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crcTable, p[:n])
	cw.n += int64(n)
	return n, err
}

// encodeFloats appends the little-endian encoding of src to a CRC and
// optionally a writer, in bounded chunks.
func encodeFloats(src []float64, crc *uint32, w io.Writer) error {
	const chunk = 8192 // floats per chunk
	buf := make([]byte, chunk*8)
	for len(src) > 0 {
		n := len(src)
		if n > chunk {
			n = chunk
		}
		for i, v := range src[:n] {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
		}
		b := buf[:n*8]
		if crc != nil {
			*crc = crc32.Update(*crc, crcTable, b)
		}
		if w != nil {
			if _, err := w.Write(b); err != nil {
				return err
			}
		}
		src = src[n:]
	}
	return nil
}

// decodeFloats reads n little-endian float64s from b into dst.
func decodeFloats(b []byte, dst []float64) {
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
}

// readSegHeaderFile opens path and parses just its header — the
// O(1)-per-segment restart read.
func readSegHeaderFile(path string) (*segHeader, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	h, err := parseSegHeader(f)
	if err != nil {
		return nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, 0, err
	}
	return h, st.Size(), nil
}
