package faultinject

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"
)

func TestWriterFailAtHard(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAt: 2}
	if _, err := w.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := w.Write([]byte("bbbb"))
	if err != ErrInjected || n != 0 {
		t.Fatalf("write 2: n=%d err=%v, want hard fault", n, err)
	}
	// Later writes pass through again — the trigger is one-shot.
	if _, err := w.Write([]byte("cccc")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "aaaacccc" {
		t.Fatalf("sink holds %q", buf.String())
	}
}

func TestWriterFailAtShort(t *testing.T) {
	var buf bytes.Buffer
	w := &Writer{W: &buf, FailAt: 1, Short: true}
	n, err := w.Write([]byte("abcdefgh"))
	if err != ErrInjected {
		t.Fatalf("err = %v", err)
	}
	if n != 4 || buf.String() != "abcd" {
		t.Fatalf("torn write passed %d bytes (%q), want half", n, buf.String())
	}
}

func TestCountWrites(t *testing.T) {
	n, err := CountWrites(func(w io.Writer) error {
		for i := 0; i < 7; i++ {
			if _, err := w.Write([]byte("x")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil || n != 7 {
		t.Fatalf("CountWrites = (%d, %v), want (7, nil)", n, err)
	}
}

func TestPanicNthSharedAcrossGoroutines(t *testing.T) {
	boom := PanicNth(50, "blam")
	var wg sync.WaitGroup
	var mu sync.Mutex
	caught := 0
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							caught++
							mu.Unlock()
						}
					}()
					boom()
				}()
			}
		}()
	}
	wg.Wait()
	if caught != 1 {
		t.Fatalf("caught %d panics across 100 calls, want exactly 1", caught)
	}
}

func TestCancelAfterChecks(t *testing.T) {
	ctx := CancelAfterChecks(context.Background(), 3)
	for i := 0; i < 2; i++ {
		if err := ctx.Err(); err != nil {
			t.Fatalf("check %d: err = %v, want nil", i+1, err)
		}
		select {
		case <-ctx.Done():
			t.Fatal("Done closed before the trigger")
		default:
		}
	}
	if err := ctx.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("third check: err = %v", err)
	}
	select {
	case <-ctx.Done():
	default:
		t.Fatal("Done not closed after the trigger fired")
	}
	// Stays cancelled.
	if err := ctx.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("after trigger: err = %v", err)
	}
}

func TestCancelAfterChecksHonorsParent(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx := CancelAfterChecks(parent, 1000)
	cancel()
	if err := ctx.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the parent's cancellation", err)
	}
}

func TestNthDeterministicAndInRange(t *testing.T) {
	for i := 0; i < 1000; i++ {
		a, b := Nth(42, i, 17), Nth(42, i, 17)
		if a != b {
			t.Fatalf("Nth not deterministic at i=%d: %d vs %d", i, a, b)
		}
		if a < 1 || a > 17 {
			t.Fatalf("Nth(42, %d, 17) = %d outside [1, 17]", i, a)
		}
	}
	if Nth(1, 0, 5) == Nth(2, 0, 5) && Nth(1, 1, 5) == Nth(2, 1, 5) && Nth(1, 2, 5) == Nth(2, 2, 5) {
		t.Fatal("different seeds produced identical triggers at three indices")
	}
}

func TestGateHoldsUntilOpen(t *testing.T) {
	g := NewGate()
	const n = 4
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			g.Wait()
			done <- struct{}{}
		}()
	}
	g.AwaitArrivals(n)
	if got := g.Arrived(); got != n {
		t.Fatalf("Arrived = %d, want %d", got, n)
	}
	select {
	case <-done:
		t.Fatal("a waiter got through a closed gate")
	default:
	}
	g.Open()
	for i := 0; i < n; i++ {
		<-done
	}
	// After Open, Wait no longer blocks and double-Open is harmless.
	g.Open()
	g.Wait()
}

func TestFailNth(t *testing.T) {
	trigger := FailNth(3)
	for i := 1; i <= 5; i++ {
		err := trigger()
		if (i == 3) != errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	never := FailNth(0)
	for i := 0; i < 10; i++ {
		if err := never(); err != nil {
			t.Fatalf("FailNth(0) fired: %v", err)
		}
	}
}

func TestSlowReader(t *testing.T) {
	payload := "hello, world"
	reads := 0
	sr := &SlowReader{R: bytes.NewReader([]byte(payload)), PerRead: func() { reads++ }}
	got, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatalf("read %q", got)
	}
	// One byte per Read: at least len(payload) PerRead invocations.
	if reads < len(payload) {
		t.Fatalf("%d reads for %d bytes", reads, len(payload))
	}
	sr2 := &SlowReader{R: bytes.NewReader([]byte(payload)), Chunk: 4}
	buf := make([]byte, 64)
	n, err := sr2.Read(buf)
	if err != nil || n != 4 {
		t.Fatalf("chunked read n=%d err=%v, want 4", n, err)
	}
}
