// Package faultinject provides deterministic fault injection for the
// robustness test suites: counted triggers that fail the nth write,
// return a short (torn) write, panic inside a worker, or cancel a
// context after a fixed number of cancellation checks. Every trigger is
// a plain counter or a seeded derivation — no wall clocks, no real
// randomness — so a crash scenario that fails once replays identically.
//
// The package is imported only from _test files. Production packages
// expose narrow hooks (atomicio.TestWrapWriter, user callbacks, Context
// options) that tests wire to these injectors, so no injection code is
// compiled into release binaries.
package faultinject

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// ErrInjected is the error returned by injected I/O faults.
var ErrInjected = errors.New("faultinject: injected fault")

// Writer wraps W and fails deterministically: the FailAt-th Write call
// (1-based) returns ErrInjected — after passing through the first half of
// its buffer when Short is set, modeling a torn write cut off mid-buffer.
// FailAt 0 never fails, which makes Writer double as a write counter.
type Writer struct {
	W      io.Writer
	FailAt int
	Short  bool
	Count  int // Write calls observed so far
}

func (w *Writer) Write(p []byte) (int, error) {
	w.Count++
	if w.FailAt > 0 && w.Count == w.FailAt {
		if w.Short && len(p) > 1 {
			n, err := w.W.Write(p[:len(p)/2])
			if err == nil {
				err = ErrInjected
			}
			return n, err
		}
		return 0, ErrInjected
	}
	return w.W.Write(p)
}

// CountWrites runs fn against a counting discard sink and reports how
// many Write calls it made — the bound a crash-matrix test iterates its
// FailAt fault point over.
func CountWrites(fn func(w io.Writer) error) (int, error) {
	cw := &Writer{W: io.Discard}
	err := fn(cw)
	return cw.Count, err
}

// PanicNth returns a function that panics with value on its nth call
// (1-based). Calls are counted atomically, so the trigger may be shared
// across worker goroutines: exactly one call panics regardless of how
// the calls interleave.
func PanicNth(n int64, value any) func() {
	var calls atomic.Int64
	return func() {
		if calls.Add(1) == n {
			panic(value)
		}
	}
}

// CancelAfterChecks derives a context from parent that starts reporting
// cancellation with the nth Err() call — a deterministic stand-in for
// "the user hits ^C mid-run". Workers poll Err between blocks of work,
// so the nth poll is a reproducible cancellation point no matter how the
// polls interleave across goroutines. Done() is closed when the trigger
// fires. The parent's own cancellation is honored at any time.
func CancelAfterChecks(parent context.Context, n int64) context.Context {
	c := &countdownCtx{Context: parent, done: make(chan struct{})}
	c.remaining.Store(n)
	return c
}

type countdownCtx struct {
	context.Context
	remaining atomic.Int64
	closeOnce sync.Once
	done      chan struct{}
}

func (c *countdownCtx) Err() error {
	if err := c.Context.Err(); err != nil {
		return err
	}
	if c.remaining.Add(-1) <= 0 {
		c.closeOnce.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

// Nth derives a deterministic trigger index in [1, max] from (seed, i)
// via SplitMix64, for sampling fault points reproducibly when iterating
// every single one is too slow (e.g. flipping a subset of the bytes of a
// large snapshot).
func Nth(seed uint64, i, max int) int {
	x := seed + uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x%uint64(max)) + 1
}
