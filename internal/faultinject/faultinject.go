// Package faultinject provides deterministic fault injection for the
// robustness test suites: counted triggers that fail the nth write,
// return a short (torn) write, panic inside a worker, or cancel a
// context after a fixed number of cancellation checks. Every trigger is
// a plain counter or a seeded derivation — no wall clocks, no real
// randomness — so a crash scenario that fails once replays identically.
//
// The package is imported only from _test files. Production packages
// expose narrow hooks (atomicio.TestWrapWriter, user callbacks, Context
// options) that tests wire to these injectors, so no injection code is
// compiled into release binaries.
package faultinject

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
)

// ErrInjected is the error returned by injected I/O faults.
var ErrInjected = errors.New("faultinject: injected fault")

// Writer wraps W and fails deterministically: the FailAt-th Write call
// (1-based) returns ErrInjected — after passing through the first half of
// its buffer when Short is set, modeling a torn write cut off mid-buffer.
// FailAt 0 never fails, which makes Writer double as a write counter.
type Writer struct {
	W      io.Writer
	FailAt int
	Short  bool
	Count  int // Write calls observed so far
}

func (w *Writer) Write(p []byte) (int, error) {
	w.Count++
	if w.FailAt > 0 && w.Count == w.FailAt {
		if w.Short && len(p) > 1 {
			n, err := w.W.Write(p[:len(p)/2])
			if err == nil {
				err = ErrInjected
			}
			return n, err
		}
		return 0, ErrInjected
	}
	return w.W.Write(p)
}

// CountWrites runs fn against a counting discard sink and reports how
// many Write calls it made — the bound a crash-matrix test iterates its
// FailAt fault point over.
func CountWrites(fn func(w io.Writer) error) (int, error) {
	cw := &Writer{W: io.Discard}
	err := fn(cw)
	return cw.Count, err
}

// PanicNth returns a function that panics with value on its nth call
// (1-based). Calls are counted atomically, so the trigger may be shared
// across worker goroutines: exactly one call panics regardless of how
// the calls interleave.
func PanicNth(n int64, value any) func() {
	var calls atomic.Int64
	return func() {
		if calls.Add(1) == n {
			panic(value)
		}
	}
}

// CancelAfterChecks derives a context from parent that starts reporting
// cancellation with the nth Err() call — a deterministic stand-in for
// "the user hits ^C mid-run". Workers poll Err between blocks of work,
// so the nth poll is a reproducible cancellation point no matter how the
// polls interleave across goroutines. Done() is closed when the trigger
// fires. The parent's own cancellation is honored at any time.
func CancelAfterChecks(parent context.Context, n int64) context.Context {
	c := &countdownCtx{Context: parent, done: make(chan struct{})}
	c.remaining.Store(n)
	return c
}

type countdownCtx struct {
	context.Context
	remaining atomic.Int64
	closeOnce sync.Once
	done      chan struct{}
}

func (c *countdownCtx) Err() error {
	if err := c.Context.Err(); err != nil {
		return err
	}
	if c.remaining.Add(-1) <= 0 {
		c.closeOnce.Do(func() { close(c.done) })
		return context.Canceled
	}
	return nil
}

func (c *countdownCtx) Done() <-chan struct{} { return c.done }

// Gate is a deterministic stand-in for handler latency: every Wait call
// blocks until Open is called, and AwaitArrivals lets the orchestrating
// test block until a known number of goroutines are parked inside Wait.
// Saturating a server this way is replayable — "N requests are in
// flight" is a synchronization fact, not a sleep-and-hope race — so
// overload tests assert exact shed behavior instead of load-test odds.
type Gate struct {
	mu      sync.Mutex
	arrived int
	changed chan struct{} // closed+replaced on each arrival
	open    chan struct{}
}

// NewGate returns a closed gate: Wait blocks until Open.
func NewGate() *Gate {
	return &Gate{changed: make(chan struct{}), open: make(chan struct{})}
}

// Wait parks the caller until the gate opens. Calls after Open return
// immediately.
func (g *Gate) Wait() {
	g.mu.Lock()
	g.arrived++
	close(g.changed)
	g.changed = make(chan struct{})
	g.mu.Unlock()
	<-g.open
}

// Arrived reports how many Wait calls have been made so far.
func (g *Gate) Arrived() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.arrived
}

// AwaitArrivals blocks until at least n Wait calls have been made —
// the deterministic "the server now holds n requests" checkpoint.
func (g *Gate) AwaitArrivals(n int) {
	for {
		g.mu.Lock()
		if g.arrived >= n {
			g.mu.Unlock()
			return
		}
		ch := g.changed
		g.mu.Unlock()
		<-ch
	}
}

// Open releases every current and future Wait call. Opening twice is a
// no-op.
func (g *Gate) Open() {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case <-g.open:
	default:
		close(g.open)
	}
}

// FailNth returns a trigger that fails with ErrInjected on exactly the
// nth call (1-based, counted atomically across goroutines) — the
// flaky-nth-request fault for retry-path tests. n ≤ 0 never fails.
func FailNth(n int64) func() error {
	var calls atomic.Int64
	return func() error {
		if n > 0 && calls.Add(1) == n {
			return ErrInjected
		}
		return nil
	}
}

// SlowReader models a slow or failing client draining a response: it
// serves at most Chunk bytes per Read (default 1) and invokes PerRead
// between chunks, which tests wire to a Gate or counter to hold
// server-side writes open deterministically. FailAt > 0 makes the
// FailAt-th Read call (1-based) return ErrInjected instead of data —
// the connection-reset-mid-body fault: earlier Reads delivered a valid
// prefix, then the stream dies.
type SlowReader struct {
	R       io.Reader
	Chunk   int
	PerRead func()
	FailAt  int
	Count   int // Read calls observed so far
}

func (s *SlowReader) Read(p []byte) (int, error) {
	s.Count++
	if s.FailAt > 0 && s.Count == s.FailAt {
		return 0, ErrInjected
	}
	if s.PerRead != nil {
		s.PerRead()
	}
	chunk := s.Chunk
	if chunk <= 0 {
		chunk = 1
	}
	if len(p) > chunk {
		p = p[:chunk]
	}
	return s.R.Read(p)
}

// Nth derives a deterministic trigger index in [1, max] from (seed, i)
// via SplitMix64, for sampling fault points reproducibly when iterating
// every single one is too slow (e.g. flipping a subset of the bytes of a
// large snapshot).
func Nth(seed uint64, i, max int) int {
	x := seed + uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x%uint64(max)) + 1
}

// Breaker is a switchable hard-failure injector for HTTP middleware: a
// tripped breaker models a SIGKILLed process — requests do not answer
// with a clean error, they abort mid-flight (the middleware panics
// with http.ErrAbortHandler, which Go's server turns into a severed
// connection). Trip/Reset make the kill and the replacement process
// deterministic script steps inside one test binary.
type Breaker struct {
	tripped atomic.Bool
	hits    atomic.Int64
}

// Trip makes every subsequent Hit report true (the process is "dead").
func (b *Breaker) Trip() { b.tripped.Store(true) }

// Reset restores the breaker ("a replacement process is up").
func (b *Breaker) Reset() { b.tripped.Store(false) }

// Tripped reports the breaker state without recording a hit.
func (b *Breaker) Tripped() bool { return b.tripped.Load() }

// Hit records one arrival and reports whether it should be killed.
func (b *Breaker) Hit() bool {
	if !b.tripped.Load() {
		return false
	}
	b.hits.Add(1)
	return true
}

// Hits reports how many arrivals hit a tripped breaker.
func (b *Breaker) Hits() int64 { return b.hits.Load() }
