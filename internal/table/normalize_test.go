package table

import (
	"math"
	"testing"
)

func TestScaleRows(t *testing.T) {
	tb, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	if err := ScaleRows(tb, []float64{2, 0.5}); err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{2, 4}, {1.5, 2}}
	for r := range want {
		for c := range want[r] {
			if tb.At(r, c) != want[r][c] {
				t.Errorf("(%d,%d) = %v, want %v", r, c, tb.At(r, c), want[r][c])
			}
		}
	}
	if err := ScaleRows(tb, []float64{1}); err == nil {
		t.Error("factor count mismatch: expected error")
	}
}

func TestCenterRows(t *testing.T) {
	tb, _ := FromRows([][]float64{{1, 3}, {10, 10}})
	CenterRows(tb)
	if tb.At(0, 0) != -1 || tb.At(0, 1) != 1 {
		t.Errorf("row 0 = %v", tb.Row(0))
	}
	if tb.At(1, 0) != 0 || tb.At(1, 1) != 0 {
		t.Errorf("row 1 = %v", tb.Row(1))
	}
}

func TestUnitRows(t *testing.T) {
	tb, _ := FromRows([][]float64{{3, 4}, {0, 0}})
	UnitRows(tb)
	if math.Abs(tb.At(0, 0)-0.6) > 1e-12 || math.Abs(tb.At(0, 1)-0.8) > 1e-12 {
		t.Errorf("row 0 = %v", tb.Row(0))
	}
	// Zero row untouched.
	if tb.At(1, 0) != 0 || tb.At(1, 1) != 0 {
		t.Errorf("zero row modified: %v", tb.Row(1))
	}
	// Norm exactly 1.
	var sumSq float64
	for _, v := range tb.Row(0) {
		sumSq += v * v
	}
	if math.Abs(sumSq-1) > 1e-12 {
		t.Errorf("row norm² = %v", sumSq)
	}
}

func TestStandardizeRows(t *testing.T) {
	tb, _ := FromRows([][]float64{{2, 4, 6}, {5, 5, 5}})
	StandardizeRows(tb)
	// Row 0: mean 4, sd sqrt(8/3).
	var sum, sumSq float64
	for _, v := range tb.Row(0) {
		sum += v
		sumSq += v * v
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("standardized mean %v", sum/3)
	}
	if math.Abs(sumSq/3-1) > 1e-12 {
		t.Errorf("standardized variance %v", sumSq/3)
	}
	// Constant row becomes zeros.
	for _, v := range tb.Row(1) {
		if v != 0 {
			t.Errorf("constant row = %v", tb.Row(1))
		}
	}
}

func TestClampNonNegative(t *testing.T) {
	tb, _ := FromRows([][]float64{{-1, 2}, {3, -0.5}})
	ClampNonNegative(tb)
	for _, v := range tb.Data() {
		if v < 0 {
			t.Errorf("negative cell %v survived", v)
		}
	}
	if tb.At(0, 1) != 2 || tb.At(1, 0) != 3 {
		t.Error("positive cells modified")
	}
}
