package table

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
)

// TestNonFiniteRejected: the value-carrying constructors and ScaleRows
// reject NaN/±Inf with ErrNonFinite, so non-finite cells cannot enter a
// Table through the validated ingress points.
func TestNonFiniteRejected(t *testing.T) {
	for name, bad := range map[string]float64{
		"NaN": math.NaN(), "+Inf": math.Inf(1), "-Inf": math.Inf(-1),
	} {
		if _, err := FromData(1, 2, []float64{1, bad}); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: FromData err = %v, want ErrNonFinite", name, err)
		}
		if _, err := FromRows([][]float64{{1, 2}, {bad, 4}}); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: FromRows err = %v, want ErrNonFinite", name, err)
		}
		tb := New(2, 2)
		if err := ScaleRows(tb, []float64{1, bad}); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: ScaleRows err = %v, want ErrNonFinite", name, err)
		}
		tb.Set(0, 1, bad)
		if err := CheckFinite(tb); !errors.Is(err, ErrNonFinite) {
			t.Errorf("%s: CheckFinite err = %v, want ErrNonFinite", name, err)
		}
	}
	ok := New(2, 2)
	if err := CheckFinite(ok); err != nil {
		t.Errorf("CheckFinite on finite table: %v", err)
	}
}

func TestNewAndAccessors(t *testing.T) {
	tb := New(3, 4)
	if tb.Rows() != 3 || tb.Cols() != 4 || tb.Size() != 12 {
		t.Fatalf("dims wrong: %dx%d size %d", tb.Rows(), tb.Cols(), tb.Size())
	}
	tb.Set(2, 3, 7.5)
	if tb.At(2, 3) != 7.5 {
		t.Error("Set/At mismatch")
	}
	if tb.Row(2)[3] != 7.5 {
		t.Error("Row aliasing broken")
	}
	if len(tb.Data()) != 12 {
		t.Error("Data length wrong")
	}
}

func TestNewPanics(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v): expected panic", dims)
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromData(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	tb, err := FromData(2, 3, data)
	if err != nil {
		t.Fatal(err)
	}
	if tb.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", tb.At(1, 2))
	}
	// FromData must alias, not copy.
	data[0] = 99
	if tb.At(0, 0) != 99 {
		t.Error("FromData copied instead of aliasing")
	}
	if _, err := FromData(2, 3, []float64{1}); err == nil {
		t.Error("expected length error")
	}
	if _, err := FromData(0, 3, nil); err == nil {
		t.Error("expected dims error")
	}
}

func TestFromRows(t *testing.T) {
	tb, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3 || tb.Cols() != 2 || tb.At(2, 1) != 6 {
		t.Error("FromRows content wrong")
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("expected ragged error")
	}
	if _, err := FromRows(nil); err == nil {
		t.Error("expected empty error")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(2, 2)
	a.Set(0, 0, 1)
	b := a.Clone()
	b.Set(0, 0, 2)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestRect(t *testing.T) {
	r := Rect{R0: 1, C0: 2, Rows: 3, Cols: 4}
	if r.Size() != 12 {
		t.Errorf("Size = %d, want 12", r.Size())
	}
	if !r.In(4, 6) {
		t.Error("rect should fit in 4x6")
	}
	if r.In(4, 5) {
		t.Error("rect should not fit in 4x5")
	}
	if r.In(3, 6) {
		t.Error("rect should not fit in 3x6")
	}
	if (Rect{R0: -1, C0: 0, Rows: 1, Cols: 1}).In(5, 5) {
		t.Error("negative origin should not fit")
	}
	if (Rect{Rows: 0, Cols: 1}).In(5, 5) {
		t.Error("zero-size rect should not fit")
	}
	if got := r.String(); got != "[1:4,2:6]" {
		t.Errorf("String = %q", got)
	}
}

func TestSubAndLinearize(t *testing.T) {
	tb, _ := FromRows([][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{9, 10, 11, 12},
	})
	r := Rect{R0: 1, C0: 1, Rows: 2, Cols: 2}
	sub := tb.Sub(r)
	want := [][]float64{{6, 7}, {10, 11}}
	for i := range want {
		for j := range want[i] {
			if sub.At(i, j) != want[i][j] {
				t.Fatalf("Sub(%d,%d) = %v, want %v", i, j, sub.At(i, j), want[i][j])
			}
		}
	}
	lin := tb.Linearize(r, nil)
	wantLin := []float64{6, 7, 10, 11}
	for i := range wantLin {
		if lin[i] != wantLin[i] {
			t.Fatalf("Linearize = %v, want %v", lin, wantLin)
		}
	}
	// Reuse a buffer.
	buf := make([]float64, 10)
	lin2 := tb.Linearize(r, buf)
	if &lin2[0] != &buf[0] {
		t.Error("Linearize did not reuse provided buffer")
	}
}

func TestSubPanicsOutOfBounds(t *testing.T) {
	tb := New(3, 3)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tb.Sub(Rect{R0: 2, C0: 2, Rows: 2, Cols: 2})
}

func TestStitch(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := FromRows([][]float64{{5}, {6}})
	s, err := Stitch(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 2 || s.Cols() != 3 {
		t.Fatalf("stitched dims %dx%d, want 2x3", s.Rows(), s.Cols())
	}
	want := [][]float64{{1, 2, 5}, {3, 4, 6}}
	for i := range want {
		for j := range want[i] {
			if s.At(i, j) != want[i][j] {
				t.Fatalf("stitched(%d,%d) = %v, want %v", i, j, s.At(i, j), want[i][j])
			}
		}
	}
}

func TestStitchErrors(t *testing.T) {
	if _, err := Stitch(); err == nil {
		t.Error("expected empty-stitch error")
	}
	a := New(2, 2)
	b := New(3, 2)
	if _, err := Stitch(a, b); err == nil {
		t.Error("expected row-mismatch error")
	}
}

func TestSummarize(t *testing.T) {
	tb, _ := FromRows([][]float64{{1, -2}, {3, 6}})
	s := tb.Summarize()
	if s.Min != -2 || s.Max != 6 || s.Sum != 8 || s.Mean != 2 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestEqualApprox(t *testing.T) {
	a, _ := FromRows([][]float64{{1, 2}})
	b, _ := FromRows([][]float64{{1.0000001, 2}})
	if !EqualApprox(a, b, 1e-6) {
		t.Error("tables should be approx equal")
	}
	if EqualApprox(a, b, 1e-9) {
		t.Error("tables should differ at tight tolerance")
	}
	c := New(2, 1)
	if EqualApprox(a, c, 1) {
		t.Error("different shapes should not be equal")
	}
}

func TestGridBasics(t *testing.T) {
	g, err := NewGrid(10, 12, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.GridRows() != 5 || g.GridCols() != 4 || g.NumTiles() != 20 {
		t.Fatalf("grid dims %dx%d (%d tiles)", g.GridRows(), g.GridCols(), g.NumTiles())
	}
	if g.TileRows() != 2 || g.TileCols() != 3 {
		t.Error("tile dims wrong")
	}
	r := g.Rect(5) // tile row 1, tile col 1
	if r.R0 != 2 || r.C0 != 3 || r.Rows != 2 || r.Cols != 3 {
		t.Errorf("Rect(5) = %v", r)
	}
	if g.Index(1, 1) != 5 {
		t.Errorf("Index(1,1) = %d, want 5", g.Index(1, 1))
	}
	tr, tc := g.Position(5)
	if tr != 1 || tc != 1 {
		t.Errorf("Position(5) = (%d,%d)", tr, tc)
	}
}

func TestGridDropsPartialTiles(t *testing.T) {
	g, err := NewGrid(7, 7, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumTiles() != 9 {
		t.Errorf("NumTiles = %d, want 9 (3x3 full tiles)", g.NumTiles())
	}
	last := g.Rect(8)
	if !last.In(7, 7) {
		t.Errorf("last tile %v escapes the table", last)
	}
}

func TestGridErrors(t *testing.T) {
	if _, err := NewGrid(4, 4, 0, 2); err == nil {
		t.Error("expected error for zero tile dim")
	}
	if _, err := NewGrid(4, 4, 5, 2); err == nil {
		t.Error("expected error for oversized tile")
	}
}

func TestGridPanics(t *testing.T) {
	g, _ := NewGrid(4, 4, 2, 2)
	for name, f := range map[string]func(){
		"rect":  func() { g.Rect(4) },
		"rectN": func() { g.Rect(-1) },
		"index": func() { g.Index(2, 0) },
		"pos":   func() { g.Position(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGridTiles(t *testing.T) {
	tb := New(4, 4)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range tb.Data() {
		tb.Data()[i] = rng.Float64()
	}
	g, _ := NewGrid(4, 4, 2, 2)
	tiles := g.Tiles(tb)
	if len(tiles) != 4 {
		t.Fatalf("len(tiles) = %d, want 4", len(tiles))
	}
	for i, tile := range tiles {
		want := tb.Linearize(g.Rect(i), nil)
		for j := range want {
			if tile[j] != want[j] {
				t.Fatalf("tile %d differs at %d", i, j)
			}
		}
	}
}

func TestGridTilesWrongTable(t *testing.T) {
	g, _ := NewGrid(4, 4, 2, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched table")
		}
	}()
	g.Tiles(New(5, 4))
}

func TestLinearizeFullTableIsData(t *testing.T) {
	tb := New(3, 5)
	for i := range tb.Data() {
		tb.Data()[i] = float64(i)
	}
	lin := tb.Linearize(Rect{Rows: 3, Cols: 5}, nil)
	for i, v := range lin {
		if v != float64(i) {
			t.Fatalf("full linearize differs at %d", i)
		}
	}
	if math.Abs(lin[7]-7) > 0 {
		t.Error("sanity")
	}
}
