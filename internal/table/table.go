// Package table provides the tabular-data substrate of the paper: dense
// two-dimensional tables of float64 values (stations × time buckets,
// IP hosts × time, ...), rectangular subtable extraction, tile grids for
// clustering, and multi-day stitching.
//
// Tables are row-major. By the paper's convention the y-axis (rows) indexes
// entities ordered spatially (e.g. collection stations by zip code) and the
// x-axis (columns) indexes discretized time.
package table

import (
	"errors"
	"fmt"
	"math"
)

// ErrNonFinite is wrapped by errors rejecting NaN or ±Inf cell values.
// Non-finite cells poison every downstream computation silently — a
// single NaN makes all sketch entries NaN, so every distance involving
// the table becomes NaN and comparisons are vacuously false — which is
// why the data ingress points (FromData, FromRows, tabfile readers)
// reject them up front instead. Check with errors.Is.
var ErrNonFinite = errors.New("non-finite value")

// CheckFinite returns an error wrapping ErrNonFinite naming the first
// NaN or ±Inf cell of t, or nil when every cell is finite.
func CheckFinite(t *Table) error {
	for i, v := range t.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("table: cell (%d,%d) is %v: %w", i/t.cols, i%t.cols, v, ErrNonFinite)
		}
	}
	return nil
}

// Table is a dense rows×cols matrix of float64 values.
type Table struct {
	rows, cols int
	data       []float64 // row-major, len rows*cols
}

// New allocates a zeroed rows×cols table. Panics on non-positive dims —
// an empty table is never meaningful in this library.
func New(rows, cols int) *Table {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("table: New(%d, %d) with non-positive dims", rows, cols))
	}
	return &Table{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromData wraps an existing row-major slice without copying. The slice
// length must equal rows*cols.
func FromData(rows, cols int, data []float64) (*Table, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("table: non-positive dims %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return nil, fmt.Errorf("table: data length %d != %d*%d", len(data), rows, cols)
	}
	t := &Table{rows: rows, cols: cols, data: data}
	if err := CheckFinite(t); err != nil {
		return nil, err
	}
	return t, nil
}

// FromRows builds a table from a slice of equal-length rows, copying them.
func FromRows(rows [][]float64) (*Table, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("table: FromRows with empty input")
	}
	cols := len(rows[0])
	t := New(len(rows), cols)
	for r, row := range rows {
		if len(row) != cols {
			return nil, fmt.Errorf("table: row %d has length %d, want %d", r, len(row), cols)
		}
		copy(t.Row(r), row)
	}
	if err := CheckFinite(t); err != nil {
		return nil, err
	}
	return t, nil
}

// Rows returns the number of rows.
func (t *Table) Rows() int { return t.rows }

// Cols returns the number of columns.
func (t *Table) Cols() int { return t.cols }

// Size returns the total number of cells.
func (t *Table) Size() int { return len(t.data) }

// Data returns the underlying row-major storage (not a copy).
func (t *Table) Data() []float64 { return t.data }

// At returns the value at row r, column c (bounds-checked by the slice).
func (t *Table) At(r, c int) float64 { return t.data[r*t.cols+c] }

// Set assigns the value at row r, column c.
func (t *Table) Set(r, c int, v float64) { t.data[r*t.cols+c] = v }

// Row returns row r as a slice aliasing the table storage.
func (t *Table) Row(r int) []float64 { return t.data[r*t.cols : (r+1)*t.cols] }

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	c := New(t.rows, t.cols)
	copy(c.data, t.data)
	return c
}

// Rect identifies a subrectangle: Rows×Cols cells with top-left corner at
// (R0, C0).
type Rect struct {
	R0, C0     int
	Rows, Cols int
}

// String implements fmt.Stringer for debugging and harness output.
func (r Rect) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d]", r.R0, r.R0+r.Rows, r.C0, r.C0+r.Cols)
}

// Size returns the cell count of the rectangle.
func (r Rect) Size() int { return r.Rows * r.Cols }

// In reports whether the rectangle lies fully inside a rows×cols table.
func (r Rect) In(rows, cols int) bool {
	return r.R0 >= 0 && r.C0 >= 0 && r.Rows > 0 && r.Cols > 0 &&
		r.R0+r.Rows <= rows && r.C0+r.Cols <= cols
}

// check panics if rect is not inside t.
func (t *Table) check(rect Rect) {
	if !rect.In(t.rows, t.cols) {
		panic(fmt.Sprintf("table: rect %v outside table %dx%d", rect, t.rows, t.cols))
	}
}

// Sub returns a copy of the subrectangle as a new table.
func (t *Table) Sub(rect Rect) *Table {
	t.check(rect)
	out := New(rect.Rows, rect.Cols)
	for r := 0; r < rect.Rows; r++ {
		src := t.data[(rect.R0+r)*t.cols+rect.C0:]
		copy(out.Row(r), src[:rect.Cols])
	}
	return out
}

// Linearize copies the subrectangle row-major into dst and returns it.
// If dst is nil or too small a new slice is allocated. This is the
// "matrix as a vector linearized in some consistent way" of Section 3.2.
func (t *Table) Linearize(rect Rect, dst []float64) []float64 {
	t.check(rect)
	n := rect.Size()
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for r := 0; r < rect.Rows; r++ {
		src := t.data[(rect.R0+r)*t.cols+rect.C0:]
		copy(dst[r*rect.Cols:(r+1)*rect.Cols], src[:rect.Cols])
	}
	return dst
}

// Stitch concatenates tables horizontally (along the time axis), the way
// the paper stitches consecutive days into one larger table. All tables
// must have the same number of rows.
func Stitch(tables ...*Table) (*Table, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("table: Stitch of nothing")
	}
	rows := tables[0].rows
	totalCols := 0
	for i, tb := range tables {
		if tb.rows != rows {
			return nil, fmt.Errorf("table: Stitch row mismatch: table %d has %d rows, want %d", i, tb.rows, rows)
		}
		totalCols += tb.cols
	}
	out := New(rows, totalCols)
	for r := 0; r < rows; r++ {
		dst := out.Row(r)
		off := 0
		for _, tb := range tables {
			copy(dst[off:off+tb.cols], tb.Row(r))
			off += tb.cols
		}
	}
	return out, nil
}

// Stats summarizes a table for sanity checks and harness reporting.
type Stats struct {
	Min, Max, Mean, Sum float64
}

// Summarize computes Stats over the whole table.
func (t *Table) Summarize() Stats {
	s := Stats{Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range t.data {
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Sum / float64(len(t.data))
	return s
}

// EqualApprox reports whether two tables have identical shape and all
// entries within tol of each other.
func EqualApprox(a, b *Table, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i, v := range a.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}
