package table

import "fmt"

// Grid partitions a table into a regular grid of equal-size tiles, the
// "objects" the paper's clustering experiments operate on (e.g. a day of
// data for a group of 16 neighboring stations). Cells in a trailing
// partial row or column of tiles are dropped, matching the paper's use of
// meaningfully-sized tiles only.
type Grid struct {
	tableRows, tableCols int
	tileRows, tileCols   int
	gridRows, gridCols   int
}

// NewGrid describes the tiling of a rows×cols table into tileRows×tileCols
// tiles. It errors if the tile does not fit at least once.
func NewGrid(tableRows, tableCols, tileRows, tileCols int) (*Grid, error) {
	if tileRows <= 0 || tileCols <= 0 {
		return nil, fmt.Errorf("table: non-positive tile dims %dx%d", tileRows, tileCols)
	}
	if tileRows > tableRows || tileCols > tableCols {
		return nil, fmt.Errorf("table: tile %dx%d larger than table %dx%d",
			tileRows, tileCols, tableRows, tableCols)
	}
	return &Grid{
		tableRows: tableRows, tableCols: tableCols,
		tileRows: tileRows, tileCols: tileCols,
		gridRows: tableRows / tileRows, gridCols: tableCols / tileCols,
	}, nil
}

// NumTiles returns the total number of tiles in the grid.
func (g *Grid) NumTiles() int { return g.gridRows * g.gridCols }

// GridRows returns the number of tile rows.
func (g *Grid) GridRows() int { return g.gridRows }

// GridCols returns the number of tile columns.
func (g *Grid) GridCols() int { return g.gridCols }

// TileRows returns the height of each tile.
func (g *Grid) TileRows() int { return g.tileRows }

// TileCols returns the width of each tile.
func (g *Grid) TileCols() int { return g.tileCols }

// Rect returns the table rectangle of tile i (row-major tile order).
// Panics if i is out of range.
func (g *Grid) Rect(i int) Rect {
	if i < 0 || i >= g.NumTiles() {
		panic(fmt.Sprintf("table: tile index %d out of range [0,%d)", i, g.NumTiles()))
	}
	tr, tc := i/g.gridCols, i%g.gridCols
	return Rect{R0: tr * g.tileRows, C0: tc * g.tileCols, Rows: g.tileRows, Cols: g.tileCols}
}

// Index returns the tile index holding grid position (tileRow, tileCol).
func (g *Grid) Index(tileRow, tileCol int) int {
	if tileRow < 0 || tileRow >= g.gridRows || tileCol < 0 || tileCol >= g.gridCols {
		panic(fmt.Sprintf("table: tile position (%d,%d) outside %dx%d grid",
			tileRow, tileCol, g.gridRows, g.gridCols))
	}
	return tileRow*g.gridCols + tileCol
}

// Position returns the (tileRow, tileCol) of tile i.
func (g *Grid) Position(i int) (tileRow, tileCol int) {
	if i < 0 || i >= g.NumTiles() {
		panic(fmt.Sprintf("table: tile index %d out of range [0,%d)", i, g.NumTiles()))
	}
	return i / g.gridCols, i % g.gridCols
}

// Tiles materializes every tile of t as a linearized vector. Tiles are
// returned in row-major tile order; each vector has length
// TileRows*TileCols. This is the form the clustering algorithms consume.
func (g *Grid) Tiles(t *Table) [][]float64 {
	if t.Rows() != g.tableRows || t.Cols() != g.tableCols {
		panic(fmt.Sprintf("table: grid built for %dx%d but table is %dx%d",
			g.tableRows, g.tableCols, t.Rows(), t.Cols()))
	}
	out := make([][]float64, g.NumTiles())
	for i := range out {
		out[i] = t.Linearize(g.Rect(i), nil)
	}
	return out
}
