package table

import (
	"fmt"
	"math"
)

// Normalization preprocessing: the paper notes that "depending on
// applications, one may consider dilation, scaling and other operations
// on vectors before computing the L1 or L2 norms". These helpers apply
// the common ones in place, per table row (per station/host), so callers
// can compare activity *shapes* rather than magnitudes.

// ScaleRows multiplies every row by its own factor; factors must have one
// entry per row.
func ScaleRows(t *Table, factors []float64) error {
	if len(factors) != t.Rows() {
		return fmt.Errorf("table: %d factors for %d rows", len(factors), t.Rows())
	}
	for r, f := range factors {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return fmt.Errorf("table: scale factor for row %d is %v: %w", r, f, ErrNonFinite)
		}
	}
	for r := 0; r < t.Rows(); r++ {
		f := factors[r]
		row := t.Row(r)
		for c := range row {
			row[c] *= f
		}
	}
	return nil
}

// CenterRows subtracts each row's mean, removing per-entity base levels.
func CenterRows(t *Table) {
	for r := 0; r < t.Rows(); r++ {
		row := t.Row(r)
		var sum float64
		for _, v := range row {
			sum += v
		}
		mean := sum / float64(len(row))
		for c := range row {
			row[c] -= mean
		}
	}
}

// UnitRows scales each row to unit Euclidean norm (rows that are all
// zeros are left unchanged), so distances compare temporal shapes
// independent of volume.
func UnitRows(t *Table) {
	for r := 0; r < t.Rows(); r++ {
		row := t.Row(r)
		var sumSq float64
		for _, v := range row {
			sumSq += v * v
		}
		if sumSq == 0 {
			continue
		}
		inv := 1 / math.Sqrt(sumSq)
		for c := range row {
			row[c] *= inv
		}
	}
}

// StandardizeRows centers each row and scales it to unit standard
// deviation (constant rows become all zeros).
func StandardizeRows(t *Table) {
	for r := 0; r < t.Rows(); r++ {
		row := t.Row(r)
		var sum float64
		for _, v := range row {
			sum += v
		}
		n := float64(len(row))
		mean := sum / n
		var varSum float64
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		sd := math.Sqrt(varSum / n)
		if sd == 0 {
			for c := range row {
				row[c] = 0
			}
			continue
		}
		inv := 1 / sd
		for c := range row {
			row[c] = (row[c] - mean) * inv
		}
	}
}

// ClampNonNegative replaces negative cells with zero — useful after
// additive noise on count-valued tables.
func ClampNonNegative(t *Table) {
	d := t.Data()
	for i, v := range d {
		if v < 0 {
			d[i] = 0
		}
	}
}
