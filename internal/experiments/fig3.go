package experiments

import (
	"fmt"
	"time"

	"repro/internal/evalmetrics"
	"repro/internal/workload"
)

// Fig3Config drives the Figure 3 experiment: k-means (k = 20 in the
// paper) over tiles of stitched multi-day data, sweeping the Lp exponent
// p, under the three distance modes. Panel (a) is timing; panel (b) is
// confusion-matrix agreement and clustering quality of the sketched runs
// against the exact run.
type Fig3Config struct {
	PValues  []float64
	Clusters int
	SketchK  int
	Stations int // table rows
	Days     int // stitched days: columns = 144·Days
	// Tiles are StationsPerTile × one day of buckets, the paper's
	// "day's data for groups of 16 neighboring stations".
	StationsPerTile int
	Seed            uint64
}

// DefaultFig3Config mirrors the paper's sweep at laptop scale.
func DefaultFig3Config() Fig3Config {
	return Fig3Config{
		PValues:         []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0},
		Clusters:        20,
		SketchK:         64,
		Stations:        192,
		Days:            4,
		StationsPerTile: 16,
		Seed:            42,
	}
}

// Fig3Row is one value of p.
type Fig3Row struct {
	P               float64
	TimeExact       time.Duration
	TimePrecomputed time.Duration // clustering only (sketches ready)
	TimeOnDemand    time.Duration // sketching + clustering
	PrepTime        time.Duration // the sketch-build cost (≈constant in p)
	Agreement       float64       // Definition 10 vs the exact clustering
	Quality         float64       // Definition 11 (>1 = sketched better)
}

// RunFig3 executes the sweep.
func RunFig3(cfg Fig3Config) ([]Fig3Row, error) {
	if len(cfg.PValues) == 0 || cfg.Clusters <= 0 || cfg.SketchK <= 0 {
		return nil, fmt.Errorf("experiments: invalid fig3 config %+v", cfg)
	}
	tb, _, err := workload.CallVolume(workload.CallVolumeConfig{
		Stations: cfg.Stations, Days: cfg.Days, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	tileRows, tileCols := cfg.StationsPerTile, workload.BucketsPerDay
	tiles, _, err := gridTiles(tb, tileRows, tileCols)
	if err != nil {
		return nil, err
	}
	if len(tiles) < cfg.Clusters {
		return nil, fmt.Errorf("experiments: %d tiles < %d clusters — enlarge the table",
			len(tiles), cfg.Clusters)
	}

	rows := make([]Fig3Row, 0, len(cfg.PValues))
	for _, p := range cfg.PValues {
		exact, err := runKMeansExact(tiles, p, cfg.Clusters, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pre, err := runKMeansSketch(tiles, tileRows, tileCols, p, cfg.Clusters, cfg.SketchK, cfg.Seed, true)
		if err != nil {
			return nil, err
		}
		onDemand, err := runKMeansSketch(tiles, tileRows, tileCols, p, cfg.Clusters, cfg.SketchK, cfg.Seed, false)
		if err != nil {
			return nil, err
		}
		agreement, err := evalmetrics.Agreement(exact.Assign, pre.Assign, cfg.Clusters)
		if err != nil {
			return nil, err
		}
		quality, err := evalmetrics.Quality(exact.SpreadExact, pre.SpreadExact)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig3Row{
			P:               p,
			TimeExact:       exact.TotalTime,
			TimePrecomputed: pre.ClusterTime,
			TimeOnDemand:    onDemand.TotalTime,
			PrepTime:        pre.PrepTime,
			Agreement:       agreement,
			Quality:         quality,
		})
	}
	return rows, nil
}
