// Package experiments contains one runnable harness per table/figure of
// the paper's evaluation (Section 4), each returning structured rows that
// the cmd/tabmine-experiments tool prints. Defaults are laptop-scale;
// every config exposes the knobs needed to approach paper-scale runs.
//
// The index of experiments (what each reproduces, which modules it
// exercises) lives in DESIGN.md; measured-vs-paper results are recorded in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/lpnorm"
	"repro/internal/table"
)

// Mode identifies the three distance scenarios of Section 4.4.
type Mode int

const (
	// ModeExact computes exact Lp distances over raw tiles.
	ModeExact Mode = iota
	// ModePrecomputed uses sketches computed before clustering starts.
	ModePrecomputed
	// ModeOnDemand computes each tile's sketch at first use, inside the
	// timed region.
	ModeOnDemand
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeExact:
		return "exact"
	case ModePrecomputed:
		return "sketch-precomputed"
	case ModeOnDemand:
		return "sketch-on-demand"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ClusterRun reports one timed k-means execution.
type ClusterRun struct {
	Mode        Mode
	P           float64
	K           int // number of clusters
	SketchSize  int // sketch entries (0 for exact mode)
	PrepTime    time.Duration
	ClusterTime time.Duration
	TotalTime   time.Duration
	Assign      []int
	SpreadExact float64 // Σ distance to centroid, measured with exact Lp
	Iterations  int
	Comparisons int64
}

// runKMeansExact clusters raw tiles under the exact Lp distance.
func runKMeansExact(tiles [][]float64, p float64, k int, seed uint64) (*ClusterRun, error) {
	lp, err := lpnorm.NewP(p)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := cluster.KMeans(tiles, lp.Dist, cluster.Config{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	return &ClusterRun{
		Mode: ModeExact, P: p, K: k,
		ClusterTime: elapsed, TotalTime: elapsed,
		Assign:      res.Assign,
		SpreadExact: exactSpread(tiles, res.Assign, k, lp),
		Iterations:  res.Iterations,
		Comparisons: res.Comparisons,
	}, nil
}

// runKMeansSketch clusters in sketch space. When precompute is true the
// sketch construction is timed separately as PrepTime (Section 4.4's
// scenario 1); otherwise it happens inside the timed clustering region
// (scenario 2 — with k-means every tile is sketched during the first
// iteration, so lazy sketching and bulk sketching coincide).
func runKMeansSketch(tiles [][]float64, tileRows, tileCols int, p float64, k, sketchK int, seed uint64, precompute bool) (*ClusterRun, error) {
	sk, err := core.NewSketcher(p, sketchK, tileRows, tileCols, seed^0x5ce7c4, core.EstimatorAuto)
	if err != nil {
		return nil, err
	}
	lp, err := lpnorm.NewP(p)
	if err != nil {
		return nil, err
	}
	mode := ModeOnDemand
	if precompute {
		mode = ModePrecomputed
	}
	sketchAll := func() [][]float64 {
		points := make([][]float64, len(tiles))
		for i, tile := range tiles {
			points[i] = sk.Sketch(tile, nil)
		}
		return points
	}

	var prep time.Duration
	var points [][]float64
	if precompute {
		t0 := time.Now()
		points = sketchAll()
		prep = time.Since(t0)
	}
	scratch := make([]float64, sketchK)
	dist := func(a, b []float64) float64 { return sk.DistanceScratch(a, b, scratch) }

	t0 := time.Now()
	if points == nil {
		points = sketchAll() // on-demand: sketching inside the timed region
	}
	res, err := cluster.KMeans(points, dist, cluster.Config{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	clusterTime := time.Since(t0)
	return &ClusterRun{
		Mode: mode, P: p, K: k, SketchSize: sketchK,
		PrepTime: prep, ClusterTime: clusterTime, TotalTime: prep + clusterTime,
		Assign:      res.Assign,
		SpreadExact: exactSpread(tiles, res.Assign, k, lp),
		Iterations:  res.Iterations,
		Comparisons: res.Comparisons,
	}, nil
}

// exactSpread evaluates a clustering in tile space: centroids are rebuilt
// from raw tiles and the spread is measured with the exact Lp distance,
// so clusterings from different modes are compared on equal footing
// (Definition 11).
func exactSpread(tiles [][]float64, assign []int, k int, lp lpnorm.P) float64 {
	centroids := cluster.CentroidsOf(tiles, assign, k)
	return cluster.Spread(tiles, assign, centroids, lp.Dist)
}

// gridTiles materializes the tiles of t under a grid of the given tile
// dimensions.
func gridTiles(t *table.Table, tileRows, tileCols int) ([][]float64, *table.Grid, error) {
	g, err := table.NewGrid(t.Rows(), t.Cols(), tileRows, tileCols)
	if err != nil {
		return nil, nil, err
	}
	return g.Tiles(t), g, nil
}
