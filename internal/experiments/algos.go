package experiments

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/evalmetrics"
	"repro/internal/table"
	"repro/internal/workload"
)

// AlgosConfig drives the cross-algorithm extension experiment: the paper
// claims its distance computations apply "to any mining or similarity
// algorithms that use Lp norms"; this harness verifies it by running
// k-means, k-medoids, and agglomerative clustering over the same sketched
// distances on the planted six-region dataset and scoring each against
// ground truth.
type AlgosConfig struct {
	P           float64
	SketchK     int
	Rows, Cols  int
	TileEdge    int
	OutlierFrac float64
	OutlierMag  float64
	Seed        uint64
	Restarts    int // restarts for the partition algorithms (best by own spread)
}

// DefaultAlgosConfig is laptop scale at the paper's recommended p = 0.5.
func DefaultAlgosConfig() AlgosConfig {
	return AlgosConfig{
		P:           0.5,
		SketchK:     256,
		Rows:        128,
		Cols:        64,
		TileEdge:    8,
		OutlierFrac: 0.01,
		OutlierMag:  60_000,
		Seed:        42,
		Restarts:    5,
	}
}

// AlgoRow reports one algorithm's result.
type AlgoRow struct {
	Algorithm string
	Accuracy  float64 // agreement with the planted clustering
	Time      time.Duration
}

// RunAlgos executes the comparison.
func RunAlgos(cfg AlgosConfig) ([]AlgoRow, error) {
	if cfg.P <= 0 || cfg.SketchK <= 0 || cfg.TileEdge <= 0 || cfg.Restarts < 1 {
		return nil, fmt.Errorf("experiments: invalid algos config %+v", cfg)
	}
	data, err := workload.NewSixRegions(workload.SixRegionsConfig{
		Rows: cfg.Rows, Cols: cfg.Cols, Seed: cfg.Seed,
		OutlierFrac: cfg.OutlierFrac, OutlierMag: cfg.OutlierMag,
	})
	if err != nil {
		return nil, err
	}
	g, err := table.NewGrid(cfg.Rows, cfg.Cols, cfg.TileEdge, cfg.TileEdge)
	if err != nil {
		return nil, err
	}
	truth, err := data.TileLabels(g)
	if err != nil {
		return nil, err
	}
	tiles := g.Tiles(data.Table)

	sk, err := core.NewSketcher(cfg.P, cfg.SketchK, cfg.TileEdge, cfg.TileEdge,
		cfg.Seed^0xa190, core.EstimatorAuto)
	if err != nil {
		return nil, err
	}
	points := make([][]float64, len(tiles))
	for i, tile := range tiles {
		points[i] = sk.Sketch(tile, nil)
	}
	scratch := make([]float64, cfg.SketchK)
	dist := func(a, b []float64) float64 { return sk.DistanceScratch(a, b, scratch) }
	k := workload.NumRegions

	score := func(assign []int) (float64, error) {
		return evalmetrics.Agreement(truth, assign, k)
	}
	var rows []AlgoRow

	// Partition algorithms restart from different seeds; the run with the
	// smallest spread (the algorithm's own objective, no ground truth) is
	// scored. The hierarchical methods are deterministic.
	type partitionAlgo struct {
		name string
		run  func(seed uint64) (*cluster.Result, error)
	}
	for _, algo := range []partitionAlgo{
		{"k-means", func(seed uint64) (*cluster.Result, error) {
			return cluster.KMeans(points, dist, cluster.Config{K: k, Seed: seed, Init: cluster.InitPlusPlus})
		}},
		{"k-medoids", func(seed uint64) (*cluster.Result, error) {
			return cluster.KMedoids(points, dist, cluster.Config{K: k, Seed: seed, Init: cluster.InitPlusPlus})
		}},
	} {
		t0 := time.Now()
		best, err := cluster.BestOf(cfg.Restarts, cfg.Seed, algo.run)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(t0)
		acc, err := score(best.Assign)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AlgoRow{Algorithm: algo.name, Accuracy: acc, Time: elapsed})
	}

	for _, linkage := range []cluster.Linkage{cluster.CompleteLinkage, cluster.AverageLinkage} {
		t0 := time.Now()
		merges, err := cluster.Agglomerative(points, dist, linkage)
		if err != nil {
			return nil, err
		}
		labels, err := cluster.CutDendrogram(merges, len(points), k)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(t0)
		acc, err := score(labels)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AlgoRow{
			Algorithm: "hierarchical/" + linkage.String(), Accuracy: acc, Time: elapsed,
		})
	}
	return rows, nil
}
