package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/evalmetrics"
	"repro/internal/lpnorm"
	"repro/internal/workload"
)

// SweepKConfig drives the sketch-size ablation the paper alludes to
// ("recall that the accuracy of sketching can be improved by using larger
// sized sketches"; "this time benefit could be made even more pronounced
// by reducing the size of the sketches at the expense of a loss in
// accuracy"): accuracy metrics as a function of k, at fixed tile size.
type SweepKConfig struct {
	P        float64
	KValues  []int
	Pairs    int
	TileEdge int
	Stations int
	Days     int
	Seed     uint64
}

// DefaultSweepKConfig is laptop scale.
func DefaultSweepKConfig(p float64) SweepKConfig {
	return SweepKConfig{
		P:        p,
		KValues:  []int{8, 16, 32, 64, 128, 256, 512},
		Pairs:    500,
		TileEdge: 16,
		Stations: 96,
		Days:     1,
		Seed:     42,
	}
}

// SweepKRow is one sketch size.
type SweepKRow struct {
	K          int
	Cumulative float64
	Average    float64
	Pairwise   float64
}

// RunSweepK executes the ablation. All sketch sizes see the same tile
// pairs, so rows are directly comparable.
func RunSweepK(cfg SweepKConfig) ([]SweepKRow, error) {
	if cfg.P <= 0 || len(cfg.KValues) == 0 || cfg.Pairs <= 0 || cfg.TileEdge <= 0 {
		return nil, fmt.Errorf("experiments: invalid sweep config %+v", cfg)
	}
	tb, _, err := workload.CallVolume(workload.CallVolumeConfig{
		Stations: cfg.Stations, Days: cfg.Days, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	edge := cfg.TileEdge
	if edge > tb.Rows() || edge > tb.Cols() {
		return nil, fmt.Errorf("experiments: tile %d exceeds table %dx%d", edge, tb.Rows(), tb.Cols())
	}
	lp, err := lpnorm.NewP(cfg.P)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x5ee9))
	maxR, maxC := tb.Rows()-edge, tb.Cols()-edge
	type anchor struct{ r, c int }
	sample := func() anchor { return anchor{rng.IntN(maxR + 1), rng.IntN(maxC + 1)} }
	xs := make([]anchor, cfg.Pairs)
	ys := make([]anchor, cfg.Pairs)
	zs := make([]anchor, cfg.Pairs)
	for i := range xs {
		xs[i], ys[i], zs[i] = sample(), sample(), sample()
		for ys[i] == xs[i] {
			ys[i] = sample()
		}
	}
	vec := func(a anchor) []float64 { return tb.Linearize(tableRect(a.r, a.c, edge), nil) }
	exactXY := make([]float64, cfg.Pairs)
	exactXZ := make([]float64, cfg.Pairs)
	for i := range xs {
		exactXY[i] = lp.Dist(vec(xs[i]), vec(ys[i]))
		exactXZ[i] = lp.Dist(vec(xs[i]), vec(zs[i]))
	}

	rows := make([]SweepKRow, 0, len(cfg.KValues))
	for _, k := range cfg.KValues {
		sk, err := core.NewSketcher(cfg.P, k, edge, edge, cfg.Seed^uint64(k)<<16, core.EstimatorAuto)
		if err != nil {
			return nil, err
		}
		scratch := make([]float64, k)
		dist := func(a, b anchor) float64 {
			return sk.DistanceScratch(sk.Sketch(vec(a), nil), sk.Sketch(vec(b), nil), scratch)
		}
		estXY := make([]float64, cfg.Pairs)
		triples := make([]evalmetrics.Triple, cfg.Pairs)
		for i := range xs {
			estXY[i] = dist(xs[i], ys[i])
			estXZ := dist(xs[i], zs[i])
			triples[i] = evalmetrics.Triple{
				ExactXY: exactXY[i], ExactXZ: exactXZ[i],
				EstXY: estXY[i], EstXZ: estXZ,
			}
		}
		cum, err := evalmetrics.Cumulative(estXY, exactXY)
		if err != nil {
			return nil, err
		}
		avg, err := evalmetrics.Average(estXY, exactXY)
		if err != nil {
			return nil, err
		}
		pw, err := evalmetrics.Pairwise(triples)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepKRow{K: k, Cumulative: cum, Average: avg, Pairwise: pw})
	}
	return rows, nil
}
