package experiments

import (
	"fmt"
	"math/rand/v2"
	"time"

	"repro/internal/core"
	"repro/internal/evalmetrics"
	"repro/internal/lpnorm"
	"repro/internal/table"
	"repro/internal/workload"
)

// Fig2Config drives the Figure 2 experiment: assessing the distance
// between randomly chosen pairs of square tiles of growing size, by exact
// computation and by precomputed sketches, measuring both wall-clock and
// the accuracy metrics of Definitions 7–9.
type Fig2Config struct {
	P         float64 // Lp exponent (the paper shows p = 1 and p = 2)
	Pairs     int     // random pairs per size (paper: 20,000)
	SketchK   int     // sketch entries
	TileEdges []int   // square tile edge lengths (paper: 8..256, i.e. 256B..256KB objects)
	Stations  int     // call-volume rows; must cover the largest tile
	Days      int     // call-volume days; columns = 144·Days
	Seed      uint64
}

// DefaultFig2Config returns the laptop-scale default (override Pairs and
// TileEdges to approach the paper's 20,000-pair 256KB-object runs).
func DefaultFig2Config(p float64) Fig2Config {
	return Fig2Config{
		P:         p,
		Pairs:     2000,
		SketchK:   128,
		TileEdges: []int{8, 16, 32, 64},
		Stations:  96,
		Days:      1,
		Seed:      42,
	}
}

// Fig2Row is one object-size point of Figure 2.
type Fig2Row struct {
	TileEdge    int
	ObjectCells int
	ObjectBytes int // at 8 bytes per float64 cell
	// Timing panel.
	ExactTime   time.Duration // exact distance for all pairs
	SketchTime  time.Duration // sketched distance for all pairs (sketches ready)
	PreprocTime time.Duration // building the all-positions sketch planes
	// SpectrumTime is the one-time cost of the shared table spectrum all
	// tile sizes correlate against (the same value on every row: it is
	// paid once per table, not once per size).
	SpectrumTime time.Duration
	// Accuracy panel (Definitions 7–9).
	Cumulative float64
	Average    float64
	Pairwise   float64
}

// RunFig2 executes the experiment and returns one row per tile size.
func RunFig2(cfg Fig2Config) ([]Fig2Row, error) {
	if cfg.P <= 0 || cfg.Pairs <= 0 || cfg.SketchK <= 0 || len(cfg.TileEdges) == 0 {
		return nil, fmt.Errorf("experiments: invalid fig2 config %+v", cfg)
	}
	maxEdge := 0
	for _, e := range cfg.TileEdges {
		if e > maxEdge {
			maxEdge = e
		}
	}
	if cfg.Stations < maxEdge || cfg.Days*workload.BucketsPerDay < maxEdge {
		return nil, fmt.Errorf("experiments: table %dx%d smaller than largest tile %d",
			cfg.Stations, cfg.Days*workload.BucketsPerDay, maxEdge)
	}
	tb, _, err := workload.CallVolume(workload.CallVolumeConfig{
		Stations: cfg.Stations, Days: cfg.Days, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	lp, err := lpnorm.NewP(cfg.P)
	if err != nil {
		return nil, err
	}

	// One shared frequency-domain plan for every tile size: the padded
	// table spectrum depends only on the table, so sketch-plane
	// preprocessing at each size pays only the kernel-side transforms.
	t0 := time.Now()
	tp := core.NewTablePlan(tb)
	spectrumTime := time.Since(t0)

	rows := make([]Fig2Row, 0, len(cfg.TileEdges))
	for _, edge := range cfg.TileEdges {
		row, err := runFig2Size(tb, tp, lp, cfg, edge)
		if err != nil {
			return nil, err
		}
		row.SpectrumTime = spectrumTime
		rows = append(rows, *row)
	}
	return rows, nil
}

func runFig2Size(tb *table.Table, tp *core.TablePlan, lp lpnorm.P, cfg Fig2Config, edge int) (*Fig2Row, error) {
	rng := rand.New(rand.NewPCG(cfg.Seed, uint64(edge)))
	maxR := tb.Rows() - edge
	maxC := tb.Cols() - edge
	type pair struct{ r1, c1, r2, c2 int }
	pairs := make([]pair, cfg.Pairs)
	for i := range pairs {
		p := pair{rng.IntN(maxR + 1), rng.IntN(maxC + 1), rng.IntN(maxR + 1), rng.IntN(maxC + 1)}
		// Identical anchors give exact distance zero, which Definition 8
		// cannot score; resample (the anchor space is large, so this
		// terminates immediately in practice).
		for p.r1 == p.r2 && p.c1 == p.c2 {
			p.r2, p.c2 = rng.IntN(maxR+1), rng.IntN(maxC+1)
		}
		pairs[i] = p
	}

	// Preprocessing: the all-positions sketch planes of Theorem 3.
	sk, err := core.NewSketcher(cfg.P, cfg.SketchK, edge, edge, cfg.Seed^uint64(edge)<<8, core.EstimatorAuto)
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	planes := sk.AllPositionsPlan(tp)
	preproc := time.Since(t0)

	// Exact distances (timed) — also the accuracy reference.
	exact := make([]float64, len(pairs))
	bufA := make([]float64, edge*edge)
	bufB := make([]float64, edge*edge)
	t0 = time.Now()
	for i, p := range pairs {
		a := tb.Linearize(table.Rect{R0: p.r1, C0: p.c1, Rows: edge, Cols: edge}, bufA)
		b := tb.Linearize(table.Rect{R0: p.r2, C0: p.c2, Rows: edge, Cols: edge}, bufB)
		exact[i] = lp.Dist(a, b)
	}
	exactTime := time.Since(t0)

	// Sketched distances (timed): O(k) per pair regardless of tile size.
	est := make([]float64, len(pairs))
	sa := make([]float64, cfg.SketchK)
	sb := make([]float64, cfg.SketchK)
	scratch := make([]float64, cfg.SketchK)
	t0 = time.Now()
	for i, p := range pairs {
		sa = planes.SketchAt(p.r1, p.c1, sa)
		sb = planes.SketchAt(p.r2, p.c2, sb)
		est[i] = sk.DistanceScratch(sa, sb, scratch)
	}
	sketchTime := time.Since(t0)

	cum, err := evalmetrics.Cumulative(est, exact)
	if err != nil {
		return nil, err
	}
	avg, err := evalmetrics.Average(est, exact)
	if err != nil {
		return nil, err
	}

	// Pairwise comparison correctness on (x, y, z) triples.
	nTriples := cfg.Pairs
	triples := make([]evalmetrics.Triple, 0, nTriples)
	for i := 0; i < nTriples; i++ {
		x := pair{rng.IntN(maxR + 1), rng.IntN(maxC + 1), 0, 0}
		y := pair{rng.IntN(maxR + 1), rng.IntN(maxC + 1), 0, 0}
		z := pair{rng.IntN(maxR + 1), rng.IntN(maxC + 1), 0, 0}
		ax := tb.Linearize(table.Rect{R0: x.r1, C0: x.c1, Rows: edge, Cols: edge}, bufA)
		ay := tb.Linearize(table.Rect{R0: y.r1, C0: y.c1, Rows: edge, Cols: edge}, bufB)
		exy := lp.Dist(ax, ay)
		az := tb.Linearize(table.Rect{R0: z.r1, C0: z.c1, Rows: edge, Cols: edge}, bufB)
		exz := lp.Dist(ax, az)
		sa = planes.SketchAt(x.r1, x.c1, sa)
		sb = planes.SketchAt(y.r1, y.c1, sb)
		sxy := sk.DistanceScratch(sa, sb, scratch)
		sb = planes.SketchAt(z.r1, z.c1, sb)
		sxz := sk.DistanceScratch(sa, sb, scratch)
		triples = append(triples, evalmetrics.Triple{
			ExactXY: exy, ExactXZ: exz, EstXY: sxy, EstXZ: sxz,
		})
	}
	pw, err := evalmetrics.Pairwise(triples)
	if err != nil {
		return nil, err
	}

	return &Fig2Row{
		TileEdge:    edge,
		ObjectCells: edge * edge,
		ObjectBytes: edge * edge * 8,
		ExactTime:   exactTime,
		SketchTime:  sketchTime,
		PreprocTime: preproc,
		Cumulative:  cum,
		Average:     avg,
		Pairwise:    pw,
	}, nil
}
