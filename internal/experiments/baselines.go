package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/evalmetrics"
	"repro/internal/lpnorm"
	"repro/internal/transform"
	"repro/internal/workload"
)

// BaselinesConfig drives the Section 2/5 comparison: stable sketches vs
// the transform-based reductions (DFT, DCT, Haar) as estimators of L2 and
// of L1 distance over call-volume tiles. The transforms hold their own
// under L2 and break under L1; the stable sketch tracks both.
type BaselinesConfig struct {
	Pairs    int
	TileEdge int
	Coeffs   int // kept transform coefficients AND sketch entries (equal budgets)
	Stations int
	Days     int
	Seed     uint64
}

// DefaultBaselinesConfig is laptop scale.
func DefaultBaselinesConfig() BaselinesConfig {
	return BaselinesConfig{
		Pairs:    1000,
		TileEdge: 16,
		Coeffs:   32,
		Stations: 96,
		Days:     1,
		Seed:     42,
	}
}

// BaselineRow reports one (estimator, target norm) combination.
type BaselineRow struct {
	Estimator  string  // "sketch", "DFT", "DCT", "Haar"
	P          float64 // the target Lp
	Cumulative float64
	Average    float64
	Pairwise   float64
}

// RunBaselines executes the comparison for p = 2 and p = 1.
func RunBaselines(cfg BaselinesConfig) ([]BaselineRow, error) {
	if cfg.Pairs <= 0 || cfg.TileEdge <= 0 || cfg.Coeffs <= 0 {
		return nil, fmt.Errorf("experiments: invalid baselines config %+v", cfg)
	}
	tb, _, err := workload.CallVolume(workload.CallVolumeConfig{
		Stations: cfg.Stations, Days: cfg.Days, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	edge := cfg.TileEdge
	dim := edge * edge
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xba5e11e5))
	maxR, maxC := tb.Rows()-edge, tb.Cols()-edge
	// Sample tile triples once; reuse across all estimators.
	type anchor struct{ r, c int }
	xs := make([]anchor, cfg.Pairs)
	ys := make([]anchor, cfg.Pairs)
	zs := make([]anchor, cfg.Pairs)
	for i := 0; i < cfg.Pairs; i++ {
		xs[i] = anchor{rng.IntN(maxR + 1), rng.IntN(maxC + 1)}
		ys[i] = anchor{rng.IntN(maxR + 1), rng.IntN(maxC + 1)}
		zs[i] = anchor{rng.IntN(maxR + 1), rng.IntN(maxC + 1)}
	}
	vecOf := func(a anchor) []float64 {
		return tb.Linearize(tableRect(a.r, a.c, edge), nil)
	}

	var rows []BaselineRow
	for _, p := range []float64{2, 1} {
		lp := lpnorm.MustP(p)
		exactXY := make([]float64, cfg.Pairs)
		exactXZ := make([]float64, cfg.Pairs)
		for i := 0; i < cfg.Pairs; i++ {
			x, y, z := vecOf(xs[i]), vecOf(ys[i]), vecOf(zs[i])
			exactXY[i] = lp.Dist(x, y)
			exactXZ[i] = lp.Dist(x, z)
		}
		evalEstimator := func(name string, dist func(x, y []float64) float64) error {
			estXY := make([]float64, cfg.Pairs)
			estXZ := make([]float64, cfg.Pairs)
			triples := make([]evalmetrics.Triple, cfg.Pairs)
			for i := 0; i < cfg.Pairs; i++ {
				x, y, z := vecOf(xs[i]), vecOf(ys[i]), vecOf(zs[i])
				estXY[i] = dist(x, y)
				estXZ[i] = dist(x, z)
				triples[i] = evalmetrics.Triple{
					ExactXY: exactXY[i], ExactXZ: exactXZ[i],
					EstXY: estXY[i], EstXZ: estXZ[i],
				}
			}
			cum, err := evalmetrics.Cumulative(estXY, exactXY)
			if err != nil {
				return err
			}
			avg, err := evalmetrics.Average(estXY, exactXY)
			if err != nil {
				return err
			}
			pw, err := evalmetrics.Pairwise(triples)
			if err != nil {
				return err
			}
			rows = append(rows, BaselineRow{
				Estimator: name, P: p,
				Cumulative: cum, Average: avg, Pairwise: pw,
			})
			return nil
		}

		sk, err := core.NewSketcher(p, cfg.Coeffs, edge, edge, cfg.Seed^0xf00d, core.EstimatorAuto)
		if err != nil {
			return nil, err
		}
		scratch := make([]float64, cfg.Coeffs)
		if err := evalEstimator("sketch", func(x, y []float64) float64 {
			return sk.DistanceScratch(sk.Sketch(x, nil), sk.Sketch(y, nil), scratch)
		}); err != nil {
			return nil, err
		}

		for _, method := range []transform.Method{transform.DFT, transform.DCT, transform.Haar} {
			m := cfg.Coeffs
			if method == transform.DFT {
				m /= 2 // DFT coefficients are complex: equal float budget
			}
			red, err := transform.NewReducer(method, dim, m)
			if err != nil {
				return nil, err
			}
			if err := evalEstimator(method.String(), func(x, y []float64) float64 {
				return red.Dist(red.Reduce(x, nil), red.Reduce(y, nil))
			}); err != nil {
				return nil, err
			}
		}
	}
	return rows, nil
}
