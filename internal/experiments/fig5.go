package experiments

import (
	"fmt"

	"repro/internal/vizascii"
	"repro/internal/workload"
)

// Fig5Config drives the Figure 5 case study: one day of call-volume data,
// tiles of (station group × one hour), clustered at two values of p and
// rendered as ASCII maps. High p surfaces full detail (metro cores with
// suburban flanks); low p keeps only the strongest regions.
type Fig5Config struct {
	PHigh, PLow     float64
	Clusters        int
	SketchK         int
	Stations        int
	StationsPerTile int // the paper groups 75 neighboring stations
	Seed            uint64
}

// DefaultFig5Config is the laptop-scale analogue of the paper's setup.
func DefaultFig5Config() Fig5Config {
	return Fig5Config{
		PHigh:           2.0,
		PLow:            0.25,
		Clusters:        10,
		SketchK:         64,
		Stations:        600,
		StationsPerTile: 75,
		Seed:            42,
	}
}

// Fig5Result carries the two rendered maps.
type Fig5Result struct {
	PHigh, PLow  float64
	MapHigh      string
	MapLow       string
	LegendHigh   string
	LegendLow    string
	GridRows     int // station groups
	GridCols     int // hours
	NonBlankHigh int // tiles outside the largest cluster at PHigh
	NonBlankLow  int // ... at PLow; the paper expects fewer at low p
}

// RunFig5 executes the case study.
func RunFig5(cfg Fig5Config) (*Fig5Result, error) {
	if cfg.Clusters <= 0 || cfg.SketchK <= 0 {
		return nil, fmt.Errorf("experiments: invalid fig5 config %+v", cfg)
	}
	tb, _, err := workload.CallVolume(workload.CallVolumeConfig{
		Stations: cfg.Stations, Days: 1, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Tiles: StationsPerTile stations tall, one hour (6 buckets) wide.
	const bucketsPerHour = 6
	tiles, g, err := gridTiles(tb, cfg.StationsPerTile, bucketsPerHour)
	if err != nil {
		return nil, err
	}
	if len(tiles) < cfg.Clusters {
		return nil, fmt.Errorf("experiments: %d tiles < %d clusters", len(tiles), cfg.Clusters)
	}

	render := func(p float64) (string, string, int, error) {
		run, err := runKMeansSketch(tiles, cfg.StationsPerTile, bucketsPerHour,
			p, cfg.Clusters, cfg.SketchK, cfg.Seed, true)
		if err != nil {
			return "", "", 0, err
		}
		m := &vizascii.Map{
			GridRows: g.GridRows(),
			GridCols: g.GridCols(),
			K:        cfg.Clusters,
			Assign:   run.Assign,
		}
		art, err := m.RenderWithHourAxis(1, true)
		if err != nil {
			return "", "", 0, err
		}
		legend, err := m.Legend(true)
		if err != nil {
			return "", "", 0, err
		}
		blank := m.LargestCluster()
		nonBlank := 0
		for _, c := range run.Assign {
			if c != blank {
				nonBlank++
			}
		}
		return art, legend, nonBlank, nil
	}

	res := &Fig5Result{
		PHigh: cfg.PHigh, PLow: cfg.PLow,
		GridRows: g.GridRows(), GridCols: g.GridCols(),
	}
	if res.MapHigh, res.LegendHigh, res.NonBlankHigh, err = render(cfg.PHigh); err != nil {
		return nil, err
	}
	if res.MapLow, res.LegendLow, res.NonBlankLow, err = render(cfg.PLow); err != nil {
		return nil, err
	}
	return res, nil
}
