package experiments

import (
	"strings"
	"testing"
)

func TestModeString(t *testing.T) {
	if ModeExact.String() != "exact" ||
		ModePrecomputed.String() != "sketch-precomputed" ||
		ModeOnDemand.String() != "sketch-on-demand" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode empty")
	}
}

func TestRunFig2SmallScale(t *testing.T) {
	cfg := Fig2Config{
		P: 1, Pairs: 200, SketchK: 256,
		TileEdges: []int{8, 64},
		Stations:  96, Days: 1, Seed: 1,
	}
	// Wall-clock comparisons flake when the test shares the machine with
	// heavy benchmarks; accuracy metrics are deterministic, so retry the
	// run a couple of times and fail the timing assertion only if it loses
	// every attempt.
	var rows []Fig2Row
	var err error
	const attempts = 3
	for attempt := 1; attempt <= attempts; attempt++ {
		rows, err = RunFig2(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rows[len(rows)-1].SketchTime <= rows[len(rows)-1].ExactTime {
			break
		}
		t.Logf("attempt %d: sketch (%v) slower than exact (%v); retrying (load noise)",
			attempt, rows[len(rows)-1].SketchTime, rows[len(rows)-1].ExactTime)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Note: all pairs share one set of random matrices (that is the point
	// of precomputation), so estimator errors are correlated across pairs
	// and the cumulative measure keeps a realization-dependent offset of
	// order 1/sqrt(k) instead of averaging out. Bounds below reflect that.
	for _, r := range rows {
		if r.Cumulative < 0.8 || r.Cumulative > 1.2 {
			t.Errorf("tile %d: cumulative correctness %v outside [0.8, 1.2]", r.TileEdge, r.Cumulative)
		}
		if r.Average < 0.75 {
			t.Errorf("tile %d: average correctness %v below 0.75", r.TileEdge, r.Average)
		}
		if r.Pairwise < 0.75 {
			t.Errorf("tile %d: pairwise correctness %v below 0.75", r.TileEdge, r.Pairwise)
		}
		if r.ObjectBytes != r.TileEdge*r.TileEdge*8 {
			t.Errorf("bytes accounting wrong: %+v", r)
		}
	}
	// The headline of the timing panel: exact cost grows with tile size,
	// sketch query cost does not (both measured on identical pair counts).
	if rows[1].ExactTime < rows[0].ExactTime {
		t.Logf("warning: exact time did not grow with tile size: %v vs %v",
			rows[0].ExactTime, rows[1].ExactTime)
	}
	if rows[1].SketchTime > rows[1].ExactTime {
		t.Errorf("sketch query (%v) slower than exact (%v) at 64x64 tiles",
			rows[1].SketchTime, rows[1].ExactTime)
	}
}

func TestRunFig2ConfigErrors(t *testing.T) {
	if _, err := RunFig2(Fig2Config{}); err == nil {
		t.Error("empty config: expected error")
	}
	bad := DefaultFig2Config(1)
	bad.TileEdges = []int{1024}
	if _, err := RunFig2(bad); err == nil {
		t.Error("tile larger than table: expected error")
	}
}

func TestRunFig3SmallScale(t *testing.T) {
	cfg := Fig3Config{
		PValues:  []float64{0.5, 2.0},
		Clusters: 6, SketchK: 48,
		Stations: 96, Days: 2, StationsPerTile: 8,
		Seed: 7,
	}
	rows, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Agreement < 0.3 {
			t.Errorf("p=%v: agreement %v implausibly low", r.P, r.Agreement)
		}
		if r.Quality < 0.5 || r.Quality > 2.0 {
			t.Errorf("p=%v: quality %v outside [0.5, 2.0]", r.P, r.Quality)
		}
		if r.PrepTime <= 0 {
			t.Errorf("p=%v: prep time not measured", r.P)
		}
		if r.TimeOnDemand < r.TimePrecomputed {
			t.Logf("note: on-demand (%v) faster than precomputed-clustering (%v); timing noise",
				r.TimeOnDemand, r.TimePrecomputed)
		}
	}
}

func TestRunFig3Errors(t *testing.T) {
	if _, err := RunFig3(Fig3Config{}); err == nil {
		t.Error("empty config: expected error")
	}
	cfg := DefaultFig3Config()
	cfg.Stations = 16
	cfg.Days = 1
	cfg.Clusters = 50 // more clusters than tiles
	if _, err := RunFig3(cfg); err == nil {
		t.Error("too many clusters: expected error")
	}
}

func TestRunFig4aSmallScale(t *testing.T) {
	cfg := Fig4aConfig{
		P: 1, ClusterCounts: []int{2, 6},
		SketchK:  48,
		Stations: 96, Days: 2, StationsPerTile: 8,
		Seed: 7,
	}
	rows, err := RunFig4a(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.TimeExact <= 0 || r.TimePrecomputed <= 0 || r.TimeOnDemand <= 0 {
			t.Errorf("k=%d: non-positive timings %+v", r.K, r)
		}
	}
}

func TestRunFig4aErrors(t *testing.T) {
	if _, err := RunFig4a(Fig4aConfig{}); err == nil {
		t.Error("empty config: expected error")
	}
	cfg := DefaultFig4aConfig()
	cfg.Stations = 16
	cfg.Days = 1
	cfg.ClusterCounts = []int{999}
	if _, err := RunFig4a(cfg); err == nil {
		t.Error("k too large: expected error")
	}
}

// TestRunFig4bReproducesHeadline checks the paper's key scientific claim:
// fractional p (≈0.5) recovers the planted clustering under outliers far
// better than the traditional p = 2.
func TestRunFig4bReproducesHeadline(t *testing.T) {
	cfg := DefaultFig4bConfig()
	cfg.PValues = []float64{0.25, 2.0}
	cfg.Seed = 11
	rows, err := RunFig4b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	accAt := map[float64]float64{}
	for _, r := range rows {
		accAt[r.P] = r.Accuracy
	}
	if accAt[0.25] < 0.95 {
		t.Errorf("p=0.25 accuracy %v, want >= 0.95 (paper: 100%%)", accAt[0.25])
	}
	if accAt[2.0] > 0.7 {
		t.Errorf("p=2 accuracy %v, want <= 0.7 (paper: L2 performs very badly)", accAt[2.0])
	}
}

func TestRunFig4bErrors(t *testing.T) {
	if _, err := RunFig4b(Fig4bConfig{}); err == nil {
		t.Error("empty config: expected error")
	}
	cfg := DefaultFig4bConfig()
	cfg.Rows = 20 // not divisible by 16
	if _, err := RunFig4b(cfg); err == nil {
		t.Error("bad rows: expected error")
	}
}

func TestRunFig5SmallScale(t *testing.T) {
	cfg := Fig5Config{
		PHigh: 2.0, PLow: 0.25,
		Clusters: 6, SketchK: 48,
		Stations: 300, StationsPerTile: 25,
		Seed: 5,
	}
	res, err := RunFig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.GridRows != 12 || res.GridCols != 24 {
		t.Fatalf("grid %dx%d, want 12x24", res.GridRows, res.GridCols)
	}
	for name, m := range map[string]string{"high": res.MapHigh, "low": res.MapLow} {
		lines := strings.Split(strings.TrimRight(m, "\n"), "\n")
		if len(lines) != 13 { // ruler + 12 rows
			t.Errorf("%s map has %d lines, want 13", name, len(lines))
		}
	}
	if res.LegendHigh == "" || res.LegendLow == "" {
		t.Error("legends missing")
	}
	if res.NonBlankHigh == 0 {
		t.Error("high-p map is entirely blank — no structure detected")
	}
}

func TestRunFig5Errors(t *testing.T) {
	if _, err := RunFig5(Fig5Config{}); err == nil {
		t.Error("empty config: expected error")
	}
	cfg := DefaultFig5Config()
	cfg.Stations = 75 // 1 group → 24 tiles < clusters? 24 > 10; force fewer
	cfg.StationsPerTile = 75
	cfg.Clusters = 30
	if _, err := RunFig5(cfg); err == nil {
		t.Error("too many clusters: expected error")
	}
}

func TestRunBaselinesShape(t *testing.T) {
	cfg := BaselinesConfig{
		Pairs: 300, TileEdge: 16, Coeffs: 32,
		Stations: 64, Days: 1, Seed: 3,
	}
	rows, err := RunBaselines(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 4 estimators × 2 norms
		t.Fatalf("got %d rows, want 8", len(rows))
	}
	get := func(est string, p float64) BaselineRow {
		for _, r := range rows {
			if r.Estimator == est && r.P == p {
				return r
			}
		}
		t.Fatalf("missing row %s p=%v", est, p)
		return BaselineRow{}
	}
	// Sketch tracks both norms.
	for _, p := range []float64{1.0, 2.0} {
		r := get("sketch", p)
		if r.Cumulative < 0.85 || r.Cumulative > 1.15 {
			t.Errorf("sketch p=%v cumulative %v", p, r.Cumulative)
		}
	}
	// Transforms must do substantially worse at estimating L1 than the
	// sketch does: their cumulative correctness deviates from 1 by much
	// more (the systematic √N-ish gap between L1 and L2 magnitudes).
	sketchL1Dev := dev(get("sketch", 1).Cumulative)
	for _, est := range []string{"DFT", "DCT", "Haar"} {
		if d := dev(get(est, 1).Cumulative); d < 2*sketchL1Dev {
			t.Errorf("%s at L1: deviation %v not clearly worse than sketch %v", est, d, sketchL1Dev)
		}
	}
}

func dev(x float64) float64 {
	if x > 1 {
		return x - 1
	}
	return 1 - x
}

func TestRunBaselinesErrors(t *testing.T) {
	if _, err := RunBaselines(BaselinesConfig{}); err == nil {
		t.Error("empty config: expected error")
	}
}

func TestPrinters(t *testing.T) {
	var b strings.Builder
	PrintFig2(&b, 1, []Fig2Row{{TileEdge: 8, ObjectBytes: 512}})
	PrintFig3(&b, []Fig3Row{{P: 0.5}})
	PrintFig4a(&b, []Fig4aRow{{K: 4}})
	PrintFig4b(&b, []Fig4bRow{{P: 0.5, Accuracy: 1}})
	PrintFig5(&b, &Fig5Result{MapHigh: "x\n", MapLow: "y\n"})
	PrintBaselines(&b, []BaselineRow{{Estimator: "sketch", P: 1}})
	out := b.String()
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 4(a)", "Figure 4(b)", "Figure 5", "baselines"} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q", want)
		}
	}
}

func TestRunSweepKAccuracyImproves(t *testing.T) {
	cfg := SweepKConfig{
		P: 1, KValues: []int{8, 512}, Pairs: 200,
		TileEdge: 16, Stations: 64, Days: 1, Seed: 9,
	}
	rows, err := RunSweepK(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	small, large := rows[0], rows[1]
	if large.Average <= small.Average {
		t.Errorf("average correctness did not improve with k: %v -> %v",
			small.Average, large.Average)
	}
	if large.Pairwise < small.Pairwise-0.02 {
		t.Errorf("pairwise correctness regressed with k: %v -> %v",
			small.Pairwise, large.Pairwise)
	}
	if large.Average < 0.85 {
		t.Errorf("k=512 average correctness %v below 0.85", large.Average)
	}
}

func TestRunSweepKErrors(t *testing.T) {
	if _, err := RunSweepK(SweepKConfig{}); err == nil {
		t.Error("empty config: expected error")
	}
	cfg := DefaultSweepKConfig(1)
	cfg.TileEdge = 10_000
	if _, err := RunSweepK(cfg); err == nil {
		t.Error("oversized tile: expected error")
	}
}

func TestPrintSweepK(t *testing.T) {
	var b strings.Builder
	PrintSweepK(&b, 1, []SweepKRow{{K: 8, Cumulative: 1, Average: 0.9, Pairwise: 0.95}})
	if !strings.Contains(b.String(), "Sketch-size sweep") {
		t.Error("sweep header missing")
	}
}

func TestRunAlgosAllRecoverPlantedClusters(t *testing.T) {
	cfg := DefaultAlgosConfig()
	cfg.Seed = 11
	rows, err := RunAlgos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0.9 {
			t.Errorf("%s accuracy %v below 0.9 at p=0.5", r.Algorithm, r.Accuracy)
		}
		if r.Time <= 0 {
			t.Errorf("%s time not measured", r.Algorithm)
		}
	}
}

func TestRunAlgosErrors(t *testing.T) {
	if _, err := RunAlgos(AlgosConfig{}); err == nil {
		t.Error("empty config: expected error")
	}
	cfg := DefaultAlgosConfig()
	cfg.Rows = 20
	if _, err := RunAlgos(cfg); err == nil {
		t.Error("bad rows: expected error")
	}
}

func TestPrintAlgos(t *testing.T) {
	var b strings.Builder
	PrintAlgos(&b, DefaultAlgosConfig(), []AlgoRow{{Algorithm: "k-means", Accuracy: 1}})
	if !strings.Contains(b.String(), "Mining algorithms") {
		t.Error("algos header missing")
	}
}
