package experiments

import (
	"fmt"
	"time"

	"repro/internal/evalmetrics"
	"repro/internal/table"
	"repro/internal/workload"
)

// Fig4aConfig drives Figure 4(a): k-means time as the number of clusters
// grows, under the three distance modes, at fixed p.
type Fig4aConfig struct {
	P               float64
	ClusterCounts   []int
	SketchK         int
	Stations        int
	Days            int
	StationsPerTile int
	Seed            uint64
}

// DefaultFig4aConfig mirrors the paper's k sweep {4..48} at laptop scale.
func DefaultFig4aConfig() Fig4aConfig {
	return Fig4aConfig{
		P:               1,
		ClusterCounts:   []int{4, 8, 12, 16, 20, 24, 48},
		SketchK:         64,
		Stations:        192,
		Days:            4,
		StationsPerTile: 16,
		Seed:            42,
	}
}

// Fig4aRow is one cluster count.
type Fig4aRow struct {
	K               int
	TimeExact       time.Duration
	TimePrecomputed time.Duration
	TimeOnDemand    time.Duration
}

// RunFig4a executes the sweep.
func RunFig4a(cfg Fig4aConfig) ([]Fig4aRow, error) {
	if len(cfg.ClusterCounts) == 0 || cfg.SketchK <= 0 {
		return nil, fmt.Errorf("experiments: invalid fig4a config %+v", cfg)
	}
	tb, _, err := workload.CallVolume(workload.CallVolumeConfig{
		Stations: cfg.Stations, Days: cfg.Days, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	tileRows, tileCols := cfg.StationsPerTile, workload.BucketsPerDay
	tiles, _, err := gridTiles(tb, tileRows, tileCols)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig4aRow, 0, len(cfg.ClusterCounts))
	for _, k := range cfg.ClusterCounts {
		if k > len(tiles) {
			return nil, fmt.Errorf("experiments: k = %d exceeds %d tiles", k, len(tiles))
		}
		exact, err := runKMeansExact(tiles, cfg.P, k, cfg.Seed)
		if err != nil {
			return nil, err
		}
		pre, err := runKMeansSketch(tiles, tileRows, tileCols, cfg.P, k, cfg.SketchK, cfg.Seed, true)
		if err != nil {
			return nil, err
		}
		onDemand, err := runKMeansSketch(tiles, tileRows, tileCols, cfg.P, k, cfg.SketchK, cfg.Seed, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4aRow{
			K:               k,
			TimeExact:       exact.TotalTime,
			TimePrecomputed: pre.ClusterTime,
			TimeOnDemand:    onDemand.TotalTime,
		})
	}
	return rows, nil
}

// Fig4bConfig drives Figure 4(b): recovering a known planted clustering
// from the six-region synthetic dataset while sweeping p, with sketched
// distances throughout.
type Fig4bConfig struct {
	PValues     []float64
	SketchK     int
	Rows, Cols  int // six-region table dims (Rows divisible by 16)
	TileEdge    int // square tile edge; must divide Rows/16 and Cols
	OutlierFrac float64
	// OutlierMag is the large-outlier magnitude. The paper's regime has a
	// single outlier dominating a tile-pair L2 distance, which requires
	// OutlierMag ≳ bandGap·√tileCells; the default config scales it
	// accordingly for its reduced tile size (see DESIGN.md substitutions).
	OutlierMag float64
	Seed       uint64
	Restarts   int // k-means restarts; best-of by exact spread
}

// DefaultFig4bConfig mirrors the paper's sweep p ∈ [0, 2] at laptop scale
// (the paper used 64KB tiles on a 128MB table; shape is preserved).
func DefaultFig4bConfig() Fig4bConfig {
	return Fig4bConfig{
		PValues:     []float64{0.02, 0.1, 0.25, 0.4, 0.5, 0.65, 0.8, 1.0, 1.25, 1.5, 1.75, 2.0},
		SketchK:     256,
		Rows:        256,
		Cols:        128,
		TileEdge:    16,
		OutlierFrac: 0.01,
		OutlierMag:  300_000, // ≈ bandGap(4k)·√256·4.7 — the paper's "one outlier dominates L2" regime at this tile size
		Seed:        42,
		Restarts:    5,
	}
}

// Fig4bRow is one value of p.
type Fig4bRow struct {
	P        float64
	Accuracy float64 // fraction of tiles assigned to their true region (Def 10 vs ground truth)
}

// RunFig4b executes the sweep.
func RunFig4b(cfg Fig4bConfig) ([]Fig4bRow, error) {
	if len(cfg.PValues) == 0 || cfg.SketchK <= 0 || cfg.Restarts < 1 {
		return nil, fmt.Errorf("experiments: invalid fig4b config %+v", cfg)
	}
	data, err := workload.NewSixRegions(workload.SixRegionsConfig{
		Rows: cfg.Rows, Cols: cfg.Cols, Seed: cfg.Seed,
		OutlierFrac: cfg.OutlierFrac, OutlierMag: cfg.OutlierMag,
	})
	if err != nil {
		return nil, err
	}
	g, err := table.NewGrid(cfg.Rows, cfg.Cols, cfg.TileEdge, cfg.TileEdge)
	if err != nil {
		return nil, err
	}
	truth, err := data.TileLabels(g)
	if err != nil {
		return nil, err
	}
	tiles := g.Tiles(data.Table)

	rows := make([]Fig4bRow, 0, len(cfg.PValues))
	for _, p := range cfg.PValues {
		// Best-of-restarts by exact spread, the objective k-means
		// minimizes; ground truth is never consulted for selection.
		best := -1.0
		var bestRun *ClusterRun
		for r := 0; r < cfg.Restarts; r++ {
			run, err := runKMeansSketch(tiles, cfg.TileEdge, cfg.TileEdge,
				p, workload.NumRegions, cfg.SketchK, cfg.Seed+uint64(r)*101, true)
			if err != nil {
				return nil, err
			}
			if bestRun == nil || run.SpreadExact < best {
				best, bestRun = run.SpreadExact, run
			}
		}
		acc, err := evalmetrics.Agreement(truth, bestRun.Assign, workload.NumRegions)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4bRow{P: p, Accuracy: acc})
	}
	return rows, nil
}
