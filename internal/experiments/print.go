package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/table"
)

// tableRect is shorthand for a square rectangle anchored at (r, c).
func tableRect(r, c, edge int) table.Rect {
	return table.Rect{R0: r, C0: c, Rows: edge, Cols: edge}
}

func fmtDur(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// PrintFig2 writes the Figure 2 rows as an aligned text table.
func PrintFig2(w io.Writer, p float64, rows []Fig2Row) {
	fmt.Fprintf(w, "Figure 2 — distance assessment, L%.4g (time per batch of pairs; accuracy in %%)\n", p)
	fmt.Fprintf(w, "%-10s %-12s %-12s %-12s %-12s %-10s %-10s %-10s\n",
		"tile", "bytes", "exact", "sketch", "preprocess", "cumul", "avg", "pairwise")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-12d %-12s %-12s %-12s %-10.2f %-10.2f %-10.2f\n",
			fmt.Sprintf("%dx%d", r.TileEdge, r.TileEdge), r.ObjectBytes,
			fmtDur(r.ExactTime), fmtDur(r.SketchTime), fmtDur(r.PreprocTime),
			100*r.Cumulative, 100*r.Average, 100*r.Pairwise)
	}
}

// PrintFig3 writes the Figure 3 rows (both panels).
func PrintFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintf(w, "Figure 3 — 20-means clustering across p (times; agreement/quality in %%)\n")
	fmt.Fprintf(w, "%-6s %-12s %-14s %-12s %-12s %-11s %-10s\n",
		"p", "exact", "precomputed", "on-demand", "sketch-prep", "agreement", "quality")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6.2f %-12s %-14s %-12s %-12s %-11.1f %-10.1f\n",
			r.P, fmtDur(r.TimeExact), fmtDur(r.TimePrecomputed), fmtDur(r.TimeOnDemand),
			fmtDur(r.PrepTime), 100*r.Agreement, 100*r.Quality)
	}
}

// PrintFig4a writes the Figure 4(a) rows.
func PrintFig4a(w io.Writer, rows []Fig4aRow) {
	fmt.Fprintf(w, "Figure 4(a) — k-means time vs number of clusters\n")
	fmt.Fprintf(w, "%-6s %-12s %-14s %-12s\n", "k", "exact", "precomputed", "on-demand")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %-12s %-14s %-12s\n",
			r.K, fmtDur(r.TimeExact), fmtDur(r.TimePrecomputed), fmtDur(r.TimeOnDemand))
	}
}

// PrintFig4b writes the Figure 4(b) rows.
func PrintFig4b(w io.Writer, rows []Fig4bRow) {
	fmt.Fprintf(w, "Figure 4(b) — accuracy of recovering the planted six-region clustering vs p\n")
	fmt.Fprintf(w, "%-6s %-10s\n", "p", "accuracy")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6.2f %-10.1f%%\n", r.P, 100*r.Accuracy)
	}
}

// PrintFig5 writes the case-study maps.
func PrintFig5(w io.Writer, res *Fig5Result) {
	fmt.Fprintf(w, "Figure 5 — one day clustered at p=%.4g and p=%.4g (%d station groups × %d hours)\n",
		res.PHigh, res.PLow, res.GridRows, res.GridCols)
	fmt.Fprintf(w, "\np = %.4g (%d tiles in non-trivial clusters):\n%s\n%s",
		res.PHigh, res.NonBlankHigh, res.MapHigh, res.LegendHigh)
	fmt.Fprintf(w, "\np = %.4g (%d tiles in non-trivial clusters):\n%s\n%s",
		res.PLow, res.NonBlankLow, res.MapLow, res.LegendLow)
}

// PrintSweepK writes the sketch-size ablation rows.
func PrintSweepK(w io.Writer, p float64, rows []SweepKRow) {
	fmt.Fprintf(w, "Sketch-size sweep — accuracy vs k at L%.4g (in %%)\n", p)
	fmt.Fprintf(w, "%-6s %-10s %-10s %-10s\n", "k", "cumul", "avg", "pairwise")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %-10.1f %-10.1f %-10.1f\n",
			r.K, 100*r.Cumulative, 100*r.Average, 100*r.Pairwise)
	}
}

// PrintBaselines writes the transform-baseline comparison rows.
func PrintBaselines(w io.Writer, rows []BaselineRow) {
	fmt.Fprintf(w, "Transform baselines vs stable sketches (accuracy in %%)\n")
	fmt.Fprintf(w, "%-8s %-6s %-10s %-10s %-10s\n", "method", "p", "cumul", "avg", "pairwise")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-6.4g %-10.1f %-10.1f %-10.1f\n",
			r.Estimator, r.P, 100*r.Cumulative, 100*r.Average, 100*r.Pairwise)
	}
}

// PrintAlgos writes the cross-algorithm comparison rows.
func PrintAlgos(w io.Writer, cfg AlgosConfig, rows []AlgoRow) {
	fmt.Fprintf(w, "Mining algorithms over one set of L%.4g sketches (planted six-region data)\n", cfg.P)
	fmt.Fprintf(w, "%-24s %-10s %-10s\n", "algorithm", "accuracy", "time")
	for _, r := range rows {
		fmt.Fprintf(w, "%-24s %-10.1f %-10s\n", r.Algorithm, 100*r.Accuracy, fmtDur(r.Time))
	}
}
