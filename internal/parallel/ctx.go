package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// Cancellation and panic isolation for the worker-fan-out primitives.
//
// Every primitive in this file honors two contracts on top of the
// package's determinism contract:
//
//   - Cancellation: workers poll ctx.Err() between blocks (and ForCtx
//     between items), so a cancelled context stops the fan-out promptly.
//     A cancelled call returns ctx.Err(); because callers own disjoint
//     output slots, they simply discard the partially-filled state and
//     publish nothing. A call that completes without observing
//     cancellation is byte-identical to its context-free counterpart at
//     any worker count — the checks never alter the computation.
//
//   - Panic isolation: a panic inside fn is recovered on the worker
//     goroutine, wrapped in a *PanicError carrying the panic value and
//     the worker's stack, and returned as an error — instead of the
//     unrecoverable process crash a bare goroutine panic causes. When
//     several workers panic, the lowest block's panic is reported so the
//     outcome does not depend on scheduling. A panic always wins over
//     cancellation: a bug must never masquerade as a clean cancel.

// PanicError wraps a panic recovered from a worker goroutine.
type PanicError struct {
	Value any    // the value passed to panic
	Stack []byte // the panicking worker's stack at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", e.Value, e.Stack)
}

// BlocksCtx is Blocks with cooperative cancellation and panic isolation:
// the context is checked before each block starts, a recovered worker
// panic is returned as a *PanicError, and a cancelled run returns
// ctx.Err(). A nil ctx means context.Background(). The block structure
// (NumBlocks) and the ownership discipline are exactly those of Blocks.
func BlocksCtx(ctx context.Context, workers, n int, fn func(lo, hi, block int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		err := runBlock(ctx, 0, n, 0, fn)
		return resolveErrs(ctx, err)
	}
	size, rem := n/workers, n%workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	lo := 0
	for b := 0; b < workers; b++ {
		hi := lo + size
		if b < rem {
			hi++
		}
		wg.Add(1)
		go func(lo, hi, b int) {
			defer wg.Done()
			errs[b] = runBlock(ctx, lo, hi, b, fn)
		}(lo, hi, b)
		lo = hi
	}
	wg.Wait()
	return resolveErrs(ctx, errs...)
}

// runBlock executes one block with a cancellation pre-check and panic
// recovery.
func runBlock(ctx context.Context, lo, hi, block int, fn func(lo, hi, block int)) (err error) {
	if err := ctx.Err(); err != nil {
		return err
	}
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	fn(lo, hi, block)
	return nil
}

// resolveErrs reduces per-block outcomes deterministically: the first
// (lowest-block) panic wins, then cancellation, then success.
func resolveErrs(ctx context.Context, errs ...error) error {
	for _, err := range errs {
		var pe *PanicError
		if errors.As(err, &pe) {
			return err
		}
	}
	return ctx.Err()
}

// ForCtx invokes fn(i) for every i in [0, n) like For, additionally
// checking the context before each item; it is meant for coarse-grained
// items (an FFT correlation pair, a plane-set build, a D² scan block)
// where a per-item check gives prompt cancellation at negligible cost.
// For fine-grained loops use BlocksCtx and check inside the block at a
// granularity of the caller's choosing.
func ForCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return BlocksCtx(ctx, workers, n, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
	})
}

// SumCtx is Sum with cancellation and panic isolation. The fixed
// sumBlock reduction structure is untouched, so a run that completes
// returns the exact bits Sum would at any worker count.
func SumCtx(ctx context.Context, workers, n int, fn func(i int) float64) (float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return 0, ctx.Err()
	}
	nb := (n + sumBlock - 1) / sumBlock
	partial := make([]float64, nb)
	err := BlocksCtx(ctx, workers, nb, func(blo, bhi, _ int) {
		for b := blo; b < bhi; b++ {
			if ctx.Err() != nil {
				return
			}
			lo, hi := b*sumBlock, (b+1)*sumBlock
			if hi > n {
				hi = n
			}
			var s float64
			for i := lo; i < hi; i++ {
				s += fn(i)
			}
			partial[b] = s
		}
	})
	if err != nil {
		return 0, err
	}
	var total float64
	for _, s := range partial {
		total += s
	}
	return total, nil
}

// CountCtx is Count with cancellation and panic isolation, polling the
// context between counting blocks of sumBlock items.
func CountCtx(ctx context.Context, workers, n int, pred func(i int) bool) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return 0, ctx.Err()
	}
	nb := (n + sumBlock - 1) / sumBlock
	partial := make([]int, nb)
	err := BlocksCtx(ctx, workers, nb, func(blo, bhi, _ int) {
		for b := blo; b < bhi; b++ {
			if ctx.Err() != nil {
				return
			}
			lo, hi := b*sumBlock, (b+1)*sumBlock
			if hi > n {
				hi = n
			}
			c := 0
			for i := lo; i < hi; i++ {
				if pred(i) {
					c++
				}
			}
			partial[b] = c
		}
	})
	if err != nil {
		return 0, err
	}
	total := 0
	for _, c := range partial {
		total += c
	}
	return total, nil
}
