package parallel

import (
	"math"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(3); got != 3 {
		t.Errorf("Resolve(3) = %d", got)
	}
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-5); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-5) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
}

func TestBlocksCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 63, 64, 65, 1000} {
			hits := make([]int32, n)
			Blocks(workers, n, func(lo, hi, block int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: bad block [%d,%d)", workers, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestBlocksBlockIndexesAreDense(t *testing.T) {
	const workers, n = 5, 23
	nb := NumBlocks(workers, n)
	seen := make([]int32, nb)
	Blocks(workers, n, func(lo, hi, block int) {
		if block < 0 || block >= nb {
			t.Errorf("block %d outside [0,%d)", block, nb)
			return
		}
		atomic.AddInt32(&seen[block], 1)
	})
	for b, c := range seen {
		if c != 1 {
			t.Errorf("block %d invoked %d times", b, c)
		}
	}
}

func TestForWritesDisjointSlots(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 2, 8} {
		out := make([]int, n)
		For(workers, n, func(i int) { out[i] = i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

// TestSumWorkerInvariance is the package's core promise: the FP sum is
// bit-identical at every worker count.
func TestSumWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for _, n := range []int{1, 100, sumBlock, sumBlock + 1, 3*sumBlock + 17} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.NormFloat64() * math.Exp(rng.Float64()*20-10)
		}
		ref := Sum(1, n, func(i int) float64 { return vals[i] })
		for _, workers := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
			got := Sum(workers, n, func(i int) float64 { return vals[i] })
			if math.Float64bits(got) != math.Float64bits(ref) {
				t.Errorf("n=%d workers=%d: Sum = %x, want %x (bit-exact)",
					n, workers, math.Float64bits(got), math.Float64bits(ref))
			}
		}
	}
}

func TestCount(t *testing.T) {
	const n = 10_000
	for _, workers := range []int{1, 2, 16} {
		got := Count(workers, n, func(i int) bool { return i%3 == 0 })
		want := (n + 2) / 3
		if got != want {
			t.Errorf("workers=%d: Count = %d, want %d", workers, got, want)
		}
	}
	if got := Count(4, 0, func(int) bool { return true }); got != 0 {
		t.Errorf("Count over empty range = %d", got)
	}
}
