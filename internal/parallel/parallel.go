// Package parallel provides the shared worker-fan-out primitives behind
// every concurrent hot path in this repository: sketch construction fans
// out over the k independent random matrices, pool construction over the
// dyadic plane sets, clustering over the point→centroid assignment, and
// the evaluation metrics over experiment pairs.
//
// # Determinism contract
//
// Every primitive here is designed so that the result of a computation is
// byte-identical at any worker count, which the determinism test suites
// assert for the hot paths:
//
//   - Blocks/For split [0, n) into contiguous index ranges and hand each
//     range to at most one invocation at a time. Callers write only to
//     slots owned by their own indices (disjoint pre-allocated slices), so
//     no result ever depends on goroutine scheduling.
//   - Sum reduces in fixed-size blocks whose partial sums are combined in
//     block order, so the floating-point result is independent of the
//     worker count (FP addition is not associative; a naive per-worker
//     reduction would drift with the split).
//
// Work items must not depend on each other; the primitives make no
// ordering promise between blocks, only that all complete before return.
//
// # Fault tolerance
//
// The Ctx variants (BlocksCtx, ForCtx, SumCtx, CountCtx) add cooperative
// cancellation — workers poll ctx.Err() between blocks — and panic
// isolation: a worker panic is recovered, wrapped with its stack in a
// *PanicError, and returned as an error instead of crashing the process.
// See ctx.go for the exact contracts. Resolve needs no context: it is a
// pure knob normalization.
package parallel

import (
	"context"
	"runtime"
)

// Resolve normalizes a Workers knob: any n ≥ 1 is returned unchanged and
// n ≤ 0 selects runtime.GOMAXPROCS(0), the convention every Workers field
// and -workers flag in this repository follows.
func Resolve(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Blocks partitions [0, n) into at most `workers` contiguous near-equal
// blocks and invokes fn(lo, hi, block) once per block, concurrently when
// workers > 1. Block 0 covers the lowest indices. workers ≤ 0 resolves to
// GOMAXPROCS; with workers == 1 (or n small enough for a single block) fn
// runs on the calling goroutine with no synchronization overhead.
//
// fn must confine its writes to state owned by indices in [lo, hi) (or to
// its own block slot); under that discipline the overall result is
// identical at any worker count.
//
// A panic inside fn is recovered on the worker goroutine and re-raised
// here as a *PanicError (carrying the original value and the worker's
// stack), so callers can recover it like any single-goroutine panic
// instead of the process dying to an unrecoverable goroutine panic. Use
// BlocksCtx to receive worker panics as errors and to support
// cancellation.
func Blocks(workers, n int, fn func(lo, hi, block int)) {
	if err := BlocksCtx(context.Background(), workers, n, fn); err != nil {
		// Background is never cancelled, so the only possible error is a
		// recovered worker panic.
		panic(err)
	}
}

// NumBlocks reports how many blocks Blocks will create for the given
// workers and n — the length callers should pre-allocate for per-block
// result slots.
func NumBlocks(workers, n int) int {
	if n <= 0 {
		return 0
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	return workers
}

// For invokes fn(i) for every i in [0, n), fanning out over at most
// `workers` goroutines with contiguous index blocks. The same ownership
// discipline as Blocks applies: fn must write only to slots of index i.
func For(workers, n int, fn func(i int)) {
	Blocks(workers, n, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// sumBlock is the fixed reduction granularity of Sum. It is a constant —
// never derived from the worker count — because the block structure is
// what makes the floating-point result worker-count-independent.
const sumBlock = 2048

// Sum returns Σ fn(i) for i in [0, n). Partial sums are computed over
// fixed-size index blocks (ascending order within a block) and combined
// in block order, so the result is bit-identical at any worker count.
// Note the result may differ in the last ulps from a plain serial loop —
// the guarantee is invariance across workers, not across algorithms.
func Sum(workers, n int, fn func(i int) float64) float64 {
	if n <= 0 {
		return 0
	}
	nb := (n + sumBlock - 1) / sumBlock
	partial := make([]float64, nb)
	Blocks(workers, nb, func(blo, bhi, _ int) {
		for b := blo; b < bhi; b++ {
			lo, hi := b*sumBlock, (b+1)*sumBlock
			if hi > n {
				hi = n
			}
			var s float64
			for i := lo; i < hi; i++ {
				s += fn(i)
			}
			partial[b] = s
		}
	})
	var total float64
	for _, s := range partial {
		total += s
	}
	return total
}

// Count returns the number of i in [0, n) for which pred(i) is true,
// fanning out over workers. Integer addition is associative, so the
// result is trivially worker-count-independent.
func Count(workers, n int, pred func(i int) bool) int {
	if n <= 0 {
		return 0
	}
	nb := NumBlocks(workers, n)
	partial := make([]int, nb)
	Blocks(workers, n, func(lo, hi, block int) {
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i) {
				c++
			}
		}
		partial[block] = c
	})
	total := 0
	for _, c := range partial {
		total += c
	}
	return total
}
