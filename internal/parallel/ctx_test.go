package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
)

func TestBlocksCtxNilAndBackground(t *testing.T) {
	out := make([]int, 100)
	if err := BlocksCtx(nil, 4, len(out), func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			out[i] = i
		}
	}); err != nil {
		t.Fatalf("BlocksCtx(nil ctx) = %v", err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestBlocksCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := BlocksCtx(ctx, 4, 100, func(lo, hi, _ int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("fn ran under a pre-cancelled context")
	}
}

func TestBlocksCtxCancelMidRun(t *testing.T) {
	// The countdown context cancels on a fixed Err() poll, so the
	// cancellation point is deterministic regardless of scheduling.
	for _, workers := range []int{1, 4} {
		ctx := faultinject.CancelAfterChecks(context.Background(), 3)
		var blocksRun atomic.Int64
		err := BlocksCtx(ctx, workers, 64, func(lo, hi, _ int) {
			blocksRun.Add(1)
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if n := blocksRun.Load(); n >= 64 {
			t.Fatalf("workers=%d: all %d blocks ran despite cancellation", workers, n)
		}
	}
}

func TestBlocksCtxPanicIsolation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := BlocksCtx(context.Background(), workers, 16, func(lo, hi, _ int) {
			if lo <= 7 && 7 < hi {
				panic("boom-7")
			}
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Value != "boom-7" {
			t.Fatalf("workers=%d: panic value = %v", workers, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
		if !strings.Contains(pe.Error(), "boom-7") {
			t.Fatalf("workers=%d: Error() = %q misses panic value", workers, pe.Error())
		}
	}
}

func TestBlocksCtxLowestBlockPanicWins(t *testing.T) {
	// All blocks panic; the reported value must come from block 0 so the
	// outcome never depends on scheduling.
	err := BlocksCtx(context.Background(), 8, 8, func(lo, hi, block int) {
		panic(block)
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != 0 {
		t.Fatalf("panic value = %v, want block 0's", pe.Value)
	}
}

func TestBlocksCtxPanicBeatsCancellation(t *testing.T) {
	// Three Err() polls: the entry pre-check passes, then of the two
	// blocks' pre-checks one passes (and panics) and one observes the
	// cancellation — so the per-block outcomes are exactly one panic and
	// one cancel, and the panic must be the one reported.
	ctx := faultinject.CancelAfterChecks(context.Background(), 3)
	err := BlocksCtx(ctx, 2, 2, func(lo, hi, _ int) {
		panic("bug")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v: a worker panic must not masquerade as a cancel", err)
	}
}

func TestBlocksRepanicsWorkerPanic(t *testing.T) {
	defer func() {
		r := recover()
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %v (%T), want *PanicError", r, r)
		}
		if pe.Value != "worker bug" {
			t.Fatalf("panic value = %v", pe.Value)
		}
	}()
	Blocks(4, 16, func(lo, hi, _ int) {
		if lo == 0 {
			panic("worker bug")
		}
	})
	t.Fatal("Blocks returned despite worker panic")
}

func TestForCtxCancelSkipsItems(t *testing.T) {
	ctx := faultinject.CancelAfterChecks(context.Background(), 5)
	var ran atomic.Int64
	err := ForCtx(ctx, 2, 1000, func(i int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n >= 1000 {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

func TestCtxVariantsMatchPlainResults(t *testing.T) {
	// A run that completes under a (never-cancelled) context must be
	// byte-identical to the context-free primitive at any worker count.
	n := 10_000
	fn := func(i int) float64 { return float64(i%97) * 1.25e-3 }
	pred := func(i int) bool { return i%7 == 0 }
	wantSum := Sum(1, n, fn)
	wantCount := Count(1, n, pred)
	for _, workers := range []int{1, 2, 3, 8} {
		got, err := SumCtx(context.Background(), workers, n, fn)
		if err != nil {
			t.Fatalf("SumCtx(workers=%d) = %v", workers, err)
		}
		if got != wantSum {
			t.Fatalf("SumCtx(workers=%d) = %v, Sum = %v", workers, got, wantSum)
		}
		c, err := CountCtx(context.Background(), workers, n, pred)
		if err != nil {
			t.Fatalf("CountCtx(workers=%d) = %v", workers, err)
		}
		if c != wantCount {
			t.Fatalf("CountCtx(workers=%d) = %d, Count = %d", workers, c, wantCount)
		}
	}
}

func TestSumCtxCancelled(t *testing.T) {
	ctx := faultinject.CancelAfterChecks(context.Background(), 2)
	_, err := SumCtx(ctx, 2, 100_000, func(i int) float64 { return 1 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestCountCtxCancelled(t *testing.T) {
	ctx := faultinject.CancelAfterChecks(context.Background(), 2)
	_, err := CountCtx(ctx, 2, 100_000, func(i int) bool { return true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestSumCtxPanic(t *testing.T) {
	boom := faultinject.PanicNth(500, "sum bug")
	_, err := SumCtx(context.Background(), 4, 10_000, func(i int) float64 {
		boom()
		return 1
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}
