package assign

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestMinCostTiny(t *testing.T) {
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	// Optimal: (0,1)=1, (1,0)=2, (2,2)=2 → 5.
	got, err := MinCost(cost)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignment = %v, want %v", got, want)
		}
	}
}

func TestMinCostIdentity(t *testing.T) {
	// Diagonal zeros, everything else positive: identity is optimal.
	n := 5
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i != j {
				cost[i][j] = 10
			}
		}
	}
	got, err := MinCost(cost)
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range got {
		if i != j {
			t.Fatalf("assignment %v not identity", got)
		}
	}
}

func TestMinCostSingle(t *testing.T) {
	got, err := MinCost([][]float64{{7}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Errorf("got %v", got)
	}
}

func TestMinCostErrors(t *testing.T) {
	if _, err := MinCost(nil); err == nil {
		t.Error("empty: expected error")
	}
	if _, err := MinCost([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged: expected error")
	}
	if _, err := MinCost([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN: expected error")
	}
}

func TestMinCostNegativeCosts(t *testing.T) {
	cost := [][]float64{
		{-5, 0},
		{0, -5},
	}
	got, err := MinCost(cost)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("assignment = %v, want identity", got)
	}
}

// bruteForceMin finds the optimal assignment by enumerating permutations.
func bruteForceMin(cost [][]float64) float64 {
	n := len(cost)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	best := math.Inf(1)
	var recurse func(k int)
	recurse = func(k int) {
		if k == n {
			var total float64
			for i, j := range perm {
				total += cost[i][j]
			}
			if total < best {
				best = total
			}
			return
		}
		for i := k; i < n; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			recurse(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	recurse(0)
	return best
}

func TestMinCostMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = math.Floor(rng.Float64()*100) - 20
			}
		}
		got, err := MinCost(cost)
		if err != nil {
			t.Fatal(err)
		}
		// Validate it is a permutation.
		seen := make([]bool, n)
		var total float64
		for i, j := range got {
			if j < 0 || j >= n || seen[j] {
				t.Fatalf("trial %d: invalid assignment %v", trial, got)
			}
			seen[j] = true
			total += cost[i][j]
		}
		if want := bruteForceMin(cost); math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d: Hungarian cost %v, brute force %v", trial, total, want)
		}
	}
}

func TestMaxProfit(t *testing.T) {
	profit := [][]float64{
		{1, 9},
		{9, 1},
	}
	got, err := MaxProfit(profit)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("assignment = %v, want [1 0]", got)
	}
	if p := Profit(profit, got); p != 18 {
		t.Errorf("Profit = %v, want 18", p)
	}
}

func TestMaxProfitRagged(t *testing.T) {
	if _, err := MaxProfit([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("expected error")
	}
}

func TestGreedyMaxProfitBasic(t *testing.T) {
	profit := [][]float64{
		{10, 0},
		{0, 10},
	}
	got, err := GreedyMaxProfit(profit)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("assignment = %v", got)
	}
}

func TestGreedyErrors(t *testing.T) {
	if _, err := GreedyMaxProfit(nil); err == nil {
		t.Error("empty: expected error")
	}
	if _, err := GreedyMaxProfit([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged: expected error")
	}
}

// Property: Hungarian profit >= greedy profit on random matrices, and the
// known greedy trap is handled optimally.
func TestHungarianBeatsOrMatchesGreedy(t *testing.T) {
	trap := [][]float64{
		{10, 9},
		{9, 0},
	}
	// Greedy takes (0,0)=10, forcing (1,1)=0 → 10. Optimal is 9+9=18.
	g, _ := GreedyMaxProfit(trap)
	h, _ := MaxProfit(trap)
	if Profit(trap, g) != 10 {
		t.Errorf("greedy trap profit = %v, want 10", Profit(trap, g))
	}
	if Profit(trap, h) != 18 {
		t.Errorf("hungarian trap profit = %v, want 18", Profit(trap, h))
	}

	rng := rand.New(rand.NewPCG(2, 2))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.IntN(7)
		profit := make([][]float64, n)
		for i := range profit {
			profit[i] = make([]float64, n)
			for j := range profit[i] {
				profit[i][j] = rng.Float64() * 100
			}
		}
		g, err := GreedyMaxProfit(profit)
		if err != nil {
			t.Fatal(err)
		}
		h, err := MaxProfit(profit)
		if err != nil {
			t.Fatal(err)
		}
		if Profit(profit, h) < Profit(profit, g)-1e-9 {
			t.Fatalf("trial %d: hungarian %v < greedy %v", trial, Profit(profit, h), Profit(profit, g))
		}
	}
}
