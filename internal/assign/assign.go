// Package assign solves the linear assignment problem with the Hungarian
// (Kuhn–Munkres) algorithm in O(n³).
//
// It is used to align cluster labels when comparing two clusterings: the
// confusion-matrix agreement of Definition 10 is only meaningful after the
// clusters of one clustering have been matched to the clusters of the
// other, and the optimal matching maximizes the diagonal mass of the
// confusion matrix. A cheaper greedy matcher is included as a baseline
// (tests confirm Hungarian never does worse).
package assign

import (
	"fmt"
	"math"
)

// MinCost solves min-cost perfect assignment on an n×n cost matrix given
// as rows; result[i] = j means row i is assigned to column j. The matrix
// must be square and free of NaNs.
func MinCost(cost [][]float64) ([]int, error) {
	n := len(cost)
	if n == 0 {
		return nil, fmt.Errorf("assign: empty cost matrix")
	}
	for i, row := range cost {
		if len(row) != n {
			return nil, fmt.Errorf("assign: row %d has %d entries, want %d", i, len(row), n)
		}
		for j, v := range row {
			if math.IsNaN(v) {
				return nil, fmt.Errorf("assign: NaN cost at (%d,%d)", i, j)
			}
		}
	}
	// Shortest-augmenting-path formulation of the Hungarian algorithm
	// (Jonker–Volgenant style) with dual potentials u, v. Index 0 is a
	// virtual root, so arrays are 1-based.
	const inf = math.MaxFloat64
	u := make([]float64, n+1)
	v := make([]float64, n+1)
	p := make([]int, n+1)   // p[j]: row assigned to column j (0 = none)
	way := make([]int, n+1) // way[j]: previous column on the augmenting path
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= n; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	result := make([]int, n)
	for j := 1; j <= n; j++ {
		if p[j] != 0 {
			result[p[j]-1] = j - 1
		}
	}
	return result, nil
}

// MaxProfit solves max-profit assignment by negating the profit matrix.
func MaxProfit(profit [][]float64) ([]int, error) {
	n := len(profit)
	cost := make([][]float64, n)
	for i, row := range profit {
		if len(row) != n {
			return nil, fmt.Errorf("assign: row %d has %d entries, want %d", i, len(row), n)
		}
		cost[i] = make([]float64, n)
		for j, v := range row {
			cost[i][j] = -v
		}
	}
	return MinCost(cost)
}

// GreedyMaxProfit assigns rows to columns by repeatedly taking the
// largest remaining profit entry. It is the naive baseline for cluster
// matching: fast, but can be arbitrarily worse than optimal.
func GreedyMaxProfit(profit [][]float64) ([]int, error) {
	n := len(profit)
	if n == 0 {
		return nil, fmt.Errorf("assign: empty profit matrix")
	}
	for i, row := range profit {
		if len(row) != n {
			return nil, fmt.Errorf("assign: row %d has %d entries, want %d", i, len(row), n)
		}
	}
	result := make([]int, n)
	for i := range result {
		result[i] = -1
	}
	usedCol := make([]bool, n)
	for step := 0; step < n; step++ {
		best := math.Inf(-1)
		bi, bj := -1, -1
		for i := 0; i < n; i++ {
			if result[i] != -1 {
				continue
			}
			for j := 0; j < n; j++ {
				if usedCol[j] {
					continue
				}
				if profit[i][j] > best {
					best = profit[i][j]
					bi, bj = i, j
				}
			}
		}
		result[bi] = bj
		usedCol[bj] = true
	}
	return result, nil
}

// Profit sums the profit of an assignment.
func Profit(profit [][]float64, assignment []int) float64 {
	var total float64
	for i, j := range assignment {
		total += profit[i][j]
	}
	return total
}
