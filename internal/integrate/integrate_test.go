package integrate

import (
	"math"
	"testing"
)

func TestAdaptiveClosedForms(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"constant", func(x float64) float64 { return 3 }, 0, 2, 6},
		{"linear", func(x float64) float64 { return x }, 0, 1, 0.5},
		{"quadratic", func(x float64) float64 { return x * x }, 0, 3, 9},
		{"sin over period", math.Sin, 0, 2 * math.Pi, 0},
		{"sin half period", math.Sin, 0, math.Pi, 2},
		{"exp", math.Exp, 0, 1, math.E - 1},
		{"1/(1+x^2)", func(x float64) float64 { return 1 / (1 + x*x) }, -1, 1, math.Pi / 2},
		{"gaussian bulk", func(x float64) float64 {
			return math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		}, -8, 8, 1},
		{"oscillatory", func(x float64) float64 { return math.Sin(20 * x) }, 0, 1, (1 - math.Cos(20)) / 20},
	}
	for _, c := range cases {
		got, err := Adaptive(c.f, c.a, c.b, 1e-11)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-8 {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestAdaptiveReversedBounds(t *testing.T) {
	got, err := Adaptive(func(x float64) float64 { return x }, 1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got+0.5) > 1e-10 {
		t.Errorf("reversed integral = %v, want -0.5", got)
	}
}

func TestAdaptiveDegenerate(t *testing.T) {
	got, err := Adaptive(math.Exp, 2, 2, 0)
	if err != nil || got != 0 {
		t.Errorf("zero-width integral = %v, %v", got, err)
	}
}

func TestAdaptiveErrors(t *testing.T) {
	if _, err := Adaptive(math.Exp, math.Inf(-1), 0, 0); err == nil {
		t.Error("infinite bound: expected error")
	}
	if _, err := Adaptive(math.Exp, math.NaN(), 1, 0); err == nil {
		t.Error("NaN bound: expected error")
	}
	if _, err := Adaptive(func(x float64) float64 { return 1 / x }, -1, 1, 0); err == nil {
		t.Error("singular integrand at midpoint: expected error")
	}
}

func TestAdaptiveDefaultTol(t *testing.T) {
	got, err := Adaptive(math.Cos, 0, 1, 0) // tol <= 0 uses default
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sin(1)) > 1e-9 {
		t.Errorf("got %v, want sin(1)", got)
	}
}

func TestBrentClosedForms(t *testing.T) {
	cases := []struct {
		name string
		f    func(float64) float64
		a, b float64
		want float64
	}{
		{"linear", func(x float64) float64 { return 2*x - 1 }, 0, 1, 0.5},
		{"sqrt2", func(x float64) float64 { return x*x - 2 }, 0, 2, math.Sqrt2},
		{"cubic", func(x float64) float64 { return x * x * x }, -1, 2, 0},
		{"cos", math.Cos, 0, 3, math.Pi / 2},
		{"exp shifted", func(x float64) float64 { return math.Exp(x) - 5 }, 0, 3, math.Log(5)},
		{"flat near root", func(x float64) float64 { return math.Pow(x-1, 3) }, 0, 2.5, 1},
	}
	for _, c := range cases {
		got, err := Brent(c.f, c.a, c.b, 1e-13)
		if err != nil {
			t.Errorf("%s: %v", c.name, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestBrentEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if got, err := Brent(f, 0, 1, 0); err != nil || got != 0 {
		t.Errorf("root at a: %v, %v", got, err)
	}
	if got, err := Brent(f, -1, 0, 0); err != nil || got != 0 {
		t.Errorf("root at b: %v, %v", got, err)
	}
}

func TestBrentErrors(t *testing.T) {
	if _, err := Brent(func(x float64) float64 { return 1 }, 0, 1, 0); err == nil {
		t.Error("no bracket: expected error")
	}
	if _, err := Brent(func(x float64) float64 { return math.NaN() }, 0, 1, 0); err == nil {
		t.Error("NaN f: expected error")
	}
}

func TestBrentTightTolerance(t *testing.T) {
	// The root of f(x) = x² - 3 to near machine precision.
	got, err := Brent(func(x float64) float64 { return x*x - 3 }, 1, 2, 1e-15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-math.Sqrt(3)) > 1e-12 {
		t.Errorf("got %v, want √3 = %v", got, math.Sqrt(3))
	}
}
