// Package integrate provides the numerical analysis primitives the stable
// distribution functions are built on: adaptive Simpson quadrature for
// one-dimensional integrals and Brent's method for root finding. Go's
// standard library has neither; the implementations here are small,
// allocation-free on the hot path, and tested against closed forms.
package integrate

import (
	"fmt"
	"math"
)

// DefaultTol is the default absolute error target for Adaptive.
const DefaultTol = 1e-10

// maxDepth bounds adaptive recursion; 2^50 subdivisions is far beyond any
// sane integrand and prevents runaway recursion on pathological inputs.
const maxDepth = 50

// Adaptive integrates f over [a, b] with adaptive Simpson quadrature to
// absolute tolerance tol (DefaultTol if tol <= 0). It errors on invalid
// bounds or non-finite integrand values at the initial evaluation points.
// a > b integrates with the conventional sign flip.
func Adaptive(f func(float64) float64, a, b, tol float64) (float64, error) {
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return 0, fmt.Errorf("integrate: non-finite bounds [%v, %v]", a, b)
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	sign := 1.0
	if a > b {
		a, b = b, a
		sign = -1
	}
	if a == b {
		return 0, nil
	}
	fa, fb := f(a), f(b)
	m := (a + b) / 2
	fm := f(m)
	if anyNonFinite(fa, fm, fb) {
		return 0, fmt.Errorf("integrate: non-finite integrand on [%v, %v]", a, b)
	}
	whole := simpson(a, b, fa, fm, fb)
	v := adaptive(f, a, b, fa, fm, fb, whole, tol, maxDepth)
	return sign * v, nil
}

func anyNonFinite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
	}
	return false
}

func simpson(a, b, fa, fm, fb float64) float64 {
	return (b - a) / 6 * (fa + 4*fm + fb)
}

func adaptive(f func(float64) float64, a, b, fa, fm, fb, whole, tol float64, depth int) float64 {
	m := (a + b) / 2
	lm, rm := (a+m)/2, (m+b)/2
	flm, frm := f(lm), f(rm)
	left := simpson(a, m, fa, flm, fm)
	right := simpson(m, b, fm, frm, fb)
	if depth <= 0 {
		return left + right
	}
	// Richardson error estimate for Simpson: |S2 - S1| / 15.
	if diff := left + right - whole; math.Abs(diff) <= 15*tol {
		return left + right + diff/15
	}
	half := tol / 2
	return adaptive(f, a, m, fa, flm, fm, left, half, depth-1) +
		adaptive(f, m, b, fm, frm, fb, right, half, depth-1)
}

// BrentTol is Brent's default x-tolerance.
const BrentTol = 1e-12

// maxBrentIter bounds Brent iterations (each at least bisects, so 200
// iterations resolve any double-precision bracket).
const maxBrentIter = 200

// Brent finds a root of f in [a, b] with Brent's method (inverse
// quadratic interpolation + secant + bisection). f(a) and f(b) must
// bracket a root (opposite signs, or one endpoint already a root).
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	if tol <= 0 {
		tol = BrentTol
	}
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if anyNonFinite(fa, fb) {
		return 0, fmt.Errorf("integrate: non-finite f at bracket [%v, %v]", a, b)
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("integrate: f(%v)=%v and f(%v)=%v do not bracket a root", a, fa, b, fb)
	}
	// Ensure |f(b)| <= |f(a)|: b is the best guess.
	if math.Abs(fa) < math.Abs(fb) {
		a, b, fa, fb = b, a, fb, fa
	}
	c, fc := a, fa
	mflag := true
	var d float64
	for i := 0; i < maxBrentIter; i++ {
		if fb == 0 || math.Abs(b-a) < tol {
			return b, nil
		}
		var s float64
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < tol) ||
			(!mflag && math.Abs(c-d) < tol)
		if cond {
			s = (a + b) / 2
			mflag = true
		} else {
			mflag = false
		}
		fs := f(s)
		if math.IsNaN(fs) {
			return 0, fmt.Errorf("integrate: f(%v) is NaN during Brent iteration", s)
		}
		d, c, fc = c, b, fb
		if (fa > 0) != (fs > 0) {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b, fa, fb = b, a, fb, fa
		}
	}
	return b, nil
}
