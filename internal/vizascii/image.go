package vizascii

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
)

// palette holds visually distinct cluster colors (largest cluster renders
// white like the paper's blank space); cycled when K exceeds its length.
var palette = []color.RGBA{
	{230, 25, 75, 255},   // red
	{60, 120, 216, 255},  // blue
	{60, 180, 75, 255},   // green
	{255, 165, 0, 255},   // orange
	{145, 30, 180, 255},  // purple
	{70, 200, 200, 255},  // teal
	{240, 50, 230, 255},  // magenta
	{128, 128, 0, 255},   // olive
	{0, 0, 128, 255},     // navy
	{170, 110, 40, 255},  // brown
	{128, 0, 0, 255},     // maroon
	{0, 128, 128, 255},   // dark teal
	{100, 100, 100, 255}, // gray
	{210, 180, 30, 255},  // mustard
	{255, 105, 180, 255}, // pink
	{34, 90, 34, 255},    // forest
}

// ColorFor returns the render color of cluster c given the blank cluster
// id (pass -1 for none).
func (m *Map) ColorFor(c, blank int) color.RGBA {
	if c == blank {
		return color.RGBA{255, 255, 255, 255}
	}
	idx := c
	if blank >= 0 && c > blank {
		idx--
	}
	return palette[idx%len(palette)]
}

// RenderPNG writes the cluster map as a PNG with cellSize×cellSize pixels
// per tile, optionally blanking the largest cluster, with a one-pixel
// grid line between tiles for readability when cellSize ≥ 4.
func (m *Map) RenderPNG(w io.Writer, cellSize int, blankLargest bool) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if cellSize < 1 {
		return fmt.Errorf("vizascii: cellSize %d", cellSize)
	}
	blank := -1
	if blankLargest {
		blank = m.LargestCluster()
	}
	img := image.NewRGBA(image.Rect(0, 0, m.GridCols*cellSize, m.GridRows*cellSize))
	gridLine := color.RGBA{235, 235, 235, 255}
	for r := 0; r < m.GridRows; r++ {
		for c := 0; c < m.GridCols; c++ {
			col := m.ColorFor(m.Assign[r*m.GridCols+c], blank)
			for y := 0; y < cellSize; y++ {
				for x := 0; x < cellSize; x++ {
					px := col
					if cellSize >= 4 && (y == cellSize-1 || x == cellSize-1) {
						px = gridLine
					}
					img.SetRGBA(c*cellSize+x, r*cellSize+y, px)
				}
			}
		}
	}
	return png.Encode(w, img)
}
