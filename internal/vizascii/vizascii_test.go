package vizascii

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	good := &Map{GridRows: 2, GridCols: 3, K: 2, Assign: []int{0, 1, 0, 1, 0, 1}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Map{
		{GridRows: 0, GridCols: 3, K: 2, Assign: nil},
		{GridRows: 2, GridCols: 3, K: 0, Assign: make([]int, 6)},
		{GridRows: 2, GridCols: 3, K: 2, Assign: make([]int, 5)},
		{GridRows: 1, GridCols: 1, K: 2, Assign: []int{5}},
		{GridRows: 1, GridCols: 1, K: 2, Assign: []int{-1}},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLargestCluster(t *testing.T) {
	m := &Map{GridRows: 1, GridCols: 5, K: 3, Assign: []int{1, 1, 1, 0, 2}}
	if got := m.LargestCluster(); got != 1 {
		t.Errorf("LargestCluster = %d, want 1", got)
	}
}

func TestRenderShape(t *testing.T) {
	m := &Map{GridRows: 2, GridCols: 4, K: 2, Assign: []int{0, 0, 1, 1, 1, 1, 0, 0}}
	out, err := m.Render(false)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, l := range lines {
		if len(l) != 4 {
			t.Fatalf("line %q has length %d, want 4", l, len(l))
		}
	}
	if lines[0][0] != lines[0][1] || lines[0][0] == lines[0][2] {
		t.Error("glyph assignment inconsistent")
	}
}

func TestRenderBlankLargest(t *testing.T) {
	m := &Map{GridRows: 1, GridCols: 4, K: 2, Assign: []int{0, 0, 0, 1}}
	out, err := m.Render(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "   ") {
		t.Errorf("largest cluster not blanked: %q", out)
	}
	if out[3] == ' ' {
		t.Error("minority cluster blanked")
	}
}

func TestGlyphsDistinctAcrossClusters(t *testing.T) {
	m := &Map{GridRows: 1, GridCols: 10, K: 10, Assign: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}}
	out, err := m.Render(false)
	if err != nil {
		t.Fatal(err)
	}
	row := strings.TrimRight(out, "\n")
	seen := map[byte]bool{}
	for i := 0; i < len(row); i++ {
		if seen[row[i]] {
			t.Fatalf("duplicate glyph %q in %q", row[i], row)
		}
		seen[row[i]] = true
	}
}

func TestGlyphForSkipsBlank(t *testing.T) {
	m := &Map{K: 3}
	if g := m.GlyphFor(1, 1); g != ' ' {
		t.Error("blank cluster should render as space")
	}
	// With cluster 0 blanked, clusters 1 and 2 shift down one palette slot.
	if m.GlyphFor(1, 0) != glyphs[0] || m.GlyphFor(2, 0) != glyphs[1] {
		t.Error("palette compaction after blank wrong")
	}
	if m.GlyphFor(0, -1) != glyphs[0] {
		t.Error("no-blank glyph wrong")
	}
}

func TestRenderWithHourAxis(t *testing.T) {
	assign := make([]int, 24)
	for i := range assign {
		assign[i] = i % 2
	}
	m := &Map{GridRows: 1, GridCols: 24, K: 2, Assign: assign}
	out, err := m.RenderWithHourAxis(1, false)
	if err != nil {
		t.Fatal(err)
	}
	// At one column per hour, labels widen to every 8 hours to avoid
	// overlap: 00:00, 08:00, 16:00.
	if !strings.Contains(out, "00:00") || !strings.Contains(out, "08:00") ||
		!strings.Contains(out, "16:00") {
		t.Errorf("hour ruler missing labels:\n%s", out)
	}
	if strings.Contains(out, "04:00") {
		t.Errorf("overlapping 04:00 label should have been dropped:\n%s", out)
	}
	if _, err := m.RenderWithHourAxis(0, false); err == nil {
		t.Error("hoursPerCol=0: expected error")
	}
}

func TestLegend(t *testing.T) {
	m := &Map{GridRows: 1, GridCols: 4, K: 2, Assign: []int{0, 0, 0, 1}}
	out, err := m.Legend(true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(blank)") {
		t.Errorf("legend missing blank marker:\n%s", out)
	}
	if !strings.Contains(out, "3 tiles") || !strings.Contains(out, "1 tiles") {
		t.Errorf("legend missing counts:\n%s", out)
	}
	bad := &Map{GridRows: 0}
	if _, err := bad.Legend(false); err == nil {
		t.Error("invalid map: expected error")
	}
}

func TestRenderInvalid(t *testing.T) {
	bad := &Map{GridRows: 0}
	if _, err := bad.Render(false); err == nil {
		t.Error("expected error")
	}
	if _, err := bad.RenderWithHourAxis(1, false); err == nil {
		t.Error("expected error")
	}
}
