// Package vizascii renders tile-grid clusterings as ASCII maps, the
// medium for reproducing the Figure 5 case study: each character cell is
// one tile, each cluster gets a distinct glyph, and (as in the paper) the
// largest cluster is rendered blank "since it effectively represents a low
// volume of calls, and it is only the higher call volumes that show
// interesting patterns".
package vizascii

import (
	"fmt"
	"strings"
)

// glyphs is the palette assigned to clusters in order of cluster id,
// skipping the blank reserved for the largest cluster. Darker-looking
// glyphs come first so dense clusters read as dark regions.
const glyphs = "#@%&8WMB*+=o:~-.^'`xXoOzZsSvVnNuUtTrRqQpPkKjJhHgGfFdDcCbBaA"

// Map is a clustering laid out on a tile grid: Assign[r*GridCols+c] is the
// cluster of the tile at grid position (r, c).
type Map struct {
	GridRows, GridCols int
	K                  int
	Assign             []int
}

// Validate checks internal consistency.
func (m *Map) Validate() error {
	if m.GridRows <= 0 || m.GridCols <= 0 {
		return fmt.Errorf("vizascii: non-positive grid %dx%d", m.GridRows, m.GridCols)
	}
	if m.K <= 0 {
		return fmt.Errorf("vizascii: k = %d", m.K)
	}
	if len(m.Assign) != m.GridRows*m.GridCols {
		return fmt.Errorf("vizascii: %d assignments for %dx%d grid",
			len(m.Assign), m.GridRows, m.GridCols)
	}
	for i, c := range m.Assign {
		if c < 0 || c >= m.K {
			return fmt.Errorf("vizascii: assignment %d at tile %d outside [0,%d)", c, i, m.K)
		}
	}
	return nil
}

// LargestCluster returns the id of the most populous cluster.
func (m *Map) LargestCluster() int {
	counts := make([]int, m.K)
	for _, c := range m.Assign {
		counts[c]++
	}
	best, bestN := 0, -1
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return best
}

// GlyphFor returns the character used for cluster c when blank is the
// blank cluster id (pass -1 for no blank cluster).
func (m *Map) GlyphFor(c, blank int) byte {
	if c == blank {
		return ' '
	}
	// Stable glyph assignment: cluster ids map to palette positions,
	// skipping over the blank cluster so palettes stay dense.
	idx := c
	if blank >= 0 && c > blank {
		idx--
	}
	return glyphs[idx%len(glyphs)]
}

// Render produces the ASCII map, one text row per grid row. When
// blankLargest is set the most populous cluster renders as spaces.
func (m *Map) Render(blankLargest bool) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	blank := -1
	if blankLargest {
		blank = m.LargestCluster()
	}
	var b strings.Builder
	b.Grow((m.GridCols + 1) * m.GridRows)
	for r := 0; r < m.GridRows; r++ {
		for c := 0; c < m.GridCols; c++ {
			b.WriteByte(m.GlyphFor(m.Assign[r*m.GridCols+c], blank))
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// RenderWithHourAxis renders the map with an hour ruler along the top,
// for grids whose columns are time slots. hoursPerCol is the time span of
// one column (e.g. 1.0 when tiles are an hour wide, the paper's layout).
// Labels are placed every four hours.
func (m *Map) RenderWithHourAxis(hoursPerCol float64, blankLargest bool) (string, error) {
	if hoursPerCol <= 0 {
		return "", fmt.Errorf("vizascii: hoursPerCol = %v", hoursPerCol)
	}
	body, err := m.Render(blankLargest)
	if err != nil {
		return "", err
	}
	ruler := make([]byte, m.GridCols)
	for i := range ruler {
		ruler[i] = ' '
	}
	// Labels every 4 hours, widened to the smallest multiple of 4 whose
	// column span fits a "HH:00" label plus a gap without overlap.
	const labelWidth = 6 // len("HH:00") + 1 gap
	interval := 4.0
	for interval/hoursPerCol < labelWidth {
		interval += 4
	}
	var labels strings.Builder
	for col := 0; col < m.GridCols; col++ {
		hour := float64(col) * hoursPerCol
		if remainderNear(hour, interval) {
			label := fmt.Sprintf("%02d:00", int(hour)%24)
			if col+len(label) <= m.GridCols {
				copy(ruler[col:], label)
			}
		}
	}
	labels.Write(ruler)
	labels.WriteByte('\n')
	labels.WriteString(body)
	return labels.String(), nil
}

func remainderNear(x, mod float64) bool {
	r := x - mod*float64(int(x/mod))
	return r < 1e-9
}

// Legend lists each cluster's glyph and population, largest first blanked.
func (m *Map) Legend(blankLargest bool) (string, error) {
	if err := m.Validate(); err != nil {
		return "", err
	}
	blank := -1
	if blankLargest {
		blank = m.LargestCluster()
	}
	counts := make([]int, m.K)
	for _, c := range m.Assign {
		counts[c]++
	}
	var b strings.Builder
	for c := 0; c < m.K; c++ {
		g := m.GlyphFor(c, blank)
		name := string(g)
		if g == ' ' {
			name = "(blank)"
		}
		fmt.Fprintf(&b, "cluster %2d %-7s %5d tiles\n", c, name, counts[c])
	}
	return b.String(), nil
}
