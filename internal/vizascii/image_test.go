package vizascii

import (
	"bytes"
	"image/png"
	"testing"
)

func TestRenderPNG(t *testing.T) {
	m := &Map{GridRows: 2, GridCols: 3, K: 3, Assign: []int{0, 1, 2, 2, 1, 0}}
	var buf bytes.Buffer
	if err := m.RenderPNG(&buf, 8, true); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 24 || b.Dy() != 16 {
		t.Errorf("image %dx%d, want 24x16", b.Dx(), b.Dy())
	}
}

func TestRenderPNGColors(t *testing.T) {
	m := &Map{GridRows: 1, GridCols: 2, K: 2, Assign: []int{0, 1}}
	var buf bytes.Buffer
	if err := m.RenderPNG(&buf, 2, false); err != nil { // cellSize<4: no grid lines
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r0, g0, b0, _ := img.At(0, 0).RGBA()
	r1, g1, b1, _ := img.At(2, 0).RGBA()
	if r0 == r1 && g0 == g1 && b0 == b1 {
		t.Error("different clusters rendered identically")
	}
}

func TestRenderPNGBlanksLargestAsWhite(t *testing.T) {
	m := &Map{GridRows: 1, GridCols: 3, K: 2, Assign: []int{0, 0, 1}}
	var buf bytes.Buffer
	if err := m.RenderPNG(&buf, 1, true); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r, g, b, _ := img.At(0, 0).RGBA()
	if r != 0xffff || g != 0xffff || b != 0xffff {
		t.Errorf("largest cluster pixel not white: %v %v %v", r, g, b)
	}
}

func TestRenderPNGErrors(t *testing.T) {
	bad := &Map{GridRows: 0}
	var buf bytes.Buffer
	if err := bad.RenderPNG(&buf, 4, false); err == nil {
		t.Error("invalid map: expected error")
	}
	good := &Map{GridRows: 1, GridCols: 1, K: 1, Assign: []int{0}}
	if err := good.RenderPNG(&buf, 0, false); err == nil {
		t.Error("cellSize 0: expected error")
	}
}

func TestColorForCompaction(t *testing.T) {
	m := &Map{K: 3}
	white := m.ColorFor(1, 1)
	if white.R != 255 || white.G != 255 || white.B != 255 {
		t.Error("blank cluster should be white")
	}
	if m.ColorFor(0, 1) != palette[0] {
		t.Error("cluster below blank keeps its slot")
	}
	if m.ColorFor(2, 1) != palette[1] {
		t.Error("cluster above blank compacts down")
	}
	// Cycling beyond the palette.
	big := &Map{K: 40}
	if big.ColorFor(20, -1) != palette[20%len(palette)] {
		t.Error("palette cycling wrong")
	}
}
