package core

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/table"
)

func TestPlaneSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	tb := randTable(rng, 16, 20)
	sk, err := NewSketcher(1.5, 8, 4, 4, 99, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	ps := sk.AllPositions(tb)

	var buf bytes.Buffer
	if err := SavePlaneSet(&buf, ps); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlaneSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gr, gc := got.Positions()
	wr, wc := ps.Positions()
	if gr != wr || gc != wc {
		t.Fatalf("positions %dx%d, want %dx%d", gr, gc, wr, wc)
	}
	// Sketches and distances must be identical.
	for _, anchor := range [][2]int{{0, 0}, {5, 9}, {12, 16}} {
		a := ps.SketchAt(anchor[0], anchor[1], nil)
		b := got.SketchAt(anchor[0], anchor[1], nil)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("sketch at %v differs at %d", anchor, i)
			}
		}
	}
	if d1, d2 := ps.Distance(0, 0, 5, 5), got.Distance(0, 0, 5, 5); d1 != d2 {
		t.Errorf("distances differ: %v vs %v", d1, d2)
	}
	// The rebuilt sketcher is interchangeable: same matrices.
	for i := 0; i < 8; i++ {
		ma, mb := ps.Sketcher().Matrix(i), got.Sketcher().Matrix(i)
		for j := range ma {
			if ma[j] != mb[j] {
				t.Fatalf("rebuilt matrix %d differs", i)
			}
		}
	}
}

func TestLoadPlaneSetErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE0000000000000000"),
		"truncated": {'S', 'K', 'P', 'L', 1},
	}
	for name, data := range cases {
		if _, err := LoadPlaneSet(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Version mismatch.
	rng := rand.New(rand.NewPCG(2, 2))
	tb := randTable(rng, 8, 8)
	sk, _ := NewSketcher(1, 2, 2, 2, 1, EstimatorAuto)
	ps := sk.AllPositions(tb)
	var buf bytes.Buffer
	if err := SavePlaneSet(&buf, ps); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 0xee
	if _, err := LoadPlaneSet(bytes.NewReader(data)); err == nil {
		t.Error("bad version: expected error")
	}
	// Truncated payload.
	buf.Reset()
	if err := SavePlaneSet(&buf, ps); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPlaneSet(bytes.NewReader(buf.Bytes()[:buf.Len()-9])); err == nil {
		t.Error("truncated payload: expected error")
	}
}

func TestPoolRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	tb := randTable(rng, 32, 32)
	pool, err := NewPool(tb, 1, 8, 777, PoolOptions{
		MinLogRows: 1, MaxLogRows: 3, MinLogCols: 2, MaxLogCols: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePool(&buf, pool); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPool(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.P() != 1 || got.K() != 8 || got.NumSizes() != pool.NumSizes() {
		t.Fatalf("pool params wrong: p=%v k=%d sizes=%d", got.P(), got.K(), got.NumSizes())
	}
	rects := []table.Rect{
		{R0: 0, C0: 0, Rows: 4, Cols: 8},    // exact dyadic
		{R0: 3, C0: 5, Rows: 7, Cols: 11},   // compound
		{R0: 10, C0: 2, Rows: 13, Cols: 30}, // compound, large
	}
	for _, r := range rects {
		a, err := pool.Sketch(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := got.Sketch(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rect %v sketch differs at %d: %v vs %v", r, i, a[i], b[i])
			}
		}
	}
	d1, err := pool.Distance(rects[1], table.Rect{R0: 20, C0: 14, Rows: 7, Cols: 11})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := got.Distance(rects[1], table.Rect{R0: 20, C0: 14, Rows: 7, Cols: 11})
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("pool distances differ: %v vs %v", d1, d2)
	}
}

func TestLoadPoolErrors(t *testing.T) {
	if _, err := LoadPool(bytes.NewReader(nil)); err == nil {
		t.Error("empty: expected error")
	}
	if _, err := LoadPool(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Error("bad magic: expected error")
	}
	rng := rand.New(rand.NewPCG(4, 4))
	tb := randTable(rng, 8, 8)
	pool, _ := NewPool(tb, 1, 2, 1, PoolOptions{
		MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2,
	})
	var buf bytes.Buffer
	if err := SavePool(&buf, pool); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	bad := append([]byte(nil), full...)
	bad[4] = 9 // version
	if _, err := LoadPool(bytes.NewReader(bad)); err == nil {
		t.Error("bad version: expected error")
	}
	if _, err := LoadPool(bytes.NewReader(full[:len(full)-20])); err == nil {
		t.Error("truncated: expected error")
	}
	// Corrupt header (k = 0).
	bad2 := append([]byte(nil), full...)
	for i := 16; i < 24; i++ {
		bad2[i] = 0
	}
	if _, err := LoadPool(bytes.NewReader(bad2)); err == nil {
		t.Error("zero k: expected error")
	}
}
