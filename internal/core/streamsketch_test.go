package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/lpnorm"
)

func TestNewHashSketcherValidation(t *testing.T) {
	if _, err := NewHashSketcher(1, 0, 8, 1, EstimatorAuto); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := NewHashSketcher(1, 4, 0, 1, EstimatorAuto); err == nil {
		t.Error("dim=0: expected error")
	}
	if _, err := NewHashSketcher(5, 4, 8, 1, EstimatorAuto); err == nil {
		t.Error("bad p: expected error")
	}
	if _, err := NewHashSketcher(1, 4, 8, 1, EstimatorL2); err == nil {
		t.Error("L2 estimator with p=1: expected error")
	}
	h, err := NewHashSketcher(1.5, 4, 8, 1, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	if h.P() != 1.5 || h.K() != 4 || h.Dim() != 8 {
		t.Error("accessors wrong")
	}
}

func TestHashEntryDeterministic(t *testing.T) {
	a, _ := NewHashSketcher(1, 8, 100, 42, EstimatorAuto)
	b, _ := NewHashSketcher(1, 8, 100, 42, EstimatorAuto)
	for i := 0; i < 8; i++ {
		for pos := 0; pos < 100; pos += 13 {
			if a.Entry(i, pos) != b.Entry(i, pos) {
				t.Fatalf("Entry(%d,%d) differs across equal sketchers", i, pos)
			}
		}
	}
	c, _ := NewHashSketcher(1, 8, 100, 43, EstimatorAuto)
	same := 0
	for pos := 0; pos < 100; pos++ {
		if a.Entry(0, pos) == c.Entry(0, pos) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d entries identical across different seeds", same)
	}
}

func TestHashEntryVariety(t *testing.T) {
	h, _ := NewHashSketcher(1, 4, 1000, 7, EstimatorAuto)
	seen := map[float64]bool{}
	for pos := 0; pos < 1000; pos++ {
		seen[h.Entry(0, pos)] = true
	}
	if len(seen) < 995 {
		t.Errorf("only %d distinct entries of 1000", len(seen))
	}
}

func TestHashEntryPanics(t *testing.T) {
	h, _ := NewHashSketcher(1, 4, 8, 1, EstimatorAuto)
	assertPanics(t, "row", func() { h.Entry(4, 0) })
	assertPanics(t, "pos", func() { h.Entry(0, 8) })
	assertPanics(t, "neg", func() { h.Entry(-1, 0) })
}

func TestStreamMatchesDirectSketch(t *testing.T) {
	const dim = 64
	h, _ := NewHashSketcher(1, 16, dim, 11, EstimatorAuto)
	rng := rand.New(rand.NewPCG(1, 1))
	vec := make([]float64, dim)
	stream := h.NewStream()
	// Build the vector through a shuffled update stream, with some
	// positions updated repeatedly (turnstile semantics).
	for step := 0; step < 300; step++ {
		pos := rng.IntN(dim)
		delta := rng.NormFloat64() * 10
		vec[pos] += delta
		stream.Update(pos, delta)
	}
	if stream.Updates() != 300 {
		t.Errorf("Updates = %d", stream.Updates())
	}
	direct := h.Sketch(vec, nil)
	got := stream.Sketch()
	for i := range direct {
		if math.Abs(got[i]-direct[i]) > 1e-8*(1+math.Abs(direct[i])) {
			t.Fatalf("entry %d: stream %v vs direct %v", i, got[i], direct[i])
		}
	}
}

func TestStreamZeroDeltaIgnored(t *testing.T) {
	h, _ := NewHashSketcher(1, 4, 8, 1, EstimatorAuto)
	s := h.NewStream()
	s.Update(3, 0)
	if s.Updates() != 0 {
		t.Error("zero delta should not count as an update")
	}
}

func TestStreamDistanceAccuracy(t *testing.T) {
	const dim, k = 64, 401
	for _, p := range []float64{1, 2} {
		h, err := NewHashSketcher(p, k, dim, 13, EstimatorAuto)
		if err != nil {
			t.Fatal(err)
		}
		lp := lpnorm.MustP(p)
		rng := rand.New(rand.NewPCG(2, uint64(p)))
		a := make([]float64, dim)
		b := make([]float64, dim)
		sa := h.NewStream()
		sb := h.NewStream()
		for pos := range a {
			a[pos] = rng.NormFloat64() * 5
			b[pos] = rng.NormFloat64() * 5
			sa.Update(pos, a[pos])
			sb.Update(pos, b[pos])
		}
		exact := lp.Dist(a, b)
		est := sa.DistanceTo(sb)
		if rel := math.Abs(est-exact) / exact; rel > 0.3 {
			t.Errorf("p=%v: stream distance rel err %v (exact %v est %v)", p, rel, exact, est)
		}
		norm := sa.NormEstimate()
		exactNorm := lp.Norm(a)
		if rel := math.Abs(norm-exactNorm) / exactNorm; rel > 0.3 {
			t.Errorf("p=%v: stream norm rel err %v", p, rel)
		}
	}
}

func TestStreamDistanceIncomparablePanics(t *testing.T) {
	h1, _ := NewHashSketcher(1, 4, 8, 1, EstimatorAuto)
	h2, _ := NewHashSketcher(1, 4, 8, 1, EstimatorAuto)
	s1 := h1.NewStream()
	s2 := h2.NewStream()
	assertPanics(t, "cross-sketcher", func() { s1.DistanceTo(s2) })
}

func TestHashSketchPanicsWrongLengths(t *testing.T) {
	h, _ := NewHashSketcher(1, 4, 8, 1, EstimatorAuto)
	assertPanics(t, "vec len", func() { h.Sketch(make([]float64, 7), nil) })
	assertPanics(t, "sketch len", func() { h.Distance(make([]float64, 4), make([]float64, 3)) })
}

func TestHashSketcherSparseVectorSkipsZeros(t *testing.T) {
	// Sparse verification path: zero entries contribute nothing, so a
	// sparse vector's sketch equals the stream of its nonzeros.
	const dim = 128
	h, _ := NewHashSketcher(2, 8, dim, 5, EstimatorAuto)
	vec := make([]float64, dim)
	vec[3], vec[77], vec[100] = 4, -2, 9
	s := h.NewStream()
	s.Update(3, 4)
	s.Update(77, -2)
	s.Update(100, 9)
	direct := h.Sketch(vec, nil)
	for i := range direct {
		if math.Abs(direct[i]-s.Sketch()[i]) > 1e-10 {
			t.Fatalf("sparse mismatch at %d", i)
		}
	}
}
