package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/table"
)

func bandedTestTable(rows, cols int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	tb := table.New(rows, cols)
	d := tb.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return tb
}

func bandedTestOpts(workers int) PoolOptions {
	return PoolOptions{MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2,
		PanelCols: 4, Workers: workers}
}

// sealFromPool builds SealedBand views [0, sealedTo) in chunk-column
// slices whose payloads are copied out of src — the in-core stand-in
// for segment-file mappings.
func sealFromPool(t *testing.T, src *Pool, sealedTo, chunk int) []SealedBand {
	t.Helper()
	var bands []SealedBand
	for c0 := 0; c0 < sealedTo; c0 += chunk {
		c1 := c0 + chunk
		if c1 > sealedTo {
			c1 = sealedTo
		}
		payload := make(map[LaneID][]float64)
		for _, id := range src.Lanes() {
			data, err := src.CopyLaneBand(id, c0, c1, nil)
			if err != nil {
				t.Fatalf("CopyLaneBand %+v [%d,%d): %v", id, c0, c1, err)
			}
			payload[id] = data
		}
		bands = append(bands, SealedBand{C0: c0, C1: c1,
			Lane: func(id LaneID) []float64 { return payload[id] }})
	}
	return bands
}

// assertLanesIdentical compares every lane byte-for-byte via
// CopyLaneBand — a stronger check than sketch comparison because it
// covers all precomputed planes, not just queried rectangles.
func assertLanesIdentical(t *testing.T, want, got *Pool, label string) {
	t.Helper()
	var wbuf, gbuf []float64
	for _, id := range want.Lanes() {
		rows := want.LaneRows(id)
		_, cols := want.TableDims()
		planeCols := cols - 1<<id.J + 1
		var err error
		wbuf, err = want.CopyLaneBand(id, 0, planeCols, wbuf)
		if err != nil {
			t.Fatalf("%s: want lane %+v: %v", label, id, err)
		}
		gbuf, err = got.CopyLaneBand(id, 0, planeCols, gbuf)
		if err != nil {
			t.Fatalf("%s: got lane %+v: %v", label, id, err)
		}
		for i := range wbuf {
			if math.Float64bits(wbuf[i]) != math.Float64bits(gbuf[i]) {
				t.Fatalf("%s: lane %+v (%d rows) differs at float %d: %v != %v",
					label, id, rows, i, gbuf[i], wbuf[i])
			}
		}
	}
}

// TestBandedPoolMatchesHeapPool pins the central mmap-serving contract:
// a banded pool whose sealed prefix was adopted from externally stored
// bands is byte-identical to a from-scratch heap pool, at every worker
// count.
func TestBandedPoolMatchesHeapPool(t *testing.T) {
	tb := bandedTestTable(8, 20, 1)
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		opts := bandedTestOpts(workers)
		heap, err := NewPool(tb, 2, 6, 99, opts)
		if err != nil {
			t.Fatalf("workers=%d: NewPool: %v", workers, err)
		}
		if heap.Banded() || heap.SealedCols() != 0 {
			t.Fatalf("workers=%d: heap pool claims banded", workers)
		}
		// All-fringe banded pool: same build path, band bookkeeping only.
		allFringe, err := NewBandedPool(tb, 2, 6, 99, opts, nil)
		if err != nil {
			t.Fatalf("workers=%d: NewBandedPool(nil): %v", workers, err)
		}
		assertLanesIdentical(t, heap, allFringe, "all-fringe")

		// Sealed banded pool: adopt [0, 12) in 4-column bands, rebuild the
		// fringe from the table.
		if sa := heap.SegAlign(); sa != 4 {
			t.Fatalf("workers=%d: SegAlign %d, want 4", workers, sa)
		}
		sealed := sealFromPool(t, heap, 12, 4)
		banded, err := NewBandedPool(tb, 2, 6, 99, opts, sealed)
		if err != nil {
			t.Fatalf("workers=%d: NewBandedPool: %v", workers, err)
		}
		if !banded.Banded() || banded.SealedCols() != 12 {
			t.Fatalf("workers=%d: sealed=%d banded=%v", workers, banded.SealedCols(), banded.Banded())
		}
		assertLanesIdentical(t, heap, banded, "sealed-banded")
	}
}

// TestBandedAppendMatchesHeap grows a sealed banded pool by appended
// columns and checks byte identity against a from-scratch heap build
// over the wider table; sealed bands must be shared, not copied.
func TestBandedAppendMatchesHeap(t *testing.T) {
	full := bandedTestTable(8, 26, 2)
	narrow := full.Sub(table.Rect{R0: 0, C0: 0, Rows: 8, Cols: 20})
	opts := bandedTestOpts(2)

	heapNarrow, err := NewPool(narrow, 2, 6, 7, opts)
	if err != nil {
		t.Fatalf("NewPool narrow: %v", err)
	}
	sealed := sealFromPool(t, heapNarrow, 16, 8)
	banded, err := NewBandedPool(narrow, 2, 6, 7, opts, sealed)
	if err != nil {
		t.Fatalf("NewBandedPool: %v", err)
	}
	grown, err := banded.Append(nil, full)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if grown.SealedCols() != 16 || !grown.Banded() {
		t.Fatalf("append moved sealed cols: %d", grown.SealedCols())
	}
	heapFull, err := NewPool(full, 2, 6, 7, opts)
	if err != nil {
		t.Fatalf("NewPool full: %v", err)
	}
	assertLanesIdentical(t, heapFull, grown, "banded-append")
}

// TestRebandPreservesBytes converts a heap panel pool to banded form
// (the first-seal transition) and re-expresses a banded pool over a
// coarser band partition (the post-compaction transition); neither may
// change a byte.
func TestRebandPreservesBytes(t *testing.T) {
	tb := bandedTestTable(8, 20, 3)
	opts := bandedTestOpts(0)
	heap, err := NewPool(tb, 2, 6, 13, opts)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}

	firstSeal, err := heap.Reband(sealFromPool(t, heap, 8, 4))
	if err != nil {
		t.Fatalf("Reband heap→banded: %v", err)
	}
	if !firstSeal.Banded() || firstSeal.SealedCols() != 8 {
		t.Fatalf("first seal: banded=%v sealed=%d", firstSeal.Banded(), firstSeal.SealedCols())
	}
	assertLanesIdentical(t, heap, firstSeal, "first-seal")

	// Seal further and coarsen: one 16-column band replaces 4-column ones.
	merged, err := firstSeal.Reband(sealFromPool(t, heap, 16, 16))
	if err != nil {
		t.Fatalf("Reband coarser: %v", err)
	}
	if merged.SealedCols() != 16 {
		t.Fatalf("merged sealed=%d", merged.SealedCols())
	}
	assertLanesIdentical(t, heap, merged, "coarse-reband")

	// Unsealing is refused.
	if _, err := merged.Reband(sealFromPool(t, heap, 8, 8)); err == nil {
		t.Fatal("Reband accepted a shrinking sealed prefix")
	}
}

// TestTrimSealedMatchesFreshSuffixBuild trims a banded pool at a
// segment boundary and compares against a from-scratch heap pool over
// the suffix table — valid because an aligned trim leaves the absolute
// panel grid of surviving columns unchanged.
func TestTrimSealedMatchesFreshSuffixBuild(t *testing.T) {
	tb := bandedTestTable(8, 24, 4)
	opts := bandedTestOpts(2)
	heap, err := NewPool(tb, 2, 6, 21, opts)
	if err != nil {
		t.Fatalf("NewPool: %v", err)
	}
	banded, err := NewBandedPool(tb, 2, 6, 21, opts, sealFromPool(t, heap, 20, 4))
	if err != nil {
		t.Fatalf("NewBandedPool: %v", err)
	}

	const drop = 8
	trimmed, err := banded.TrimSealed(drop)
	if err != nil {
		t.Fatalf("TrimSealed: %v", err)
	}
	if trimmed.BaseCol() != drop || trimmed.SealedCols() != 20-drop {
		t.Fatalf("trimmed base=%d sealed=%d", trimmed.BaseCol(), trimmed.SealedCols())
	}
	suffix := tb.Sub(table.Rect{R0: 0, C0: drop, Rows: 8, Cols: 24 - drop})
	sOpts := opts
	sOpts.BaseCol = drop
	fresh, err := NewPool(suffix, 2, 6, 21, sOpts)
	if err != nil {
		t.Fatalf("NewPool suffix: %v", err)
	}
	assertLanesIdentical(t, fresh, trimmed, "trim-vs-fresh-suffix")

	// Misaligned and band-splitting trims are refused.
	if _, err := banded.TrimSealed(6); err == nil {
		t.Fatal("TrimSealed accepted a misaligned drop")
	}
	if _, err := banded.TrimSealed(0); err == nil {
		t.Fatal("TrimSealed accepted a zero drop")
	}
	// The trimmed pool still appends correctly: extend the suffix table
	// and compare against a fresh build over the wider suffix.
	wide := bandedTestTable(8, 30, 4)
	wider := table.New(8, 20)
	for r := 0; r < 8; r++ {
		copy(wider.Row(r)[:16], suffix.Row(r))
		copy(wider.Row(r)[16:], wide.Row(r)[:4])
	}
	grown, err := trimmed.Append(nil, wider)
	if err != nil {
		t.Fatalf("Append after trim: %v", err)
	}
	freshWide, err := NewPool(wider, 2, 6, 21, sOpts)
	if err != nil {
		t.Fatalf("NewPool wider suffix: %v", err)
	}
	assertLanesIdentical(t, freshWide, grown, "append-after-trim")
}

// TestBandedPersistRefused pins that banded pools refuse SavePool —
// they persist through the segment store.
func TestBandedPersistRefused(t *testing.T) {
	tb := bandedTestTable(8, 20, 5)
	opts := bandedTestOpts(1)
	pl, err := NewBandedPool(tb, 2, 6, 3, opts, nil)
	if err != nil {
		t.Fatalf("NewBandedPool: %v", err)
	}
	if err := SavePool(discardWriter{}, pl); err == nil {
		t.Fatal("SavePool accepted a banded pool")
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
