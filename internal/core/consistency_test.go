package core

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/table"
)

// TestAllPathsAgreeOnExactDyadicRect pins the implementation unification:
// for an exactly dyadic rectangle, the direct Sketcher, the PlaneSet, the
// Cache, and the Pool must produce numerically identical sketches when
// seeded identically (they share one definition of the random matrices).
func TestAllPathsAgreeOnExactDyadicRect(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	tb := randTable(rng, 16, 16)
	rect := table.Rect{R0: 3, C0: 5, Rows: 4, Cols: 8}
	const p, k = 1.0, 8

	seed := poolSketcherSeed(777, 2, 3, 0)
	sk, err := NewSketcher(p, k, 4, 8, seed, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}

	direct := sk.Sketch(tb.Linearize(rect, nil), nil)

	planes := sk.AllPositions(tb)
	fromPlanes := planes.SketchAt(rect.R0, rect.C0, nil)

	cache := NewCache(tb, sk)
	fromCache := cache.SketchOf(rect)

	pool, err := NewPool(tb, p, k, 777, PoolOptions{
		MinLogRows: 2, MaxLogRows: 2, MinLogCols: 3, MaxLogCols: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fromPool, err := pool.Sketch(rect, nil)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < k; i++ {
		if direct[i] != fromCache[i] {
			t.Errorf("entry %d: cache %v != direct %v", i, fromCache[i], direct[i])
		}
		// FFT-computed planes round differently; allow float noise only.
		if math.Abs(direct[i]-fromPlanes[i]) > 1e-6*(1+math.Abs(direct[i])) {
			t.Errorf("entry %d: planes %v != direct %v", i, fromPlanes[i], direct[i])
		}
		if fromPool[i] != fromPlanes[i] {
			t.Errorf("entry %d: pool %v != planes %v", i, fromPool[i], fromPlanes[i])
		}
	}
}

// Property (testing/quick): sketches are additive — s(x) + s(y) = s(x+y)
// exactly (dot products are linear), for arbitrary input vectors.
func TestQuickSketchAdditivity(t *testing.T) {
	sk, err := NewSketcher(0.7, 5, 2, 3, 9, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw [6]float64, raw2 [6]float64) bool {
		x := raw[:]
		y := raw2[:]
		for i := range x {
			if !finite(x[i]) || !finite(y[i]) {
				return true
			}
			// Bound magnitudes so exact float equality of the two
			// evaluation orders is plausible (associativity differences
			// stay below the comparison threshold).
			x[i] = math.Mod(x[i], 1e6)
			y[i] = math.Mod(y[i], 1e6)
		}
		sum := make([]float64, 6)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		sx := sk.Sketch(x, nil)
		sy := sk.Sketch(y, nil)
		ss := sk.Sketch(sum, nil)
		for i := range ss {
			if math.Abs(ss[i]-(sx[i]+sy[i])) > 1e-6*(1+math.Abs(ss[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the distance estimate is symmetric and zero on identical
// sketches for arbitrary sketch vectors.
func TestQuickDistanceSymmetry(t *testing.T) {
	for _, est := range []Estimator{EstimatorMedian, EstimatorL2} {
		p := 1.0
		if est == EstimatorL2 {
			p = 2.0
		}
		sk, err := NewSketcher(p, 7, 2, 2, 11, est)
		if err != nil {
			t.Fatal(err)
		}
		f := func(a, b [7]float64) bool {
			for i := range a {
				if !finite(a[i]) || !finite(b[i]) {
					return true
				}
			}
			d1 := sk.Distance(a[:], b[:])
			d2 := sk.Distance(b[:], a[:])
			if d1 != d2 {
				return false
			}
			if sk.Distance(a[:], a[:]) != 0 {
				return false
			}
			return d1 >= 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("estimator %v: %v", est, err)
		}
	}
}

// Property: stream updates commute — any permutation of the same update
// multiset yields the same sketch (floating-point noise aside).
func TestQuickStreamCommutativity(t *testing.T) {
	h, err := NewHashSketcher(1, 5, 16, 13, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	f := func(posRaw [6]uint8, deltas [6]float64, swap uint8) bool {
		type upd struct {
			pos   int
			delta float64
		}
		ups := make([]upd, 6)
		for i := range ups {
			if !finite(deltas[i]) {
				return true
			}
			ups[i] = upd{int(posRaw[i]) % 16, math.Mod(deltas[i], 1e6)}
		}
		s1 := h.NewStream()
		for _, u := range ups {
			s1.Update(u.pos, u.delta)
		}
		// Apply in rotated order.
		rot := int(swap) % 6
		s2 := h.NewStream()
		for i := range ups {
			u := ups[(i+rot)%6]
			s2.Update(u.pos, u.delta)
		}
		a, b := s1.Sketch(), s2.Sketch()
		for i := range a {
			if math.Abs(a[i]-b[i]) > 1e-6*(1+math.Abs(a[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
