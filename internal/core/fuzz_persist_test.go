package core

import (
	"bytes"
	"math/rand/v2"
	"testing"
)

// The fuzz targets assert the loader hardening contract: arbitrary bytes
// — truncations, bit flips, hostile headers — must produce an error,
// never a panic and never an allocation proportional to a corrupt
// header's claims. maxSnapshotFloats is lowered so a fuzzer that does
// find an unbounded-allocation path OOMs the worker visibly instead of
// thrashing.

func lowerSnapshotCap(f *testing.F) {
	old := maxSnapshotFloats
	maxSnapshotFloats = 1 << 20
	f.Cleanup(func() { maxSnapshotFloats = old })
}

func fuzzPlaneSetSeed(f *testing.F) []byte {
	rng := rand.New(rand.NewPCG(40, 40))
	tb := randTable(rng, 10, 10)
	sk, err := NewSketcher(1, 2, 2, 2, 7, EstimatorAuto)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePlaneSet(&buf, sk.AllPositions(tb)); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzLoadPlaneSet(f *testing.F) {
	lowerSnapshotCap(f)
	valid := fuzzPlaneSetSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte("SKPL"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := LoadPlaneSet(bytes.NewReader(data))
		if err == nil && ps == nil {
			t.Fatal("nil plane set without error")
		}
	})
}

func fuzzPoolSeed(f *testing.F) []byte {
	rng := rand.New(rand.NewPCG(41, 41))
	tb := randTable(rng, 8, 8)
	pool, err := NewPool(tb, 1, 2, 7, PoolOptions{
		MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePool(&buf, pool); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

func FuzzLoadPool(f *testing.F) {
	lowerSnapshotCap(f)
	valid := fuzzPoolSeed(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:9])
	f.Add([]byte("SKPO"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		pl, err := LoadPool(bytes.NewReader(data))
		if err == nil && pl == nil {
			t.Fatal("nil pool without error")
		}
	})
}
