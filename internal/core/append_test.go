package core

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"runtime"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/fft"
	"repro/internal/table"
)

// prefixTable returns the left cols-wide prefix of t as its own table —
// the "before the append" view whose bytes the appended view extends.
func prefixTable(t *testing.T, tb *table.Table, cols int) *table.Table {
	t.Helper()
	data := make([]float64, tb.Rows()*cols)
	for r := 0; r < tb.Rows(); r++ {
		copy(data[r*cols:(r+1)*cols], tb.Row(r)[:cols])
	}
	out, err := table.FromData(tb.Rows(), cols, data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func requirePoolsBytewiseEqual(t *testing.T, want, got *Pool, label string) {
	t.Helper()
	if len(want.entries) != len(got.entries) {
		t.Fatalf("%s: entry counts %d vs %d", label, len(want.entries), len(got.entries))
	}
	for key, sets := range want.entries {
		gsets := got.entries[key]
		for s := range sets {
			w, g := sets[s], gsets[s]
			if w.rows != g.rows || w.cols != g.cols {
				t.Fatalf("%s: size %v set %d dims %dx%d vs %dx%d",
					label, key, s, w.rows, w.cols, g.rows, g.cols)
			}
			for i := range w.data {
				if math.Float64bits(w.data[i]) != math.Float64bits(g.data[i]) {
					t.Fatalf("%s: size %v set %d lane byte mismatch at %d: %v vs %v",
						label, key, s, i, w.data[i], g.data[i])
				}
			}
		}
	}
}

// The tentpole determinism property: appending 1..7 random-width column
// batches produces plane-set lanes byte-identical to a from-scratch
// panel build over the final table — at every worker count.
func TestAppendByteIdenticalToFromScratch(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 41))
	const rows, startCols, maxCols = 16, 20, 80
	full := randTable(rng, rows, maxCols)
	opts := PoolOptions{
		MinLogRows: 1, MaxLogRows: 3, MinLogCols: 1, MaxLogCols: 4,
		PanelCols: 8,
	}
	for trial := 0; trial < 3; trial++ {
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			o := opts
			o.Workers = workers
			cols := startCols
			pool, err := NewPool(prefixTable(t, full, cols), 1, 6, 7, o)
			if err != nil {
				t.Fatal(err)
			}
			batches := 1 + rng.IntN(7)
			for b := 0; b < batches && cols < maxCols; b++ {
				cols = min(maxCols, cols+1+rng.IntN(16))
				pool, err = pool.Append(context.Background(), prefixTable(t, full, cols))
				if err != nil {
					t.Fatal(err)
				}
			}
			fresh, err := NewPool(prefixTable(t, full, cols), 1, 6, 7, o)
			if err != nil {
				t.Fatal(err)
			}
			requirePoolsBytewiseEqual(t, fresh, pool, "appended vs from-scratch")
			if pool.HighWaterCols() != cols {
				t.Fatalf("HighWaterCols = %d, want %d", pool.HighWaterCols(), cols)
			}
		}
	}
}

// The acceptance criterion: a 1-column append on a ≥256-column table
// must run at least 5× fewer FFT correlations than a full NewPool,
// measured through the fft counting hook.
func TestAppendCorrelationSavings(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 42))
	const rows, cols = 8, 257
	full := randTable(rng, rows, cols)
	opts := PoolOptions{
		MinLogRows: 1, MaxLogRows: 3, MinLogCols: 1, MaxLogCols: 8,
		PanelCols: 16,
	}
	pool, err := NewPool(prefixTable(t, full, cols-1), 1, 4, 5, opts)
	if err != nil {
		t.Fatal(err)
	}

	before := fft.CorrelationCount()
	if _, err := NewPool(full, 1, 4, 5, opts); err != nil {
		t.Fatal(err)
	}
	fullCorr := fft.CorrelationCount() - before

	before = fft.CorrelationCount()
	if _, err := pool.Append(context.Background(), full); err != nil {
		t.Fatal(err)
	}
	incrCorr := fft.CorrelationCount() - before

	if incrCorr == 0 || fullCorr == 0 {
		t.Fatalf("correlation counts not captured: full=%d incr=%d", fullCorr, incrCorr)
	}
	if fullCorr < 5*incrCorr {
		t.Fatalf("1-column append ran %d correlations vs %d for a full build (%.1f×), want ≥5×",
			incrCorr, fullCorr, float64(fullCorr)/float64(incrCorr))
	}
	t.Logf("full build: %d correlations, 1-column append: %d (%.1f× fewer)",
		fullCorr, incrCorr, float64(fullCorr)/float64(incrCorr))
}

// Panel-mode pools answer the same queries as monolithic pools up to FFT
// rounding: the decomposition changes transform sizes, never the math.
func TestPanelPoolAgreesWithMonolithic(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 43))
	tb := randTable(rng, 16, 40)
	base := PoolOptions{MinLogRows: 1, MaxLogRows: 3, MinLogCols: 1, MaxLogCols: 5}
	mono, err := NewPool(tb, 1, 8, 11, base)
	if err != nil {
		t.Fatal(err)
	}
	panelOpts := base
	panelOpts.PanelCols = 8
	panel, err := NewPool(tb, 1, 8, 11, panelOpts)
	if err != nil {
		t.Fatal(err)
	}
	for key, sets := range mono.entries {
		psets := panel.entries[key]
		for s := range sets {
			m, p := sets[s], psets[s]
			if m.rows != p.rows || m.cols != p.cols {
				t.Fatalf("size %v set %d dims differ", key, s)
			}
			for i := range m.data {
				diff := math.Abs(m.data[i] - p.data[i])
				scale := math.Max(1, math.Abs(m.data[i]))
				if diff > 1e-9*scale {
					t.Fatalf("size %v set %d diverges at %d: %v vs %v", key, s, i, m.data[i], p.data[i])
				}
			}
		}
	}
}

// A cancelled Append publishes nothing and returns the context error;
// the receiving pool stays fully usable (it is never mutated).
func TestAppendCancellation(t *testing.T) {
	rng := rand.New(rand.NewPCG(44, 44))
	const rows, cols = 16, 64
	full := randTable(rng, rows, cols)
	opts := PoolOptions{
		MinLogRows: 1, MaxLogRows: 3, MinLogCols: 1, MaxLogCols: 4,
		PanelCols: 4, Workers: 2,
	}
	pool, err := NewPool(prefixTable(t, full, 32), 1, 6, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make(map[[2]int][4][]float64)
	for key, sets := range pool.entries {
		var cp [4][]float64
		for s := range sets {
			cp[s] = append([]float64(nil), sets[s].data...)
		}
		snapshot[key] = cp
	}
	ctx := faultinject.CancelAfterChecks(context.Background(), 3)
	if _, err := pool.Append(ctx, full); !errors.Is(err, context.Canceled) {
		t.Fatalf("Append error = %v, want context.Canceled", err)
	}
	for key, sets := range pool.entries {
		for s := range sets {
			for i, v := range sets[s].data {
				if math.Float64bits(v) != math.Float64bits(snapshot[key][s][i]) {
					t.Fatalf("cancelled Append mutated the receiver at size %v set %d index %d", key, s, i)
				}
			}
		}
	}
	// The same append completes normally afterwards.
	np, err := pool.Append(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewPool(full, 1, 6, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	requirePoolsBytewiseEqual(t, fresh, np, "append after cancellation")
}

// A pool saved after an Append and reloaded keeps appending with
// byte-identical results — persistence must round-trip everything the
// incremental path depends on (seeds, panel width, payloads).
func TestAppendAfterSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(45, 45))
	const rows, cols = 16, 48
	full := randTable(rng, rows, cols)
	opts := PoolOptions{
		MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 3,
		PanelCols: 8,
	}
	pool, err := NewPool(prefixTable(t, full, 32), 1, 4, 17, opts)
	if err != nil {
		t.Fatal(err)
	}
	var err2 error
	pool, err2 = pool.Append(context.Background(), prefixTable(t, full, 40))
	if err2 != nil {
		t.Fatal(err2)
	}
	loaded := saveLoadPool(t, pool)
	a, err := pool.Append(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.Append(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	requirePoolsBytewiseEqual(t, a, b, "append after save/load")
}

func TestAppendValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(46, 46))
	tb := randTable(rng, 8, 16)
	mono, err := NewPool(tb, 1, 4, 1, PoolOptions{MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mono.Append(context.Background(), tb); err == nil {
		t.Fatal("Append on a monolithic pool must fail")
	}
	popts := PoolOptions{MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2, PanelCols: 4}
	panel, err := NewPool(tb, 1, 4, 1, popts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := panel.Append(context.Background(), randTable(rng, 9, 20)); err == nil {
		t.Fatal("Append with a different row count must fail")
	}
	if _, err := panel.Append(context.Background(), randTable(rng, 8, 12)); err == nil {
		t.Fatal("Append with fewer columns must fail")
	}
	same, err := panel.Append(context.Background(), tb)
	if err != nil {
		t.Fatal(err)
	}
	if same != panel {
		t.Fatal("zero-width append should return the receiver")
	}
	if _, err := NewPool(tb, 1, 4, 1, PoolOptions{
		MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2, PanelCols: -1,
	}); err == nil {
		t.Fatal("negative PanelCols must fail")
	}
}

func saveLoadPool(t *testing.T, pl *Pool) *Pool {
	t.Helper()
	var err error
	path := t.TempDir() + "/pool.skpo"
	if err = SavePoolFile(path, pl); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPoolFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return got
}
