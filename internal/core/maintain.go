package core

import (
	"fmt"

	"repro/internal/table"
)

// TileSketchSet maintains the sketches of every tile of a grid under
// point updates to the underlying table. Because the sketch map is linear
// (each entry is a dot product with a fixed random matrix), changing one
// cell by δ changes each sketch entry of the covering tile by
// δ·R[i][localPos] — an O(k) update, independent of tile size.
//
// This is the streaming side of the paper's setting: tabular data is
// "generated at the rate of several terabytes a month", and sketches must
// stay current as new readings arrive without re-reading whole tiles.
type TileSketchSet struct {
	sk       *Sketcher
	grid     *table.Grid
	t        *table.Table
	sketches [][]float64
	updates  int64
}

// NewTileSketchSet sketches every tile of t under g using sk (whose tile
// size must match the grid's) and returns the maintained set.
func NewTileSketchSet(t *table.Table, g *table.Grid, sk *Sketcher) (*TileSketchSet, error) {
	if g.TileRows() != sk.Rows() || g.TileCols() != sk.Cols() {
		return nil, fmt.Errorf("core: grid tiles %dx%d but sketcher built for %dx%d",
			g.TileRows(), g.TileCols(), sk.Rows(), sk.Cols())
	}
	set := &TileSketchSet{
		sk:       sk,
		grid:     g,
		t:        t,
		sketches: make([][]float64, g.NumTiles()),
	}
	buf := make([]float64, sk.Rows()*sk.Cols())
	for i := range set.sketches {
		buf = t.Linearize(g.Rect(i), buf)
		set.sketches[i] = sk.Sketch(buf, nil)
	}
	return set, nil
}

// Sketch returns the current sketch of tile i. The returned slice aliases
// internal state; callers must not modify it.
func (s *TileSketchSet) Sketch(i int) []float64 { return s.sketches[i] }

// NumTiles returns the number of maintained tiles.
func (s *TileSketchSet) NumTiles() int { return s.grid.NumTiles() }

// Updates returns how many point updates have been applied.
func (s *TileSketchSet) Updates() int64 { return s.updates }

// Set writes value into table cell (r, c) and incrementally updates the
// covering tile's sketch in O(k). Cells outside any full tile (the
// grid's dropped trailing remainder) update the table only.
func (s *TileSketchSet) Set(r, c int, value float64) {
	old := s.t.At(r, c)
	s.t.Set(r, c, value)
	s.updates++
	delta := value - old
	if delta == 0 {
		return
	}
	tr, tc := r/s.grid.TileRows(), c/s.grid.TileCols()
	if tr >= s.grid.GridRows() || tc >= s.grid.GridCols() {
		return // cell lies in the dropped partial-tile margin
	}
	tile := s.grid.Index(tr, tc)
	local := (r-tr*s.grid.TileRows())*s.grid.TileCols() + (c - tc*s.grid.TileCols())
	sketch := s.sketches[tile]
	for i := 0; i < s.sk.K(); i++ {
		sketch[i] += delta * s.sk.Matrix(i)[local]
	}
}

// Add adds delta to cell (r, c), updating the covering sketch.
func (s *TileSketchSet) Add(r, c int, delta float64) {
	s.Set(r, c, s.t.At(r, c)+delta)
}

// Distance estimates the Lp distance between tiles i and j from their
// maintained sketches.
func (s *TileSketchSet) Distance(i, j int) float64 {
	return s.sk.Distance(s.sketches[i], s.sketches[j])
}

// Resketch recomputes tile i's sketch from the table, discarding the
// incrementally maintained one — useful for bounding floating-point drift
// after very long update streams (tests show drift is negligible, but a
// long-lived service may want periodic refresh).
func (s *TileSketchSet) Resketch(i int) {
	buf := s.t.Linearize(s.grid.Rect(i), nil)
	s.sketches[i] = s.sk.Sketch(buf, s.sketches[i])
}
