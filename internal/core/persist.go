package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Persistence for precomputed sketches. The paper's fastest scenario
// assumes "sketches have been precomputed"; for that to survive process
// restarts (the preprocessing is the expensive step) pools and plane sets
// serialize to a compact binary format. Random matrices are NOT stored —
// they regenerate deterministically from the recorded (p, k, dims, seed,
// estimator) parameters — so a saved pool is just parameters plus the
// correlation payloads.

var (
	planeMagic = [4]byte{'S', 'K', 'P', 'L'}
	poolMagic  = [4]byte{'S', 'K', 'P', 'O'}
)

const persistVersion = 1

type leWriter struct {
	w   *bufio.Writer
	err error
}

func (lw *leWriter) u32(v uint32) {
	if lw.err == nil {
		lw.err = binary.Write(lw.w, binary.LittleEndian, v)
	}
}

func (lw *leWriter) u64(v uint64) {
	if lw.err == nil {
		lw.err = binary.Write(lw.w, binary.LittleEndian, v)
	}
}

func (lw *leWriter) f64(v float64) { lw.u64(math.Float64bits(v)) }

func (lw *leWriter) floats(vs []float64) {
	if lw.err != nil {
		return
	}
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := lw.w.Write(buf[:]); err != nil {
			lw.err = err
			return
		}
	}
}

type leReader struct {
	r   *bufio.Reader
	err error
}

func (lr *leReader) u32() uint32 {
	var v uint32
	if lr.err == nil {
		lr.err = binary.Read(lr.r, binary.LittleEndian, &v)
	}
	return v
}

func (lr *leReader) u64() uint64 {
	var v uint64
	if lr.err == nil {
		lr.err = binary.Read(lr.r, binary.LittleEndian, &v)
	}
	return v
}

func (lr *leReader) f64() float64 { return math.Float64frombits(lr.u64()) }

func (lr *leReader) floats(dst []float64) {
	if lr.err != nil {
		return
	}
	var buf [8]byte
	for i := range dst {
		if _, err := io.ReadFull(lr.r, buf[:]); err != nil {
			lr.err = err
			return
		}
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
}

// sketcherParams serializes what is needed to rebuild a Sketcher.
func writeSketcherParams(lw *leWriter, sk *Sketcher) {
	lw.f64(sk.p)
	lw.u64(uint64(sk.k))
	lw.u64(uint64(sk.rows))
	lw.u64(uint64(sk.cols))
	lw.u64(sk.seed)
	lw.u32(uint32(sk.estimator))
}

func readSketcher(lr *leReader) (*Sketcher, error) {
	p := lr.f64()
	k := int(lr.u64())
	rows := int(lr.u64())
	cols := int(lr.u64())
	seed := lr.u64()
	est := Estimator(lr.u32())
	if lr.err != nil {
		return nil, lr.err
	}
	if k <= 0 || k > 1<<24 || rows <= 0 || cols <= 0 || rows > 1<<24 || cols > 1<<24 {
		return nil, fmt.Errorf("core: implausible sketcher params k=%d dims=%dx%d", k, rows, cols)
	}
	return NewSketcher(p, k, rows, cols, seed, est)
}

// SavePlaneSet writes ps (parameters + position-major payload).
func SavePlaneSet(w io.Writer, ps *PlaneSet) error {
	bw := bufio.NewWriter(w)
	lw := &leWriter{w: bw}
	if _, err := bw.Write(planeMagic[:]); err != nil {
		return fmt.Errorf("core: writing plane set: %w", err)
	}
	lw.u32(persistVersion)
	writeSketcherParams(lw, ps.sk)
	lw.u64(uint64(ps.rows))
	lw.u64(uint64(ps.cols))
	lw.floats(ps.data)
	if lw.err != nil {
		return fmt.Errorf("core: writing plane set: %w", lw.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: writing plane set: %w", err)
	}
	return nil
}

// LoadPlaneSet reads a plane set saved by SavePlaneSet, regenerating its
// Sketcher from the stored parameters.
func LoadPlaneSet(r io.Reader) (*PlaneSet, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading plane set: %w", err)
	}
	if magic != planeMagic {
		return nil, fmt.Errorf("core: bad plane-set magic %q", magic[:])
	}
	lr := &leReader{r: br}
	if v := lr.u32(); lr.err == nil && v != persistVersion {
		return nil, fmt.Errorf("core: unsupported plane-set version %d", v)
	}
	sk, err := readSketcher(lr)
	if err != nil {
		return nil, fmt.Errorf("core: reading plane set: %w", err)
	}
	rows := int(lr.u64())
	cols := int(lr.u64())
	if lr.err != nil {
		return nil, fmt.Errorf("core: reading plane set: %w", lr.err)
	}
	if rows <= 0 || cols <= 0 || rows > 1<<24 || cols > 1<<24 {
		return nil, fmt.Errorf("core: implausible plane-set dims %dx%d", rows, cols)
	}
	ps := &PlaneSet{sk: sk, rows: rows, cols: cols, data: make([]float64, rows*cols*sk.k)}
	lr.floats(ps.data)
	if lr.err != nil {
		return nil, fmt.Errorf("core: reading plane set payload: %w", lr.err)
	}
	return ps, nil
}

// SavePool writes a pool (parameters + every plane set payload). Sizes
// are written in sorted key order so output is deterministic.
func SavePool(w io.Writer, pl *Pool) error {
	bw := bufio.NewWriter(w)
	lw := &leWriter{w: bw}
	if _, err := bw.Write(poolMagic[:]); err != nil {
		return fmt.Errorf("core: writing pool: %w", err)
	}
	lw.u32(persistVersion)
	lw.f64(pl.p)
	lw.u64(uint64(pl.k))
	lw.u64(uint64(pl.rows))
	lw.u64(uint64(pl.cols))
	lw.u64(pl.seed)
	lw.u32(uint32(pl.opts.MinLogRows))
	lw.u32(uint32(pl.opts.MaxLogRows))
	lw.u32(uint32(pl.opts.MinLogCols))
	lw.u32(uint32(pl.opts.MaxLogCols))
	lw.u32(uint32(pl.opts.Estimator))
	keys := make([][2]int, 0, len(pl.entries))
	for key := range pl.entries {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, key := range keys {
		for _, ps := range pl.entries[key] {
			lw.floats(ps.data)
		}
	}
	if lw.err != nil {
		return fmt.Errorf("core: writing pool: %w", lw.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: writing pool: %w", err)
	}
	return nil
}

// LoadPool reads a pool saved by SavePool, rebuilding each Sketcher from
// the recorded seed derivation and restoring the correlation payloads
// without recomputation.
func LoadPool(r io.Reader) (*Pool, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading pool: %w", err)
	}
	if magic != poolMagic {
		return nil, fmt.Errorf("core: bad pool magic %q", magic[:])
	}
	lr := &leReader{r: br}
	if v := lr.u32(); lr.err == nil && v != persistVersion {
		return nil, fmt.Errorf("core: unsupported pool version %d", v)
	}
	pl := &Pool{entries: make(map[[2]int][compoundSets]*PlaneSet)}
	pl.p = lr.f64()
	pl.k = int(lr.u64())
	pl.rows = int(lr.u64())
	pl.cols = int(lr.u64())
	pl.seed = lr.u64()
	pl.opts.MinLogRows = int(lr.u32())
	pl.opts.MaxLogRows = int(lr.u32())
	pl.opts.MinLogCols = int(lr.u32())
	pl.opts.MaxLogCols = int(lr.u32())
	pl.opts.Estimator = Estimator(lr.u32())
	if lr.err != nil {
		return nil, fmt.Errorf("core: reading pool header: %w", lr.err)
	}
	if pl.k <= 0 || pl.k > 1<<24 || pl.rows <= 0 || pl.cols <= 0 ||
		pl.rows > 1<<24 || pl.cols > 1<<24 ||
		pl.opts.MinLogRows < 0 || pl.opts.MinLogRows > pl.opts.MaxLogRows ||
		pl.opts.MinLogCols < 0 || pl.opts.MinLogCols > pl.opts.MaxLogCols ||
		1<<pl.opts.MaxLogRows > pl.rows || 1<<pl.opts.MaxLogCols > pl.cols {
		return nil, fmt.Errorf("core: implausible pool header %+v (%dx%d, k=%d)",
			pl.opts, pl.rows, pl.cols, pl.k)
	}
	for i := pl.opts.MinLogRows; i <= pl.opts.MaxLogRows; i++ {
		for j := pl.opts.MinLogCols; j <= pl.opts.MaxLogCols; j++ {
			var sets [compoundSets]*PlaneSet
			for s := 0; s < compoundSets; s++ {
				sk, err := NewSketcher(pl.p, pl.k, 1<<i, 1<<j,
					poolSketcherSeed(pl.seed, i, j, s), pl.opts.Estimator)
				if err != nil {
					return nil, fmt.Errorf("core: rebuilding pool sketcher: %w", err)
				}
				ps := &PlaneSet{
					sk:   sk,
					rows: pl.rows - 1<<i + 1,
					cols: pl.cols - 1<<j + 1,
				}
				ps.data = make([]float64, ps.rows*ps.cols*pl.k)
				lr.floats(ps.data)
				if lr.err != nil {
					return nil, fmt.Errorf("core: reading pool payload: %w", lr.err)
				}
				sets[s] = ps
			}
			pl.entries[[2]int{i, j}] = sets
		}
	}
	return pl, nil
}
