package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/atomicio"
)

// Persistence for precomputed sketches. The paper's fastest scenario
// assumes "sketches have been precomputed"; for that to survive process
// restarts (the preprocessing is the expensive step) pools and plane sets
// serialize to a compact binary format. Random matrices are NOT stored —
// they regenerate deterministically from the recorded (p, k, dims, seed,
// estimator) parameters — so a saved pool is just parameters plus the
// correlation payloads.
//
// # Format v3 (current)
//
// A snapshot is a 4-byte magic, a little-endian u32 version, and a
// sequence of framed sections. Each section is
//
//	u64 payload length | payload bytes | u32 CRC32C(payload)
//
// so truncation and bit-rot are detected at load time instead of
// silently corrupting every subsequent distance estimate — the sketch
// state is a long-lived summary assumed durable across sessions. The
// sections are: one header (parameters) and one float payload per plane
// set. Version 3 extends the pool header with the panel width and the
// high-water base column (streaming-ingest metadata; see
// Pool.HighWaterCols) — the plane-set layout is unchanged from v2.
// Version 2 (framed, no ingest metadata) and version 1 (unframed, no
// checksums) files still load, with PanelCols and BaseCol zero.

var (
	planeMagic = [4]byte{'S', 'K', 'P', 'L'}
	poolMagic  = [4]byte{'S', 'K', 'P', 'O'}
)

const (
	persistVersionV1 = 1
	persistVersionV2 = 2
	persistVersion   = 3
)

// ErrChecksum reports a corrupted v2 snapshot frame: a CRC32C mismatch
// or a section length that contradicts the snapshot's own parameters.
var ErrChecksum = errors.New("core: snapshot checksum mismatch")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxSnapshotFloats bounds any single float64 allocation made while
// loading a snapshot (payloads and regenerated random matrices), so a
// corrupt header cannot request an absurd or int-overflowing make. It is
// a variable only so fuzz tests can lower it; production code never
// mutates it.
var maxSnapshotFloats int64 = 1 << 31

// checkFloats validates that a rows×cols×k float payload (or matrix set)
// is positive, overflow-free, and within maxSnapshotFloats, returning
// the element count.
func checkFloats(rows, cols, k int) (int, error) {
	if rows <= 0 || cols <= 0 || k <= 0 {
		return 0, fmt.Errorf("core: implausible snapshot payload dims %dx%dx%d", rows, cols, k)
	}
	n := int64(rows) * int64(cols)
	if n > maxSnapshotFloats {
		return 0, fmt.Errorf("core: snapshot payload %dx%d exceeds %d floats", rows, cols, maxSnapshotFloats)
	}
	n *= int64(k)
	if n > maxSnapshotFloats {
		return 0, fmt.Errorf("core: snapshot payload %dx%dx%d exceeds %d floats", rows, cols, k, maxSnapshotFloats)
	}
	return int(n), nil
}

type leWriter struct {
	w   *bufio.Writer
	err error
}

func (lw *leWriter) u32(v uint32) {
	if lw.err == nil {
		lw.err = binary.Write(lw.w, binary.LittleEndian, v)
	}
}

func (lw *leWriter) u64(v uint64) {
	if lw.err == nil {
		lw.err = binary.Write(lw.w, binary.LittleEndian, v)
	}
}

func (lw *leWriter) f64(v float64) { lw.u64(math.Float64bits(v)) }

// framedBytes writes one v2 section from an in-memory payload (headers).
func (lw *leWriter) framedBytes(payload []byte) {
	lw.u64(uint64(len(payload)))
	if lw.err == nil {
		if _, err := lw.w.Write(payload); err != nil {
			lw.err = err
			return
		}
	}
	lw.u32(crc32.Checksum(payload, crcTable))
}

// framedFloats streams one v2 float section, computing the CRC on the
// fly so large payloads are never buffered twice.
func (lw *leWriter) framedFloats(vs []float64) {
	lw.u64(uint64(len(vs)) * 8)
	if lw.err != nil {
		return
	}
	crc := crc32.New(crcTable)
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		crc.Write(buf[:])
		if _, err := lw.w.Write(buf[:]); err != nil {
			lw.err = err
			return
		}
	}
	lw.u32(crc.Sum32())
}

type leReader struct {
	r   *bufio.Reader
	err error
}

func (lr *leReader) u32() uint32 {
	var v uint32
	if lr.err == nil {
		lr.err = binary.Read(lr.r, binary.LittleEndian, &v)
	}
	return v
}

func (lr *leReader) u64() uint64 {
	var v uint64
	if lr.err == nil {
		lr.err = binary.Read(lr.r, binary.LittleEndian, &v)
	}
	return v
}

func (lr *leReader) f64() float64 { return math.Float64frombits(lr.u64()) }

// floatsN reads n little-endian float64s, allocating incrementally in
// chunks so a header claiming a huge payload fails at EOF having
// committed memory proportional to the bytes actually present, not to
// the claim. When crc is non-nil every byte read is fed to it.
func (lr *leReader) floatsN(n int, crc hash.Hash32) []float64 {
	if lr.err != nil {
		return nil
	}
	const chunkFloats = 1 << 15
	buf := make([]byte, 8*min(n, chunkFloats))
	out := make([]float64, 0, min(n, chunkFloats))
	for len(out) < n {
		m := min(n-len(out), chunkFloats)
		b := buf[:8*m]
		if _, err := io.ReadFull(lr.r, b); err != nil {
			lr.err = err
			return nil
		}
		if crc != nil {
			crc.Write(b)
		}
		for i := 0; i < m; i++ {
			out = append(out, math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:])))
		}
	}
	return out
}

// framedBytes reads one v2 section of at most maxLen bytes, verifying
// its CRC32C.
func (lr *leReader) framedBytes(maxLen int) []byte {
	n := lr.u64()
	if lr.err != nil {
		return nil
	}
	if n > uint64(maxLen) {
		lr.err = fmt.Errorf("core: header section of %d bytes exceeds %d: %w", n, maxLen, ErrChecksum)
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(lr.r, buf); err != nil {
		lr.err = err
		return nil
	}
	got := crc32.Checksum(buf, crcTable)
	want := lr.u32()
	if lr.err != nil {
		return nil
	}
	if got != want {
		lr.err = fmt.Errorf("core: header CRC32C %08x, stored %08x: %w", got, want, ErrChecksum)
		return nil
	}
	return buf
}

// framedFloats reads a v2 float section whose length must equal n floats,
// verifying its CRC32C.
func (lr *leReader) framedFloats(n int) []float64 {
	ln := lr.u64()
	if lr.err != nil {
		return nil
	}
	if ln != uint64(n)*8 {
		lr.err = fmt.Errorf("core: payload section of %d bytes, want %d: %w", ln, n*8, ErrChecksum)
		return nil
	}
	crc := crc32.New(crcTable)
	out := lr.floatsN(n, crc)
	if lr.err != nil {
		return nil
	}
	got := crc.Sum32()
	want := lr.u32()
	if lr.err != nil {
		return nil
	}
	if got != want {
		lr.err = fmt.Errorf("core: payload CRC32C %08x, stored %08x: %w", got, want, ErrChecksum)
		return nil
	}
	return out
}

// headerBytes renders a small header section through fn into memory.
func headerBytes(fn func(lw *leWriter)) ([]byte, error) {
	var b bytes.Buffer
	lw := &leWriter{w: bufio.NewWriter(&b)}
	fn(lw)
	if lw.err == nil {
		lw.err = lw.w.Flush()
	}
	if lw.err != nil {
		return nil, lw.err
	}
	return b.Bytes(), nil
}

// maxHeaderBytes bounds a v2 header section; real headers are tens of
// bytes, so anything larger is corruption.
const maxHeaderBytes = 4096

// sketcherParams serializes what is needed to rebuild a Sketcher.
func writeSketcherParams(lw *leWriter, sk *Sketcher) {
	lw.f64(sk.p)
	lw.u64(uint64(sk.k))
	lw.u64(uint64(sk.rows))
	lw.u64(uint64(sk.cols))
	lw.u64(sk.seed)
	lw.u32(uint32(sk.estimator))
}

func readSketcher(lr *leReader) (*Sketcher, error) {
	p := lr.f64()
	k := int(lr.u64())
	rows := int(lr.u64())
	cols := int(lr.u64())
	seed := lr.u64()
	est := Estimator(lr.u32())
	if lr.err != nil {
		return nil, lr.err
	}
	if k <= 0 || k > 1<<24 || rows <= 0 || cols <= 0 || rows > 1<<24 || cols > 1<<24 {
		return nil, fmt.Errorf("core: implausible sketcher params k=%d dims=%dx%d", k, rows, cols)
	}
	// Regenerating the random matrices allocates k·rows·cols floats;
	// bound the product (the individual caps above still admit an
	// int-overflowing or multi-GiB make from a corrupt header).
	if _, err := checkFloats(rows, cols, k); err != nil {
		return nil, err
	}
	return NewSketcher(p, k, rows, cols, seed, est)
}

// SavePlaneSet writes ps (parameters + position-major payload) in the
// checksummed v2 format.
func SavePlaneSet(w io.Writer, ps *PlaneSet) error {
	if ps.bands != nil {
		return errors.New("core: banded plane sets persist through the segment store, not SavePlaneSet")
	}
	bw := bufio.NewWriter(w)
	lw := &leWriter{w: bw}
	if _, err := bw.Write(planeMagic[:]); err != nil {
		return fmt.Errorf("core: writing plane set: %w", err)
	}
	lw.u32(persistVersion)
	hdr, err := headerBytes(func(hw *leWriter) {
		writeSketcherParams(hw, ps.sk)
		hw.u64(uint64(ps.rows))
		hw.u64(uint64(ps.cols))
	})
	if err != nil {
		return fmt.Errorf("core: writing plane set: %w", err)
	}
	lw.framedBytes(hdr)
	lw.framedFloats(ps.data)
	if lw.err != nil {
		return fmt.Errorf("core: writing plane set: %w", lw.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: writing plane set: %w", err)
	}
	return nil
}

// planeSetShell parses the plane-set header fields (shared by v1 and v2)
// and returns the empty PlaneSet plus its expected payload length.
func planeSetShell(lr *leReader) (*PlaneSet, int, error) {
	sk, err := readSketcher(lr)
	if err != nil {
		return nil, 0, fmt.Errorf("core: reading plane set: %w", err)
	}
	rows := int(lr.u64())
	cols := int(lr.u64())
	if lr.err != nil {
		return nil, 0, fmt.Errorf("core: reading plane set: %w", lr.err)
	}
	if rows <= 0 || cols <= 0 || rows > 1<<24 || cols > 1<<24 {
		return nil, 0, fmt.Errorf("core: implausible plane-set dims %dx%d", rows, cols)
	}
	n, err := checkFloats(rows, cols, sk.k)
	if err != nil {
		return nil, 0, err
	}
	return &PlaneSet{sk: sk, rows: rows, cols: cols}, n, nil
}

// LoadPlaneSet reads a plane set saved by SavePlaneSet (v2, checksummed)
// or by a v1 build of this package, regenerating its Sketcher from the
// stored parameters.
func LoadPlaneSet(r io.Reader) (*PlaneSet, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading plane set: %w", err)
	}
	if magic != planeMagic {
		return nil, fmt.Errorf("core: bad plane-set magic %q", magic[:])
	}
	lr := &leReader{r: br}
	v := lr.u32()
	if lr.err != nil {
		return nil, fmt.Errorf("core: reading plane set: %w", lr.err)
	}
	switch v {
	case persistVersionV1:
		ps, n, err := planeSetShell(lr)
		if err != nil {
			return nil, err
		}
		ps.data = lr.floatsN(n, nil)
		if lr.err != nil {
			return nil, fmt.Errorf("core: reading plane set payload: %w", lr.err)
		}
		return ps, nil
	case persistVersionV2, persistVersion:
		// The plane-set layout is identical in v2 and v3; only the pool
		// header grew.
		hdr := lr.framedBytes(maxHeaderBytes)
		if lr.err != nil {
			return nil, fmt.Errorf("core: reading plane set header: %w", lr.err)
		}
		hlr := &leReader{r: bufio.NewReader(bytes.NewReader(hdr))}
		ps, n, err := planeSetShell(hlr)
		if err != nil {
			return nil, err
		}
		ps.data = lr.framedFloats(n)
		if lr.err != nil {
			return nil, fmt.Errorf("core: reading plane set payload: %w", lr.err)
		}
		return ps, nil
	default:
		return nil, fmt.Errorf("core: unsupported plane-set version %d", v)
	}
}

// SavePool writes a pool (parameters + every plane set payload) in the
// checksummed v2 format. Sizes are written in sorted key order so output
// is deterministic. Banded pools are rejected: their sealed lanes
// already live in immutable segment files (internal/segstore), which is
// the persistence path for segment mode.
func SavePool(w io.Writer, pl *Pool) error {
	if pl.banded {
		return errors.New("core: banded pools persist through the segment store, not SavePool")
	}
	bw := bufio.NewWriter(w)
	lw := &leWriter{w: bw}
	if _, err := bw.Write(poolMagic[:]); err != nil {
		return fmt.Errorf("core: writing pool: %w", err)
	}
	lw.u32(persistVersion)
	hdr, err := headerBytes(func(hw *leWriter) { writePoolParams(hw, pl) })
	if err != nil {
		return fmt.Errorf("core: writing pool: %w", err)
	}
	lw.framedBytes(hdr)
	for _, key := range sortedPoolKeys(pl) {
		for _, ps := range pl.entries[key] {
			lw.framedFloats(ps.data)
		}
	}
	if lw.err != nil {
		return fmt.Errorf("core: writing pool: %w", lw.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("core: writing pool: %w", err)
	}
	return nil
}

func writePoolParams(lw *leWriter, pl *Pool) {
	lw.f64(pl.p)
	lw.u64(uint64(pl.k))
	lw.u64(uint64(pl.rows))
	lw.u64(uint64(pl.cols))
	lw.u64(pl.seed)
	lw.u32(uint32(pl.opts.MinLogRows))
	lw.u32(uint32(pl.opts.MaxLogRows))
	lw.u32(uint32(pl.opts.MinLogCols))
	lw.u32(uint32(pl.opts.MaxLogCols))
	lw.u32(uint32(pl.opts.Estimator))
	// v3: streaming-ingest metadata.
	lw.u32(uint32(pl.opts.PanelCols))
	lw.u64(uint64(pl.baseCol))
}

func sortedPoolKeys(pl *Pool) [][2]int {
	keys := make([][2]int, 0, len(pl.entries))
	for key := range pl.entries {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	return keys
}

// poolShell parses the pool header fields into an empty Pool, validating
// them. Versions 1 and 2 share a prefix; version 3 appends the
// streaming-ingest metadata (panel width, base column).
func poolShell(lr *leReader, version uint32) (*Pool, error) {
	pl := &Pool{entries: make(map[[2]int][compoundSets]*PlaneSet)}
	pl.p = lr.f64()
	pl.k = int(lr.u64())
	pl.rows = int(lr.u64())
	pl.cols = int(lr.u64())
	pl.seed = lr.u64()
	pl.opts.MinLogRows = int(lr.u32())
	pl.opts.MaxLogRows = int(lr.u32())
	pl.opts.MinLogCols = int(lr.u32())
	pl.opts.MaxLogCols = int(lr.u32())
	pl.opts.Estimator = Estimator(lr.u32())
	if version >= persistVersion {
		pl.opts.PanelCols = int(lr.u32())
		pl.baseCol = int(lr.u64())
	}
	if lr.err != nil {
		return nil, fmt.Errorf("core: reading pool header: %w", lr.err)
	}
	if pl.k <= 0 || pl.k > 1<<24 || pl.rows <= 0 || pl.cols <= 0 ||
		pl.rows > 1<<24 || pl.cols > 1<<24 ||
		pl.opts.MinLogRows < 0 || pl.opts.MinLogRows > pl.opts.MaxLogRows ||
		pl.opts.MinLogCols < 0 || pl.opts.MinLogCols > pl.opts.MaxLogCols ||
		1<<pl.opts.MaxLogRows > pl.rows || 1<<pl.opts.MaxLogCols > pl.cols ||
		pl.opts.PanelCols < 0 || pl.opts.PanelCols > 1<<24 ||
		pl.baseCol < 0 || pl.baseCol > 1<<40 {
		return nil, fmt.Errorf("core: implausible pool header %+v (%dx%d, k=%d, base=%d)",
			pl.opts, pl.rows, pl.cols, pl.k, pl.baseCol)
	}
	return pl, nil
}

// loadPoolEntries rebuilds every plane set: the sketcher regenerates
// from the recorded seed derivation, the payload comes from readPayload
// (version-specific framing).
func loadPoolEntries(pl *Pool, readPayload func(n int) ([]float64, error)) error {
	for i := pl.opts.MinLogRows; i <= pl.opts.MaxLogRows; i++ {
		for j := pl.opts.MinLogCols; j <= pl.opts.MaxLogCols; j++ {
			var sets [compoundSets]*PlaneSet
			for s := 0; s < compoundSets; s++ {
				// Bound the matrix regeneration before NewSketcher commits
				// a k·2^i·2^j allocation on a corrupt header's say-so.
				if _, err := checkFloats(1<<i, 1<<j, pl.k); err != nil {
					return err
				}
				sk, err := NewSketcher(pl.p, pl.k, 1<<i, 1<<j,
					poolSketcherSeed(pl.seed, i, j, s), pl.opts.Estimator)
				if err != nil {
					return fmt.Errorf("core: rebuilding pool sketcher: %w", err)
				}
				ps := &PlaneSet{
					sk:   sk,
					rows: pl.rows - 1<<i + 1,
					cols: pl.cols - 1<<j + 1,
				}
				n, err := checkFloats(ps.rows, ps.cols, pl.k)
				if err != nil {
					return err
				}
				ps.data, err = readPayload(n)
				if err != nil {
					return fmt.Errorf("core: reading pool payload: %w", err)
				}
				sets[s] = ps
			}
			pl.entries[[2]int{i, j}] = sets
		}
	}
	return nil
}

// LoadPool reads a pool saved by SavePool (v2, checksummed) or by a v1
// build of this package, rebuilding each Sketcher from the recorded seed
// derivation and restoring the correlation payloads without
// recomputation.
func LoadPool(r io.Reader) (*Pool, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("core: reading pool: %w", err)
	}
	if magic != poolMagic {
		return nil, fmt.Errorf("core: bad pool magic %q", magic[:])
	}
	lr := &leReader{r: br}
	v := lr.u32()
	if lr.err != nil {
		return nil, fmt.Errorf("core: reading pool: %w", lr.err)
	}
	var pl *Pool
	switch v {
	case persistVersionV1:
		var err error
		if pl, err = poolShell(lr, v); err != nil {
			return nil, err
		}
		if err := loadPoolEntries(pl, func(n int) ([]float64, error) {
			data := lr.floatsN(n, nil)
			return data, lr.err
		}); err != nil {
			return nil, err
		}
	case persistVersionV2, persistVersion:
		hdr := lr.framedBytes(maxHeaderBytes)
		if lr.err != nil {
			return nil, fmt.Errorf("core: reading pool header: %w", lr.err)
		}
		hlr := &leReader{r: bufio.NewReader(bytes.NewReader(hdr))}
		var err error
		if pl, err = poolShell(hlr, v); err != nil {
			return nil, err
		}
		if err := loadPoolEntries(pl, func(n int) ([]float64, error) {
			data := lr.framedFloats(n)
			return data, lr.err
		}); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unsupported pool version %d", v)
	}
	return pl, nil
}

// SavePoolFile writes pl to path crash-safely: the bytes stream to a
// temporary file in the same directory which is fsynced and atomically
// renamed over path, so a crash or I/O error mid-save leaves a previous
// snapshot at path intact and never a torn file.
func SavePoolFile(path string, pl *Pool) error {
	return atomicio.WriteFile(path, func(w io.Writer) error { return SavePool(w, pl) })
}

// LoadPoolFile reads a pool snapshot from path (any format version).
func LoadPoolFile(path string) (*Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return LoadPool(f)
}

// SavePlaneSetFile writes ps to path with the same crash-safety as
// SavePoolFile.
func SavePlaneSetFile(path string, ps *PlaneSet) error {
	return atomicio.WriteFile(path, func(w io.Writer) error { return SavePlaneSet(w, ps) })
}

// LoadPlaneSetFile reads a plane-set snapshot from path (v1 or v2).
func LoadPlaneSetFile(path string) (*PlaneSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer f.Close()
	return LoadPlaneSet(f)
}
