package core

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/faultinject"
)

// v1Writer encodes the legacy unframed format, so the v1-compat tests
// exercise exactly the bytes a pre-checksum build produced. Production
// code only ever writes v2; this encoder lives in the test.
type v1Writer struct{ lw *leWriter }

func newV1Writer(buf *bytes.Buffer) *v1Writer {
	return &v1Writer{lw: &leWriter{w: bufio.NewWriter(buf)}}
}

func (v *v1Writer) flush(t *testing.T) {
	t.Helper()
	if v.lw.err == nil {
		v.lw.err = v.lw.w.Flush()
	}
	if v.lw.err != nil {
		t.Fatal(v.lw.err)
	}
}

func (v *v1Writer) rawFloats(vs []float64) {
	for _, f := range vs {
		v.lw.f64(f)
	}
}

func v1PlaneSetBytes(t *testing.T, ps *PlaneSet) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(planeMagic[:])
	v := newV1Writer(&buf)
	v.lw.u32(persistVersionV1)
	writeSketcherParams(v.lw, ps.sk)
	v.lw.u64(uint64(ps.rows))
	v.lw.u64(uint64(ps.cols))
	v.rawFloats(ps.data)
	v.flush(t)
	return buf.Bytes()
}

// writePoolParamsLegacy is the v1/v2 pool header — the v3 header minus
// the streaming-ingest metadata. Production code only ever writes v3;
// this encoder exists so the compat tests exercise exactly the bytes
// older builds produced.
func writePoolParamsLegacy(lw *leWriter, pl *Pool) {
	lw.f64(pl.p)
	lw.u64(uint64(pl.k))
	lw.u64(uint64(pl.rows))
	lw.u64(uint64(pl.cols))
	lw.u64(pl.seed)
	lw.u32(uint32(pl.opts.MinLogRows))
	lw.u32(uint32(pl.opts.MaxLogRows))
	lw.u32(uint32(pl.opts.MinLogCols))
	lw.u32(uint32(pl.opts.MaxLogCols))
	lw.u32(uint32(pl.opts.Estimator))
}

func v1PoolBytes(t *testing.T, pl *Pool) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(poolMagic[:])
	v := newV1Writer(&buf)
	v.lw.u32(persistVersionV1)
	writePoolParamsLegacy(v.lw, pl)
	for _, key := range sortedPoolKeys(pl) {
		for _, ps := range pl.entries[key] {
			v.rawFloats(ps.data)
		}
	}
	v.flush(t)
	return buf.Bytes()
}

// v2PoolBytes encodes the framed v2 format: v3 framing with the legacy
// header fields.
func v2PoolBytes(t *testing.T, pl *Pool) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(poolMagic[:])
	lw := &leWriter{w: bufio.NewWriter(&buf)}
	lw.u32(persistVersionV2)
	hdr, err := headerBytes(func(hw *leWriter) { writePoolParamsLegacy(hw, pl) })
	if err != nil {
		t.Fatal(err)
	}
	lw.framedBytes(hdr)
	for _, key := range sortedPoolKeys(pl) {
		for _, ps := range pl.entries[key] {
			lw.framedFloats(ps.data)
		}
	}
	if lw.err == nil {
		lw.err = lw.w.Flush()
	}
	if lw.err != nil {
		t.Fatal(lw.err)
	}
	return buf.Bytes()
}

func persistTestPool(t *testing.T, seed uint64) *Pool {
	t.Helper()
	rng := rand.New(rand.NewPCG(seed, seed))
	tb := randTable(rng, 16, 16)
	pool, err := NewPool(tb, 1, 4, seed, PoolOptions{
		MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func poolsEqual(t *testing.T, a, b *Pool) {
	t.Helper()
	if len(a.entries) != len(b.entries) {
		t.Fatalf("entry counts %d vs %d", len(a.entries), len(b.entries))
	}
	for key, sets := range a.entries {
		bsets, ok := b.entries[key]
		if !ok {
			t.Fatalf("size %v missing", key)
		}
		for s := range sets {
			if len(sets[s].data) != len(bsets[s].data) {
				t.Fatalf("size %v set %d payload lengths differ", key, s)
			}
			for i := range sets[s].data {
				if sets[s].data[i] != bsets[s].data[i] {
					t.Fatalf("size %v set %d differs at %d", key, s, i)
				}
			}
		}
	}
}

func TestLoadV1PlaneSet(t *testing.T) {
	rng := rand.New(rand.NewPCG(20, 20))
	tb := randTable(rng, 12, 12)
	sk, err := NewSketcher(1.5, 4, 4, 4, 33, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	ps := sk.AllPositions(tb)
	got, err := LoadPlaneSet(bytes.NewReader(v1PlaneSetBytes(t, ps)))
	if err != nil {
		t.Fatalf("v1 plane set no longer loads: %v", err)
	}
	for i := range ps.data {
		if got.data[i] != ps.data[i] {
			t.Fatalf("v1 payload differs at %d", i)
		}
	}
}

func TestLoadV1Pool(t *testing.T) {
	pool := persistTestPool(t, 21)
	got, err := LoadPool(bytes.NewReader(v1PoolBytes(t, pool)))
	if err != nil {
		t.Fatalf("v1 pool no longer loads: %v", err)
	}
	poolsEqual(t, pool, got)
}

// A v2 snapshot (framed, no ingest metadata) must keep loading, with
// PanelCols and BaseCol defaulting to zero — resume code treats such
// pools as full-history monolithic builds.
func TestLoadV2Pool(t *testing.T) {
	pool := persistTestPool(t, 27)
	got, err := LoadPool(bytes.NewReader(v2PoolBytes(t, pool)))
	if err != nil {
		t.Fatalf("v2 pool no longer loads: %v", err)
	}
	poolsEqual(t, pool, got)
	if got.PanelCols() != 0 || got.BaseCol() != 0 {
		t.Fatalf("v2 pool loaded with PanelCols=%d BaseCol=%d, want zeros",
			got.PanelCols(), got.BaseCol())
	}
}

// A v3 round trip must preserve the streaming-ingest metadata: the panel
// width (so a loaded pool can keep appending) and the base column (so
// HighWaterCols survives restarts).
func TestSaveLoadPreservesIngestMetadata(t *testing.T) {
	rng := rand.New(rand.NewPCG(28, 28))
	tb := randTable(rng, 16, 24)
	pool, err := NewPool(tb, 1, 4, 9, PoolOptions{
		MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2,
		PanelCols: 8, BaseCol: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SavePool(&buf, pool); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPool(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	poolsEqual(t, pool, got)
	if got.PanelCols() != 8 || got.BaseCol() != 40 {
		t.Fatalf("round trip lost metadata: PanelCols=%d BaseCol=%d", got.PanelCols(), got.BaseCol())
	}
	if hw := got.HighWaterCols(); hw != 40+24 {
		t.Fatalf("HighWaterCols = %d, want %d", hw, 40+24)
	}
}

func TestSaveWritesV2(t *testing.T) {
	pool := persistTestPool(t, 22)
	var buf bytes.Buffer
	if err := SavePool(&buf, pool); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if v := uint32(b[4]) | uint32(b[5])<<8 | uint32(b[6])<<16 | uint32(b[7])<<24; v != persistVersion {
		t.Fatalf("saved version %d, want %d", v, persistVersion)
	}
	got, err := LoadPool(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	poolsEqual(t, pool, got)
}

func TestChecksumDetectsEveryBitFlip(t *testing.T) {
	pool := persistTestPool(t, 23)
	var buf bytes.Buffer
	if err := SavePool(&buf, pool); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	sawChecksum := false
	corrupt := make([]byte, len(orig))
	for off := 0; off < len(orig); off++ {
		copy(corrupt, orig)
		corrupt[off] ^= 0x40
		_, err := LoadPool(bytes.NewReader(corrupt))
		if err == nil {
			t.Fatalf("flipping byte %d of %d went undetected", off, len(orig))
		}
		if errors.Is(err, ErrChecksum) {
			sawChecksum = true
		}
	}
	if !sawChecksum {
		t.Fatal("no flip surfaced as ErrChecksum")
	}
}

func TestChecksumDetectsPlaneSetPayloadFlip(t *testing.T) {
	rng := rand.New(rand.NewPCG(24, 24))
	tb := randTable(rng, 12, 12)
	sk, err := NewSketcher(1, 4, 4, 4, 3, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	ps := sk.AllPositions(tb)
	var buf bytes.Buffer
	if err := SavePlaneSet(&buf, ps); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-10] ^= 0x01 // a payload float, inside the final framed section
	_, err = LoadPlaneSet(bytes.NewReader(b))
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
}

func TestSavePoolFileAndLoadPoolFile(t *testing.T) {
	pool := persistTestPool(t, 25)
	path := filepath.Join(t.TempDir(), "pool.skpo")
	if err := SavePoolFile(path, pool); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPoolFile(path)
	if err != nil {
		t.Fatal(err)
	}
	poolsEqual(t, pool, got)
}

func TestSaveLoadPlaneSetFile(t *testing.T) {
	rng := rand.New(rand.NewPCG(26, 26))
	tb := randTable(rng, 12, 12)
	sk, err := NewSketcher(1, 4, 4, 4, 3, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	ps := sk.AllPositions(tb)
	path := filepath.Join(t.TempDir(), "planes.skpl")
	if err := SavePlaneSetFile(path, ps); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlaneSetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps.data {
		if got.data[i] != ps.data[i] {
			t.Fatalf("payload differs at %d", i)
		}
	}
}

// TestSavePoolFileCrashMatrix kills SavePoolFile at every write fault
// point — hard failure and torn (short) write — and asserts the previous
// snapshot at the path is untouched and no temp file leaks. This is the
// crash-safety contract: an interrupted save can cost the new snapshot,
// never the old one.
func TestSavePoolFileCrashMatrix(t *testing.T) {
	poolOld := persistTestPool(t, 30)
	poolNew := persistTestPool(t, 31)
	writes, err := faultinject.CountWrites(func(w io.Writer) error {
		return SavePool(w, poolNew)
	})
	if err != nil {
		t.Fatal(err)
	}
	if writes == 0 {
		t.Fatal("no writes counted")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "pool.skpo")
	if err := SavePoolFile(path, poolOld); err != nil {
		t.Fatal(err)
	}
	oldBytes, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Cleanup(func() { atomicio.TestWrapWriter = nil })
	for failAt := 1; failAt <= writes; failAt++ {
		for _, short := range []bool{false, true} {
			atomicio.TestWrapWriter = func(_ string, w io.Writer) io.Writer {
				return &faultinject.Writer{W: w, FailAt: failAt, Short: short}
			}
			err := SavePoolFile(path, poolNew)
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("failAt=%d short=%v: err = %v, want injected fault", failAt, short, err)
			}
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("failAt=%d short=%v: old snapshot gone: %v", failAt, short, err)
			}
			if !bytes.Equal(got, oldBytes) {
				t.Fatalf("failAt=%d short=%v: old snapshot corrupted", failAt, short)
			}
			entries, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if atomicio.IsTemp(e.Name()) {
					t.Fatalf("failAt=%d short=%v: temp file leaked: %s", failAt, short, e.Name())
				}
			}
			// The surviving snapshot must still load.
			if _, err := LoadPoolFile(path); err != nil {
				t.Fatalf("failAt=%d short=%v: surviving snapshot unloadable: %v", failAt, short, err)
			}
		}
	}

	// With the faults cleared the same save succeeds and replaces.
	atomicio.TestWrapWriter = nil
	if err := SavePoolFile(path, poolNew); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPoolFile(path)
	if err != nil {
		t.Fatal(err)
	}
	poolsEqual(t, poolNew, got)
}
