// Package core implements the paper's primary contribution: sketches for
// approximating Lp distances (0 < p ≤ 2) between subtables of massive
// tabular data.
//
// The pieces map onto the paper as follows:
//
//   - Sketcher — Section 3.2, Theorems 1–2. k random matrices with entries
//     drawn from a symmetric p-stable distribution; the sketch of a tile is
//     the vector of k dot products; the distance estimate is the median of
//     absolute sketch differences divided by the scaling factor B(p) (for
//     p = 2, the faster Euclidean special case the paper mentions in §4.4).
//
//   - PlaneSet / Sketcher.AllPositions — Section 3.3, Theorem 3. Sketch
//     entries for a fixed tile size at *every* position of the table,
//     computed as 2D cross-correlations in O(N log M) via FFT.
//
//   - Pool — Definition 4, Theorems 5–6. Plane sets for a canonical
//     collection of dyadic tile sizes, four independent sets per size, from
//     which a compound sketch of an *arbitrary* rectangle is assembled in
//     O(k) by summing four overlapping dyadic sketches.
//
//   - Cache — the "sketch on demand" scenario of Section 4.4: sketches are
//     computed naively the first time a tile is touched and reused for
//     every later comparison.
package core

import (
	"fmt"
	"math"
)

// KForAccuracy returns a sketch size k = O(ε⁻² log 1/δ) sufficient for a
// (1 ± ε) estimate with probability 1 − δ (Theorem 1). The constant 2
// follows the standard median-amplification analysis; the paper leaves the
// constant to experiment, and the accuracy experiments (fig2acc) sweep k
// directly.
func KForAccuracy(eps, delta float64) (int, error) {
	if !(eps > 0) || eps >= 1 {
		return 0, fmt.Errorf("core: eps %v outside (0, 1)", eps)
	}
	if !(delta > 0) || delta >= 1 {
		return 0, fmt.Errorf("core: delta %v outside (0, 1)", delta)
	}
	k := int(math.Ceil(2 / (eps * eps) * math.Log(1/delta)))
	if k < 1 {
		k = 1
	}
	// Odd k makes the median a single order statistic, slightly tightening
	// the estimator for heavy-tailed sketch differences.
	if k%2 == 0 {
		k++
	}
	return k, nil
}
