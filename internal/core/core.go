// Package core implements the paper's primary contribution: sketches for
// approximating Lp distances (0 < p ≤ 2) between subtables of massive
// tabular data.
//
// The pieces map onto the paper as follows:
//
//   - Sketcher — Section 3.2, Theorems 1–2. k random matrices with entries
//     drawn from a symmetric p-stable distribution; the sketch of a tile is
//     the vector of k dot products; the distance estimate is the median of
//     absolute sketch differences divided by the scaling factor B(p) (for
//     p = 2, the faster Euclidean special case the paper mentions in §4.4).
//
//   - PlaneSet / Sketcher.AllPositions — Section 3.3, Theorem 3. Sketch
//     entries for a fixed tile size at *every* position of the table,
//     computed as 2D cross-correlations in O(N log M) via FFT.
//
//   - Pool — Definition 4, Theorems 5–6. Plane sets for a canonical
//     collection of dyadic tile sizes, four independent sets per size, from
//     which a compound sketch of an *arbitrary* rectangle is assembled in
//     O(k) by summing four overlapping dyadic sketches.
//
//   - Cache — the "sketch on demand" scenario of Section 4.4: sketches are
//     computed naively the first time a tile is touched and reused for
//     every later comparison.
package core

import (
	"fmt"
	"math"

	"repro/internal/stable"
)

// KForAccuracy returns a sketch size k = O(ε⁻² log 1/δ) sufficient for a
// (1 ± ε) estimate with probability 1 − δ (Theorem 1). The constant 2
// follows the standard median-amplification analysis; the paper leaves the
// constant to experiment, and the accuracy experiments (fig2acc) sweep k
// directly.
func KForAccuracy(eps, delta float64) (int, error) {
	if !(eps > 0) || eps >= 1 {
		return 0, fmt.Errorf("core: eps %v outside (0, 1)", eps)
	}
	if !(delta > 0) || delta >= 1 {
		return 0, fmt.Errorf("core: delta %v outside (0, 1)", delta)
	}
	k := int(math.Ceil(2 / (eps * eps) * math.Log(1/delta)))
	if k < 1 {
		k = 1
	}
	// Odd k makes the median a single order statistic, slightly tightening
	// the estimator for heavy-tailed sketch differences.
	if k%2 == 0 {
		k++
	}
	return k, nil
}

// KForAccuracyAtP returns the sketch size sufficient for a (1 ± ε)
// estimate with probability 1 − δ at a SPECIFIC p, with the exact
// constant instead of KForAccuracy's generic one. The median estimator
// lands within (1±ε)·‖x−y‖p exactly when the empirical median of the k
// |stable| samples stays between the (1∓ε)·B(p) quantiles, so by the
// Chernoff bound on the binomial count below/above those quantiles,
//
//	k ≥ ln(2/δ) / (2γ²),  γ = min(F((1+ε)B) − ½, ½ − F((1−ε)B))
//
// with F the CDF of |X| computed by Fourier inversion. γ shrinks as
// p → 0 (the density flattens near the median), which is why the generic
// 2/ε²·ln(1/δ) is off by more than an order of magnitude at p = 0.5.
// Available for p ≥ 0.3 (the analytic-CDF range); smaller p falls back
// with an error so callers can choose KForAccuracy knowingly.
func KForAccuracyAtP(p, eps, delta float64) (int, error) {
	if !(eps > 0) || eps >= 1 {
		return 0, fmt.Errorf("core: eps %v outside (0, 1)", eps)
	}
	if !(delta > 0) || delta >= 1 {
		return 0, fmt.Errorf("core: delta %v outside (0, 1)", delta)
	}
	d, err := stable.New(p)
	if err != nil {
		return 0, err
	}
	if !d.HasAnalytic() {
		return 0, fmt.Errorf("core: exact k unavailable for p = %v (analytic CDF needs p ≥ 0.3); use KForAccuracy", p)
	}
	b := stable.MedianAbs(p)
	cdfAbs := func(x float64) (float64, error) {
		v, err := d.CDF(x)
		return 2*v - 1, err // |X| CDF of the symmetric law
	}
	qHi, err := cdfAbs((1 + eps) * b)
	if err != nil {
		return 0, err
	}
	qLo, err := cdfAbs((1 - eps) * b)
	if err != nil {
		return 0, err
	}
	gamma := math.Min(qHi-0.5, 0.5-qLo)
	if !(gamma > 0) {
		return 0, fmt.Errorf("core: degenerate quantile band for p = %v, eps = %v", p, eps)
	}
	k := int(math.Ceil(math.Log(2/delta) / (2 * gamma * gamma)))
	if k%2 == 0 {
		k++
	}
	return k, nil
}
