// Package core implements the paper's primary contribution: sketches for
// approximating Lp distances (0 < p ≤ 2) between subtables of massive
// tabular data.
//
// The pieces map onto the paper as follows:
//
//   - Sketcher — Section 3.2, Theorems 1–2. k random matrices with entries
//     drawn from a symmetric p-stable distribution; the sketch of a tile is
//     the vector of k dot products; the distance estimate is the median of
//     absolute sketch differences divided by the scaling factor B(p) (for
//     p = 2, the faster Euclidean special case the paper mentions in §4.4).
//
//   - PlaneSet / Sketcher.AllPositions — Section 3.3, Theorem 3. Sketch
//     entries for a fixed tile size at *every* position of the table,
//     computed as 2D cross-correlations in O(N log M) via FFT.
//
//   - Pool — Definition 4, Theorems 5–6. Plane sets for a canonical
//     collection of dyadic tile sizes, four independent sets per size, from
//     which a compound sketch of an *arbitrary* rectangle is assembled in
//     O(k) by summing four overlapping dyadic sketches.
//
//   - Cache — the "sketch on demand" scenario of Section 4.4: sketches are
//     computed naively the first time a tile is touched and reused for
//     every later comparison.
package core

import (
	"fmt"
	"math"

	"repro/internal/stable"
)

// KForAccuracy returns a sketch size k = O(ε⁻² log 1/δ) sufficient for a
// (1 ± ε) estimate with probability 1 − δ (Theorem 1). The constant 2
// follows the standard median-amplification analysis; the paper leaves the
// constant to experiment, and the accuracy experiments (fig2acc) sweep k
// directly.
func KForAccuracy(eps, delta float64) (int, error) {
	if !(eps > 0) || eps >= 1 {
		return 0, fmt.Errorf("core: eps %v outside (0, 1)", eps)
	}
	if !(delta > 0) || delta >= 1 {
		return 0, fmt.Errorf("core: delta %v outside (0, 1)", delta)
	}
	k := int(math.Ceil(2 / (eps * eps) * math.Log(1/delta)))
	if k < 1 {
		k = 1
	}
	// Odd k makes the median a single order statistic, slightly tightening
	// the estimator for heavy-tailed sketch differences.
	if k%2 == 0 {
		k++
	}
	return k, nil
}

// KForAccuracyAtP returns the sketch size sufficient for a (1 ± ε)
// estimate with probability 1 − δ at a SPECIFIC p, with the exact
// constant instead of KForAccuracy's generic one. The median estimator
// lands within (1±ε)·‖x−y‖p exactly when the empirical median of the k
// |stable| samples stays between the (1∓ε)·B(p) quantiles, so by the
// Chernoff bound on the binomial count below/above those quantiles,
//
//	k ≥ ln(2/δ) / (2γ²),  γ = min(F((1+ε)B) − ½, ½ − F((1−ε)B))
//
// with F the CDF of |X| computed by Fourier inversion. γ shrinks as
// p → 0 (the density flattens near the median), which is why the generic
// 2/ε²·ln(1/δ) is off by more than an order of magnitude at p = 0.5.
// Available for p ≥ 0.3 (the analytic-CDF range); smaller p falls back
// with an error so callers can choose KForAccuracy knowingly.
func KForAccuracyAtP(p, eps, delta float64) (int, error) {
	if !(eps > 0) || eps >= 1 {
		return 0, fmt.Errorf("core: eps %v outside (0, 1)", eps)
	}
	if !(delta > 0) || delta >= 1 {
		return 0, fmt.Errorf("core: delta %v outside (0, 1)", delta)
	}
	d, err := stable.New(p)
	if err != nil {
		return 0, err
	}
	if !d.HasAnalytic() {
		return 0, fmt.Errorf("core: exact k unavailable for p = %v (analytic CDF needs p ≥ 0.3); use KForAccuracy", p)
	}
	b := stable.MedianAbs(p)
	cdfAbs := func(x float64) (float64, error) {
		v, err := d.CDF(x)
		return 2*v - 1, err // |X| CDF of the symmetric law
	}
	qHi, err := cdfAbs((1 + eps) * b)
	if err != nil {
		return 0, err
	}
	qLo, err := cdfAbs((1 - eps) * b)
	if err != nil {
		return 0, err
	}
	gamma := math.Min(qHi-0.5, 0.5-qLo)
	if !(gamma > 0) {
		return 0, fmt.Errorf("core: degenerate quantile band for p = %v, eps = %v", p, eps)
	}
	k := int(math.Ceil(math.Log(2/delta) / (2 * gamma * gamma)))
	if k%2 == 0 {
		k++
	}
	return k, nil
}

// MedianPrefixBounds inverts the Chernoff argument of KForAccuracyAtP:
// instead of solving for the k that makes a given ε hold, it solves for
// the ε that b already-seen coordinates support. It returns
// multiplicative deviation factors (lo, hi) for the median estimator
// over a PREFIX of b i.i.d. sketch coordinates:
//
//	P[ median(|s₁..s_b|)/B(p) > hi·d ] ≤ delta
//	P[ median(|s₁..s_b|)/B(p) < lo·d ] ≤ delta
//
// where d is the true Lp distance. The estimator exceeds hi·d only when
// at least half the b samples of |d·X| exceed hi·d·B(p), a binomial
// event with per-sample probability ½ − γ, γ = F_abs(hi·B) − ½, so by
// Chernoff the γ that b samples certify at confidence 1−delta is
// γ_req = sqrt(ln(1/delta)/(2b)), and hi is the matching quantile of
// |X|; symmetrically for lo. When b is too small to certify anything
// (γ_req ≥ ½, the whole upper half of the CDF) the bounds degenerate to
// hi = +Inf and lo = 0, which callers must treat as "no cutoff yet".
//
// This is the margin the progressive pruning engine (internal/prune)
// applies after each block of sketch coordinates: a candidate whose
// partial estimate exceeds hi(b)·bound is, with probability ≥ 1−delta,
// truly farther than bound and can be abandoned after b of k
// coordinates. Available for p ≥ 0.3 (the analytic-CDF range), like
// KForAccuracyAtP.
func MedianPrefixBounds(p float64, b int, delta float64) (lo, hi float64, err error) {
	if b < 1 {
		return 0, 0, fmt.Errorf("core: prefix length %d must be positive", b)
	}
	if !(delta > 0) || delta >= 1 {
		return 0, 0, fmt.Errorf("core: delta %v outside (0, 1)", delta)
	}
	d, err := stable.New(p)
	if err != nil {
		return 0, 0, err
	}
	if !d.HasAnalytic() {
		return 0, 0, fmt.Errorf("core: prefix bounds unavailable for p = %v (analytic CDF needs p ≥ 0.3)", p)
	}
	gammaReq := math.Sqrt(math.Log(1/delta) / (2 * float64(b)))
	scale := stable.MedianAbs(p)
	hi = math.Inf(1)
	lo = 0
	if gammaReq < 0.5 {
		// Quantile of |X| at ½ ± γ_req; the symmetric law gives
		// Q_abs(q) = Q((1+q)/2).
		qhi, err := d.Quantile((1 + (0.5 + gammaReq)) / 2)
		if err != nil {
			return 0, 0, err
		}
		qlo, err := d.Quantile((1 + (0.5 - gammaReq)) / 2)
		if err != nil {
			return 0, 0, err
		}
		hi = qhi / scale
		lo = qlo / scale
	}
	return lo, hi, nil
}

// L2PrefixBounds is MedianPrefixBounds for the p = 2 special case, where
// the estimator is sqrt(Σᵢ(Δsᵢ)²/b) over b standard-normal sketch
// differences: (est/d)² is χ²_b/b, so the Chernoff bound
//
//	P[χ²_b/b ≥ t] ≤ exp(−(b/2)(t − 1 − ln t)),  t > 1
//	P[χ²_b/b ≤ t] ≤ exp(−(b/2)(t − 1 − ln t)),  t < 1
//
// inverts by bisection on the (monotone on each side of 1) exponent.
// Degenerate prefixes (b too small for the requested delta) return
// hi = +Inf / lo = 0, as in MedianPrefixBounds.
func L2PrefixBounds(b int, delta float64) (lo, hi float64, err error) {
	if b < 1 {
		return 0, 0, fmt.Errorf("core: prefix length %d must be positive", b)
	}
	if !(delta > 0) || delta >= 1 {
		return 0, 0, fmt.Errorf("core: delta %v outside (0, 1)", delta)
	}
	target := 2 * math.Log(1/delta) / float64(b) // solve t − 1 − ln t = target
	f := func(t float64) float64 { return t - 1 - math.Log(t) }
	bisect := func(a, c float64) float64 {
		for i := 0; i < 200; i++ {
			m := (a + c) / 2
			if f(m) < target {
				a = m
			} else {
				c = m
			}
		}
		return (a + c) / 2
	}
	// Upper side: t > 1, f increasing and unbounded.
	chi := 2.0
	for f(chi) < target {
		chi *= 2
	}
	hi = math.Sqrt(bisect(1, chi))
	// Lower side: t < 1, f decreasing from +Inf (t→0) to 0 (t→1). When
	// even t = 1e-12 cannot reach the target exponent the certified lower
	// factor is indistinguishable from 0.
	lo = 0
	if f(1e-12) > target {
		a, c := 1e-12, 1.0 // f(a) > target ≥ f(c): bisect the decreasing side
		for i := 0; i < 200; i++ {
			m := (a + c) / 2
			if f(m) > target {
				a = m
			} else {
				c = m
			}
		}
		lo = math.Sqrt((a + c) / 2)
	}
	return lo, hi, nil
}
