package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/parallel"
	"repro/internal/table"
)

// Banded pools. A segment store persists the sealed prefix of a
// panel-mode pool's anchor columns as immutable files and serves their
// lanes straight from a memory mapping. The core-side contract is the
// banded plane-set layout (see laneBand in planes.go): anchor columns
// are partitioned into contiguous bands, sealed bands view externally
// owned memory, and the final heap band — the fringe — is the only
// region the panel builder ever writes. Because the panel grid is
// anchored at absolute column positions and a sealed boundary is a
// multiple of every panel width in play, the sealed bytes are exactly
// the bytes a from-scratch heap build would produce: heap-backed and
// mmap-backed pools over the same window answer byte-identically.

// LaneID names one plane set of a pool: the dyadic tile size
// (2^I)×(2^J) and the independent sketch set S in [0, 4).
type LaneID struct{ I, J, S int }

// Lanes returns every lane of the pool in canonical (I, J, S) order —
// the order segment files store lane blobs in.
func (pl *Pool) Lanes() []LaneID {
	ids := make([]LaneID, 0, len(pl.entries)*compoundSets)
	for key := range pl.entries {
		for s := 0; s < compoundSets; s++ {
			ids = append(ids, LaneID{I: key[0], J: key[1], S: s})
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		x, y := ids[a], ids[b]
		if x.I != y.I {
			return x.I < y.I
		}
		if x.J != y.J {
			return x.J < y.J
		}
		return x.S < y.S
	})
	return ids
}

// LaneRows returns the number of anchor rows of lane id's plane
// (tableRows − 2^I + 1).
func (pl *Pool) LaneRows(id LaneID) int { return pl.rows - 1<<id.I + 1 }

// Banded reports whether the pool uses the banded column layout (built
// by NewBandedPool, Reband, or TrimSealed).
func (pl *Pool) Banded() bool { return pl.banded }

// SealedCols returns the sealed column count: anchor columns
// [0, SealedCols) of every lane view externally owned bands. 0 for heap
// pools.
func (pl *Pool) SealedCols() int { return pl.sealed }

// SegAlign returns the pool's segment alignment, the column granularity
// at which a sealed boundary may be cut: max(PanelCols, 2^MaxLogCols).
// Every panel width w_j = max(PanelCols, 2^j) divides it when PanelCols
// is a power of two, which banded construction requires.
func (pl *Pool) SegAlign() int { return segAlign(pl.opts) }

func segAlign(opts PoolOptions) int {
	return max(opts.PanelCols, 1<<opts.MaxLogCols)
}

// CopyLaneBand copies anchor columns [c0, c1) of lane id into dst
// (allocated if too small), row-major within the band — the layout
// sealed bands and segment blobs use: element (r, c, i) at
// dst[(r*(c1-c0)+c-c0)*k+i]. Works on heap and banded pools alike; the
// segment writer uses it to extract a seal-ready band from the fringe.
func (pl *Pool) CopyLaneBand(id LaneID, c0, c1 int, dst []float64) ([]float64, error) {
	sets, ok := pl.entries[[2]int{id.I, id.J}]
	if !ok || id.S < 0 || id.S >= compoundSets {
		return nil, fmt.Errorf("core: pool has no lane %+v", id)
	}
	ps := sets[id.S]
	if c0 < 0 || c1 > ps.cols || c0 >= c1 {
		return nil, fmt.Errorf("core: lane %+v band [%d,%d) outside anchor columns [0,%d)",
			id, c0, c1, ps.cols)
	}
	n := ps.rows * (c1 - c0) * pl.k
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	ps.copyCols(c0, c1, dst)
	return dst, nil
}

// SealedBand hands NewBandedPool or Reband one immutable, externally
// stored band of sealed anchor columns [C0, C1) (table-column units,
// uniform across lanes). Lane returns the band's payload for one lane —
// LaneRows(id)·(C1−C0)·k floats, row-major within the band. Returned
// slices are adopted, not copied: they may view a read-only memory
// mapping, and the pool never writes them.
type SealedBand struct {
	C0, C1 int
	Lane   func(LaneID) []float64
}

// validateSealedBands checks contiguity from column 0 and alignment of
// the sealed boundary, returning the sealed column count.
func validateSealedBands(sealed []SealedBand, opts PoolOptions, tableCols int) (int, error) {
	if opts.PanelCols <= 0 || opts.PanelCols&(opts.PanelCols-1) != 0 {
		return 0, fmt.Errorf("core: banded pools require power-of-two PanelCols, got %d", opts.PanelCols)
	}
	at := 0
	for i, sb := range sealed {
		if sb.C0 != at || sb.C1 <= sb.C0 {
			return 0, fmt.Errorf("core: sealed band %d spans [%d,%d), want contiguous from %d",
				i, sb.C0, sb.C1, at)
		}
		if sb.Lane == nil {
			return 0, fmt.Errorf("core: sealed band %d has no lane accessor", i)
		}
		at = sb.C1
	}
	align := segAlign(opts)
	if at%align != 0 {
		return 0, fmt.Errorf("core: sealed boundary %d not a multiple of segment alignment %d", at, align)
	}
	// The boundary must leave every lane's plane at least the sealed
	// columns: the tightest plane is the widest tile's,
	// cols − 2^MaxLogCols + 1 anchor columns.
	if lim := tableCols - 1<<opts.MaxLogCols + 1; at > lim {
		return 0, fmt.Errorf("core: sealed boundary %d exceeds sealable limit %d of a %d-column table",
			at, lim, tableCols)
	}
	return at, nil
}

// bandLanes builds one lane's band list: the adopted sealed bands plus
// a freshly allocated heap fringe covering [sealedTo, planeCols). Lane
// payload lengths are validated against the plane geometry.
func bandLanes(id LaneID, planeRows, planeCols, k, sealedTo int, sealed []SealedBand) ([]laneBand, error) {
	bands := make([]laneBand, 0, len(sealed)+1)
	for _, sb := range sealed {
		data := sb.Lane(id)
		if want := planeRows * (sb.C1 - sb.C0) * k; len(data) != want {
			return nil, fmt.Errorf("core: sealed band [%d,%d) lane %+v has %d floats, want %d",
				sb.C0, sb.C1, id, len(data), want)
		}
		bands = append(bands, laneBand{c0: sb.C0, c1: sb.C1, data: data, ext: true})
	}
	bands = append(bands, laneBand{c0: sealedTo, c1: planeCols,
		data: make([]float64, planeRows*(planeCols-sealedTo)*k)})
	return bands, nil
}

// NewBandedPool builds a panel-mode pool over t whose anchor columns
// [0, sealedTo) are adopted from the given sealed bands (typically
// segment-file mappings) and whose fringe [sealedTo, …) is computed by
// the same per-panel slab FFTs a from-scratch heap build runs. Because
// sketcher randomness is column-position-independent and the panel grid
// is absolute, the result is byte-identical to NewPool over the same
// table — the sealed bands simply substitute previously computed bytes.
// sealed may be nil (a fully heap banded pool, ready to seal later).
//
// opts.PanelCols must be a positive power of two so every panel width
// divides the segment alignment max(PanelCols, 2^MaxLogCols).
func NewBandedPool(t *table.Table, p float64, k int, seed uint64, opts PoolOptions, sealed []SealedBand) (*Pool, error) {
	if opts.MinLogRows < 0 || opts.MinLogCols < 0 ||
		opts.MinLogRows > opts.MaxLogRows || opts.MinLogCols > opts.MaxLogCols {
		return nil, fmt.Errorf("core: invalid pool size range %+v", opts)
	}
	if 1<<opts.MaxLogRows > t.Rows() || 1<<opts.MaxLogCols > t.Cols() {
		return nil, fmt.Errorf("core: pool max dyadic size %dx%d exceeds table %dx%d",
			1<<opts.MaxLogRows, 1<<opts.MaxLogCols, t.Rows(), t.Cols())
	}
	if opts.BaseCol < 0 {
		return nil, fmt.Errorf("core: negative BaseCol %d", opts.BaseCol)
	}
	sealedTo, err := validateSealedBands(sealed, opts, t.Cols())
	if err != nil {
		return nil, err
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	opts.Context = nil
	baseCol := opts.BaseCol
	opts.BaseCol = 0
	pl := &Pool{
		p: p, k: k, rows: t.Rows(), cols: t.Cols(), seed: seed, baseCol: baseCol, opts: opts,
		entries: make(map[[2]int][compoundSets]*PlaneSet),
		banded:  true, sealed: sealedTo,
	}
	if _, err := NewSketcher(p, k, 1<<opts.MinLogRows, 1<<opts.MinLogCols, seed, opts.Estimator); err != nil {
		return nil, err
	}

	type job struct{ i, j, s int }
	var jobs []job
	for i := opts.MinLogRows; i <= opts.MaxLogRows; i++ {
		for j := opts.MinLogCols; j <= opts.MaxLogCols; j++ {
			pl.entries[[2]int{i, j}] = [compoundSets]*PlaneSet{}
			for s := 0; s < compoundSets; s++ {
				jobs = append(jobs, job{i, j, s})
			}
		}
	}
	workers := parallel.Resolve(opts.Workers)
	results := make([]*PlaneSet, len(jobs))
	errs := make([]error, len(jobs))
	if err := parallel.ForCtx(ctx, workers, len(jobs), func(n int) {
		jb := jobs[n]
		sk, err := NewSketcher(p, k, 1<<jb.i, 1<<jb.j,
			poolSketcherSeed(seed, jb.i, jb.j, jb.s), opts.Estimator)
		if err != nil {
			errs[n] = err
			return
		}
		ps := &PlaneSet{sk: sk, rows: pl.rows - 1<<jb.i + 1, cols: pl.cols - 1<<jb.j + 1}
		ps.bands, err = bandLanes(LaneID{jb.i, jb.j, jb.s}, ps.rows, ps.cols, k, sealedTo, sealed)
		if err != nil {
			errs[n] = err
			return
		}
		results[n] = ps
	}); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for n, jb := range jobs {
		sets := pl.entries[[2]int{jb.i, jb.j}]
		sets[jb.s] = results[n]
		pl.entries[[2]int{jb.i, jb.j}] = sets
	}
	if err := pl.buildPanels(ctx, t, workers, 0, sealedTo); err != nil {
		return nil, err
	}
	return pl, nil
}

// Reband returns a pool equal to pl with its sealed prefix re-expressed
// over the given bands, which must cover anchor columns [0, newSealed)
// for some newSealed ≥ pl.SealedCols(): after the ingester seals a new
// segment (or the compactor merges existing ones) it rebands the
// working pool onto the store's canonical mapped bands. Bytes do not
// change — only their backing does — so no FFT runs: the new fringe is
// a plain copy of the old fringe's surviving suffix, and sealed bands
// are adopted as-is. The receiver is never mutated and remains valid
// for concurrent queries. Works on heap panel pools too (the first seal
// of a fresh run converts the pool to banded form).
func (pl *Pool) Reband(sealed []SealedBand) (*Pool, error) {
	if pl.opts.PanelCols <= 0 {
		return nil, fmt.Errorf("core: Reband requires a panel-mode pool")
	}
	newSealed, err := validateSealedBands(sealed, pl.opts, pl.cols)
	if err != nil {
		return nil, err
	}
	if newSealed < pl.sealed {
		return nil, fmt.Errorf("core: Reband would unseal columns (%d < %d)", newSealed, pl.sealed)
	}
	np := &Pool{
		p: pl.p, k: pl.k, rows: pl.rows, cols: pl.cols, seed: pl.seed,
		baseCol: pl.baseCol, opts: pl.opts,
		entries: make(map[[2]int][compoundSets]*PlaneSet, len(pl.entries)),
		banded:  true, sealed: newSealed,
	}
	for key, sets := range pl.entries {
		var nsets [compoundSets]*PlaneSet
		for s, ps := range sets {
			nps := &PlaneSet{sk: ps.sk, rows: ps.rows, cols: ps.cols}
			nps.bands, err = bandLanes(LaneID{key[0], key[1], s}, ps.rows, ps.cols, pl.k, newSealed, sealed)
			if err != nil {
				return nil, err
			}
			fr := &nps.bands[len(nps.bands)-1]
			if fr.c1 > fr.c0 {
				ps.copyCols(fr.c0, fr.c1, fr.data)
			}
			nsets[s] = nps
		}
		np.entries[key] = nsets
	}
	return np, nil
}

// TrimSealed returns a pool over the table suffix starting at column
// drop: the window-trim operation of segment mode. drop must fall on a
// sealed band boundary (trims delete whole segments), so the surviving
// bands are shared as-is with their anchor columns rebased by −drop —
// no copy, no FFT. Because drop is a multiple of the segment alignment,
// the absolute panel grid of the remaining columns is unchanged and
// every surviving byte stays exactly what a from-scratch build over the
// suffix would produce. BaseCol advances by drop. The receiver is never
// mutated.
//
// The caller owns the companion table contract: subsequent Appends must
// pass tables whose column 0 is the old column drop.
func (pl *Pool) TrimSealed(drop int) (*Pool, error) {
	if !pl.banded {
		return nil, fmt.Errorf("core: TrimSealed requires a banded pool")
	}
	if drop <= 0 || drop > pl.sealed {
		return nil, fmt.Errorf("core: trim of %d columns outside sealed prefix [0,%d]", drop, pl.sealed)
	}
	if drop%segAlign(pl.opts) != 0 {
		return nil, fmt.Errorf("core: trim of %d columns not aligned to segment alignment %d",
			drop, segAlign(pl.opts))
	}
	if pl.cols-drop < 1<<pl.opts.MaxLogCols {
		return nil, fmt.Errorf("core: trim of %d columns leaves %d, fewer than the largest tile width %d",
			drop, pl.cols-drop, 1<<pl.opts.MaxLogCols)
	}
	np := &Pool{
		p: pl.p, k: pl.k, rows: pl.rows, cols: pl.cols - drop, seed: pl.seed,
		baseCol: pl.baseCol + drop, opts: pl.opts,
		entries: make(map[[2]int][compoundSets]*PlaneSet, len(pl.entries)),
		banded:  true, sealed: pl.sealed - drop,
	}
	for key, sets := range pl.entries {
		var nsets [compoundSets]*PlaneSet
		for s, ps := range sets {
			nps := &PlaneSet{sk: ps.sk, rows: ps.rows, cols: ps.cols - drop}
			nps.bands = make([]laneBand, 0, len(ps.bands))
			for _, b := range ps.bands {
				if b.c1 <= drop {
					continue // entirely dropped
				}
				if b.c0 < drop {
					return nil, fmt.Errorf("core: trim at %d splits band [%d,%d)", drop, b.c0, b.c1)
				}
				nb := b
				nb.c0, nb.c1 = b.c0-drop, b.c1-drop
				nps.bands = append(nps.bands, nb)
			}
			if len(nps.bands) == 0 || nps.bands[0].c0 != 0 || nps.bands[len(nps.bands)-1].c1 != nps.cols {
				return nil, fmt.Errorf("core: trim at %d leaves lane %v/%d bands discontiguous", drop, key, s)
			}
			nsets[s] = nps
		}
		np.entries[key] = nsets
	}
	return np, nil
}

// FloorAlign rounds n down to a non-negative multiple of align.
func FloorAlign(n, align int) int {
	if n <= 0 {
		return 0
	}
	return n - n%align
}

// SealableCols returns the largest aligned sealed boundary the pool's
// current width permits: the sealable limit cols − 2^MaxLogCols + 1
// rounded down to segment alignment. The ingester seals [SealedCols,
// SealableCols) when the former lags the latter.
func (pl *Pool) SealableCols() int {
	return FloorAlign(pl.cols-1<<pl.opts.MaxLogCols+1, segAlign(pl.opts))
}
