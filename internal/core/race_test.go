//go:build race

package core_test

// raceEnabled reports whether the race detector instruments this
// build; allocation-count assertions skip under it (instrumentation
// and slower concurrent tests distort process-global alloc counts).
const raceEnabled = true
