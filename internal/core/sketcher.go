package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"repro/internal/parallel"
	"repro/internal/quantile"
	"repro/internal/stable"
)

// Estimator selects how a Sketcher turns two sketch vectors into a
// distance estimate.
type Estimator int

const (
	// EstimatorAuto picks EstimatorL2 when p == 2 and EstimatorMedian
	// otherwise, matching the paper (§4.4: "a slightly different method is
	// used for p = 2 ... faster ... rather than by running a median
	// algorithm").
	EstimatorAuto Estimator = iota
	// EstimatorMedian is median(|s(x) − s(y)|) / B(p) (Theorems 1–2).
	EstimatorMedian
	// EstimatorL2 is sqrt(Σ(sᵢ(x) − sᵢ(y))² / k), valid only for p = 2
	// where sketch entries are standard-normal dot products.
	EstimatorL2
)

// String names the estimator for wire formats (shardinfo); the zero
// value EstimatorAuto stringifies as "auto" but never appears on the
// wire (pools resolve it at construction).
func (e Estimator) String() string {
	switch e {
	case EstimatorMedian:
		return "median"
	case EstimatorL2:
		return "l2"
	default:
		return "auto"
	}
}

// ParseEstimator is the inverse of Estimator.String.
func ParseEstimator(s string) (Estimator, error) {
	switch s {
	case "median":
		return EstimatorMedian, nil
	case "l2":
		return EstimatorL2, nil
	case "auto":
		return EstimatorAuto, nil
	}
	return 0, fmt.Errorf("core: unknown estimator %q", s)
}

// Sketcher produces Lp sketches for tiles of one fixed size. It owns k
// random rows×cols matrices with i.i.d. symmetric p-stable entries,
// generated deterministically from a seed so that sketches from different
// Sketcher instances with equal (p, k, dims, seed) are comparable.
//
// Concurrency: all methods except SetWorkers are safe for concurrent use
// once construction returns — the matrices are immutable and the heavy
// entry points (Sketch, AllPositions) fan out internally over the k
// independent random matrices, writing each matrix's result to a disjoint
// pre-allocated slot. That disjoint-write discipline makes every result
// byte-identical at any worker count (the determinism tests assert this),
// so the Workers knob is purely a throughput control.
type Sketcher struct {
	p          float64
	k          int
	rows, cols int
	seed       uint64
	workers    int         // 0 = GOMAXPROCS; see SetWorkers
	mats       [][]float64 // k matrices, row-major rows*cols each
	scale      float64     // B(p) = median |stable|
	estimator  Estimator
}

// NewSketcher builds a Sketcher for p ∈ (0,2] with k sketch entries for
// tiles of rows×cols cells. The estimator argument selects the distance
// estimator; EstimatorAuto is the paper's behaviour.
func NewSketcher(p float64, k, rows, cols int, seed uint64, estimator Estimator) (*Sketcher, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: sketch size k = %d must be positive", k)
	}
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("core: non-positive tile dims %dx%d", rows, cols)
	}
	dist, err := stable.New(p)
	if err != nil {
		return nil, err
	}
	if estimator == EstimatorL2 && p != 2 {
		return nil, fmt.Errorf("core: EstimatorL2 requires p = 2, got p = %v", p)
	}
	if estimator == EstimatorAuto {
		if p == 2 {
			estimator = EstimatorL2
		} else {
			estimator = EstimatorMedian
		}
	}
	rng := rand.New(rand.NewPCG(seed, math.Float64bits(p)))
	mats := make([][]float64, k)
	for i := range mats {
		mats[i] = make([]float64, rows*cols)
		dist.Fill(rng, mats[i])
	}
	return &Sketcher{
		p: p, k: k, rows: rows, cols: cols, seed: seed,
		mats:      mats,
		scale:     stable.MedianAbs(p),
		estimator: estimator,
	}, nil
}

// P returns the Lp exponent.
func (s *Sketcher) P() float64 { return s.p }

// K returns the number of sketch entries.
func (s *Sketcher) K() int { return s.k }

// Rows returns the tile height the sketcher was built for.
func (s *Sketcher) Rows() int { return s.rows }

// Cols returns the tile width the sketcher was built for.
func (s *Sketcher) Cols() int { return s.cols }

// Scale returns B(p), the median-of-absolute-value of the underlying
// stable distribution used to unbias the median estimator.
func (s *Sketcher) Scale() float64 { return s.scale }

// Seed returns the seed the random matrices were generated from; two
// Sketchers with equal (p, k, dims, seed, estimator) are interchangeable.
func (s *Sketcher) Seed() uint64 { return s.seed }

// EstimatorKind returns the resolved estimator (never EstimatorAuto).
func (s *Sketcher) EstimatorKind() Estimator { return s.estimator }

// SetWorkers bounds the goroutines Sketch and AllPositions fan out over
// the k random matrices. 0 (the default) means runtime.GOMAXPROCS(0);
// 1 forces serial execution. Results are byte-identical at any setting —
// each matrix's output lands in its own pre-allocated slot, so there is
// no reduction-order dependence. SetWorkers returns s for chaining; call
// it before sharing the Sketcher across goroutines (it is the one
// mutating method).
func (s *Sketcher) SetWorkers(n int) *Sketcher {
	s.workers = n
	return s
}

// Workers returns the effective worker count used by Sketch and
// AllPositions (the SetWorkers value with 0 resolved to GOMAXPROCS).
func (s *Sketcher) Workers() int { return parallel.Resolve(s.workers) }

// Matrix returns the i-th random matrix (row-major, rows*cols), exposed so
// the plane computation can correlate it against a full table.
func (s *Sketcher) Matrix(i int) []float64 { return s.mats[i] }

// sketchParallelMinFlops is the amount of multiply-add work below which
// Sketch stays on the calling goroutine: fanning out costs a few µs of
// goroutine start-up, which only pays for itself on larger tiles×k. The
// threshold affects scheduling only, never results (entry i is the same
// dot product either way).
const sketchParallelMinFlops = 1 << 15

// Sketch computes the k dot products of the linearized tile with the
// random matrices, fanning out over the matrices when the work exceeds
// sketchParallelMinFlops (see SetWorkers). vec must have length
// rows*cols. dst is reused when it has capacity k; the sketch is
// returned. Entry i depends only on matrix i and vec, so the output is
// identical at every worker count.
func (s *Sketcher) Sketch(vec []float64, dst []float64) []float64 {
	if len(vec) != s.rows*s.cols {
		panic(fmt.Sprintf("core: Sketch input length %d != %d*%d", len(vec), s.rows, s.cols))
	}
	if cap(dst) < s.k {
		dst = make([]float64, s.k)
	}
	dst = dst[:s.k]
	workers := s.workers
	if s.k*len(vec) < sketchParallelMinFlops {
		workers = 1
	}
	parallel.Blocks(workers, s.k, func(lo, hi, _ int) {
		for i := lo; i < hi; i++ {
			m := s.mats[i]
			var dot float64
			for j, v := range vec {
				dot += v * m[j]
			}
			dst[i] = dot
		}
	})
	return dst
}

// Distance estimates the Lp distance between the tiles whose sketches are
// a and b. Both must have length k.
func (s *Sketcher) Distance(a, b []float64) float64 {
	return s.DistanceScratch(a, b, make([]float64, s.k))
}

// DistanceScratch is Distance with a caller-provided scratch buffer of
// length k, eliminating the per-comparison allocation on hot paths
// (a clustering run performs millions of comparisons).
func (s *Sketcher) DistanceScratch(a, b, scratch []float64) float64 {
	if len(a) != s.k || len(b) != s.k {
		panic(fmt.Sprintf("core: sketch lengths %d/%d != k=%d", len(a), len(b), s.k))
	}
	switch s.estimator {
	case EstimatorL2:
		var sum float64
		for i := range a {
			d := a[i] - b[i]
			sum += d * d
		}
		return math.Sqrt(sum / float64(s.k))
	default:
		return quantile.AbsMedianDiff(a, b, scratch) / s.scale
	}
}

// NewSketchDist returns the O(k) distance estimator over sketch vectors
// for (p, k, estimator) WITHOUT building random matrices — the merge
// half of a Sketcher, for processes (a scatter-gather coordinator) that
// compare sketches produced elsewhere but never sketch data themselves.
// The returned function is safe for concurrent use and applies exactly
// the arithmetic Sketcher.DistanceScratch does, so a distance computed
// from two shard-fetched sketches is bit-identical to the one the shard
// itself would have reported for the same vectors.
func NewSketchDist(p float64, k int, estimator Estimator) (func(a, b []float64) float64, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: sketch size k = %d must be positive", k)
	}
	if _, err := stable.New(p); err != nil {
		return nil, err
	}
	if estimator == EstimatorL2 && p != 2 {
		return nil, fmt.Errorf("core: EstimatorL2 requires p = 2, got p = %v", p)
	}
	if estimator == EstimatorAuto {
		if p == 2 {
			estimator = EstimatorL2
		} else {
			estimator = EstimatorMedian
		}
	}
	scale := stable.MedianAbs(p)
	scratchPool := &sync.Pool{New: func() any {
		buf := make([]float64, k)
		return &buf
	}}
	return func(a, b []float64) float64 {
		if len(a) != k || len(b) != k {
			panic(fmt.Sprintf("core: sketch lengths %d/%d != k=%d", len(a), len(b), k))
		}
		switch estimator {
		case EstimatorL2:
			var sum float64
			for i := range a {
				d := a[i] - b[i]
				sum += d * d
			}
			return math.Sqrt(sum / float64(k))
		default:
			buf := scratchPool.Get().(*[]float64)
			d := quantile.AbsMedianDiff(a, b, *buf) / scale
			scratchPool.Put(buf)
			return d
		}
	}, nil
}

// NormFromSketch estimates ‖x‖p of the tile whose sketch is a, using the
// fact that the all-zeros tile has the all-zeros sketch.
func (s *Sketcher) NormFromSketch(a []float64) float64 {
	zero := make([]float64, s.k)
	return s.DistanceScratch(a, zero, make([]float64, s.k))
}

// ConcurrentDist returns a distance function equivalent to Distance that
// is safe for concurrent use: scratch buffers come from a sync.Pool, so
// parallel clustering (cluster.Config.Workers > 1) can call it from many
// goroutines without the shared-scratch race of the obvious
// DistanceScratch closure, while the hot path stays allocation-free.
// The returned function is pure in its inputs, so parallel callers get
// the same values serial callers would.
func (s *Sketcher) ConcurrentDist() func(a, b []float64) float64 {
	pool := &sync.Pool{New: func() any {
		buf := make([]float64, s.k)
		return &buf
	}}
	return func(a, b []float64) float64 {
		buf := pool.Get().(*[]float64)
		d := s.DistanceScratch(a, b, *buf)
		pool.Put(buf)
		return d
	}
}
