package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/quantile"
	"repro/internal/table"
)

// Batched sketch-distance kernels. The serving layer answers many
// distance estimates per request; evaluating them one at a time repeats
// the same fixed costs (scratch allocation, per-call setup) N times and
// walks each sketch pair in isolation. The kernels here amortize those
// costs across the batch:
//
//   - Sketches are assembled into a LANE-MAJOR matrix: entry (lane l,
//     item i) lives at data[l*n+i]. The estimator inner loop then
//     iterates the k sketch lanes ONCE, updating all n running
//     estimates with a unit-stride sweep per lane — instead of n
//     independent k-lane sweeps, each touching its own scattered pair
//     of slices.
//   - All working memory comes from a package sync.Pool, so a
//     steady-state batch evaluation allocates O(1) per call, not per
//     item.
//
// Every batched result is bit-identical to its one-at-a-time
// counterpart (Pool.Distance / Sketcher.DistanceScratch): per item, the
// same differences enter the same estimator in the same lane order.

// batchBuf pools float64 scratch shared by the batch kernels. Buffers
// are handed out at the exact requested length but keep their grown
// capacity across uses.
var batchBuf = sync.Pool{New: func() any { return new([]float64) }}

func getBuf(n int) *[]float64 {
	bp := batchBuf.Get().(*[]float64)
	if cap(*bp) < n {
		*bp = make([]float64, n)
	}
	*bp = (*bp)[:n]
	return bp
}

func putBuf(bp *[]float64) { batchBuf.Put(bp) }

// SketchBatch computes the pool sketches of n rectangles into a
// lane-major matrix: the returned slice has length n*k with rect i's
// lane l at index l*n+i — the layout Sketcher.DistanceBatchLaneMajor
// consumes. dst is reused when it has capacity n*k. Each rect must
// individually satisfy CanSketch; the first failure aborts the batch
// (callers that need per-item errors validate up front).
func (pl *Pool) SketchBatch(rects []table.Rect, dst []float64) ([]float64, error) {
	n := len(rects)
	if cap(dst) < n*pl.k {
		dst = make([]float64, n*pl.k)
	}
	dst = dst[:n*pl.k]
	tmp := getBuf(pl.k)
	defer putBuf(tmp)
	for i, rect := range rects {
		sk, err := pl.Sketch(rect, *tmp)
		if err != nil {
			return nil, fmt.Errorf("core: batch sketch %d: %w", i, err)
		}
		// Scatter item i into column i of the lane-major matrix.
		for l, v := range sk {
			dst[l*n+i] = v
		}
	}
	return dst, nil
}

// DistanceBatchLaneMajor estimates n distances at once from two
// lane-major sketch matrices (layout of Pool.SketchBatch: entry (l, i)
// at index l*n+i; both must have length n*k). dst is reused when it has
// capacity n. Item i's estimate is bit-identical to
// DistanceScratch(a_i, b_i, ...) — same differences, same lane order,
// same estimator arithmetic.
//
// For the L2 estimator the loop is the lane-major sweep the layout
// exists for: each lane contributes one unit-stride pass updating all n
// running sums. The median estimator needs all k per-item differences
// before its selection step, so the kernel fills the |diff| matrix with
// the same lane-major sweep and then runs one pooled-scratch selection
// per item.
func (s *Sketcher) DistanceBatchLaneMajor(a, b []float64, n int, dst []float64) []float64 {
	if n < 0 || len(a) != n*s.k || len(b) != n*s.k {
		panic(fmt.Sprintf("core: batch sketch lengths %d/%d != n*k = %d*%d", len(a), len(b), n, s.k))
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	if n == 0 {
		return dst
	}
	switch s.estimator {
	case EstimatorL2:
		for i := range dst {
			dst[i] = 0
		}
		for l := 0; l < s.k; l++ {
			av, bv := a[l*n:(l+1)*n], b[l*n:(l+1)*n]
			for i, x := range av {
				d := x - bv[i]
				dst[i] += d * d
			}
		}
		for i := range dst {
			dst[i] = math.Sqrt(dst[i] / float64(s.k))
		}
	default:
		diffs := getBuf(n * s.k)
		work := getBuf(s.k)
		for l := 0; l < s.k; l++ {
			av, bv, dv := a[l*n:(l+1)*n], b[l*n:(l+1)*n], (*diffs)[l*n:(l+1)*n]
			for i, x := range av {
				dv[i] = math.Abs(x - bv[i])
			}
		}
		for i := range dst {
			// Gather item i's k differences in lane order — the exact
			// input AbsMedianDiff hands quantile.Median one at a time.
			w := *work
			for l := 0; l < s.k; l++ {
				w[l] = (*diffs)[l*n+i]
			}
			dst[i] = quantile.Median(w) / s.scale
		}
		putBuf(work)
		putBuf(diffs)
	}
	return dst
}

// DistanceBatch estimates the Lp distance of n rectangle pairs from
// their pool sketches in one pass: O(k) sketch assembly per item, then
// one lane-major estimator sweep over the whole batch. Result i is
// bit-identical to Distance(as[i], bs[i]). dst is reused when it has
// capacity n. Pairs may have different sizes from each other; within a
// pair the sizes must match.
func (pl *Pool) DistanceBatch(as, bs []table.Rect, dst []float64) ([]float64, error) {
	if len(as) != len(bs) {
		return nil, fmt.Errorf("core: batch of %d vs %d rects", len(as), len(bs))
	}
	n := len(as)
	for i := range as {
		if as[i].Rows != bs[i].Rows || as[i].Cols != bs[i].Cols {
			return nil, fmt.Errorf("core: distance between different-size rects %v and %v", as[i], bs[i])
		}
	}
	ma := getBuf(n * pl.k)
	mb := getBuf(n * pl.k)
	defer putBuf(ma)
	defer putBuf(mb)
	sa, err := pl.SketchBatch(as, *ma)
	if err != nil {
		return nil, err
	}
	sb, err := pl.SketchBatch(bs, *mb)
	if err != nil {
		return nil, err
	}
	return pl.refSketcher().DistanceBatchLaneMajor(sa, sb, n, dst), nil
}
