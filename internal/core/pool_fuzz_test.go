package core

// Fuzz target for Pool rectangle queries: any rectangle the pool accepts
// must produce exactly the Definition 4 compound sketch — the sum of the
// four corner-anchored dyadic sketches from the four independent sets,
// each computed brute-force as k direct dot products over the linearized
// tile (no FFT). This cross-checks dyadicFor's size selection, the
// corner-anchor arithmetic, AllPositions' FFT planes and the compound
// assembly against the straightforward definition.

import (
	"math"
	"sync"
	"testing"

	"repro/internal/table"
	"repro/internal/workload"
)

var fuzzPool struct {
	once sync.Once
	tb   *table.Table
	pl   *Pool
}

func fuzzPoolSetup(t testing.TB) (*table.Table, *Pool) {
	fuzzPool.once.Do(func() {
		fuzzPool.tb = workload.Random(32, 32, 3, 0xF0)
		pl, err := NewPool(fuzzPool.tb, 1.25, 8, 0xF1, PoolOptions{
			MinLogRows: 1, MaxLogRows: 3, MinLogCols: 1, MaxLogCols: 3,
		})
		if err != nil {
			panic(err)
		}
		fuzzPool.pl = pl
	})
	return fuzzPool.tb, fuzzPool.pl
}

// bruteForceCompound recomputes the pool sketch of rect from first
// principles: pick the dyadic size Definition 4 prescribes, linearize the
// four corner-anchored dyadic tiles, sketch each with the matching
// independent set's sketcher (direct dot products), and sum. For exactly
// dyadic rects only set 0's corner sketch is used, matching Pool.Sketch.
func bruteForceCompound(t *testing.T, tb *table.Table, pl *Pool, rect table.Rect) []float64 {
	t.Helper()
	ei, err := dyadicFor(rect.Rows, pl.opts.MinLogRows, pl.opts.MaxLogRows)
	if err != nil {
		t.Fatal(err)
	}
	ej, err := dyadicFor(rect.Cols, pl.opts.MinLogCols, pl.opts.MaxLogCols)
	if err != nil {
		t.Fatal(err)
	}
	a, b := 1<<ei, 1<<ej
	sets := pl.entries[[2]int{ei, ej}]
	sketchAt := func(set, r0, c0 int) []float64 {
		vec := tb.Linearize(table.Rect{R0: r0, C0: c0, Rows: a, Cols: b}, nil)
		return sets[set].Sketcher().Sketch(vec, nil)
	}
	if rect.Rows == a && rect.Cols == b {
		return sketchAt(0, rect.R0, rect.C0)
	}
	r2 := rect.R0 + rect.Rows - a
	c2 := rect.C0 + rect.Cols - b
	out := make([]float64, pl.k)
	for _, s := range [][]float64{
		sketchAt(0, rect.R0, rect.C0),
		sketchAt(1, r2, rect.C0),
		sketchAt(2, rect.R0, c2),
		sketchAt(3, r2, c2),
	} {
		for j, v := range s {
			out[j] += v
		}
	}
	return out
}

func FuzzPoolSketchRect(f *testing.F) {
	f.Add(0, 0, 4, 8)   // exact dyadic
	f.Add(3, 5, 7, 11)  // compound
	f.Add(10, 2, 13, 6) // compound, both extents odd-sized
	f.Add(24, 24, 8, 8) // dyadic at the far corner
	f.Add(1, 1, 2, 2)   // smallest pooled size
	f.Fuzz(func(t *testing.T, r0, c0, rows, cols int) {
		tb, pl := fuzzPoolSetup(t)
		rect := table.Rect{R0: r0, C0: c0, Rows: rows, Cols: cols}
		if pl.CanSketch(rect) != nil {
			t.Skip()
		}
		got, err := pl.Sketch(rect, nil)
		if err != nil {
			t.Fatalf("CanSketch accepted %v but Sketch failed: %v", rect, err)
		}
		want := bruteForceCompound(t, tb, pl, rect)
		for i := range want {
			// FFT round-off vs direct dot products: tight relative band.
			tol := 1e-8 * (1 + math.Abs(want[i]))
			if math.Abs(got[i]-want[i]) > tol {
				t.Errorf("rect %v entry %d: pool %v, brute force %v", rect, i, got[i], want[i])
			}
		}
	})
}
