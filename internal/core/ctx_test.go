package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"

	"repro/internal/faultinject"
)

func TestAllPositionsCtxMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	tb := randTable(rng, 24, 24)
	for _, workers := range []int{1, 3} {
		sk, err := NewSketcher(1, 6, 4, 4, 5, EstimatorAuto)
		if err != nil {
			t.Fatal(err)
		}
		sk.SetWorkers(workers)
		want := sk.AllPositions(tb)
		got, err := sk.AllPositionsCtx(context.Background(), tb)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got.data) != len(want.data) {
			t.Fatalf("workers=%d: payload length %d vs %d", workers, len(got.data), len(want.data))
		}
		for i := range got.data {
			if got.data[i] != want.data[i] {
				t.Fatalf("workers=%d: payload differs at %d", workers, i)
			}
		}
	}
}

func TestAllPositionsCtxCancelled(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	tb := randTable(rng, 16, 16)
	sk, err := NewSketcher(1, 8, 4, 4, 5, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ps, err := sk.AllPositionsCtx(ctx, tb)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ps != nil {
		t.Fatal("cancelled run published a plane set")
	}
}

func TestNewPoolPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	tb := randTable(rng, 16, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pool, err := NewPool(tb, 1, 4, 7, PoolOptions{
		MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2,
		Context: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pool != nil {
		t.Fatal("cancelled build published a pool")
	}
}

func TestNewPoolCancelMidBuild(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 13))
	tb := randTable(rng, 32, 32)
	// A deterministic ^C: the countdown context flips to cancelled on a
	// fixed Err() poll, partway through the job fan-out.
	ctx := faultinject.CancelAfterChecks(context.Background(), 6)
	pool, err := NewPool(tb, 1, 4, 7, PoolOptions{
		MinLogRows: 1, MaxLogRows: 3, MinLogCols: 1, MaxLogCols: 3,
		Workers: 2, Context: ctx,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if pool != nil {
		t.Fatal("cancelled build published a pool")
	}
}

func TestNewPoolWithContextMatchesWithout(t *testing.T) {
	rng := rand.New(rand.NewPCG(14, 14))
	tb := randTable(rng, 32, 32)
	opts := PoolOptions{MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 3}
	want, err := NewPool(tb, 1, 6, 21, opts)
	if err != nil {
		t.Fatal(err)
	}
	optsCtx := opts
	optsCtx.Context = context.Background()
	optsCtx.Workers = 3
	got, err := NewPool(tb, 1, 6, 21, optsCtx)
	if err != nil {
		t.Fatal(err)
	}
	for key, sets := range want.entries {
		gsets, ok := got.entries[key]
		if !ok {
			t.Fatalf("size %v missing", key)
		}
		for s := range sets {
			for i := range sets[s].data {
				if sets[s].data[i] != gsets[s].data[i] {
					t.Fatalf("size %v set %d differs at %d", key, s, i)
				}
			}
		}
	}
}
