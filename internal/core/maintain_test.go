package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/table"
)

func newMaintained(t *testing.T, rows, cols, tileEdge, k int) (*TileSketchSet, *table.Table, *table.Grid, *Sketcher) {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	tb := randTable(rng, rows, cols)
	g, err := table.NewGrid(rows, cols, tileEdge, tileEdge)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := NewSketcher(1, k, tileEdge, tileEdge, 77, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	set, err := NewTileSketchSet(tb, g, sk)
	if err != nil {
		t.Fatal(err)
	}
	return set, tb, g, sk
}

func TestNewTileSketchSetValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	tb := randTable(rng, 8, 8)
	g, _ := table.NewGrid(8, 8, 4, 4)
	sk, _ := NewSketcher(1, 4, 2, 2, 5, EstimatorAuto) // wrong tile size
	if _, err := NewTileSketchSet(tb, g, sk); err == nil {
		t.Error("expected tile-size mismatch error")
	}
}

func TestTileSketchSetInitialSketchesMatchDirect(t *testing.T) {
	set, tb, g, sk := newMaintained(t, 12, 12, 4, 6)
	for i := 0; i < set.NumTiles(); i++ {
		want := sk.Sketch(tb.Linearize(g.Rect(i), nil), nil)
		got := set.Sketch(i)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("tile %d entry %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestTileSketchSetUpdateMatchesResketch(t *testing.T) {
	set, tb, g, sk := newMaintained(t, 12, 12, 4, 8)
	rng := rand.New(rand.NewPCG(9, 9))
	for step := 0; step < 500; step++ {
		r, c := rng.IntN(12), rng.IntN(12)
		if rng.IntN(2) == 0 {
			set.Set(r, c, rng.NormFloat64()*50)
		} else {
			set.Add(r, c, rng.NormFloat64()*10)
		}
	}
	if set.Updates() != 500 {
		t.Errorf("Updates = %d, want 500", set.Updates())
	}
	for i := 0; i < set.NumTiles(); i++ {
		want := sk.Sketch(tb.Linearize(g.Rect(i), nil), nil)
		got := set.Sketch(i)
		for j := range want {
			if math.Abs(got[j]-want[j]) > 1e-8*(1+math.Abs(want[j])) {
				t.Fatalf("after updates, tile %d entry %d drifted: %v vs %v",
					i, j, got[j], want[j])
			}
		}
	}
}

func TestTileSketchSetNoOpUpdate(t *testing.T) {
	set, tb, _, _ := newMaintained(t, 8, 8, 4, 4)
	before := append([]float64(nil), set.Sketch(0)...)
	set.Set(1, 1, tb.At(1, 1)) // same value: delta 0
	after := set.Sketch(0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("no-op update changed sketch")
		}
	}
}

func TestTileSketchSetMarginCells(t *testing.T) {
	// 10x10 table with 4x4 tiles: rows/cols 8,9 are in the dropped margin.
	set, tb, _, _ := newMaintained(t, 10, 10, 4, 4)
	sketches := make([][]float64, set.NumTiles())
	for i := range sketches {
		sketches[i] = append([]float64(nil), set.Sketch(i)...)
	}
	set.Set(9, 9, 1234)
	if tb.At(9, 9) != 1234 {
		t.Error("margin update did not reach the table")
	}
	for i := range sketches {
		got := set.Sketch(i)
		for j := range sketches[i] {
			if sketches[i][j] != got[j] {
				t.Fatal("margin update changed a tile sketch")
			}
		}
	}
}

func TestTileSketchSetDistance(t *testing.T) {
	set, tb, g, sk := newMaintained(t, 8, 8, 4, 301)
	want := sk.Distance(
		sk.Sketch(tb.Linearize(g.Rect(0), nil), nil),
		sk.Sketch(tb.Linearize(g.Rect(3), nil), nil))
	if got := set.Distance(0, 3); math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("Distance = %v, want %v", got, want)
	}
}

func TestTileSketchSetResketch(t *testing.T) {
	set, _, _, _ := newMaintained(t, 8, 8, 4, 4)
	set.Add(0, 0, 5)
	before := append([]float64(nil), set.Sketch(0)...)
	set.Resketch(0)
	after := set.Sketch(0)
	for i := range before {
		if math.Abs(before[i]-after[i]) > 1e-9*(1+math.Abs(after[i])) {
			t.Fatalf("Resketch diverged from maintained sketch at %d: %v vs %v",
				i, before[i], after[i])
		}
	}
}
