package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/lpnorm"
	"repro/internal/table"
)

func randTable(rng *rand.Rand, rows, cols int) *table.Table {
	t := table.New(rows, cols)
	d := t.Data()
	for i := range d {
		d[i] = rng.NormFloat64() * 100
	}
	return t
}

func TestAllPositionsFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	tb := randTable(rng, 17, 23)
	sk, _ := NewSketcher(1, 5, 4, 6, 31, EstimatorAuto)
	fast := sk.AllPositions(tb)
	slow := sk.AllPositionsNaive(tb)
	fr, fc := fast.Positions()
	sr, sc := slow.Positions()
	if fr != sr || fc != sc {
		t.Fatalf("position dims differ: %dx%d vs %dx%d", fr, fc, sr, sc)
	}
	if fr != 17-4+1 || fc != 23-6+1 {
		t.Fatalf("unexpected position dims %dx%d", fr, fc)
	}
	bufA := make([]float64, 5)
	bufB := make([]float64, 5)
	for r := 0; r < fr; r++ {
		for c := 0; c < fc; c++ {
			a := fast.SketchAt(r, c, bufA)
			b := slow.SketchAt(r, c, bufB)
			for i := range a {
				if math.Abs(a[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
					t.Fatalf("sketch at (%d,%d)[%d]: fft %v vs naive %v", r, c, i, a[i], b[i])
				}
			}
		}
	}
}

// The planned engine (shared spectrum + packed pairs + write-through)
// and the unplanned seed path (fresh transforms per matrix, transposing
// copy) are independent implementations of the same correlation; they
// must agree to FFT rounding on every lane, including the unpaired
// trailing matrix of an odd k.
func TestAllPositionsMatchesUnplanned(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	tb := randTable(rng, 21, 19)
	sk, _ := NewSketcher(1.25, 7, 5, 3, 29, EstimatorAuto)
	planned := sk.AllPositions(tb)
	unplanned := sk.AllPositionsUnplanned(tb)
	if len(planned.data) != len(unplanned.data) {
		t.Fatalf("data lengths differ: %d vs %d", len(planned.data), len(unplanned.data))
	}
	for i := range planned.data {
		if math.Abs(planned.data[i]-unplanned.data[i]) > 1e-6*(1+math.Abs(unplanned.data[i])) {
			t.Fatalf("lane value %d: planned %v vs unplanned %v",
				i, planned.data[i], unplanned.data[i])
		}
	}
}

func TestPlaneSketchMatchesDirectSketch(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	tb := randTable(rng, 12, 12)
	sk, _ := NewSketcher(1.5, 7, 4, 4, 37, EstimatorAuto)
	ps := sk.AllPositions(tb)
	for _, anchor := range [][2]int{{0, 0}, {3, 5}, {8, 8}} {
		rect := table.Rect{R0: anchor[0], C0: anchor[1], Rows: 4, Cols: 4}
		direct := sk.Sketch(tb.Linearize(rect, nil), nil)
		fromPlane := ps.SketchAt(anchor[0], anchor[1], nil)
		for i := range direct {
			if math.Abs(direct[i]-fromPlane[i]) > 1e-6*(1+math.Abs(direct[i])) {
				t.Fatalf("anchor %v entry %d: direct %v vs plane %v",
					anchor, i, direct[i], fromPlane[i])
			}
		}
	}
}

func TestPlaneDistanceApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	tb := randTable(rng, 20, 20)
	const k = 401
	for _, p := range []float64{1, 2} {
		sk, _ := NewSketcher(p, k, 8, 8, 41, EstimatorAuto)
		ps := sk.AllPositions(tb)
		lp := lpnorm.MustP(p)
		a := table.Rect{R0: 0, C0: 0, Rows: 8, Cols: 8}
		b := table.Rect{R0: 10, C0: 9, Rows: 8, Cols: 8}
		exact := lp.Dist(tb.Linearize(a, nil), tb.Linearize(b, nil))
		est := ps.Distance(a.R0, a.C0, b.R0, b.C0)
		if rel := math.Abs(est-exact) / exact; rel > 0.3 {
			t.Errorf("p=%v: plane distance rel err %v (exact %v est %v)", p, rel, exact, est)
		}
	}
}

func TestPlaneSetPanics(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	tb := randTable(rng, 8, 8)
	sk, _ := NewSketcher(1, 3, 4, 4, 43, EstimatorAuto)
	ps := sk.AllPositions(tb)
	assertPanics(t, "row oob", func() { ps.SketchAt(5, 0, nil) })
	assertPanics(t, "col oob", func() { ps.SketchAt(0, 5, nil) })
	assertPanics(t, "neg", func() { ps.SketchAt(-1, 0, nil) })
	assertPanics(t, "add oob", func() { ps.AddSketchAt(9, 0, make([]float64, 3)) })
	assertPanics(t, "add len", func() { ps.AddSketchAt(0, 0, make([]float64, 2)) })

	big, _ := NewSketcher(1, 3, 9, 9, 43, EstimatorAuto)
	assertPanics(t, "tile too big", func() { big.AllPositions(tb) })
}

func TestAddSketchAtAccumulates(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	tb := randTable(rng, 8, 8)
	sk, _ := NewSketcher(1, 4, 2, 2, 47, EstimatorAuto)
	ps := sk.AllPositions(tb)
	acc := make([]float64, 4)
	ps.AddSketchAt(0, 0, acc)
	ps.AddSketchAt(1, 1, acc)
	s1 := ps.SketchAt(0, 0, nil)
	s2 := ps.SketchAt(1, 1, nil)
	for i := range acc {
		if math.Abs(acc[i]-(s1[i]+s2[i])) > 1e-12 {
			t.Fatalf("accumulation wrong at %d: %v vs %v", i, acc[i], s1[i]+s2[i])
		}
	}
}

func TestPlaneSketcherAccessor(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	tb := randTable(rng, 8, 8)
	sk, _ := NewSketcher(1, 4, 2, 2, 51, EstimatorAuto)
	ps := sk.AllPositions(tb)
	if ps.Sketcher() != sk {
		t.Error("Sketcher accessor mismatch")
	}
}
