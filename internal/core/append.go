package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/fft"
	"repro/internal/parallel"
	"repro/internal/table"
)

// Incremental dyadic pool maintenance. p-stable sketches are linear in
// the data (§3.2), and a dyadic tile whose columns lie entirely before
// an append is untouched by it (Definition 4) — so appending c columns
// to an N-column table only invalidates the O(rows·(c+M)) fringe of
// anchor positions whose tiles reach the new columns. The catch is
// byte-identity: a full-table FFT's rounding couples every output to
// every input column through the padded transform, so a fringe computed
// on a small slab can never bit-match a monolithic build. Panel mode
// (PoolOptions.PanelCols) removes the coupling by decree: the canonical
// build itself correlates in fixed overlap-save panels, each through a
// slab plan whose bytes depend only on that slab's columns. Append then
// recomputes exactly the panels whose slab reaches the appended columns
// and copies every other lane forward — the same per-panel FFTs a
// from-scratch panel build would run, hence byte-identical output.

// colPanels is the overlap-save decomposition of one dyadic column size
// 2^j over a cols-wide table: anchor columns are split into panels of
// width w = max(PanelCols, 2^j), and panel q is computed from the slab
// of table columns [q·w, q·w + w + b − 1) (zero-extended past the table
// edge), whose b−1 overlap fringe makes all w anchors of the panel
// valid correlations.
type colPanels struct {
	j, b, w int
	anchors int           // valid anchor columns: cols − b + 1
	qmin    int           // first panel to (re)compute this pass
	qnum    int           // total panels
	plans   []*fft.Plan2D // plans[q − qmin]
}

// firstDirtyPanel returns the first panel whose slab reaches a column
// ≥ fromCols. Panels before it saw bit-identical slab bytes before and
// after an append at fromCols — including identical zero extension — so
// their previously computed lanes are reusable verbatim. fromCols = 0
// marks every panel dirty (a from-scratch build).
func firstDirtyPanel(fromCols, w, b int) int {
	// Smallest q with q·w + w + b − 1 > fromCols, i.e. q ≥ ceil((fromCols−w−b+2)/w).
	return max(0, (fromCols-b+1)/w)
}

// buildPanels (re)computes, for every pooled size, all panels whose slab
// reaches a column ≥ fromCols, writing through into the already
// allocated plane sets. Slab plans are built first (one per (colsize,
// panel), shared by every row size and sketch set), then correlation
// jobs fan out per (rowsize, colsize, set); each job writes only its own
// plane set's lanes, so results are byte-identical at any worker count.
//
// minAnchor additionally floors every group's first panel at anchor
// column minAnchor (which must be a multiple of every panel width in
// play, i.e. of segment alignment): banded pools pass their sealed
// column count so no panel ever writes into a sealed (read-only,
// possibly memory-mapped) band. For a banded append the floor is
// provably redundant — the first dirty panel of an append at fromCols ≥
// sealed + b − 1 starts at or after the sealed boundary — but it turns a
// would-be silent corruption into the panelDst panic below.
func (pl *Pool) buildPanels(ctx context.Context, t *table.Table, workers, fromCols, minAnchor int) error {
	var groups []*colPanels
	for j := pl.opts.MinLogCols; j <= pl.opts.MaxLogCols; j++ {
		b := 1 << j
		g := &colPanels{j: j, b: b, w: max(pl.opts.PanelCols, b), anchors: pl.cols - b + 1}
		g.qnum = (g.anchors + g.w - 1) / g.w
		g.qmin = firstDirtyPanel(fromCols, g.w, b)
		if minAnchor > 0 {
			if minAnchor%g.w != 0 {
				return fmt.Errorf("core: sealed boundary %d not aligned to panel width %d (size 2^%d)",
					minAnchor, g.w, g.j)
			}
			if q := minAnchor / g.w; q > g.qmin {
				g.qmin = q
			}
		}
		if g.qmin >= g.qnum {
			continue // append narrower than the last panel's remaining room
		}
		g.plans = make([]*fft.Plan2D, g.qnum-g.qmin)
		groups = append(groups, g)
	}

	// Pass 1: slab plans, one forward FFT each, into per-(group, panel)
	// slots.
	type planJob struct {
		g *colPanels
		q int
	}
	var planJobs []planJob
	for _, g := range groups {
		for q := g.qmin; q < g.qnum; q++ {
			planJobs = append(planJobs, planJob{g, q})
		}
	}
	if err := parallel.ForCtx(ctx, workers, len(planJobs), func(n int) {
		pj := planJobs[n]
		g := pj.g
		pj.g.plans[pj.q-g.qmin] = fft.NewPlan2DSlab(t.Data(), pl.rows, pl.cols, pj.q*g.w, g.w+g.b-1)
	}); err != nil {
		return err
	}

	// Pass 2: correlations. Job (i, g, s) owns plane set (i, g.j, s)
	// entirely; panels and matrix pairs run serially inside it.
	type corrJob struct {
		i, s int
		g    *colPanels
	}
	var jobs []corrJob
	for i := pl.opts.MinLogRows; i <= pl.opts.MaxLogRows; i++ {
		for _, g := range groups {
			for s := 0; s < compoundSets; s++ {
				jobs = append(jobs, corrJob{i, s, g})
			}
		}
	}
	errs := make([]error, len(jobs))
	if err := parallel.ForCtx(ctx, workers, len(jobs), func(n int) {
		jb := jobs[n]
		g := jb.g
		ps := pl.entries[[2]int{jb.i, g.j}][jb.s]
		sk := ps.sk
		a, k := 1<<jb.i, pl.k
		for qi, plan := range g.plans {
			if err := ctx.Err(); err != nil {
				errs[n] = err
				return
			}
			c0a := (g.qmin + qi) * g.w
			sub := min(g.w, g.anchors-c0a)
			dst, rowStride := ps.panelDst(c0a)
			for pi := 0; pi < (k+1)/2; pi++ {
				i2 := 2 * pi
				var kernB, dstB []float64
				if i2+1 < k {
					kernB = sk.mats[i2+1]
					dstB = dst[i2+1:]
				}
				plan.CorrelatePairValidSub(sk.mats[i2], kernB, a, g.b, sub,
					dst[i2:], rowStride, k, dstB, rowStride, k)
			}
		}
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Append returns a new Pool over t, an extension of the pool's table by
// new columns on the right, reusing every sketch lane an append cannot
// have changed: only panels whose slab reaches the appended columns are
// recomputed (the same slab FFTs a from-scratch build over t would run),
// so the result is byte-identical to NewPool(t, ...) with this pool's
// parameters — asserted by the incremental-equivalence property tests.
//
// Requirements: the pool was built with PoolOptions.PanelCols > 0, t has
// the pool's row count, at least the pool's column count, and its first
// TableDims() columns are bit-identical to the data the pool was built
// over (the caller owns that contract; the sliding-window ingester
// satisfies it by construction). The receiver is never mutated — it
// remains valid for concurrent queries while and after Append runs, so a
// server can keep answering from the old pool until the new one is
// published. BaseCol carries over unchanged.
//
// Cost: O(pool bytes) to copy lanes forward plus one slab FFT pass over
// the dirty fringe — for a c-column append, O(rows·(c + PanelCols + M))
// anchor columns per size instead of all of them.
func (pl *Pool) Append(ctx context.Context, t *table.Table) (*Pool, error) {
	if pl.opts.PanelCols <= 0 {
		return nil, errors.New("core: Append requires a pool built with PoolOptions.PanelCols > 0")
	}
	if t.Rows() != pl.rows {
		return nil, fmt.Errorf("core: Append table has %d rows, pool was built over %d", t.Rows(), pl.rows)
	}
	if t.Cols() < pl.cols {
		return nil, fmt.Errorf("core: Append table has %d cols, fewer than the pool's %d", t.Cols(), pl.cols)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if t.Cols() == pl.cols {
		return pl, nil // nothing appended; the pool is immutable, so sharing is safe
	}
	np := &Pool{
		p: pl.p, k: pl.k, rows: pl.rows, cols: t.Cols(), seed: pl.seed,
		baseCol: pl.baseCol, opts: pl.opts,
		entries: make(map[[2]int][compoundSets]*PlaneSet, len(pl.entries)),
		banded:  pl.banded, sealed: pl.sealed,
	}
	// Copy every unsealed lane forward row by row (plane rows widen with
	// the table). Dirty panels are overwritten below; clean panels keep
	// these bytes, which the old build produced from bit-identical slabs.
	// A banded pool shares its sealed bands outright — they are immutable
	// and an append cannot reach them — so the forward copy shrinks from
	// O(pool bytes) to O(fringe bytes).
	for key, sets := range pl.entries {
		b := 1 << key[1]
		var nsets [compoundSets]*PlaneSet
		for s, ps := range sets {
			nps := &PlaneSet{sk: ps.sk, rows: ps.rows, cols: np.cols - b + 1}
			if ps.bands == nil {
				nps.data = make([]float64, nps.rows*nps.cols*np.k)
				rowOld, rowNew := ps.cols*np.k, nps.cols*np.k
				for r := 0; r < ps.rows; r++ {
					copy(nps.data[r*rowNew:r*rowNew+rowOld], ps.data[r*rowOld:(r+1)*rowOld])
				}
			} else {
				k := np.k
				old := &ps.bands[len(ps.bands)-1] // heap fringe, [sealed, ps.cols)
				nf := laneBand{c0: old.c0, c1: nps.cols,
					data: make([]float64, ps.rows*(nps.cols-old.c0)*k)}
				ow, nw := old.c1-old.c0, nf.c1-nf.c0
				for r := 0; r < ps.rows; r++ {
					copy(nf.data[r*nw*k:(r*nw+ow)*k], old.data[r*ow*k:(r+1)*ow*k])
				}
				nps.bands = append(append([]laneBand(nil), ps.bands[:len(ps.bands)-1]...), nf)
			}
			nsets[s] = nps
		}
		np.entries[key] = nsets
	}
	if err := np.buildPanels(ctx, t, parallel.Resolve(pl.opts.Workers), pl.cols, pl.sealed); err != nil {
		return nil, err
	}
	return np, nil
}

// panelDst returns the write destination for the panel whose first
// anchor column is c0a: the lane slice positioned at that anchor and the
// row stride of the underlying storage. For banded plane sets the panel
// must lie inside the heap fringe (the final band) — writing a sealed,
// possibly memory-mapped band is a bug, so it panics rather than
// corrupting shared bytes.
func (ps *PlaneSet) panelDst(c0a int) ([]float64, int) {
	k := ps.sk.k
	if ps.bands == nil {
		return ps.data[c0a*k:], ps.cols * k
	}
	fb := &ps.bands[len(ps.bands)-1]
	if c0a < fb.c0 || fb.ext {
		panic(fmt.Sprintf("core: panel write at anchor %d into sealed band (fringe starts at %d)",
			c0a, fb.c0))
	}
	return fb.data[(c0a-fb.c0)*k:], (fb.c1 - fb.c0) * k
}
