package core

// The parallel layer's design contract is strict determinism: every
// fan-out writes per-matrix / per-chunk results to disjoint pre-allocated
// slots, so the same seed must yield BYTE-identical output at any worker
// count. These tests pin that contract for each parallelized hot path;
// comparisons are on Float64bits, not within a tolerance.

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/table"
	"repro/internal/workload"
)

// workerCounts is the grid the determinism suite runs: serial, the
// smallest parallel split, and everything the machine has.
func workerCounts() []int {
	return []int{1, 2, runtime.GOMAXPROCS(0)}
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func TestSketchDeterministicAcrossWorkers(t *testing.T) {
	// 64 matrices × 32×32 tile = 65536 flops, above the parallel
	// threshold, so the fan-out really runs when workers > 1.
	const k, edge = 64, 32
	tb := workload.Random(edge, edge, 10, 3)
	vec := tb.Linearize(table.Rect{R0: 0, C0: 0, Rows: edge, Cols: edge}, nil)

	sk, err := NewSketcher(0.75, k, edge, edge, 99, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	ref := sk.SetWorkers(1).Sketch(vec, nil)
	for _, w := range workerCounts() {
		got := sk.SetWorkers(w).Sketch(vec, nil)
		if !bitsEqual(ref, got) {
			t.Errorf("Sketch with workers=%d differs from workers=1", w)
		}
	}
}

func TestAllPositionsDeterministicAcrossWorkers(t *testing.T) {
	tb := workload.Random(48, 40, 5, 11)
	const k = 8
	sk, err := NewSketcher(1.25, k, 8, 8, 42, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	ref := sk.SetWorkers(1).AllPositions(tb)
	for _, w := range workerCounts() {
		got := sk.SetWorkers(w).AllPositions(tb)
		if !bitsEqual(ref.data, got.data) {
			t.Errorf("AllPositions with workers=%d differs from workers=1", w)
		}
	}
}

// TestAllPositionsPlanDeterministic pins the shared-spectrum engine's
// half of the contract: one TablePlan used at any worker count — and by
// several AllPositionsPlan calls concurrently with each other in the
// parallel pool path — must yield the same bytes as a private per-call
// plan at workers=1. k is odd so the unpaired trailing kernel of the
// packed-pair scheme is exercised.
func TestAllPositionsPlanDeterministic(t *testing.T) {
	tb := workload.Random(40, 36, 6, 13)
	const k = 7
	sk, err := NewSketcher(0.8, k, 8, 4, 63, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	ref := sk.SetWorkers(1).AllPositions(tb) // private plan, serial
	tp := NewTablePlan(tb)
	for _, w := range workerCounts() {
		shared := sk.SetWorkers(w).AllPositionsPlan(tp)
		if !bitsEqual(ref.data, shared.data) {
			t.Errorf("shared-plan AllPositions with workers=%d differs from private-plan workers=1", w)
		}
		private := sk.SetWorkers(w).AllPositions(tb)
		if !bitsEqual(ref.data, private.data) {
			t.Errorf("private-plan AllPositions with workers=%d differs from workers=1", w)
		}
	}
}

// TestNewPoolPlaneDataDeterministicAcrossWorkers compares every float of
// every plane set (not just sampled sketches): the shared table spectrum
// is read-only and each packed pair writes its own lanes, so pool
// construction must be byte-identical at any worker count.
func TestNewPoolPlaneDataDeterministicAcrossWorkers(t *testing.T) {
	tb := workload.Random(32, 32, 7, 5)
	opts := PoolOptions{MinLogRows: 1, MaxLogRows: 3, MinLogCols: 1, MaxLogCols: 3}
	o := opts
	o.Workers = 1
	ref, err := NewPool(tb, 0.5, 9, 77, o) // odd k: unpaired trailing kernel
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts() {
		o := opts
		o.Workers = w
		pool, err := NewPool(tb, 0.5, 9, 77, o)
		if err != nil {
			t.Fatal(err)
		}
		for key, sets := range ref.entries {
			got := pool.entries[key]
			for s := range sets {
				if !bitsEqual(sets[s].data, got[s].data) {
					t.Errorf("size %v set %d: plane data with workers=%d differs from workers=1", key, s, w)
				}
			}
		}
	}
}

func TestPoolSketchDeterministicAcrossWorkers(t *testing.T) {
	tb := workload.Random(32, 32, 7, 5)
	opts := PoolOptions{MinLogRows: 1, MaxLogRows: 3, MinLogCols: 1, MaxLogCols: 3}
	rects := []table.Rect{
		{R0: 0, C0: 0, Rows: 4, Cols: 8},  // exact dyadic
		{R0: 3, C0: 5, Rows: 7, Cols: 11}, // compound
		{R0: 10, C0: 2, Rows: 13, Cols: 6},
	}

	o := opts
	o.Workers = 1
	refPool, err := NewPool(tb, 0.5, 16, 77, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts() {
		o := opts
		o.Workers = w
		pool, err := NewPool(tb, 0.5, 16, 77, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, rect := range rects {
			ref, err := refPool.Sketch(rect, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pool.Sketch(rect, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bitsEqual(ref, got) {
				t.Errorf("Pool.Sketch(%v) with workers=%d differs from workers=1", rect, w)
			}
		}
	}
}
