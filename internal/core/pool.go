package core

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/parallel"
	"repro/internal/table"
)

// compoundSets is the number of independent sketch sets per dyadic size.
// Definition 4 tiles an arbitrary rectangle with four overlapping dyadic
// rectangles, each of which must come from an independent set so the
// summed sketch remains a stable-projection sketch.
const compoundSets = 4

// PoolOptions configures which canonical dyadic tile sizes a Pool
// precomputes. All (2^i)×(2^j) sizes with MinLogRows ≤ i ≤ MaxLogRows and
// MinLogCols ≤ j ≤ MaxLogCols are built. The zero value is not valid;
// use DefaultPoolOptions for a table-appropriate default.
type PoolOptions struct {
	MinLogRows, MaxLogRows int
	MinLogCols, MaxLogCols int
	Estimator              Estimator
	// Workers bounds the goroutines building plane sets concurrently.
	// 0 means GOMAXPROCS; 1 forces serial construction. Results are
	// identical regardless (each plane set's randomness is seed-derived).
	Workers int
	// Context, when non-nil, makes NewPool cancellable: workers poll it
	// between plane-set jobs and correlation pairs, and a cancelled build
	// returns ctx.Err() with no partial pool published. A build that
	// completes is byte-identical whether or not a context was set. The
	// finished Pool does not retain the context.
	Context context.Context
	// PanelCols > 0 selects the panel-mode build: every dyadic column
	// size is correlated panel by panel through overlap-save slab plans
	// of width max(PanelCols, 2^j) instead of one monolithic table plan.
	// Panel mode is what makes Pool.Append incremental — an append only
	// recomputes panels whose slab reaches the new columns, and the
	// result is byte-identical to a from-scratch panel build because
	// both paths run the exact same per-panel FFTs. Panel-mode pools are
	// approximately (not bitwise) equal to monolithic pools of the same
	// data: FFT rounding differs across transform sizes. 0 (the
	// default) keeps the monolithic build.
	PanelCols int
	// BaseCol records the absolute stream column the pool's column 0
	// corresponds to — metadata for sliding-window maintenance (the
	// ingest layer trims old days and rebuilds with a shifted base). It
	// does not affect sketch computation; see Pool.HighWaterCols.
	BaseCol int
}

// DefaultPoolOptions covers every dyadic size from 2×2 up to the largest
// that fits the table — the paper's full canonical collection
// (Theorem 6 builds all O(log² N) sizes).
func DefaultPoolOptions(t *table.Table) PoolOptions {
	return PoolOptions{
		MinLogRows: 1, MaxLogRows: log2Floor(t.Rows()),
		MinLogCols: 1, MaxLogCols: log2Floor(t.Cols()),
	}
}

func log2Floor(n int) int {
	if n < 1 {
		panic(fmt.Sprintf("core: log2Floor(%d)", n))
	}
	return bits.Len(uint(n)) - 1
}

// Pool holds precomputed sketch plane sets for a canonical collection of
// dyadic tile sizes over one table (Theorem 6). It answers sketch and
// distance queries for arbitrary rectangles in O(k) time: exactly-dyadic
// rectangles read a single precomputed sketch; all others assemble a
// compound sketch from four overlapping dyadic sketches (Definition 4,
// Theorem 5, a 4(1+ε)-approximation).
//
// A Pool is immutable once NewPool returns; all query methods (Sketch,
// Distance, CanSketch, IsExact, ...) are safe for concurrent use.
type Pool struct {
	p          float64
	k          int
	rows, cols int // table dims
	seed       uint64
	baseCol    int // absolute stream column of table column 0
	opts       PoolOptions
	entries    map[[2]int][compoundSets]*PlaneSet

	// banded marks a pool whose plane sets use the banded column layout
	// (NewBandedPool / Reband / TrimSealed): anchor columns [0, sealed)
	// are sealed bands viewing externally owned memory (segment file
	// mappings), the rest is the heap fringe. sealed is in table-column
	// units, uniform across lanes. Heap pools have banded=false, sealed=0.
	banded bool
	sealed int
}

// NewPool precomputes plane sets for every configured dyadic size over t.
// Each size gets four independent Sketcher instances (seed-derived), so
// compound sketches satisfy the independence requirement of Theorem 5.
//
// Cost: O(compoundSets · k · N log N) time per size and
// compoundSets · k · N floats of memory per size, N = t.Size(). Callers
// with big tables should restrict the size range in opts.
func NewPool(t *table.Table, p float64, k int, seed uint64, opts PoolOptions) (*Pool, error) {
	if opts.MinLogRows < 0 || opts.MinLogCols < 0 ||
		opts.MinLogRows > opts.MaxLogRows || opts.MinLogCols > opts.MaxLogCols {
		return nil, fmt.Errorf("core: invalid pool size range %+v", opts)
	}
	if 1<<opts.MaxLogRows > t.Rows() || 1<<opts.MaxLogCols > t.Cols() {
		return nil, fmt.Errorf("core: pool max dyadic size %dx%d exceeds table %dx%d",
			1<<opts.MaxLogRows, 1<<opts.MaxLogCols, t.Rows(), t.Cols())
	}
	if opts.PanelCols < 0 || opts.BaseCol < 0 {
		return nil, fmt.Errorf("core: negative PanelCols %d or BaseCol %d", opts.PanelCols, opts.BaseCol)
	}
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	opts.Context = nil // the immutable Pool must not retain the build context
	baseCol := opts.BaseCol
	opts.BaseCol = 0 // pl.baseCol is authoritative (Append/trim move it)
	pl := &Pool{
		p: p, k: k, rows: t.Rows(), cols: t.Cols(), seed: seed, baseCol: baseCol, opts: opts,
		entries: make(map[[2]int][compoundSets]*PlaneSet),
	}
	// Validate the sketcher configuration once up front so worker errors
	// can only be programming bugs, not user-input ones.
	if _, err := NewSketcher(p, k, 1<<opts.MinLogRows, 1<<opts.MinLogCols, seed, opts.Estimator); err != nil {
		return nil, err
	}

	type job struct{ i, j, s int }
	var jobs []job
	for i := opts.MinLogRows; i <= opts.MaxLogRows; i++ {
		for j := opts.MinLogCols; j <= opts.MaxLogCols; j++ {
			pl.entries[[2]int{i, j}] = [compoundSets]*PlaneSet{}
			for s := 0; s < compoundSets; s++ {
				jobs = append(jobs, job{i, j, s})
			}
		}
	}
	workers := parallel.Resolve(opts.Workers)

	if opts.PanelCols > 0 {
		// Panel mode: allocate every (size, set) plane set with its
		// seeded sketcher, then correlate panel by panel through slab
		// plans. The same buildPanels pass serves Append, which is what
		// makes incremental and from-scratch builds byte-identical.
		results := make([]*PlaneSet, len(jobs))
		errs := make([]error, len(jobs))
		if err := parallel.ForCtx(ctx, workers, len(jobs), func(n int) {
			jb := jobs[n]
			sk, err := NewSketcher(p, k, 1<<jb.i, 1<<jb.j,
				poolSketcherSeed(seed, jb.i, jb.j, jb.s), opts.Estimator)
			if err != nil {
				errs[n] = err
				return
			}
			ps := &PlaneSet{sk: sk, rows: pl.rows - 1<<jb.i + 1, cols: pl.cols - 1<<jb.j + 1}
			ps.data = make([]float64, ps.rows*ps.cols*k)
			results[n] = ps
		}); err != nil {
			return nil, err
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		for n, jb := range jobs {
			sets := pl.entries[[2]int{jb.i, jb.j}]
			sets[jb.s] = results[n]
			pl.entries[[2]int{jb.i, jb.j}] = sets
		}
		if err := pl.buildPanels(ctx, t, workers, 0, 0); err != nil {
			return nil, err
		}
		return pl, nil
	}
	// When there are fewer jobs than workers, spread the surplus inside
	// each job's AllPositions fan-out (over the k matrices) instead of
	// leaving cores idle. Either split produces identical results.
	innerWorkers := 1
	if workers > len(jobs) {
		innerWorkers = (workers + len(jobs) - 1) / len(jobs)
	}

	// One shared correlation plan: the padded transform size depends only
	// on the table, so every (size × set × matrix) job correlates against
	// the same forward table spectrum, computed exactly once here. The
	// spectrum is read-only and the plan's scratch is pooled, so sharing
	// it across concurrent jobs is free of coordination.
	tp := NewTablePlan(t)

	// Each job writes only its own slot: results are position-addressed,
	// not scheduling-addressed, so construction is deterministic at any
	// worker count.
	results := make([]*PlaneSet, len(jobs))
	errs := make([]error, len(jobs))
	if err := parallel.ForCtx(ctx, workers, len(jobs), func(n int) {
		jb := jobs[n]
		// Distinct deterministic seed per (size, set): results do not
		// depend on scheduling.
		sk, err := NewSketcher(p, k, 1<<jb.i, 1<<jb.j,
			poolSketcherSeed(seed, jb.i, jb.j, jb.s), opts.Estimator)
		if err != nil {
			errs[n] = err
			return
		}
		sk.SetWorkers(innerWorkers)
		ps, err := sk.AllPositionsPlanCtx(ctx, tp)
		if err != nil {
			errs[n] = err
			return
		}
		results[n] = ps
	}); err != nil {
		// Cancelled (or a worker panicked): publish nothing.
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for n, jb := range jobs {
		sets := pl.entries[[2]int{jb.i, jb.j}]
		sets[jb.s] = results[n]
		pl.entries[[2]int{jb.i, jb.j}] = sets
	}
	return pl, nil
}

// P returns the Lp exponent of the pool's sketches.
func (pl *Pool) P() float64 { return pl.p }

// K returns the sketch size.
func (pl *Pool) K() int { return pl.k }

// NumSizes returns how many dyadic sizes the pool holds.
func (pl *Pool) NumSizes() int { return len(pl.entries) }

// Seed returns the seed every per-(size, set) sketcher seed derives
// from. Sketcher randomness depends only on (seed, dyadic size, set,
// lane) — never on column position — so pools with equal (p, k, seed,
// estimator) over different column slices of one logical table produce
// mutually comparable sketches; /v1/shardinfo exposes this for the
// coordinator's merge-compatibility check.
func (pl *Pool) Seed() uint64 { return pl.seed }

// TableDims returns the dimensions of the table the pool was built over,
// so holders of a loaded snapshot can validate query rectangles without
// the original table.
func (pl *Pool) TableDims() (rows, cols int) { return pl.rows, pl.cols }

// BaseCol returns the absolute stream column the pool's table column 0
// corresponds to (PoolOptions.BaseCol, carried unchanged through Append;
// a sliding-window trim rebuilds with a shifted base).
func (pl *Pool) BaseCol() int { return pl.baseCol }

// HighWaterCols returns the exclusive absolute stream column up to which
// the pool has ingested data: BaseCol() plus the pool's table width.
// Resume-after-crash compares this against the store's total columns and
// replays only the missing suffix, never recomputing from column 0.
func (pl *Pool) HighWaterCols() int { return pl.baseCol + pl.cols }

// PanelCols returns the configured panel width (0 = monolithic build;
// see PoolOptions.PanelCols).
func (pl *Pool) PanelCols() int { return pl.opts.PanelCols }

// refSketcher returns a deterministic representative sketcher: the
// distance estimator depends only on (p, k, scale, estimator), never on
// the tile size or random matrices, so any one of the pool's sketchers
// can compare sketches of any rectangle size.
func (pl *Pool) refSketcher() *Sketcher {
	return pl.entries[[2]int{pl.opts.MinLogRows, pl.opts.MinLogCols}][0].Sketcher()
}

// Estimator returns the resolved distance estimator the pool's sketchers
// apply (EstimatorL2 for p = 2 under EstimatorAuto, EstimatorMedian
// otherwise) — the progressive pruning layer needs it to pick the
// matching confidence-margin family.
func (pl *Pool) Estimator() Estimator { return pl.refSketcher().EstimatorKind() }

// Scale returns B(p), the median-|stable| unbiasing constant of the
// pool's estimator (see Sketcher.Scale).
func (pl *Pool) Scale() float64 { return pl.refSketcher().Scale() }

// SketchDist returns a distance function over pool sketches (as returned
// by Sketch for equal-size rectangles): O(k) per call, safe for
// concurrent use, allocation-free on the hot path. It is the DistFunc to
// hand to clustering when the points are pool sketches.
func (pl *Pool) SketchDist() func(a, b []float64) float64 {
	return pl.refSketcher().ConcurrentDist()
}

// poolSketcherSeed derives the deterministic per-(size, set) seed; saved
// pools rely on this derivation staying stable across versions.
func poolSketcherSeed(seed uint64, i, j, s int) uint64 {
	return seed ^ uint64(i)<<40 ^ uint64(j)<<20 ^ uint64(s)<<4 ^ 0x9e3779b97f4a7c15
}

// dyadicFor returns the exponent e such that tile extent 2^e tiles a
// rectangle extent of n (2^e ≤ n ≤ 2^(e+1)) within [minLog, maxLog],
// or an error when no configured size can tile n.
func dyadicFor(n, minLog, maxLog int) (int, error) {
	if n < 1<<minLog {
		return 0, fmt.Errorf("core: extent %d below smallest pooled dyadic size %d", n, 1<<minLog)
	}
	e := log2Floor(n)
	if e > maxLog {
		e = maxLog
	}
	if n > 2<<e {
		return 0, fmt.Errorf("core: extent %d exceeds twice the largest pooled dyadic size %d", n, 1<<maxLog)
	}
	return e, nil
}

// CanSketch reports whether the pool covers rectangles with the given
// extents (and, for the error path, why not).
func (pl *Pool) CanSketch(rect table.Rect) error {
	if !rect.In(pl.rows, pl.cols) {
		return fmt.Errorf("core: rect %v outside table %dx%d", rect, pl.rows, pl.cols)
	}
	if _, err := dyadicFor(rect.Rows, pl.opts.MinLogRows, pl.opts.MaxLogRows); err != nil {
		return err
	}
	if _, err := dyadicFor(rect.Cols, pl.opts.MinLogCols, pl.opts.MaxLogCols); err != nil {
		return err
	}
	return nil
}

// Sketch returns the pool sketch of rect in O(k) time: the exact dyadic
// sketch when rect is exactly a pooled dyadic size, otherwise the
// compound sketch of Definition 4 (sum of four overlapping dyadic
// sketches from the four independent sets).
//
// Sketches returned for equal-size rectangles are mutually comparable
// with Distance; comparing sketches of different-size rectangles is
// meaningless (as is their exact Lp distance).
func (pl *Pool) Sketch(rect table.Rect, dst []float64) ([]float64, error) {
	if err := pl.CanSketch(rect); err != nil {
		return nil, err
	}
	ei, _ := dyadicFor(rect.Rows, pl.opts.MinLogRows, pl.opts.MaxLogRows)
	ej, _ := dyadicFor(rect.Cols, pl.opts.MinLogCols, pl.opts.MaxLogCols)
	sets := pl.entries[[2]int{ei, ej}]
	a, b := 1<<ei, 1<<ej
	if cap(dst) < pl.k {
		dst = make([]float64, pl.k)
	}
	dst = dst[:pl.k]
	if rect.Rows == a && rect.Cols == b {
		// Exact dyadic rectangle: one sketch, full Theorem 1/2 guarantee.
		return sets[0].SketchAt(rect.R0, rect.C0, dst), nil
	}
	// Definition 4: tile the c×d rectangle with four a×b rectangles
	// anchored at the four corners, one per independent set.
	for i := range dst {
		dst[i] = 0
	}
	r2 := rect.R0 + rect.Rows - a
	c2 := rect.C0 + rect.Cols - b
	sets[0].AddSketchAt(rect.R0, rect.C0, dst)
	sets[1].AddSketchAt(r2, rect.C0, dst)
	sets[2].AddSketchAt(rect.R0, c2, dst)
	sets[3].AddSketchAt(r2, c2, dst)
	return dst, nil
}

// IsExact reports whether rect hits a pooled dyadic size exactly, i.e.
// whether Sketch returns a plain (non-compound) sketch with the full
// (1 ± ε) guarantee.
func (pl *Pool) IsExact(rect table.Rect) bool {
	if pl.CanSketch(rect) != nil {
		return false
	}
	ei, _ := dyadicFor(rect.Rows, pl.opts.MinLogRows, pl.opts.MaxLogRows)
	ej, _ := dyadicFor(rect.Cols, pl.opts.MinLogCols, pl.opts.MaxLogCols)
	return rect.Rows == 1<<ei && rect.Cols == 1<<ej
}

// Distance estimates the Lp distance between two equal-size rectangles
// from their pool sketches. For exact dyadic rectangles this is a
// (1 ± ε)-estimate (Theorems 1–2); otherwise it carries the compound
// overcount of Theorem 5 (between 1× and ~4× the true distance), which
// preserves relative comparisons between same-size rectangles.
func (pl *Pool) Distance(a, b table.Rect) (float64, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return 0, fmt.Errorf("core: distance between different-size rects %v and %v", a, b)
	}
	sa, err := pl.Sketch(a, nil)
	if err != nil {
		return 0, err
	}
	sb, err := pl.Sketch(b, nil)
	if err != nil {
		return 0, err
	}
	ei, _ := dyadicFor(a.Rows, pl.opts.MinLogRows, pl.opts.MaxLogRows)
	ej, _ := dyadicFor(a.Cols, pl.opts.MinLogCols, pl.opts.MaxLogCols)
	sk := pl.entries[[2]int{ei, ej}][0].Sketcher()
	return sk.DistanceScratch(sa, sb, make([]float64, pl.k)), nil
}

// MemoryBytes reports the approximate heap footprint of the pool's
// precomputed payloads (plane-set data plus the regenerable random
// matrices), the quantity to budget when choosing PoolOptions for big
// tables. Sealed bands viewing externally owned memory (segment
// mappings) are excluded — see MappedBytes.
func (pl *Pool) MemoryBytes() int64 {
	var total int64
	for _, sets := range pl.entries {
		for _, ps := range sets {
			if ps.bands == nil {
				total += int64(len(ps.data)) * 8
			} else {
				for bi := range ps.bands {
					if !ps.bands[bi].ext {
						total += int64(len(ps.bands[bi].data)) * 8
					}
				}
			}
			sk := ps.sk
			total += int64(sk.k) * int64(sk.rows) * int64(sk.cols) * 8
		}
	}
	return total
}

// MappedBytes reports how many plane-set bytes view externally owned
// memory (typically read-only segment-file mappings) rather than the Go
// heap. Zero for heap pools.
func (pl *Pool) MappedBytes() int64 {
	var total int64
	for _, sets := range pl.entries {
		for _, ps := range sets {
			for bi := range ps.bands {
				if ps.bands[bi].ext {
					total += int64(len(ps.bands[bi].data)) * 8
				}
			}
		}
	}
	return total
}
