package core

import (
	"fmt"

	"repro/internal/table"
)

// Cache implements the "sketch on demand" scenario of Section 4.4: no
// sketches exist in advance; the first time a tile participates in a
// comparison its sketch is computed directly (k dot products over the
// tile, cost O(k·M)) and memoized, so every later comparison involving
// that tile costs only O(k). The paper shows this still beats exact
// computation 3–5× inside clustering, because each tile is compared many
// times.
//
// Cache is not safe for concurrent use; clustering drives it from a
// single goroutine.
type Cache struct {
	sk           *Sketcher
	t            *table.Table
	sketches     map[table.Rect][]float64
	hits, misses int
	scratch      []float64
}

// NewCache wraps table t with on-demand sketching by sk. All queried
// rectangles must match the sketcher's tile size.
func NewCache(t *table.Table, sk *Sketcher) *Cache {
	return &Cache{
		sk:       sk,
		t:        t,
		sketches: make(map[table.Rect][]float64),
		scratch:  make([]float64, sk.K()),
	}
}

// SketchOf returns the (memoized) sketch of rect. The returned slice is
// owned by the cache; callers must not modify it.
func (c *Cache) SketchOf(rect table.Rect) []float64 {
	if s, ok := c.sketches[rect]; ok {
		c.hits++
		return s
	}
	if rect.Rows != c.sk.Rows() || rect.Cols != c.sk.Cols() {
		panic(fmt.Sprintf("core: cache rect %v does not match sketcher tile %dx%d",
			rect, c.sk.Rows(), c.sk.Cols()))
	}
	c.misses++
	vec := c.t.Linearize(rect, nil)
	s := c.sk.Sketch(vec, nil)
	c.sketches[rect] = s
	return s
}

// Distance estimates the Lp distance between two tiles, sketching either
// on first use.
func (c *Cache) Distance(a, b table.Rect) float64 {
	sa := c.SketchOf(a)
	sb := c.SketchOf(b)
	return c.sk.DistanceScratch(sa, sb, c.scratch)
}

// Stats reports memoization effectiveness: hits (sketch reused) and
// misses (sketch computed).
func (c *Cache) Stats() (hits, misses int) { return c.hits, c.misses }

// Len returns how many sketches are currently memoized.
func (c *Cache) Len() int { return len(c.sketches) }
