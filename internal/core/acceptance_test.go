package core

// Statistical acceptance test for the median estimator at fractional p
// (Theorems 1–2): with sketch size k = KForAccuracy(ε, δ), the estimate
// median|s(x)−s(y)|/B(p) lies within (1±ε)·‖x−y‖p with probability at
// least 1−δ. Over many independent trials the empirical in-band fraction
// must therefore clear 1−δ up to binomial sampling slack. The RNG is
// fully seeded, so the test is reproducible — it never flakes, it only
// fails if the estimator (sampling, B(p), or the median) regresses.

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/lpnorm"
)

func TestMedianEstimatorMeetsTheoremBound(t *testing.T) {
	const (
		trials = 200
		eps    = 0.25
		delta  = 0.05
		dim    = 8 // tiles are dim×dim
	)
	// The Theorem 1–2 guarantee: each trial succeeds w.p. ≥ 1−δ = 0.95.
	// Allow three binomial standard deviations of slack
	// (σ = sqrt(δ(1−δ)/trials) ≈ 0.0154) so the threshold tests the
	// bound, not the luck of one seed: 0.95 − 3σ ≈ 0.9038.
	minFraction := (1 - delta) - 3*math.Sqrt(delta*(1-delta)/trials)

	for _, p := range []float64{0.5, 1.25} {
		t.Run(fmt.Sprintf("p=%v", p), func(t *testing.T) {
			// The exact p-dependent sketch size: the generic
			// KForAccuracy constant is far too small at p = 0.5, where
			// the stable density flattens near the median quantile.
			k, err := KForAccuracyAtP(p, eps, delta)
			if err != nil {
				t.Fatal(err)
			}
			lp := lpnorm.MustP(p)
			within := 0
			for trial := 0; trial < trials; trial++ {
				// Independent sketch randomness per trial: the theorem's
				// probability is over the random matrices.
				sk, err := NewSketcher(p, k, dim, dim, 0xACC0+uint64(trial), EstimatorMedian)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewPCG(0xDA7A, uint64(trial)))
				x := make([]float64, dim*dim)
				y := make([]float64, dim*dim)
				for i := range x {
					x[i] = rng.Float64()*4 - 2
					y[i] = rng.Float64()*4 - 2
				}
				exact := lp.Dist(x, y)
				est := sk.Distance(sk.Sketch(x, nil), sk.Sketch(y, nil))
				if est >= (1-eps)*exact && est <= (1+eps)*exact {
					within++
				}
			}
			frac := float64(within) / trials
			t.Logf("p=%v: k=%d, %d/%d trials within (1±%.2f)·exact (%.1f%%, need ≥ %.1f%%)",
				p, k, within, trials, eps, 100*frac, 100*minFraction)
			if frac < minFraction {
				t.Errorf("p=%v: only %.3f of trials within (1±%.2f)·‖x−y‖p, below the Theorem 1–2 bound %.3f",
					p, frac, eps, minFraction)
			}
		})
	}
}
