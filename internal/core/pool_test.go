package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/fft"
	"repro/internal/lpnorm"
	"repro/internal/table"
)

func smallPool(t *testing.T, tb *table.Table, p float64, k int) *Pool {
	t.Helper()
	pool, err := NewPool(tb, p, k, 777, PoolOptions{
		MinLogRows: 1, MaxLogRows: 3,
		MinLogCols: 1, MaxLogCols: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pool
}

func TestNewPoolValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	tb := randTable(rng, 16, 16)
	if _, err := NewPool(tb, 1, 4, 1, PoolOptions{MinLogRows: -1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2}); err == nil {
		t.Error("negative min log: expected error")
	}
	if _, err := NewPool(tb, 1, 4, 1, PoolOptions{MinLogRows: 3, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2}); err == nil {
		t.Error("min > max: expected error")
	}
	if _, err := NewPool(tb, 1, 4, 1, PoolOptions{MinLogRows: 1, MaxLogRows: 5, MinLogCols: 1, MaxLogCols: 2}); err == nil {
		t.Error("dyadic size exceeding table: expected error")
	}
	if _, err := NewPool(tb, 7, 4, 1, PoolOptions{MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2}); err == nil {
		t.Error("bad p: expected error")
	}
}

// TestNewPoolComputesOneTableSpectrum is the shared-spectrum engine's
// headline invariant: the padded transform size depends only on the
// table, so pool construction performs exactly ONE forward table FFT no
// matter how many (dyadic size × subpool × matrix) correlation jobs run.
// The seed path paid this transform numSizes × compoundSets × k times.
func TestNewPoolComputesOneTableSpectrum(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	tb := randTable(rng, 32, 32)
	for _, workers := range []int{1, 0} {
		before := fft.TableSpectrumCount()
		if _, err := NewPool(tb, 1, 8, 5, PoolOptions{
			MinLogRows: 1, MaxLogRows: 4, MinLogCols: 1, MaxLogCols: 4,
			Workers: workers,
		}); err != nil {
			t.Fatal(err)
		}
		if d := fft.TableSpectrumCount() - before; d != 1 {
			t.Errorf("workers=%d: NewPool computed %d forward table spectra, want exactly 1", workers, d)
		}
	}
}

func TestDefaultPoolOptions(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	tb := randTable(rng, 20, 33)
	opts := DefaultPoolOptions(tb)
	if opts.MaxLogRows != 4 { // 2^4=16 <= 20 < 32
		t.Errorf("MaxLogRows = %d, want 4", opts.MaxLogRows)
	}
	if opts.MaxLogCols != 5 { // 2^5=32 <= 33
		t.Errorf("MaxLogCols = %d, want 5", opts.MaxLogCols)
	}
}

func TestPoolNumSizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	tb := randTable(rng, 16, 16)
	pool := smallPool(t, tb, 1, 4)
	if pool.NumSizes() != 9 { // logs {1,2,3} x {1,2,3}
		t.Errorf("NumSizes = %d, want 9", pool.NumSizes())
	}
	if pool.P() != 1 || pool.K() != 4 {
		t.Error("accessor mismatch")
	}
}

func TestPoolCanSketch(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	tb := randTable(rng, 16, 16)
	pool := smallPool(t, tb, 1, 4)
	ok := []table.Rect{
		{R0: 0, C0: 0, Rows: 2, Cols: 2},   // smallest dyadic
		{R0: 0, C0: 0, Rows: 8, Cols: 8},   // largest dyadic
		{R0: 2, C0: 3, Rows: 5, Cols: 7},   // odd sizes
		{R0: 0, C0: 0, Rows: 16, Cols: 16}, // 2x largest dyadic
		{R0: 5, C0: 5, Rows: 11, Cols: 3},
	}
	for _, r := range ok {
		if err := pool.CanSketch(r); err != nil {
			t.Errorf("CanSketch(%v): unexpected error %v", r, err)
		}
	}
	bad := []table.Rect{
		{R0: 0, C0: 0, Rows: 1, Cols: 4},   // below min dyadic
		{R0: 0, C0: 0, Rows: 17, Cols: 4},  // outside table
		{R0: 15, C0: 15, Rows: 4, Cols: 4}, // escapes table
	}
	for _, r := range bad {
		if err := pool.CanSketch(r); err == nil {
			t.Errorf("CanSketch(%v): expected error", r)
		}
	}
}

func TestPoolExactDyadicMatchesSketcher(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	tb := randTable(rng, 16, 16)
	pool := smallPool(t, tb, 1, 8)
	rect := table.Rect{R0: 3, C0: 2, Rows: 4, Cols: 8}
	if !pool.IsExact(rect) {
		t.Fatal("4x8 should be exact in pool")
	}
	s, err := pool.Sketch(rect, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 8 {
		t.Fatalf("sketch len %d, want 8", len(s))
	}
	// The exact sketch must equal sketching the linearized tile with the
	// same seed-derived sketcher (set 0 of size (2,3)).
	sk, _ := NewSketcher(1, 8, 4, 8, poolSketcherSeed(777, 2, 3, 0), EstimatorAuto)
	direct := sk.Sketch(tb.Linearize(rect, nil), nil)
	for i := range s {
		if math.Abs(s[i]-direct[i]) > 1e-6*(1+math.Abs(direct[i])) {
			t.Fatalf("entry %d: pool %v vs direct %v", i, s[i], direct[i])
		}
	}
}

func TestPoolIsExact(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	tb := randTable(rng, 16, 16)
	pool := smallPool(t, tb, 1, 4)
	if !pool.IsExact(table.Rect{Rows: 4, Cols: 4}) {
		t.Error("4x4 should be exact")
	}
	if pool.IsExact(table.Rect{Rows: 5, Cols: 4}) {
		t.Error("5x4 should be compound")
	}
	if pool.IsExact(table.Rect{Rows: 16, Cols: 16}) {
		t.Error("16x16 exceeds pooled sizes; compound")
	}
	if pool.IsExact(table.Rect{Rows: 99, Cols: 4}) {
		t.Error("unsketchable rect cannot be exact")
	}
}

func TestCompoundSketchIsSumOfFour(t *testing.T) {
	// White-box check of Definition 4: the compound sketch equals the sum
	// of the four corner-anchored dyadic sketches from the four sets.
	rng := rand.New(rand.NewPCG(7, 7))
	tb := randTable(rng, 16, 16)
	pool := smallPool(t, tb, 1, 6)
	rect := table.Rect{R0: 1, C0: 2, Rows: 6, Cols: 5} // dyadic 4x4 tiling
	s, err := pool.Sketch(rect, nil)
	if err != nil {
		t.Fatal(err)
	}
	sets := pool.entries[[2]int{2, 2}]
	want := make([]float64, 6)
	sets[0].AddSketchAt(1, 2, want)
	sets[1].AddSketchAt(3, 2, want) // 1 + 6 - 4
	sets[2].AddSketchAt(1, 3, want) // 2 + 5 - 4
	sets[3].AddSketchAt(3, 3, want)
	for i := range s {
		if math.Abs(s[i]-want[i]) > 1e-9 {
			t.Fatalf("entry %d: %v vs %v", i, s[i], want[i])
		}
	}
}

// TestCompoundDistanceSandwich verifies Theorem 5's guarantee shape: the
// compound estimate lies between (1-ε)·d and ~4^(1/p)·(1+ε)·d of the true
// distance d (each cell of the difference is covered 1–4 times by the
// overlapping tiling, and m copies of a cell scale its contribution by
// m^p inside the p-norm, so the total inflation is at most 4^(1/p)... for
// p ≤ 1 — for p ≥ 1 at most 4). We use generous slack for the statistical
// estimator on top of the deterministic tiling bias.
func TestCompoundDistanceSandwich(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	tb := randTable(rng, 32, 32)
	for _, p := range []float64{1, 2} {
		pool, err := NewPool(tb, p, 201, 901, PoolOptions{
			MinLogRows: 1, MaxLogRows: 3,
			MinLogCols: 1, MaxLogCols: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		lp := lpnorm.MustP(p)
		rects := [][2]table.Rect{
			{{R0: 0, C0: 0, Rows: 6, Cols: 6}, {R0: 20, C0: 20, Rows: 6, Cols: 6}},
			{{R0: 1, C0: 3, Rows: 11, Cols: 7}, {R0: 17, C0: 9, Rows: 11, Cols: 7}},
			{{R0: 2, C0: 2, Rows: 15, Cols: 13}, {R0: 16, C0: 18, Rows: 15, Cols: 13}},
		}
		for _, pair := range rects {
			a, b := pair[0], pair[1]
			exact := lp.Dist(tb.Linearize(a, nil), tb.Linearize(b, nil))
			est, err := pool.Distance(a, b)
			if err != nil {
				t.Fatal(err)
			}
			lo := 0.6 * exact
			hi := 4.0 / math.Pow(4, 1/p-1) * 1.5 * exact // 4^(1/p) slackened
			if p >= 1 {
				hi = 4 * 1.5 * exact
			}
			if est < lo || est > hi {
				t.Errorf("p=%v rects %v/%v: compound estimate %v outside [%v, %v] (exact %v)",
					p, a, b, est, lo, hi, exact)
			}
		}
	}
}

func TestPoolDistanceExactRects(t *testing.T) {
	// For exactly dyadic rects the pool distance carries the full sketch
	// guarantee; check tight accuracy.
	rng := rand.New(rand.NewPCG(9, 9))
	tb := randTable(rng, 32, 32)
	pool, err := NewPool(tb, 1, 301, 903, PoolOptions{
		MinLogRows: 2, MaxLogRows: 3,
		MinLogCols: 2, MaxLogCols: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	lp := lpnorm.MustP(1)
	a := table.Rect{R0: 0, C0: 0, Rows: 8, Cols: 8}
	b := table.Rect{R0: 13, C0: 17, Rows: 8, Cols: 8}
	exact := lp.Dist(tb.Linearize(a, nil), tb.Linearize(b, nil))
	est, err := pool.Distance(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(est-exact) / exact; rel > 0.25 {
		t.Errorf("exact-dyadic pool distance rel err %v (exact %v est %v)", rel, exact, est)
	}
}

func TestPoolDistanceDifferentSizesErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	tb := randTable(rng, 16, 16)
	pool := smallPool(t, tb, 1, 4)
	_, err := pool.Distance(
		table.Rect{Rows: 4, Cols: 4},
		table.Rect{Rows: 5, Cols: 4})
	if err == nil {
		t.Error("expected error for different-size rects")
	}
}

func TestPoolSketchUnsketchable(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 11))
	tb := randTable(rng, 16, 16)
	pool := smallPool(t, tb, 1, 4)
	if _, err := pool.Sketch(table.Rect{Rows: 1, Cols: 1}, nil); err == nil {
		t.Error("expected error for too-small rect")
	}
}

func TestPoolSameRectZeroDistance(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	tb := randTable(rng, 16, 16)
	pool := smallPool(t, tb, 1.5, 9)
	r := table.Rect{R0: 2, C0: 2, Rows: 5, Cols: 6}
	d, err := pool.Distance(r, r)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("Distance(r, r) = %v, want 0", d)
	}
}

func TestDyadicFor(t *testing.T) {
	cases := []struct {
		n, minLog, maxLog int
		want              int
		wantErr           bool
	}{
		{4, 1, 3, 2, false},
		{5, 1, 3, 2, false},
		{8, 1, 3, 3, false},
		{16, 1, 3, 3, false}, // 2*8
		{17, 1, 3, 0, true},  // > 2*8
		{1, 1, 3, 0, true},   // below 2^1
		{2, 1, 3, 1, false},
		{3, 1, 3, 1, false},
	}
	for _, c := range cases {
		got, err := dyadicFor(c.n, c.minLog, c.maxLog)
		if c.wantErr {
			if err == nil {
				t.Errorf("dyadicFor(%d,%d,%d): expected error", c.n, c.minLog, c.maxLog)
			}
			continue
		}
		if err != nil {
			t.Errorf("dyadicFor(%d,%d,%d): %v", c.n, c.minLog, c.maxLog, err)
			continue
		}
		if got != c.want {
			t.Errorf("dyadicFor(%d,%d,%d) = %d, want %d", c.n, c.minLog, c.maxLog, got, c.want)
		}
	}
}

func TestNewPoolParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewPCG(20, 20))
	tb := randTable(rng, 32, 32)
	opts := PoolOptions{MinLogRows: 1, MaxLogRows: 3, MinLogCols: 1, MaxLogCols: 3}
	serialOpts := opts
	serialOpts.Workers = 1
	parallelOpts := opts
	parallelOpts.Workers = 8
	serial, err := NewPool(tb, 1, 8, 555, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewPool(tb, 1, 8, 555, parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	rects := []table.Rect{
		{R0: 0, C0: 0, Rows: 4, Cols: 4},
		{R0: 3, C0: 7, Rows: 6, Cols: 11},
		{R0: 10, C0: 2, Rows: 15, Cols: 9},
	}
	for _, r := range rects {
		a, err := serial.Sketch(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := parallel.Sketch(r, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("rect %v entry %d: serial %v vs parallel %v", r, i, a[i], b[i])
			}
		}
	}
}

func TestNewPoolRaceFree(t *testing.T) {
	// Exercised under -race in CI; just a concurrent build and query.
	rng := rand.New(rand.NewPCG(21, 21))
	tb := randTable(rng, 16, 16)
	pool, err := NewPool(tb, 2, 4, 1, PoolOptions{
		MinLogRows: 1, MaxLogRows: 2, MinLogCols: 1, MaxLogCols: 2, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pool.NumSizes() != 4 {
		t.Errorf("NumSizes = %d, want 4", pool.NumSizes())
	}
}

func TestPoolMemoryBytes(t *testing.T) {
	rng := rand.New(rand.NewPCG(30, 30))
	tb := randTable(rng, 16, 16)
	pool, err := NewPool(tb, 1, 4, 1, PoolOptions{
		MinLogRows: 2, MaxLogRows: 2, MinLogCols: 2, MaxLogCols: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// One 4x4 size, 4 sets: data = 4 * 13*13*4 floats; matrices = 4 * 4*16.
	want := int64(4*13*13*4+4*4*16) * 8
	if got := pool.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}
