package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/table"
)

func TestCacheMemoizes(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	tb := randTable(rng, 16, 16)
	sk, _ := NewSketcher(1, 9, 4, 4, 61, EstimatorAuto)
	c := NewCache(tb, sk)
	a := table.Rect{R0: 0, C0: 0, Rows: 4, Cols: 4}
	b := table.Rect{R0: 8, C0: 8, Rows: 4, Cols: 4}

	s1 := c.SketchOf(a)
	if hits, misses := c.Stats(); hits != 0 || misses != 1 {
		t.Errorf("after first sketch: hits %d misses %d", hits, misses)
	}
	s2 := c.SketchOf(a)
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("after repeat: hits %d misses %d", hits, misses)
	}
	if &s1[0] != &s2[0] {
		t.Error("memoized sketch is not the same slice")
	}
	_ = c.Distance(a, b)
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
}

func TestCacheDistanceMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	tb := randTable(rng, 16, 16)
	sk, _ := NewSketcher(2, 33, 4, 4, 67, EstimatorAuto)
	c := NewCache(tb, sk)
	a := table.Rect{R0: 1, C0: 2, Rows: 4, Cols: 4}
	b := table.Rect{R0: 9, C0: 5, Rows: 4, Cols: 4}
	got := c.Distance(a, b)
	want := sk.Distance(
		sk.Sketch(tb.Linearize(a, nil), nil),
		sk.Sketch(tb.Linearize(b, nil), nil))
	if math.Abs(got-want) > 1e-9*(1+want) {
		t.Errorf("cache distance %v vs direct %v", got, want)
	}
}

func TestCachePanicsWrongTileSize(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	tb := randTable(rng, 16, 16)
	sk, _ := NewSketcher(1, 5, 4, 4, 71, EstimatorAuto)
	c := NewCache(tb, sk)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched rect size")
		}
	}()
	c.SketchOf(table.Rect{Rows: 3, Cols: 4})
}
