package core

import (
	"context"
	"fmt"

	"repro/internal/fft"
	"repro/internal/parallel"
	"repro/internal/table"
)

// PlaneSet holds, for one Sketcher (one tile size, one set of k random
// matrices), the sketch entries for every position at which the tile fits
// inside a table: entry i at position (r, c) is the dot product of random
// matrix i with the tile whose top-left corner is (r, c). This is the
// precomputed pool of Theorem 3 from which any aligned sketch is read in
// O(k) time.
//
// Storage is position-major (the k entries of one position are adjacent),
// so reading a sketch is a single contiguous copy rather than k strided
// reads across k correlation planes — reading sketches is the hot path of
// every precomputed-distance query.
type PlaneSet struct {
	sk         *Sketcher
	rows, cols int       // valid positions: tableRows-a+1 × tableCols-b+1
	data       []float64 // data[(r*cols+c)*k + i]

	// bands, when non-nil, replaces data with a partition of the anchor
	// columns into contiguous bands, each stored row-major WITHIN the
	// band: band entry (r, c, i) lives at band.data[(r*(c1-c0)+c-c0)*k+i].
	// Sealed bands view externally owned memory (a segment file mapping);
	// the final band is the heap-resident fringe the panel builder writes
	// into. A nil bands slice is the plain contiguous heap layout above.
	bands []laneBand
}

// laneBand is one contiguous column band of a banded plane set: anchor
// columns [c0, c1), stored row-major within the band. ext marks data as
// externally owned (typically a read-only memory mapping): it must never
// be written and is not counted as heap memory.
type laneBand struct {
	c0, c1 int
	data   []float64
	ext    bool
}

// locate returns the backing slice and element offset of position (r, c)
// under either layout.
func (ps *PlaneSet) locate(r, c int) ([]float64, int) {
	k := ps.sk.k
	if ps.bands == nil {
		return ps.data, (r*ps.cols + c) * k
	}
	for bi := range ps.bands {
		b := &ps.bands[bi]
		if c < b.c1 {
			return b.data, (r*(b.c1-b.c0) + c - b.c0) * k
		}
	}
	panic(fmt.Sprintf("core: anchor column %d beyond banded plane set (%d bands, cols %d)",
		c, len(ps.bands), ps.cols))
}

// TablePlan is the frequency-domain correlation plan of one table: its
// padded forward 2D spectrum, computed once and shared read-only by every
// sketcher that builds plane sets over the table. Build one with
// NewTablePlan when several plane sets cover the same table (a dyadic
// pool, an interval pool, a multi-size experiment sweep) so the
// table-side FFT — half the transform work of a correlation — is paid a
// single time. Safe for concurrent use.
type TablePlan struct {
	t    *table.Table
	plan *fft.Plan2D
}

// NewTablePlan computes the shared correlation plan of t (one forward
// table FFT at the padded power-of-two size).
func NewTablePlan(t *table.Table) *TablePlan {
	return &TablePlan{t: t, plan: fft.NewPlan2D(t.Data(), t.Rows(), t.Cols())}
}

// Table returns the table the plan was built over.
func (tp *TablePlan) Table() *table.Table { return tp.t }

// AllPositions computes the PlaneSet of s over t using planned FFT
// cross-correlation (Theorem 3, O(k·N·log N) total). It builds a private
// TablePlan; callers computing several plane sets over the same table
// should build one TablePlan and use AllPositionsPlan so the table
// spectrum is shared.
func (s *Sketcher) AllPositions(t *table.Table) *PlaneSet {
	return s.AllPositionsPlan(NewTablePlan(t))
}

// AllPositionsCtx is AllPositions with cooperative cancellation: workers
// check ctx between correlation pairs, a cancelled run returns ctx.Err()
// with no plane set published, and a worker panic comes back as a
// *parallel.PanicError instead of crashing the process. A run that
// completes is byte-identical to AllPositions at any worker count.
func (s *Sketcher) AllPositionsCtx(ctx context.Context, t *table.Table) (*PlaneSet, error) {
	return s.AllPositionsPlanCtx(ctx, NewTablePlan(t))
}

// AllPositionsPlan computes the PlaneSet of s over the planned table. The
// k correlations ride the packed-pair engine — random matrices (2i, 2i+1)
// share one complex FFT round trip — and fan out over the sketcher's
// workers (SetWorkers) by pair. Pair i writes only the stride-k lanes
// ps.data[pos*k+2i] and ps.data[pos*k+2i+1] (written through directly by
// the correlation, no intermediate plane copy), so the plane set is
// byte-identical at any worker count.
func (s *Sketcher) AllPositionsPlan(tp *TablePlan) *PlaneSet {
	ps, err := s.AllPositionsPlanCtx(context.Background(), tp)
	if err != nil {
		// Background never cancels; only a recovered worker panic lands
		// here, and the no-error API re-raises it on the caller.
		panic(err)
	}
	return ps
}

// AllPositionsPlanCtx is AllPositionsPlan with the cancellation and
// panic-isolation contract of AllPositionsCtx.
func (s *Sketcher) AllPositionsPlanCtx(ctx context.Context, tp *TablePlan) (*PlaneSet, error) {
	t := tp.t
	ps := s.newPlaneSet(t)
	pairs := (s.k + 1) / 2
	err := parallel.ForCtx(ctx, s.workers, pairs, func(pi int) {
		i := 2 * pi
		var kernB, dstB []float64
		if i+1 < s.k {
			kernB = s.mats[i+1]
			dstB = ps.data[i+1:]
		}
		tp.plan.CorrelatePairValid(s.mats[i], kernB, s.rows, s.cols,
			ps.data[i:], s.k, dstB, s.k)
	})
	if err != nil {
		return nil, err
	}
	return ps, nil
}

// AllPositionsNaive is the O(k·N·M) direct-computation baseline, kept for
// verification and for the Theorem 3 crossover benchmark.
func (s *Sketcher) AllPositionsNaive(t *table.Table) *PlaneSet {
	return s.allPositionsPerMatrix(t, false)
}

// AllPositionsUnplanned is the pre-plan FFT path — a fresh pair of padded
// transforms per matrix and a transposing copy into position-major
// storage. Kept as the benchmark baseline the planned engine is measured
// against (BENCH_2.json) and as a second FFT implementation for
// cross-checks.
func (s *Sketcher) AllPositionsUnplanned(t *table.Table) *PlaneSet {
	return s.allPositionsPerMatrix(t, true)
}

func (s *Sketcher) newPlaneSet(t *table.Table) *PlaneSet {
	if s.rows > t.Rows() || s.cols > t.Cols() {
		panic(fmt.Sprintf("core: tile %dx%d larger than table %dx%d",
			s.rows, s.cols, t.Rows(), t.Cols()))
	}
	ps := &PlaneSet{
		sk:   s,
		rows: t.Rows() - s.rows + 1,
		cols: t.Cols() - s.cols + 1,
	}
	ps.data = make([]float64, ps.rows*ps.cols*s.k)
	return ps
}

func (s *Sketcher) allPositionsPerMatrix(t *table.Table, useFFT bool) *PlaneSet {
	ps := s.newPlaneSet(t)
	parallel.For(s.workers, s.k, func(i int) {
		var plane []float64
		if useFFT {
			plane = fft.CrossCorrelateValidUnplanned(
				t.Data(), t.Rows(), t.Cols(), s.mats[i], s.rows, s.cols)
		} else {
			plane = fft.CrossCorrelateValidNaive(
				t.Data(), t.Rows(), t.Cols(), s.mats[i], s.rows, s.cols)
		}
		// Transpose into position-major storage; lane i is touched by
		// this iteration only.
		for pos, v := range plane {
			ps.data[pos*s.k+i] = v
		}
	})
	return ps
}

// Sketcher returns the sketcher whose matrices produced this plane set.
func (ps *PlaneSet) Sketcher() *Sketcher { return ps.sk }

// Positions returns the number of valid (row, col) anchor positions.
func (ps *PlaneSet) Positions() (rows, cols int) { return ps.rows, ps.cols }

// SketchAt reads the sketch of the tile anchored at (r, c) into dst
// (allocated if too small) in O(k) time.
func (ps *PlaneSet) SketchAt(r, c int, dst []float64) []float64 {
	if r < 0 || r >= ps.rows || c < 0 || c >= ps.cols {
		panic(fmt.Sprintf("core: anchor (%d,%d) outside valid positions %dx%d",
			r, c, ps.rows, ps.cols))
	}
	k := ps.sk.k
	if cap(dst) < k {
		dst = make([]float64, k)
	}
	dst = dst[:k]
	src, base := ps.locate(r, c)
	copy(dst, src[base:base+k])
	return dst
}

// AddSketchAt accumulates the sketch at (r, c) into dst (len k), used to
// assemble compound sketches without temporaries.
func (ps *PlaneSet) AddSketchAt(r, c int, dst []float64) {
	if r < 0 || r >= ps.rows || c < 0 || c >= ps.cols {
		panic(fmt.Sprintf("core: anchor (%d,%d) outside valid positions %dx%d",
			r, c, ps.rows, ps.cols))
	}
	if len(dst) != ps.sk.k {
		panic(fmt.Sprintf("core: AddSketchAt dst length %d != k=%d", len(dst), ps.sk.k))
	}
	src, base := ps.locate(r, c)
	for i := range dst {
		dst[i] += src[base+i]
	}
}

// copyCols copies anchor columns [c0, c1) of the plane set into dst,
// row-major within the band (the layout a laneBand of width c1-c0 uses),
// under either storage layout. dst must have ps.rows*(c1-c0)*k elements.
func (ps *PlaneSet) copyCols(c0, c1 int, dst []float64) {
	k := ps.sk.k
	w := c1 - c0
	if ps.bands == nil {
		for r := 0; r < ps.rows; r++ {
			copy(dst[r*w*k:(r*w+w)*k], ps.data[(r*ps.cols+c0)*k:(r*ps.cols+c1)*k])
		}
		return
	}
	for bi := range ps.bands {
		b := &ps.bands[bi]
		lo, hi := c0, c1
		if b.c0 > lo {
			lo = b.c0
		}
		if b.c1 < hi {
			hi = b.c1
		}
		if lo >= hi {
			continue
		}
		bw := b.c1 - b.c0
		for r := 0; r < ps.rows; r++ {
			copy(dst[(r*w+lo-c0)*k:(r*w+hi-c0)*k],
				b.data[(r*bw+lo-b.c0)*k:(r*bw+hi-b.c0)*k])
		}
	}
}

// Distance estimates the Lp distance between the tiles anchored at
// (r1, c1) and (r2, c2) without materializing sketch vectors.
func (ps *PlaneSet) Distance(r1, c1, r2, c2 int) float64 {
	k := ps.sk.k
	a := ps.SketchAt(r1, c1, make([]float64, k))
	b := ps.SketchAt(r2, c2, make([]float64, k))
	return ps.sk.DistanceScratch(a, b, make([]float64, k))
}
