package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/lpnorm"
)

func TestKForAccuracy(t *testing.T) {
	k1, err := KForAccuracy(0.1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if k1%2 == 0 {
		t.Errorf("k = %d should be odd", k1)
	}
	k2, _ := KForAccuracy(0.2, 0.01)
	if k2 >= k1 {
		t.Errorf("larger eps should shrink k: %d vs %d", k2, k1)
	}
	k3, _ := KForAccuracy(0.1, 0.001)
	if k3 <= k1 {
		t.Errorf("smaller delta should grow k: %d vs %d", k3, k1)
	}
	for _, bad := range [][2]float64{{0, 0.1}, {1, 0.1}, {0.1, 0}, {0.1, 1}, {-1, 0.5}} {
		if _, err := KForAccuracy(bad[0], bad[1]); err == nil {
			t.Errorf("KForAccuracy(%v, %v): expected error", bad[0], bad[1])
		}
	}
}

func TestNewSketcherValidation(t *testing.T) {
	if _, err := NewSketcher(1, 0, 4, 4, 1, EstimatorAuto); err == nil {
		t.Error("k=0: expected error")
	}
	if _, err := NewSketcher(1, 8, 0, 4, 1, EstimatorAuto); err == nil {
		t.Error("rows=0: expected error")
	}
	if _, err := NewSketcher(3, 8, 4, 4, 1, EstimatorAuto); err == nil {
		t.Error("p=3: expected error")
	}
	if _, err := NewSketcher(1, 8, 4, 4, 1, EstimatorL2); err == nil {
		t.Error("EstimatorL2 with p=1: expected error")
	}
	sk, err := NewSketcher(1.5, 9, 4, 6, 1, EstimatorAuto)
	if err != nil {
		t.Fatal(err)
	}
	if sk.P() != 1.5 || sk.K() != 9 || sk.Rows() != 4 || sk.Cols() != 6 {
		t.Error("accessor mismatch")
	}
	if sk.Scale() <= 0 {
		t.Error("Scale must be positive")
	}
	if len(sk.Matrix(0)) != 24 {
		t.Error("Matrix length wrong")
	}
}

func TestSketcherDeterministic(t *testing.T) {
	a, _ := NewSketcher(1, 5, 3, 3, 42, EstimatorAuto)
	b, _ := NewSketcher(1, 5, 3, 3, 42, EstimatorAuto)
	for i := 0; i < 5; i++ {
		ma, mb := a.Matrix(i), b.Matrix(i)
		for j := range ma {
			if ma[j] != mb[j] {
				t.Fatalf("matrices differ at (%d,%d) for equal seeds", i, j)
			}
		}
	}
	c, _ := NewSketcher(1, 5, 3, 3, 43, EstimatorAuto)
	same := true
	for j := range a.Matrix(0) {
		if a.Matrix(0)[j] != c.Matrix(0)[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical matrices")
	}
}

func TestSketchLinearity(t *testing.T) {
	// The sketch map is linear: s(αx + y) = α·s(x) + s(y). This property
	// is what makes compound sketches and sketch-space centroids valid.
	sk, _ := NewSketcher(1.3, 7, 4, 4, 7, EstimatorAuto)
	rng := rand.New(rand.NewPCG(1, 1))
	x := randVec(rng, 16)
	y := randVec(rng, 16)
	const alpha = -2.5
	combo := make([]float64, 16)
	for i := range combo {
		combo[i] = alpha*x[i] + y[i]
	}
	sx := sk.Sketch(x, nil)
	sy := sk.Sketch(y, nil)
	sc := sk.Sketch(combo, nil)
	for i := range sc {
		want := alpha*sx[i] + sy[i]
		if math.Abs(sc[i]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("linearity violated at %d: %v vs %v", i, sc[i], want)
		}
	}
}

func TestSketchZeroVector(t *testing.T) {
	sk, _ := NewSketcher(0.8, 5, 2, 2, 3, EstimatorAuto)
	s := sk.Sketch(make([]float64, 4), nil)
	for i, v := range s {
		if v != 0 {
			t.Fatalf("sketch of zero vector has nonzero entry %d: %v", i, v)
		}
	}
	if d := sk.Distance(s, s); d != 0 {
		t.Errorf("Distance(s,s) = %v, want 0", d)
	}
}

func TestSketchPanicsWrongLength(t *testing.T) {
	sk, _ := NewSketcher(1, 5, 2, 2, 3, EstimatorAuto)
	assertPanics(t, "short vec", func() { sk.Sketch(make([]float64, 3), nil) })
	assertPanics(t, "short sketch", func() { sk.Distance(make([]float64, 4), make([]float64, 5)) })
}

func TestSketchBufferReuse(t *testing.T) {
	sk, _ := NewSketcher(1, 5, 2, 2, 3, EstimatorAuto)
	buf := make([]float64, 8)
	out := sk.Sketch([]float64{1, 2, 3, 4}, buf)
	if &out[0] != &buf[0] {
		t.Error("Sketch did not reuse provided buffer")
	}
	if len(out) != 5 {
		t.Errorf("len = %d, want 5", len(out))
	}
}

// TestDistanceAccuracy is the headline statistical check of Theorems 1–2:
// with k = O(ε⁻² log 1/δ) entries, the sketch estimate falls within a
// small relative error of the exact Lp distance.
func TestDistanceAccuracy(t *testing.T) {
	const (
		k      = 501
		dim    = 8 // tiles of 8x8 = 64 entries
		trials = 20
	)
	for _, p := range []float64{0.5, 0.75, 1, 1.25, 2} {
		lp := lpnorm.MustP(p)
		sk, err := NewSketcher(p, k, dim, dim, 99, EstimatorAuto)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewPCG(5, uint64(p*1000)))
		var relErrs []float64
		for trial := 0; trial < trials; trial++ {
			x := randVec(rng, dim*dim)
			y := randVec(rng, dim*dim)
			exact := lp.Dist(x, y)
			est := sk.Distance(sk.Sketch(x, nil), sk.Sketch(y, nil))
			rel := math.Abs(est-exact) / exact
			relErrs = append(relErrs, rel)
			if rel > 0.4 {
				t.Errorf("p=%v trial %d: rel error %v too large (exact %v, est %v)",
					p, trial, rel, exact, est)
			}
		}
		var sum float64
		for _, r := range relErrs {
			sum += r
		}
		// The median estimator's spread grows as p shrinks (heavier tails,
		// flatter density at the median), so the bound is loose enough to
		// cover p = 0.5 while still catching scaling bugs outright.
		if mean := sum / trials; mean > 0.16 {
			t.Errorf("p=%v: mean relative error %v exceeds 16%%", p, mean)
		}
	}
}

func TestDistanceAccuracyImprovesWithK(t *testing.T) {
	const dim = 6
	p := 1.0
	lp := lpnorm.MustP(p)
	rng := rand.New(rand.NewPCG(6, 6))
	x := randVec(rng, dim*dim)
	y := randVec(rng, dim*dim)
	exact := lp.Dist(x, y)
	meanErr := func(k int) float64 {
		var sum float64
		const reps = 30
		for rep := 0; rep < reps; rep++ {
			sk, _ := NewSketcher(p, k, dim, dim, uint64(1000+rep), EstimatorAuto)
			est := sk.Distance(sk.Sketch(x, nil), sk.Sketch(y, nil))
			sum += math.Abs(est-exact) / exact
		}
		return sum / reps
	}
	small, large := meanErr(9), meanErr(301)
	if large >= small {
		t.Errorf("error did not shrink with k: k=9 err %v, k=301 err %v", small, large)
	}
}

func TestEstimatorL2MatchesExactEuclidean(t *testing.T) {
	const k = 301
	sk, _ := NewSketcher(2, k, 8, 8, 11, EstimatorL2)
	lp := lpnorm.MustP(2)
	rng := rand.New(rand.NewPCG(7, 7))
	for trial := 0; trial < 10; trial++ {
		x := randVec(rng, 64)
		y := randVec(rng, 64)
		exact := lp.Dist(x, y)
		est := sk.Distance(sk.Sketch(x, nil), sk.Sketch(y, nil))
		if rel := math.Abs(est-exact) / exact; rel > 0.3 {
			t.Errorf("trial %d: L2 estimator rel err %v (exact %v est %v)", trial, rel, exact, est)
		}
	}
}

func TestMedianEstimatorAtP2AgreesWithL2Estimator(t *testing.T) {
	// Both estimators are valid at p=2; they should agree on average.
	const k = 501
	med, _ := NewSketcher(2, k, 6, 6, 13, EstimatorMedian)
	l2, _ := NewSketcher(2, k, 6, 6, 13, EstimatorL2) // same seed: same matrices
	rng := rand.New(rand.NewPCG(8, 8))
	x := randVec(rng, 36)
	y := randVec(rng, 36)
	sa, sb := med.Sketch(x, nil), med.Sketch(y, nil)
	dm := med.Distance(sa, sb)
	dl := l2.Distance(sa, sb)
	if rel := math.Abs(dm-dl) / dl; rel > 0.2 {
		t.Errorf("median %v vs L2 %v estimator disagree (rel %v)", dm, dl, rel)
	}
}

func TestDistanceSymmetric(t *testing.T) {
	sk, _ := NewSketcher(1, 21, 4, 4, 17, EstimatorAuto)
	rng := rand.New(rand.NewPCG(9, 9))
	x := randVec(rng, 16)
	y := randVec(rng, 16)
	sx, sy := sk.Sketch(x, nil), sk.Sketch(y, nil)
	if d1, d2 := sk.Distance(sx, sy), sk.Distance(sy, sx); d1 != d2 {
		t.Errorf("asymmetric distance %v vs %v", d1, d2)
	}
}

func TestNormFromSketch(t *testing.T) {
	const k = 501
	for _, p := range []float64{1, 2} {
		sk, _ := NewSketcher(p, k, 6, 6, 19, EstimatorAuto)
		lp := lpnorm.MustP(p)
		rng := rand.New(rand.NewPCG(10, uint64(p)))
		x := randVec(rng, 36)
		exact := lp.Norm(x)
		est := sk.NormFromSketch(sk.Sketch(x, nil))
		if rel := math.Abs(est-exact) / exact; rel > 0.3 {
			t.Errorf("p=%v: norm rel err %v (exact %v est %v)", p, rel, exact, est)
		}
	}
}

func TestDistanceScaleEquivariance(t *testing.T) {
	// Scaling both tiles by c scales the estimated distance by |c| exactly
	// (the estimator is positively homogeneous).
	sk, _ := NewSketcher(0.6, 33, 4, 4, 23, EstimatorAuto)
	rng := rand.New(rand.NewPCG(11, 11))
	x := randVec(rng, 16)
	y := randVec(rng, 16)
	const c = 3.5
	cx := scaleVec(x, c)
	cy := scaleVec(y, c)
	d1 := sk.Distance(sk.Sketch(x, nil), sk.Sketch(y, nil))
	d2 := sk.Distance(sk.Sketch(cx, nil), sk.Sketch(cy, nil))
	if math.Abs(d2-c*d1) > 1e-9*(1+c*d1) {
		t.Errorf("scale equivariance violated: %v vs %v", d2, c*d1)
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 10
	}
	return out
}

func scaleVec(x []float64, c float64) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = c * v
	}
	return out
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
