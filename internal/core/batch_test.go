package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/table"
	"repro/internal/workload"
)

// batchPools builds one pool per estimator flavor (p=1 median, p=2 L2)
// over the same 64x64 table, plus a mixed set of rectangle pairs:
// exact-dyadic, compound, and varying sizes across the batch.
func batchPools(t *testing.T) (*table.Table, []*core.Pool, []table.Rect, []table.Rect) {
	t.Helper()
	tb := workload.Random(64, 64, 10, 99)
	var pools []*core.Pool
	for _, p := range []float64{1, 2} {
		pool, err := core.NewPool(tb, p, 32, 7, core.PoolOptions{
			MinLogRows: 2, MaxLogRows: 4, MinLogCols: 2, MaxLogCols: 4,
		})
		if err != nil {
			t.Fatalf("NewPool(p=%v): %v", p, err)
		}
		pools = append(pools, pool)
	}
	var as, bs []table.Rect
	add := func(a, b table.Rect) { as = append(as, a); bs = append(bs, b) }
	add(table.Rect{R0: 0, C0: 0, Rows: 8, Cols: 8}, table.Rect{R0: 16, C0: 16, Rows: 8, Cols: 8}) // exact dyadic
	add(table.Rect{R0: 1, C0: 2, Rows: 6, Cols: 7}, table.Rect{R0: 30, C0: 9, Rows: 6, Cols: 7})  // compound
	add(table.Rect{R0: 0, C0: 0, Rows: 16, Cols: 16}, table.Rect{R0: 40, C0: 40, Rows: 16, Cols: 16})
	add(table.Rect{R0: 5, C0: 5, Rows: 5, Cols: 12}, table.Rect{R0: 5, C0: 40, Rows: 5, Cols: 12}) // compound, non-square
	add(table.Rect{R0: 3, C0: 3, Rows: 8, Cols: 8}, table.Rect{R0: 3, C0: 3, Rows: 8, Cols: 8})    // identical rects
	for len(as) < 67 {                                                                             // not a multiple of any internal block size
		i := len(as) % 5
		add(as[i], bs[i])
	}
	return tb, pools, as, bs
}

// TestDistanceBatchBitIdentical pins the batch kernels' contract: every
// batched estimate equals the one-at-a-time Pool.Distance bits exactly,
// for both the L2 and the median estimator.
func TestDistanceBatchBitIdentical(t *testing.T) {
	_, pools, as, bs := batchPools(t)
	for _, pool := range pools {
		got, err := pool.DistanceBatch(as, bs, nil)
		if err != nil {
			t.Fatalf("DistanceBatch(p=%v): %v", pool.P(), err)
		}
		if len(got) != len(as) {
			t.Fatalf("batch returned %d results for %d pairs", len(got), len(as))
		}
		for i := range as {
			want, err := pool.Distance(as[i], bs[i])
			if err != nil {
				t.Fatalf("Distance(%v, %v): %v", as[i], bs[i], err)
			}
			if math.Float64bits(got[i]) != math.Float64bits(want) {
				t.Errorf("p=%v item %d: batch %v != sequential %v", pool.P(), i, got[i], want)
			}
		}
	}
}

// TestSketchBatchLaneMajorLayout checks the lane-major matrix layout
// against per-rect Pool.Sketch.
func TestSketchBatchLaneMajorLayout(t *testing.T) {
	_, pools, as, _ := batchPools(t)
	pool := pools[0]
	n := len(as)
	mat, err := pool.SketchBatch(as, nil)
	if err != nil {
		t.Fatalf("SketchBatch: %v", err)
	}
	if len(mat) != n*pool.K() {
		t.Fatalf("matrix length %d, want %d", len(mat), n*pool.K())
	}
	for i, rect := range as {
		sk, err := pool.Sketch(rect, nil)
		if err != nil {
			t.Fatalf("Sketch(%v): %v", rect, err)
		}
		for l, v := range sk {
			if math.Float64bits(mat[l*n+i]) != math.Float64bits(v) {
				t.Fatalf("item %d lane %d: matrix %v != sketch %v", i, l, mat[l*n+i], v)
			}
		}
	}
}

// TestDistanceBatchErrors covers the rejection paths: mismatched batch
// lengths, mismatched pair sizes, and an unsketchable rect.
func TestDistanceBatchErrors(t *testing.T) {
	_, pools, as, bs := batchPools(t)
	pool := pools[0]
	if _, err := pool.DistanceBatch(as[:2], bs[:1], nil); err == nil {
		t.Error("mismatched batch lengths: want error")
	}
	if _, err := pool.DistanceBatch(
		[]table.Rect{{R0: 0, C0: 0, Rows: 8, Cols: 8}},
		[]table.Rect{{R0: 0, C0: 0, Rows: 8, Cols: 16}}, nil); err == nil {
		t.Error("different-size pair: want error")
	}
	if _, err := pool.DistanceBatch(
		[]table.Rect{{R0: 0, C0: 0, Rows: 2, Cols: 2}}, // below MinLog size 4
		[]table.Rect{{R0: 0, C0: 0, Rows: 2, Cols: 2}}, nil); err == nil {
		t.Error("unsketchable rect: want error")
	}
	if got, err := pool.DistanceBatch(nil, nil, nil); err != nil || len(got) != 0 {
		t.Errorf("empty batch: got %v, %v; want empty, nil", got, err)
	}
}

// TestDistanceBatchSteadyStateAllocs asserts the pooled-scratch
// contract: once warm, a whole batched evaluation allocates O(1) —
// nowhere near one allocation per item.
func TestDistanceBatchSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are process-global and distorted under the race detector")
	}
	_, pools, as, bs := batchPools(t)
	for _, pool := range pools {
		dst := make([]float64, len(as))
		// Warm the buffer pool.
		if _, err := pool.DistanceBatch(as, bs, dst); err != nil {
			t.Fatalf("warmup: %v", err)
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := pool.DistanceBatch(as, bs, dst); err != nil {
				t.Fatal(err)
			}
		})
		if allocs > 8 {
			t.Errorf("p=%v: %.1f allocs per %d-item batch, want O(1)", pool.P(), allocs, len(as))
		}
	}
}
