package core

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/quantile"
	"repro/internal/stable"
)

// HashSketcher is a Sketcher variant for the turnstile-stream setting of
// Indyk's FOCS 2000 paper (the paper's reference [12], whose techniques
// Section 3 implements): instead of materializing k random matrices of
// the full domain size — impossible when the domain is a router's entire
// (destination × time) key space — each random entry r[i][pos] is
// regenerated on demand from a hash of (i, pos). A sketch is then
// maintainable under a stream of (pos, delta) updates in O(k) per update
// with O(k) total memory, and two streams' sketches compare exactly like
// Sketcher's.
//
// The generated entries are deterministic in (seed, p, i, pos), so two
// HashSketchers with equal parameters produce comparable sketches on
// different machines with no shared state.
type HashSketcher struct {
	p         float64
	k         int
	dim       int // domain size: valid positions are [0, dim)
	seed      uint64
	dist      *stable.Dist
	scale     float64
	estimator Estimator
}

// NewHashSketcher builds a hash-based sketcher over a domain of dim
// positions. Arguments mirror NewSketcher.
func NewHashSketcher(p float64, k, dim int, seed uint64, estimator Estimator) (*HashSketcher, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: sketch size k = %d must be positive", k)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("core: domain size %d must be positive", dim)
	}
	dist, err := stable.New(p)
	if err != nil {
		return nil, err
	}
	if estimator == EstimatorL2 && p != 2 {
		return nil, fmt.Errorf("core: EstimatorL2 requires p = 2, got p = %v", p)
	}
	if estimator == EstimatorAuto {
		if p == 2 {
			estimator = EstimatorL2
		} else {
			estimator = EstimatorMedian
		}
	}
	return &HashSketcher{
		p: p, k: k, dim: dim, seed: seed,
		dist:      dist,
		scale:     stable.MedianAbs(p),
		estimator: estimator,
	}, nil
}

// P returns the Lp exponent.
func (h *HashSketcher) P() float64 { return h.p }

// K returns the sketch size.
func (h *HashSketcher) K() int { return h.k }

// Dim returns the domain size.
func (h *HashSketcher) Dim() int { return h.dim }

// splitmix64 is the SplitMix64 finalizer, a fast high-quality mixer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Entry returns the random stable value r[i][pos], regenerated
// deterministically. Panics on out-of-range arguments (caller bugs).
func (h *HashSketcher) Entry(i, pos int) float64 {
	if i < 0 || i >= h.k {
		panic(fmt.Sprintf("core: entry row %d outside [0, %d)", i, h.k))
	}
	if pos < 0 || pos >= h.dim {
		panic(fmt.Sprintf("core: position %d outside [0, %d)", pos, h.dim))
	}
	key := splitmix64(h.seed ^ uint64(i)<<32 ^ uint64(pos))
	rng := rand.New(rand.NewPCG(key, splitmix64(key)))
	return h.dist.Sample(rng)
}

// Sketch computes the k dot products of a fully materialized vector with
// the hashed random matrices — mainly for verification; streaming callers
// use Stream/Update instead. vec must have length Dim().
func (h *HashSketcher) Sketch(vec, dst []float64) []float64 {
	if len(vec) != h.dim {
		panic(fmt.Sprintf("core: Sketch input length %d != dim %d", len(vec), h.dim))
	}
	if cap(dst) < h.k {
		dst = make([]float64, h.k)
	}
	dst = dst[:h.k]
	for i := range dst {
		var dot float64
		for pos, v := range vec {
			if v != 0 {
				dot += v * h.Entry(i, pos)
			}
		}
		dst[i] = dot
	}
	return dst
}

// Distance estimates the Lp distance between two sketched streams.
func (h *HashSketcher) Distance(a, b []float64) float64 {
	return h.DistanceScratch(a, b, make([]float64, h.k))
}

// DistanceScratch is Distance with a caller-provided scratch buffer.
func (h *HashSketcher) DistanceScratch(a, b, scratch []float64) float64 {
	if len(a) != h.k || len(b) != h.k {
		panic(fmt.Sprintf("core: sketch lengths %d/%d != k=%d", len(a), len(b), h.k))
	}
	switch h.estimator {
	case EstimatorL2:
		var sum float64
		for i := range a {
			d := a[i] - b[i]
			sum += d * d
		}
		return math.Sqrt(sum / float64(h.k))
	default:
		return quantile.AbsMedianDiff(a, b, scratch) / h.scale
	}
}

// Stream is a sketch maintained under a turnstile stream of point updates
// "cell pos changed by delta". It never stores the underlying vector.
type Stream struct {
	h       *HashSketcher
	sketch  []float64
	updates int64
}

// NewStream starts an empty stream (the all-zeros vector).
func (h *HashSketcher) NewStream() *Stream {
	return &Stream{h: h, sketch: make([]float64, h.k)}
}

// Update applies vec[pos] += delta to the sketched stream in O(k).
func (s *Stream) Update(pos int, delta float64) {
	if delta == 0 {
		return
	}
	s.updates++
	for i := range s.sketch {
		s.sketch[i] += delta * s.h.Entry(i, pos)
	}
}

// Sketch returns the current sketch vector (aliased, do not modify).
func (s *Stream) Sketch() []float64 { return s.sketch }

// Updates returns the number of applied updates.
func (s *Stream) Updates() int64 { return s.updates }

// DistanceTo estimates the Lp distance between this stream's vector and
// another stream sketched by the same HashSketcher.
func (s *Stream) DistanceTo(other *Stream) float64 {
	if s.h != other.h {
		panic("core: streams from different HashSketchers are not comparable")
	}
	return s.h.Distance(s.sketch, other.sketch)
}

// NormEstimate estimates ‖vec‖p of the stream's underlying vector.
func (s *Stream) NormEstimate() float64 {
	zero := make([]float64, s.h.k)
	return s.h.Distance(s.sketch, zero)
}
