package tabstore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tabfile"
	"repro/internal/table"
	"repro/internal/workload"
)

func openStore(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir: expected error")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f); err == nil {
		t.Error("file instead of dir: expected error")
	}
}

func TestOpenCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("corrupt manifest: expected error")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, manifestName), []byte(`{"version":9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2); err == nil {
		t.Error("bad version: expected error")
	}
}

func TestAppendAndReload(t *testing.T) {
	s, dir := openStore(t)
	day0 := workload.Random(8, 10, 1, 1)
	day1 := workload.Random(8, 12, 1, 2)
	if err := s.AppendDay("mon", day0, false); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDay("tue", day1, true); err != nil {
		t.Fatal(err)
	}
	if s.NumDays() != 2 || s.Rows() != 8 {
		t.Fatalf("NumDays %d Rows %d", s.NumDays(), s.Rows())
	}

	// Reopen from disk.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumDays() != 2 || s2.Rows() != 8 {
		t.Fatalf("reloaded NumDays %d Rows %d", s2.NumDays(), s2.Rows())
	}
	labels := s2.Labels()
	if labels[0] != "mon" || labels[1] != "tue" {
		t.Errorf("labels %v", labels)
	}
	got0, err := s2.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(got0, day0, 0) {
		t.Error("day 0 roundtrip lost data")
	}
	got1, err := s2.Day(1)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(got1, day1, 0) {
		t.Error("day 1 (compressed) roundtrip lost data")
	}
}

func TestAppendValidation(t *testing.T) {
	s, _ := openStore(t)
	if err := s.AppendDay("", workload.Random(4, 4, 1, 1), false); err == nil {
		t.Error("empty label: expected error")
	}
	if err := s.AppendDay("d", workload.Random(4, 4, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDay("d", workload.Random(4, 4, 1, 1), false); err == nil {
		t.Error("duplicate label: expected error")
	}
	if err := s.AppendDay("e", workload.Random(5, 4, 1, 1), false); err == nil {
		t.Error("row mismatch: expected error")
	}
}

func TestLoadRangeStitches(t *testing.T) {
	s, _ := openStore(t)
	days := make([]*table.Table, 3)
	for i := range days {
		days[i] = workload.Random(6, 4+i, 1, uint64(i))
		if err := s.AppendDay(labelOf(i), days[i], i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.LoadRange(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := table.Stitch(days...)
	if !table.EqualApprox(got, want, 0) {
		t.Error("LoadRange differs from direct stitch")
	}
	mid, err := s.LoadRange(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(mid, days[1], 0) {
		t.Error("single-day range differs from the day")
	}
}

func labelOf(i int) string { return string(rune('a' + i)) }

func TestLoadRangeErrors(t *testing.T) {
	s, _ := openStore(t)
	if err := s.AppendDay("a", workload.Random(4, 4, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 1}, {0, 2}, {1, 1}, {1, 0}} {
		if _, err := s.LoadRange(r[0], r[1]); err == nil {
			t.Errorf("range %v: expected error", r)
		}
	}
	if _, err := s.Day(5); err == nil {
		t.Error("day out of range: expected error")
	}
}

func TestDayDetectsManifestMismatch(t *testing.T) {
	s, dir := openStore(t)
	if err := s.AppendDay("a", workload.Random(4, 4, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	// Overwrite the day file with different dimensions.
	other := workload.Random(4, 9, 1, 2)
	if err := writeRaw(dir, "day-0000.tabf", other); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Day(0); err == nil {
		t.Error("expected manifest/file mismatch error")
	}
}

func writeRaw(dir, name string, tb *table.Table) error {
	return tabfile.WriteFile(filepath.Join(dir, name), tb, false)
}
