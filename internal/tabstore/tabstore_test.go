package tabstore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tabfile"
	"repro/internal/table"
	"repro/internal/workload"
)

func openStore(t *testing.T) (*Store, string) {
	t.Helper()
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s, dir
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing dir: expected error")
	}
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f); err == nil {
		t.Error("file instead of dir: expected error")
	}
}

func TestOpenCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Error("corrupt manifest: expected error")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, manifestName), []byte(`{"version":9}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir2); err == nil {
		t.Error("bad version: expected error")
	}
}

func TestAppendAndReload(t *testing.T) {
	s, dir := openStore(t)
	day0 := workload.Random(8, 10, 1, 1)
	day1 := workload.Random(8, 12, 1, 2)
	if err := s.AppendDay("mon", day0, false); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDay("tue", day1, true); err != nil {
		t.Fatal(err)
	}
	if s.NumDays() != 2 || s.Rows() != 8 {
		t.Fatalf("NumDays %d Rows %d", s.NumDays(), s.Rows())
	}

	// Reopen from disk.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumDays() != 2 || s2.Rows() != 8 {
		t.Fatalf("reloaded NumDays %d Rows %d", s2.NumDays(), s2.Rows())
	}
	labels := s2.Labels()
	if labels[0] != "mon" || labels[1] != "tue" {
		t.Errorf("labels %v", labels)
	}
	got0, err := s2.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(got0, day0, 0) {
		t.Error("day 0 roundtrip lost data")
	}
	got1, err := s2.Day(1)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(got1, day1, 0) {
		t.Error("day 1 (compressed) roundtrip lost data")
	}
}

func TestAppendValidation(t *testing.T) {
	s, _ := openStore(t)
	if err := s.AppendDay("", workload.Random(4, 4, 1, 1), false); err == nil {
		t.Error("empty label: expected error")
	}
	if err := s.AppendDay("d", workload.Random(4, 4, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDay("d", workload.Random(4, 4, 1, 1), false); err == nil {
		t.Error("duplicate label: expected error")
	}
	if err := s.AppendDay("e", workload.Random(5, 4, 1, 1), false); err == nil {
		t.Error("row mismatch: expected error")
	}
}

func TestLoadRangeStitches(t *testing.T) {
	s, _ := openStore(t)
	days := make([]*table.Table, 3)
	for i := range days {
		days[i] = workload.Random(6, 4+i, 1, uint64(i))
		if err := s.AppendDay(labelOf(i), days[i], i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.LoadRange(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := table.Stitch(days...)
	if !table.EqualApprox(got, want, 0) {
		t.Error("LoadRange differs from direct stitch")
	}
	mid, err := s.LoadRange(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(mid, days[1], 0) {
		t.Error("single-day range differs from the day")
	}
}

func labelOf(i int) string { return string(rune('a' + i)) }

func TestLoadRangeErrors(t *testing.T) {
	s, _ := openStore(t)
	if err := s.AppendDay("a", workload.Random(4, 4, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	for _, r := range [][2]int{{-1, 1}, {0, 2}, {1, 1}, {1, 0}} {
		if _, err := s.LoadRange(r[0], r[1]); err == nil {
			t.Errorf("range %v: expected error", r)
		}
	}
	if _, err := s.Day(5); err == nil {
		t.Error("day out of range: expected error")
	}
}

func TestDayDetectsManifestMismatch(t *testing.T) {
	s, dir := openStore(t)
	if err := s.AppendDay("a", workload.Random(4, 4, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	// Overwrite the day file with different dimensions.
	other := workload.Random(4, 9, 1, 2)
	if err := writeRaw(dir, "day-0000.tabf", other); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Day(0); err == nil {
		t.Error("expected manifest/file mismatch error")
	}
}

func writeRaw(dir, name string, tb *table.Table) error {
	return tabfile.WriteFile(filepath.Join(dir, name), tb, false)
}

func TestColumnAccounting(t *testing.T) {
	s, _ := openStore(t)
	widths := []int{5, 7, 3}
	for i, w := range widths {
		if err := s.AppendDay(labelOf(i), workload.Random(4, w, 1, uint64(i)), false); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ColsTotal(); got != 15 {
		t.Errorf("ColsTotal = %d, want 15", got)
	}
	wantOff := []int{0, 5, 12, 15}
	for i, want := range wantOff {
		got, err := s.ColOffset(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("ColOffset(%d) = %d, want %d", i, got, want)
		}
	}
	if _, err := s.ColOffset(4); err == nil {
		t.Error("ColOffset past NumDays: expected error")
	}
	if w, err := s.DayCols(1); err != nil || w != 7 {
		t.Errorf("DayCols(1) = %d, %v", w, err)
	}
	if _, err := s.DayCols(3); err == nil {
		t.Error("DayCols out of range: expected error")
	}
}

func TestIterDays(t *testing.T) {
	s, _ := openStore(t)
	days := make([]*table.Table, 3)
	for i := range days {
		days[i] = workload.Random(6, 4+i, 1, uint64(i))
		if err := s.AppendDay(labelOf(i), days[i], false); err != nil {
			t.Fatal(err)
		}
	}
	var seen []int
	err := s.IterDays(1, 3, func(i int, label string, tb *table.Table) error {
		seen = append(seen, i)
		if label != labelOf(i) {
			t.Errorf("day %d label %q", i, label)
		}
		if !table.EqualApprox(tb, days[i], 0) {
			t.Errorf("day %d data differs", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Errorf("visited %v, want [1 2]", seen)
	}
	sentinel := os.ErrClosed
	err = s.IterDays(0, 3, func(i int, _ string, _ *table.Table) error { return sentinel })
	if err != sentinel {
		t.Errorf("fn error not propagated: %v", err)
	}
	if err := s.IterDays(2, 1, func(int, string, *table.Table) error { return nil }); err == nil {
		t.Error("inverted range: expected error")
	}
	// Empty range is fine (the replay path hits it when nothing is missing).
	if err := s.IterDays(3, 3, func(int, string, *table.Table) error { return nil }); err != nil {
		t.Errorf("empty range: %v", err)
	}
}

// Refresh must pick up days appended through another handle to the same
// directory — the tail-a-store ingest mode — and refuse a manifest that
// was rewritten rather than extended.
func TestRefresh(t *testing.T) {
	s, dir := openStore(t)
	if err := s.AppendDay("a", workload.Random(4, 3, 1, 1), false); err != nil {
		t.Fatal(err)
	}
	other, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.AppendDay("b", workload.Random(4, 5, 1, 2), false); err != nil {
		t.Fatal(err)
	}
	if s.NumDays() != 1 {
		t.Fatalf("stale handle sees %d days before Refresh", s.NumDays())
	}
	if err := s.Refresh(); err != nil {
		t.Fatal(err)
	}
	if s.NumDays() != 2 || s.ColsTotal() != 8 {
		t.Fatalf("after Refresh: NumDays=%d ColsTotal=%d", s.NumDays(), s.ColsTotal())
	}
	if _, err := s.Day(1); err != nil {
		t.Fatal(err)
	}

	// A truncated manifest (fewer days) must be rejected.
	if err := os.WriteFile(filepath.Join(dir, manifestName),
		[]byte(`{"version":1,"rows":4,"days":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Refresh(); err == nil {
		t.Error("truncated manifest: expected Refresh error")
	}
}
