// Package tabstore implements a simple day-partitioned table store: one
// binary table file per day plus a JSON manifest, mirroring how the
// paper's data arrives ("the number of calls collected in intervals of 10
// minutes over the day ... We stitched consecutive days to obtain data
// sets of various sizes") and the flat-file warehousing (Daytona-style)
// it sits in.
//
// All days of a store share the same row count (the station axis); a
// contiguous range of days loads as one stitched table ready for tiling
// and sketching.
package tabstore

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/tabfile"
	"repro/internal/table"
)

const manifestName = "manifest.json"

// quarantineDir is where Fsck moves corrupt day files, preserving the
// evidence instead of deleting it.
const quarantineDir = "quarantine"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type dayEntry struct {
	Label      string `json:"label"`
	File       string `json:"file"`
	Cols       int    `json:"cols"`
	Compressed bool   `json:"compressed"`
	// CRC32C of the day file's full byte contents, recorded at append
	// time. 0 means "not recorded" (a file from before checksums were
	// added); Fsck skips the checksum comparison for such days.
	CRC32C uint32 `json:"crc32c,omitempty"`
}

type manifest struct {
	Version int        `json:"version"`
	Rows    int        `json:"rows"` // 0 until the first day is appended
	Days    []dayEntry `json:"days"`
}

// SegmentsDirName is the store subdirectory segment-mode serving keeps
// its segment files in (see internal/segstore); Open sweeps its stray
// temps and tabmine-store's fsck and segments subcommands look there.
const SegmentsDirName = "segments"

// Store is a directory-backed, day-partitioned table store.
type Store struct {
	dir string
	m   manifest
}

// SegmentsDir returns the store's segment subdirectory path (which may
// not exist; only segment-mode serving creates it).
func (s *Store) SegmentsDir() string { return filepath.Join(s.dir, SegmentsDirName) }

func dirExists(path string) bool {
	info, err := os.Stat(path)
	return err == nil && info.IsDir()
}

// Open opens (or initializes) a store rooted at dir, which must exist.
// Stray temporary files from an interrupted atomic write are removed —
// they were never referenced by the manifest, so dropping them restores
// the pre-write state.
func Open(dir string) (*Store, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("tabstore: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("tabstore: %s is not a directory", dir)
	}
	if _, err := atomicio.CleanTemps(dir); err != nil {
		return nil, fmt.Errorf("tabstore: %w", err)
	}
	// Segment-mode serving keeps its mmap-backed segment files in a
	// segments/ subdirectory; a crash mid-write leaves its temps there.
	if segDir := filepath.Join(dir, SegmentsDirName); dirExists(segDir) {
		if _, err := atomicio.CleanTemps(segDir); err != nil {
			return nil, fmt.Errorf("tabstore: %w", err)
		}
	}
	s := &Store{dir: dir, m: manifest{Version: 1}}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return s, s.writeManifest()
	}
	if err != nil {
		return nil, fmt.Errorf("tabstore: reading manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &s.m); err != nil {
		return nil, fmt.Errorf("tabstore: parsing manifest: %w", err)
	}
	if s.m.Version != 1 {
		return nil, fmt.Errorf("tabstore: unsupported manifest version %d", s.m.Version)
	}
	if s.m.Rows < 0 {
		return nil, fmt.Errorf("tabstore: manifest claims %d rows", s.m.Rows)
	}
	if len(s.m.Days) > 0 && s.m.Rows == 0 {
		return nil, fmt.Errorf("tabstore: manifest has %d days but no row count", len(s.m.Days))
	}
	for i, d := range s.m.Days {
		if d.Cols <= 0 {
			return nil, fmt.Errorf("tabstore: manifest day %d claims %d cols", i, d.Cols)
		}
		// Day files live directly in the store directory; a manifest
		// naming anything else (subdirs, "..", absolute paths) would let
		// fsck quarantine-rename files outside the store.
		if d.File == "" || d.File != filepath.Base(d.File) || d.File == "." || d.File == ".." {
			return nil, fmt.Errorf("tabstore: manifest day %d has invalid file name %q", i, d.File)
		}
	}
	return s, nil
}

func (s *Store) writeManifest() error {
	raw, err := json.MarshalIndent(&s.m, "", "  ")
	if err != nil {
		return fmt.Errorf("tabstore: encoding manifest: %w", err)
	}
	err = atomicio.WriteFile(filepath.Join(s.dir, manifestName), func(w io.Writer) error {
		_, err := w.Write(raw)
		return err
	})
	if err != nil {
		return fmt.Errorf("tabstore: writing manifest: %w", err)
	}
	return nil
}

// Rows returns the station-axis size shared by all days (0 when empty).
func (s *Store) Rows() int { return s.m.Rows }

// NumDays returns how many days the store holds.
func (s *Store) NumDays() int { return len(s.m.Days) }

// Labels returns the day labels in append order.
func (s *Store) Labels() []string {
	out := make([]string, len(s.m.Days))
	for i, d := range s.m.Days {
		out[i] = d.Label
	}
	return out
}

// AppendDay persists t as the next day under the given label. The first
// appended day fixes the store's row count; later days must match it.
//
// The append is crash-safe: the day file is written atomically (temp +
// fsync + rename) and the manifest — itself replaced atomically — is
// only updated after the day file is durable, so a crash at any point
// leaves the store either without the new day or with it complete,
// never referencing a torn file. The file's CRC32C is recorded in the
// manifest for fsck.
func (s *Store) AppendDay(label string, t *table.Table, compress bool) error {
	if label == "" {
		return fmt.Errorf("tabstore: empty day label")
	}
	for _, d := range s.m.Days {
		if d.Label == label {
			return fmt.Errorf("tabstore: day %q already exists", label)
		}
	}
	if s.m.Rows == 0 {
		s.m.Rows = t.Rows()
	} else if t.Rows() != s.m.Rows {
		return fmt.Errorf("tabstore: day has %d rows, store has %d", t.Rows(), s.m.Rows)
	}
	file := s.nextDayFile()
	crc := crc32.New(crcTable)
	err := atomicio.WriteFile(filepath.Join(s.dir, file), func(w io.Writer) error {
		// The checksum hashes exactly the bytes that reach the file.
		return tabfile.Write(io.MultiWriter(w, crc), t, compress)
	})
	if err != nil {
		return err
	}
	s.m.Days = append(s.m.Days, dayEntry{
		Label: label, File: file, Cols: t.Cols(), Compressed: compress,
		CRC32C: crc.Sum32(),
	})
	if err := s.writeManifest(); err != nil {
		// Roll the in-memory state back so the store stays consistent with
		// the on-disk manifest.
		s.m.Days = s.m.Days[:len(s.m.Days)-1]
		return err
	}
	return nil
}

// nextDayFile picks the first unused day file name. Numbering starts at
// the current day count but skips names still present in the manifest or
// on disk — after an fsck quarantined a middle day, naive numbering from
// len(Days) would collide with a later day's file.
func (s *Store) nextDayFile() string {
	inUse := make(map[string]bool, len(s.m.Days))
	for _, d := range s.m.Days {
		inUse[d.File] = true
	}
	for n := len(s.m.Days); ; n++ {
		name := fmt.Sprintf("day-%04d.tabf", n)
		if inUse[name] {
			continue
		}
		if _, err := os.Stat(filepath.Join(s.dir, name)); err == nil {
			continue
		}
		return name
	}
}

// Day loads day i.
func (s *Store) Day(i int) (*table.Table, error) {
	if i < 0 || i >= len(s.m.Days) {
		return nil, fmt.Errorf("tabstore: day %d out of range [0, %d)", i, len(s.m.Days))
	}
	t, err := tabfile.ReadFile(filepath.Join(s.dir, s.m.Days[i].File))
	if err != nil {
		return nil, err
	}
	if t.Rows() != s.m.Rows || t.Cols() != s.m.Days[i].Cols {
		return nil, fmt.Errorf("tabstore: day %d file is %dx%d, manifest says %dx%d",
			i, t.Rows(), t.Cols(), s.m.Rows, s.m.Days[i].Cols)
	}
	return t, nil
}

// FsckReport summarizes what Fsck found and repaired.
type FsckReport struct {
	Checked      int      // day entries examined
	Quarantined  []string // corrupt day files moved to quarantine/ (with reasons in Problems)
	Missing      []string // day files referenced by the manifest but absent
	Problems     []string // human-readable description of each defect found
	TempsRemoved []string // stray temporary files deleted
	Rebuilt      bool     // the manifest was rewritten to drop bad entries
}

// OK reports whether the store was fully healthy (nothing quarantined,
// missing, or cleaned up).
func (r *FsckReport) OK() bool {
	return len(r.Quarantined) == 0 && len(r.Missing) == 0 && len(r.TempsRemoved) == 0
}

// verifyDay fully checks day entry d: the file must exist, match its
// recorded CRC32C byte-for-byte (when recorded), decode as a table, and
// match the manifest's dimensions. The returned string describes the
// defect ("" when healthy); the error is only for I/O trouble reading
// healthy-looking state.
func (s *Store) verifyDay(d dayEntry) (string, error) {
	path := filepath.Join(s.dir, d.File)
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return "missing", nil
	}
	if err != nil {
		return "", fmt.Errorf("tabstore: reading %s: %w", d.File, err)
	}
	if d.CRC32C != 0 {
		if got := crc32.Checksum(raw, crcTable); got != d.CRC32C {
			return fmt.Sprintf("CRC32C %08x, manifest says %08x", got, d.CRC32C), nil
		}
	}
	t, err := tabfile.ReadFile(path)
	if err != nil {
		return fmt.Sprintf("undecodable: %v", err), nil
	}
	if t.Rows() != s.m.Rows || t.Cols() != d.Cols {
		return fmt.Sprintf("file is %dx%d, manifest says %dx%d",
			t.Rows(), t.Cols(), s.m.Rows, d.Cols), nil
	}
	return "", nil
}

// Fsck verifies every day file against the manifest — existence, CRC32C
// (when recorded), decodability, dimensions — moves corrupt files into
// quarantine/, removes stray temporaries, and rewrites the manifest
// without the bad entries so the store is consistent again. Healthy days
// keep their files and labels; the returned report says exactly what was
// done. Fsck itself only errors on I/O trouble, not on corruption.
func (s *Store) Fsck() (*FsckReport, error) {
	rep := &FsckReport{}
	temps, err := atomicio.CleanTemps(s.dir)
	if err != nil {
		return nil, fmt.Errorf("tabstore: fsck: %w", err)
	}
	rep.TempsRemoved = temps
	keep := s.m.Days[:0:0]
	for _, d := range s.m.Days {
		rep.Checked++
		defect, err := s.verifyDay(d)
		if err != nil {
			return nil, err
		}
		switch {
		case defect == "":
			keep = append(keep, d)
		case defect == "missing":
			rep.Missing = append(rep.Missing, d.File)
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("day %q (%s): file missing", d.Label, d.File))
		default:
			if err := s.quarantine(d.File); err != nil {
				return nil, err
			}
			rep.Quarantined = append(rep.Quarantined, d.File)
			rep.Problems = append(rep.Problems,
				fmt.Sprintf("day %q (%s): %s", d.Label, d.File, defect))
		}
	}
	if len(keep) != len(s.m.Days) {
		s.m.Days = keep
		if len(keep) == 0 {
			// An empty store no longer has a fixed row count; the next
			// append re-establishes it.
			s.m.Rows = 0
		}
		if err := s.writeManifest(); err != nil {
			return nil, err
		}
		rep.Rebuilt = true
	}
	return rep, nil
}

// quarantine moves a corrupt day file into quarantine/, deduplicating
// the target name if a previous fsck already parked one like it.
func (s *Store) quarantine(file string) error {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("tabstore: fsck: %w", err)
	}
	dst := filepath.Join(qdir, file)
	for n := 1; ; n++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = filepath.Join(qdir, fmt.Sprintf("%s.%d", file, n))
	}
	if err := os.Rename(filepath.Join(s.dir, file), dst); err != nil {
		return fmt.Errorf("tabstore: quarantining %s: %w", file, err)
	}
	return nil
}

// DayCols returns the column width of day i.
func (s *Store) DayCols(i int) (int, error) {
	if i < 0 || i >= len(s.m.Days) {
		return 0, fmt.Errorf("tabstore: day %d out of range [0, %d)", i, len(s.m.Days))
	}
	return s.m.Days[i].Cols, nil
}

// ColsTotal returns the total column count across every day — the
// store-side high-water mark an ingester compares a pool's
// HighWaterCols against to decide what to replay after a restart.
func (s *Store) ColsTotal() int {
	total := 0
	for _, d := range s.m.Days {
		total += d.Cols
	}
	return total
}

// ColOffset returns the absolute column at which day i starts (the sum
// of all earlier days' widths). i == NumDays() is allowed and returns
// ColsTotal().
func (s *Store) ColOffset(i int) (int, error) {
	if i < 0 || i > len(s.m.Days) {
		return 0, fmt.Errorf("tabstore: day %d out of range [0, %d]", i, len(s.m.Days))
	}
	off := 0
	for _, d := range s.m.Days[:i] {
		off += d.Cols
	}
	return off, nil
}

// Refresh re-reads the manifest from disk, picking up days appended by
// another process (the tail-a-store ingest mode). The refreshed view
// must extend the current one — same version, same row count once set,
// at least as many days — otherwise the store was rewritten underneath
// us and Refresh reports it instead of silently adopting the new world.
func (s *Store) Refresh() error {
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		return fmt.Errorf("tabstore: refreshing manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return fmt.Errorf("tabstore: refreshing manifest: %w", err)
	}
	if m.Version != 1 {
		return fmt.Errorf("tabstore: unsupported manifest version %d", m.Version)
	}
	if len(m.Days) < len(s.m.Days) {
		return fmt.Errorf("tabstore: refreshed manifest has %d days, store had %d (truncated underneath us?)",
			len(m.Days), len(s.m.Days))
	}
	if s.m.Rows != 0 && m.Rows != s.m.Rows {
		return fmt.Errorf("tabstore: refreshed manifest has %d rows, store had %d", m.Rows, s.m.Rows)
	}
	for i, d := range s.m.Days {
		if m.Days[i] != d {
			return fmt.Errorf("tabstore: refreshed manifest rewrote day %d (%q)", i, d.Label)
		}
	}
	s.m = m
	return nil
}

// IterDays loads days [from, to) one at a time in order, calling fn with
// the day index, its label, and its table. Iteration stops at the first
// error (fn's own errors included). The replay path of the streaming
// ingester is built on this: each missing day is applied and released
// before the next is read, so catch-up memory is one day, not the range.
func (s *Store) IterDays(from, to int, fn func(i int, label string, t *table.Table) error) error {
	if from < 0 || to > len(s.m.Days) || from > to {
		return fmt.Errorf("tabstore: range [%d, %d) invalid for %d days", from, to, len(s.m.Days))
	}
	for i := from; i < to; i++ {
		t, err := s.Day(i)
		if err != nil {
			return err
		}
		if err := fn(i, s.m.Days[i].Label, t); err != nil {
			return err
		}
	}
	return nil
}

// LoadRange loads days [from, to) stitched into one table along the time
// axis. Day files stream row by row directly into their column range of
// the destination, so peak memory is the result plus a single row — not
// the result plus a whole-day copy per day (what the old
// load-then-Stitch implementation held).
func (s *Store) LoadRange(from, to int) (*table.Table, error) {
	if from < 0 || to > len(s.m.Days) || from >= to {
		return nil, fmt.Errorf("tabstore: range [%d, %d) invalid for %d days",
			from, to, len(s.m.Days))
	}
	total := 0
	for _, d := range s.m.Days[from:to] {
		total += d.Cols
	}
	out := table.New(s.m.Rows, total)
	off := 0
	for i := from; i < to; i++ {
		if err := s.streamDayInto(i, out, off); err != nil {
			return nil, err
		}
		off += s.m.Days[i].Cols
	}
	return out, nil
}

// streamDayInto copies day i into dst's columns [colOff, colOff+cols)
// row by row through a tabfile.RowReader.
func (s *Store) streamDayInto(i int, dst *table.Table, colOff int) error {
	d := s.m.Days[i]
	f, err := os.Open(filepath.Join(s.dir, d.File))
	if err != nil {
		return fmt.Errorf("tabstore: %w", err)
	}
	defer f.Close()
	rr, err := tabfile.NewRowReader(f)
	if err != nil {
		return err
	}
	defer rr.Close()
	rows, cols := rr.Dims()
	if rows != s.m.Rows || cols != d.Cols {
		return fmt.Errorf("tabstore: day %d file is %dx%d, manifest says %dx%d",
			i, rows, cols, s.m.Rows, d.Cols)
	}
	for r := 0; r < rows; r++ {
		cells, err := rr.Next()
		if err != nil {
			return fmt.Errorf("tabstore: day %d: %w", i, err)
		}
		copy(dst.Row(r)[colOff:colOff+cols], cells)
	}
	return nil
}
