// Package tabstore implements a simple day-partitioned table store: one
// binary table file per day plus a JSON manifest, mirroring how the
// paper's data arrives ("the number of calls collected in intervals of 10
// minutes over the day ... We stitched consecutive days to obtain data
// sets of various sizes") and the flat-file warehousing (Daytona-style)
// it sits in.
//
// All days of a store share the same row count (the station axis); a
// contiguous range of days loads as one stitched table ready for tiling
// and sketching.
package tabstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/tabfile"
	"repro/internal/table"
)

const manifestName = "manifest.json"

type dayEntry struct {
	Label      string `json:"label"`
	File       string `json:"file"`
	Cols       int    `json:"cols"`
	Compressed bool   `json:"compressed"`
}

type manifest struct {
	Version int        `json:"version"`
	Rows    int        `json:"rows"` // 0 until the first day is appended
	Days    []dayEntry `json:"days"`
}

// Store is a directory-backed, day-partitioned table store.
type Store struct {
	dir string
	m   manifest
}

// Open opens (or initializes) a store rooted at dir, which must exist.
func Open(dir string) (*Store, error) {
	info, err := os.Stat(dir)
	if err != nil {
		return nil, fmt.Errorf("tabstore: %w", err)
	}
	if !info.IsDir() {
		return nil, fmt.Errorf("tabstore: %s is not a directory", dir)
	}
	s := &Store{dir: dir, m: manifest{Version: 1}}
	raw, err := os.ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return s, s.writeManifest()
	}
	if err != nil {
		return nil, fmt.Errorf("tabstore: reading manifest: %w", err)
	}
	if err := json.Unmarshal(raw, &s.m); err != nil {
		return nil, fmt.Errorf("tabstore: parsing manifest: %w", err)
	}
	if s.m.Version != 1 {
		return nil, fmt.Errorf("tabstore: unsupported manifest version %d", s.m.Version)
	}
	return s, nil
}

func (s *Store) writeManifest() error {
	raw, err := json.MarshalIndent(&s.m, "", "  ")
	if err != nil {
		return fmt.Errorf("tabstore: encoding manifest: %w", err)
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("tabstore: writing manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("tabstore: committing manifest: %w", err)
	}
	return nil
}

// Rows returns the station-axis size shared by all days (0 when empty).
func (s *Store) Rows() int { return s.m.Rows }

// NumDays returns how many days the store holds.
func (s *Store) NumDays() int { return len(s.m.Days) }

// Labels returns the day labels in append order.
func (s *Store) Labels() []string {
	out := make([]string, len(s.m.Days))
	for i, d := range s.m.Days {
		out[i] = d.Label
	}
	return out
}

// AppendDay persists t as the next day under the given label. The first
// appended day fixes the store's row count; later days must match it.
func (s *Store) AppendDay(label string, t *table.Table, compress bool) error {
	if label == "" {
		return fmt.Errorf("tabstore: empty day label")
	}
	for _, d := range s.m.Days {
		if d.Label == label {
			return fmt.Errorf("tabstore: day %q already exists", label)
		}
	}
	if s.m.Rows == 0 {
		s.m.Rows = t.Rows()
	} else if t.Rows() != s.m.Rows {
		return fmt.Errorf("tabstore: day has %d rows, store has %d", t.Rows(), s.m.Rows)
	}
	file := fmt.Sprintf("day-%04d.tabf", len(s.m.Days))
	if err := tabfile.WriteFile(filepath.Join(s.dir, file), t, compress); err != nil {
		return err
	}
	s.m.Days = append(s.m.Days, dayEntry{
		Label: label, File: file, Cols: t.Cols(), Compressed: compress,
	})
	if err := s.writeManifest(); err != nil {
		// Roll the in-memory state back so the store stays consistent with
		// the on-disk manifest.
		s.m.Days = s.m.Days[:len(s.m.Days)-1]
		return err
	}
	return nil
}

// Day loads day i.
func (s *Store) Day(i int) (*table.Table, error) {
	if i < 0 || i >= len(s.m.Days) {
		return nil, fmt.Errorf("tabstore: day %d out of range [0, %d)", i, len(s.m.Days))
	}
	t, err := tabfile.ReadFile(filepath.Join(s.dir, s.m.Days[i].File))
	if err != nil {
		return nil, err
	}
	if t.Rows() != s.m.Rows || t.Cols() != s.m.Days[i].Cols {
		return nil, fmt.Errorf("tabstore: day %d file is %dx%d, manifest says %dx%d",
			i, t.Rows(), t.Cols(), s.m.Rows, s.m.Days[i].Cols)
	}
	return t, nil
}

// LoadRange loads days [from, to) stitched into one table along the time
// axis.
func (s *Store) LoadRange(from, to int) (*table.Table, error) {
	if from < 0 || to > len(s.m.Days) || from >= to {
		return nil, fmt.Errorf("tabstore: range [%d, %d) invalid for %d days",
			from, to, len(s.m.Days))
	}
	parts := make([]*table.Table, 0, to-from)
	for i := from; i < to; i++ {
		t, err := s.Day(i)
		if err != nil {
			return nil, err
		}
		parts = append(parts, t)
	}
	return table.Stitch(parts...)
}
