package tabstore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/atomicio"
	"repro/internal/table"
	"repro/internal/workload"
)

func appendDays(t *testing.T, s *Store, n int) []*table.Table {
	t.Helper()
	days := make([]*table.Table, n)
	for i := range days {
		days[i] = workload.Random(6, 5+i, 1, uint64(100+i))
		if err := s.AppendDay(labelOf(i), days[i], i%2 == 1); err != nil {
			t.Fatal(err)
		}
	}
	return days
}

func TestAppendRecordsCRCAndLeavesNoTemps(t *testing.T) {
	s, dir := openStore(t)
	appendDays(t, s, 2)
	for i, d := range s.m.Days {
		if d.CRC32C == 0 {
			t.Errorf("day %d: no CRC recorded", i)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if atomicio.IsTemp(e.Name()) {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
	// A healthy store passes fsck untouched.
	rep, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Checked != 2 || rep.Rebuilt {
		t.Fatalf("healthy store: report %+v", rep)
	}
}

func TestOpenCleansStrayTemp(t *testing.T) {
	s, dir := openStore(t)
	appendDays(t, s, 1)
	stray := filepath.Join(dir, "day-0001.tabf.tmp-12345")
	if err := os.WriteFile(stray, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray temp survived Open")
	}
	if s2.NumDays() != 1 {
		t.Fatalf("NumDays = %d after cleanup", s2.NumDays())
	}
}

func TestFsckQuarantinesCorruptDay(t *testing.T) {
	s, dir := openStore(t)
	days := appendDays(t, s, 3)
	// Flip one byte in the middle day's payload.
	victim := filepath.Join(dir, s.m.Days[1].File)
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x10
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || !rep.Rebuilt {
		t.Fatalf("corruption missed: report %+v", rep)
	}
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "day-0001.tabf" {
		t.Fatalf("quarantined %v", rep.Quarantined)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDir, "day-0001.tabf")); err != nil {
		t.Fatalf("corrupt file not parked in quarantine: %v", err)
	}

	// The repaired store reopens healthy with the surviving days intact.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumDays() != 2 {
		t.Fatalf("NumDays = %d after repair", s2.NumDays())
	}
	got0, err := s2.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(got0, days[0], 0) {
		t.Error("surviving day 0 damaged by repair")
	}
	got1, err := s2.Day(1)
	if err != nil {
		t.Fatal(err)
	}
	if !table.EqualApprox(got1, days[2], 0) {
		t.Error("surviving day (was index 2) damaged by repair")
	}
	rep2, err := s2.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if !rep2.OK() {
		t.Fatalf("second fsck still unhappy: %+v", rep2)
	}
}

func TestFsckReportsMissingDay(t *testing.T) {
	s, dir := openStore(t)
	appendDays(t, s, 2)
	if err := os.Remove(filepath.Join(dir, s.m.Days[0].File)); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Fsck()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Missing) != 1 || !rep.Rebuilt {
		t.Fatalf("report %+v", rep)
	}
	if s.NumDays() != 1 {
		t.Fatalf("NumDays = %d", s.NumDays())
	}
}

func TestFsckEmptiesStoreAndResetsRows(t *testing.T) {
	s, dir := openStore(t)
	appendDays(t, s, 1)
	if err := os.Remove(filepath.Join(dir, s.m.Days[0].File)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fsck(); err != nil {
		t.Fatal(err)
	}
	if s.NumDays() != 0 || s.Rows() != 0 {
		t.Fatalf("NumDays=%d Rows=%d after emptying fsck", s.NumDays(), s.Rows())
	}
	// A differently-shaped day can now re-establish the row count.
	if err := s.AppendDay("fresh", workload.Random(9, 4, 1, 7), false); err != nil {
		t.Fatal(err)
	}
	if s.Rows() != 9 {
		t.Fatalf("Rows = %d after fresh append", s.Rows())
	}
}

func TestAppendAfterFsckAvoidsFileCollision(t *testing.T) {
	s, dir := openStore(t)
	appendDays(t, s, 3)
	// Corrupt day 0 so fsck drops it; days 1 and 2 keep their files.
	victim := filepath.Join(dir, s.m.Days[0].File)
	raw, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(victim, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fsck(); err != nil {
		t.Fatal(err)
	}
	// Two days remain but their files are day-0001/day-0002; the next
	// append must not overwrite either.
	if err := s.AppendDay("post-fsck", workload.Random(6, 4, 1, 9), false); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, d := range s.m.Days {
		if seen[d.File] {
			t.Fatalf("file %s referenced twice", d.File)
		}
		seen[d.File] = true
	}
	for i := 0; i < s.NumDays(); i++ {
		if _, err := s.Day(i); err != nil {
			t.Errorf("day %d unloadable after post-fsck append: %v", i, err)
		}
	}
}

func TestFsckQuarantineDedup(t *testing.T) {
	s, dir := openStore(t)
	corruptDay0 := func() {
		path := filepath.Join(dir, s.m.Days[0].File)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)-2] ^= 0x08
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	appendDays(t, s, 1)
	corruptDay0()
	if _, err := s.Fsck(); err != nil {
		t.Fatal(err)
	}
	// A second round: new day gets the same file name (day-0000 is free
	// again), corrupt it too, fsck must not clobber the first quarantined
	// copy.
	if err := s.AppendDay("again", workload.Random(6, 5, 1, 50), false); err != nil {
		t.Fatal(err)
	}
	corruptDay0()
	if _, err := s.Fsck(); err != nil {
		t.Fatal(err)
	}
	qdir := filepath.Join(dir, quarantineDir)
	entries, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("quarantine holds %v, want two distinct copies", names)
	}
}

func FuzzOpen(f *testing.F) {
	f.Add([]byte(`{"version":1,"rows":4,"days":[{"label":"a","file":"day-0000.tabf","cols":4}]}`))
	f.Add([]byte(`{"version":1}`))
	f.Add([]byte(`{not json`))
	f.Add([]byte{})
	f.Add([]byte(`{"version":1,"rows":-5,"days":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, manifestName), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir)
		if err != nil {
			return
		}
		// An accepted manifest must yield a store whose accessors don't
		// panic, whatever the manifest claimed.
		_ = s.Rows()
		_ = s.Labels()
		_, _ = s.Day(0)
		_, _ = s.LoadRange(0, s.NumDays())
		if _, err := s.Fsck(); err != nil {
			t.Skip("fsck I/O error on fuzz-shaped store")
		}
	})
}
