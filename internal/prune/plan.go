// Package prune implements progressive sketch-distance pruning for
// nearest-candidate search: the ADSampling idea applied to the paper's
// stable-sketch estimator. The k sketch coordinates of a candidate are
// i.i.d. evidence for the median (or, at p = 2, the root-mean-square)
// distance estimator, so they can be consumed incrementally — block by
// block — with a hypothesis-test cutoff: as soon as a candidate's
// partial estimate exceeds the current best by the confidence margin
// derived from the stable-CDF Chernoff bounds (core.MedianPrefixBounds /
// core.L2PrefixBounds, the inverse of KForAccuracyAtP), the candidate is
// abandoned without evaluating its remaining coordinates.
//
// Two margins are supported:
//
//   - Exact margin (Config.Plan == nil): the sketch pass only ORDERS the
//     candidates (cheap prefix estimates, no elimination); the refine
//     pass then evaluates exact Lp distances with the sound monotone
//     partial-sum cutoff (row power sums are non-negative, so a partial
//     sum strictly above the best completed distance can never win, even
//     on ties). Results are provably byte-identical to the full scan.
//
//   - Confidence margin (Config.Plan != nil): the sketch pass also
//     eliminates candidates whose partial estimate certifies, at the
//     plan's confidence level, a true distance above the best estimate's
//     slack band; survivors are refined exactly. The returned tile is
//     the exact nearest among survivors, and the true nearest survives
//     with probability ≥ 1 − delta (the statistical acceptance tests
//     measure this recall).
//
// The engine is deterministic at any worker count: candidates are
// processed in fixed-size chunks, every cutoff inside a chunk compares
// against the best from PREVIOUS chunks only, and chunk results merge
// serially in index order — so the answer, the per-response statistics,
// and therefore the serialized HTTP response bytes never depend on
// scheduling.
package prune

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Plan precomputes the confidence-margin cutoff thresholds for one
// (p, k, estimator, block, delta) configuration. Plans are immutable and
// safe for concurrent use; servers cache them per snapshot and delta.
//
// The total failure budget delta is split by union bound: half over the
// per-checkpoint upward-deviation tests applied to any one candidate
// (the recall guarantee only needs the TRUE nearest candidate to pass
// its own tests), and half for the downward deviation of the reference
// best estimate. See DESIGN.md §11 for the full derivation.
type Plan struct {
	p         float64
	k         int
	block     int
	delta     float64
	estimator core.Estimator

	checkpoints []int     // strictly increasing prefix lengths, last == k
	hi          []float64 // upper deviation factor at checkpoints[i] (+Inf = no cutoff yet)
	loK         float64   // lower deviation factor at the full k (0 = uncertified)
}

// DefaultBlock is the coordinate block size NewPlan uses when the caller
// passes block ≤ 0: k/8 rounded up, floored at 8, so a plan has at most
// eight hypothesis-test checkpoints and small k degenerates gracefully
// to a single full evaluation.
func DefaultBlock(k int) int {
	b := (k + 7) / 8
	if b < 8 {
		b = 8
	}
	return b
}

// NewPlan derives the checkpoint thresholds for sketch size k at Lp
// exponent p under the given estimator (core.EstimatorMedian or
// core.EstimatorL2; core.EstimatorAuto resolves as the Sketcher does).
// block ≤ 0 selects DefaultBlock(k). delta is the total abandonment
// failure budget per query, in (0, 1). The median flavor needs the
// analytic stable CDF (p ≥ 0.3); NewPlan returns an error below that.
func NewPlan(p float64, k int, estimator core.Estimator, block int, delta float64) (*Plan, error) {
	if k < 1 {
		return nil, fmt.Errorf("prune: sketch size k = %d must be positive", k)
	}
	if !(delta > 0) || delta >= 1 {
		return nil, fmt.Errorf("prune: delta %v outside (0, 1)", delta)
	}
	if estimator == core.EstimatorAuto {
		if p == 2 {
			estimator = core.EstimatorL2
		} else {
			estimator = core.EstimatorMedian
		}
	}
	if estimator == core.EstimatorL2 && p != 2 {
		return nil, fmt.Errorf("prune: EstimatorL2 requires p = 2, got p = %v", p)
	}
	if block <= 0 {
		block = DefaultBlock(k)
	}
	pl := &Plan{p: p, k: k, block: block, delta: delta, estimator: estimator}

	for b := block; b < k; b += block {
		pl.checkpoints = append(pl.checkpoints, b)
	}
	pl.checkpoints = append(pl.checkpoints, k)
	m := len(pl.checkpoints)

	// delta/2 spread evenly over the checkpoints (upward tests on one
	// candidate), delta/2 on the reference's downward deviation.
	deltaEach := delta / (2 * float64(m))
	deltaLo := delta / 2

	pl.hi = make([]float64, m)
	switch estimator {
	case core.EstimatorMedian:
		for i, b := range pl.checkpoints {
			_, hi, err := core.MedianPrefixBounds(p, b, deltaEach)
			if err != nil {
				return nil, err
			}
			pl.hi[i] = hi
		}
		lo, _, err := core.MedianPrefixBounds(p, k, deltaLo)
		if err != nil {
			return nil, err
		}
		pl.loK = lo
	case core.EstimatorL2:
		for i, b := range pl.checkpoints {
			_, hi, err := core.L2PrefixBounds(b, deltaEach)
			if err != nil {
				return nil, err
			}
			pl.hi[i] = hi
		}
		lo, _, err := core.L2PrefixBounds(k, deltaLo)
		if err != nil {
			return nil, err
		}
		pl.loK = lo
	default:
		return nil, fmt.Errorf("prune: unknown estimator %v", estimator)
	}
	return pl, nil
}

// K returns the sketch size the plan was built for.
func (pl *Plan) K() int { return pl.k }

// Block returns the coordinate block size between checkpoints.
func (pl *Plan) Block() int { return pl.block }

// Delta returns the plan's total abandonment failure budget.
func (pl *Plan) Delta() float64 { return pl.delta }

// Estimator returns the resolved estimator flavor.
func (pl *Plan) Estimator() core.Estimator { return pl.estimator }

// Checkpoints returns the prefix lengths at which the engine tests the
// cutoff (a copy; the last entry is always k).
func (pl *Plan) Checkpoints() []int {
	return append([]int(nil), pl.checkpoints...)
}

// HiAt returns the upper deviation factor at checkpoint index j: a
// partial estimate above HiAt(j)·bound certifies (at the per-checkpoint
// confidence) a true distance above bound. +Inf means the prefix is too
// short to certify anything.
func (pl *Plan) HiAt(j int) float64 { return pl.hi[j] }

// LoK returns the full-k lower deviation factor: the full estimate is
// at least LoK()·d with probability ≥ 1 − delta/2. 0 means k is too
// small to certify a lower bound, which disables elimination entirely
// (every candidate survives — slower, never wrong beyond delta).
func (pl *Plan) LoK() float64 { return pl.loK }

// degenerate reports whether the plan can never eliminate anything
// (loK == 0 makes every prune reference infinite).
func (pl *Plan) degenerate() bool { return !(pl.loK > 0) }

// pruneRef converts the current best full estimate into the reference
// the checkpoint tests compare against: a candidate whose partial
// estimate exceeds HiAt(j)·pruneRef is certified farther than
// (1+epsilon)·bestEst/loK in TRUE distance — which, by the reference's
// own deviation bound, is above the best candidate's true distance —
// after discounting the worst-case compound-sketch overcount slack.
func (pl *Plan) pruneRef(bestEst, epsilon, compoundSlack float64) float64 {
	if math.IsInf(bestEst, 1) || pl.degenerate() {
		return math.Inf(1)
	}
	return compoundSlack * (1 + epsilon) * bestEst / pl.loK
}
