package prune

import (
	"math"
	"sort"
	"sync"
)

// Per-search working memory, recycled through a package sync.Pool so a
// steady-state progressive search allocates O(1) — the serving layer
// runs one search per nearest/assign query (and one per batch item), and
// the screen scratch dominated its 88–93 allocs/op before pooling.
//
// Pooling never changes an answer: every buffer is fully (re)initialized
// for the indices a search uses before that search reads it, and the
// scratch is returned only after the search has copied out its results.

// refSlot is one survivor's refinement outcome (disjoint per-chunk-
// position slot: workers never share).
type refSlot struct {
	sum       float64
	rows      int
	abandoned bool
}

type scratch struct {
	slots []screenSlot

	// Flattened per-chunk-position screen buffers: position n's diffs
	// and work slices are flat[2*n*k : (2*n+1)*k] and
	// flat[(2*n+1)*k : (2*n+2)*k].
	flat        []float64
	diffs, work [][]float64

	survivors []int
	ref       []refSlot

	sorter survivorSorter
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch returns a scratch sized for n candidates with k-lane
// sketches and chunkPos per-chunk worker positions. All state a search
// reads is reset here; grown capacity persists across uses.
func getScratch(n, k, chunkPos int) *scratch {
	sc := scratchPool.Get().(*scratch)
	if cap(sc.slots) < n {
		sc.slots = make([]screenSlot, n)
	}
	sc.slots = sc.slots[:n]
	clear(sc.slots)

	if cap(sc.flat) < 2*chunkPos*k {
		sc.flat = make([]float64, 2*chunkPos*k)
	}
	sc.flat = sc.flat[:2*chunkPos*k]
	if cap(sc.diffs) < chunkPos {
		sc.diffs = make([][]float64, chunkPos)
		sc.work = make([][]float64, chunkPos)
	}
	sc.diffs = sc.diffs[:chunkPos]
	sc.work = sc.work[:chunkPos]
	for i := 0; i < chunkPos; i++ {
		sc.diffs[i] = sc.flat[2*i*k : (2*i+1)*k]
		sc.work[i] = sc.flat[(2*i+1)*k : (2*i+2)*k]
	}

	if cap(sc.survivors) < n {
		sc.survivors = make([]int, 0, n)
	}
	sc.survivors = sc.survivors[:0]
	if cap(sc.ref) < min(chunkPos, n) {
		sc.ref = make([]refSlot, min(chunkPos, n))
	}
	sc.ref = sc.ref[:min(chunkPos, n)]
	return sc
}

func putScratch(sc *scratch) {
	sc.sorter = survivorSorter{} // drop aliases so the pool holds no stale views
	scratchPool.Put(sc)
}

// survivorSorter orders survivor indices by their screen estimate
// (NaN last), ties broken by candidate index — the same order the
// previous sort.Slice call produced, but through a pre-bound
// sort.Interface so the sort itself allocates nothing.
type survivorSorter struct {
	idx   []int
	slots []screenSlot
}

func (s *survivorSorter) key(i int) float64 {
	if e := s.slots[i].est; !math.IsNaN(e) {
		return e
	}
	return math.Inf(1)
}

func (s *survivorSorter) Len() int { return len(s.idx) }

func (s *survivorSorter) Less(a, b int) bool {
	ka, kb := s.key(s.idx[a]), s.key(s.idx[b])
	if ka != kb {
		return ka < kb
	}
	return s.idx[a] < s.idx[b]
}

func (s *survivorSorter) Swap(a, b int) { s.idx[a], s.idx[b] = s.idx[b], s.idx[a] }

// sortSurvivors sorts sc.survivors in estimated-nearest-first order.
func (sc *scratch) sortSurvivors() {
	sc.sorter = survivorSorter{idx: sc.survivors, slots: sc.slots}
	sort.Sort(&sc.sorter)
}
